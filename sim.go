package hybridpart

import (
	"context"
	"fmt"
	"strings"

	"hybridpart/internal/ir"
	"hybridpart/internal/obs"
	"hybridpart/internal/pipeline"
	"hybridpart/internal/sim"
)

// SimSpec holds the co-simulation knobs. The zero value is the analytical
// model's own operating point — one frame, one transfer port, no
// configuration prefetch — which is the configuration on which the
// simulator reproduces the model's cycle counts exactly.
type SimSpec struct {
	// Frames replays the profiled trace this many times (one replay per
	// application frame, 0 = 1). With more than one frame the fabrics
	// pipeline as in internal/pipeline: frame i+1's fine-grain work starts
	// while frame i's kernels still occupy the data-path.
	Frames int
	// Ports widens the fabric-to-fabric transfer channel (0 = 1, the
	// model's serialization assumption). Transfers stripe their words over
	// the ports; overlapping transfers from pipelined frames queue on the
	// channel instead of summing like t_comm.
	Ports int
	// Prefetch overlaps the next temporal partition's bitstream load with
	// data-path execution instead of stalling the fine fabric on demand.
	Prefetch bool
}

// SimOption configures one Simulate call.
type SimOption func(*SimSpec)

// SimFrames sets the number of application frames to replay.
func SimFrames(n int) SimOption { return func(s *SimSpec) { s.Frames = n } }

// SimPorts sets the transfer-channel width in shared-memory ports.
func SimPorts(n int) SimOption { return func(s *SimSpec) { s.Ports = n } }

// SimPrefetch enables or disables configuration prefetch.
func SimPrefetch(on bool) SimOption { return func(s *SimSpec) { s.Prefetch = on } }

// FabricUtil is one fabric's occupancy over the simulated makespan, in FPGA
// cycles. Utilization is the busy fraction (reconfiguration time excluded).
type FabricUtil struct {
	BusyCycles     int64
	ReconfigCycles int64
	IdleCycles     int64
	Utilization    float64
}

// SimKernel is one row of the per-kernel timeline: a basic block's
// aggregate fabric occupancy across every simulated invocation.
type SimKernel struct {
	Block       int
	Name        string
	Fabric      string // "fine" or "coarse"
	Invocations uint64
	BusyCycles  int64
	FirstStart  int64
	LastEnd     int64
}

// SimValidation compares the simulated execution against the analytical
// model's prediction for the same mapping. On a single contention-free
// frame without prefetch the two agree exactly; every deviation is a model
// assumption the simulator does not share, spelled out in Notes.
type SimValidation struct {
	ModelInitialCycles int64
	ModelFinalCycles   int64
	SimInitialCycles   int64
	SimFinalCycles     int64
	// ModelSpeedup and SimSpeedup are the initial/final cycle ratios;
	// SpeedupErrorPct is the simulated speedup's deviation from the model's
	// in percent.
	ModelSpeedup    float64
	SimSpeedup      float64
	SpeedupErrorPct float64
	// Exact reports cycle-for-cycle agreement on both the all-FPGA baseline
	// and the partitioned mapping.
	Exact bool
	Notes []string
}

// SimReport is the outcome of a co-simulation: the partitioned mapping and
// the all-FPGA baseline replayed on the simulated platform, plus the
// validation against the analytical model.
type SimReport struct {
	Frames   int
	Ports    int
	Prefetch bool
	// Regions is the number of independently reconfigurable fine-grain
	// regions simulated (1 = the paper's monolithic context).
	Regions int
	// Objective is the move-loop objective the underlying partitioning run
	// optimized (the simulated mapping is that run's choice).
	Objective Objective
	// Runs is the number of profiled executions folded into the replayed
	// trace (one per Workload.Run call).
	Runs int

	// TotalCycles is the simulated makespan of the partitioned mapping;
	// BaselineCycles the simulated all-FPGA makespan. FPGA cycles.
	TotalCycles    int64
	BaselineCycles int64

	Fine   FabricUtil
	Coarse FabricUtil
	Mem    FabricUtil

	// Reconfigs counts performed configuration loads across every frame;
	// ModelCrossings is what the analytical model charges for the same
	// mapping and frame count (its crossing term, once per frame).
	Reconfigs      int64
	ModelCrossings int64
	// HiddenReconfigCycles is reconfiguration time overlapped with
	// data-path execution by prefetch.
	HiddenReconfigCycles int64

	Kernels    []SimKernel
	Validation SimValidation
}

// Speedup returns the simulated baseline-over-partitioned speedup.
func (r *SimReport) Speedup() float64 {
	if r.TotalCycles == 0 {
		return 1
	}
	return float64(r.BaselineCycles) / float64(r.TotalCycles)
}

// Format renders the report as a fixed-layout text table: headline cycles,
// per-fabric utilization, the per-kernel timeline and the validation
// section. The layout is deterministic — equal reports format equally.
func (r *SimReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Simulated frames:          %d (ports %d, prefetch %v, objective %s, %d profiled run(s))\n",
		r.Frames, r.Ports, r.Prefetch, r.Objective, r.Runs)
	if r.Regions > 1 {
		fmt.Fprintf(&sb, "Reconfigurable regions:    %d\n", r.Regions)
	}
	fmt.Fprintf(&sb, "Simulated cycles (all-FPGA): %d\n", r.BaselineCycles)
	fmt.Fprintf(&sb, "Simulated cycles (partitioned): %d\n", r.TotalCycles)
	fmt.Fprintf(&sb, "Simulated speedup:         %.3f\n", r.Speedup())
	fmt.Fprintf(&sb, "Reconfigurations:          %d (model charges %d; %d cycles hidden by prefetch)\n",
		r.Reconfigs, r.ModelCrossings, r.HiddenReconfigCycles)
	fmt.Fprintf(&sb, "\n%-12s %12s %12s %12s %8s\n", "fabric", "busy", "reconfig", "idle", "util")
	fmt.Fprintf(&sb, "%-12s %12d %12d %12d %7.1f%%\n", "fine-grain",
		r.Fine.BusyCycles, r.Fine.ReconfigCycles, r.Fine.IdleCycles, 100*r.Fine.Utilization)
	fmt.Fprintf(&sb, "%-12s %12d %12s %12d %7.1f%%\n", "coarse-grain",
		r.Coarse.BusyCycles, "-", r.Coarse.IdleCycles, 100*r.Coarse.Utilization)
	fmt.Fprintf(&sb, "%-12s %12d %12s %12d %7.1f%%\n", "transfers",
		r.Mem.BusyCycles, "-", r.Mem.IdleCycles, 100*r.Mem.Utilization)
	fmt.Fprintf(&sb, "\n%-6s %-14s %-8s %12s %12s %12s %12s\n",
		"block", "name", "fabric", "invocations", "busy", "first", "last")
	for _, k := range r.Kernels {
		fmt.Fprintf(&sb, "%-6d %-14s %-8s %12d %12d %12d %12d\n",
			k.Block, k.Name, k.Fabric, k.Invocations, k.BusyCycles, k.FirstStart, k.LastEnd)
	}
	fmt.Fprintf(&sb, "\nvalidation: model %d -> %d (speedup %.3f), simulated %d -> %d (speedup %.3f, error %+.2f%%)\n",
		r.Validation.ModelInitialCycles, r.Validation.ModelFinalCycles, r.Validation.ModelSpeedup,
		r.Validation.SimInitialCycles, r.Validation.SimFinalCycles, r.Validation.SimSpeedup,
		r.Validation.SpeedupErrorPct)
	for _, n := range r.Validation.Notes {
		fmt.Fprintf(&sb, "validation: %s\n", n)
	}
	return sb.String()
}

// Simulate runs the co-simulator against the workload's accumulated
// profile: it first partitions the workload with the engine's configured
// knobs (the analytical model), then replays the profiled CDFG trace
// against both the all-FPGA baseline and the partitioned mapping on a
// discrete-event model of the platform — the sequencer dispatching each
// kernel invocation to its fabric, temporal-partition swaps (optionally
// prefetched), list-scheduled data-path execution, shared-memory transfer
// slots and, for multi-frame specs, the two-stage frame pipeline.
//
// The context is checked between simulated frames; cancellation returns
// ctx.Err(). Frame completions stream to the observer as SimEvents. The
// simulation is deterministic: equal workloads, knobs and spec produce an
// identical SimReport.
func (e *Engine) Simulate(ctx context.Context, w *Workload, opts ...SimOption) (*SimReport, error) {
	app, prof, err := w.profiled()
	if err != nil {
		return nil, err
	}
	return e.simulateApp(ctx, app, prof, opts)
}

// SimulateProfiled is Simulate on the raw v1 pair — see PartitionProfiled
// for when to prefer it over the Workload path.
func (e *Engine) SimulateProfiled(ctx context.Context, a *App, p *RunProfile, opts ...SimOption) (*SimReport, error) {
	if a == nil || p == nil {
		return nil, fmt.Errorf("hybridpart: SimulateProfiled needs a non-nil app and profile")
	}
	return e.simulateApp(ctx, a, p, opts)
}

func (e *Engine) simulateApp(ctx context.Context, a *App, p *RunProfile, opts []SimOption) (*SimReport, error) {
	// The engine-level sim knobs (WithSimFrames/WithSimPorts/WithSimPrefetch,
	// fingerprinted in Options) are the defaults; per-call SimOptions layer
	// over them for this one simulation.
	spec := simSpecOf(e.opts)
	for _, opt := range opts {
		if opt != nil {
			opt(&spec)
		}
	}
	if spec.Frames < 0 || spec.Ports < 0 {
		return nil, fmt.Errorf("hybridpart: sim frames and ports must be non-negative, got %d/%d", spec.Frames, spec.Ports)
	}
	if spec.Frames == 0 {
		spec.Frames = 1
	}
	if spec.Ports == 0 {
		spec.Ports = 1
	}

	// The analytical side: the same silent partitioning run the service
	// caches — per-move events would be misleading here, the trajectory is
	// not this call's product. report=false because this call replays the
	// chosen mapping itself; when the run built a scorer (simulated
	// objective, re-rank or engine sim knobs) its Replayer — trace,
	// live-in/out footprints and data-path schedules — is reused for the
	// report replays below instead of being rebuilt.
	res, scorer, err := e.partitionScored(ctx, a, p, e.opts, e.costsSet, nil, nil, false)
	if err != nil {
		return nil, err
	}
	moved := make([]ir.BlockID, len(res.Moved))
	for i, b := range res.Moved {
		moved[i] = ir.BlockID(b)
	}
	var replayer *sim.Replayer
	if scorer != nil {
		replayer = scorer.rep
	} else {
		replayer, err = sim.NewReplayer(sim.Input{
			Prog:  a.fprog,
			F:     a.flat,
			Plat:  e.platformOf(e.opts, e.costsSet),
			Freq:  p.Freq,
			Edges: p.edges,
		})
		if err != nil {
			return nil, err
		}
	}
	onFrame := func(stage string) func(int, int64) {
		if e.observer == nil {
			return nil
		}
		return func(frame int, cycles int64) {
			e.emit(SimEvent{Stage: stage, Cell: -1, Frame: frame, Frames: spec.Frames, Cycles: cycles})
		}
	}
	cfg := sim.Config{Frames: spec.Frames, Ports: spec.Ports, Prefetch: spec.Prefetch}

	cfg.OnFrame = onFrame("baseline")
	_, baseSpan := obs.Start(ctx, "sim.replay", obs.String("stage", "baseline"), obs.Int("frames", spec.Frames))
	base, err := replayer.Simulate(ctx, cfg, nil)
	baseSpan.End()
	if err != nil {
		return nil, err
	}
	cfg.OnFrame = onFrame("partitioned")
	_, partSpan := obs.Start(ctx, "sim.replay", obs.String("stage", "partitioned"), obs.Int("frames", spec.Frames))
	part, err := replayer.Simulate(ctx, cfg, moved)
	partSpan.End()
	if err != nil {
		return nil, err
	}

	rep := &SimReport{
		Frames:               spec.Frames,
		Ports:                spec.Ports,
		Prefetch:             spec.Prefetch,
		Regions:              e.platformOf(e.opts, e.costsSet).Fine.NumRegions(),
		Objective:            e.opts.Objective,
		Runs:                 part.Runs,
		TotalCycles:          part.TotalCycles,
		BaselineCycles:       base.TotalCycles,
		Reconfigs:            part.Reconfigs,
		ModelCrossings:       part.ModelCrossings,
		HiddenReconfigCycles: part.HiddenReconfigCycles,
		Fine: FabricUtil{
			BusyCycles:     part.FineBusy,
			ReconfigCycles: part.FineReconfig,
			IdleCycles:     part.FineIdle,
			Utilization:    util(part.FineBusy, part.TotalCycles),
		},
		Coarse: FabricUtil{
			BusyCycles:  part.CoarseBusy,
			IdleCycles:  part.CoarseIdle,
			Utilization: util(part.CoarseBusy, part.TotalCycles),
		},
		Mem: FabricUtil{
			BusyCycles:  part.MemBusy,
			IdleCycles:  part.TotalCycles - part.MemBusy,
			Utilization: util(part.MemBusy, part.TotalCycles),
		},
	}
	for _, k := range part.Kernels {
		rep.Kernels = append(rep.Kernels, SimKernel{
			Block:       int(k.Block),
			Name:        k.Name,
			Fabric:      k.Fabric,
			Invocations: k.Invocations,
			BusyCycles:  k.BusyCycles,
			FirstStart:  k.FirstStart,
			LastEnd:     k.LastEnd,
		})
	}
	rep.Validation = validate(res, rep, spec)
	return rep, nil
}

func util(busy, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// validate builds the model-vs-simulation comparison. The model's
// multi-frame predictions come from the two-stage pipeline extension
// (internal/pipeline); for one frame they reduce to eq. 2's t_total and the
// all-FPGA initial cycles.
func validate(res *Result, rep *SimReport, spec SimSpec) SimValidation {
	modelInitial := pipeline.Model{TFine: res.InitialCycles}.Pipelined(spec.Frames)
	modelFinal := pipeline.Model{TFine: res.TFPGA, TCoarse: res.TCoarse, TComm: res.TComm}.Pipelined(spec.Frames)
	v := SimValidation{
		ModelInitialCycles: modelInitial,
		ModelFinalCycles:   modelFinal,
		SimInitialCycles:   rep.BaselineCycles,
		SimFinalCycles:     rep.TotalCycles,
	}
	if modelFinal > 0 {
		v.ModelSpeedup = float64(modelInitial) / float64(modelFinal)
	}
	v.SimSpeedup = rep.Speedup()
	if v.ModelSpeedup > 0 {
		v.SpeedupErrorPct = 100 * (v.SimSpeedup - v.ModelSpeedup) / v.ModelSpeedup
	}
	v.Exact = v.SimInitialCycles == v.ModelInitialCycles && v.SimFinalCycles == v.ModelFinalCycles
	if v.Exact {
		v.Notes = append(v.Notes, "simulation reproduces the analytical model cycle for cycle")
		return v
	}
	if rep.Reconfigs != rep.ModelCrossings {
		v.Notes = append(v.Notes, fmt.Sprintf(
			"%d configuration loads simulated vs %d crossings charged by the model", rep.Reconfigs, rep.ModelCrossings))
	}
	if rep.Prefetch && rep.HiddenReconfigCycles > 0 {
		v.Notes = append(v.Notes, fmt.Sprintf(
			"prefetch hid %d reconfiguration cycles behind data-path execution", rep.HiddenReconfigCycles))
	}
	if rep.Ports > 1 {
		v.Notes = append(v.Notes, fmt.Sprintf(
			"%d transfer ports stripe each invocation's words; the model assumes serialized single-port transfers", rep.Ports))
	}
	if rep.Regions > 1 {
		v.Notes = append(v.Notes, fmt.Sprintf(
			"%d reconfigurable regions let partitions coexist; the model's crossing rule assumes optimistic residency", rep.Regions))
	}
	if spec.Frames > 1 {
		v.Notes = append(v.Notes, fmt.Sprintf(
			"event-level frame pipeline over %d frames vs the two-stage model's idealized overlap", spec.Frames))
	}
	if rep.Runs > 1 {
		v.Notes = append(v.Notes, fmt.Sprintf(
			"profile accumulates %d runs, replayed back to back within each frame", rep.Runs))
	}
	return v
}
