package hybridpart

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hybridpart/internal/platform"
)

// firWorkload compiles and profiles the FIR fixture through the v2
// lifecycle.
func firWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload(firSrc, "main_fn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEngineLegacyParity is the compatibility-shim acceptance test: every
// legacy Options field must round-trip to an identical Result through the
// equivalent functional-option chain. Formatted output is compared
// byte-for-byte.
func TestEngineLegacyParity(t *testing.T) {
	app, prof := compileFIR(t)

	// Tight enough to force moves, loose enough to eventually be met.
	base := DefaultOptions()
	base.Constraint = 30000

	cases := []struct {
		name   string
		legacy func(o *Options)
		v2     []Option
	}{
		{"baseline", func(o *Options) {}, nil},
		{"afpga", func(o *Options) { o.AFPGA = 5000 }, []Option{WithArea(5000)}},
		{"reconfig", func(o *Options) { o.ReconfigCycles = 128 }, []Option{WithReconfig(128)}},
		{"numcgcs", func(o *Options) { o.NumCGCs = 3 }, []Option{WithCGCs(3)}},
		{"cgcshape", func(o *Options) { o.CGCRows, o.CGCCols = 4, 3 }, []Option{WithCGCShape(4, 3)}},
		{"memports", func(o *Options) { o.MemPorts = 1 }, []Option{WithMemPorts(1)}},
		{"clockratio", func(o *Options) { o.ClockRatio = 5 }, []Option{WithClockRatio(5)}},
		{"regbank", func(o *Options) { o.RegBankWords = 0 }, []Option{WithRegBank(0)}},
		{"comm", func(o *Options) { o.CommCyclesPerWord, o.CommSyncCycles = 4, 9 }, []Option{WithComm(4, 9)}},
		{"constraint", func(o *Options) { o.Constraint = 25000 }, []Option{WithConstraint(25000)}},
		{"order-freq", func(o *Options) { o.Order = OrderByFreq }, []Option{WithOrder(OrderByFreq)}},
		{"order-opweight", func(o *Options) { o.Order = OrderByOpWeight }, []Option{WithOrder(OrderByOpWeight)}},
		{"maxmoves", func(o *Options) { o.MaxMoves = 1; o.Constraint = 1 },
			[]Option{WithMaxMoves(1), WithConstraint(1)}},
		{"skipnonimproving", func(o *Options) { o.SkipNonImproving = true; o.CommCyclesPerWord = 64 },
			[]Option{WithSkipNonImproving(true), WithComm(64, 2)}},
		{"weights", func(o *Options) { o.WeightALU, o.WeightMul, o.WeightDiv, o.WeightMem = 2, 7, 11, 3 },
			[]Option{WithWeights(2, 7, 11, 3)}},
		{"costs", func(o *Options) { o.Costs = platform.DSPRichOpCosts() },
			[]Option{WithCosts(platform.DSPRichOpCosts())}},
		{"preset", func(o *Options) {
			v, err := OptionsFor("lut-only")
			if err != nil {
				t.Fatal(err)
			}
			c := o.Constraint
			*o = v
			o.Constraint = c
		}, []Option{WithPlatform("lut-only")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacyOpts := base
			tc.legacy(&legacyOpts)
			want, err := app.Partition(prof, legacyOpts)
			if err != nil {
				t.Fatal(err)
			}

			opts := append([]Option{WithConstraint(base.Constraint)}, tc.v2...)
			eng, err := NewEngine(opts...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.partitionApp(context.Background(), app, prof)
			if err != nil {
				t.Fatal(err)
			}
			if got.Format() != want.Format() {
				t.Fatalf("formatted output diverges:\n--- legacy ---\n%s--- v2 ---\n%s", want.Format(), got.Format())
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("result diverges:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestEngineWorkloadMatchesLegacyTriad proves the Workload lifecycle is the
// same computation as the App/Runner/RunProfile triad.
func TestEngineWorkloadMatchesLegacyTriad(t *testing.T) {
	app, prof := compileFIR(t)
	legacyOpts := DefaultOptions()
	legacyOpts.Constraint = 30000
	want, err := app.Partition(prof, legacyOpts)
	if err != nil {
		t.Fatal(err)
	}

	w := firWorkload(t)
	eng, err := NewEngine(WithConstraint(30000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Partition(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format() != want.Format() {
		t.Fatalf("workload path diverges from triad path:\n%s\nvs\n%s", got.Format(), want.Format())
	}
}

// TestEnergyShimParity checks the energy shim against the engine path, and
// that EnergyMoveEvents stream in trajectory order.
func TestEnergyShimParity(t *testing.T) {
	app, prof := compileFIR(t)
	opts := DefaultOptions()
	loose, err := app.PartitionEnergy(prof, opts, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	budget := loose.InitialEnergy * 0.8
	want, err := app.PartitionEnergy(prof, opts, budget)
	if err != nil {
		t.Fatal(err)
	}

	w := firWorkload(t)
	var events []EnergyMoveEvent
	eng, err := NewEngine(
		WithEnergyBudget(budget),
		WithObserver(func(ev Event) {
			if e, ok := ev.(EnergyMoveEvent); ok {
				events = append(events, e)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.PartitionEnergy(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("energy result diverges:\n got %+v\nwant %+v", got, want)
	}
	if len(events) != len(got.Moved) {
		t.Fatalf("got %d energy move events, want %d", len(events), len(got.Moved))
	}
	for i, ev := range events {
		if ev.Seq != i+1 || ev.Block != got.Moved[i] || ev.Budget != budget {
			t.Fatalf("event %d malformed: %+v (moved %v)", i, ev, got.Moved)
		}
	}
	if !events[len(events)-1].Met {
		t.Fatal("final energy move event not marked Met")
	}
	if _, err := eng.PartitionEnergy(context.Background(), nil); err == nil {
		t.Fatal("nil workload accepted")
	}
	noBudget, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noBudget.PartitionEnergy(context.Background(), w); err == nil {
		t.Fatal("missing energy budget accepted")
	}
}

// TestShimSweepByteIdentical runs the paper's Tables 2–3 configurations
// through both the legacy Sweep shim and Engine.Sweep and requires
// byte-identical CSV output.
func TestShimSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	for _, bench := range []string{BenchOFDM, BenchJPEG} {
		spec := SweepSpec{
			Benchmarks: []string{bench},
			Areas:      []int{1500, 5000},
			CGCs:       []int{2, 3},
			Seed:       1,
			Workers:    2,
		}
		legacy, err := Sweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		v2, err := eng.Sweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := legacy.WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := v2.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s sweep CSV diverges:\n--- legacy ---\n%s--- v2 ---\n%s", bench, a.String(), b.String())
		}
	}
}

// TestEnginePartitionCancellation cancels mid-trajectory from inside the
// observer and expects a prompt ctx.Err() return.
func TestEnginePartitionCancellation(t *testing.T) {
	w := firWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	moves := 0
	eng, err := NewEngine(
		// Unreachable constraint: the trajectory would run to exhaustion.
		WithConstraint(1),
		WithObserver(func(ev Event) {
			if _, ok := ev.(MoveEvent); ok {
				moves++
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Partition(ctx, w)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got res=%v err=%v", res, err)
	}
	if moves != 1 {
		t.Fatalf("engine kept moving after cancellation: %d moves observed", moves)
	}

	// An already-cancelled context never starts the run at all.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := eng.Partition(dead, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context not honored: %v", err)
	}
}

// TestEngineSweepCancellation is the satellite acceptance test: a
// cancellation mid-grid must surface ctx.Err() promptly instead of
// finishing the sweep.
func TestEngineSweepCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	// A wide constraint axis gives a long single-benchmark grid without
	// recompilation cost per cell.
	constraints := make([]int64, 64)
	for i := range constraints {
		constraints[i] = int64(40000 + 1000*i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells := 0
	eng, err := NewEngine(WithObserver(func(ev Event) {
		if _, ok := ev.(CellEvent); ok {
			cells++
			if cells == 2 {
				cancel()
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := eng.Sweep(ctx, SweepSpec{
		Benchmarks:  []string{BenchOFDM},
		Constraints: constraints,
		Seed:        1,
		Workers:     2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got rs=%v err=%v", rs, err)
	}
	if rs == nil || !rs.Partial {
		t.Fatalf("cancelled sweep did not return a partial result set: %+v", rs)
	}
	if len(rs.Outcomes) == 0 || len(rs.Outcomes) >= len(constraints) {
		t.Fatalf("partial set has %d of %d cells, want a strict mid-grid subset",
			len(rs.Outcomes), len(constraints))
	}
	if cells >= len(constraints) {
		t.Fatalf("sweep ran to completion (%d cells) despite cancellation", cells)
	}
}

// TestEngineSweepObserverOrder requires CellEvents in expansion order with
// contiguous Done counts, for any worker count, on repeated runs.
func TestEngineSweepObserverOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	spec := SweepSpec{
		Benchmarks: []string{BenchOFDM},
		Areas:      []int{1000, 1500, 2500, 5000},
		CGCs:       []int{1, 2, 3},
		Seed:       1,
	}
	var first []CellEvent
	for run, workers := range []int{1, 4, 8} {
		var events []CellEvent
		eng, err := NewEngine(
			WithWorkers(workers),
			WithObserver(func(ev Event) {
				if ce, ok := ev.(CellEvent); ok {
					events = append(events, ce)
				}
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := eng.Sweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != len(rs.Outcomes) {
			t.Fatalf("workers=%d: %d events for %d cells", workers, len(events), len(rs.Outcomes))
		}
		for i, ce := range events {
			if ce.Outcome.Index != i || ce.Done != i+1 || ce.Total != len(rs.Outcomes) {
				t.Fatalf("workers=%d: event %d out of order: index=%d done=%d total=%d",
					workers, i, ce.Outcome.Index, ce.Done, ce.Total)
			}
		}
		if run == 0 {
			first = events
		} else if !reflect.DeepEqual(events, first) {
			t.Fatalf("workers=%d: event stream differs from workers=1 run", workers)
		}
	}
}

// TestEngineMoveEvents checks the per-move trajectory stream of a normal
// (uncancelled) partitioning run.
func TestEngineMoveEvents(t *testing.T) {
	w := firWorkload(t)
	loose, err := NewEngine(WithConstraint(1 << 60))
	if err != nil {
		t.Fatal(err)
	}
	all, err := loose.Partition(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	constraint := all.InitialCycles / 2
	var events []MoveEvent
	eng, err := NewEngine(
		WithConstraint(constraint),
		WithObserver(func(ev Event) {
			if mv, ok := ev.(MoveEvent); ok {
				events = append(events, mv)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Partition(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || len(res.Moved) == 0 {
		t.Fatalf("fixture run malformed: %+v", res)
	}
	if len(events) != len(res.Moved) {
		t.Fatalf("got %d move events, want %d", len(events), len(res.Moved))
	}
	for i, ev := range events {
		if ev.Seq != i+1 || ev.Block != res.Moved[i] || ev.Constraint != constraint {
			t.Fatalf("event %d malformed: %+v (moved %v)", i, ev, res.Moved)
		}
		if i > 0 && events[i-1].TotalAfter < ev.TotalAfter {
			t.Fatalf("trajectory not improving: %d then %d", events[i-1].TotalAfter, ev.TotalAfter)
		}
	}
	last := events[len(events)-1]
	if !last.Met || last.TotalAfter != res.FinalCycles {
		t.Fatalf("final event inconsistent with result: %+v vs final %d", last, res.FinalCycles)
	}
}

// TestEngineOptionValidation exercises fail-fast construction.
func TestEngineOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  Option
	}{
		{"area", WithArea(0)},
		{"reconfig", WithReconfig(-1)},
		{"cgcs", WithCGCs(-2)},
		{"cgcshape", WithCGCShape(0, 2)},
		{"memports", WithMemPorts(0)},
		{"clockratio", WithClockRatio(0)},
		{"regbank", WithRegBank(-1)},
		{"comm", WithComm(-1, 0)},
		{"constraint", WithConstraint(0)},
		{"maxmoves", WithMaxMoves(-1)},
		{"weights", WithWeights(-1, 2, 3, 4)},
		{"budget", WithEnergyBudget(0)},
		{"workers", WithWorkers(-1)},
		{"preset", WithPlatform("no-such-preset")},
	}
	for _, tc := range bad {
		if _, err := NewEngine(tc.opt); err == nil {
			t.Fatalf("%s: invalid option accepted", tc.name)
		}
	}
	// nil options are tolerated; later options layer over earlier ones.
	eng, err := NewEngine(nil, WithPlatform("paper-large"), WithArea(2222))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Options(); got.AFPGA != 2222 || got.NumCGCs != 2 {
		t.Fatalf("option layering broken: %+v", got)
	}
}

// TestWithCostsZeroTableFailsLoudly: the v2 path must never silently
// replace an explicitly supplied table — an all-zero table is a loud
// validation error — while the legacy Options zero value keeps selecting
// the default characterization (OpCosts.IsZero defaulting).
func TestWithCostsZeroTableFailsLoudly(t *testing.T) {
	w := firWorkload(t)
	eng, err := NewEngine(WithCosts(OpCosts{}), WithConstraint(30000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Partition(context.Background(), w); err == nil ||
		!strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("zero cost table silently accepted or wrong error: %v", err)
	}

	// Legacy semantics preserved: zero Costs means "default table".
	app, prof := compileFIR(t)
	legacy := DefaultOptions()
	legacy.Constraint = 30000
	legacy.Costs = OpCosts{}
	zeroed, err := app.Partition(prof, legacy)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Costs = DefaultOpCosts()
	explicit, err := app.Partition(prof, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if zeroed.Format() != explicit.Format() {
		t.Fatal("legacy zero-value Costs no longer selects the default table")
	}
}

// TestWorkloadLifecycle covers the non-engine surface of Workload.
func TestWorkloadLifecycle(t *testing.T) {
	w, err := NewWorkload(firSrc, "main_fn")
	if err != nil {
		t.Fatal(err)
	}
	if w.Entry() != "main_fn" || w.NumBlocks() == 0 {
		t.Fatalf("workload malformed: entry=%q blocks=%d", w.Entry(), w.NumBlocks())
	}
	if err := w.SetInput("INPUT", []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.SetInput("NOPE", []int32{1}); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.InstructionsExecuted() == 0 {
		t.Fatal("no instructions counted")
	}
	if w.Data("OUTPUT") == nil {
		t.Fatal("output array unreadable")
	}
	// Profiles accumulate across runs.
	p1 := w.Profile()
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	p2 := w.Profile()
	var s1, s2 uint64
	for i := range p1.Freq {
		s1 += p1.Freq[i]
		s2 += p2.Freq[i]
	}
	if s2 <= s1 {
		t.Fatalf("profile did not accumulate: %d then %d", s1, s2)
	}
	if w.App() == nil {
		t.Fatal("App accessor broken")
	}
	if _, err := NewWorkload("not C", "f"); err == nil {
		t.Fatal("parse error accepted")
	}
	if _, err := BenchmarkWorkload("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	var nilW *Workload
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Partition(context.Background(), nilW); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := eng.Analyze(nilW); err == nil {
		t.Fatal("nil workload accepted by Analyze")
	}
}

// TestEngineObserverSerializedDelivery: one engine, one observer, several
// concurrent runs — delivery must be serialized so an unlocked observer is
// safe (the race detector is the real assertion here).
func TestEngineObserverSerializedDelivery(t *testing.T) {
	w := firWorkload(t)
	var events []Event // deliberately unsynchronized: the engine serializes
	eng, err := NewEngine(
		WithConstraint(1),
		WithMaxMoves(3),
		WithObserver(func(ev Event) { events = append(events, ev) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Partition(context.Background(), w); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(events) != 4*3 {
		t.Fatalf("lost events under concurrency: got %d, want 12", len(events))
	}
}

// TestEngineSweepPresetSemantics: an empty cell preset inherits the
// engine's platform; the literal "default" pins the paper baseline.
func TestEngineSweepPresetSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	eng, err := NewEngine(WithPlatform("dsp-rich"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := eng.Sweep(context.Background(), SweepSpec{
		Benchmarks: []string{BenchOFDM},
		Presets:    []string{"", "default", "dsp-rich"},
		Seed:       1,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inherit := rs.Find(BenchOFDM, "", 0, 0, 0)
	paper := rs.Find(BenchOFDM, "default", 0, 0, 0)
	dsp := rs.Find(BenchOFDM, "dsp-rich", 0, 0, 0)
	if inherit == nil || paper == nil || dsp == nil {
		t.Fatalf("missing cells: %+v", rs.Outcomes)
	}
	if inherit.InitialCycles != dsp.InitialCycles {
		t.Fatalf("empty preset did not inherit the engine's dsp-rich platform: %d vs %d",
			inherit.InitialCycles, dsp.InitialCycles)
	}
	if paper.InitialCycles == dsp.InitialCycles {
		t.Fatal(`"default" preset did not pin the paper baseline on a configured engine`)
	}
}

// TestBenchmarkRegistry keeps the CLI validation helper honest.
func TestBenchmarkRegistry(t *testing.T) {
	if !reflect.DeepEqual(Benchmarks(), []string{BenchOFDM, BenchJPEG}) {
		t.Fatalf("registry wrong: %v", Benchmarks())
	}
	if !IsBenchmark(BenchOFDM) || !IsBenchmark(BenchJPEG) || IsBenchmark("nope") {
		t.Fatal("IsBenchmark misclassifies")
	}
}
