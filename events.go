package hybridpart

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event is a structured progress notification emitted by an Engine while a
// run is in flight. Concrete types are MoveEvent, EnergyMoveEvent and
// CellEvent; observers type-switch on the ones they care about.
type Event interface{ isEvent() }

// Observer receives an Engine's progress events. An Engine never invokes
// its observer concurrently — events arrive one at a time (delivery is
// serialized even across concurrent runs on the same engine), in a
// deterministic order for a given run (per-move events follow the engine's
// move trajectory; per-cell sweep events follow grid expansion order even
// when cells are evaluated in parallel) — so observers need no locking of
// their own. Observers run synchronously on the engine's goroutines: a slow
// observer slows the run, and an observer must not call back into the same
// engine's run methods.
type Observer func(Event)

// MoveEvent is emitted by Engine.Partition after each accepted kernel move:
// one step of the move-by-move trajectory of the paper's Figure 2 loop.
type MoveEvent struct {
	// Seq is the 1-based move number within this run.
	Seq int `json:"seq"`
	// Block is the basic block just moved to the coarse-grain data-path.
	Block int `json:"block"`
	// CGCCycles is the kernel's per-execution latency on the data-path in
	// T_CGC cycles.
	CGCCycles int64 `json:"cgc_cycles"`
	// TotalAfter is t_total (FPGA cycles) after this move.
	TotalAfter int64 `json:"total_after"`
	// Constraint is the run's timing constraint; Met reports whether this
	// move satisfied it (and therefore ended the run).
	Constraint int64 `json:"constraint"`
	Met        bool  `json:"met"`
}

// EnergyMoveEvent is emitted by Engine.PartitionEnergy after each accepted
// kernel move of the energy-constrained engine.
type EnergyMoveEvent struct {
	// Seq is the 1-based move number within this run.
	Seq int `json:"seq"`
	// Block is the basic block just moved to the coarse-grain data-path.
	Block int `json:"block"`
	// EnergyAfter is the total application energy after this move.
	EnergyAfter float64 `json:"energy_after"`
	// Budget is the run's energy budget; Met reports whether this move
	// satisfied it.
	Budget float64 `json:"budget"`
	Met    bool    `json:"met"`
}

// CellEvent is emitted by Engine.Sweep as grid cells complete. Events
// arrive strictly in expansion order (cell i is reported only after cells
// 0..i-1), regardless of the worker count, so progress displays and logs
// are deterministic.
type CellEvent struct {
	// Outcome is the completed cell, failures included (check
	// Outcome.Failed()).
	Outcome SweepOutcome `json:"outcome"`
	// Done counts reported cells so far (1-based); Total is the grid size.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// SimEvent is emitted by Engine.Simulate as simulated frames complete —
// first for the all-FPGA baseline replay, then for the partitioned one —
// and by Engine.Sweep for every simulated cell's chosen mapping. Events
// arrive in frame order within each stage; sweep-cell events arrive in
// expansion order, each run of frames immediately before its CellEvent.
type SimEvent struct {
	// Stage is "baseline" while the all-FPGA mapping replays and
	// "partitioned" for the partitioned mapping.
	Stage string `json:"stage"`
	// Cell is the sweep cell index the event belongs to, or -1 outside
	// sweeps.
	Cell int `json:"cell"`
	// Frame is the 1-based frame just completed; Frames is the spec's total.
	Frame  int `json:"frame"`
	Frames int `json:"frames"`
	// Cycles is the frame's simulated completion time in FPGA cycles
	// (cumulative makespan, not per-frame duration).
	Cycles int64 `json:"cycles"`
}

func (MoveEvent) isEvent()       {}
func (EnergyMoveEvent) isEvent() {}
func (CellEvent) isEvent()       {}
func (SimEvent) isEvent()        {}

// EventName returns the wire name of an event's concrete type — the SSE
// "event:" field written by WriteSSE, on which clients dispatch.
func EventName(ev Event) string {
	switch ev.(type) {
	case MoveEvent:
		return "move"
	case EnergyMoveEvent:
		return "energy-move"
	case CellEvent:
		return "cell"
	case SimEvent:
		return "sim"
	}
	return "event"
}

// WriteSSE encodes one event as a server-sent-events frame —
//
//	event: <EventName>
//	data: <single-line JSON>
//
// followed by the blank line that terminates the frame. The partitioning
// service streams sweep progress this way; any SSE client (EventSource,
// curl -N) can consume it. The JSON payload never contains a newline, so
// one data: line always carries the whole event.
func WriteSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", EventName(ev), data)
	return err
}
