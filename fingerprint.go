package hybridpart

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
)

// SourceHash returns the canonical content hash of a mini-C source text:
// the hex-encoded SHA-256 of its bytes. It is the source component of the
// cache keys used by the partitioning service — Compile records it on the
// App so a Workload can be content-addressed without re-reading the source.
func SourceHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Fingerprint returns a canonical content hash of the full knob set: the
// hex-encoded SHA-256 of the options' "name=value" pairs in sorted name
// order. Two Options values compare equal if and only if their fingerprints
// are equal, and the hash is independent of the struct's field declaration
// order (fields are visited by name, not position), so fingerprints stay
// stable across refactors that merely reorder fields. Combined with a
// workload's SourceHash this keys the content-addressed result cache of the
// partitioning service.
func (o Options) Fingerprint() string {
	var pairs []string
	collectFields("", reflect.ValueOf(o), &pairs)
	sort.Strings(pairs)
	h := sha256.New()
	for _, p := range pairs {
		h.Write([]byte(p))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// collectFields flattens a struct value into "path=value" leaf pairs,
// recursing through nested structs (OpCosts) with a dotted path prefix.
func collectFields(prefix string, v reflect.Value, out *[]string) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := prefix + f.Name
		fv := v.Field(i)
		if fv.Kind() == reflect.Struct {
			collectFields(name+".", fv, out)
			continue
		}
		*out = append(*out, fmt.Sprintf("%s=%v", name, fv.Interface()))
	}
}
