package hybridpart

import (
	"context"
	"fmt"
	"sync"

	"hybridpart/internal/energy"
	"hybridpart/internal/explore"
	"hybridpart/internal/obs"
	"hybridpart/internal/partition"
	"hybridpart/internal/platform"
)

// Engine is the v2 entry point to the methodology: a fixed configuration of
// the platform and engine knobs, built once from functional options and then
// applied to any number of workloads. An Engine's configuration is immutable
// after NewEngine returns, and observer delivery is serialized internally,
// so an Engine is safe for concurrent use from multiple goroutines.
//
//	eng, _ := hybridpart.NewEngine(
//		hybridpart.WithPlatform("paper-large"),
//		hybridpart.WithConstraint(60000),
//		hybridpart.WithObserver(func(ev hybridpart.Event) { ... }),
//	)
//	res, _ := eng.Partition(ctx, w)
//
// Every run method takes a context.Context that is honored between kernel
// moves and between sweep cells, so long explorations can be cancelled or
// given deadlines; progress streams through the configured Observer.
type Engine struct {
	opts Options
	// costsSet records that WithCosts supplied the operator table
	// explicitly: the engine then uses it verbatim (a bad table fails
	// platform validation loudly) instead of zero-defaulting like the
	// legacy Options path.
	costsSet bool
	// constraintSet records an explicit WithConstraint, which then serves
	// as the sweep-wide fallback before per-benchmark paper defaults.
	constraintSet bool
	budget        float64
	observer      Observer
	workers       int
	// obsMu serializes observer delivery across concurrent runs on the
	// same engine, upholding the Observer contract ("never invoked
	// concurrently") even when Partition/Sweep are called from multiple
	// goroutines.
	obsMu sync.Mutex
}

// emit delivers one event to the observer under the delivery lock.
// Observers must not call back into the same engine's run methods.
func (e *Engine) emit(ev Event) {
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	e.observer(ev)
}

// Option configures an Engine under construction. Options are applied in
// order, so later options layer over earlier ones — e.g. WithPlatform
// followed by WithArea keeps the preset's characterization but overrides
// A_FPGA.
type Option func(*Engine) error

// NewEngine builds an Engine from the paper's baseline configuration
// (DefaultOptions) layered with the given options. It fails fast on the
// first invalid option.
func NewEngine(options ...Option) (*Engine, error) {
	e := &Engine{opts: DefaultOptions()}
	for _, opt := range options {
		if opt == nil {
			continue
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// applyPlatform overwrites o's platform characterization fields (area,
// reconfiguration cost, operator costs, CGC shape, clocking, communication)
// with p's, leaving the engine knobs (constraint, order, weights, move
// policy) untouched.
func applyPlatform(o *Options, p platform.Platform) {
	o.AFPGA = p.Fine.Area
	o.ReconfigCycles = p.Fine.ReconfigCycles
	o.Regions = p.Fine.Regions
	o.Costs = p.Fine.Costs
	o.NumCGCs = p.Coarse.NumCGCs
	o.CGCRows = p.Coarse.Rows
	o.CGCCols = p.Coarse.Cols
	o.MemPorts = p.Coarse.MemPorts
	o.ClockRatio = p.Coarse.ClockRatio
	o.RegBankWords = p.Coarse.RegBankWords
	o.CommCyclesPerWord = p.Comm.CyclesPerWord
	o.CommSyncCycles = p.Comm.SyncCycles
}

// WithPlatform layers the named preset's full platform characterization
// (see PlatformPresets) over the engine. "" and "default" select the
// paper's baseline platform.
func WithPlatform(preset string) Option {
	return func(e *Engine) error {
		if preset == "" || preset == "default" {
			applyPlatform(&e.opts, platform.Default())
			return nil
		}
		cfg, ok := platform.Lookup(preset)
		if !ok {
			return fmt.Errorf("hybridpart: unknown platform preset %q (have %v)", preset, platform.Names())
		}
		applyPlatform(&e.opts, cfg.Platform)
		e.costsSet = true
		return nil
	}
}

// WithArea sets the usable fine-grain area A_FPGA.
func WithArea(afpga int) Option {
	return func(e *Engine) error {
		if afpga <= 0 {
			return fmt.Errorf("hybridpart: A_FPGA must be positive, got %d", afpga)
		}
		e.opts.AFPGA = afpga
		return nil
	}
}

// WithReconfig sets the full-reconfiguration cost per temporal partition in
// FPGA cycles.
func WithReconfig(cycles int) Option {
	return func(e *Engine) error {
		if cycles < 0 {
			return fmt.Errorf("hybridpart: reconfiguration cost must be non-negative, got %d", cycles)
		}
		e.opts.ReconfigCycles = cycles
		return nil
	}
}

// WithRegions splits the fine-grain fabric into n independently
// reconfigurable regions (partial dynamic reconfiguration). 0 and 1 both
// select the paper's monolithic context; with more regions the area divides
// evenly, each swap costs ReconfigCycles/n (rounded up), and temporal
// partitions resident in different regions coexist instead of evicting each
// other. The knob participates in Options.Fingerprint.
func WithRegions(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("hybridpart: regions must be non-negative, got %d", n)
		}
		e.opts.Regions = n
		return nil
	}
}

// WithCosts installs an explicit fine-grain operator cost table. Unlike the
// legacy Options.Costs field, a table passed here is always used verbatim —
// an invalid (e.g. all-zero) table fails platform validation with a precise
// error instead of being silently replaced by the default characterization.
func WithCosts(t OpCosts) Option {
	return func(e *Engine) error {
		e.opts.Costs = t
		e.costsSet = true
		return nil
	}
}

// WithCGCs sets the number of CGCs in the coarse-grain data-path.
func WithCGCs(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("hybridpart: CGC count must be positive, got %d", n)
		}
		e.opts.NumCGCs = n
		return nil
	}
}

// WithCGCShape sets the rows × cols dimensions of each CGC.
func WithCGCShape(rows, cols int) Option {
	return func(e *Engine) error {
		if rows <= 0 || cols <= 0 {
			return fmt.Errorf("hybridpart: CGC shape must be positive, got %dx%d", rows, cols)
		}
		e.opts.CGCRows, e.opts.CGCCols = rows, cols
		return nil
	}
}

// WithMemPorts sets the shared-memory ports available per CGC cycle.
func WithMemPorts(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("hybridpart: memory ports must be positive, got %d", n)
		}
		e.opts.MemPorts = n
		return nil
	}
}

// WithClockRatio sets T_FPGA/T_CGC (the paper uses 3).
func WithClockRatio(r int) Option {
	return func(e *Engine) error {
		if r <= 0 {
			return fmt.Errorf("hybridpart: clock ratio must be positive, got %d", r)
		}
		e.opts.ClockRatio = r
		return nil
	}
}

// WithRegBank sizes the data-path register bank in words (0 disables it).
func WithRegBank(words int) Option {
	return func(e *Engine) error {
		if words < 0 {
			return fmt.Errorf("hybridpart: register bank size must be non-negative, got %d", words)
		}
		e.opts.RegBankWords = words
		return nil
	}
}

// WithComm parameterizes t_comm: the FPGA-cycle cost per transferred word
// and the fixed per-invocation synchronization cost.
func WithComm(cyclesPerWord, syncCycles int) Option {
	return func(e *Engine) error {
		if cyclesPerWord < 0 || syncCycles < 0 {
			return fmt.Errorf("hybridpart: communication costs must be non-negative, got %d/word + %d sync",
				cyclesPerWord, syncCycles)
		}
		e.opts.CommCyclesPerWord, e.opts.CommSyncCycles = cyclesPerWord, syncCycles
		return nil
	}
}

// WithConstraint sets the timing constraint in FPGA cycles. In Sweep it
// also becomes the fallback for cells whose spec gives no constraint axis,
// taking precedence over the per-benchmark paper defaults.
func WithConstraint(c int64) Option {
	return func(e *Engine) error {
		if c <= 0 {
			return fmt.Errorf("hybridpart: timing constraint must be positive, got %d", c)
		}
		e.opts.Constraint = c
		e.constraintSet = true
		return nil
	}
}

// WithOrder selects the kernel ordering strategy (OrderByTotalWeight is the
// paper's eq. 1).
func WithOrder(o KernelOrder) Option {
	return func(e *Engine) error {
		e.opts.Order = o
		return nil
	}
}

// WithMaxMoves bounds the number of kernels moved (0 = unlimited).
func WithMaxMoves(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("hybridpart: max moves must be non-negative, got %d", n)
		}
		e.opts.MaxMoves = n
		return nil
	}
}

// WithSkipNonImproving rejects moves whose communication overhead exceeds
// their gain (the ablation switch; the paper's engine moves
// unconditionally).
func WithSkipNonImproving(skip bool) Option {
	return func(e *Engine) error {
		e.opts.SkipNonImproving = skip
		return nil
	}
}

// WithWeights sets the static analysis weights per operation class (the
// paper uses ALU 1, MUL 2).
func WithWeights(alu, mul, div, mem int64) Option {
	return func(e *Engine) error {
		if alu < 0 || mul < 0 || div < 0 || mem < 0 {
			return fmt.Errorf("hybridpart: analysis weights must be non-negative")
		}
		e.opts.WeightALU, e.opts.WeightMul, e.opts.WeightDiv, e.opts.WeightMem = alu, mul, div, mem
		return nil
	}
}

// WithObjective selects the move-loop objective: ObjectiveModel (the
// paper's closed-form t_total, the default) or ObjectiveSimulated, which
// scores every trajectory prefix by replaying the profiled trace through the
// co-simulator under the engine's sim knobs (WithSimFrames/WithSimPorts/
// WithSimPrefetch) and keeps the mapping with the minimal simulated
// makespan. The simulated objective closes the estimation-vs-execution gap:
// frame pipelining, port contention and prefetch are invisible to the
// closed form, so the model can prefer a partition the simulator proves
// slower.
func WithObjective(o Objective) Option {
	return func(e *Engine) error {
		if _, err := ParseObjective(o.String()); err != nil {
			return fmt.Errorf("hybridpart: invalid objective %d", int(o))
		}
		e.opts.Objective = o
		return nil
	}
}

// WithRerank keeps the closed-form move loop but re-scores the k trajectory
// prefixes with the best model t_total by simulation, returning the one with
// the minimal simulated makespan (0 disables re-ranking, -1 re-scores every
// prefix — equivalent to WithObjective(ObjectiveSimulated)). It is the
// cheaper middle ground when a full simulated objective is too expensive.
func WithRerank(k int) Option {
	return func(e *Engine) error {
		if k < -1 {
			return fmt.Errorf("hybridpart: rerank k must be -1 (all), 0 (off) or positive, got %d", k)
		}
		e.opts.RerankK = k
		return nil
	}
}

// WithSimFrames sets the engine-level co-simulation frame count (0 = 1, the
// analytical model's operating point). The knob participates in
// Options.Fingerprint and is shared by Simulate, the simulated objective and
// re-ranking; per-call SimOptions override it for one Simulate call.
func WithSimFrames(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("hybridpart: sim frames must be non-negative, got %d", n)
		}
		e.opts.SimFrames = n
		return nil
	}
}

// WithSimPorts sets the engine-level transfer-channel width in shared-memory
// ports (0 = 1). See WithSimFrames for scope and fingerprinting.
func WithSimPorts(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("hybridpart: sim ports must be non-negative, got %d", n)
		}
		e.opts.SimPorts = n
		return nil
	}
}

// WithSimPrefetch enables configuration prefetch at the engine level. See
// WithSimFrames for scope and fingerprinting.
func WithSimPrefetch(on bool) Option {
	return func(e *Engine) error {
		e.opts.SimPrefetch = on
		return nil
	}
}

// WithEnergyBudget sets the energy budget for PartitionEnergy (arbitrary
// consistent units; see internal/energy for the characterization).
func WithEnergyBudget(budget float64) Option {
	return func(e *Engine) error {
		if budget <= 0 {
			return fmt.Errorf("hybridpart: energy budget must be positive, got %g", budget)
		}
		e.budget = budget
		return nil
	}
}

// WithObserver streams the engine's progress events (MoveEvent,
// EnergyMoveEvent, CellEvent) to fn. See Observer for the delivery
// guarantees.
func WithObserver(fn Observer) Option {
	return func(e *Engine) error {
		e.observer = fn
		return nil
	}
}

// WithWorkers sets the default sweep worker-pool size used when a SweepSpec
// leaves Workers at 0 (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("hybridpart: negative worker count %d", n)
		}
		e.workers = n
		return nil
	}
}

// WithOptions replaces the engine's entire knob set with a legacy Options
// value, preserving its v1 semantics exactly (in particular, a zero Costs
// table selects the default characterization). This is the bridge the v1
// compatibility shims are built on; new code should prefer the granular
// options.
func WithOptions(o Options) Option {
	return func(e *Engine) error {
		e.opts = o
		e.costsSet = false
		e.constraintSet = false
		return nil
	}
}

// Options returns the engine's resolved knob set as a legacy Options value
// (useful for displaying the effective configuration).
func (e *Engine) Options() Options { return e.opts }

// platformOf materializes the platform characterization, honoring an
// explicitly installed cost table.
func (e *Engine) platformOf(opts Options, costsSet bool) platform.Platform {
	if costsSet {
		return opts.platformUsing(opts.Costs)
	}
	return opts.platform()
}

// moveHook adapts the configured observer to the internal engine's per-move
// callback (nil when no observer is configured).
func (e *Engine) moveHook(constraint int64) func(partition.Move) {
	if e.observer == nil {
		return nil
	}
	seq := 0
	return func(m partition.Move) {
		seq++
		e.emit(MoveEvent{
			Seq:        seq,
			Block:      int(m.Block),
			CGCCycles:  m.CGCCycles,
			TotalAfter: m.TotalAfter,
			Constraint: constraint,
			Met:        m.TotalAfter <= constraint,
		})
	}
}

// Analyze runs the static+dynamic analysis step (Table 1 of the paper)
// against the workload's accumulated profile.
func (e *Engine) Analyze(w *Workload) (*Analysis, error) {
	app, prof, err := w.profiled()
	if err != nil {
		return nil, err
	}
	return app.Analyze(prof.Freq, e.opts), nil
}

// Partition runs the full methodology (steps 2–5) on the workload's
// accumulated profile. The context is checked between kernel moves;
// cancellation returns ctx.Err(). Each accepted move is streamed to the
// observer as a MoveEvent.
func (e *Engine) Partition(ctx context.Context, w *Workload) (*Result, error) {
	app, prof, err := w.profiled()
	if err != nil {
		return nil, err
	}
	return e.partitionApp(ctx, app, prof)
}

// PartitionProfiled is Partition on the raw v1 pair: a pre-compiled App
// and an explicit profile snapshot. It exists for callers that share one
// compile+profile across many knob sets — the partitioning service pairs
// it with ProfileBenchmarkCached so a cache miss on a new constraint does
// not recompile or re-profile the benchmark. Output is identical to
// Partition on a Workload holding the same app and profile.
func (e *Engine) PartitionProfiled(ctx context.Context, a *App, p *RunProfile) (*Result, error) {
	if a == nil || p == nil {
		return nil, fmt.Errorf("hybridpart: PartitionProfiled needs a non-nil app and profile")
	}
	return e.partitionApp(ctx, a, p)
}

// partitionApp is Partition on the raw v1 pair; the legacy App.Partition
// shim calls it directly.
func (e *Engine) partitionApp(ctx context.Context, a *App, p *RunProfile) (*Result, error) {
	return e.partitionCell(ctx, a, p, e.opts, e.costsSet, e.moveHook(e.opts.Constraint), nil)
}

// partitionCell runs one partitioning evaluation with an explicit knob set
// (Sweep resolves per-cell options and calls this per grid cell). When any
// co-simulation knob is active — the simulated objective, re-ranking, or an
// explicit frames/ports/prefetch operating point — it also scores the chosen
// mapping and the all-FPGA baseline by simulation, so model-objective runs
// report the simulated makespan of their choice for comparison. A non-nil
// onFrame additionally replays the chosen mapping once with per-frame
// callbacks (Sweep uses it to stream per-cell SimEvents).
func (e *Engine) partitionCell(ctx context.Context, a *App, p *RunProfile, opts Options,
	costsSet bool, onMove func(partition.Move), onFrame func(frame int, cycles int64)) (*Result, error) {
	res, _, err := e.partitionScored(ctx, a, p, opts, costsSet, onMove, onFrame, true)
	return res, err
}

// partitionScored is partitionCell returning the run's simScorer (nil when
// no sim knob is active) so callers that keep simulating — Engine.Simulate
// replays both mappings for its report — can reuse the scorer's Replayer
// instead of rebuilding the trace and schedules. report=false skips the
// final/baseline scoring of the chosen mapping for callers that are about
// to replay it anyway.
func (e *Engine) partitionScored(ctx context.Context, a *App, p *RunProfile, opts Options,
	costsSet bool, onMove func(partition.Move), onFrame func(frame int, cycles int64),
	report bool) (*Result, *simScorer, error) {
	an := a.Analyze(p.Freq, opts)
	plat := e.platformOf(opts, costsSet)
	cfg := partition.Config{
		Platform:         plat,
		Constraint:       opts.Constraint,
		Order:            opts.Order,
		Edges:            p.edges,
		MaxMoves:         opts.MaxMoves,
		SkipNonImproving: opts.SkipNonImproving,
		OnMove:           onMove,
		Objective:        opts.Objective,
		RerankK:          opts.RerankK,
	}
	var scorer *simScorer
	if simKnobsActive(opts) {
		var err error
		if scorer, err = newSimScorer(a, p, plat, simSpecOf(opts)); err != nil {
			return nil, nil, err
		}
		// The scorer's pool reuses the engine's worker budget (WithWorkers,
		// 0 = GOMAXPROCS), the same knob the sweep honors.
		scorer.workers = e.workers
		cfg.SimCost = scorer.Score
		if !debugSerialScoring {
			cfg.SimCostBatch = scorer.ScoreBatch
		}
	}
	res, err := partition.Partition(ctx, a.fprog, a.flat, an.rep, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := &Result{
		InitialCycles:     res.InitialCycles,
		InitialPartitions: res.InitialPartitions,
		FinalCycles:       res.FinalCycles,
		CyclesInCGC:       res.CyclesInCGC,
		TFPGA:             res.TFPGA,
		TCoarse:           res.TCoarse,
		TComm:             res.TComm,
		Constraint:        res.Constraint,
		Met:               res.Met,
		Objective:         res.Objective,
	}
	for _, b := range res.Moved {
		out.Moved = append(out.Moved, int(b))
	}
	for _, b := range res.Unmappable {
		out.Unmappable = append(out.Unmappable, int(b))
	}
	for _, b := range res.Skipped {
		out.Skipped = append(out.Skipped, int(b))
	}
	if scorer != nil && report {
		repCtx, repSpan := obs.Start(ctx, "sim.report")
		defer repSpan.End()
		ctx = repCtx
		// Both calls are memo hits when the objective already scored them.
		total, err := scorer.Score(ctx, res.Moved)
		if err != nil {
			return nil, nil, err
		}
		base, err := scorer.Score(ctx, nil)
		if err != nil {
			return nil, nil, err
		}
		out.SimulatedCycles = total
		out.SimulatedBaselineCycles = base
		if total > 0 {
			out.SimulatedSpeedup = float64(base) / float64(total)
		}
		out.SimStats = scorer.stats
		if onFrame != nil {
			cfg := scorer.cfg
			cfg.OnFrame = onFrame
			if _, err := scorer.rep.Simulate(ctx, cfg, res.Moved); err != nil {
				return nil, nil, err
			}
		}
	}
	return out, scorer, nil
}

// PartitionEnergy runs the energy-constrained engine against the budget set
// with WithEnergyBudget. The context is checked between kernel moves; each
// accepted move is streamed to the observer as an EnergyMoveEvent.
func (e *Engine) PartitionEnergy(ctx context.Context, w *Workload) (*EnergyResult, error) {
	app, prof, err := w.profiled()
	if err != nil {
		return nil, err
	}
	return e.partitionEnergyApp(ctx, app, prof)
}

// PartitionEnergyProfiled is PartitionEnergy on the raw v1 pair — see
// PartitionProfiled for when to prefer it over the Workload path.
func (e *Engine) PartitionEnergyProfiled(ctx context.Context, a *App, p *RunProfile) (*EnergyResult, error) {
	if a == nil || p == nil {
		return nil, fmt.Errorf("hybridpart: PartitionEnergyProfiled needs a non-nil app and profile")
	}
	return e.partitionEnergyApp(ctx, a, p)
}

// partitionEnergyApp is PartitionEnergy on the raw v1 pair; the legacy
// App.PartitionEnergy shim calls it directly.
func (e *Engine) partitionEnergyApp(ctx context.Context, a *App, p *RunProfile) (*EnergyResult, error) {
	if e.budget <= 0 {
		return nil, fmt.Errorf("hybridpart: PartitionEnergy needs a positive energy budget (use WithEnergyBudget)")
	}
	rep := a.analyze(p.Freq, e.opts.weights())
	cfg := energy.Config{
		Platform: e.platformOf(e.opts, e.costsSet),
		Costs:    energy.DefaultCosts(),
		Budget:   e.budget,
		Order:    e.opts.Order,
		Edges:    p.edges,
	}
	if e.observer != nil {
		budget := e.budget
		seq := 0
		cfg.OnMove = func(m energy.Move) {
			seq++
			e.emit(EnergyMoveEvent{
				Seq:         seq,
				Block:       int(m.Block),
				EnergyAfter: m.EnergyAfter,
				Budget:      budget,
				Met:         m.EnergyAfter <= budget,
			})
		}
	}
	res, err := energy.Partition(ctx, a.fprog, a.flat, rep, cfg)
	if err != nil {
		return nil, err
	}
	out := &EnergyResult{
		InitialEnergy: res.InitialEnergy,
		FinalEnergy:   res.FinalEnergy,
		Initial:       EnergyBreakdown(res.Initial),
		Final:         EnergyBreakdown(res.Final),
		Budget:        res.Budget,
		Met:           res.Met,
	}
	out.Moved = blockIDsToInts(res.Moved)
	out.Unmappable = blockIDsToInts(res.Unmappable)
	return out, nil
}

// Sweep runs the design-space-exploration engine over the spec: each
// benchmark is compiled and profiled once (via ProfileBenchmarkCached) and
// every grid cell starts from the engine's configured knobs, layered with
// the cell's preset and axis overrides, then partitioned on a bounded
// worker pool. An empty cell preset inherits the engine's platform; the
// literal preset "default" pins the cell to the paper's baseline platform
// regardless of the engine configuration. Per-cell failures are recorded in the outcome's Err field
// rather than aborting the sweep; outcomes land in expansion order
// regardless of the worker count.
//
// The context is threaded through the worker pool and into every cell's
// move loop: cancelling it abandons queued cells, interrupts in-flight
// ones, and returns ctx.Err() together with a partial SweepResult (Partial
// set, Outcomes holding only the cells that completed before the cut).
// Completed cells are streamed to the observer as CellEvents, always in
// expansion order. Per-move events are not forwarded from inside sweep
// cells — parallel cells would interleave them nondeterministically.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if spec.Workers == 0 {
		spec.Workers = e.workers
	}
	// simBuf parks each simulated cell's per-frame SimEvents until the cell
	// is reported: the progress callback flushes them in expansion order
	// right before the cell's CellEvent, keeping the observer stream
	// deterministic for any worker count.
	var simBuf sync.Map // cell index -> []SimEvent
	eval := func(p SweepPoint) (SweepOutcome, error) {
		app, prof, err := ProfileBenchmarkCached(p.Benchmark, spec.Seed)
		if err != nil {
			return SweepOutcome{}, err
		}
		// Preset resolution: "" inherits the engine's configured platform,
		// "default" explicitly selects the paper baseline, anything else is
		// a registry lookup.
		opts, costsSet := e.opts, e.costsSet
		switch p.Preset {
		case "":
		case "default":
			applyPlatform(&opts, platform.Default())
			costsSet = true
		default:
			cfg, ok := platform.Lookup(p.Preset)
			if !ok {
				return SweepOutcome{}, fmt.Errorf("hybridpart: unknown platform preset %q (have %v)",
					p.Preset, platform.Names())
			}
			applyPlatform(&opts, cfg.Platform)
			costsSet = true
		}
		if p.AFPGA > 0 {
			opts.AFPGA = p.AFPGA
		}
		if p.NumCGCs > 0 {
			opts.NumCGCs = p.NumCGCs
		}
		if p.Regions > 0 {
			opts.Regions = p.Regions
		}
		constraint := p.Constraint
		if constraint == 0 && e.constraintSet {
			constraint = e.opts.Constraint
		}
		if constraint == 0 {
			constraint = DefaultConstraint(p.Benchmark)
		}
		if constraint == 0 {
			return SweepOutcome{}, fmt.Errorf("hybridpart: no constraint given and no default for benchmark %q", p.Benchmark)
		}
		opts.Constraint = constraint

		// Co-simulation resolution: the cell's axes override the engine's
		// sim knobs; a bool/string axis applies only when present (its zero
		// value cannot mean "unset"). Any sim axis in the spec forces
		// simulation scoring, so an objectives=["model","sim"] sweep charts
		// the simulated makespan of both loops side by side.
		if p.Frames > 0 {
			opts.SimFrames = p.Frames
		}
		if p.Ports > 0 {
			opts.SimPorts = p.Ports
		}
		if len(spec.Prefetch) > 0 {
			opts.SimPrefetch = p.Prefetch
		}
		if p.Objective != "" {
			obj, err := ParseObjective(p.Objective)
			if err != nil {
				return SweepOutcome{}, err
			}
			// The axis selects the whole mode: an explicit "model" cell is
			// the pure closed-form loop, not closed-form-plus-rerank.
			opts.Objective = obj
			opts.RerankK = 0
		}
		if spec.Simulates() && opts.SimFrames == 0 {
			opts.SimFrames = 1 // activate scoring at the model's operating point
		}
		simFrames := opts.SimFrames
		if simFrames == 0 {
			simFrames = 1
		}
		simPorts := opts.SimPorts
		if simPorts == 0 {
			simPorts = 1
		}

		var onFrame func(int, int64)
		var cellEvents []SimEvent
		if e.observer != nil && simKnobsActive(opts) {
			onFrame = func(frame int, cycles int64) {
				cellEvents = append(cellEvents, SimEvent{
					Stage: "partitioned", Cell: p.Index, Frame: frame, Frames: simFrames, Cycles: cycles,
				})
			}
		}
		res, err := e.partitionCell(ctx, app, prof, opts, costsSet, nil, onFrame)
		if err != nil {
			return SweepOutcome{}, err
		}
		if len(cellEvents) > 0 {
			simBuf.Store(p.Index, cellEvents)
		}
		out := SweepOutcome{
			InitialCycles:       res.InitialCycles,
			InitialPartitions:   res.InitialPartitions,
			CyclesInCGC:         res.CyclesInCGC,
			FinalCycles:         res.FinalCycles,
			TFPGA:               res.TFPGA,
			TCoarse:             res.TCoarse,
			TComm:               res.TComm,
			EffectiveAFPGA:      opts.AFPGA,
			EffectiveCGCs:       opts.NumCGCs,
			EffectiveRegions:    opts.Regions,
			EffectiveConstraint: constraint,
			Met:                 res.Met,
			Moved:               res.Moved,
			ReductionPct:        res.ReductionPct(),
		}
		if res.FinalCycles > 0 {
			out.Speedup = float64(res.InitialCycles) / float64(res.FinalCycles)
		}
		if res.SimulatedCycles > 0 || res.SimulatedBaselineCycles > 0 {
			out.Simulated = true
			out.SimCycles = res.SimulatedCycles
			out.SimBaselineCycles = res.SimulatedBaselineCycles
			out.SimSpeedup = res.SimulatedSpeedup
			out.EffectiveFrames = simFrames
			out.EffectivePorts = simPorts
			out.EffectivePrefetch = opts.SimPrefetch
			out.EffectiveObjective = opts.Objective.String()
		}
		return out, nil
	}
	var progress explore.Progress
	if e.observer != nil {
		progress = func(o explore.Outcome, done, total int) {
			if evs, ok := simBuf.LoadAndDelete(o.Index); ok {
				for _, se := range evs.([]SimEvent) {
					e.emit(se)
				}
			}
			e.emit(CellEvent{Outcome: o, Done: done, Total: total})
		}
	}
	return explore.RunObserved(ctx, spec, eval, progress)
}
