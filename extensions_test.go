package hybridpart

import (
	"strings"
	"testing"
)

func partitionFIROneMove(t *testing.T) *Result {
	t.Helper()
	app, prof := compileFIR(t)
	opts := DefaultOptions()
	opts.Constraint = 1
	opts.MaxMoves = 1
	res, err := app.Partition(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnergyBreakdownTotal(t *testing.T) {
	b := EnergyBreakdown{Fine: 1.5, Coarse: 2.25, Reconfig: 0.5, Comm: 0.75}
	if got := b.Total(); got != 5 {
		t.Fatalf("Total() = %v, want 5", got)
	}
	if (EnergyBreakdown{}).Total() != 0 {
		t.Fatal("zero breakdown has nonzero total")
	}
}

func TestEnergyReductionPctEdgeCases(t *testing.T) {
	r := &EnergyResult{InitialEnergy: 0, FinalEnergy: 0}
	if r.ReductionPct() != 0 {
		t.Fatal("zero initial energy must report 0% reduction, not NaN")
	}
	r = &EnergyResult{InitialEnergy: 200, FinalEnergy: 50}
	if got := r.ReductionPct(); got != 75 {
		t.Fatalf("ReductionPct() = %v, want 75", got)
	}
}

func TestPartitionEnergyInfeasibleBudget(t *testing.T) {
	app, prof := compileFIR(t)
	opts := DefaultOptions()
	// A budget no partitioning can reach: the engine reports best effort
	// with Met == false instead of erroring.
	res, err := app.PartitionEnergy(prof, opts, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("absurd budget reported met: %+v", res)
	}
	if res.FinalEnergy > res.InitialEnergy {
		t.Fatalf("energy increased: %v -> %v", res.InitialEnergy, res.FinalEnergy)
	}
}

func TestPipelineModelProperties(t *testing.T) {
	pm := partitionFIROneMove(t).Pipeline()

	if pm.Sequential(0) != 0 || pm.Pipelined(0) != 0 {
		t.Fatal("zero frames must cost zero cycles")
	}
	// Sequential grows linearly; pipelined never exceeds it.
	prevSeq, prevPipe := int64(0), int64(0)
	for _, n := range []int{1, 2, 5, 10, 100} {
		seq, pipe := pm.Sequential(n), pm.Pipelined(n)
		if seq < prevSeq || pipe < prevPipe {
			t.Fatalf("frame sweep not monotone at n=%d", n)
		}
		if pipe > seq {
			t.Fatalf("pipelined (%d) slower than sequential (%d) at n=%d", pipe, seq, n)
		}
		prevSeq, prevPipe = seq, pipe
	}
	// Two-stage overlap bounds the speedup by 2x.
	if s := pm.Speedup(1000); s < 1 || s > 2 {
		t.Fatalf("speedup %v outside [1,2]", s)
	}
}

func TestPipelineUtilization(t *testing.T) {
	pm := partitionFIROneMove(t).Pipeline()
	fine, coarse := pm.Utilization()
	for _, u := range []float64{fine, coarse} {
		if u < 0 || u > 1 {
			t.Fatalf("utilization outside [0,1]: fine=%v coarse=%v", fine, coarse)
		}
	}
	// One of the fabrics is the bottleneck stage and stays saturated.
	if fine != 1 && coarse != 1 {
		t.Fatalf("no saturated stage: fine=%v coarse=%v", fine, coarse)
	}
}

func TestPipelineReport(t *testing.T) {
	pm := partitionFIROneMove(t).Pipeline()
	rep := pm.Report([]int{1, 10, 100})
	for _, want := range []string{"speedup", "1", "10", "100"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
