package hybridpart

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybridpart/internal/coarsegrain"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/obs"
	"hybridpart/internal/platform"
)

// benchState caches the compiled + profiled benchmarks so the expensive
// interpreter runs happen once per process.
var benchState struct {
	once     sync.Once
	err      error
	ofdmApp  *App
	ofdmProf *RunProfile
	jpegApp  *App
	jpegProf *RunProfile
}

func benchSetup(b *testing.B) (ofdmApp *App, ofdmProf *RunProfile, jpegApp *App, jpegProf *RunProfile) {
	b.Helper()
	benchState.once.Do(func() {
		benchState.ofdmApp, benchState.ofdmProf, benchState.err = ProfileBenchmark(BenchOFDM, 1)
		if benchState.err != nil {
			return
		}
		benchState.jpegApp, benchState.jpegProf, benchState.err = ProfileBenchmark(BenchJPEG, 1)
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.ofdmApp, benchState.ofdmProf, benchState.jpegApp, benchState.jpegProf
}

// BenchmarkTable1OFDM regenerates the OFDM half of Table 1: the analysis
// step (static weights + eq. 1 kernel ordering) over the profiled CDFG.
func BenchmarkTable1OFDM(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	opts := DefaultOptions()
	var top int64
	for i := 0; i < b.N; i++ {
		an := app.Analyze(prof.Freq, opts)
		top = an.Kernels[0].TotalWeight
	}
	b.ReportMetric(float64(top), "top-kernel-weight")
}

// BenchmarkTable1JPEG regenerates the JPEG half of Table 1.
func BenchmarkTable1JPEG(b *testing.B) {
	_, _, app, prof := benchSetup(b)
	opts := DefaultOptions()
	var top int64
	for i := 0; i < b.N; i++ {
		an := app.Analyze(prof.Freq, opts)
		top = an.Kernels[0].TotalWeight
	}
	b.ReportMetric(float64(top), "top-kernel-weight")
}

// partitionBench runs one Table 2/3 cell and reports its headline numbers.
func partitionBench(b *testing.B, app *App, prof *RunProfile, afpga, ncgc int, constraint int64) {
	b.Helper()
	opts := DefaultOptions()
	opts.AFPGA = afpga
	opts.NumCGCs = ncgc
	opts.Constraint = constraint
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = app.Partition(prof, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.InitialCycles), "initial-cycles")
	b.ReportMetric(float64(res.FinalCycles), "final-cycles")
	b.ReportMetric(res.ReductionPct(), "%reduction")
	b.ReportMetric(float64(len(res.Moved)), "moves")
	if !res.Met {
		b.Fatalf("constraint %d not met (final %d)", constraint, res.FinalCycles)
	}
}

// BenchmarkTable2OFDMPartitioning regenerates the four Table 2 cells
// (A_FPGA ∈ {1500, 5000} × {two, three} 2×2 CGCs, constraint 60000).
func BenchmarkTable2OFDMPartitioning(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	for _, afpga := range []int{1500, 5000} {
		for _, ncgc := range []int{2, 3} {
			b.Run(fmt.Sprintf("A%d_CGC%d", afpga, ncgc), func(b *testing.B) {
				partitionBench(b, app, prof, afpga, ncgc, 60000)
			})
		}
	}
}

// BenchmarkTable3JPEGPartitioning regenerates the four Table 3 cells
// (constraint 21×10⁶ FPGA cycles; see EXPERIMENTS.md for the mapping to
// the paper's constraint).
func BenchmarkTable3JPEGPartitioning(b *testing.B) {
	_, _, app, prof := benchSetup(b)
	for _, afpga := range []int{1500, 5000} {
		for _, ncgc := range []int{2, 3} {
			b.Run(fmt.Sprintf("A%d_CGC%d", afpga, ncgc), func(b *testing.B) {
				partitionBench(b, app, prof, afpga, ncgc, 21000000)
			})
		}
	}
}

// BenchmarkSweepEngine compares the two ways of producing the paper's
// evaluation grids. "serial-recompile" is the seed behavior: every cell of
// the A_FPGA × CGC-count grid compiles and re-profiles the benchmark from
// scratch before partitioning. "shared-parallel" is the explore engine:
// one compiled+profiled App shared across all cells, evaluated on a worker
// pool. Profiling is input-deterministic, so both paths produce identical
// numbers (TestSweepMatchesSerial); only the wall clock differs.
func BenchmarkSweepEngine(b *testing.B) {
	areas := []int{1500, 5000}
	ncgcs := []int{1, 2, 4}
	b.Run("serial-recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, afpga := range areas {
				for _, ncgc := range ncgcs {
					app, prof, err := ProfileBenchmark(BenchOFDM, 1)
					if err != nil {
						b.Fatal(err)
					}
					opts := DefaultOptions()
					opts.AFPGA = afpga
					opts.NumCGCs = ncgc
					opts.Constraint = 60000
					if _, err := app.Partition(prof, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("shared-parallel", func(b *testing.B) {
		spec := SweepSpec{
			Benchmarks: []string{BenchOFDM},
			Areas:      areas,
			CGCs:       ncgcs,
			Seed:       1,
			Workers:    4,
		}
		for i := 0; i < b.N; i++ {
			rs, err := Sweep(spec)
			if err != nil {
				b.Fatal(err)
			}
			if failed := rs.Failed(); len(failed) > 0 {
				b.Fatalf("sweep cell failed: %+v", failed[0])
			}
		}
	})
}

// BenchmarkFigure2Flow times the complete methodology (steps 2-5) on the
// OFDM transmitter with the paper's constraint.
func BenchmarkFigure2Flow(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	opts := DefaultOptions()
	opts.Constraint = 60000
	for i := 0; i < b.N; i++ {
		if _, err := app.Partition(prof, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3TemporalPartitioning exercises the Figure 3 algorithm
// itself across A_FPGA values on the flattened OFDM CDFG, reporting the
// partition count at each area.
func BenchmarkFigure3TemporalPartitioning(b *testing.B) {
	app, _, _, _ := benchSetup(b)
	for _, area := range []int{768, 1500, 5000} {
		b.Run(fmt.Sprintf("A%d", area), func(b *testing.B) {
			fg := platform.FineGrain{Area: area, ReconfigCycles: 32, Costs: platform.DefaultOpCosts()}
			var parts int
			for i := 0; i < b.N; i++ {
				pm, err := finegrain.PackFunction(app.flat, fg, nil)
				if err != nil {
					b.Fatal(err)
				}
				parts = pm.NumPartitions
			}
			b.ReportMetric(float64(parts), "partitions")
		})
	}
}

// BenchmarkDynamicAnalysisOFDM times the dynamic-analysis substrate: one
// profiled interpretation of the OFDM transmitter (6 payload symbols).
func BenchmarkDynamicAnalysisOFDM(b *testing.B) {
	app, _, _, _ := benchSetup(b)
	bits := OFDMBits(1)
	for i := 0; i < b.N; i++ {
		run := app.NewRunner()
		if err := run.SetGlobal(OFDMBitsArray, bits); err != nil {
			b.Fatal(err)
		}
		if _, err := run.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §6) ---

// BenchmarkAblationKernelOrder compares the paper's eq. 1 ordering against
// frequency-only and static-weight-only orderings at a fixed move budget.
func BenchmarkAblationKernelOrder(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	for _, order := range []KernelOrder{OrderByTotalWeight, OrderByFreq, OrderByOpWeight} {
		b.Run(order.String(), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Order = order
			opts.Constraint = 1
			opts.MaxMoves = 3
			var final int64
			for i := 0; i < b.N; i++ {
				res, err := app.Partition(prof, opts)
				if err != nil {
					b.Fatal(err)
				}
				final = res.FinalCycles
			}
			b.ReportMetric(float64(final), "final-cycles")
		})
	}
}

// wideSyntheticDFG builds a width-W multiply-accumulate kernel: W
// independent (a*b)+c chains, the shape where extra CGCs pay off.
func wideSyntheticDFG(width int) *ir.DFG {
	f := ir.NewFunction("wide")
	x := f.NewReg("x")
	for i := 0; i < width; i++ {
		m := f.NewReg("")
		f.Blocks[0].Instrs = append(f.Blocks[0].Instrs,
			ir.Instr{Op: ir.OpMul, Dst: m, A: ir.Reg(x), B: ir.Imm(int32(i + 1))},
			ir.Instr{Op: ir.OpAdd, Dst: f.NewReg(""), A: ir.Reg(m), B: ir.Reg(x)})
	}
	f.Blocks[0].Term = ir.Terminator{Kind: ir.TermReturn}
	return ir.BuildDFG(f, f.Blocks[0])
}

// BenchmarkAblationCGCShape sweeps data-path shapes over a wide synthetic
// kernel, reporting the schedule latency (T_CGC cycles). This shows the
// regime where a third CGC helps — the paper's benchmark kernels (and ours)
// are dependence-bound, so Tables 2-3 barely move with the CGC count.
func BenchmarkAblationCGCShape(b *testing.B) {
	d := wideSyntheticDFG(24)
	shapes := []struct {
		name string
		cg   platform.CoarseGrain
	}{
		{"one2x2", platform.CoarseGrain{NumCGCs: 1, Rows: 2, Cols: 2, MemPorts: 2, ClockRatio: 3}},
		{"two2x2", platform.CoarseGrain{NumCGCs: 2, Rows: 2, Cols: 2, MemPorts: 2, ClockRatio: 3}},
		{"three2x2", platform.CoarseGrain{NumCGCs: 3, Rows: 2, Cols: 2, MemPorts: 2, ClockRatio: 3}},
		{"four2x2", platform.CoarseGrain{NumCGCs: 4, Rows: 2, Cols: 2, MemPorts: 2, ClockRatio: 3}},
		{"one4x4", platform.CoarseGrain{NumCGCs: 1, Rows: 4, Cols: 4, MemPorts: 2, ClockRatio: 3}},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			var lat int64
			for i := 0; i < b.N; i++ {
				sched, err := coarsegrain.MapDFG(d, s.cg, nil)
				if err != nil {
					b.Fatal(err)
				}
				lat = sched.Latency
			}
			b.ReportMetric(float64(lat), "latency-cycles")
		})
	}
}

// BenchmarkAblationCommCost sweeps the shared-memory word cost and reports
// the achieved final cycles: the crossover where moving kernels stops
// paying is the communication-sensitivity the t_comm model exists for.
func BenchmarkAblationCommCost(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	for _, cyclesPerWord := range []int{0, 1, 4, 16, 64} {
		b.Run(fmt.Sprintf("cpw%d", cyclesPerWord), func(b *testing.B) {
			opts := DefaultOptions()
			opts.CommCyclesPerWord = cyclesPerWord
			opts.Constraint = 1
			opts.MaxMoves = 4
			var final int64
			for i := 0; i < b.N; i++ {
				res, err := app.Partition(prof, opts)
				if err != nil {
					b.Fatal(err)
				}
				final = res.FinalCycles
			}
			b.ReportMetric(float64(final), "final-cycles")
		})
	}
}

// BenchmarkAblationRegisterBank compares the CGC register-bank model
// against streaming every access through the shared-memory ports.
func BenchmarkAblationRegisterBank(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	for _, bank := range []int{0, 256} {
		b.Run(fmt.Sprintf("bank%d", bank), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Constraint = 1
			opts.MaxMoves = 2
			opts.RegBankWords = bank
			var final int64
			for i := 0; i < b.N; i++ {
				res, err := app.Partition(prof, opts)
				if err != nil {
					b.Fatal(err)
				}
				final = res.FinalCycles
			}
			b.ReportMetric(float64(final), "final-cycles")
		})
	}
}

// BenchmarkPipelining reports the frame-pipelining extension: speedup of
// overlapped fine/coarse execution over 100 frames after partitioning.
func BenchmarkPipelining(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	opts := DefaultOptions()
	opts.Constraint = 60000
	res, err := app.Partition(prof, opts)
	if err != nil {
		b.Fatal(err)
	}
	pm := res.Pipeline()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = pm.Speedup(100)
	}
	b.ReportMetric(speedup, "speedup-100-frames")
}

// BenchmarkEnergyPartitioning reports the future-work energy engine on the
// OFDM transmitter at a 70% energy budget.
func BenchmarkEnergyPartitioning(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	opts := DefaultOptions()
	loose, err := app.PartitionEnergy(prof, opts, 1e18)
	if err != nil {
		b.Fatal(err)
	}
	budget := loose.InitialEnergy * 0.7
	var red float64
	for i := 0; i < b.N; i++ {
		res, err := app.PartitionEnergy(prof, opts, budget)
		if err != nil {
			b.Fatal(err)
		}
		red = res.ReductionPct()
	}
	b.ReportMetric(red, "%energy-reduction")
}

// BenchmarkSimulate measures the co-simulator's full flow on the paper
// benchmarks: partition, reconstruct the profiled trace, and replay it
// event by event against both mappings. simcycles/s is the simulated
// platform time covered per wall-clock second — the simulator's headline
// throughput (CI publishes it via cmd/benchjson as BENCH_sim.json).
func BenchmarkSimulate(b *testing.B) {
	for _, bench := range Benchmarks() {
		b.Run(bench, func(b *testing.B) {
			app, prof, err := ProfileBenchmarkCached(bench, 1)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewEngine(WithConstraint(DefaultConstraint(bench)))
			if err != nil {
				b.Fatal(err)
			}
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := eng.SimulateProfiled(context.Background(), app, prof)
				if err != nil {
					b.Fatal(err)
				}
				total += rep.TotalCycles + rep.BaselineCycles
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// BenchmarkSimulateFrames measures the multi-frame pipeline replay, the
// regime where per-frame event scheduling dominates.
func BenchmarkSimulateFrames(b *testing.B) {
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(WithConstraint(60000))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := eng.SimulateProfiled(context.Background(), app, prof,
			SimFrames(32), SimPrefetch(true)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegions prices the partial-dynamic-reconfiguration axis on the
// reconfiguration-bound OFDM operating point (A_FPGA 1200, 8 pipelined
// frames): the monolithic context, the monolithic context with prefetch
// (the single-context model's best mitigation), and two independently
// reconfigurable regions. Each run reports the simulated makespan and
// speedup; cmd/benchjson publishes the sub-benchmarks as
// BENCH_regions.json, and CI gates r2's makespan strictly below
// r1_prefetch's.
func BenchmarkRegions(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	modes := []struct {
		name string
		opt  []Option
	}{
		{"r1", nil},
		{"r1_prefetch", []Option{WithSimPrefetch(true)}},
		{"r2", []Option{WithRegions(2)}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := append([]Option{WithConstraint(60000), WithArea(1200), WithSimFrames(8)}, mode.opt...)
			eng, err := NewEngine(opts...)
			if err != nil {
				b.Fatal(err)
			}
			var rep *SimReport
			for i := 0; i < b.N; i++ {
				if rep, err = eng.SimulateProfiled(context.Background(), app, prof); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.TotalCycles), "sim-makespan")
			b.ReportMetric(rep.Speedup(), "sim-speedup")
		})
	}
}

// BenchmarkObjective compares the move-loop objectives on OFDM at 8
// pipelined frames: the closed-form model loop, the fully simulation-scored
// loop, and rerank(3), the cheap middle ground. Each run reports the chosen
// mapping's simulated makespan and speedup, so the published artifact
// (BENCH_objective.json via cmd/benchjson) tracks both the wall-time cost
// of feedback-directed partitioning and the execution-level speedup it
// buys back.
func BenchmarkObjective(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	modes := []struct {
		name string
		opt  Option
	}{
		{"model", WithObjective(ObjectiveModel)},
		{"sim", WithObjective(ObjectiveSimulated)},
		{"rerank3", WithRerank(3)},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			eng, err := NewEngine(WithConstraint(60000), WithSimFrames(8), mode.opt)
			if err != nil {
				b.Fatal(err)
			}
			var res *Result
			for i := 0; i < b.N; i++ {
				if res, err = eng.PartitionProfiled(context.Background(), app, prof); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.SimulatedCycles), "sim-makespan")
			b.ReportMetric(res.SimulatedSpeedup, "sim-speedup")
			b.ReportMetric(float64(len(res.Moved)), "moves")
		})
	}
}

// BenchmarkObjectiveParallel measures the batched simulation-scored argmin
// against the PR-5 serial path: "serial" re-enables the one-candidate-at-a-
// time full-report replay (debugSerialScoring), while wN runs the live
// branch-and-bound batch scorer with an N-worker budget. On a single-core
// host the speedup comes from pruning, arena reuse and report-free replays
// rather than concurrency, so wN tracks w1 closely there; allocs/op pins
// the arena's steady-state zero-allocation claim. cmd/benchjson publishes
// the sub-benchmarks (and the w8-over-serial speedup) in
// BENCH_objective.json, which CI gates at >= 3x.
func BenchmarkObjectiveParallel(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	run := func(b *testing.B, workers int, serialScoring bool) {
		eng, err := NewEngine(WithConstraint(60000), WithSimFrames(8),
			WithObjective(ObjectiveSimulated), WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		debugSerialScoring = serialScoring
		defer func() { debugSerialScoring = false }()
		b.ReportAllocs()
		b.ResetTimer()
		var res *Result
		for i := 0; i < b.N; i++ {
			if res, err = eng.PartitionProfiled(context.Background(), app, prof); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(res.SimulatedCycles), "sim-makespan")
		b.ReportMetric(float64(res.SimStats.Pruned), "pruned")
		b.ReportMetric(float64(res.SimStats.Scored), "scored")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, true) })
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { run(b, w, false) })
	}
}

// BenchmarkTraceOverhead gates the cost of the tracing instrumentation.
// With tracing disabled every instrumented call site pays exactly one
// obs.Start on a span-less context — a context lookup returning nil — so
// the disabled-tracer regression versus uninstrumented code is (span
// starts per run) x (nil-path cost per start) over the run's wall time.
// The benchmark prices the nil path directly, counts a real run's span
// starts from a traced execution, and reports that model as overhead_pct
// on the span-heaviest workload, the simulation-scored move loop.
// enabled-pct additionally reports the measured slowdown of FULL tracing
// (interleaved disabled/enabled pairs, cancelling cache-warming drift) for
// the trajectory record. cmd/benchjson publishes both as BENCH_trace.json;
// CI gates overhead_pct < 2.
func BenchmarkTraceOverhead(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	eng, err := NewEngine(WithConstraint(60000), WithSimFrames(8),
		WithObjective(ObjectiveSimulated))
	if err != nil {
		b.Fatal(err)
	}
	// One untimed warmup so neither arm of the first timed pair pays
	// one-time costs the other does not.
	if _, err := eng.PartitionProfiled(context.Background(), app, prof); err != nil {
		b.Fatal(err)
	}

	// Span-start volume of one run, counted by actually tracing one.
	tracer := obs.New(obs.Config{Service: "bench", RingSize: 1})
	ctx, root := tracer.StartRoot(context.Background(), "bench", obs.SpanContext{})
	if _, err := eng.PartitionProfiled(ctx, app, prof); err != nil {
		b.Fatal(err)
	}
	root.End()
	traces := tracer.Traces()
	if len(traces) == 0 || len(traces[0].Spans) < 3 {
		b.Fatal("traced run recorded no spans; the benchmark is not measuring tracing")
	}
	spansPerOp := float64(len(traces[0].Spans)) + float64(traces[0].DroppedSpans)

	// Price of one disabled call site: Start on a bare context.
	bare := context.Background()
	const nilIters = 1 << 20
	t0 := time.Now()
	for i := 0; i < nilIters; i++ {
		if _, sp := obs.Start(bare, "x"); sp != nil {
			b.Fatal("bare context produced a span")
		}
	}
	nilStartNs := float64(time.Since(t0).Nanoseconds()) / nilIters

	var offNs, onNs time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := eng.PartitionProfiled(context.Background(), app, prof); err != nil {
			b.Fatal(err)
		}
		offNs += time.Since(start)

		ctx, root := tracer.StartRoot(context.Background(), "bench", obs.SpanContext{})
		start = time.Now()
		if _, err := eng.PartitionProfiled(ctx, app, prof); err != nil {
			b.Fatal(err)
		}
		onNs += time.Since(start)
		root.End()
	}
	b.StopTimer()
	disabledNs := float64(offNs.Nanoseconds()) / float64(b.N)
	b.ReportMetric(spansPerOp*nilStartNs/disabledNs*100, "overhead_pct")
	b.ReportMetric(float64(onNs-offNs)/float64(offNs)*100, "enabled-pct")
	b.ReportMetric(spansPerOp, "spans/op")
	b.ReportMetric(nilStartNs, "nilstart-ns")
	b.ReportMetric(disabledNs, "disabled-ns/op")
}

// BenchmarkTelemetryOverhead gates the steady-state cost of the flight
// recorder built on top of tracing: the per-request stage-histogram fold
// (StageAgg.Observe, run on every trace finalize) and the periodic
// runtime/metrics sample. Both are priced directly — Observe against a
// real traced run's span set, SampleNow on a live collector — and modeled
// against the untraced run time of the span-heaviest workload: per op the
// server pays one Observe plus the sampler's share of wall time at the
// default 10s -telemetry-interval. cmd/benchjson publishes the model as
// BENCH_telemetry.json; CI gates overhead_pct < 2.
func BenchmarkTelemetryOverhead(b *testing.B) {
	app, prof, _, _ := benchSetup(b)
	eng, err := NewEngine(WithConstraint(60000), WithSimFrames(8),
		WithObjective(ObjectiveSimulated))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.PartitionProfiled(context.Background(), app, prof); err != nil {
		b.Fatal(err)
	}

	// A realistic trace to fold: the span set of one traced run.
	tracer := obs.New(obs.Config{Service: "bench", RingSize: 1})
	ctx, root := tracer.StartRoot(context.Background(), "bench", obs.SpanContext{},
		obs.String("endpoint", "/v1/partition"))
	if _, err := eng.PartitionProfiled(ctx, app, prof); err != nil {
		b.Fatal(err)
	}
	root.End()
	traces := tracer.Traces()
	if len(traces) == 0 || len(traces[0].Spans) < 3 {
		b.Fatal("traced run recorded no spans; the benchmark is not measuring telemetry")
	}

	agg := obs.NewStageAgg(nil, nil)
	const aggIters = 1 << 14
	t0 := time.Now()
	for i := 0; i < aggIters; i++ {
		agg.Observe(traces[0], true)
	}
	observeNs := float64(time.Since(t0).Nanoseconds()) / aggIters

	col := obs.NewCollector(obs.CollectorConfig{Interval: time.Hour, RingSize: 8,
		Counters: func() map[string]int64 { return map[string]int64{"requests": 1} }})
	const sampleIters = 1 << 8
	t0 = time.Now()
	for i := 0; i < sampleIters; i++ {
		col.SampleNow()
	}
	sampleNs := float64(time.Since(t0).Nanoseconds()) / sampleIters

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PartitionProfiled(context.Background(), app, prof); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	disabledNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	const intervalNs = 10e9 // default -telemetry-interval
	perOpNs := observeNs + sampleNs*(disabledNs/intervalNs)
	b.ReportMetric(perOpNs/disabledNs*100, "overhead_pct")
	b.ReportMetric(observeNs, "observe-ns")
	b.ReportMetric(sampleNs, "sample-ns")
	b.ReportMetric(disabledNs, "disabled-ns/op")
}
