module hybridpart

go 1.24
