package hybridpart

import (
	"context"
	"fmt"
	"sync"

	"hybridpart/internal/explore"
	"hybridpart/internal/platform"
)

// SweepSpec declares a design-space sweep: benchmarks × platform presets ×
// A_FPGA values × CGC counts × timing constraints. Empty axes mean
// "default" (see the field docs on the underlying type).
type SweepSpec = explore.Spec

// SweepPoint is one configuration cell of an expanded sweep grid.
type SweepPoint = explore.Point

// SweepOutcome is the evaluated result of one sweep cell.
type SweepOutcome = explore.Outcome

// SweepResult is a completed sweep: one outcome per grid cell in expansion
// order, with JSON/CSV emitters and a speedup-vs-area Pareto summary.
type SweepResult = explore.ResultSet

// SimObjectiveReplayFactor is the trajectory factor of the cost accounting
// shared by SweepSpec.SimulationCost and the service's request guards: a
// simulation-scored run is charged this many whole-trace replays per frame,
// approximating one replay per trajectory prefix (the prefix count is
// unknown before profiling).
const SimObjectiveReplayFactor = explore.SimObjectiveReplayFactor

// PlatformConfig is a named platform variant from the preset registry.
type PlatformConfig = platform.Config

// PlatformPresets returns the sorted names of the registered platform
// variants usable in SweepSpec.Presets and OptionsFor.
func PlatformPresets() []string { return platform.Names() }

// OptionsFor returns the paper-default Options with the platform fields
// (area, reconfiguration cost, CGC shape, clock ratio, communication and
// operator cost table) replaced by the named preset's characterization.
// The empty name and "default" return DefaultOptions unchanged.
func OptionsFor(preset string) (Options, error) {
	opts := DefaultOptions()
	if preset == "" || preset == "default" {
		return opts, nil
	}
	cfg, ok := platform.Lookup(preset)
	if !ok {
		return Options{}, fmt.Errorf("hybridpart: unknown platform preset %q (have %v)", preset, platform.Names())
	}
	applyPlatform(&opts, cfg.Platform)
	return opts, nil
}

// DefaultConstraint returns the paper's evaluation timing constraint for a
// built-in benchmark (60000 FPGA cycles for OFDM, 21×10⁶ for JPEG), or 0
// for unknown names. The values live in the benchmark registry, so new
// benchmarks carry their own default.
func DefaultConstraint(bench string) int64 {
	d, ok := lookupBenchmark(bench)
	if !ok {
		return 0
	}
	return d.constraint
}

// profileCache memoizes compiled+profiled benchmarks per (name, seed), so a
// sweep evaluates its whole grid against one App and one RunProfile instead
// of recompiling and re-interpreting per cell. Profiling is
// input-deterministic — the same benchmark and seed always yield the same
// block frequencies — which is what makes the cache sound.
var profileCache = struct {
	mu      sync.Mutex
	entries map[profileKey]*profileEntry
	order   []profileKey // insertion order, for the capacity bound
	// bound caps the memo (see DefaultProfileMemoBound); 0 disables the
	// bound for trusted deployments whose seed space is known.
	bound int
}{bound: DefaultProfileMemoBound}

// DefaultProfileMemoBound is the benchmark profile memo's default capacity.
// Each entry pins a full compiled App plus its profile, and the
// partitioning service keys entries by an arbitrary client-supplied seed,
// so by default the memo must not grow without bound; once full, the
// oldest entry is dropped (callers already holding it are unaffected — the
// next request for that key simply recompiles). Operators can resize or
// lift the bound with SetProfileMemoBound (hservd: -profile-memo).
const DefaultProfileMemoBound = 64

// SetProfileMemoBound resizes the process-wide benchmark profile memo used
// by ProfileBenchmarkCached: n entries, or unbounded when n is 0. Shrinking
// below the current population evicts oldest-first. It returns an error for
// negative n.
func SetProfileMemoBound(n int) error {
	if n < 0 {
		return fmt.Errorf("hybridpart: profile memo bound must be non-negative, got %d", n)
	}
	profileCache.mu.Lock()
	defer profileCache.mu.Unlock()
	profileCache.bound = n
	evictOverflowLocked()
	return nil
}

// ProfileMemoStats reports the benchmark profile memo's population and its
// configured bound (0 = unbounded). The partitioning service surfaces both
// in /debug/stats.
func ProfileMemoStats() (size, bound int) {
	profileCache.mu.Lock()
	defer profileCache.mu.Unlock()
	return len(profileCache.entries), profileCache.bound
}

func evictOverflowLocked() {
	bound := profileCache.bound
	if bound <= 0 {
		return
	}
	for len(profileCache.entries) > bound {
		oldest := profileCache.order[0]
		profileCache.order = profileCache.order[1:]
		delete(profileCache.entries, oldest)
	}
}

type profileKey struct {
	bench string
	seed  uint32
}

type profileEntry struct {
	once sync.Once
	app  *App
	prof *RunProfile
	err  error
}

// ProfileBenchmarkCached is ProfileBenchmark behind a concurrency-safe,
// bounded process-level cache: the first caller for a (name, seed) pair
// compiles and profiles, every other caller — concurrent or later — shares
// the result, and once profileCacheCap distinct pairs are resident the
// oldest is evicted. The returned App and RunProfile are safe for
// concurrent Analyze/Partition use (both only read them); callers that
// need to mutate runner state should use ProfileBenchmark instead.
func ProfileBenchmarkCached(name string, seed uint32) (*App, *RunProfile, error) {
	key := profileKey{bench: name, seed: seed}
	profileCache.mu.Lock()
	if profileCache.entries == nil {
		profileCache.entries = map[profileKey]*profileEntry{}
	}
	e := profileCache.entries[key]
	if e == nil {
		e = &profileEntry{}
		profileCache.entries[key] = e
		profileCache.order = append(profileCache.order, key)
		evictOverflowLocked()
	}
	profileCache.mu.Unlock()

	e.once.Do(func() {
		e.app, e.prof, e.err = ProfileBenchmark(name, seed)
	})
	return e.app, e.prof, e.err
}

// Sweep runs the design-space-exploration engine over the spec: each
// benchmark is compiled and profiled once (via ProfileBenchmarkCached) and
// every grid cell is partitioned against that shared profile on a bounded
// worker pool. Per-cell failures are recorded in the outcome's Err field
// rather than aborting the sweep; the outcomes are in expansion order
// regardless of the worker count.
//
// This is the v1 compatibility shim: it delegates to a default-configured
// Engine with no cancellation and no observer. New code should call
// Engine.Sweep, which adds context cancellation and per-cell progress
// events.
func Sweep(spec SweepSpec) (*SweepResult, error) {
	eng, err := NewEngine()
	if err != nil {
		return nil, err
	}
	return eng.Sweep(context.Background(), spec)
}
