// Pipelining example: the paper's ongoing work — overlap the fine and
// coarse-grain fabrics across a frame stream. The OFDM transmitter is
// partitioned once; the per-frame fine/coarse split then feeds the
// two-stage pipeline model.
package main

import (
	"context"
	"fmt"
	"log"

	"hybridpart"
)

func main() {
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, 1)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hybridpart.NewEngine(hybridpart.WithConstraint(60000))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Partition(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-frame split after partitioning: fine=%d coarse=%d comm=%d cycles\n\n",
		res.TFPGA, res.TCoarse, res.TComm)

	pm := res.Pipeline()
	fine, coarse := pm.Utilization()
	fmt.Printf("steady-state utilization: FPGA %.0f%%, CGC data-path %.0f%%\n\n", 100*fine, 100*coarse)
	fmt.Println(pm.Report([]int{1, 2, 10, 100, 1000}))
	fmt.Printf("asymptotic speedup: %.3f (two-stage bound: 2.0)\n", pm.Speedup(1_000_000))
}
