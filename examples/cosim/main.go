// Co-simulation example: check the analytical model against the
// discrete-event simulator. The OFDM transmitter is partitioned once; the
// profiled trace then replays on the simulated platform — first at the
// model's own operating point (where the two agree cycle for cycle), then
// with frame pipelining and configuration prefetch, where the simulator
// measures what the closed-form model only idealizes.
package main

import (
	"context"
	"fmt"
	"log"

	"hybridpart"
)

func main() {
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, 1)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hybridpart.NewEngine(hybridpart.WithConstraint(60000))
	if err != nil {
		log.Fatal(err)
	}

	// The model's operating point: one frame, one transfer port, no
	// prefetch. Validation.Exact reports cycle-for-cycle agreement.
	rep, err := eng.Simulate(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single frame: simulated %d cycles, model %d (exact: %v)\n",
		rep.TotalCycles, rep.Validation.ModelFinalCycles, rep.Validation.Exact)
	fmt.Printf("fine-grain utilization %.1f%%, coarse-grain %.1f%%\n\n",
		100*rep.Fine.Utilization, 100*rep.Coarse.Utilization)

	// A 16-frame stream with prefetch: the event-level pipeline vs the
	// idealized two-stage model.
	rep, err = eng.Simulate(context.Background(), w,
		hybridpart.SimFrames(16), hybridpart.SimPrefetch(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Format())
}
