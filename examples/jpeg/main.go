// JPEG example: run the encoder benchmark end-to-end — encode a 256×256
// frame on the interpreter (validating against the Go reference), then
// partition it as in the paper's Table 3.
package main

import (
	"fmt"
	"log"

	"hybridpart"
)

func main() {
	app, err := hybridpart.JPEGApp()
	if err != nil {
		log.Fatal(err)
	}
	img := hybridpart.JPEGImage(1)

	// Execute the encoder once and inspect its output.
	run := app.NewRunner()
	if err := run.SetGlobal(hybridpart.JPEGImageArray, img); err != nil {
		log.Fatal(err)
	}
	if _, err := run.Run(); err != nil {
		log.Fatal(err)
	}
	bits := run.Global(hybridpart.JPEGBitsArray)[0]
	fmt.Printf("JPEG encoder: %d basic blocks\n", app.NumBlocks())
	fmt.Printf("encoded 256x256 frame: %d bits (%.2f bits/pixel, %.1fx compression)\n\n",
		bits, float64(bits)/float64(hybridpart.JPEGPixels),
		8*float64(hybridpart.JPEGPixels)/float64(bits))

	prof := run.Profile()
	an := app.Analyze(prof.Freq, hybridpart.DefaultOptions())
	fmt.Println("Table 1 (JPEG): ordered total weights of basic blocks")
	fmt.Print(an.FormatTable(8))

	const constraint = 21000000
	fmt.Printf("\nTable 3: partitioning for a timing constraint of %d cycles\n", constraint)
	for _, afpga := range []int{1500, 5000} {
		opts := hybridpart.DefaultOptions()
		opts.AFPGA = afpga
		opts.Constraint = constraint
		res, err := app.Partition(prof, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- A_FPGA=%d, two 2x2 CGCs --\n", afpga)
		fmt.Print(res.Format())
	}
}
