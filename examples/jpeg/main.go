// JPEG example: run the encoder benchmark end-to-end — encode a 256×256
// frame on the interpreter (validating against the Go reference), then
// partition it as in the paper's Table 3.
package main

import (
	"context"
	"fmt"
	"log"

	"hybridpart"
)

func main() {
	ctx := context.Background()

	// BenchmarkWorkload compiles the encoder, loads the 256×256 test frame
	// and executes it once with profiling; the encoded stream stays
	// readable through the workload's data surface.
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchJPEG, 1)
	if err != nil {
		log.Fatal(err)
	}
	bits := w.Data(hybridpart.JPEGBitsArray)[0]
	fmt.Printf("JPEG encoder: %d basic blocks\n", w.NumBlocks())
	fmt.Printf("encoded 256x256 frame: %d bits (%.2f bits/pixel, %.1fx compression)\n\n",
		bits, float64(bits)/float64(hybridpart.JPEGPixels),
		8*float64(hybridpart.JPEGPixels)/float64(bits))

	base, err := hybridpart.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	an, err := base.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1 (JPEG): ordered total weights of basic blocks")
	fmt.Print(an.FormatTable(8))

	const constraint = 21000000
	fmt.Printf("\nTable 3: partitioning for a timing constraint of %d cycles\n", constraint)
	for _, afpga := range []int{1500, 5000} {
		eng, err := hybridpart.NewEngine(
			hybridpart.WithArea(afpga),
			hybridpart.WithConstraint(constraint),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Partition(ctx, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- A_FPGA=%d, two 2x2 CGCs --\n", afpga)
		fmt.Print(res.Format())
	}
}
