// Quickstart: run the full partitioning methodology on a small FIR filter
// written in the mini-C subset — compile, profile, analyze, partition.
package main

import (
	"fmt"
	"log"

	"hybridpart"
)

// A 16-tap FIR filter over 256 samples: the archetypal DSP kernel the
// paper's platform targets. TAPS and the input live in the shared data
// memory; the hot loop is a multiply-accumulate chain.
const src = `
const int N = 256;
const int T = 16;

int TAPS[T] = {3, -1, 4, 1, -5, 9, 2, -6, 5, 3, -5, 8, 9, -7, 9, 3};
int INPUT[N];
int OUTPUT[N];

void prepare() {
    int i;
    for (i = 0; i < N; i++) {
        INPUT[i] = (i * 37 + 11) & 255;
    }
}

void fir() {
    int n;
    int k;
    for (n = T; n < N; n++) {
        int acc = 0;
        for (k = 0; k < T; k++) {
            acc += TAPS[k] * INPUT[n - k];
        }
        OUTPUT[n] = acc >> 4;
    }
}

int main_fn() {
    prepare();
    fir();
    return OUTPUT[N - 1];
}
`

func main() {
	// Step 1: CDFG creation — compile and flatten.
	app, err := hybridpart.Compile(src, "main_fn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d basic blocks\n", app.NumBlocks())

	// Dynamic analysis: execute once with profiling.
	run := app.NewRunner()
	result, err := run.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: result=%d, %d IR instructions\n", result, run.InstructionsExecuted())
	prof := run.Profile()

	// Step 3: kernel extraction and ordering (Table 1 style).
	opts := hybridpart.DefaultOptions()
	an := app.Analyze(prof.Freq, opts)
	fmt.Println("\nkernel report (top 5):")
	fmt.Print(an.FormatTable(5))

	// Steps 2+4+5: partition for a timing constraint at 40% of the
	// all-FPGA time.
	loose := opts
	loose.Constraint = 1 << 60
	allFPGA, err := app.Partition(prof, loose)
	if err != nil {
		log.Fatal(err)
	}
	opts.Constraint = allFPGA.InitialCycles * 4 / 10
	res, err := app.Partition(prof, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartitioning for constraint %d cycles:\n", opts.Constraint)
	fmt.Print(res.Format())
}
