// Quickstart: run the full partitioning methodology on a small FIR filter
// written in the mini-C subset — compile, profile, analyze, partition.
package main

import (
	"context"
	"fmt"
	"log"

	"hybridpart"
)

// A 16-tap FIR filter over 256 samples: the archetypal DSP kernel the
// paper's platform targets. TAPS and the input live in the shared data
// memory; the hot loop is a multiply-accumulate chain.
const src = `
const int N = 256;
const int T = 16;

int TAPS[T] = {3, -1, 4, 1, -5, 9, 2, -6, 5, 3, -5, 8, 9, -7, 9, 3};
int INPUT[N];
int OUTPUT[N];

void prepare() {
    int i;
    for (i = 0; i < N; i++) {
        INPUT[i] = (i * 37 + 11) & 255;
    }
}

void fir() {
    int n;
    int k;
    for (n = T; n < N; n++) {
        int acc = 0;
        for (k = 0; k < T; k++) {
            acc += TAPS[k] * INPUT[n - k];
        }
        OUTPUT[n] = acc >> 4;
    }
}

int main_fn() {
    prepare();
    fir();
    return OUTPUT[N - 1];
}
`

func main() {
	ctx := context.Background()

	// Step 1: CDFG creation — compile and flatten into a Workload.
	w, err := hybridpart.NewWorkload(src, "main_fn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d basic blocks\n", w.NumBlocks())

	// Dynamic analysis: execute once with profiling.
	result, err := w.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: result=%d, %d IR instructions\n", result, w.InstructionsExecuted())

	// Step 3: kernel extraction and ordering (Table 1 style).
	loose, err := hybridpart.NewEngine(hybridpart.WithConstraint(1 << 60))
	if err != nil {
		log.Fatal(err)
	}
	an, err := loose.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nkernel report (top 5):")
	fmt.Print(an.FormatTable(5))

	// Steps 2+4+5: partition for a timing constraint at 40% of the
	// all-FPGA time.
	allFPGA, err := loose.Partition(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	constraint := allFPGA.InitialCycles * 4 / 10
	eng, err := hybridpart.NewEngine(hybridpart.WithConstraint(constraint))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Partition(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartitioning for constraint %d cycles:\n", constraint)
	fmt.Print(res.Format())
}
