// Energy-aware example: the paper's future work — partition the OFDM
// transmitter to satisfy an energy budget instead of a timing constraint,
// sweeping the budget to show the energy/moves trade-off.
package main

import (
	"context"
	"fmt"
	"log"

	"hybridpart"
)

func main() {
	ctx := context.Background()
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, 1)
	if err != nil {
		log.Fatal(err)
	}

	partitionAt := func(budget float64) *hybridpart.EnergyResult {
		eng, err := hybridpart.NewEngine(hybridpart.WithEnergyBudget(budget))
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.PartitionEnergy(ctx, w)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Baseline: all-FPGA energy.
	loose := partitionAt(1e18)
	fmt.Printf("all-FPGA energy: %.0f units\n", loose.InitialEnergy)
	fmt.Printf("  fine=%.0f reconfig=%.0f\n\n", loose.Initial.Fine, loose.Initial.Reconfig)

	fmt.Printf("%-10s %-12s %-8s %-8s %-12s\n", "budget", "final", "met", "moves", "%reduction")
	for _, frac := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		budget := loose.InitialEnergy * frac
		res := partitionAt(budget)
		fmt.Printf("%-10.0f %-12.0f %-8v %-8d %-12.1f\n",
			budget, res.FinalEnergy, res.Met, len(res.Moved), res.ReductionPct())
	}

	// Breakdown at the 50% budget.
	res := partitionAt(loose.InitialEnergy * 0.5)
	fmt.Printf("\nbreakdown at 50%% budget: fine=%.0f coarse=%.0f reconfig=%.0f comm=%.0f\n",
		res.Final.Fine, res.Final.Coarse, res.Final.Reconfig, res.Final.Comm)
}
