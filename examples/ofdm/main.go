// OFDM example: partition the IEEE 802.11a transmitter front-end (QAM →
// 64-point IFFT → cyclic prefix) exactly as in the paper's first
// evaluation, sweeping the four platform configurations of Table 2.
package main

import (
	"context"
	"fmt"
	"log"

	"hybridpart"
)

func main() {
	ctx := context.Background()
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OFDM transmitter: %d basic blocks, 6 payload symbols profiled\n\n", w.NumBlocks())

	base, err := hybridpart.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	an, err := base.Analyze(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1 (OFDM): ordered total weights of basic blocks")
	fmt.Print(an.FormatTable(8))

	const constraint = 60000 // the paper's Table 2 constraint
	fmt.Printf("\nTable 2: partitioning for a timing constraint of %d cycles\n", constraint)
	for _, afpga := range []int{1500, 5000} {
		for _, ncgc := range []int{2, 3} {
			eng, err := hybridpart.NewEngine(
				hybridpart.WithArea(afpga),
				hybridpart.WithCGCs(ncgc),
				hybridpart.WithConstraint(constraint),
			)
			if err != nil {
				log.Fatal(err)
			}
			res, err := eng.Partition(ctx, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n-- A_FPGA=%d, %d x 2x2 CGCs --\n", afpga, ncgc)
			fmt.Print(res.Format())
		}
	}
}
