// Command experiments regenerates every table and figure of the paper's
// evaluation section on the reproduced system:
//
//	Table 1  — ordered total weights of the top-8 basic blocks (OFDM, JPEG)
//	Table 2  — OFDM partitioning results (A_FPGA × CGC-count grid)
//	Table 3  — JPEG partitioning results
//	Figure 1 — the modeled platform (architecture inventory)
//	Figure 2 — the methodology flow, traced live on a benchmark
//	Figure 3 — the fine-grain temporal-partitioning algorithm, demonstrated
//	           on the hottest kernel across an area sweep
//
// Usage:
//
//	experiments [-table N] [-figure N] [-seed S] [-ofdm-constraint C] [-jpeg-constraint C]
//
// With no flags every artifact is printed in order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hybridpart"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-3)")
	figure := flag.Int("figure", 0, "regenerate only this figure (1-3)")
	seed := flag.Uint("seed", 1, "input-vector seed")
	ofdmC := flag.Int64("ofdm-constraint", 60000, "OFDM timing constraint (FPGA cycles; the paper's value)")
	jpegC := flag.Int64("jpeg-constraint", 21000000, "JPEG timing constraint (FPGA cycles)")
	flag.Parse()

	all := *table == 0 && *figure == 0
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if all || *figure == 1 {
		run("figure 1", figure1)
	}
	if all || *figure == 2 {
		run("figure 2", func() error { return figure2(uint32(*seed)) })
	}
	if all || *figure == 3 {
		run("figure 3", func() error { return figure3(uint32(*seed)) })
	}
	if all || *table == 1 {
		run("table 1", func() error { return table1(uint32(*seed)) })
	}
	if all || *table == 2 {
		run("table 2", func() error {
			return partitionTable("Table 2. OFDM partitioning results", hybridpart.BenchOFDM, uint32(*seed), *ofdmC)
		})
	}
	if all || *table == 3 {
		run("table 3", func() error {
			return partitionTable("Table 3. JPEG partitioning results", hybridpart.BenchJPEG, uint32(*seed), *jpegC)
		})
	}
}

func figure1() error {
	fmt.Println("== Figure 1. Generic reconfigurable platform architecture ==")
	opts := hybridpart.DefaultOptions()
	fmt.Printf(`  microprocessor  -> configures both fabrics (flow driver)
  fine-grain      -> embedded FPGA, A_FPGA=%d units, reconfig=%d cycles
  coarse-grain    -> %d CGC(s) of %dx%d nodes (MUL+ALU each), T_FPGA = %d*T_CGC
  register bank   -> %d words resident per kernel
  shared memory   -> %d cycle(s)/word, %d-cycle handoff, %d port(s)/cycle
  interconnect    -> reconfigurable steering network (row-to-row chaining)

`, opts.AFPGA, opts.ReconfigCycles, opts.NumCGCs, opts.CGCRows, opts.CGCCols,
		opts.ClockRatio, 256, opts.CommCyclesPerWord, opts.CommSyncCycles, opts.MemPorts)
	return nil
}

func figure2(seed uint32) error {
	fmt.Println("== Figure 2. Methodology flow (traced on the OFDM transmitter) ==")
	fmt.Println("  [step 1] CDFG creation: compiling + flattening ofdm_tx")
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, seed)
	if err != nil {
		return err
	}
	fmt.Printf("           %d basic blocks\n", w.NumBlocks())
	const constraint = 60000
	ctx := context.Background()

	fmt.Println("  [step 2] mapping to fine-grain hardware")
	loose, err := hybridpart.NewEngine(hybridpart.WithConstraint(1 << 60))
	if err != nil {
		return err
	}
	allFPGA, err := loose.Partition(ctx, w)
	if err != nil {
		return err
	}
	fmt.Printf("           all-FPGA execution: %d cycles\n", allFPGA.InitialCycles)
	if allFPGA.InitialCycles <= constraint {
		fmt.Println("           timing constraint met -> exit")
		return nil
	}
	fmt.Printf("           timing constraint (%d) violated -> analysis\n", constraint)

	// The move-by-move trajectory of steps 4+5 streams through the
	// engine's observer as it happens.
	eng, err := hybridpart.NewEngine(
		hybridpart.WithConstraint(constraint),
		hybridpart.WithObserver(func(ev hybridpart.Event) {
			if mv, ok := ev.(hybridpart.MoveEvent); ok {
				fmt.Printf("           move %d: BB %d -> coarse grain\n", mv.Seq, mv.Block)
			}
		}),
	)
	if err != nil {
		return err
	}

	fmt.Println("  [step 3] analysis: dynamic + static, kernel extraction and ordering")
	an, err := eng.Analyze(w)
	if err != nil {
		return err
	}
	top := an.Kernels
	if len(top) > 3 {
		top = top[:3]
	}
	for _, k := range top {
		fmt.Printf("           kernel BB %d: freq=%d weight=%d total=%d\n",
			k.Block, k.Freq, k.OpWeight, k.TotalWeight)
	}

	fmt.Println("  [steps 4+5] partitioning engine: move kernels until constraint met")
	res, err := eng.Partition(ctx, w)
	if err != nil {
		return err
	}
	fmt.Printf("           final: %d cycles (constraint met: %v)\n\n", res.FinalCycles, res.Met)
	return nil
}

func figure3(seed uint32) error {
	fmt.Println("== Figure 3. Fine-grain temporal partitioning (hottest OFDM kernel, area sweep) ==")
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-8s %-12s %-14s\n", "A_FPGA", "partitions", "initial cycles")
	for _, area := range []int{768, 1000, 1500, 2500, 5000, 10000} {
		eng, err := hybridpart.NewEngine(
			hybridpart.WithArea(area),
			hybridpart.WithConstraint(1<<60),
		)
		if err != nil {
			return err
		}
		res, err := eng.Partition(context.Background(), w)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8d %-12d %-14d\n", area, res.InitialPartitions, res.InitialCycles)
	}
	fmt.Println()
	return nil
}

func table1(seed uint32) error {
	fmt.Println("== Table 1. Ordered total weights of basic blocks ==")
	eng, err := hybridpart.NewEngine()
	if err != nil {
		return err
	}
	for _, bench := range []string{hybridpart.BenchOFDM, hybridpart.BenchJPEG} {
		w, err := hybridpart.BenchmarkWorkload(bench, seed)
		if err != nil {
			return err
		}
		an, err := eng.Analyze(w)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s (%d basic blocks) ---\n", bench, w.NumBlocks())
		fmt.Print(an.FormatTable(8))
		fmt.Println()
	}
	return nil
}

// partitionTable regenerates one Table 2/3 grid as a thin caller of the
// design-space-exploration engine: the A_FPGA × CGC-count cross product is
// a SweepSpec, evaluated by hybridpart.Sweep against one shared profile.
func partitionTable(title, bench string, seed uint32, constraint int64) error {
	fmt.Printf("== %s for timing constraint of %d clock cycles ==\n", title, constraint)
	areas := []int{1500, 5000}
	ncgcs := []int{2, 3}
	eng, err := hybridpart.NewEngine()
	if err != nil {
		return err
	}
	rs, err := eng.Sweep(context.Background(), hybridpart.SweepSpec{
		Benchmarks:  []string{bench},
		Areas:       areas,
		CGCs:        ncgcs,
		Constraints: []int64{constraint},
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	var cells [2][2]*hybridpart.SweepOutcome
	for ai, afpga := range areas {
		for ci, ncgc := range ncgcs {
			o := rs.Find(bench, "", afpga, ncgc, constraint)
			if o == nil {
				return fmt.Errorf("sweep missing cell A_FPGA=%d cgcs=%d", afpga, ncgc)
			}
			if o.Failed() {
				return fmt.Errorf("cell A_FPGA=%d cgcs=%d: %s", afpga, ncgc, o.Err)
			}
			cells[ai][ci] = o
		}
	}
	fmt.Printf("%-22s | %-21s | %-21s\n", "", "A_FPGA=1500", "A_FPGA=5000")
	fmt.Printf("%-22s | %-10s %-10s | %-10s %-10s\n", "", "two 2x2", "three 2x2", "two 2x2", "three 2x2")
	row := func(name string, get func(c *hybridpart.SweepOutcome) string) {
		fmt.Printf("%-22s | %-10s %-10s | %-10s %-10s\n", name,
			get(cells[0][0]), get(cells[0][1]), get(cells[1][0]), get(cells[1][1]))
	}
	row("Initial cycles", func(c *hybridpart.SweepOutcome) string { return fmt.Sprintf("%d", c.InitialCycles) })
	row("Cycles in CGC", func(c *hybridpart.SweepOutcome) string { return fmt.Sprintf("%d", c.CyclesInCGC) })
	row("BB no. moved", func(c *hybridpart.SweepOutcome) string {
		s := ""
		for i, b := range c.Moved {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%d", b)
		}
		if s == "" {
			s = "-"
		}
		return s
	})
	row("Final cycles", func(c *hybridpart.SweepOutcome) string { return fmt.Sprintf("%d", c.FinalCycles) })
	row("% cycles reduction", func(c *hybridpart.SweepOutcome) string { return fmt.Sprintf("%.1f", c.ReductionPct) })
	row("Constraint met", func(c *hybridpart.SweepOutcome) string { return fmt.Sprintf("%v", c.Met) })
	fmt.Println()
	return nil
}
