// Command cdfgdump prints the flattened CDFG of an application in Graphviz
// DOT form — either the whole control-flow graph or the data-flow graph of
// one basic block (as the fine- and coarse-grain mappers see it).
//
// Usage:
//
//	cdfgdump -bench ofdm > cfg.dot
//	cdfgdump -bench ofdm -block 26 > dfg26.dot
//	cdfgdump -src app.c -entry main_fn
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridpart"
)

func main() {
	bench := flag.String("bench", "", `built-in benchmark ("ofdm" or "jpeg")`)
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	block := flag.Int("block", -1, "dump the DFG of this basic block instead of the CFG")
	flag.Parse()

	var (
		app *hybridpart.App
		err error
	)
	switch {
	case *bench == hybridpart.BenchOFDM:
		app, err = hybridpart.OFDMApp()
	case *bench == hybridpart.BenchJPEG:
		app, err = hybridpart.JPEGApp()
	case *src != "":
		var text []byte
		if text, err = os.ReadFile(*src); err == nil {
			app, err = hybridpart.Compile(string(text), *entry)
		}
	default:
		fmt.Fprintln(os.Stderr, "cdfgdump: need -bench or -src")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdfgdump: %v\n", err)
		os.Exit(1)
	}
	if *block >= 0 {
		err = app.WriteDFGDot(os.Stdout, *block)
	} else {
		err = app.WriteCFGDot(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdfgdump: %v\n", err)
		os.Exit(1)
	}
}
