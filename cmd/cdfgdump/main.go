// Command cdfgdump prints the flattened CDFG of an application in Graphviz
// DOT form — either the whole control-flow graph or the data-flow graph of
// one basic block (as the fine- and coarse-grain mappers see it).
//
// Usage:
//
//	cdfgdump -bench ofdm > cfg.dot
//	cdfgdump -bench ofdm -block 26 > dfg26.dot
//	cdfgdump -src app.c -entry main_fn
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridpart"
)

func main() {
	bench := flag.String("bench", "", fmt.Sprintf("built-in benchmark %v", hybridpart.Benchmarks()))
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	block := flag.Int("block", -1, "dump the DFG of this basic block instead of the CFG")
	flag.Parse()

	// Validate flags up front: one clear line instead of a deep failure.
	switch {
	case *bench == "" && *src == "":
		fail("need -bench or -src")
	case *bench != "" && *src != "":
		fail("-bench and -src are mutually exclusive")
	case *bench != "" && !hybridpart.IsBenchmark(*bench):
		fail(fmt.Sprintf("unknown benchmark %q (have %v)", *bench, hybridpart.Benchmarks()))
	case *block < -1:
		fail(fmt.Sprintf("-block must be a block number (or -1 for the CFG), got %d", *block))
	}

	var (
		app *hybridpart.App
		err error
	)
	if *bench != "" {
		app, err = hybridpart.BenchmarkApp(*bench)
	} else {
		var text []byte
		if text, err = os.ReadFile(*src); err == nil {
			app, err = hybridpart.Compile(string(text), *entry)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdfgdump: %v\n", err)
		os.Exit(1)
	}
	if *block >= 0 {
		err = app.WriteDFGDot(os.Stdout, *block)
	} else {
		err = app.WriteCFGDot(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdfgdump: %v\n", err)
		os.Exit(1)
	}
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "cdfgdump: %s\n", msg)
	os.Exit(2)
}
