// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON report on stdout, so CI can track the performance
// trajectory across commits. It parses every benchmark result line and, when
// the BenchmarkSweepEngine serial/parallel pair is present, derives the
// sweep engine's headline numbers: cells evaluated per second on each path
// and the parallel-over-serial speedup.
//
// Usage:
//
//	go test -bench Sweep -run '^$' -benchtime 2x . | benchjson -cells 6 > BENCH_sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed `go test -bench` line. Metrics carries any
// extra "<value> <unit>" pairs the benchmark reported (b.ReportMetric), in
// input order.
type benchResult struct {
	Name    string   `json:"name"`
	Iter    int64    `json:"iterations"`
	NsOp    float64  `json:"ns_per_op"`
	Metrics []metric `json:"metrics,omitempty"`
}

// metric is one extra benchmark metric column.
type metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// sweepReport is the derived sweep-engine summary.
type sweepReport struct {
	GridCells           int     `json:"grid_cells"`
	SerialNsPerOp       float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp     float64 `json:"parallel_ns_per_op"`
	SerialCellsPerSec   float64 `json:"serial_cells_per_sec"`
	ParallelCellsPerSec float64 `json:"parallel_cells_per_sec"`
	Speedup             float64 `json:"speedup_over_serial"`
}

// simBench is one co-simulator benchmark's derived summary.
type simBench struct {
	NsPerOp         float64 `json:"ns_per_op"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec,omitempty"`
}

// objectiveBench is one move-loop objective's derived summary: what the
// mode costs in wall time and what it buys in simulated makespan/speedup.
type objectiveBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	SimMakespan float64 `json:"sim_makespan,omitempty"`
	SimSpeedup  float64 `json:"sim_speedup,omitempty"`
	Moves       float64 `json:"moves,omitempty"`
}

// regionsBench is one BenchmarkRegions sub-benchmark's derived summary:
// the simulated makespan and speedup of a region/prefetch configuration on
// the reconfiguration-bound operating point.
type regionsBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	SimMakespan float64 `json:"sim_makespan,omitempty"`
	SimSpeedup  float64 `json:"sim_speedup,omitempty"`
}

// objectiveParallelBench is one BenchmarkObjectiveParallel sub-benchmark's
// derived summary: wall time and allocations for a scoring configuration,
// its branch-and-bound counters, and its speedup over the serial baseline.
type objectiveParallelBench struct {
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       float64 `json:"allocs_per_op,omitempty"`
	Pruned            float64 `json:"pruned"`
	Scored            float64 `json:"scored,omitempty"`
	SimMakespan       float64 `json:"sim_makespan,omitempty"`
	SpeedupOverSerial float64 `json:"speedup_over_serial,omitempty"`
}

// traceBench is the BenchmarkTraceOverhead summary: the modelled cost of
// the instrumentation with tracing disabled (the CI-gated number) and the
// measured slowdown with tracing fully enabled.
type traceBench struct {
	OverheadPct     float64 `json:"overhead_pct"`
	EnabledPct      float64 `json:"enabled_pct"`
	SpansPerOp      float64 `json:"spans_per_op,omitempty"`
	NilStartNs      float64 `json:"nil_start_ns,omitempty"`
	DisabledNsPerOp float64 `json:"disabled_ns_per_op,omitempty"`
}

// telemetryBench is the BenchmarkTelemetryOverhead summary: the modelled
// per-request cost of the flight recorder (stage-histogram fold plus the
// amortized runtime sample; the CI-gated number) and its raw components.
type telemetryBench struct {
	OverheadPct     float64 `json:"overhead_pct"`
	ObserveNs       float64 `json:"observe_ns,omitempty"`
	SampleNs        float64 `json:"sample_ns,omitempty"`
	DisabledNsPerOp float64 `json:"disabled_ns_per_op,omitempty"`
}

type report struct {
	Benchmarks []benchResult `json:"benchmarks"`
	Sweep      *sweepReport  `json:"sweep,omitempty"`
	// Sim summarizes BenchmarkSimulate sub-benchmarks by benchmark name
	// (JSON object keys are emitted sorted, so the report is deterministic).
	Sim map[string]simBench `json:"sim,omitempty"`
	// Objective summarizes BenchmarkObjective sub-benchmarks by mode
	// ("model", "sim", "rerank3").
	Objective map[string]objectiveBench `json:"objective,omitempty"`
	// ObjectiveParallel summarizes BenchmarkObjectiveParallel sub-benchmarks
	// by scoring configuration ("serial", "w1".."w8"), each with its speedup
	// over the full-replay serial baseline.
	ObjectiveParallel map[string]objectiveParallelBench `json:"objective_parallel,omitempty"`
	// Regions summarizes BenchmarkRegions sub-benchmarks by configuration
	// ("r1", "r1_prefetch", "r2"); CI gates r2.sim_makespan strictly below
	// r1_prefetch.sim_makespan.
	Regions map[string]regionsBench `json:"regions,omitempty"`
	// Trace summarizes BenchmarkTraceOverhead (CI gates overhead_pct < 2).
	Trace *traceBench `json:"trace,omitempty"`
	// Telemetry summarizes BenchmarkTelemetryOverhead (CI gates
	// overhead_pct < 2).
	Telemetry *telemetryBench `json:"telemetry,omitempty"`
}

func main() {
	cells := flag.Int("cells", 6, "grid cells per BenchmarkSweepEngine iteration (areas x cgc-counts)")
	flag.Parse()

	var rep report
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		r, ok := parseBenchLine(sc.Text())
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var serial, parallel float64
	for _, b := range rep.Benchmarks {
		switch {
		case strings.Contains(b.Name, "SweepEngine/serial-recompile"):
			serial = b.NsOp
		case strings.Contains(b.Name, "SweepEngine/shared-parallel"):
			parallel = b.NsOp
		}
		if i := strings.Index(b.Name, "Simulate/"); i >= 0 {
			if rep.Sim == nil {
				rep.Sim = map[string]simBench{}
			}
			row := simBench{NsPerOp: b.NsOp}
			for _, m := range b.Metrics {
				if m.Name == "simcycles/s" {
					row.SimCyclesPerSec = m.Value
				}
			}
			rep.Sim[b.Name[i+len("Simulate/"):]] = row
		}
		if i := strings.Index(b.Name, "ObjectiveParallel/"); i >= 0 {
			if rep.ObjectiveParallel == nil {
				rep.ObjectiveParallel = map[string]objectiveParallelBench{}
			}
			row := objectiveParallelBench{NsPerOp: b.NsOp}
			for _, m := range b.Metrics {
				switch m.Name {
				case "allocs/op":
					row.AllocsPerOp = m.Value
				case "pruned":
					row.Pruned = m.Value
				case "scored":
					row.Scored = m.Value
				case "sim-makespan":
					row.SimMakespan = m.Value
				}
			}
			rep.ObjectiveParallel[b.Name[i+len("ObjectiveParallel/"):]] = row
		}
		if b.Name == "BenchmarkTraceOverhead" {
			row := &traceBench{}
			for _, m := range b.Metrics {
				switch m.Name {
				case "overhead_pct":
					row.OverheadPct = m.Value
				case "enabled-pct":
					row.EnabledPct = m.Value
				case "spans/op":
					row.SpansPerOp = m.Value
				case "nilstart-ns":
					row.NilStartNs = m.Value
				case "disabled-ns/op":
					row.DisabledNsPerOp = m.Value
				}
			}
			rep.Trace = row
		}
		if b.Name == "BenchmarkTelemetryOverhead" {
			row := &telemetryBench{}
			for _, m := range b.Metrics {
				switch m.Name {
				case "overhead_pct":
					row.OverheadPct = m.Value
				case "observe-ns":
					row.ObserveNs = m.Value
				case "sample-ns":
					row.SampleNs = m.Value
				case "disabled-ns/op":
					row.DisabledNsPerOp = m.Value
				}
			}
			rep.Telemetry = row
		}
		if i := strings.Index(b.Name, "Regions/"); i >= 0 {
			if rep.Regions == nil {
				rep.Regions = map[string]regionsBench{}
			}
			row := regionsBench{NsPerOp: b.NsOp}
			for _, m := range b.Metrics {
				switch m.Name {
				case "sim-makespan":
					row.SimMakespan = m.Value
				case "sim-speedup":
					row.SimSpeedup = m.Value
				}
			}
			rep.Regions[b.Name[i+len("Regions/"):]] = row
		}
		if i := strings.Index(b.Name, "Objective/"); i >= 0 {
			if rep.Objective == nil {
				rep.Objective = map[string]objectiveBench{}
			}
			row := objectiveBench{NsPerOp: b.NsOp}
			for _, m := range b.Metrics {
				switch m.Name {
				case "sim-makespan":
					row.SimMakespan = m.Value
				case "sim-speedup":
					row.SimSpeedup = m.Value
				case "moves":
					row.Moves = m.Value
				}
			}
			rep.Objective[b.Name[i+len("Objective/"):]] = row
		}
	}
	if base, ok := rep.ObjectiveParallel["serial"]; ok && base.NsPerOp > 0 {
		for key, row := range rep.ObjectiveParallel {
			if key == "serial" {
				continue
			}
			row.SpeedupOverSerial = base.NsPerOp / row.NsPerOp
			rep.ObjectiveParallel[key] = row
		}
	}
	if serial > 0 && parallel > 0 {
		rep.Sweep = &sweepReport{
			GridCells:           *cells,
			SerialNsPerOp:       serial,
			ParallelNsPerOp:     parallel,
			SerialCellsPerSec:   float64(*cells) * 1e9 / serial,
			ParallelCellsPerSec: float64(*cells) * 1e9 / parallel,
			Speedup:             serial / parallel,
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses lines of the shape
//
//	BenchmarkName-8   	      12	  98765432 ns/op	  extra metrics...
//
// returning ok=false for everything else (headers, PASS/ok lines, metrics).
func parseBenchLine(line string) (benchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchResult{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	// Find the "<value> ns/op" pair; go test always emits it first but
	// scanning keeps us robust to extra columns — which are themselves
	// collected as metrics (b.ReportMetric output).
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		// Strip the GOMAXPROCS suffix ("-8") from the name.
		name := fields[0]
		if j := strings.LastIndex(name, "-"); j > 0 {
			if _, err := strconv.Atoi(name[j+1:]); err == nil {
				name = name[:j]
			}
		}
		res := benchResult{Name: name, Iter: iter, NsOp: ns}
		for j := i + 2; j+1 < len(fields); j += 2 {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				break
			}
			res.Metrics = append(res.Metrics, metric{Name: fields[j+1], Value: v})
		}
		return res, true
	}
	return benchResult{}, false
}
