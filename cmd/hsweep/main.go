// Command hsweep runs the design-space-exploration engine: it expands a
// benchmarks × presets × A_FPGA × CGC-count × constraint grid, partitions
// every cell on a bounded worker pool against one shared compiled+profiled
// application per benchmark, and reports the grid plus the speedup-vs-area
// Pareto front. The paper's Tables 2–3 are the special case
//
//	hsweep -bench ofdm -areas 1500,5000 -cgcs 2,3
//	hsweep -bench jpeg -areas 1500,5000 -cgcs 2,3
//
// and larger grids explore beyond them:
//
//	hsweep -bench ofdm -areas 1500,5000 -cgcs 1,2,4 -workers 8
//	hsweep -bench ofdm,jpeg -presets default,dsp-rich,lut-only -format csv
//
// The co-simulation axes chart executed reality next to the closed form:
// -frames/-ports/-prefetch set the simulated operating point per cell and
// -objectives compares the move loops themselves (the closed-form "model"
// objective against the simulation-scored "sim" objective), adding
// simulated-makespan and simulated-speedup columns to every output format:
//
//	hsweep -bench ofdm -frames 1,8 -objectives model,sim
//
// Constraints default to the paper's per-benchmark values (OFDM 60000,
// JPEG 21000000 FPGA cycles). -format json/csv emits machine-readable
// output (to -o when given); -list-presets prints the platform registry;
// -progress streams per-cell completion lines to stderr as the grid
// evaluates; -trace-out file.json records the sweep as a span trace (one
// move loop and scoring tree per cell, cells overlapping across the worker
// pool) in Chrome trace-event format, loadable in Perfetto. Ctrl-C cancels the sweep cleanly between cells: the cells
// already evaluated are still emitted — marked partial ("partial": true in
// JSON, a trailing "# partial: ..." comment line in CSV, a PARTIAL footer
// in the table) — and the exit status is 130, so a truncated grid is never
// mistaken for full coverage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"hybridpart"
	"hybridpart/internal/cliutil"
	"hybridpart/internal/obs"
)

func main() {
	bench := flag.String("bench", "", `comma-separated benchmarks ("ofdm", "jpeg")`)
	areas := flag.String("areas", "", "comma-separated A_FPGA values (empty = preset default)")
	cgcs := flag.String("cgcs", "", "comma-separated CGC counts (empty = preset default)")
	regions := flag.String("regions", "", "comma-separated reconfigurable-region counts (empty = preset default, 1 = monolithic)")
	constraints := flag.String("constraints", "", "comma-separated timing constraints in FPGA cycles (empty = paper defaults)")
	presets := flag.String("presets", "", "comma-separated platform presets (see -list-presets)")
	frames := flag.String("frames", "", "comma-separated co-simulation frame counts (any sim axis adds simulated-speedup columns)")
	ports := flag.String("ports", "", "comma-separated transfer-port widths")
	prefetch := flag.String("prefetch", "", `comma-separated prefetch settings ("false,true")`)
	objectives := flag.String("objectives", "", `comma-separated move-loop objectives ("model", "sim")`)
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
	seed := flag.Uint("seed", 1, "benchmark input-vector seed")
	format := flag.String("format", "table", `output format: "table", "json" or "csv"`)
	out := flag.String("o", "", "write json/csv output to this file instead of stdout")
	listPresets := flag.Bool("list-presets", false, "list registered platform presets and exit")
	progress := flag.Bool("progress", false, "stream per-cell completion lines to stderr")
	traceOut := flag.String("trace-out", "", "write the sweep's span trace to this file as Chrome trace-event JSON (Perfetto-loadable)")
	flag.Parse()

	if *listPresets {
		for _, name := range hybridpart.PlatformPresets() {
			fmt.Println(name)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "hsweep: need -bench (e.g. -bench ofdm or -bench ofdm,jpeg)")
		os.Exit(2)
	}

	spec := hybridpart.SweepSpec{
		Benchmarks: splitList(*bench),
		Presets:    splitList(*presets),
		Seed:       uint32(*seed),
		Workers:    *workers,
	}
	var err error
	if spec.Areas, err = parseInts(*areas); err != nil {
		fatal("-areas", err)
	}
	if spec.CGCs, err = parseInts(*cgcs); err != nil {
		fatal("-cgcs", err)
	}
	if spec.Regions, err = parseInts(*regions); err != nil {
		fatal("-regions", err)
	}
	if spec.Constraints, err = parseInt64s(*constraints); err != nil {
		fatal("-constraints", err)
	}
	if spec.Frames, err = parseInts(*frames); err != nil {
		fatal("-frames", err)
	}
	if spec.Ports, err = parseInts(*ports); err != nil {
		fatal("-ports", err)
	}
	if spec.Prefetch, err = parseBools(*prefetch); err != nil {
		fatal("-prefetch", err)
	}
	spec.Objectives = splitList(*objectives)
	for _, o := range spec.Objectives {
		if _, err := hybridpart.ParseObjective(o); err != nil {
			fatal("-objectives", err)
		}
	}
	switch *format {
	case "table", "json", "csv":
	default:
		fatal("-format", fmt.Errorf(`unknown format %q (want "table", "json" or "csv")`, *format))
	}

	// Ctrl-C cancels the context; the engine abandons queued cells,
	// interrupts in-flight move loops and returns context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var engineOpts []hybridpart.Option
	if *progress {
		engineOpts = append(engineOpts, hybridpart.WithObserver(func(ev hybridpart.Event) {
			ce, ok := ev.(hybridpart.CellEvent)
			if !ok {
				return
			}
			o := ce.Outcome
			if o.Failed() {
				fmt.Fprintf(os.Stderr, "hsweep: [%d/%d] %s afpga=%d cgcs=%d: error: %s\n",
					ce.Done, ce.Total, o.Benchmark, o.AreaUsed(), o.CGCsUsed(), o.Err)
				return
			}
			if o.Simulated {
				fmt.Fprintf(os.Stderr, "hsweep: [%d/%d] %s afpga=%d cgcs=%d final=%d speedup=%.3f met=%v obj=%s frames=%d sim=%d simspeedup=%.3f\n",
					ce.Done, ce.Total, o.Benchmark, o.AreaUsed(), o.CGCsUsed(), o.FinalCycles, o.Speedup, o.Met,
					o.EffectiveObjective, o.EffectiveFrames, o.SimCycles, o.SimSpeedup)
				return
			}
			fmt.Fprintf(os.Stderr, "hsweep: [%d/%d] %s afpga=%d cgcs=%d final=%d speedup=%.3f met=%v\n",
				ce.Done, ce.Total, o.Benchmark, o.AreaUsed(), o.CGCsUsed(), o.FinalCycles, o.Speedup, o.Met)
		}))
	}
	eng, err := hybridpart.NewEngine(engineOpts...)
	if err != nil {
		fatal("engine", err)
	}

	// A cancelled sweep still yields the cells that completed: emit them,
	// marked partial, and exit non-zero so callers never mistake a truncated
	// grid for full coverage. A cancelled sweep's partial trace is written
	// the same way.
	ctx, runTrace := cliutil.TraceRun(ctx, *traceOut, "hsweep", "hsweep sweep",
		obs.String("bench", *bench))
	rs, err := eng.Sweep(ctx, spec)
	if werr := runTrace.Close(); werr != nil {
		fatal("-trace-out", werr)
	}
	cancelled := errors.Is(err, context.Canceled)
	if err != nil && !cancelled {
		fatal("sweep", err)
	}
	if cancelled && (rs == nil || len(rs.Outcomes) == 0) {
		fmt.Fprintln(os.Stderr, "hsweep: interrupted before any cell completed")
		os.Exit(130)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			fatal("-o", err)
		}
		w = f
	}
	total := spec.NumPoints()
	switch *format {
	case "table":
		_, err = fmt.Fprint(w, rs.FormatSummary())
		if err == nil && rs.Partial {
			_, err = fmt.Fprintf(w, "\nPARTIAL: sweep cancelled after %d of %d cells\n", len(rs.Outcomes), total)
		}
	case "json":
		// ResultSet.Partial lands in the JSON body itself ("partial": true).
		err = rs.WriteJSON(w)
	case "csv":
		err = rs.WriteCSV(w)
		if err == nil && rs.Partial {
			_, err = fmt.Fprintf(w, "# partial: sweep cancelled after %d of %d cells\n", len(rs.Outcomes), total)
		}
	}
	if err != nil {
		fatal("emit", err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fatal("-o", err)
		}
	}

	failed := rs.Failed()
	for _, o := range failed {
		fmt.Fprintf(os.Stderr, "hsweep: point %d (%s afpga=%d cgcs=%d): %s\n",
			o.Index, o.Benchmark, o.AFPGA, o.NumCGCs, o.Err)
	}
	if cancelled {
		fmt.Fprintf(os.Stderr, "hsweep: interrupted — emitted partial results (%d of %d cells)\n",
			len(rs.Outcomes), total)
		os.Exit(130)
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}

func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "hsweep: %s: %v\n", what, err)
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitList(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBools(s string) ([]bool, error) {
	var out []bool
	for _, p := range splitList(s) {
		v, err := strconv.ParseBool(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
