package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidateFleet(t *testing.T) {
	cases := []struct {
		name    string
		self    string
		peers   string
		wantN   int
		wantErr bool
	}{
		{name: "no fleet", self: "", peers: "", wantN: 0},
		{name: "two replicas", self: "http://a:8080", peers: "http://a:8080,http://b:8080", wantN: 2},
		{name: "whitespace and trailing slash", self: "http://a:8080/", peers: " http://a:8080 , http://b:8080 ", wantN: 2},
		{name: "self without peers", self: "http://a:8080", peers: "", wantErr: true},
		{name: "peers without self", self: "", peers: "http://a:8080", wantErr: true},
		{name: "self not a member", self: "http://c:8080", peers: "http://a:8080,http://b:8080", wantErr: true},
		{name: "malformed peer", self: "http://a:8080", peers: "http://a:8080,:%//bad", wantErr: true},
		{name: "schemeless peer", self: "http://a:8080", peers: "http://a:8080,b:8080", wantErr: true},
		{name: "ftp peer", self: "http://a:8080", peers: "http://a:8080,ftp://b:21", wantErr: true},
		{name: "hostless self", self: "http://", peers: "http://", wantErr: true},
		{name: "only commas", self: "http://a:8080", peers: ",,,", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			list, err := validateFleet(tc.self, tc.peers)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("validateFleet(%q, %q) accepted", tc.self, tc.peers)
				}
				return
			}
			if err != nil {
				t.Fatalf("validateFleet(%q, %q): %v", tc.self, tc.peers, err)
			}
			if len(list) != tc.wantN {
				t.Fatalf("got %d peers, want %d", len(list), tc.wantN)
			}
		})
	}
}

func TestValidateCacheDir(t *testing.T) {
	dir := t.TempDir()
	if err := validateCacheDir(dir); err != nil {
		t.Fatalf("writable dir rejected: %v", err)
	}
	if err := validateCacheDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("nonexistent dir accepted")
	}
	file := filepath.Join(dir, "file")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateCacheDir(file); err == nil {
		t.Fatal("plain file accepted as cache dir")
	}
	if os.Geteuid() != 0 { // root writes anywhere; the probe only means something unprivileged
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o500); err != nil {
			t.Fatal(err)
		}
		if err := validateCacheDir(ro); err == nil {
			t.Fatal("read-only dir accepted")
		}
	}
}
