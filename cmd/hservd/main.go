// Command hservd serves the partitioning methodology over HTTP — one warm
// process that many clients share instead of recompiling per invocation.
// It fronts the v2 Engine with a bounded content-addressed result cache and
// request coalescing (see internal/server), so repeated or concurrent
// identical requests cost one compile+profile+partition.
//
// Usage:
//
//	hservd -addr :8080 -workers 8 -cache 512 -timeout 2m -profile-memo 128
//
// Endpoints: POST /v1/partition, POST /v1/partition-energy, POST /v1/sweep
// (SSE progress with Accept: text/event-stream), POST /v1/simulate,
// GET /healthz, GET /v1/presets, GET /debug/stats, GET /metrics (Prometheus
// text). -profile-memo bounds the process-wide benchmark profile memo
// ((bench, seed) entries; 0 lifts the bound for trusted deployments) and
// /debug/stats reports its population.
//
// Fleet and persistence knobs:
//
//	-cache-dir DIR       persist results on disk (content-addressed, LRU
//	                     evicted at -cache-disk-mb) so a restart serves its
//	                     first repeat request as a hit
//	-self URL -peers A,B fingerprint-sharded peer routing over a consistent
//	                     ring: requests another replica owns are forwarded
//	                     there, so N replicas keep one copy of each result
//	-max-sim-cost N      admission budget in simulated-cost units per second;
//	                     sim-scored bursts over it are shed with 429
//
// Observability knobs:
//
//	-trace-ring N        keep the last N request traces in memory, served by
//	                     GET /debug/traces and /debug/traces/{id} (Chrome
//	                     trace-event JSON, Perfetto-loadable); 0 disables
//	                     tracing entirely
//	-trace-keep-slow K   tail-sampled retention: always keep error traces and
//	                     the K slowest per endpoint, sample the unremarkable
//	                     rest into the ring (0 = legacy overwrite-oldest)
//	-telemetry-interval D sample runtime/metrics (heap, GC, goroutines, sched
//	                     latency) plus service-counter deltas every D into a
//	                     bounded ring, served by GET /debug/telemetry and as
//	                     /metrics gauges (0 = off)
//	-slow-ms N           log one structured summary line for every request
//	                     slower than N milliseconds (0 = off)
//	-debug-addr ADDR     serve net/http/pprof on a second listener, never on
//	                     the serving mux (e.g. -debug-addr 127.0.0.1:6060)
//
// Logs are structured (log/slog, text format, one line per event).
//
// SIGINT or SIGTERM drains in-flight requests (including forwards) and
// shuts the listener down gracefully. Invalid flags exit 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hybridpart"
	"hybridpart/internal/cluster"
	"hybridpart/internal/obs"
	"hybridpart/internal/server"
	"hybridpart/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port)")
	workers := flag.Int("workers", 0, "bound on each sweep's worker pool (0 = no bound, GOMAXPROCS default)")
	cacheCap := flag.Int("cache", 256, "result-cache capacity in entries (in-memory store)")
	cacheDir := flag.String("cache-dir", "", "persist results in this directory (disk-backed store; survives restarts)")
	cacheDiskMB := flag.Int("cache-disk-mb", 64, "disk store bound in MiB (with -cache-dir)")
	timeout := flag.Duration("timeout", time.Minute, "per-request run timeout (0 = unbounded)")
	profileMemo := flag.Int("profile-memo", hybridpart.DefaultProfileMemoBound,
		"benchmark profile memo bound in (bench, seed) entries; 0 = unbounded, for trusted deployments")
	self := flag.String("self", "", "this replica's base URL as peers reach it (fleet mode, with -peers)")
	peers := flag.String("peers", "", "comma-separated base URLs of every replica, -self included (fleet mode)")
	forwardTimeout := flag.Duration("forward-timeout", 0, "per-forward deadline before falling back to local compute in fleet mode (0 = 2s default)")
	maxSimCost := flag.Int("max-sim-cost", 0, "admission budget in simulated-cost units per second (0 = no admission control)")
	traceRing := flag.Int("trace-ring", 256, "finished request traces kept for GET /debug/traces (0 = tracing off)")
	traceKeepSlow := flag.Int("trace-keep-slow", 4, "always keep error traces and this many slowest per endpoint, sampling the rest (0 = overwrite-oldest)")
	telemetryInterval := flag.Duration("telemetry-interval", 10*time.Second, "runtime telemetry sampling interval for GET /debug/telemetry (0 = off)")
	slowMS := flag.Int("slow-ms", 0, "log a structured summary line for requests slower than this many milliseconds (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this second listener (empty = off; never on the serving mux)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *cacheCap <= 0 {
		fail(fmt.Sprintf("-cache must be positive, got %d", *cacheCap))
	}
	if *workers < 0 {
		fail(fmt.Sprintf("-workers must be non-negative, got %d", *workers))
	}
	if *timeout < 0 {
		fail(fmt.Sprintf("-timeout must be non-negative, got %v", *timeout))
	}
	if *forwardTimeout < 0 {
		fail(fmt.Sprintf("-forward-timeout must be non-negative, got %v", *forwardTimeout))
	}
	if *maxSimCost < 0 {
		fail(fmt.Sprintf("-max-sim-cost must be non-negative, got %d", *maxSimCost))
	}
	if *traceRing < 0 {
		fail(fmt.Sprintf("-trace-ring must be non-negative, got %d", *traceRing))
	}
	if *traceKeepSlow < 0 {
		fail(fmt.Sprintf("-trace-keep-slow must be non-negative, got %d", *traceKeepSlow))
	}
	if *telemetryInterval < 0 {
		fail(fmt.Sprintf("-telemetry-interval must be non-negative, got %v", *telemetryInterval))
	}
	if *slowMS < 0 {
		fail(fmt.Sprintf("-slow-ms must be non-negative, got %d", *slowMS))
	}
	if *debugAddr != "" && *debugAddr == *addr {
		fail("-debug-addr must differ from -addr: pprof never rides the serving mux")
	}
	if err := hybridpart.SetProfileMemoBound(*profileMemo); err != nil {
		fail(fmt.Sprintf("-profile-memo: %v", err))
	}
	peerList, err := validateFleet(*self, *peers)
	if err != nil {
		fail(err.Error())
	}

	cfg := server.Config{
		CacheCapacity:     *cacheCap,
		Workers:           *workers,
		Timeout:           *timeout,
		Self:              *self,
		Peers:             peerList,
		ForwardTimeout:    *forwardTimeout,
		MaxSimCost:        *maxSimCost,
		Logger:            logger,
		SlowThreshold:     time.Duration(*slowMS) * time.Millisecond,
		TelemetryInterval: *telemetryInterval,
	}
	if *traceRing > 0 {
		// The service name labels this replica's process row in merged
		// Perfetto traces; the self URL is the only fleet-unique name.
		service := *self
		if service == "" {
			service = "hservd"
		}
		cfg.Tracer = obs.New(obs.Config{Service: service, RingSize: *traceRing, KeepSlow: *traceKeepSlow})
	}
	var disk *store.Disk
	if *cacheDir != "" {
		if *cacheDiskMB <= 0 {
			fail(fmt.Sprintf("-cache-disk-mb must be positive, got %d", *cacheDiskMB))
		}
		if err := validateCacheDir(*cacheDir); err != nil {
			fail(err.Error())
		}
		if disk, err = store.OpenDisk(*cacheDir, int64(*cacheDiskMB)<<20); err != nil {
			fail(fmt.Sprintf("-cache-dir: %v", err))
		}
		cfg.Store = disk
	}
	// closeStore flushes the disk index; it must run on every exit path
	// that follows OpenDisk, or the next start loses the LRU order.
	closeStore := func() {
		if disk == nil {
			return
		}
		if err := disk.Close(); err != nil {
			logger.Error("closing disk store", "error", err)
		}
	}

	// SIGINT/SIGTERM cancel this context, which starts the graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Request contexts are decoupled from the signal context: cancelling
	// them at the signal would abort the very in-flight runs (and peer
	// forwards) the drain below exists to finish. They are cancelled only
	// when the drain window expires.
	runCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	app := server.New(cfg)
	// app.Close stops the telemetry collector goroutine; like closeStore it
	// must run on every exit path that follows New.
	defer app.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return runCtx },
	}

	// Listen before announcing, so ":0" logs the real port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err.Error())
	}
	mode := fmt.Sprintf("cache %d entries", *cacheCap)
	if disk != nil {
		mode = fmt.Sprintf("disk cache %s (%d MiB)", *cacheDir, *cacheDiskMB)
	}
	if len(peerList) > 0 {
		mode += fmt.Sprintf(", fleet of %d (self %s)", len(peerList), *self)
	}
	if *maxSimCost > 0 {
		mode += fmt.Sprintf(", admission %d units/s", *maxSimCost)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "mode", mode,
		"timeout", timeout.String(), "trace_ring", *traceRing, "trace_keep_slow", *traceKeepSlow,
		"telemetry_interval", telemetryInterval.String(), "slow_ms", *slowMS)

	// The pprof listener is opt-in and always separate from the serving
	// mux: profiling endpoints on a public address are an information leak
	// and a DoS lever, so they bind to their own (typically loopback)
	// address with an explicit mux that carries nothing else.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(fmt.Sprintf("-debug-addr: %v", err))
		}
		debugSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		logger.Info("pprof listening", "addr", dln.Addr().String())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}
	closeDebug := func() {
		if debugSrv != nil {
			debugSrv.Close()
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		closeDebug()
		closeStore()
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err.Error())
		}
	case <-ctx.Done():
		logger.Info("signal received, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		// If the drain window expires, cancel the remaining runs so
		// Shutdown's error path is reached promptly rather than hanging
		// on an engine run that ignores the listener closing.
		stopKill := context.AfterFunc(shutdownCtx, cancelRuns)
		defer stopKill()
		err := srv.Shutdown(shutdownCtx)
		closeDebug()
		closeStore()
		if err != nil {
			logger.Error("forced shutdown", "error", err)
			os.Exit(1)
		}
		logger.Info("bye")
	}
}

// validateFleet checks the -self/-peers pair and returns the parsed peer
// list: both flags or neither, every URL well-formed (http/https scheme and
// a host), and -self a member of -peers.
func validateFleet(self, peers string) ([]string, error) {
	if (self == "") != (peers == "") {
		return nil, errors.New("-self and -peers must be given together")
	}
	if self == "" {
		return nil, nil
	}
	if err := validatePeerURL(self); err != nil {
		return nil, fmt.Errorf("-self: %w", err)
	}
	var list []string
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if err := validatePeerURL(p); err != nil {
			return nil, fmt.Errorf("-peers: %w", err)
		}
		list = append(list, p)
	}
	if len(list) == 0 {
		return nil, errors.New("-peers names no replicas")
	}
	if !cluster.NewRing(list, 0).Contains(self) {
		return nil, fmt.Errorf("-self %s is not in -peers %s", self, peers)
	}
	return list, nil
}

// validatePeerURL rejects replica URLs the forwarder could not use.
func validatePeerURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("malformed URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("URL %q must use http or https", raw)
	}
	if u.Host == "" {
		return fmt.Errorf("URL %q has no host", raw)
	}
	return nil
}

// validateCacheDir requires an existing, writable directory — failing at
// startup with a clear message beats failing on the first eviction.
func validateCacheDir(dir string) error {
	fi, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("-cache-dir: %v", err)
	}
	if !fi.IsDir() {
		return fmt.Errorf("-cache-dir %s is not a directory", dir)
	}
	probe := filepath.Join(dir, ".hservd-writable")
	f, err := os.Create(probe)
	if err != nil {
		return fmt.Errorf("-cache-dir %s is not writable: %v", dir, err)
	}
	f.Close()
	os.Remove(probe)
	return nil
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "hservd: %s\n", msg)
	os.Exit(2)
}
