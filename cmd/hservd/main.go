// Command hservd serves the partitioning methodology over HTTP — one warm
// process that many clients share instead of recompiling per invocation.
// It fronts the v2 Engine with a bounded content-addressed result cache and
// request coalescing (see internal/server), so repeated or concurrent
// identical requests cost one compile+profile+partition.
//
// Usage:
//
//	hservd -addr :8080 -workers 8 -cache 512 -timeout 2m -profile-memo 128
//
// Endpoints: POST /v1/partition, POST /v1/partition-energy, POST /v1/sweep
// (SSE progress with Accept: text/event-stream), POST /v1/simulate,
// GET /healthz, GET /v1/presets, GET /debug/stats. -profile-memo bounds the
// process-wide benchmark profile memo ((bench, seed) entries; 0 lifts the
// bound for trusted deployments) and /debug/stats reports its population.
// SIGINT or SIGTERM drains in-flight requests and shuts the listener down
// gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridpart"
	"hybridpart/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port)")
	workers := flag.Int("workers", 0, "bound on each sweep's worker pool (0 = no bound, GOMAXPROCS default)")
	cacheCap := flag.Int("cache", 256, "result-cache capacity in entries")
	timeout := flag.Duration("timeout", time.Minute, "per-request run timeout (0 = unbounded)")
	profileMemo := flag.Int("profile-memo", hybridpart.DefaultProfileMemoBound,
		"benchmark profile memo bound in (bench, seed) entries; 0 = unbounded, for trusted deployments")
	flag.Parse()

	if *cacheCap <= 0 {
		fail(fmt.Sprintf("-cache must be positive, got %d", *cacheCap))
	}
	if *workers < 0 {
		fail(fmt.Sprintf("-workers must be non-negative, got %d", *workers))
	}
	if *timeout < 0 {
		fail(fmt.Sprintf("-timeout must be non-negative, got %v", *timeout))
	}
	if err := hybridpart.SetProfileMemoBound(*profileMemo); err != nil {
		fail(fmt.Sprintf("-profile-memo: %v", err))
	}

	// SIGINT/SIGTERM cancel this context; the same plumbing the library uses
	// for run cancellation drives the server's graceful shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := server.New(server.Config{
		CacheCapacity: *cacheCap,
		Workers:       *workers,
		Timeout:       *timeout,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Tie every request context to the signal context: on shutdown,
		// in-flight engine runs see cancellation and finish promptly (as
		// 499s) instead of outliving the drain window below.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	// Listen before announcing, so ":0" logs the real port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err.Error())
	}
	log.Printf("hservd: listening on %s (cache %d entries, timeout %v)", ln.Addr(), *cacheCap, *timeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err.Error())
		}
	case <-ctx.Done():
		log.Printf("hservd: signal received, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("hservd: forced shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("hservd: bye")
	}
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "hservd: %s\n", msg)
	os.Exit(2)
}
