// Command hpart runs the complete partitioning methodology on a mini-C
// source file or on one of the built-in benchmarks, printing the Table-2/3
// style result.
//
// Usage:
//
//	hpart -bench ofdm -constraint 60000
//	hpart -bench jpeg -preset dsp-rich -trace
//	hpart -src app.c -entry main_fn -afpga 1500 -cgcs 2 -constraint 100000
//
// -preset starts from a registered platform variant; -afpga/-cgcs override
// individual fields of it when given explicitly. -trace streams the
// move-by-move partitioning trajectory to stderr. -json replaces the table
// with the full result as machine-readable JSON — the same wire shape the
// hservd service returns from POST /v1/partition. -trace-out file.json
// records the run as a span trace (move loop, sim.ScoreBatch batches,
// replays) in Chrome trace-event format, loadable in Perfetto.
//
// Feedback-directed partitioning: -objective sim makes the move loop
// optimize the simulated makespan (replaying the profiled trace through the
// co-simulator per candidate) instead of the closed-form t_total, and
// -rerank k keeps the closed-form loop but re-scores its top-k trajectories
// by simulation. -frames/-ports/-prefetch set the simulated operating
// point; with any of them the report also carries the chosen mapping's
// simulated makespan, so
//
//	hpart -bench ofdm -frames 8 -objective model
//	hpart -bench ofdm -frames 8 -objective sim
//
// compare what the model picks against what execution-level feedback picks. Custom sources are
// profiled by executing the entry function once; entry functions with
// scalar parameters receive the values passed via -args (comma-separated
// integers). Input arrays can be preset only for the built-in benchmarks;
// custom applications should initialize their inputs in source (or embed a
// generator loop).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hybridpart"
	"hybridpart/internal/cliutil"
	"hybridpart/internal/obs"
	"hybridpart/internal/server"
)

func main() {
	bench := flag.String("bench", "", fmt.Sprintf("built-in benchmark %v", hybridpart.Benchmarks()))
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	args := flag.String("args", "", "comma-separated scalar arguments for the entry function")
	seed := flag.Uint("seed", 1, "benchmark input seed")
	preset := flag.String("preset", "", "platform preset to start from (see hsweep -list-presets)")
	afpga := flag.Int("afpga", 1500, "usable fine-grain area A_FPGA")
	cgcs := flag.Int("cgcs", 2, "number of 2x2 CGCs in the data-path")
	regions := flag.Int("regions", 1, "independently reconfigurable fine-grain regions (1 = monolithic context)")
	constraint := flag.Int64("constraint", 60000, "timing constraint in FPGA cycles")
	objective := flag.String("objective", "model", `move-loop objective: "model" (closed-form t_total) or "sim" (simulated makespan)`)
	rerank := flag.Int("rerank", 0, "re-score the top-k model trajectories by simulation (0 = off, -1 = all)")
	frames := flag.Int("frames", 0, "co-simulation frame count for the objective/report (0 = no simulation unless -objective sim)")
	ports := flag.Int("ports", 0, "co-simulation transfer-port width (0 = 1)")
	prefetch := flag.Bool("prefetch", false, "co-simulate with configuration prefetch")
	trace := flag.Bool("trace", false, "stream the move-by-move trajectory and scoring stats to stderr")
	workers := flag.Int("workers", 0, "worker budget for simulation-scored candidate slates (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON (the service wire format) instead of the table")
	pipelineN := flag.Int("pipeline-frames", 0, "if >0, also report frame pipelining over N frames")
	traceOut := flag.String("trace-out", "", "write the run's span trace to this file as Chrome trace-event JSON (Perfetto-loadable)")
	flag.Parse()

	// Validate every flag up front so bad input dies with one clear line
	// instead of an opaque failure deep in the flow.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch {
	case *bench == "" && *src == "":
		fail("need -bench or -src")
	case *bench != "" && *src != "":
		fail("-bench and -src are mutually exclusive")
	case *bench != "" && !hybridpart.IsBenchmark(*bench):
		fail(fmt.Sprintf("unknown benchmark %q (have %v)", *bench, hybridpart.Benchmarks()))
	case *afpga <= 0:
		fail(fmt.Sprintf("-afpga must be positive, got %d", *afpga))
	case *cgcs <= 0:
		fail(fmt.Sprintf("-cgcs must be positive, got %d", *cgcs))
	case *regions <= 0:
		fail(fmt.Sprintf("-regions must be positive, got %d", *regions))
	case *constraint <= 0:
		fail(fmt.Sprintf("-constraint must be positive, got %d", *constraint))
	case *pipelineN < 0:
		fail(fmt.Sprintf("-pipeline-frames must be non-negative, got %d", *pipelineN))
	case *jsonOut && *pipelineN > 0:
		fail("-json and -pipeline-frames are mutually exclusive (the pipeline report is table-only)")
	case *frames < 0:
		fail(fmt.Sprintf("-frames must be non-negative, got %d", *frames))
	case *ports < 0:
		fail(fmt.Sprintf("-ports must be non-negative, got %d", *ports))
	case *rerank < -1:
		fail(fmt.Sprintf("-rerank must be -1 (all), 0 (off) or positive, got %d", *rerank))
	case *workers < 0:
		fail(fmt.Sprintf("-workers must be non-negative, got %d", *workers))
	}
	obj, err := hybridpart.ParseObjective(*objective)
	if err != nil {
		fail(err.Error())
	}
	if obj == hybridpart.ObjectiveSimulated && *rerank != 0 {
		fail("-objective sim and -rerank are mutually exclusive (rerank already ends with a simulated selection)")
	}

	// Engine configuration: the preset (if any) lays down the platform;
	// explicitly-given flags override its individual fields.
	var engineOpts []hybridpart.Option
	if *preset != "" {
		engineOpts = append(engineOpts, hybridpart.WithPlatform(*preset))
	}
	if *preset == "" || set["afpga"] {
		engineOpts = append(engineOpts, hybridpart.WithArea(*afpga))
	}
	if *preset == "" || set["cgcs"] {
		engineOpts = append(engineOpts, hybridpart.WithCGCs(*cgcs))
	}
	if *preset == "" || set["regions"] {
		engineOpts = append(engineOpts, hybridpart.WithRegions(*regions))
	}
	engineOpts = append(engineOpts, hybridpart.WithConstraint(*constraint),
		hybridpart.WithObjective(obj), hybridpart.WithRerank(*rerank),
		hybridpart.WithSimFrames(*frames), hybridpart.WithSimPorts(*ports),
		hybridpart.WithSimPrefetch(*prefetch), hybridpart.WithWorkers(*workers))
	if *trace {
		engineOpts = append(engineOpts, hybridpart.WithObserver(func(ev hybridpart.Event) {
			if mv, ok := ev.(hybridpart.MoveEvent); ok {
				fmt.Fprintf(os.Stderr, "hpart: move %d: BB %d -> CGC (t_total %d, met %v)\n",
					mv.Seq, mv.Block, mv.TotalAfter, mv.Met)
			}
		}))
	}
	eng, err := hybridpart.NewEngine(engineOpts...)
	if err != nil {
		fail(err.Error())
	}

	var w *hybridpart.Workload
	if *bench != "" {
		w, err = hybridpart.BenchmarkWorkload(*bench, uint32(*seed))
	} else {
		w, err = cliutil.SourceWorkload(*src, *entry, *args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
		os.Exit(1)
	}

	if !*jsonOut {
		fmt.Printf("application: %s (%d basic blocks)\n", w.Entry(), w.NumBlocks())
	}
	ctx, runTrace := cliutil.TraceRun(context.Background(), *traceOut,
		"hpart", "hpart partition", obs.String("workload", w.Entry()))
	res, err := eng.Partition(ctx, w)
	if werr := runTrace.Close(); werr != nil {
		fmt.Fprintf(os.Stderr, "hpart: -trace-out: %v\n", werr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
		os.Exit(1)
	}
	if *trace && res.SimStats != (hybridpart.SimScoreStats{}) {
		st := res.SimStats
		fmt.Fprintf(os.Stderr, "hpart: sim scoring: %d scored (%d replays, %d closed-form, %d incremental), %d pruned, %d parallel, %d memo hits, %d workers\n",
			st.Scored, st.Replays, st.ClosedForm, st.Incremental, st.Pruned, st.Parallel, st.MemoHits, st.Workers)
	}
	if *jsonOut {
		// Machine-readable path: the same wire type the partitioning
		// service returns from POST /v1/partition, indented for terminals.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(server.NewResultJSON(res)); err != nil {
			fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(res.Format())
		if len(res.Unmappable) > 0 {
			fmt.Printf("Unmappable kernels:        %v\n", res.Unmappable)
		}
		if res.SimulatedBaselineCycles > 0 {
			fmt.Printf("Objective:                 %s\n", res.Objective)
			fmt.Printf("Simulated makespan:        %d (all-FPGA %d, speedup %.3f)\n",
				res.SimulatedCycles, res.SimulatedBaselineCycles, res.SimulatedSpeedup)
		}
		if *pipelineN > 0 {
			fmt.Printf("\nFrame pipelining over %d frames:\n%s", *pipelineN,
				res.Pipeline().Report([]int{1, *pipelineN / 10, *pipelineN}))
		}
	}
	if !res.Met {
		os.Exit(3)
	}
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "hpart: %s\n", msg)
	os.Exit(2)
}
