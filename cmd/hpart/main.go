// Command hpart runs the complete partitioning methodology on a mini-C
// source file or on one of the built-in benchmarks, printing the Table-2/3
// style result.
//
// Usage:
//
//	hpart -bench ofdm -constraint 60000
//	hpart -bench jpeg -preset dsp-rich -trace
//	hpart -src app.c -entry main_fn -afpga 1500 -cgcs 2 -constraint 100000
//
// -preset starts from a registered platform variant; -afpga/-cgcs override
// individual fields of it when given explicitly. -trace streams the
// move-by-move partitioning trajectory to stderr. -json replaces the table
// with the full result as machine-readable JSON — the same wire shape the
// hservd service returns from POST /v1/partition. Custom sources are
// profiled by executing the entry function once; entry functions with
// scalar parameters receive the values passed via -args (comma-separated
// integers). Input arrays can be preset only for the built-in benchmarks;
// custom applications should initialize their inputs in source (or embed a
// generator loop).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridpart"
	"hybridpart/internal/server"
)

func main() {
	bench := flag.String("bench", "", `built-in benchmark ("ofdm" or "jpeg")`)
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	args := flag.String("args", "", "comma-separated scalar arguments for the entry function")
	seed := flag.Uint("seed", 1, "benchmark input seed")
	preset := flag.String("preset", "", "platform preset to start from (see hsweep -list-presets)")
	afpga := flag.Int("afpga", 1500, "usable fine-grain area A_FPGA")
	cgcs := flag.Int("cgcs", 2, "number of 2x2 CGCs in the data-path")
	constraint := flag.Int64("constraint", 60000, "timing constraint in FPGA cycles")
	trace := flag.Bool("trace", false, "stream the move-by-move trajectory to stderr")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON (the service wire format) instead of the table")
	pipelineN := flag.Int("pipeline-frames", 0, "if >0, also report frame pipelining over N frames")
	flag.Parse()

	// Validate every flag up front so bad input dies with one clear line
	// instead of an opaque failure deep in the flow.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch {
	case *bench == "" && *src == "":
		fail("need -bench or -src")
	case *bench != "" && *src != "":
		fail("-bench and -src are mutually exclusive")
	case *bench != "" && !hybridpart.IsBenchmark(*bench):
		fail(fmt.Sprintf("unknown benchmark %q (have %v)", *bench, hybridpart.Benchmarks()))
	case *afpga <= 0:
		fail(fmt.Sprintf("-afpga must be positive, got %d", *afpga))
	case *cgcs <= 0:
		fail(fmt.Sprintf("-cgcs must be positive, got %d", *cgcs))
	case *constraint <= 0:
		fail(fmt.Sprintf("-constraint must be positive, got %d", *constraint))
	case *pipelineN < 0:
		fail(fmt.Sprintf("-pipeline-frames must be non-negative, got %d", *pipelineN))
	case *jsonOut && *pipelineN > 0:
		fail("-json and -pipeline-frames are mutually exclusive (the pipeline report is table-only)")
	}

	// Engine configuration: the preset (if any) lays down the platform;
	// explicitly-given flags override its individual fields.
	var engineOpts []hybridpart.Option
	if *preset != "" {
		engineOpts = append(engineOpts, hybridpart.WithPlatform(*preset))
	}
	if *preset == "" || set["afpga"] {
		engineOpts = append(engineOpts, hybridpart.WithArea(*afpga))
	}
	if *preset == "" || set["cgcs"] {
		engineOpts = append(engineOpts, hybridpart.WithCGCs(*cgcs))
	}
	engineOpts = append(engineOpts, hybridpart.WithConstraint(*constraint))
	if *trace {
		engineOpts = append(engineOpts, hybridpart.WithObserver(func(ev hybridpart.Event) {
			if mv, ok := ev.(hybridpart.MoveEvent); ok {
				fmt.Fprintf(os.Stderr, "hpart: move %d: BB %d -> CGC (t_total %d, met %v)\n",
					mv.Seq, mv.Block, mv.TotalAfter, mv.Met)
			}
		}))
	}
	eng, err := hybridpart.NewEngine(engineOpts...)
	if err != nil {
		fail(err.Error())
	}

	var w *hybridpart.Workload
	if *bench != "" {
		w, err = hybridpart.BenchmarkWorkload(*bench, uint32(*seed))
	} else {
		w, err = sourceWorkload(*src, *entry, *args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
		os.Exit(1)
	}

	if !*jsonOut {
		fmt.Printf("application: %s (%d basic blocks)\n", w.Entry(), w.NumBlocks())
	}
	res, err := eng.Partition(context.Background(), w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		// Machine-readable path: the same wire type the partitioning
		// service returns from POST /v1/partition, indented for terminals.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(server.NewResultJSON(res)); err != nil {
			fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(res.Format())
		if len(res.Unmappable) > 0 {
			fmt.Printf("Unmappable kernels:        %v\n", res.Unmappable)
		}
		if *pipelineN > 0 {
			fmt.Printf("\nFrame pipelining over %d frames:\n%s", *pipelineN,
				res.Pipeline().Report([]int{1, *pipelineN / 10, *pipelineN}))
		}
	}
	if !res.Met {
		os.Exit(3)
	}
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "hpart: %s\n", msg)
	os.Exit(2)
}

func sourceWorkload(path, entry, argList string) (*hybridpart.Workload, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	w, err := hybridpart.NewWorkload(string(text), entry)
	if err != nil {
		return nil, err
	}
	var args []int32
	if argList != "" {
		for _, part := range strings.Split(argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad -args value %q: %v", part, err)
			}
			args = append(args, int32(v))
		}
	}
	if _, err := w.Run(args...); err != nil {
		return nil, err
	}
	return w, nil
}
