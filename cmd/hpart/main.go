// Command hpart runs the complete partitioning methodology on a mini-C
// source file or on one of the built-in benchmarks, printing the Table-2/3
// style result.
//
// Usage:
//
//	hpart -bench ofdm -constraint 60000
//	hpart -src app.c -entry main_fn -afpga 1500 -cgcs 2 -constraint 100000
//
// Custom sources are profiled by executing the entry function once; entry
// functions with scalar parameters receive the values passed via -args
// (comma-separated integers). Input arrays can be preset only for the
// built-in benchmarks; custom applications should initialize their inputs
// in source (or embed a generator loop).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridpart"
)

func main() {
	bench := flag.String("bench", "", `built-in benchmark ("ofdm" or "jpeg")`)
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	args := flag.String("args", "", "comma-separated scalar arguments for the entry function")
	seed := flag.Uint("seed", 1, "benchmark input seed")
	afpga := flag.Int("afpga", 1500, "usable fine-grain area A_FPGA")
	cgcs := flag.Int("cgcs", 2, "number of 2x2 CGCs in the data-path")
	constraint := flag.Int64("constraint", 60000, "timing constraint in FPGA cycles")
	pipelineN := flag.Int("pipeline-frames", 0, "if >0, also report frame pipelining over N frames")
	flag.Parse()

	opts := hybridpart.DefaultOptions()
	opts.AFPGA = *afpga
	opts.NumCGCs = *cgcs
	opts.Constraint = *constraint

	var (
		app  *hybridpart.App
		prof *hybridpart.RunProfile
		err  error
	)
	switch {
	case *bench != "":
		app, prof, err = hybridpart.ProfileBenchmark(*bench, uint32(*seed))
	case *src != "":
		app, prof, err = profileSource(*src, *entry, *args)
	default:
		fmt.Fprintln(os.Stderr, "hpart: need -bench or -src")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("application: %s (%d basic blocks)\n", app.Entry(), app.NumBlocks())
	res, err := app.Partition(prof, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpart: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
	if len(res.Unmappable) > 0 {
		fmt.Printf("Unmappable kernels:        %v\n", res.Unmappable)
	}
	if *pipelineN > 0 {
		fmt.Printf("\nFrame pipelining over %d frames:\n%s", *pipelineN,
			res.Pipeline().Report([]int{1, *pipelineN / 10, *pipelineN}))
	}
	if !res.Met {
		os.Exit(3)
	}
}

func profileSource(path, entry, argList string) (*hybridpart.App, *hybridpart.RunProfile, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	app, err := hybridpart.Compile(string(text), entry)
	if err != nil {
		return nil, nil, err
	}
	var args []int32
	if argList != "" {
		for _, part := range strings.Split(argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -args value %q: %v", part, err)
			}
			args = append(args, int32(v))
		}
	}
	run := app.NewRunner()
	if _, err := run.Run(args...); err != nil {
		return nil, nil, err
	}
	return app, run.Profile(), nil
}
