// Command hsim co-simulates a partitioned application on the hybrid
// platform: it runs the partitioning methodology, then replays the profiled
// CDFG trace through the discrete-event platform model (internal/sim) —
// sequencer dispatch, temporal-partition swaps with optional configuration
// prefetch, list-scheduled CGC execution, shared-memory transfer slots and
// the two-stage frame pipeline — and prints the simulated makespan,
// per-fabric utilization, per-kernel timeline and the validation of the
// analytical model against the simulation.
//
// Usage:
//
//	hsim -bench ofdm
//	hsim -bench jpeg -frames 16 -prefetch -ports 2
//	hsim -src app.c -entry main_fn -constraint 100000 -json
//
// -preset starts from a registered platform variant; -afpga/-cgcs override
// individual fields of it when given explicitly. -constraint defaults to
// the benchmark's paper evaluation constraint (and is required for -src).
// -trace streams per-frame progress events to stderr. -json replaces the
// table with the service wire format of POST /v1/simulate. -trace-out
// file.json records the run as a span trace (partitioning, baseline and
// partitioned replays) in Chrome trace-event format, loadable in Perfetto.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hybridpart"
	"hybridpart/internal/cliutil"
	"hybridpart/internal/obs"
	"hybridpart/internal/server"
)

func main() {
	bench := flag.String("bench", "", fmt.Sprintf("built-in benchmark %v", hybridpart.Benchmarks()))
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	args := flag.String("args", "", "comma-separated scalar arguments for the entry function")
	seed := flag.Uint("seed", 1, "benchmark input seed")
	preset := flag.String("preset", "", "platform preset to start from (see hsweep -list-presets)")
	afpga := flag.Int("afpga", 1500, "usable fine-grain area A_FPGA")
	cgcs := flag.Int("cgcs", 2, "number of 2x2 CGCs in the data-path")
	regions := flag.Int("regions", 1, "independently reconfigurable fine-grain regions (1 = monolithic context)")
	constraint := flag.Int64("constraint", 0, "timing constraint in FPGA cycles (0 = the benchmark's paper default)")
	frames := flag.Int("frames", 1, "application frames to replay (the frame pipeline overlaps the fabrics)")
	ports := flag.Int("ports", 1, "fabric-to-fabric transfer ports (the model assumes 1)")
	prefetch := flag.Bool("prefetch", false, "overlap configuration loads with data-path execution")
	objective := flag.String("objective", "model", `move-loop objective of the simulated partitioning: "model" or "sim"`)
	rerank := flag.Int("rerank", 0, "re-score the top-k model trajectories by simulation (0 = off, -1 = all)")
	trace := flag.Bool("trace", false, "stream per-frame simulation events to stderr")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (the service wire format) instead of the table")
	traceOut := flag.String("trace-out", "", "write the run's span trace to this file as Chrome trace-event JSON (Perfetto-loadable)")
	flag.Parse()

	// Validate every flag up front so bad input dies with one clear line
	// instead of an opaque failure deep in the flow.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch {
	case *bench == "" && *src == "":
		fail("need -bench or -src")
	case *bench != "" && *src != "":
		fail("-bench and -src are mutually exclusive")
	case *bench != "" && !hybridpart.IsBenchmark(*bench):
		fail(fmt.Sprintf("unknown benchmark %q (have %v)", *bench, hybridpart.Benchmarks()))
	case *afpga <= 0:
		fail(fmt.Sprintf("-afpga must be positive, got %d", *afpga))
	case *cgcs <= 0:
		fail(fmt.Sprintf("-cgcs must be positive, got %d", *cgcs))
	case *regions <= 0:
		fail(fmt.Sprintf("-regions must be positive, got %d", *regions))
	case *constraint < 0:
		fail(fmt.Sprintf("-constraint must be positive, got %d", *constraint))
	case *constraint == 0 && *src != "":
		fail("need -constraint with -src (no paper default for custom sources)")
	case *frames <= 0:
		fail(fmt.Sprintf("-frames must be positive, got %d", *frames))
	case *ports <= 0:
		fail(fmt.Sprintf("-ports must be positive, got %d", *ports))
	case *rerank < -1:
		fail(fmt.Sprintf("-rerank must be -1 (all), 0 (off) or positive, got %d", *rerank))
	}
	obj, err := hybridpart.ParseObjective(*objective)
	if err != nil {
		fail(err.Error())
	}
	if obj == hybridpart.ObjectiveSimulated && *rerank != 0 {
		fail("-objective sim and -rerank are mutually exclusive (rerank already ends with a simulated selection)")
	}
	if *constraint == 0 {
		*constraint = hybridpart.DefaultConstraint(*bench)
	}

	// Engine configuration: the preset (if any) lays down the platform;
	// explicitly-given flags override its individual fields.
	var engineOpts []hybridpart.Option
	if *preset != "" {
		engineOpts = append(engineOpts, hybridpart.WithPlatform(*preset))
	}
	if *preset == "" || set["afpga"] {
		engineOpts = append(engineOpts, hybridpart.WithArea(*afpga))
	}
	if *preset == "" || set["cgcs"] {
		engineOpts = append(engineOpts, hybridpart.WithCGCs(*cgcs))
	}
	if *preset == "" || set["regions"] {
		engineOpts = append(engineOpts, hybridpart.WithRegions(*regions))
	}
	// The knobs go on the engine (not just this Simulate call) so a
	// simulated objective or re-rank scores candidates at the same operating
	// point the report replays.
	engineOpts = append(engineOpts, hybridpart.WithConstraint(*constraint),
		hybridpart.WithObjective(obj), hybridpart.WithRerank(*rerank),
		hybridpart.WithSimFrames(*frames), hybridpart.WithSimPorts(*ports),
		hybridpart.WithSimPrefetch(*prefetch))
	if *trace {
		engineOpts = append(engineOpts, hybridpart.WithObserver(func(ev hybridpart.Event) {
			if se, ok := ev.(hybridpart.SimEvent); ok {
				fmt.Fprintf(os.Stderr, "hsim: %s frame %d/%d done at cycle %d\n",
					se.Stage, se.Frame, se.Frames, se.Cycles)
			}
		}))
	}
	eng, err := hybridpart.NewEngine(engineOpts...)
	if err != nil {
		fail(err.Error())
	}

	var w *hybridpart.Workload
	if *bench != "" {
		w, err = hybridpart.BenchmarkWorkload(*bench, uint32(*seed))
	} else {
		w, err = cliutil.SourceWorkload(*src, *entry, *args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsim: %v\n", err)
		os.Exit(1)
	}

	ctx, runTrace := cliutil.TraceRun(context.Background(), *traceOut,
		"hsim", "hsim simulate", obs.String("workload", w.Entry()))
	rep, err := eng.Simulate(ctx, w)
	if werr := runTrace.Close(); werr != nil {
		fmt.Fprintf(os.Stderr, "hsim: -trace-out: %v\n", werr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsim: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(server.NewSimReportJSON(rep)); err != nil {
			fmt.Fprintf(os.Stderr, "hsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("application: %s (%d basic blocks, constraint %d)\n\n", w.Entry(), w.NumBlocks(), *constraint)
	fmt.Print(rep.Format())
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "hsim: %s\n", msg)
	os.Exit(2)
}
