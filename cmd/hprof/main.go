// Command hprof runs only the analysis step (step 3 of the methodology):
// it profiles the application and prints the Table-1 style ordered kernel
// report — execution frequency, operation weight and eq. 1 total weight per
// basic block.
//
// Usage:
//
//	hprof -bench jpeg -top 8
//	hprof -src app.c -entry main_fn -args 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridpart"
)

func main() {
	bench := flag.String("bench", "", `built-in benchmark ("ofdm" or "jpeg")`)
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	args := flag.String("args", "", "comma-separated scalar arguments for the entry function")
	seed := flag.Uint("seed", 1, "benchmark input seed")
	top := flag.Int("top", 8, "number of kernels to print")
	flag.Parse()

	var (
		app  *hybridpart.App
		prof *hybridpart.RunProfile
		err  error
	)
	switch {
	case *bench != "":
		app, prof, err = hybridpart.ProfileBenchmark(*bench, uint32(*seed))
	case *src != "":
		app, prof, err = profileSource(*src, *entry, *args)
	default:
		fmt.Fprintln(os.Stderr, "hprof: need -bench or -src")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hprof: %v\n", err)
		os.Exit(1)
	}
	an := app.Analyze(prof.Freq, hybridpart.DefaultOptions())
	fmt.Printf("application: %s (%d basic blocks, %d candidate kernels)\n\n",
		app.Entry(), app.NumBlocks(), len(an.Kernels))
	fmt.Print(an.FormatTable(*top))
}

func profileSource(path, entry, argList string) (*hybridpart.App, *hybridpart.RunProfile, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	app, err := hybridpart.Compile(string(text), entry)
	if err != nil {
		return nil, nil, err
	}
	var args []int32
	if argList != "" {
		for _, part := range strings.Split(argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -args value %q: %v", part, err)
			}
			args = append(args, int32(v))
		}
	}
	run := app.NewRunner()
	if _, err := run.Run(args...); err != nil {
		return nil, nil, err
	}
	return app, run.Profile(), nil
}
