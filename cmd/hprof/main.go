// Command hprof runs only the analysis step (step 3 of the methodology):
// it profiles the application and prints the Table-1 style ordered kernel
// report — execution frequency, operation weight and eq. 1 total weight per
// basic block.
//
// Usage:
//
//	hprof -bench jpeg -top 8
//	hprof -src app.c -entry main_fn -args 42
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridpart"
	"hybridpart/internal/cliutil"
)

func main() {
	bench := flag.String("bench", "", fmt.Sprintf("built-in benchmark %v", hybridpart.Benchmarks()))
	src := flag.String("src", "", "mini-C source file (alternative to -bench)")
	entry := flag.String("entry", "main_fn", "entry function for -src")
	args := flag.String("args", "", "comma-separated scalar arguments for the entry function")
	seed := flag.Uint("seed", 1, "benchmark input seed")
	top := flag.Int("top", 8, "number of kernels to print")
	flag.Parse()

	// Validate flags up front: one clear line instead of a deep failure.
	switch {
	case *bench == "" && *src == "":
		fail("need -bench or -src")
	case *bench != "" && *src != "":
		fail("-bench and -src are mutually exclusive")
	case *bench != "" && !hybridpart.IsBenchmark(*bench):
		fail(fmt.Sprintf("unknown benchmark %q (have %v)", *bench, hybridpart.Benchmarks()))
	case *top <= 0:
		fail(fmt.Sprintf("-top must be positive, got %d", *top))
	}

	var (
		w   *hybridpart.Workload
		err error
	)
	if *bench != "" {
		w, err = hybridpart.BenchmarkWorkload(*bench, uint32(*seed))
	} else {
		w, err = cliutil.SourceWorkload(*src, *entry, *args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hprof: %v\n", err)
		os.Exit(1)
	}

	eng, err := hybridpart.NewEngine()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hprof: %v\n", err)
		os.Exit(1)
	}
	an, err := eng.Analyze(w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hprof: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("application: %s (%d basic blocks, %d candidate kernels)\n\n",
		w.Entry(), w.NumBlocks(), len(an.Kernels))
	fmt.Print(an.FormatTable(*top))
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "hprof: %s\n", msg)
	os.Exit(2)
}
