package hybridpart

import (
	"strings"
	"testing"
)

// TestWriteSSE pins the server-sent-events frame format: one event: line
// carrying the type name, one data: line carrying single-line JSON, one
// blank terminator.
func TestWriteSSE(t *testing.T) {
	cases := []struct {
		ev       Event
		name     string
		contains []string
	}{
		{
			ev:       MoveEvent{Seq: 1, Block: 7, CGCCycles: 12, TotalAfter: 900, Constraint: 1000, Met: true},
			name:     "move",
			contains: []string{`"seq":1`, `"block":7`, `"total_after":900`, `"met":true`},
		},
		{
			ev:       EnergyMoveEvent{Seq: 2, Block: 3, EnergyAfter: 4.5, Budget: 9},
			name:     "energy-move",
			contains: []string{`"energy_after":4.5`, `"budget":9`},
		},
		{
			ev:       CellEvent{Outcome: SweepOutcome{InitialCycles: 100}, Done: 1, Total: 4},
			name:     "cell",
			contains: []string{`"done":1`, `"total":4`, `"initial_cycles":100`},
		},
		{
			ev:       SimEvent{Stage: "partitioned", Frame: 2, Frames: 8, Cycles: 12345},
			name:     "sim",
			contains: []string{`"stage":"partitioned"`, `"frame":2`, `"frames":8`, `"cycles":12345`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := WriteSSE(&sb, tc.ev); err != nil {
				t.Fatal(err)
			}
			frame := sb.String()
			if !strings.HasPrefix(frame, "event: "+tc.name+"\ndata: ") {
				t.Fatalf("bad frame prefix: %q", frame)
			}
			if !strings.HasSuffix(frame, "\n\n") {
				t.Fatalf("frame not terminated by blank line: %q", frame)
			}
			// The data payload must be a single line (SSE would otherwise
			// need data: continuation lines).
			body := strings.TrimPrefix(frame, "event: "+tc.name+"\n")
			if strings.Count(body, "\n") != 2 {
				t.Fatalf("payload spans multiple lines: %q", frame)
			}
			for _, want := range tc.contains {
				if !strings.Contains(frame, want) {
					t.Fatalf("frame missing %q: %q", want, frame)
				}
			}
			if EventName(tc.ev) != tc.name {
				t.Fatalf("EventName = %q, want %q", EventName(tc.ev), tc.name)
			}
		})
	}
}
