package hybridpart

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// simPresets are the platform variants the parity contract covers: the
// paper baseline plus every registered preset.
var simPresets = []string{"default", "paper-small", "paper-large", "dsp-rich", "lut-only"}

// TestSimulateModelParity is the model-vs-simulation contract: on
// contention-free (one port), single-frame, no-prefetch configurations the
// co-simulator reproduces the analytical cycle counts exactly — for both
// benchmarks, across every platform preset, on both the all-FPGA baseline
// and the partitioned mapping.
func TestSimulateModelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	for _, bench := range Benchmarks() {
		for _, preset := range simPresets {
			app, prof, err := ProfileBenchmarkCached(bench, 1)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(WithPlatform(preset), WithConstraint(DefaultConstraint(bench)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.PartitionProfiled(context.Background(), app, prof)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := eng.SimulateProfiled(context.Background(), app, prof)
			if err != nil {
				t.Fatal(err)
			}
			if rep.BaselineCycles != res.InitialCycles {
				t.Errorf("%s/%s: simulated all-FPGA %d cycles, model %d",
					bench, preset, rep.BaselineCycles, res.InitialCycles)
			}
			if rep.TotalCycles != res.FinalCycles {
				t.Errorf("%s/%s: simulated partitioned %d cycles, model %d (%d reconfigs vs %d crossings)",
					bench, preset, rep.TotalCycles, res.FinalCycles, rep.Reconfigs, rep.ModelCrossings)
			}
			if !rep.Validation.Exact {
				t.Errorf("%s/%s: validation not exact: %+v", bench, preset, rep.Validation)
			}
		}
	}
}

// TestSimulateTable2Tolerance is the Table-2 check at the simulation level:
// on the paper's evaluation configurations the simulated speedup must stay
// within 0.5%% of the model's prediction (with exact parity it is 0).
func TestSimulateTable2Tolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	for _, bench := range Benchmarks() {
		w, err := BenchmarkWorkload(bench, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(WithConstraint(DefaultConstraint(bench)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Simulate(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Validation.SimSpeedup <= 1 {
			t.Errorf("%s: simulated speedup %.3f, want > 1", bench, rep.Validation.SimSpeedup)
		}
		if e := rep.Validation.SpeedupErrorPct; e > 0.5 || e < -0.5 {
			t.Errorf("%s: simulated speedup off by %.3f%%, tolerance 0.5%%", bench, e)
		}
	}
}

// TestSimulateDeterministicJSON is the determinism contract: repeated
// Simulate calls on the same workload produce byte-identical JSON.
func TestSimulateDeterministicJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithConstraint(60000))
	if err != nil {
		t.Fatal(err)
	}
	opts := []SimOption{SimFrames(4), SimPorts(2), SimPrefetch(true)}
	a, err := eng.SimulateProfiled(context.Background(), app, prof, opts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.SimulateProfiled(context.Background(), app, prof, opts...)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("repeated simulation JSON diverged:\n%s\n%s", aj, bj)
	}
}

// TestSimulateWorkloadVsProfiled pins the two entry points to each other:
// a Workload and its (App, RunProfile) pair simulate identically.
func TestSimulateWorkloadVsProfiled(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	w, err := BenchmarkWorkload(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithConstraint(60000))
	if err != nil {
		t.Fatal(err)
	}
	viaWorkload, err := eng.Simulate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	viaProfiled, err := eng.SimulateProfiled(context.Background(), w.App(), w.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaWorkload, viaProfiled) {
		t.Fatal("Workload and (App, RunProfile) paths diverge")
	}
}

// TestSimulatePrefetchNeverSlower is the prefetch contract on the paper
// benchmarks, single- and multi-frame.
func TestSimulatePrefetchNeverSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	for _, bench := range Benchmarks() {
		app, prof, err := ProfileBenchmarkCached(bench, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(WithConstraint(DefaultConstraint(bench)))
		if err != nil {
			t.Fatal(err)
		}
		for _, frames := range []int{1, 16} {
			off, err := eng.SimulateProfiled(context.Background(), app, prof, SimFrames(frames))
			if err != nil {
				t.Fatal(err)
			}
			on, err := eng.SimulateProfiled(context.Background(), app, prof, SimFrames(frames), SimPrefetch(true))
			if err != nil {
				t.Fatal(err)
			}
			if on.TotalCycles > off.TotalCycles {
				t.Errorf("%s frames=%d: prefetch slower: %d > %d", bench, frames, on.TotalCycles, off.TotalCycles)
			}
		}
	}
}

// TestSimulateEvents checks the observer stream: baseline frames first,
// then partitioned frames, each in order, with cumulative cycle stamps.
func TestSimulateEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	var events []SimEvent
	eng, err := NewEngine(
		WithConstraint(60000),
		WithObserver(func(ev Event) {
			if se, ok := ev.(SimEvent); ok {
				events = append(events, se)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BenchmarkWorkload(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Simulate(context.Background(), w, SimFrames(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("%d SimEvents, want 6 (3 baseline + 3 partitioned)", len(events))
	}
	for i, ev := range events {
		wantStage, wantFrame := "baseline", i+1
		if i >= 3 {
			wantStage, wantFrame = "partitioned", i-2
		}
		if ev.Stage != wantStage || ev.Frame != wantFrame || ev.Frames != 3 {
			t.Fatalf("event %d = %+v, want stage %q frame %d/3", i, ev, wantStage, wantFrame)
		}
		if i > 0 && events[i].Stage == events[i-1].Stage && ev.Cycles < events[i-1].Cycles {
			t.Fatalf("cycle stamps regress: %+v after %+v", ev, events[i-1])
		}
	}
	if got := events[5].Cycles; got != rep.TotalCycles {
		t.Fatalf("last partitioned frame at %d, makespan %d", got, rep.TotalCycles)
	}
	if EventName(events[0]) != "sim" {
		t.Fatalf("SimEvent wire name %q, want \"sim\"", EventName(events[0]))
	}
}

func TestSimulateSpecValidation(t *testing.T) {
	w, err := NewWorkload("void main_fn() { int x; x = 1; }", "main_fn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithConstraint(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Simulate(context.Background(), w, SimFrames(-1)); err == nil {
		t.Error("negative frames accepted")
	}
	if _, err := eng.Simulate(context.Background(), w, SimPorts(-2)); err == nil {
		t.Error("negative ports accepted")
	}
	if _, err := eng.Simulate(context.Background(), nil); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := eng.SimulateProfiled(context.Background(), nil, nil); err == nil {
		t.Error("nil app/profile accepted")
	}
}

// TestSimulateFormat pins the report renderer's load-bearing pieces: the
// table always carries a validation section and the per-kernel timeline.
func TestSimulateFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithConstraint(60000))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.SimulateProfiled(context.Background(), app, prof)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, want := range []string{"validation:", "fine-grain", "coarse-grain", "Simulated speedup:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() lacks %q:\n%s", want, out)
		}
	}
	if len(rep.Validation.Notes) == 0 {
		t.Error("validation notes empty — the report should always explain its verdict")
	}
	if rep.Format() != out {
		t.Error("Format not deterministic")
	}
}

// TestSimulateCancelled propagates context cancellation.
func TestSimulateCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmarkCached(BenchJPEG, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithConstraint(DefaultConstraint(BenchJPEG)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SimulateProfiled(ctx, app, prof); err != context.Canceled {
		t.Fatalf("cancelled simulate returned %v", err)
	}
}
