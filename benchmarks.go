package hybridpart

import (
	"fmt"
	"strings"

	"hybridpart/internal/apps"
)

// benchmarkDef is one registry row: everything a CLI or the service needs
// to compile, feed and evaluate a built-in benchmark. New benchmarks appear
// in every CLI and in the service automatically once listed here.
type benchmarkDef struct {
	name string
	// constraint is the paper's evaluation timing constraint in FPGA cycles.
	constraint int64
	compile    func() (*App, error)
	// inputArray is the global array holding the profiling input; input
	// generates its deterministic vector for a seed.
	inputArray string
	input      func(seed uint32) []int32
}

// benchmarkDefs is the single source of truth for the built-in benchmarks,
// in presentation order.
var benchmarkDefs = []benchmarkDef{
	{
		name:       BenchOFDM,
		constraint: 60000,
		compile:    OFDMApp,
		inputArray: OFDMBitsArray,
		input:      OFDMBits,
	},
	{
		name:       BenchJPEG,
		constraint: 21000000,
		compile:    JPEGApp,
		inputArray: JPEGImageArray,
		input:      JPEGImage,
	},
}

func lookupBenchmark(name string) (benchmarkDef, bool) {
	for _, d := range benchmarkDefs {
		if d.name == name {
			return d, true
		}
	}
	return benchmarkDef{}, false
}

// Benchmarks returns the names of the built-in benchmarks accepted by
// BenchmarkWorkload, BenchmarkApp and ProfileBenchmark — the single source
// of truth CLIs should validate against.
func Benchmarks() []string {
	names := make([]string, len(benchmarkDefs))
	for i, d := range benchmarkDefs {
		names[i] = d.name
	}
	return names
}

// IsBenchmark reports whether name is a built-in benchmark.
func IsBenchmark(name string) bool {
	_, ok := lookupBenchmark(name)
	return ok
}

// Benchmark identifiers for the paper's two evaluation applications.
const (
	// BenchOFDM is the IEEE 802.11a OFDM transmitter front-end (QAM +
	// 64-point IFFT + cyclic prefix), profiled over 6 payload symbols.
	BenchOFDM = "ofdm"
	// BenchJPEG is the baseline JPEG encoder (DCT, quantizer, zig-zag,
	// Huffman), profiled over a 256×256 image.
	BenchJPEG = "jpeg"
)

// OFDM I/O constants re-exported for hosts driving the benchmark.
const (
	OFDMBitsArray  = apps.OFDMBitsArray
	OFDMOutIArray  = apps.OFDMOutIArray
	OFDMOutQArray  = apps.OFDMOutQArray
	OFDMEntryFunc  = apps.OFDMEntry
	OFDMTotalBits  = apps.OFDMTotalBits
	OFDMSymbols    = apps.OFDMSymbols
	OFDMSampleLen  = apps.OFDMSymbols * apps.SymbolSamples
	JPEGImageArray = apps.JPEGImageArray
	JPEGStream     = apps.JPEGStreamArray
	JPEGBitsArray  = apps.JPEGStateArray
	JPEGEntryFunc  = apps.JPEGEntry
	JPEGPixels     = apps.ImagePixels
)

// OFDMApp compiles the OFDM transmitter benchmark.
func OFDMApp() (*App, error) {
	return Compile(apps.OFDMSource(), apps.OFDMEntry)
}

// JPEGApp compiles the JPEG encoder benchmark.
func JPEGApp() (*App, error) {
	src, err := apps.JPEGSource()
	if err != nil {
		return nil, err
	}
	return Compile(src, apps.JPEGEntry)
}

// OFDMBits generates a deterministic payload bit stream for profiling runs.
func OFDMBits(seed uint32) []int32 { return apps.GenBits(apps.OFDMTotalBits, seed) }

// JPEGImage generates a deterministic 256×256 test image.
func JPEGImage(seed uint32) []int32 { return apps.GenImage(seed) }

// BenchmarkApp compiles the named built-in benchmark without profiling it —
// the registry-driven entry point for tools that only inspect the CDFG
// (cdfgdump).
func BenchmarkApp(name string) (*App, error) {
	d, ok := lookupBenchmark(name)
	if !ok {
		return nil, errUnknownBenchmark(name)
	}
	return d.compile()
}

// ProfileBenchmark compiles the named benchmark, runs it on its standard
// input vectors (the paper's: 6 payload symbols, one 256×256 frame) and
// returns the app plus its dynamic-analysis profile.
//
// This is the v1 shape of BenchmarkWorkload; new code should use the
// workload directly.
func ProfileBenchmark(name string, seed uint32) (*App, *RunProfile, error) {
	w, err := BenchmarkWorkload(name, seed)
	if err != nil {
		return nil, nil, err
	}
	return w.App(), w.Profile(), nil
}

type errUnknownBenchmark string

func (e errUnknownBenchmark) Error() string {
	quoted := make([]string, len(benchmarkDefs))
	for i, d := range benchmarkDefs {
		quoted[i] = fmt.Sprintf("%q", d.name)
	}
	return "hybridpart: unknown benchmark " + string(e) + " (want " + strings.Join(quoted, " or ") + ")"
}
