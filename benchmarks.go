package hybridpart

import (
	"hybridpart/internal/apps"
)

// Benchmarks returns the names of the built-in benchmarks accepted by
// BenchmarkWorkload and ProfileBenchmark — the single source of truth CLIs
// should validate against.
func Benchmarks() []string { return []string{BenchOFDM, BenchJPEG} }

// IsBenchmark reports whether name is a built-in benchmark.
func IsBenchmark(name string) bool {
	for _, b := range Benchmarks() {
		if name == b {
			return true
		}
	}
	return false
}

// Benchmark identifiers for the paper's two evaluation applications.
const (
	// BenchOFDM is the IEEE 802.11a OFDM transmitter front-end (QAM +
	// 64-point IFFT + cyclic prefix), profiled over 6 payload symbols.
	BenchOFDM = "ofdm"
	// BenchJPEG is the baseline JPEG encoder (DCT, quantizer, zig-zag,
	// Huffman), profiled over a 256×256 image.
	BenchJPEG = "jpeg"
)

// OFDM I/O constants re-exported for hosts driving the benchmark.
const (
	OFDMBitsArray  = apps.OFDMBitsArray
	OFDMOutIArray  = apps.OFDMOutIArray
	OFDMOutQArray  = apps.OFDMOutQArray
	OFDMEntryFunc  = apps.OFDMEntry
	OFDMTotalBits  = apps.OFDMTotalBits
	OFDMSymbols    = apps.OFDMSymbols
	OFDMSampleLen  = apps.OFDMSymbols * apps.SymbolSamples
	JPEGImageArray = apps.JPEGImageArray
	JPEGStream     = apps.JPEGStreamArray
	JPEGBitsArray  = apps.JPEGStateArray
	JPEGEntryFunc  = apps.JPEGEntry
	JPEGPixels     = apps.ImagePixels
)

// OFDMApp compiles the OFDM transmitter benchmark.
func OFDMApp() (*App, error) {
	return Compile(apps.OFDMSource(), apps.OFDMEntry)
}

// JPEGApp compiles the JPEG encoder benchmark.
func JPEGApp() (*App, error) {
	src, err := apps.JPEGSource()
	if err != nil {
		return nil, err
	}
	return Compile(src, apps.JPEGEntry)
}

// OFDMBits generates a deterministic payload bit stream for profiling runs.
func OFDMBits(seed uint32) []int32 { return apps.GenBits(apps.OFDMTotalBits, seed) }

// JPEGImage generates a deterministic 256×256 test image.
func JPEGImage(seed uint32) []int32 { return apps.GenImage(seed) }

// ProfileBenchmark compiles the named benchmark ("ofdm" or "jpeg"), runs it
// on its standard input vectors (the paper's: 6 payload symbols, one
// 256×256 frame) and returns the app plus its dynamic-analysis profile.
//
// This is the v1 shape of BenchmarkWorkload; new code should use the
// workload directly.
func ProfileBenchmark(name string, seed uint32) (*App, *RunProfile, error) {
	w, err := BenchmarkWorkload(name, seed)
	if err != nil {
		return nil, nil, err
	}
	return w.App(), w.Profile(), nil
}

type errUnknownBenchmark string

func (e errUnknownBenchmark) Error() string {
	return "hybridpart: unknown benchmark " + string(e) + ` (want "ofdm" or "jpeg")`
}
