package hybridpart

import (
	"context"

	"hybridpart/internal/ir"
	"hybridpart/internal/pipeline"
)

// PipelineModel exposes the frame-level pipelining extension (the paper's
// ongoing work): two-stage overlap of the fine and coarse-grain fabrics
// across a frame stream.
type PipelineModel struct {
	m pipeline.Model
}

// Pipeline derives the per-frame pipeline model from a partitioning result,
// treating one profiled run as one frame.
func (r *Result) Pipeline() PipelineModel {
	return PipelineModel{m: pipeline.Model{TFine: r.TFPGA, TCoarse: r.TCoarse, TComm: r.TComm}}
}

// Sequential returns the mutually-exclusive execution time for n frames.
func (p PipelineModel) Sequential(n int) int64 { return p.m.Sequential(n) }

// Pipelined returns the overlapped execution time for n frames.
func (p PipelineModel) Pipelined(n int) int64 { return p.m.Pipelined(n) }

// Speedup returns Sequential/Pipelined for n frames (bounded by 2×).
func (p PipelineModel) Speedup(n int) float64 { return p.m.Speedup(n) }

// Utilization returns the steady-state busy fractions (fine, coarse).
func (p PipelineModel) Utilization() (fine, coarse float64) { return p.m.Utilization() }

// Report formats a frame-sweep comparison table.
func (p PipelineModel) Report(frames []int) string { return p.m.Report(frames) }

// EnergyBreakdown decomposes application energy by source (arbitrary
// consistent units; see internal/energy for the characterization).
type EnergyBreakdown struct {
	Fine     float64
	Coarse   float64
	Reconfig float64
	Comm     float64
}

// Total returns the summed energy.
func (b EnergyBreakdown) Total() float64 { return b.Fine + b.Coarse + b.Reconfig + b.Comm }

// EnergyResult reports an energy-constrained partitioning run (the paper's
// future work).
type EnergyResult struct {
	InitialEnergy float64
	FinalEnergy   float64
	Initial       EnergyBreakdown
	Final         EnergyBreakdown
	Budget        float64
	Met           bool
	Moved         []int
	Unmappable    []int
}

// ReductionPct returns the % energy reduction over the all-FPGA mapping.
func (r *EnergyResult) ReductionPct() float64 {
	if r.InitialEnergy == 0 {
		return 0
	}
	return 100 * (r.InitialEnergy - r.FinalEnergy) / r.InitialEnergy
}

// PartitionEnergy runs the energy-constrained engine: kernels move in
// analysis order until total energy fits the budget.
//
// This is the v1 compatibility shim: it delegates to a single-use Engine
// configured via WithOptions and WithEnergyBudget, with no cancellation and
// no observer. New code should call Engine.PartitionEnergy.
func (a *App) PartitionEnergy(p *RunProfile, opts Options, budget float64) (*EnergyResult, error) {
	eng, err := NewEngine(WithOptions(opts), WithEnergyBudget(budget))
	if err != nil {
		return nil, err
	}
	return eng.partitionEnergyApp(context.Background(), a, p)
}

func blockIDsToInts(ids []ir.BlockID) []int {
	out := make([]int, len(ids))
	for i, b := range ids {
		out[i] = int(b)
	}
	return out
}
