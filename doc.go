// Package hybridpart reproduces the partitioning methodology of Galanis et
// al., "A Partitioning Methodology for Accelerating Applications in Hybrid
// Reconfigurable Platforms" (DATE 2004): applications written in a C subset
// are profiled at the basic-block level, their kernels are ordered by
// total_weight = exec_freq × bb_weight, and a partitioning engine moves
// kernels one by one from the fine-grain (FPGA) fabric to the coarse-grain
// CGC data-path until a timing constraint is met.
//
// The package is a facade over the internal substrates:
//
//	minic/lower  — C-subset frontend and CDFG construction (SUIF stand-in)
//	interp       — profiling interpreter (Lex-instrumentation stand-in)
//	analysis     — kernel extraction and ordering (eq. 1)
//	finegrain    — Figure-3 temporal partitioning onto the FPGA
//	coarsegrain  — list scheduling + CGC binding (FPL'04 data-path)
//	partition    — the partitioning engine (eq. 2 or simulated makespan)
//	explore      — design-space-exploration engine (grid sweeps)
//	platform     — platform characterization and the preset registry
//	apps         — the OFDM transmitter and JPEG encoder benchmarks
//	cache        — content-addressed result caching + singleflight
//	store        — pluggable cache backends: in-memory LRU, disk store
//	cluster      — consistent-hash ring for fingerprint-sharded fleets
//	server       — partitioning-as-a-service HTTP front end (cmd/hservd)
//	sim          — discrete-event co-simulator of the hybrid platform
//
// # Quickstart (API v2)
//
// The v2 API has two nouns. A Workload is a compiled application plus the
// execution profile it accumulates; an Engine is a fixed configuration of
// the platform and engine knobs, built from functional options. Compile a
// mini-C source, profile one execution, and partition against a timing
// constraint:
//
//	w, _ := hybridpart.NewWorkload(src, "main_fn")
//	w.Run()                                   // dynamic analysis
//	eng, _ := hybridpart.NewEngine(hybridpart.WithConstraint(60000))
//	res, _ := eng.Partition(ctx, w)
//	fmt.Println(res.Format())
//
// Every Engine method takes a context.Context, honored between kernel moves
// and between sweep cells; WithObserver streams structured progress events
// (move-by-move trajectory, per-cell sweep completion) while a run is in
// flight.
//
// # Design-space exploration
//
// The paper's evaluation (Tables 2–3) is a grid sweep over A_FPGA values
// and CGC counts. Engine.Sweep evaluates such grids on a bounded worker
// pool, compiling and profiling each benchmark exactly once (profiling is
// input-deterministic, so the block frequencies are shared by every cell):
//
//	rs, _ := eng.Sweep(ctx, hybridpart.SweepSpec{
//		Benchmarks: []string{hybridpart.BenchOFDM},
//		Areas:      []int{1500, 5000},
//		CGCs:       []int{2, 3},
//	})
//	rs.WriteCSV(os.Stdout)
//
// # Compatibility (API v1)
//
// The original App/Runner/RunProfile triad and the flat Options struct
// remain available as thin shims over the Engine: Compile + NewRunner +
// App.Partition(profile, opts) and the package-level Sweep(spec) behave
// exactly as before (bit-identical output), without cancellation or
// progress events. See the README's migration table. An App and an Engine
// are both safe for concurrent use, so custom sweeps can also call
// Partition from multiple goroutines directly.
//
// # Co-simulation
//
// The analytical model predicts; Engine.Simulate checks. It replays the
// workload's profiled CDFG trace on a discrete-event model of the platform
// — the sequencer dispatching each kernel invocation to its fabric,
// temporal-partition swaps (optionally prefetched during data-path
// windows), list-scheduled CGC execution, shared-memory transfer slots and
// the two-stage frame pipeline — and reports simulated cycles, per-fabric
// utilization, a per-kernel timeline and a validation of the model's
// prediction. On contention-free single-frame configurations the simulator
// reproduces the model cycle for cycle; SimFrames, SimPorts and
// SimPrefetch explore what the closed forms only idealize:
//
//	rep, _ := eng.Simulate(ctx, w, hybridpart.SimFrames(16), hybridpart.SimPrefetch(true))
//	fmt.Println(rep.Validation.Exact, rep.Format())
//
// # Partial dynamic reconfiguration
//
// WithRegions(R) splits the fine-grain fabric into R independently
// reconfigurable regions of Area/R units each — the platform model of
// partial dynamic reconfiguration. A temporal partition resides in region
// p mod R and a region reloads in ceil(ReconfigCycles/R) cycles, with
// loads serialized through the single configuration port; partitions in
// different regions coexist instead of evicting each other, so
// reconfiguration-bound workloads can beat even single-context prefetch.
// Each partition packs against the region area, so small fabrics trade
// packing quality for residency. R = 1 (the default) is the legacy
// monolithic context, bit for bit. The analytical crossing rule is
// generalized but optimistic at R > 1; the simulator is authoritative, and
// SimReport.Validation notes the distinction. Regions is a SweepSpec axis
// and a "regions" field on the partition/simulate wire types.
//
// # Feedback-directed partitioning
//
// The closed form the move loop optimizes diverges from executed reality
// whenever frames, ports or prefetch matter, so the engine can pick a
// partition the simulator proves is not the fastest one.
// WithObjective(ObjectiveSimulated) closes that loop: every trajectory
// prefix is scored by replaying the canonical trace through the
// co-simulator (under the engine's WithSimFrames/WithSimPorts/
// WithSimPrefetch operating point) and the mapping with the minimal
// simulated makespan wins. WithRerank(k) is the cheap middle ground — the
// closed-form loop runs as usual, then the k best prefixes are re-scored by
// simulation (k = -1 re-scores all, provably identical to the full
// simulated objective). Results carry the chosen mapping's simulated
// makespan, baseline and speedup whenever any sim knob is active; all sim
// knobs live in Options and therefore in Fingerprint(). SweepSpec's
// Frames/Ports/Prefetch/Objectives axes chart simulated speedup across
// grids:
//
//	eng, _ := hybridpart.NewEngine(
//		hybridpart.WithConstraint(60000),
//		hybridpart.WithSimFrames(8),
//		hybridpart.WithObjective(hybridpart.ObjectiveSimulated),
//	)
//	res, _ := eng.Partition(ctx, w) // res.SimulatedCycles < the model objective's
//
// Simulated scoring is parallel and pruned: candidates are bounded by
// admissible lower bounds (sim.Replayer.LowerBound, FineWalkBound) and only
// those that can still beat the incumbent replay, on a WithWorkers-bounded
// pool with per-worker replay arenas. The outcome is bit-identical to
// serial scoring at every worker count — ties break on trajectory index —
// and Result.SimStats reports the scored/pruned/parallel counters.
//
// # Service
//
// The service's default objective is ObjectiveSimulated: a POST
// /v1/partition request that names no objective, options or rerank runs
// under simulated scoring and reports "objective": "sim" on the wire (send
// "objective": "model" for the closed-form-only loop). POST /v1/simulate is
// unchanged: it validates the model at an explicit operating point.
//
// cmd/hservd exposes the Engine over HTTP/JSON (internal/server), fronted
// by a bounded content-addressed result cache with request coalescing
// (internal/cache). The cache keys combine a workload's SourceHash with
// Options.Fingerprint — the canonical, field-order-independent hash of the
// full knob set — and sweep progress streams to clients as server-sent
// events via WriteSSE. POST /v1/simulate serves the co-simulator through
// the same cache. See the README's "Running as a service" section.
//
// The store behind the cache is pluggable (internal/store): the default
// in-memory LRU, or a disk-backed content-addressed store (-cache-dir) so
// a restarted replica serves its first repeat request as a hit. Several
// replicas form a fleet (-self/-peers): cache keys are sharded over a
// consistent-hash ring (internal/cluster) and non-owned requests are
// forwarded to the owning replica, so the fleet stores one copy of each
// result and coalesces identical requests globally. GET /metrics exports
// every counter in Prometheus text form, and -max-sim-cost arms cost-based
// admission control — sim-scored bursts over the budget are shed with 429 +
// Retry-After instead of piling up. See the README's "Running a fleet"
// section.
//
// Every request is traced end to end (internal/obs, dependency-free): a
// root span per /v1/* request, propagated across fleet forwards via the
// W3C traceparent header and threaded by context through compile, profile,
// cache probe, admission, each move-loop iteration and each sim.ScoreBatch
// — so one forwarded request is one distributed trace. Finished traces
// land in a bounded ring served by GET /debug/traces (list, filterable by
// ?endpoint= and ?min_ms=) and GET /debug/traces/{id} (Chrome trace-event
// JSON, loadable in Perfetto; fleet reads merge every replica's spans).
// hpart/hsim/hsweep emit the same format via -trace-out (one shared
// cliutil.TraceRun helper), -slow-ms logs over-threshold requests through
// log/slog, and -debug-addr serves net/http/pprof on a separate listener.
//
// On top of the trace ring sits a flight recorder. Finalized traces fold
// their named stage spans (compile, profile, cache.lookup, store.get/put,
// admission, partition.moveloop, sim.argmin, sim.ScoreBatch, sim.report,
// cluster.forward) into per-endpoint latency histograms on /metrics
// (hservd_stage_duration_seconds); an OpenMetrics-negotiated scrape
// (Accept: application/openmetrics-text) attaches exemplar trace IDs to
// populated buckets, each resolvable at /debug/traces/{id} — the exemplar
// line reads `... 3 # {trace_id="8a2f..."} 0.00132 1754612345.1`: bucket
// count, then the witness trace, its observed seconds and end time.
// Retention is tail-sampled (-trace-keep-slow): error traces and the K
// slowest per endpoint are always kept, the rest sampled, with
// kept_error/kept_slow/sampled_out counters on /debug/stats and /metrics.
// -telemetry-interval samples runtime/metrics plus service-counter deltas
// into a ring behind GET /debug/telemetry and hservd_runtime_* gauges, and
// GET /debug/fleet fans out to every peer's stats and telemetry for one
// merged health document:
//
//	$ curl -s http://127.0.0.1:9201/debug/fleet | jq '{healthy, unhealthy}'
//	{
//	  "healthy": 2,
//	  "unhealthy": 0
//	}
//
// (kill a replica and unhealthy flips to 1, the dead row carrying its dial
// error inline). See the README's "Observability" section.
package hybridpart
