package hybridpart_test

import (
	"context"
	"errors"
	"fmt"

	"hybridpart"
)

// exampleSrc is a small multiply-accumulate loop in the mini-C subset: the
// kind of kernel-bearing code the methodology partitions.
const exampleSrc = `
const int N = 128;
int IN[N];
int OUT[N];
int main_fn() {
    int i;
    for (i = 0; i < N; i++) { IN[i] = (i * 7 + 3) & 255; }
    for (i = 8; i < N; i++) {
        int acc = ((IN[i] * 5 + IN[i - 1] * 3) + (IN[i - 2] * 2 + IN[i - 3] * 7))
                + ((IN[i - 4] * 9 + IN[i - 5] * 4) + (IN[i - 6] * 6 + IN[i - 7] * 8));
        OUT[i] = acc >> 5;
    }
    return OUT[N - 1];
}
`

// ExampleCompile parses, checks and lowers mini-C source into the flattened
// CDFG the methodology operates on (step 1 of the paper's flow).
func ExampleCompile() {
	app, err := hybridpart.Compile(exampleSrc, "main_fn")
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	fmt.Println("entry:", app.Entry())
	fmt.Println("has blocks:", app.NumBlocks() > 0)
	// Output:
	// entry: main_fn
	// has blocks: true
}

// ExampleApp_Partition runs the complete methodology: profile one
// execution, then move kernels to the coarse-grain data-path until the
// timing constraint is met (steps 2–5 of the paper's flow).
func ExampleApp_Partition() {
	app, err := hybridpart.Compile(exampleSrc, "main_fn")
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	run := app.NewRunner()
	if _, err := run.Run(); err != nil {
		fmt.Println("run failed:", err)
		return
	}

	// Ask for half the all-FPGA execution time, forcing kernel moves.
	opts := hybridpart.DefaultOptions()
	opts.Constraint = 1 << 60
	allFPGA, err := app.Partition(run.Profile(), opts)
	if err != nil {
		fmt.Println("partition failed:", err)
		return
	}
	opts.Constraint = allFPGA.InitialCycles / 2
	res, err := app.Partition(run.Profile(), opts)
	if err != nil {
		fmt.Println("partition failed:", err)
		return
	}
	fmt.Println("constraint met:", res.Met)
	fmt.Println("kernels moved:", len(res.Moved) > 0)
	fmt.Println("faster than all-FPGA:", res.FinalCycles < res.InitialCycles)
	// Output:
	// constraint met: true
	// kernels moved: true
	// faster than all-FPGA: true
}

// ExampleEngine_Partition is the v2 flow: one Workload (compile + profile in
// a single lifecycle), one Engine built from functional options, and the
// move-by-move trajectory streaming through the observer.
func ExampleEngine_Partition() {
	w, err := hybridpart.NewWorkload(exampleSrc, "main_fn")
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	if _, err := w.Run(); err != nil { // dynamic analysis
		fmt.Println("run failed:", err)
		return
	}

	ctx := context.Background()
	loose, _ := hybridpart.NewEngine(hybridpart.WithConstraint(1 << 60))
	allFPGA, err := loose.Partition(ctx, w)
	if err != nil {
		fmt.Println("partition failed:", err)
		return
	}

	// Ask for half the all-FPGA execution time, forcing kernel moves, and
	// watch the trajectory through the observer.
	var moves []hybridpart.MoveEvent
	eng, err := hybridpart.NewEngine(
		hybridpart.WithConstraint(allFPGA.InitialCycles/2),
		hybridpart.WithObserver(func(ev hybridpart.Event) {
			if mv, ok := ev.(hybridpart.MoveEvent); ok {
				moves = append(moves, mv)
			}
		}),
	)
	if err != nil {
		fmt.Println("engine failed:", err)
		return
	}
	res, err := eng.Partition(ctx, w)
	if err != nil {
		fmt.Println("partition failed:", err)
		return
	}
	fmt.Println("constraint met:", res.Met)
	fmt.Println("observed every move:", len(moves) == len(res.Moved) && len(moves) > 0)
	fmt.Println("final move met constraint:", moves[len(moves)-1].Met)
	// Output:
	// constraint met: true
	// observed every move: true
	// final move met constraint: true
}

// ExampleEngine_Sweep shows context cancellation mid-grid: the observer
// cancels after the first completed cell, and the sweep promptly returns
// ctx.Err() together with a partial result set holding that one cell.
func ExampleEngine_Sweep() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cells := 0
	eng, err := hybridpart.NewEngine(
		hybridpart.WithObserver(func(ev hybridpart.Event) {
			if _, ok := ev.(hybridpart.CellEvent); ok {
				cells++
				cancel() // stop the exploration after one cell
			}
		}),
	)
	if err != nil {
		fmt.Println("engine failed:", err)
		return
	}
	rs, err := eng.Sweep(ctx, hybridpart.SweepSpec{
		Benchmarks: []string{hybridpart.BenchOFDM},
		Areas:      []int{1000, 1500, 2500, 5000},
		CGCs:       []int{1, 2, 3},
		Workers:    1,
	})
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))
	fmt.Println("marked partial:", rs != nil && rs.Partial)
	fmt.Println("cells retained:", len(rs.Outcomes))
	// Output:
	// cancelled: true
	// marked partial: true
	// cells retained: 1
}

// ExampleEngine_Simulate replays the OFDM transmitter's profiled trace on
// the simulated platform and checks the analytical model against it: at the
// model's own operating point (one frame, one port, no prefetch) the two
// agree cycle for cycle.
func ExampleEngine_Simulate() {
	w, err := hybridpart.BenchmarkWorkload(hybridpart.BenchOFDM, 1)
	if err != nil {
		fmt.Println("workload failed:", err)
		return
	}
	eng, err := hybridpart.NewEngine(hybridpart.WithConstraint(60000))
	if err != nil {
		fmt.Println("engine failed:", err)
		return
	}
	rep, err := eng.Simulate(context.Background(), w)
	if err != nil {
		fmt.Println("simulate failed:", err)
		return
	}
	fmt.Println("simulated cycles:", rep.TotalCycles)
	fmt.Println("model cycles:", rep.Validation.ModelFinalCycles)
	fmt.Println("exact:", rep.Validation.Exact)
	fmt.Printf("speedup: %.3f\n", rep.Speedup())
	// Output:
	// simulated cycles: 47609
	// model cycles: 47609
	// exact: true
	// speedup: 3.878
}
