package hybridpart_test

import (
	"fmt"

	"hybridpart"
)

// exampleSrc is a small multiply-accumulate loop in the mini-C subset: the
// kind of kernel-bearing code the methodology partitions.
const exampleSrc = `
const int N = 128;
int IN[N];
int OUT[N];
int main_fn() {
    int i;
    for (i = 0; i < N; i++) { IN[i] = (i * 7 + 3) & 255; }
    for (i = 8; i < N; i++) {
        int acc = ((IN[i] * 5 + IN[i - 1] * 3) + (IN[i - 2] * 2 + IN[i - 3] * 7))
                + ((IN[i - 4] * 9 + IN[i - 5] * 4) + (IN[i - 6] * 6 + IN[i - 7] * 8));
        OUT[i] = acc >> 5;
    }
    return OUT[N - 1];
}
`

// ExampleCompile parses, checks and lowers mini-C source into the flattened
// CDFG the methodology operates on (step 1 of the paper's flow).
func ExampleCompile() {
	app, err := hybridpart.Compile(exampleSrc, "main_fn")
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	fmt.Println("entry:", app.Entry())
	fmt.Println("has blocks:", app.NumBlocks() > 0)
	// Output:
	// entry: main_fn
	// has blocks: true
}

// ExampleApp_Partition runs the complete methodology: profile one
// execution, then move kernels to the coarse-grain data-path until the
// timing constraint is met (steps 2–5 of the paper's flow).
func ExampleApp_Partition() {
	app, err := hybridpart.Compile(exampleSrc, "main_fn")
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	run := app.NewRunner()
	if _, err := run.Run(); err != nil {
		fmt.Println("run failed:", err)
		return
	}

	// Ask for half the all-FPGA execution time, forcing kernel moves.
	opts := hybridpart.DefaultOptions()
	opts.Constraint = 1 << 60
	allFPGA, err := app.Partition(run.Profile(), opts)
	if err != nil {
		fmt.Println("partition failed:", err)
		return
	}
	opts.Constraint = allFPGA.InitialCycles / 2
	res, err := app.Partition(run.Profile(), opts)
	if err != nil {
		fmt.Println("partition failed:", err)
		return
	}
	fmt.Println("constraint met:", res.Met)
	fmt.Println("kernels moved:", len(res.Moved) > 0)
	fmt.Println("faster than all-FPGA:", res.FinalCycles < res.InitialCycles)
	// Output:
	// constraint met: true
	// kernels moved: true
	// faster than all-FPGA: true
}
