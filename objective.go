package hybridpart

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/partition"
	"hybridpart/internal/platform"
	"hybridpart/internal/sim"
)

// Objective selects what the move loop optimizes — the closed-form t_total
// of eq. 2 (ObjectiveModel, the paper's engine) or the simulated makespan of
// each candidate mapping (ObjectiveSimulated). See internal/partition for
// the selection semantics.
type Objective = partition.Objective

// Move-loop objectives.
const (
	ObjectiveModel     = partition.ObjectiveModel
	ObjectiveSimulated = partition.ObjectiveSimulated
)

// ParseObjective parses the flag/wire spelling of an objective ("model",
// "sim" or "simulated"; "" selects ObjectiveModel).
func ParseObjective(s string) (Objective, error) { return partition.ParseObjective(s) }

// SimScoreStats breaks down how a simulation-scored partitioning run paid
// for its candidate evaluations. Scored counts distinct mappings; every
// further request for one of them is a memo hit. Of the distinct mappings,
// Replays went through the full discrete-event engine, ClosedForm through
// the additive single-frame fast path (an O(trace) reconfiguration walk, no
// event bookkeeping), and Incremental through the delta update that skips
// even the walk when the moved kernel's fabric reassignment provably leaves
// the crossing set unchanged.
type SimScoreStats struct {
	Scored      int `json:"scored"`
	Replays     int `json:"replays"`
	ClosedForm  int `json:"closed_form"`
	Incremental int `json:"incremental"`
	MemoHits    int `json:"memo_hits"`
}

// debugDisableSimFastPath forces every candidate through the full
// discrete-event replay. Test hook: the property suite flips it to pin the
// fast paths to the replay cycle for cycle.
var debugDisableSimFastPath = false

// simSpecOf materializes the engine-level co-simulation knobs.
func simSpecOf(o Options) SimSpec {
	return SimSpec{Frames: o.SimFrames, Ports: o.SimPorts, Prefetch: o.SimPrefetch}
}

// simKnobsActive reports whether the knob set asks for any simulation work
// during partitioning: a simulation-scored objective, re-ranking, or an
// explicit co-simulation operating point to report the chosen mapping under.
func simKnobsActive(o Options) bool {
	return o.Objective != ObjectiveModel || o.RerankK != 0 ||
		o.SimFrames > 0 || o.SimPorts > 0 || o.SimPrefetch
}

// scoredMapping is the incremental-evaluation state of the last scored
// candidate: its packing, makespan and per-block entry-load counts.
type scoredMapping struct {
	moved      []ir.BlockID
	pm         *finegrain.PackedMapping
	entryLoads []int64
	ticks      int64
}

// simScorer scores candidate mappings by simulated makespan for the move
// loop. It memoizes everything mapping-independent once (canonical trace,
// live-in/out footprints, data-path schedules, the all-FPGA baseline) and
// every scored mapping forever, so a trajectory walk plus a re-rank pass
// plus the final report never replay the same mapping twice. Single-frame
// no-prefetch candidates take the additive closed form instead of the event
// engine, and consecutive trajectory prefixes whose move leaves the crossing
// set unchanged take a pure delta update. A simScorer is not safe for
// concurrent use; build one per partitioning run.
type simScorer struct {
	rep   *sim.Replayer
	cfg   sim.Config
	plat  platform.Platform
	f     *ir.Function
	freq  []uint64
	ratio int64

	memo  map[string]int64
	last  *scoredMapping
	stats SimScoreStats
}

// newSimScorer builds the scorer for one (application, profile, platform,
// sim spec) tuple. The spec's zero frames/ports normalize to 1.
func newSimScorer(a *App, p *RunProfile, plat platform.Platform, spec SimSpec) (*simScorer, error) {
	if spec.Frames < 0 || spec.Ports < 0 {
		return nil, fmt.Errorf("hybridpart: sim frames and ports must be non-negative, got %d/%d", spec.Frames, spec.Ports)
	}
	if spec.Frames == 0 {
		spec.Frames = 1
	}
	if spec.Ports == 0 {
		spec.Ports = 1
	}
	rep, err := sim.NewReplayer(sim.Input{Prog: a.fprog, F: a.flat, Plat: plat, Freq: p.Freq, Edges: p.edges})
	if err != nil {
		return nil, err
	}
	return &simScorer{
		rep:   rep,
		cfg:   sim.Config{Frames: spec.Frames, Ports: spec.Ports, Prefetch: spec.Prefetch},
		plat:  plat,
		f:     a.flat,
		freq:  p.Freq,
		ratio: int64(plat.Coarse.ClockRatio),
		memo:  map[string]int64{},
	}, nil
}

// movedKey is the canonical memo key of a moved-set (order-independent).
func movedKey(moved []ir.BlockID) string {
	ids := make([]int, len(moved))
	for i, b := range moved {
		ids[i] = int(b)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}

// Score returns the simulated makespan (FPGA cycles) of the mapping that
// moves the given blocks to the coarse-grain data-path. It has the
// partition.Config.SimCost signature.
func (s *simScorer) Score(ctx context.Context, moved []ir.BlockID) (int64, error) {
	key := movedKey(moved)
	if v, ok := s.memo[key]; ok {
		s.stats.MemoHits++
		return v, nil
	}
	v, err := s.score(ctx, moved)
	if err != nil {
		return 0, err
	}
	s.stats.Scored++
	s.memo[key] = v
	return v, nil
}

func (s *simScorer) score(ctx context.Context, moved []ir.BlockID) (int64, error) {
	if s.cfg.Frames == 1 && !s.cfg.Prefetch && !debugDisableSimFastPath {
		return s.closedForm(moved)
	}
	rep, err := s.rep.Simulate(ctx, s.cfg, moved)
	if err != nil {
		return 0, err
	}
	s.stats.Replays++
	return rep.TotalCycles, nil
}

// closedForm scores a single-frame no-prefetch candidate without the event
// engine: in that regime every invocation window chains sequentially (no
// resource is ever ahead of program order), so the makespan is the sum of
// per-invocation costs plus the reconfiguration walk's on-demand loads —
// the same additive structure that makes the simulator agree with the
// analytical model cycle for cycle at the model's operating point.
func (s *simScorer) closedForm(moved []ir.BlockID) (int64, error) {
	n := len(s.f.Blocks)
	movedMask := make([]bool, n)
	for _, b := range moved {
		if int(b) < 0 || int(b) >= n {
			return 0, fmt.Errorf("hybridpart: moved block %d outside the function", b)
		}
		movedMask[b] = true
	}
	pm, err := finegrain.PackFunction(s.f, s.plat.Fine, func(id ir.BlockID) bool { return !movedMask[id] })
	if err != nil {
		return 0, err
	}

	reconT := int64(s.plat.Fine.ReconfigCycles) * s.ratio
	var ticks int64
	var coarseDelta int64 // Σ freq·(lat+tx) over the moved set, in ticks
	for id := 0; id < n; id++ {
		freq := int64(s.freq[id])
		if freq == 0 {
			continue
		}
		if movedMask[id] {
			lat, err := s.rep.CoarseLatency(ir.BlockID(id))
			if err != nil {
				return 0, err
			}
			coarseDelta += freq * (lat + s.rep.TransferTicks(ir.BlockID(id), s.cfg.Ports))
			continue
		}
		ticks += freq * (pm.PerBlockCycles[id]*s.ratio + int64(pm.InternalCrossings[id])*reconT)
	}
	ticks += coarseDelta

	// Incremental tier: the trajectory hands us prefixes, each extending the
	// last by one kernel k. When repacking without k leaves every remaining
	// block's partition assignment unchanged and k itself never straddled a
	// boundary or triggered an entry load, k's fabric reassignment does not
	// change the crossing set — the load walk would count exactly the loads
	// it counted last time, so the memoized count is reused without
	// re-walking the trace.
	if prev := s.last; prev != nil && len(moved) == len(prev.moved)+1 &&
		sameBlocks(moved[:len(prev.moved)], prev.moved) &&
		prev.entryLoads[moved[len(prev.moved)]] == 0 &&
		sameCrossingSet(pm, prev.pm, moved[len(prev.moved)]) {
		// prev.entryLoads stays valid verbatim: the elided kernel's entry
		// count is zero and every other block loads exactly as before.
		ticks += sumLoads(prev.entryLoads) * reconT
		s.stats.Incremental++
		s.last = &scoredMapping{moved: append([]ir.BlockID(nil), moved...), pm: pm, entryLoads: prev.entryLoads, ticks: ticks}
		return ceilDiv64(ticks, s.ratio), nil
	}

	// Reconfiguration walk: replay only the sequencer's loaded-partition
	// state machine over the canonical trace — the one quantity of the
	// single-frame makespan that needs the trace at all.
	entryLoads := make([]int64, n)
	loaded := -1
	if pm.NumPartitions == 0 {
		loaded = 0 // nothing to configure
	}
	s.rep.WalkTrace(func(b ir.BlockID) {
		if movedMask[b] {
			return
		}
		if pm.FirstPart[b] != loaded {
			entryLoads[b]++
			loaded = pm.FirstPart[b]
		}
		loaded = pm.LastPart[b]
	})
	ticks += sumLoads(entryLoads) * reconT
	s.stats.ClosedForm++
	s.last = &scoredMapping{moved: append([]ir.BlockID(nil), moved...), pm: pm, entryLoads: entryLoads, ticks: ticks}
	return ceilDiv64(ticks, s.ratio), nil
}

func sumLoads(loads []int64) int64 {
	var total int64
	for _, n := range loads {
		total += n
	}
	return total
}

func sameBlocks(a, b []ir.BlockID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameCrossingSet reports whether moving kernel k provably leaves the
// reconfiguration sequence unchanged: every block keeps its partition
// assignment across the repack, and k neither straddled a boundary nor ever
// entered on a cold partition (so eliding its visits from the trace leaves
// the sequencer's loaded-partition state machine on the same path).
func sameCrossingSet(cur, prev *finegrain.PackedMapping, k ir.BlockID) bool {
	if cur.NumPartitions != prev.NumPartitions {
		return false
	}
	if prev.InternalCrossings[k] != 0 {
		return false
	}
	for id := range cur.FirstPart {
		if ir.BlockID(id) == k {
			continue
		}
		if cur.FirstPart[id] != prev.FirstPart[id] || cur.LastPart[id] != prev.LastPart[id] ||
			cur.InternalCrossings[id] != prev.InternalCrossings[id] {
			return false
		}
	}
	return true
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
