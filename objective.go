package hybridpart

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/obs"
	"hybridpart/internal/partition"
	"hybridpart/internal/platform"
	"hybridpart/internal/sim"
)

// Objective selects what the move loop optimizes — the closed-form t_total
// of eq. 2 (ObjectiveModel, the paper's engine) or the simulated makespan of
// each candidate mapping (ObjectiveSimulated). See internal/partition for
// the selection semantics.
type Objective = partition.Objective

// Move-loop objectives.
const (
	ObjectiveModel     = partition.ObjectiveModel
	ObjectiveSimulated = partition.ObjectiveSimulated
)

// ParseObjective parses the flag/wire spelling of an objective ("model",
// "sim" or "simulated"; "" selects ObjectiveModel).
func ParseObjective(s string) (Objective, error) { return partition.ParseObjective(s) }

// SimScoreStats breaks down how a simulation-scored partitioning run paid
// for its candidate evaluations. Scored counts distinct mappings; every
// further request for one of them is a memo hit. Of the distinct mappings,
// Replays went through the full discrete-event engine, ClosedForm through
// the additive single-frame fast path (an O(trace) reconfiguration walk, no
// event bookkeeping), and Incremental through the delta update that skips
// even the walk when the moved kernel's fabric reassignment provably leaves
// the crossing set unchanged. Pruned counts candidates the branch-and-bound
// argmin pass skipped because their admissible lower bound already exceeded
// a fully scored incumbent; Parallel counts candidates scored on worker-pool
// goroutines and Workers records the pool width. Pruned and Parallel depend
// on evaluation scheduling and may vary run to run — the chosen mapping
// never does.
type SimScoreStats struct {
	Scored      int `json:"scored"`
	Replays     int `json:"replays"`
	ClosedForm  int `json:"closed_form"`
	Incremental int `json:"incremental"`
	MemoHits    int `json:"memo_hits"`
	Pruned      int `json:"pruned"`
	Parallel    int `json:"parallel"`
	Workers     int `json:"workers"`
}

// debugDisableSimFastPath forces every candidate through the full
// discrete-event replay. Test hook: the property suite flips it to pin the
// fast paths to the replay cycle for cycle.
var debugDisableSimFastPath = false

// debugSerialScoring restores the PR 5 scoring path: no batch argmin, no
// lower-bound pruning, no arena reuse — every candidate goes through the
// one-at-a-time SimCost loop with a full-report replay. Test/benchmark hook:
// the equivalence suite uses it as the reference and BenchmarkObjectiveParallel
// as the baseline.
var debugSerialScoring = false

// debugDisablePruning keeps the batch path (pool, arenas, evaluation order)
// but scores every candidate instead of pruning. Test hook: the
// admissibility property compares a pruned run against it.
var debugDisablePruning = false

// simSpecOf materializes the engine-level co-simulation knobs.
func simSpecOf(o Options) SimSpec {
	return SimSpec{Frames: o.SimFrames, Ports: o.SimPorts, Prefetch: o.SimPrefetch}
}

// simKnobsActive reports whether the knob set asks for any simulation work
// during partitioning: a simulation-scored objective, re-ranking, or an
// explicit co-simulation operating point to report the chosen mapping under.
func simKnobsActive(o Options) bool {
	return o.Objective != ObjectiveModel || o.RerankK != 0 ||
		o.SimFrames > 0 || o.SimPorts > 0 || o.SimPrefetch
}

// scoredMapping is the incremental-evaluation state of the last scored
// candidate: its packing, makespan and per-block entry-load counts.
type scoredMapping struct {
	moved      []ir.BlockID
	pm         *finegrain.PackedMapping
	entryLoads []int64
	ticks      int64
}

// simScorer scores candidate mappings by simulated makespan for the move
// loop. It memoizes everything mapping-independent once (canonical trace,
// live-in/out footprints, data-path schedules, the all-FPGA baseline) and
// every scored mapping forever, so a trajectory walk plus a re-rank pass
// plus the final report never replay the same mapping twice. Single-frame
// no-prefetch candidates take the additive closed form instead of the event
// engine, and consecutive trajectory prefixes whose move leaves the crossing
// set unchanged take a pure delta update. Score serializes on the scorer's
// lock; ScoreBatch scores replay-regime slates on a bounded worker pool
// (workers wide, 0 = GOMAXPROCS) with per-worker arenas and branch-and-bound
// pruning, so a simScorer is safe for concurrent use — but build one per
// partitioning run, its memo is per-(workload, knob) tuple.
type simScorer struct {
	rep     *sim.Replayer
	cfg     sim.Config
	plat    platform.Platform
	f       *ir.Function
	freq    []uint64
	ratio   int64
	workers int

	mu    sync.Mutex
	arena sim.Arena
	memo  map[string]int64
	last  *scoredMapping
	stats SimScoreStats
}

// newSimScorer builds the scorer for one (application, profile, platform,
// sim spec) tuple. The spec's zero frames/ports normalize to 1.
func newSimScorer(a *App, p *RunProfile, plat platform.Platform, spec SimSpec) (*simScorer, error) {
	if spec.Frames < 0 || spec.Ports < 0 {
		return nil, fmt.Errorf("hybridpart: sim frames and ports must be non-negative, got %d/%d", spec.Frames, spec.Ports)
	}
	if spec.Frames == 0 {
		spec.Frames = 1
	}
	if spec.Ports == 0 {
		spec.Ports = 1
	}
	rep, err := sim.NewReplayer(sim.Input{Prog: a.fprog, F: a.flat, Plat: plat, Freq: p.Freq, Edges: p.edges})
	if err != nil {
		return nil, err
	}
	return &simScorer{
		rep:   rep,
		cfg:   sim.Config{Frames: spec.Frames, Ports: spec.Ports, Prefetch: spec.Prefetch},
		plat:  plat,
		f:     a.flat,
		freq:  p.Freq,
		ratio: int64(plat.Coarse.ClockRatio),
		memo:  map[string]int64{},
	}, nil
}

// movedKey is the canonical memo key of a moved-set (order-independent).
func movedKey(moved []ir.BlockID) string {
	ids := make([]int, len(moved))
	for i, b := range moved {
		ids[i] = int(b)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}

// Score returns the simulated makespan (FPGA cycles) of the mapping that
// moves the given blocks to the coarse-grain data-path. It has the
// partition.Config.SimCost signature. Calls serialize on the scorer's lock.
func (s *simScorer) Score(ctx context.Context, moved []ir.BlockID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := movedKey(moved)
	if v, ok := s.memo[key]; ok {
		s.stats.MemoHits++
		return v, nil
	}
	v, err := s.score(ctx, moved)
	if err != nil {
		return 0, err
	}
	s.stats.Scored++
	s.memo[key] = v
	return v, nil
}

// score evaluates one unmemoized mapping. Callers hold s.mu.
func (s *simScorer) score(ctx context.Context, moved []ir.BlockID) (int64, error) {
	if s.fastRegime() {
		return s.closedForm(moved)
	}
	if debugSerialScoring {
		// The PR 5 path: a full-report replay per candidate.
		rep, err := s.rep.Simulate(ctx, s.cfg, moved)
		if err != nil {
			return 0, err
		}
		s.stats.Replays++
		return rep.TotalCycles, nil
	}
	v, err := s.rep.Makespan(ctx, s.cfg, moved, &s.arena)
	if err != nil {
		return 0, err
	}
	s.stats.Replays++
	return v, nil
}

// fastRegime reports whether candidates take the additive closed form
// instead of the event engine.
func (s *simScorer) fastRegime() bool {
	return s.cfg.Frames == 1 && !s.cfg.Prefetch && !debugDisableSimFastPath
}

// ScoreBatch scores a whole candidate slate for the argmin pass. It has the
// partition.Config.SimCostBatch signature.
//
// In the closed-form regime candidates evaluate serially in slate order —
// that order is what feeds the incremental delta tier, and the closed form
// is already cheaper than a lower bound plus scheduling. In the replay
// regime the slate goes through best-first branch-and-bound: every
// candidate's admissible lower bound (sim.Replayer.LowerBound) is computed
// up front, candidates replay in ascending-bound order (ties on slate
// index) across the worker pool, and any candidate whose bound strictly
// exceeds the incumbent best makespan is pruned without replaying. Pruning
// and parallel scheduling never change the selection: scored makespans are
// exact and deterministic, and a pruned candidate is provably strictly
// worse than the incumbent, so it can never be the index-ordered argmin —
// only the Pruned/Parallel counters vary with scheduling.
func (s *simScorer) ScoreBatch(ctx context.Context, candidates [][]ir.BlockID) ([]partition.SimScore, error) {
	out := make([]partition.SimScore, len(candidates))
	ctx, span := obs.Start(ctx, "sim.ScoreBatch", obs.Int("candidates", len(candidates)))
	if s.fastRegime() {
		for i, moved := range candidates {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := s.Score(ctx, moved)
			if err != nil {
				return nil, err
			}
			out[i] = partition.SimScore{Cycles: v}
		}
		span.Set(obs.Int("scored", len(candidates)), obs.Int("pruned", 0),
			obs.Int("workers", 1), obs.String("regime", "closed-form"))
		span.End()
		return out, nil
	}

	// Memo hits resolve immediately and seed the incumbent: every memoized
	// value is the exact makespan of a candidate in this slate.
	incumbent := int64(math.MaxInt64)
	pending := make([]int, 0, len(candidates))
	keys := make([]string, len(candidates))
	s.mu.Lock()
	for i, moved := range candidates {
		keys[i] = movedKey(moved)
		if v, ok := s.memo[keys[i]]; ok {
			s.stats.MemoHits++
			out[i] = partition.SimScore{Cycles: v}
			if v < incumbent {
				incumbent = v
			}
			continue
		}
		pending = append(pending, i)
	}
	workers := s.workers
	s.mu.Unlock()
	if len(pending) == 0 {
		span.Set(obs.Int("scored", 0), obs.Int("pruned", 0),
			obs.Int("memo_hits", len(candidates)), obs.String("regime", "replay"))
		span.End()
		return out, nil
	}

	// Admissible lower bounds, then best-first order: the candidate most
	// likely to be the argmin replays first, which drops the incumbent
	// early and lets the bound prune the tail. Two tiers: the closed-form
	// resource floor (O(moved)) and the exact fine-fabric occupancy walk
	// (O(trace), still far below a full replay) — the walk is exact on
	// fine-dominated candidates, so once the incumbent is near the optimum
	// almost every other candidate's bound exceeds it.
	bounds := make([]int64, len(candidates))
	for _, i := range pending {
		b, err := s.rep.LowerBound(s.cfg, candidates[i])
		if err != nil {
			return nil, err
		}
		if wb, err := s.rep.FineWalkBound(s.cfg, candidates[i], &s.arena); err != nil {
			return nil, err
		} else if wb > b {
			b = wb
		}
		bounds[i] = b
	}
	sort.SliceStable(pending, func(a, b int) bool { return bounds[pending[a]] < bounds[pending[b]] })

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var best atomic.Int64
	best.Store(incumbent)
	var pruned atomic.Int64
	// evalOne replays candidate i (unless its bound prunes it) into out[i].
	evalOne := func(ctx context.Context, i int, arena *sim.Arena, parallel bool) error {
		if !debugDisablePruning && bounds[i] > best.Load() {
			out[i] = partition.SimScore{Pruned: true}
			pruned.Add(1)
			return nil
		}
		v, err := s.rep.Makespan(ctx, s.cfg, candidates[i], arena)
		if err != nil {
			return err
		}
		for {
			cur := best.Load()
			if v >= cur || best.CompareAndSwap(cur, v) {
				break
			}
		}
		s.mu.Lock()
		s.stats.Scored++
		s.stats.Replays++
		if parallel {
			s.stats.Parallel++
		}
		s.memo[keys[i]] = v
		s.mu.Unlock()
		out[i] = partition.SimScore{Cycles: v}
		return nil
	}

	var err error
	if workers <= 1 {
		for _, i := range pending {
			if err = ctx.Err(); err != nil {
				break
			}
			if err = evalOne(ctx, i, &s.arena, false); err != nil {
				break
			}
		}
	} else {
		poolCtx, cancel := context.WithCancel(ctx)
		var next atomic.Int64
		var wg sync.WaitGroup
		var errOnce sync.Once
		fail := func(e error) {
			errOnce.Do(func() {
				err = e
				cancel()
			})
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var arena sim.Arena
				for {
					k := int(next.Add(1)) - 1
					if k >= len(pending) {
						return
					}
					if e := poolCtx.Err(); e != nil {
						fail(e)
						return
					}
					if e := evalOne(poolCtx, pending[k], &arena, true); e != nil {
						fail(e)
						return
					}
				}
			}()
		}
		wg.Wait()
		cancel()
	}
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Pruned += int(pruned.Load())
	s.stats.Workers = workers
	s.mu.Unlock()
	span.Set(obs.Int("scored", len(pending)-int(pruned.Load())), obs.Int("pruned", int(pruned.Load())),
		obs.Int("memo_hits", len(candidates)-len(pending)), obs.Int("workers", workers),
		obs.String("regime", "replay"))
	span.End()
	return out, nil
}

// closedForm scores a single-frame no-prefetch candidate without the event
// engine: in that regime every invocation window chains sequentially (no
// resource is ever ahead of program order), so the makespan is the sum of
// per-invocation costs plus the reconfiguration walk's on-demand loads —
// the same additive structure that makes the simulator agree with the
// analytical model cycle for cycle at the model's operating point.
func (s *simScorer) closedForm(moved []ir.BlockID) (int64, error) {
	n := len(s.f.Blocks)
	movedMask := make([]bool, n)
	for _, b := range moved {
		if int(b) < 0 || int(b) >= n {
			return 0, fmt.Errorf("hybridpart: moved block %d outside the function", b)
		}
		movedMask[b] = true
	}
	pm, err := finegrain.PackFunction(s.f, s.plat.Fine, func(id ir.BlockID) bool { return !movedMask[id] })
	if err != nil {
		return 0, err
	}

	reconT := int64(s.plat.Fine.RegionReconfigCycles()) * s.ratio
	regions := pm.Regions
	var ticks int64
	var coarseDelta int64 // Σ freq·(lat+tx) over the moved set, in ticks
	for id := 0; id < n; id++ {
		freq := int64(s.freq[id])
		if freq == 0 {
			continue
		}
		if movedMask[id] {
			lat, err := s.rep.CoarseLatency(ir.BlockID(id))
			if err != nil {
				return 0, err
			}
			coarseDelta += freq * (lat + s.rep.TransferTicks(ir.BlockID(id), s.cfg.Ports))
			continue
		}
		cost := pm.PerBlockCycles[id] * s.ratio
		if regions == 1 {
			// Single context: every internal boundary reloads, so the
			// straddle cost is a static per-execution count. With more
			// regions straddle reloads depend on residency and ride the
			// walk below instead.
			cost += int64(pm.InternalCrossings[id]) * reconT
		}
		ticks += freq * cost
	}
	ticks += coarseDelta

	if regions > 1 {
		// Multi-region sequencer walk, mirroring the replay exactly: a
		// partition loads only when its region holds something else, for
		// entry and straddle needs alike. Entry and straddle loads are both
		// residency-dependent here, so the incremental tier (which reuses a
		// static entry-load vector) does not apply.
		loadedR := make([]int, regions)
		for i := range loadedR {
			loadedR[i] = -1
		}
		if pm.NumPartitions == 0 {
			loadedR[0] = 0 // nothing to configure
		}
		var loads int64
		s.rep.WalkTrace(func(b ir.BlockID) {
			if movedMask[b] {
				return
			}
			need := pm.FirstPart[b]
			if reg := need % regions; loadedR[reg] != need {
				loads++
				loadedR[reg] = need
			}
			for q := need + 1; q <= pm.LastPart[b]; q++ {
				if reg := q % regions; loadedR[reg] != q {
					loads++
					loadedR[reg] = q
				}
			}
		})
		ticks += loads * reconT
		s.stats.ClosedForm++
		s.last = nil
		return ceilDiv64(ticks, s.ratio), nil
	}

	// Incremental tier: the trajectory hands us prefixes, each extending the
	// last by one kernel k. When repacking without k leaves every remaining
	// block's partition assignment unchanged and k itself never straddled a
	// boundary or triggered an entry load, k's fabric reassignment does not
	// change the crossing set — the load walk would count exactly the loads
	// it counted last time, so the memoized count is reused without
	// re-walking the trace.
	if prev := s.last; prev != nil && len(moved) == len(prev.moved)+1 &&
		sameBlocks(moved[:len(prev.moved)], prev.moved) &&
		prev.entryLoads[moved[len(prev.moved)]] == 0 &&
		sameCrossingSet(pm, prev.pm, moved[len(prev.moved)]) {
		// prev.entryLoads stays valid verbatim: the elided kernel's entry
		// count is zero and every other block loads exactly as before.
		ticks += sumLoads(prev.entryLoads) * reconT
		s.stats.Incremental++
		s.last = &scoredMapping{moved: append([]ir.BlockID(nil), moved...), pm: pm, entryLoads: prev.entryLoads, ticks: ticks}
		return ceilDiv64(ticks, s.ratio), nil
	}

	// Reconfiguration walk: replay only the sequencer's loaded-partition
	// state machine over the canonical trace — the one quantity of the
	// single-frame makespan that needs the trace at all.
	entryLoads := make([]int64, n)
	loaded := -1
	if pm.NumPartitions == 0 {
		loaded = 0 // nothing to configure
	}
	s.rep.WalkTrace(func(b ir.BlockID) {
		if movedMask[b] {
			return
		}
		if pm.FirstPart[b] != loaded {
			entryLoads[b]++
			loaded = pm.FirstPart[b]
		}
		loaded = pm.LastPart[b]
	})
	ticks += sumLoads(entryLoads) * reconT
	s.stats.ClosedForm++
	s.last = &scoredMapping{moved: append([]ir.BlockID(nil), moved...), pm: pm, entryLoads: entryLoads, ticks: ticks}
	return ceilDiv64(ticks, s.ratio), nil
}

func sumLoads(loads []int64) int64 {
	var total int64
	for _, n := range loads {
		total += n
	}
	return total
}

func sameBlocks(a, b []ir.BlockID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameCrossingSet reports whether moving kernel k provably leaves the
// reconfiguration sequence unchanged: every block keeps its partition
// assignment across the repack, and k neither straddled a boundary nor ever
// entered on a cold partition (so eliding its visits from the trace leaves
// the sequencer's loaded-partition state machine on the same path).
func sameCrossingSet(cur, prev *finegrain.PackedMapping, k ir.BlockID) bool {
	if cur.NumPartitions != prev.NumPartitions {
		return false
	}
	if prev.InternalCrossings[k] != 0 {
		return false
	}
	for id := range cur.FirstPart {
		if ir.BlockID(id) == k {
			continue
		}
		if cur.FirstPart[id] != prev.FirstPart[id] || cur.LastPart[id] != prev.LastPart[id] ||
			cur.InternalCrossings[id] != prev.InternalCrossings[id] {
			return false
		}
	}
	return true
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
