package hybridpart

import (
	"strings"
	"testing"

	"hybridpart/internal/platform"
)

// TestFingerprintDistinct is the satellite acceptance test: every Options
// field, mutated on its own, must change the fingerprint, and equal option
// sets must hash equal however they were built.
func TestFingerprintDistinct(t *testing.T) {
	base := DefaultOptions()
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"afpga", func(o *Options) { o.AFPGA++ }},
		{"reconfig", func(o *Options) { o.ReconfigCycles++ }},
		{"regions", func(o *Options) { o.Regions = 2 }},
		{"numcgcs", func(o *Options) { o.NumCGCs++ }},
		{"cgcrows", func(o *Options) { o.CGCRows++ }},
		{"cgccols", func(o *Options) { o.CGCCols++ }},
		{"memports", func(o *Options) { o.MemPorts++ }},
		{"clockratio", func(o *Options) { o.ClockRatio++ }},
		{"regbank", func(o *Options) { o.RegBankWords++ }},
		{"commword", func(o *Options) { o.CommCyclesPerWord++ }},
		{"commsync", func(o *Options) { o.CommSyncCycles++ }},
		{"constraint", func(o *Options) { o.Constraint++ }},
		{"order", func(o *Options) { o.Order = OrderByFreq }},
		{"maxmoves", func(o *Options) { o.MaxMoves++ }},
		{"skipnonimproving", func(o *Options) { o.SkipNonImproving = true }},
		{"walu", func(o *Options) { o.WeightALU++ }},
		{"wmul", func(o *Options) { o.WeightMul++ }},
		{"wdiv", func(o *Options) { o.WeightDiv++ }},
		{"wmem", func(o *Options) { o.WeightMem++ }},
		{"costs", func(o *Options) { o.Costs = platform.DSPRichOpCosts() }},
		{"costs-one-field", func(o *Options) { o.Costs.LatMul++ }},
		// The co-simulation knobs moved into Options precisely so that every
		// mutation below lands in the fingerprint: two cached entries that
		// differ in any sim knob must never collide.
		{"objective", func(o *Options) { o.Objective = ObjectiveSimulated }},
		{"rerankk", func(o *Options) { o.RerankK = 3 }},
		{"simframes", func(o *Options) { o.SimFrames = 8 }},
		{"simports", func(o *Options) { o.SimPorts = 2 }},
		{"simprefetch", func(o *Options) { o.SimPrefetch = true }},
	}
	baseFP := base.Fingerprint()
	seen := map[string]string{"(base)": baseFP}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := base
			tc.mutate(&mutated)
			fp := mutated.Fingerprint()
			if fp == baseFP {
				t.Fatalf("mutating %s did not change the fingerprint", tc.name)
			}
			if prev, dup := seen[fp]; dup {
				t.Fatalf("fingerprint collision between %s and %s", tc.name, prev)
			}
			seen[fp] = tc.name

			// Determinism: the same value hashes the same on every call,
			// and an independently-built equal value matches.
			if fp != mutated.Fingerprint() {
				t.Fatal("fingerprint not deterministic")
			}
			again := base
			tc.mutate(&again)
			if again.Fingerprint() != fp {
				t.Fatal("equal options fingerprint unequally")
			}
		})
	}
}

func TestFingerprintEqualConstruction(t *testing.T) {
	// Built via DefaultOptions vs. assembled field-by-field through the
	// engine: same resolved knobs, same fingerprint.
	eng, err := NewEngine(WithConstraint(12345), WithArea(5000))
	if err != nil {
		t.Fatal(err)
	}
	manual := DefaultOptions()
	manual.Constraint = 12345
	manual.AFPGA = 5000
	if eng.Options().Fingerprint() != manual.Fingerprint() {
		t.Fatal("identical knob sets produced different fingerprints")
	}
}

func TestFingerprintShape(t *testing.T) {
	fp := DefaultOptions().Fingerprint()
	if len(fp) != 64 || strings.ToLower(fp) != fp {
		t.Fatalf("fingerprint is not lowercase sha256 hex: %q", fp)
	}
}

func TestSourceHash(t *testing.T) {
	if SourceHash("a") == SourceHash("b") {
		t.Fatal("distinct sources hash equal")
	}
	w, err := NewWorkload(firSrc, "main_fn")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.SourceHash(), SourceHash(firSrc); got != want {
		t.Fatalf("workload source hash %q != SourceHash(src) %q", got, want)
	}
	if w.App().SourceHash() != w.SourceHash() {
		t.Fatal("App and Workload disagree on the source hash")
	}
}
