package hybridpart

import (
	"reflect"
	"sync"
	"testing"
)

// TestProfileCacheBounded drives ProfileBenchmarkCached past its capacity
// with distinct seeds (the service exposes the seed to clients, so the memo
// must stay bounded) and checks eviction keeps the map at the cap while
// still serving every caller.
func TestProfileCacheBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	for seed := uint32(1000); seed < uint32(1000+DefaultProfileMemoBound+8); seed++ {
		app, prof, err := ProfileBenchmarkCached(BenchOFDM, seed)
		if err != nil {
			t.Fatal(err)
		}
		if app == nil || prof == nil {
			t.Fatalf("seed %d: nil result", seed)
		}
	}
	profileCache.mu.Lock()
	size, order := len(profileCache.entries), len(profileCache.order)
	profileCache.mu.Unlock()
	if size > DefaultProfileMemoBound || order != size {
		t.Fatalf("profile cache unbounded: %d entries, %d order records (cap %d)",
			size, order, DefaultProfileMemoBound)
	}
	// Evicted pairs recompile transparently.
	if _, _, err := ProfileBenchmarkCached(BenchOFDM, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConstraint(t *testing.T) {
	if DefaultConstraint(BenchOFDM) != 60000 || DefaultConstraint(BenchJPEG) != 21000000 {
		t.Fatalf("paper constraints wrong: ofdm=%d jpeg=%d",
			DefaultConstraint(BenchOFDM), DefaultConstraint(BenchJPEG))
	}
	if DefaultConstraint("nope") != 0 {
		t.Fatal("unknown benchmark has a default constraint")
	}
}

func TestOptionsFor(t *testing.T) {
	def, err := OptionsFor("")
	if err != nil || !reflect.DeepEqual(def, DefaultOptions()) {
		t.Fatalf("empty preset != DefaultOptions (err %v)", err)
	}
	large, err := OptionsFor("paper-large")
	if err != nil {
		t.Fatal(err)
	}
	if large.AFPGA != 5000 || large.NumCGCs != 2 {
		t.Fatalf("paper-large wrong: %+v", large)
	}
	dsp, err := OptionsFor("dsp-rich")
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Costs.AreaMul >= def.Costs.AreaMul {
		t.Fatalf("dsp-rich cost table not installed: %+v", dsp.Costs)
	}
	if err := dsp.platform().Validate(); err != nil {
		t.Fatalf("dsp-rich options yield invalid platform: %v", err)
	}
	if _, err := OptionsFor("no-such-preset"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if len(PlatformPresets()) < 4 {
		t.Fatalf("preset registry too small: %v", PlatformPresets())
	}
}

func TestProfileBenchmarkCached(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app1, prof1, err := ProfileBenchmarkCached(BenchOFDM, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent and repeated lookups share the one compiled+profiled App.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			app2, prof2, err := ProfileBenchmarkCached(BenchOFDM, 3)
			if err != nil {
				t.Error(err)
				return
			}
			if app2 != app1 || prof2 != prof1 {
				t.Error("cache returned a different instance")
			}
		}()
	}
	wg.Wait()
	// A different seed is a different cache entry.
	app3, _, err := ProfileBenchmarkCached(BenchOFDM, 4)
	if err != nil {
		t.Fatal(err)
	}
	if app3 == app1 {
		t.Fatal("distinct seeds share a cache entry")
	}
	if _, _, err := ProfileBenchmarkCached("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestSweepMatchesSerial is the engine's parity check: every cell of a
// parallel sweep must reproduce exactly what a serial recompile-per-cell
// Partition loop produces (the acceptance property behind refactoring
// cmd/experiments onto the engine).
func TestSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	areas := []int{1500, 5000}
	ncgcs := []int{2, 3}
	rs, err := Sweep(SweepSpec{
		Benchmarks: []string{BenchOFDM},
		Areas:      areas,
		CGCs:       ncgcs,
		Seed:       1,
		Workers:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Outcomes) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(rs.Outcomes))
	}

	// Serial reference path: fresh compile+profile and Partition per cell.
	app, prof, err := ProfileBenchmark(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, afpga := range areas {
		for _, ncgc := range ncgcs {
			opts := DefaultOptions()
			opts.AFPGA = afpga
			opts.NumCGCs = ncgc
			opts.Constraint = DefaultConstraint(BenchOFDM)
			want, err := app.Partition(prof, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := rs.Find(BenchOFDM, "", afpga, ncgc, 0)
			if got == nil {
				t.Fatalf("cell afpga=%d cgcs=%d missing", afpga, ncgc)
			}
			if got.Failed() {
				t.Fatalf("cell afpga=%d cgcs=%d failed: %s", afpga, ncgc, got.Err)
			}
			if got.InitialCycles != want.InitialCycles ||
				got.CyclesInCGC != want.CyclesInCGC ||
				got.FinalCycles != want.FinalCycles ||
				got.Met != want.Met ||
				!reflect.DeepEqual(got.Moved, want.Moved) {
				t.Fatalf("cell afpga=%d cgcs=%d diverges from serial path:\n got %+v\nwant %+v",
					afpga, ncgc, got, want)
			}
			if got.EffectiveConstraint != want.Constraint {
				t.Fatalf("constraint defaulting broken: %d vs %d", got.EffectiveConstraint, want.Constraint)
			}
		}
	}
}

func TestSweepRecordsUnknownBenchmark(t *testing.T) {
	rs, err := Sweep(SweepSpec{Benchmarks: []string{"nope"}, Areas: []int{1500}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	failed := rs.Failed()
	if len(failed) != 1 || failed[0].Err == "" {
		t.Fatalf("unknown benchmark not recorded as a per-cell failure: %+v", rs.Outcomes)
	}
}

func TestSweepRequiresConstraintForCustomBench(t *testing.T) {
	// A benchmark without a paper default and no explicit constraint must
	// fail loudly, not partition against a zero constraint.
	rs, err := Sweep(SweepSpec{Benchmarks: []string{"nope2"}, Constraints: nil, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Failed()) != 1 {
		t.Fatalf("missing-constraint cell did not fail: %+v", rs.Outcomes)
	}
}
