package hybridpart

import "fmt"

// Workload is the v2 unit of work: one compiled application together with
// the execution profile it accumulates. It fuses the App/Runner/RunProfile
// triad of the v1 API into a single lifecycle —
//
//	w, _ := hybridpart.NewWorkload(src, "main_fn")
//	w.SetInput("IN", vals)
//	w.Run()                      // dynamic analysis; counts accumulate
//	res, _ := engine.Partition(ctx, w)
//
// — so callers no longer juggle three objects or forget the profiling step.
// Run and SetInput mutate the workload's interpreter state and must not be
// called concurrently with each other; Engine methods only snapshot the
// accumulated profile and may run concurrently with one another.
type Workload struct {
	app *App
	run *Runner
}

// NewWorkload compiles mini-C source text (the paper's step 1) and prepares
// a fresh profiling runner over it. Globals start at their initial values.
func NewWorkload(src, entry string) (*Workload, error) {
	app, err := Compile(src, entry)
	if err != nil {
		return nil, err
	}
	return &Workload{app: app, run: app.NewRunner()}, nil
}

// BenchmarkWorkload compiles the named built-in benchmark (see Benchmarks),
// loads its standard input vectors for the given seed, and executes it once
// with profiling — the ready-to-partition equivalent of the paper's
// evaluation setup.
func BenchmarkWorkload(name string, seed uint32) (*Workload, error) {
	d, ok := lookupBenchmark(name)
	if !ok {
		return nil, errUnknownBenchmark(name)
	}
	app, err := d.compile()
	if err != nil {
		return nil, err
	}
	w := &Workload{app: app, run: app.NewRunner()}
	if err := w.SetInput(d.inputArray, d.input(seed)); err != nil {
		return nil, err
	}
	if _, err := w.Run(); err != nil {
		return nil, err
	}
	return w, nil
}

// App returns the underlying compiled application (CDFG inspection, DOT
// emitters, the v1 API surface).
func (w *Workload) App() *App { return w.app }

// Entry returns the entry function name.
func (w *Workload) Entry() string { return w.app.Entry() }

// SourceHash returns the canonical content hash of the workload's source
// text (see SourceHash). Together with the entry name, the profiling inputs
// and an Options.Fingerprint it forms the cache key under which the
// partitioning service content-addresses this workload's results.
func (w *Workload) SourceHash() string { return w.app.SourceHash() }

// NumBlocks returns the number of basic blocks in the flattened CDFG.
func (w *Workload) NumBlocks() int { return w.app.NumBlocks() }

// SetInput copies vals into the named global array — the application's
// input surface.
func (w *Workload) SetInput(name string, vals []int32) error {
	return w.run.SetGlobal(name, vals)
}

// Data returns the live storage of a global array (nil if absent), for
// reading outputs back after Run.
func (w *Workload) Data(name string) []int32 { return w.run.Global(name) }

// Run executes the entry function with the given scalar arguments and
// returns its result. Profiling counts accumulate across calls: each Run is
// one more profiled execution (one more "frame") folded into the workload's
// dynamic analysis.
func (w *Workload) Run(args ...int32) (int32, error) { return w.run.Run(args...) }

// InstructionsExecuted returns the dynamic instruction count so far.
func (w *Workload) InstructionsExecuted() uint64 { return w.run.InstructionsExecuted() }

// Profile snapshots the accumulated dynamic analysis (per-block execution
// counts plus control-flow transition counts). Engine methods call this
// implicitly; it is exported for interoperability with the v1 API.
func (w *Workload) Profile() *RunProfile { return w.run.Profile() }

// profiled returns the app and a profile snapshot, erroring on nil
// workloads so Engine methods fail loudly instead of panicking.
func (w *Workload) profiled() (*App, *RunProfile, error) {
	if w == nil || w.app == nil {
		return nil, nil, fmt.Errorf("hybridpart: nil workload")
	}
	return w.app, w.Profile(), nil
}
