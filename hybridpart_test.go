package hybridpart

import (
	"bytes"
	"strings"
	"testing"
)

const firSrc = `
const int N = 128;
int TAPS[16] = {1, 2, 3, 4, 5, 6, 7, 8, 8, 7, 6, 5, 4, 3, 2, 1};
int INPUT[N];
int OUTPUT[N];
void prep() {
    int i;
    for (i = 0; i < N; i++) { INPUT[i] = (i * 13 + 5) & 127; }
}
int main_fn() {
    int n;
    prep();
    for (n = 16; n < N; n++) {
        int acc = ((TAPS[0] * INPUT[n] + TAPS[1] * INPUT[n - 1])
                 + (TAPS[2] * INPUT[n - 2] + TAPS[3] * INPUT[n - 3]))
                + ((TAPS[4] * INPUT[n - 4] + TAPS[5] * INPUT[n - 5])
                 + (TAPS[6] * INPUT[n - 6] + TAPS[7] * INPUT[n - 7]))
                + ((TAPS[8] * INPUT[n - 8] + TAPS[9] * INPUT[n - 9])
                 + (TAPS[10] * INPUT[n - 10] + TAPS[11] * INPUT[n - 11]))
                + ((TAPS[12] * INPUT[n - 12] + TAPS[13] * INPUT[n - 13])
                 + (TAPS[14] * INPUT[n - 14] + TAPS[15] * INPUT[n - 15]));
        OUTPUT[n] = acc >> 6;
    }
    return OUTPUT[N - 1];
}
`

func compileFIR(t *testing.T) (*App, *RunProfile) {
	t.Helper()
	app, err := Compile(firSrc, "main_fn")
	if err != nil {
		t.Fatal(err)
	}
	run := app.NewRunner()
	if _, err := run.Run(); err != nil {
		t.Fatal(err)
	}
	return app, run.Profile()
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("int f() { return zz; }", "f"); err == nil {
		t.Fatal("semantic error accepted")
	}
	if _, err := Compile("int f() { return 1; }", "missing"); err == nil {
		t.Fatal("unknown entry accepted")
	}
	if _, err := Compile("not C at all", "f"); err == nil {
		t.Fatal("parse error accepted")
	}
}

func TestEndToEndFlow(t *testing.T) {
	app, prof := compileFIR(t)
	if app.NumBlocks() < 5 {
		t.Fatalf("suspiciously small CDFG: %d blocks", app.NumBlocks())
	}
	opts := DefaultOptions()
	an := app.Analyze(prof.Freq, opts)
	if len(an.Kernels) == 0 {
		t.Fatal("no kernels detected")
	}
	// The FIR inner body (the mul-add loop) must dominate.
	if an.Kernels[0].TotalWeight < an.Kernels[len(an.Kernels)-1].TotalWeight {
		t.Fatal("kernel ordering broken")
	}

	loose := opts
	loose.Constraint = 1 << 60
	all, err := app.Partition(prof, loose)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Met || all.InitialCycles <= 0 {
		t.Fatalf("all-FPGA run malformed: %+v", all)
	}
	opts.Constraint = all.InitialCycles / 2
	res, err := app.Partition(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || len(res.Moved) == 0 {
		t.Fatalf("halving constraint failed: met=%v moved=%v", res.Met, res.Moved)
	}
	if res.TFPGA+res.TCoarse+res.TComm != res.FinalCycles {
		t.Fatal("eq. 2 decomposition broken at the facade")
	}
	if !strings.Contains(res.Format(), "BB no. moved") {
		t.Fatalf("Format() malformed:\n%s", res.Format())
	}
}

func TestRunnerGlobals(t *testing.T) {
	app, _ := compileFIR(t)
	run := app.NewRunner()
	if err := run.SetGlobal("INPUT", []int32{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if run.Global("INPUT")[0] != 9 {
		t.Fatal("SetGlobal did not write")
	}
	if err := run.SetGlobal("NOPE", []int32{1}); err == nil {
		t.Fatal("unknown global accepted")
	}
	if err := run.SetGlobal("TAPS", make([]int32, 999)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestDotOutputs(t *testing.T) {
	app, _ := compileFIR(t)
	var buf bytes.Buffer
	if err := app.WriteCFGDot(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("CFG dot malformed")
	}
	buf.Reset()
	if err := app.WriteDFGDot(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := app.WriteDFGDot(&buf, 9999); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestBenchmarkProfilesAreStable(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app1, prof1, err := ProfileBenchmark(BenchOFDM, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, prof2, err := ProfileBenchmark(BenchOFDM, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prof1.Freq {
		if prof1.Freq[i] != prof2.Freq[i] {
			t.Fatalf("profiles differ at block %d", i)
		}
	}
	// The paper's property: OFDM's hot kernels sit in the IFFT. The top
	// kernel must be multiply-rich.
	an := app1.Analyze(prof1.Freq, DefaultOptions())
	if an.Kernels[0].OpWeight < 20 {
		t.Fatalf("top OFDM kernel too light: %+v", an.Kernels[0])
	}
	if _, _, err := ProfileBenchmark("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPaperShapeProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	app, prof, err := ProfileBenchmark(BenchOFDM, 1)
	if err != nil {
		t.Fatal(err)
	}
	loose := DefaultOptions()
	loose.Constraint = 1 << 60

	// Property 1: initial cycles shrink monotonically with A_FPGA.
	prev := int64(1 << 62)
	for _, area := range []int{1000, 1500, 5000, 10000} {
		o := loose
		o.AFPGA = area
		res, err := app.Partition(prof, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.InitialCycles > prev {
			t.Fatalf("A_FPGA=%d slower than smaller area (%d > %d)", area, res.InitialCycles, prev)
		}
		prev = res.InitialCycles
	}

	// Property 2: the paper's constraint (60000) is satisfiable at both
	// areas, with at most as many moves at 5000 as at 1500.
	o1 := DefaultOptions()
	o1.Constraint = 60000
	r1500, err := app.Partition(prof, o1)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o1
	o2.AFPGA = 5000
	r5000, err := app.Partition(prof, o2)
	if err != nil {
		t.Fatal(err)
	}
	if !r1500.Met || !r5000.Met {
		t.Fatalf("paper constraint unmet: 1500=%v 5000=%v", r1500.Met, r5000.Met)
	}
	if len(r5000.Moved) > len(r1500.Moved) {
		t.Fatalf("larger FPGA needed more moves (%d > %d)", len(r5000.Moved), len(r1500.Moved))
	}
	// Property 3: % reduction larger at the smaller area (Table 2 shape).
	if r1500.ReductionPct() < r5000.ReductionPct() {
		t.Fatalf("reduction at 1500 (%.1f%%) below 5000 (%.1f%%)",
			r1500.ReductionPct(), r5000.ReductionPct())
	}
	// Property 4: cycles in CGC are independent of A_FPGA when the same
	// kernels move (compare per-move latencies via a single-move run).
	o1.MaxMoves, o2.MaxMoves = 1, 1
	o1.Constraint, o2.Constraint = 1, 1
	m1500, err := app.Partition(prof, o1)
	if err != nil {
		t.Fatal(err)
	}
	m5000, err := app.Partition(prof, o2)
	if err != nil {
		t.Fatal(err)
	}
	if m1500.CyclesInCGC != m5000.CyclesInCGC {
		t.Fatalf("CGC cycles depend on A_FPGA: %d vs %d", m1500.CyclesInCGC, m5000.CyclesInCGC)
	}
}

func TestPipelineFacade(t *testing.T) {
	app, prof := compileFIR(t)
	opts := DefaultOptions()
	opts.Constraint = 1
	opts.MaxMoves = 1
	res, err := app.Partition(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	pm := res.Pipeline()
	if pm.Pipelined(10) > pm.Sequential(10) {
		t.Fatal("pipelining slower than sequential")
	}
	s := pm.Speedup(100)
	if s < 1 || s > 2 {
		t.Fatalf("speedup %f outside [1,2]", s)
	}
	if !strings.Contains(pm.Report([]int{1, 10}), "speedup") {
		t.Fatal("pipeline report malformed")
	}
}

func TestEnergyFacade(t *testing.T) {
	app, prof := compileFIR(t)
	opts := DefaultOptions()
	loose, err := app.PartitionEnergy(prof, opts, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Met || loose.InitialEnergy <= 0 {
		t.Fatalf("loose energy run malformed: %+v", loose)
	}
	res, err := app.PartitionEnergy(prof, opts, loose.InitialEnergy*0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || len(res.Moved) == 0 {
		t.Fatalf("80%% budget failed: %+v", res)
	}
	if res.Final.Total() != res.FinalEnergy {
		t.Fatal("breakdown total mismatch")
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	p := opts.platform()
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultOptions platform invalid: %v", err)
	}
	if p.Fine.Area != opts.AFPGA || p.Coarse.NumCGCs != opts.NumCGCs ||
		p.Coarse.RegBankWords != opts.RegBankWords {
		t.Fatal("options not faithfully converted")
	}
	w := opts.weights()
	if w.ALU != 1 || w.Mul != 2 {
		t.Fatalf("paper weights wrong: %+v", w)
	}
}
