package hybridpart

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hybridpart/internal/analysis"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
	"hybridpart/internal/lower"
	"hybridpart/internal/platform"
)

// App is a compiled application: the lowered program plus the flattened
// (fully inlined) entry function the methodology operates on. An App is
// safe for concurrent Analyze/Partition/PartitionEnergy use — the sweep
// engine shares one App across its whole worker pool.
type App struct {
	entry   string
	srcHash string      // SHA-256 of the source text (see SourceHash)
	prog    *ir.Program // original program (used for execution)
	flat    *ir.Function
	fprog   *ir.Program // single-function program holding flat + globals

	// analysisMu serializes the analysis step: dominator and loop detection
	// recompute flat's CFG edge lists in place, the one mutation of shared
	// state on the partitioning path.
	analysisMu sync.Mutex
}

// analyze runs the analysis substrate under the App's mutex; everything
// else Partition does only reads the shared IR and may run concurrently.
func (a *App) analyze(freq []uint64, w analysis.Weights) *analysis.Report {
	a.analysisMu.Lock()
	defer a.analysisMu.Unlock()
	return analysis.Analyze(a.flat, freq, w)
}

// Compile parses, checks and lowers mini-C source text, then flattens the
// given entry function into the single CDFG the analysis and mapping steps
// consume (the paper's step 1).
func Compile(src, entry string) (*App, error) {
	prog, err := lower.LowerSource(src)
	if err != nil {
		return nil, err
	}
	flat, err := lower.Flatten(prog, entry)
	if err != nil {
		return nil, err
	}
	fprog := ir.NewProgram()
	fprog.Globals = prog.Globals
	if err := fprog.AddFunc(flat); err != nil {
		return nil, err
	}
	if err := fprog.Validate(); err != nil {
		return nil, fmt.Errorf("hybridpart: flattened program invalid: %w", err)
	}
	return &App{entry: entry, srcHash: SourceHash(src), prog: prog, flat: flat, fprog: fprog}, nil
}

// Entry returns the entry function name.
func (a *App) Entry() string { return a.entry }

// SourceHash returns the canonical content hash of the source text this App
// was compiled from (equal to SourceHash applied to that text). It
// content-addresses the application in caches keyed on what was compiled
// rather than on object identity.
func (a *App) SourceHash() string { return a.srcHash }

// NumBlocks returns the number of basic blocks in the flattened CDFG.
func (a *App) NumBlocks() int { return len(a.flat.Blocks) }

// BlockName returns the diagnostic label of basic block id.
func (a *App) BlockName(id int) string {
	if id < 0 || id >= len(a.flat.Blocks) {
		return ""
	}
	return a.flat.Blocks[id].Name
}

// WriteCFGDot writes the flattened CDFG in Graphviz DOT form.
func (a *App) WriteCFGDot(w io.Writer) error { return ir.WriteCFGDot(w, a.flat) }

// WriteDFGDot writes the data-flow graph of basic block id in DOT form.
func (a *App) WriteDFGDot(w io.Writer, id int) error {
	if id < 0 || id >= len(a.flat.Blocks) {
		return fmt.Errorf("hybridpart: block %d out of range [0,%d)", id, len(a.flat.Blocks))
	}
	return ir.WriteDFGDot(w, ir.BuildDFG(a.flat, a.flat.Blocks[id]))
}

// Runner executes the flattened application with profiling enabled — the
// dynamic-analysis half of the paper's step 3. Global arrays are the
// application's I/O surface.
type Runner struct {
	m    *interp.Machine
	prof *interp.Profile
	app  *App
}

// NewRunner returns a fresh Runner (globals at their initial values).
func (a *App) NewRunner() *Runner {
	m := interp.New(a.fprog)
	return &Runner{m: m, prof: m.EnableProfile(), app: a}
}

// SetGlobal copies vals into the named global array.
func (r *Runner) SetGlobal(name string, vals []int32) error {
	g := r.m.Global(name)
	if g == nil {
		return fmt.Errorf("hybridpart: global %q not found", name)
	}
	if len(vals) > len(g) {
		return fmt.Errorf("hybridpart: %d values exceed %q (len %d)", len(vals), name, len(g))
	}
	copy(g, vals)
	return nil
}

// Global returns the live storage of a global array (nil if absent).
func (r *Runner) Global(name string) []int32 { return r.m.Global(name) }

// Run executes the entry function with the given scalar arguments and
// returns its result. Profiling counts accumulate across calls.
func (r *Runner) Run(args ...int32) (int32, error) {
	iargs := make([]interp.Arg, len(args))
	for i, v := range args {
		iargs[i] = interp.Int(v)
	}
	return r.m.Run(r.app.entry, iargs...)
}

// BlockFrequencies returns the accumulated per-block execution counts
// (exec_freq), indexed by basic-block number.
func (r *Runner) BlockFrequencies() []uint64 {
	counts := r.prof.Counts[r.app.entry]
	out := make([]uint64, r.app.NumBlocks())
	copy(out, counts)
	return out
}

// RunProfile bundles the dynamic-analysis products of one or more Run
// calls: per-block execution counts plus taken control-flow transition
// counts (the reconfiguration model charges partition crossings on the
// latter).
type RunProfile struct {
	Freq  []uint64
	edges []finegrain.EdgeFreq
}

// Profile snapshots the runner's accumulated dynamic analysis.
func (r *Runner) Profile() *RunProfile {
	p := &RunProfile{Freq: r.BlockFrequencies()}
	for k, n := range r.prof.Edges[r.app.entry] {
		p.edges = append(p.edges, finegrain.EdgeFreq{From: k.From(), To: k.To(), N: n})
	}
	sort.Slice(p.edges, func(i, j int) bool {
		if p.edges[i].From != p.edges[j].From {
			return p.edges[i].From < p.edges[j].From
		}
		return p.edges[i].To < p.edges[j].To
	})
	return p
}

// InstructionsExecuted returns the dynamic instruction count so far.
func (r *Runner) InstructionsExecuted() uint64 { return r.prof.Instrs }

// KernelOrder re-exports the analysis ordering strategies.
type KernelOrder = analysis.KernelOrder

// Kernel ordering strategies (OrderByTotalWeight is the paper's eq. 1).
const (
	OrderByTotalWeight = analysis.OrderByTotalWeight
	OrderByFreq        = analysis.OrderByFreq
	OrderByOpWeight    = analysis.OrderByOpWeight
)

// Options collects every platform and engine knob with the paper's
// evaluation defaults.
type Options struct {
	// AFPGA is the usable fine-grain area (paper: 1500 or 5000 units).
	AFPGA int
	// ReconfigCycles is the full-reconfiguration cost per temporal
	// partition in FPGA cycles.
	ReconfigCycles int
	// Regions is the number of independently reconfigurable regions the
	// fine-grain fabric is split into (partial dynamic reconfiguration).
	// 0 or 1 is the paper's monolithic context; with R > 1 the area splits
	// evenly across regions, each swap costs ReconfigCycles/R (rounded up),
	// and temporal partitions resident in different regions coexist.
	Regions int

	// NumCGCs, CGCRows, CGCCols shape the coarse-grain data-path (paper:
	// two or three 2×2 CGCs).
	NumCGCs int
	CGCRows int
	CGCCols int
	// MemPorts is the shared-memory ports available per CGC cycle.
	MemPorts int
	// ClockRatio is T_FPGA/T_CGC (paper: 3).
	ClockRatio int
	// RegBankWords sizes the data-path register bank (arrays up to this
	// size are bank-resident during kernel execution; 0 disables the bank).
	RegBankWords int

	// CommCyclesPerWord and CommSyncCycles parameterize t_comm.
	CommCyclesPerWord int
	CommSyncCycles    int

	// Constraint is the timing constraint in FPGA cycles.
	Constraint int64
	// Order selects the kernel ordering strategy.
	Order KernelOrder
	// MaxMoves bounds the number of kernels moved (0 = unlimited); useful
	// for move-by-move trajectory studies.
	MaxMoves int
	// SkipNonImproving rejects moves whose communication overhead exceeds
	// their gain (ablation switch; the paper's engine moves unconditionally).
	SkipNonImproving bool

	// WeightALU/Mul/Div/Mem are the static analysis weights (paper: ALU 1,
	// MUL 2; memory accesses are counted as basic operations).
	WeightALU int64
	WeightMul int64
	WeightDiv int64
	WeightMem int64

	// Objective selects the move-loop objective: ObjectiveModel optimizes
	// the closed-form t_total (the paper's engine, the default);
	// ObjectiveSimulated scores every trajectory prefix by replaying the
	// profiled trace through the co-simulator under the Sim* knobs and keeps
	// the mapping with the minimal simulated makespan.
	Objective Objective
	// RerankK keeps the closed-form loop but re-scores the k trajectory
	// prefixes with the best model t_total by simulation (0 = off, -1 = all,
	// which is equivalent to ObjectiveSimulated). Mutually exclusive with
	// ObjectiveSimulated.
	RerankK int

	// SimFrames, SimPorts and SimPrefetch are the co-simulation knobs shared
	// by Simulate, the simulated objective and re-ranking (zero frames/ports
	// mean 1, the analytical model's operating point). They live here — not
	// only in per-call SimOptions — so they participate in Fingerprint() and
	// two cached results that differ only in a sim knob can never collide.
	SimFrames   int
	SimPorts    int
	SimPrefetch bool

	// Costs is the fine-grain operator cost table (area and latency per
	// operation class). The zero value selects the default characterization,
	// so Options built literally keep their previous meaning; presets such
	// as "dsp-rich" install their own tables here.
	Costs OpCosts
}

// OpCosts characterizes the fine-grain fabric per operation class: area in
// A_FPGA units and latency in FPGA cycles for ALU, multiply, divide and
// memory operations.
type OpCosts = platform.OpCosts

// DefaultOpCosts returns the cost table used throughout the paper's
// experiments (multipliers 4× the ALU area, two cycles).
func DefaultOpCosts() OpCosts { return platform.DefaultOpCosts() }

// DefaultOptions returns the paper's baseline configuration: A_FPGA = 1500,
// two 2×2 CGCs, T_FPGA = 3·T_CGC, eq. 1 kernel ordering.
func DefaultOptions() Options {
	p := platform.Default()
	w := analysis.DefaultWeights()
	return Options{
		AFPGA:             p.Fine.Area,
		ReconfigCycles:    p.Fine.ReconfigCycles,
		NumCGCs:           p.Coarse.NumCGCs,
		CGCRows:           p.Coarse.Rows,
		CGCCols:           p.Coarse.Cols,
		MemPorts:          p.Coarse.MemPorts,
		ClockRatio:        p.Coarse.ClockRatio,
		RegBankWords:      p.Coarse.RegBankWords,
		CommCyclesPerWord: p.Comm.CyclesPerWord,
		CommSyncCycles:    p.Comm.SyncCycles,
		Constraint:        60000,
		Order:             OrderByTotalWeight,
		WeightALU:         w.ALU,
		WeightMul:         w.Mul,
		WeightDiv:         w.Div,
		WeightMem:         w.Mem,
		Costs:             platform.DefaultOpCosts(),
	}
}

// platform materializes the characterization with the legacy defaulting
// rule: a zero-value Costs table (OpCosts.IsZero) selects the default
// characterization, so Options built literally keep their v1 meaning. The
// v2 Engine's WithCosts bypasses this rule and uses its table verbatim.
func (o Options) platform() platform.Platform {
	costs := o.Costs
	if costs.IsZero() {
		costs = platform.DefaultOpCosts()
	}
	return o.platformUsing(costs)
}

// platformUsing materializes the characterization with an explicit operator
// cost table, applying no defaulting at all.
func (o Options) platformUsing(costs OpCosts) platform.Platform {
	return platform.Platform{
		Fine: platform.FineGrain{
			Area:           o.AFPGA,
			ReconfigCycles: o.ReconfigCycles,
			Regions:        o.Regions,
			Costs:          costs,
		},
		Coarse: platform.CoarseGrain{
			NumCGCs:      o.NumCGCs,
			Rows:         o.CGCRows,
			Cols:         o.CGCCols,
			MemPorts:     o.MemPorts,
			ClockRatio:   o.ClockRatio,
			RegBankWords: o.RegBankWords,
		},
		Comm: platform.Comm{CyclesPerWord: o.CommCyclesPerWord, SyncCycles: o.CommSyncCycles},
	}
}

func (o Options) weights() analysis.Weights {
	return analysis.Weights{ALU: o.WeightALU, Mul: o.WeightMul, Div: o.WeightDiv, Mem: o.WeightMem}
}

// KernelInfo is one row of the analysis report (Table 1 of the paper).
type KernelInfo struct {
	Block       int
	Name        string
	Freq        uint64
	OpWeight    int64
	TotalWeight int64
	LoopDepth   int
}

// Analysis is the facade view of the analysis step's output.
type Analysis struct {
	rep *analysis.Report
	// Kernels lists candidate kernels in decreasing total weight.
	Kernels []KernelInfo
}

// Analyze runs the static+dynamic analysis (step 3) against the given
// block frequencies.
func (a *App) Analyze(freq []uint64, opts Options) *Analysis {
	rep := a.analyze(freq, opts.weights())
	out := &Analysis{rep: rep}
	for _, id := range rep.Kernels {
		b := rep.Block(id)
		out.Kernels = append(out.Kernels, KernelInfo{
			Block:       int(b.ID),
			Name:        b.Name,
			Freq:        b.Freq,
			OpWeight:    b.OpWeight,
			TotalWeight: b.TotalWeight,
			LoopDepth:   b.Depth,
		})
	}
	return out
}

// FormatTable renders the top-n kernels like the paper's Table 1.
func (an *Analysis) FormatTable(n int) string { return an.rep.FormatTable(n) }

// Result is the outcome of a partitioning run (Tables 2–3 of the paper).
type Result struct {
	InitialCycles int64
	// InitialPartitions is the number of configuration bit-streams of the
	// all-FPGA mapping.
	InitialPartitions int
	FinalCycles       int64
	CyclesInCGC       int64
	TFPGA             int64
	TCoarse           int64
	TComm             int64
	Constraint        int64
	Met               bool
	Moved             []int
	Unmappable        []int
	Skipped           []int

	// Objective echoes the move-loop objective the run optimized.
	Objective Objective
	// SimulatedCycles, SimulatedBaselineCycles and SimulatedSpeedup report
	// the chosen mapping, the all-FPGA mapping and their ratio under the
	// run's co-simulation knobs (SimFrames/SimPorts/SimPrefetch). They are
	// filled whenever any sim knob, the simulated objective or re-ranking is
	// active, and stay zero on purely closed-form runs. Met always refers to
	// the analytical t_total against the constraint, never to these.
	SimulatedCycles         int64
	SimulatedBaselineCycles int64
	SimulatedSpeedup        float64
	// SimStats breaks down how the run's candidate simulations were paid for.
	SimStats SimScoreStats
}

// ReductionPct is the % cycle reduction over the all-FPGA mapping.
func (r *Result) ReductionPct() float64 {
	if r.InitialCycles == 0 {
		return 0
	}
	return 100 * float64(r.InitialCycles-r.FinalCycles) / float64(r.InitialCycles)
}

// Format renders the result in the layout of the paper's Tables 2–3. The
// table is built on demand — sweeps produce thousands of Results whose
// formatting would otherwise be wasted — and must stay byte-identical to
// the internal engine's FormatTable.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Initial cycles (all-FPGA): %d\n", r.InitialCycles)
	fmt.Fprintf(&sb, "Timing constraint:         %d\n", r.Constraint)
	fmt.Fprintf(&sb, "Cycles in CGC:             %d\n", r.CyclesInCGC)
	ids := make([]string, len(r.Moved))
	for i, b := range r.Moved {
		ids[i] = strconv.Itoa(b)
	}
	fmt.Fprintf(&sb, "BB no. moved:              %s\n", strings.Join(ids, ", "))
	fmt.Fprintf(&sb, "Final cycles:              %d\n", r.FinalCycles)
	fmt.Fprintf(&sb, "%% cycles reduction:        %.1f\n", r.ReductionPct())
	fmt.Fprintf(&sb, "Constraint met:            %v\n", r.Met)
	return sb.String()
}

// Partition runs the full methodology (steps 2–5) for the given profile and
// options.
//
// This is the v1 compatibility shim: it delegates to a single-use Engine
// configured via WithOptions, with no cancellation and no observer. New
// code should build a Workload and call Engine.Partition, which adds
// context cancellation and move-by-move progress events.
func (a *App) Partition(p *RunProfile, opts Options) (*Result, error) {
	eng, err := NewEngine(WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return eng.partitionApp(context.Background(), a, p)
}
