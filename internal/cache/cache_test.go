package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrComputeBasics(t *testing.T) {
	c := New[int](4)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, hit, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || hit || v != 42 {
		t.Fatalf("miss: got (%d, %v, %v)", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || !hit || v != 42 {
		t.Fatalf("hit: got (%d, %v, %v)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Size != 1 || s.Capacity != 4 {
		t.Fatalf("stats: %+v", s)
	}
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatalf("Get: got (%d, %v)", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("Get invented an entry")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.GetOrCompute(nil, "k", func() (int, error) {
		calls++
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	// The next lookup recomputes, and success is then stored.
	v, hit, err := c.GetOrCompute(nil, "k", func() (int, error) { calls++; return 7, nil })
	if err != nil || hit || v != 7 || calls != 2 {
		t.Fatalf("recompute: got (%d, %v, %v), %d calls", v, hit, err, calls)
	}
}

// TestLRUEviction fills past capacity and checks the least-recently-used
// entry is the one dropped.
func TestLRUEviction(t *testing.T) {
	c := New[string](2)
	put := func(k string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(nil, k, func() (string, error) { return "v" + k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	// Touch "a" so "b" becomes LRU, then insert "c": "b" must go.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	put("c")
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats after eviction: %+v", s)
	}
}

// TestSingleflight is the coalescing acceptance test: 50 concurrent
// lookups of one key run the computation exactly once and all observe the
// same value.
func TestSingleflight(t *testing.T) {
	c := New[int](4)
	var calls atomic.Int64
	gate := make(chan struct{})

	const n = 50
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute(context.Background(), "key", func() (int, error) {
				calls.Add(1)
				<-gate // hold the computation open until all callers queued
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until 49 callers have joined the in-flight call, then release.
	for {
		c.mu.Lock()
		queued := c.stats.Coalesced
		c.mu.Unlock()
		if queued == n-1 {
			break
		}
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d saw %d", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != n-1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestWaiterCancellation: a waiter whose context dies stops waiting with
// ctx.Err() while the leader's computation still completes and is cached.
func TestWaiterCancellation(t *testing.T) {
	c := New[int](4)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, _, err := c.GetOrCompute(context.Background(), "k", func() (int, error) {
			<-gate
			return 5, nil
		}); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the leader's call to be in flight.
	for {
		c.mu.Lock()
		inflight := len(c.inflight)
		c.mu.Unlock()
		if inflight == 1 {
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: want context.Canceled, got %v", err)
	}
	close(gate)
	<-leaderDone
	if v, ok := c.Get("k"); !ok || v != 5 {
		t.Fatalf("leader's result lost: (%d, %v)", v, ok)
	}
}

// TestWaiterSurvivesLeaderCancellation: when the leader's computation dies
// of the leader's own context, live waiters retry (and one becomes the new
// leader) instead of inheriting a cancellation that was never theirs.
func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	c := New[int](4)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	go func() {
		c.GetOrCompute(context.Background(), "k", func() (int, error) {
			close(leaderIn)
			<-leaderGo
			return 0, context.Canceled // the engine aborted on the leader's ctx
		})
	}()
	<-leaderIn
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, hit, err := c.GetOrCompute(context.Background(), "k", func() (int, error) { return 7, nil })
		if err != nil || v != 7 || hit {
			t.Errorf("waiter after leader cancellation: got (%d, %v, %v), want fresh compute of 7", v, hit, err)
		}
	}()
	// Wait for the waiter to join the leader's call, then kill the leader.
	for {
		c.mu.Lock()
		queued := c.stats.Coalesced
		c.mu.Unlock()
		if queued >= 1 {
			break
		}
	}
	close(leaderGo)
	<-waiterDone
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("retried result not cached: (%d, %v)", v, ok)
	}
}

func TestComputePanicReleasesWaiters(t *testing.T) {
	c := New[int](4)
	func() {
		defer func() { recover() }()
		c.GetOrCompute(nil, "k", func() (int, error) { panic("kaboom") })
	}()
	// The key must be retryable, not wedged.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(nil, "k", func() (int, error) { return 1, nil })
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("key wedged after panic: %v", err)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines across
// more keys than the capacity, under -race.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", (g+i)%24)
				want := (g + i) % 24
				v, _, err := c.GetOrCompute(nil, k, func() (int, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("key %s: got (%d, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 8 {
		t.Fatalf("capacity bound violated: %d entries", got)
	}
}
