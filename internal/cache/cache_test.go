package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hybridpart/internal/store"
)

func bs(s string) []byte { return []byte(s) }

func TestGetOrComputeBasics(t *testing.T) {
	c := New(4)
	calls := 0
	compute := func() ([]byte, error) { calls++; return bs("42"), nil }

	v, hit, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || hit || string(v) != "42" {
		t.Fatalf("miss: got (%q, %v, %v)", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || !hit || string(v) != "42" {
		t.Fatalf("hit: got (%q, %v, %v)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Size != 1 || s.Capacity != 4 {
		t.Fatalf("stats: %+v", s)
	}
	if v, ok := c.Get("k"); !ok || string(v) != "42" {
		t.Fatalf("Get: got (%q, %v)", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("Get invented an entry")
	}
}

// TestBackedStats: the Stats snapshot merges the backend's entry counters
// with the coalescing layer's hit/miss counters, whatever the backend.
func TestBackedStats(t *testing.T) {
	be := store.NewMemory(2)
	c := NewBacked(be)
	for _, k := range []string{"a", "b", "c"} {
		k := k
		if _, _, err := c.GetOrCompute(nil, k, func() ([]byte, error) { return bs("v" + k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.GetOrCompute(nil, "c", nil); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 3 || s.Hits != 1 || s.Evictions != 1 || s.Size != 2 || s.Capacity != 2 {
		t.Fatalf("merged stats: %+v", s)
	}
	if bst := be.Stats(); bst.Hits != 0 || bst.Misses != 0 {
		t.Fatalf("backend invented hit/miss counters: %+v", bst)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.GetOrCompute(nil, "k", func() ([]byte, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	// The next lookup recomputes, and success is then stored.
	v, hit, err := c.GetOrCompute(nil, "k", func() ([]byte, error) { calls++; return bs("7"), nil })
	if err != nil || hit || string(v) != "7" || calls != 2 {
		t.Fatalf("recompute: got (%q, %v, %v), %d calls", v, hit, err, calls)
	}
}

// TestLRUEviction fills past capacity and checks the least-recently-used
// entry is the one dropped.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	put := func(k string) {
		t.Helper()
		if _, _, err := c.GetOrCompute(nil, k, func() ([]byte, error) { return bs("v" + k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	// Touch "a" so "b" becomes LRU, then insert "c": "b" must go.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	put("c")
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats after eviction: %+v", s)
	}
}

// TestSingleflight is the coalescing acceptance test: 50 concurrent
// lookups of one key run the computation exactly once and all observe the
// same value.
func TestSingleflight(t *testing.T) {
	c := New(4)
	var calls atomic.Int64
	gate := make(chan struct{})

	const n = 50
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute(context.Background(), "key", func() ([]byte, error) {
				calls.Add(1)
				<-gate // hold the computation open until all callers queued
				return bs("99"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until 49 callers have joined the in-flight call, then release.
	for {
		c.mu.Lock()
		queued := c.stats.Coalesced
		c.mu.Unlock()
		if queued == n-1 {
			break
		}
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if string(v) != "99" {
			t.Fatalf("caller %d saw %q", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != n-1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestWaiterCancellation: a waiter whose context dies stops waiting with
// ctx.Err() while the leader's computation still completes and is cached.
func TestWaiterCancellation(t *testing.T) {
	c := New(4)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			<-gate
			return bs("5"), nil
		}); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the leader's call to be in flight.
	for {
		c.mu.Lock()
		inflight := len(c.inflight)
		c.mu.Unlock()
		if inflight == 1 {
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: want context.Canceled, got %v", err)
	}
	close(gate)
	<-leaderDone
	if v, ok := c.Get("k"); !ok || string(v) != "5" {
		t.Fatalf("leader's result lost: (%q, %v)", v, ok)
	}
}

// TestWaiterSurvivesLeaderCancellation: when the leader's computation dies
// of the leader's own context, live waiters retry (and one becomes the new
// leader) instead of inheriting a cancellation that was never theirs.
func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	c := New(4)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	go func() {
		c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			return nil, context.Canceled // the engine aborted on the leader's ctx
		})
	}()
	<-leaderIn
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) { return bs("7"), nil })
		if err != nil || string(v) != "7" || hit {
			t.Errorf("waiter after leader cancellation: got (%q, %v, %v), want fresh compute of 7", v, hit, err)
		}
	}()
	// Wait for the waiter to join the leader's call, then kill the leader.
	for {
		c.mu.Lock()
		queued := c.stats.Coalesced
		c.mu.Unlock()
		if queued >= 1 {
			break
		}
	}
	close(leaderGo)
	<-waiterDone
	if v, ok := c.Get("k"); !ok || string(v) != "7" {
		t.Fatalf("retried result not cached: (%q, %v)", v, ok)
	}
}

func TestComputePanicReleasesWaiters(t *testing.T) {
	c := New(4)
	func() {
		defer func() { recover() }()
		c.GetOrCompute(nil, "k", func() ([]byte, error) { panic("kaboom") })
	}()
	// The key must be retryable, not wedged.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(nil, "k", func() ([]byte, error) { return bs("1"), nil })
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("key wedged after panic: %v", err)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines across
// more keys than the capacity, under -race.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", (g+i)%24)
				want := bs(fmt.Sprint((g + i) % 24))
				v, _, err := c.GetOrCompute(nil, k, func() ([]byte, error) { return want, nil })
				if err != nil || !bytes.Equal(v, want) {
					t.Errorf("key %s: got (%q, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 8 {
		t.Fatalf("capacity bound violated: %d entries", got)
	}
}

// TestDiskBackend drives the full coalescing layer over the disk store:
// a computed entry must round-trip through a reopen of the same directory
// as a byte-identical hit without recomputing.
func TestDiskBackend(t *testing.T) {
	dir := t.TempDir()
	be, err := store.OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := NewBacked(be)
	calls := 0
	want := bs(`{"answer":42}` + "\n")
	v, hit, err := c.GetOrCompute(nil, "fp-1", func() ([]byte, error) { calls++; return want, nil })
	if err != nil || hit || !bytes.Equal(v, want) {
		t.Fatalf("miss: (%q, %v, %v)", v, hit, err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	be2, err := store.OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	c2 := NewBacked(be2)
	v, hit, err = c2.GetOrCompute(nil, "fp-1", func() ([]byte, error) { calls++; return nil, errors.New("must not run") })
	if err != nil || !hit || !bytes.Equal(v, want) {
		t.Fatalf("warm restart: (%q, %v, %v)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times across restart, want 1", calls)
	}
	if s := c2.Stats(); s.Hits != 1 || s.Misses != 0 || s.Size != 1 {
		t.Fatalf("warm stats: %+v", s)
	}
}
