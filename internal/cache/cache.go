// Package cache provides the bounded, concurrency-safe, content-addressed
// result store behind the partitioning service. The methodology is a pure
// function from (source hash, entry, profiling inputs, Options) to a
// partition, so results can be keyed by a canonical fingerprint of those
// inputs and shared across clients: a Cache maps such fingerprints to
// values, evicts least-recently-used entries once a capacity is exceeded,
// and coalesces concurrent misses on the same key into a single computation
// (singleflight), so N identical in-flight requests cost one
// compile+profile+partition instead of N.
//
// The cache is value-generic. The service instantiates it with the encoded
// response bytes, which makes cache hits byte-identical to the miss that
// populated them by construction.
package cache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	// Hits counts lookups served from a stored entry; Misses counts
	// lookups that triggered a computation.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups that joined an in-flight computation
	// instead of starting their own (the singleflight savings).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped to enforce the capacity bound.
	Evictions uint64 `json:"evictions"`
	// Size is the current number of stored entries; Capacity the bound.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// Cache is a bounded, concurrency-safe, content-addressed store with
// request coalescing. The zero value is not usable; construct with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recently used
	byKey    map[string]*list.Element // key -> element holding *entry[V]
	inflight map[string]*call[V]
	stats    Stats
}

type entry[V any] struct {
	key string
	val V
}

// call is one in-flight computation; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a Cache bounded to capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*call[V]),
	}
}

// Get returns the stored value for key, marking it most recently used.
// It counts as neither hit nor miss: use GetOrCompute for the instrumented
// read path.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// GetOrCompute returns the value for key, computing and storing it on a
// miss. Concurrent callers for the same key are coalesced: exactly one runs
// compute, the rest block until it finishes and share its result. hit
// reports whether the caller was served without running compute itself
// (a stored entry or a joined in-flight call).
//
// A failed compute is not cached — waiters receive the error and the next
// lookup recomputes. Context failures are special-cased so one client
// cannot doom the others: a waiter whose own ctx is cancelled stops
// waiting and returns ctx.Err() (the computation keeps running for the
// rest), and a waiter whose leader died of the *leader's* context
// (cancelled or timed out) retries the lookup instead of inheriting the
// error, becoming — or joining — the next leader. The leader's compute
// decides its own cancellation, so callers that must abort pass a compute
// closed over the same ctx.
func (c *Cache[V]) GetOrCompute(ctx context.Context, key string, compute func() (V, error)) (v V, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cl *call[V]
	coalesced := false // count each caller at most once, however often it retries
	for {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			v := el.Value.(*entry[V]).val
			c.mu.Unlock()
			return v, true, nil
		}
		waiting, ok := c.inflight[key]
		if !ok {
			cl = &call[V]{done: make(chan struct{})}
			c.inflight[key] = cl
			c.stats.Misses++
			c.mu.Unlock()
			break
		}
		if !coalesced {
			c.stats.Coalesced++
			coalesced = true
		}
		c.mu.Unlock()
		select {
		case <-waiting.done:
			if isContextErr(waiting.err) && ctx.Err() == nil {
				continue // the leader's cancellation, not ours: retry
			}
			return waiting.val, true, waiting.err
		case <-ctx.Done():
			var zero V
			return zero, false, ctx.Err()
		}
	}

	// The call must always resolve, even if compute panics — a leaked
	// in-flight entry would hang every future caller of this key.
	completed := false
	defer func() {
		if !completed {
			cl.err = fmt.Errorf("cache: compute for %q panicked", key)
			c.finish(key, cl, false)
		}
	}()
	cl.val, cl.err = compute()
	completed = true
	c.finish(key, cl, cl.err == nil)
	return cl.val, false, cl.err
}

// isContextErr reports whether err is a context cancellation or deadline
// failure — the error class that belongs to one caller rather than to the
// computation itself.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// finish publishes a completed call: stores the value on success, removes
// the in-flight marker and releases the waiters.
func (c *Cache[V]) finish(key string, cl *call[V], store bool) {
	c.mu.Lock()
	delete(c.inflight, key)
	if store {
		c.addLocked(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
}

// addLocked inserts (or refreshes) key and enforces the capacity bound.
func (c *Cache[V]) addLocked(key string, val V) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry[V]).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry[V]{key: key, val: val})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Len returns the current number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	s.Capacity = c.capacity
	return s
}
