// Package cache provides the concurrency-safe, content-addressed result
// cache behind the partitioning service. The methodology is a pure
// function from (source hash, entry, profiling inputs, Options) to a
// partition, so results can be keyed by a canonical fingerprint of those
// inputs and shared across clients.
//
// The package is the coalescing layer: it owns singleflight — N identical
// in-flight requests cost one compile+profile+partition — and the
// hit/miss accounting, while the entry storage itself is a pluggable
// store.Backend beneath it (the bounded in-memory LRU by default, or the
// disk-backed store so a restarted replica comes back warm). The service
// instantiates the cache with encoded response bytes, which makes cache
// hits byte-identical to the miss that populated them by construction.
package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hybridpart/internal/obs"
	"hybridpart/internal/store"
)

// Stats is a point-in-time snapshot of the cache counters: the coalescing
// layer's hits/misses/coalesced merged with the backend's size, capacity
// and eviction counts.
type Stats = store.Stats

// Cache is a coalescing front over a store.Backend. The zero value is not
// usable; construct with New or NewBacked.
type Cache struct {
	be       store.Backend
	mu       sync.Mutex
	inflight map[string]*call
	stats    Stats // only the Hits/Misses/Coalesced fields are maintained here
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// New returns a Cache over an in-memory LRU bounded to capacity entries
// (minimum 1) — the configuration the service has always defaulted to.
func New(capacity int) *Cache {
	return NewBacked(store.NewMemory(capacity))
}

// NewBacked returns a Cache over an explicit backend (e.g. a store.Disk
// so results survive restarts). The cache assumes sole ownership of the
// backend's keyspace; closing the backend remains the caller's job.
func NewBacked(be store.Backend) *Cache {
	return &Cache{
		be:       be,
		inflight: make(map[string]*call),
	}
}

// Get returns the stored value for key, marking it most recently used.
// It counts as neither hit nor miss: use GetOrCompute for the instrumented
// read path.
func (c *Cache) Get(key string) ([]byte, bool) { return c.be.Get(key) }

// GetOrCompute returns the value for key, computing and storing it on a
// miss. Concurrent callers for the same key are coalesced: exactly one runs
// compute, the rest block until it finishes and share its result. hit
// reports whether the caller was served without running compute itself
// (a stored entry or a joined in-flight call).
//
// A failed compute is not cached — waiters receive the error and the next
// lookup recomputes. Context failures are special-cased so one client
// cannot doom the others: a waiter whose own ctx is cancelled stops
// waiting and returns ctx.Err() (the computation keeps running for the
// rest), and a waiter whose leader died of the *leader's* context
// (cancelled or timed out) retries the lookup instead of inheriting the
// error, becoming — or joining — the next leader. The leader's compute
// decides its own cancellation, so callers that must abort pass a compute
// closed over the same ctx.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (v []byte, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One span covers the whole lookup whatever singleflight role this
	// caller ends up playing; the role lands as an attribute at the exit.
	ctx, span := obs.Start(ctx, "cache.lookup")
	var cl *call
	coalesced := false // count each caller at most once, however often it retries
	for {
		c.mu.Lock()
		waiting, ok := c.inflight[key]
		if !ok {
			// We lead for this key. Register before probing the backend so
			// concurrent callers coalesce onto us whichever way the probe
			// goes; probe outside the map lock so backend I/O (a disk read)
			// never serializes unrelated keys.
			cl = &call{done: make(chan struct{})}
			c.inflight[key] = cl
			c.mu.Unlock()
			_, gs := obs.Start(ctx, "store.get")
			val, ok := c.be.Get(key)
			gs.Set(obs.Bool("hit", ok))
			gs.End()
			if ok {
				c.mu.Lock()
				c.stats.Hits++
				c.mu.Unlock()
				cl.val = val
				c.finish(ctx, key, cl, false) // already stored
				span.Set(obs.String("role", "stored"), obs.Bool("hit", true))
				span.End()
				return val, true, nil
			}
			c.mu.Lock()
			c.stats.Misses++
			c.mu.Unlock()
			break
		}
		if !coalesced {
			c.stats.Coalesced++
			coalesced = true
		}
		c.mu.Unlock()
		select {
		case <-waiting.done:
			if isContextErr(waiting.err) && ctx.Err() == nil {
				continue // the leader's cancellation, not ours: retry
			}
			span.Set(obs.String("role", "waiter"), obs.Bool("hit", true))
			span.End()
			return waiting.val, true, waiting.err
		case <-ctx.Done():
			span.Set(obs.String("role", "waiter"), obs.Bool("hit", false), obs.String("error", ctx.Err().Error()))
			span.End()
			return nil, false, ctx.Err()
		}
	}

	// The call must always resolve, even if compute panics — a leaked
	// in-flight entry would hang every future caller of this key.
	completed := false
	defer func() {
		if !completed {
			cl.err = fmt.Errorf("cache: compute for %q panicked", key)
			c.finish(ctx, key, cl, false)
			span.Set(obs.String("role", "leader"), obs.Bool("hit", false))
			span.End()
		}
	}()
	cl.val, cl.err = compute()
	completed = true
	c.finish(ctx, key, cl, cl.err == nil)
	span.Set(obs.String("role", "leader"), obs.Bool("hit", false))
	span.End()
	return cl.val, false, cl.err
}

// isContextErr reports whether err is a context cancellation or deadline
// failure — the error class that belongs to one caller rather than to the
// computation itself.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// finish publishes a completed call: stores the value on success, removes
// the in-flight marker and releases the waiters. The value lands in the
// backend before the in-flight marker goes, so no caller can observe
// neither. ctx is for tracing only — the publish itself must not be
// cancellable.
func (c *Cache) finish(ctx context.Context, key string, cl *call, storeVal bool) {
	if storeVal {
		_, ps := obs.Start(ctx, "store.put", obs.Int("bytes", len(cl.val)))
		c.be.Put(key, cl.val)
		ps.End()
	}
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(cl.done)
}

// Len returns the current number of stored entries.
func (c *Cache) Len() int { return c.be.Len() }

// Stats returns a snapshot of the cache counters: the backend's
// size/capacity/evictions merged with this layer's hits/misses/coalesced.
func (c *Cache) Stats() Stats {
	s := c.be.Stats()
	c.mu.Lock()
	s.Hits = c.stats.Hits
	s.Misses = c.stats.Misses
	s.Coalesced = c.stats.Coalesced
	c.mu.Unlock()
	return s
}
