package energy

import (
	"context"
	"errors"
	"testing"

	"hybridpart/internal/analysis"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
	"hybridpart/internal/lower"
	"hybridpart/internal/platform"
)

const hotSrc = `
int data[2048];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < 2048; i++) { data[i] = i * 3 + 1; }
    for (i = 0; i < n; i++) {
        int j;
        for (j = 0; j < 2048; j++) {
            s += data[j] * j + (data[j] >> 2) * (j + 1) + (data[j] & j) * (j - 3);
        }
    }
    return s;
}`

type testApp struct {
	prog  *ir.Program
	fn    *ir.Function
	rep   *analysis.Report
	freq  []uint64
	edges []finegrain.EdgeFreq
}

func prepare(t *testing.T, src, entry string, args ...interp.Arg) testApp {
	t.Helper()
	prog, err := lower.LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lower.Flatten(prog, entry)
	if err != nil {
		t.Fatal(err)
	}
	fp := ir.NewProgram()
	fp.Globals = prog.Globals
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	m := interp.New(fp)
	prof := m.EnableProfile()
	if _, err := m.Run(entry, args...); err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(flat, prof.Counts[entry], analysis.DefaultWeights())
	freq := make([]uint64, len(flat.Blocks))
	copy(freq, prof.Counts[entry])
	var edges []finegrain.EdgeFreq
	for k, n := range prof.Edges[entry] {
		edges = append(edges, finegrain.EdgeFreq{From: k.From(), To: k.To(), N: n})
	}
	return testApp{prog: fp, fn: flat, rep: rep, freq: freq, edges: edges}
}

func TestEvaluateAllFineVsAllMoved(t *testing.T) {
	a := prepare(t, hotSrc, "f", interp.Int(4))
	plat := platform.Paper(1500, 2)
	costs := DefaultCosts()

	base, err := Evaluate(a.fn, a.freq, map[ir.BlockID]bool{}, plat, costs, a.edges)
	if err != nil {
		t.Fatal(err)
	}
	if base.Coarse != 0 || base.Comm != 0 {
		t.Fatalf("all-FPGA breakdown has coarse/comm energy: %+v", base)
	}
	if base.Fine <= 0 {
		t.Fatal("no fine-grain energy")
	}

	// Move the hottest kernel: fine energy must drop, coarse+comm appear.
	moved := map[ir.BlockID]bool{a.rep.Kernels[0]: true}
	after, err := Evaluate(a.fn, a.freq, moved, plat, costs, a.edges)
	if err != nil {
		t.Fatal(err)
	}
	if after.Fine >= base.Fine {
		t.Fatalf("fine energy did not drop: %f >= %f", after.Fine, base.Fine)
	}
	if after.Coarse <= 0 || after.Comm <= 0 {
		t.Fatalf("moved kernel shows no coarse/comm energy: %+v", after)
	}
	// With a 5x per-op gap the move must reduce total energy for this
	// multiply-heavy kernel.
	if after.Total() >= base.Total() {
		t.Fatalf("move increased energy: %f >= %f", after.Total(), base.Total())
	}
}

func TestPartitionMeetsBudget(t *testing.T) {
	a := prepare(t, hotSrc, "f", interp.Int(4))
	cfg := Config{
		Platform: platform.Paper(1500, 2),
		Costs:    DefaultCosts(),
		Edges:    a.edges,
	}
	// First find the achievable range.
	cfg.Budget = 1e18
	loose, err := Partition(context.Background(), a.prog, a.fn, a.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Met || len(loose.Moved) != 0 {
		t.Fatalf("loose budget mishandled: %+v", loose)
	}

	cfg.Budget = loose.InitialEnergy * 0.7
	res, err := Partition(context.Background(), a.prog, a.fn, a.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("70%% budget not met: final %f initial %f", res.FinalEnergy, res.InitialEnergy)
	}
	if len(res.Moved) == 0 {
		t.Fatal("no kernels moved")
	}
	if res.FinalEnergy > cfg.Budget {
		t.Fatalf("final energy %f exceeds budget %f despite Met", res.FinalEnergy, cfg.Budget)
	}
	if res.ReductionPct() <= 0 {
		t.Fatalf("no energy reduction: %f%%", res.ReductionPct())
	}
}

func TestPartitionImpossibleBudget(t *testing.T) {
	a := prepare(t, hotSrc, "f", interp.Int(4))
	res, err := Partition(context.Background(), a.prog, a.fn, a.rep, Config{
		Platform: platform.Paper(1500, 2),
		Costs:    DefaultCosts(),
		Budget:   1, // unreachable
		Edges:    a.edges,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("impossible budget reported met")
	}
	if len(res.Moved) == 0 {
		t.Fatal("engine gave up without trying kernels")
	}
}

func TestConfigValidation(t *testing.T) {
	a := prepare(t, hotSrc, "f", interp.Int(1))
	if _, err := Partition(context.Background(), a.prog, a.fn, a.rep, Config{
		Platform: platform.Default(), Costs: DefaultCosts(), Budget: 0,
	}); err == nil {
		t.Fatal("zero budget accepted")
	}
	bad := DefaultCosts()
	bad.FineMul = -1
	if _, err := Partition(context.Background(), a.prog, a.fn, a.rep, Config{
		Platform: platform.Default(), Costs: bad, Budget: 100,
	}); err == nil {
		t.Fatal("negative cost accepted")
	}
	zero := DefaultCosts()
	zero.CoarseALU = 0
	if err := zero.Validate(); err == nil {
		t.Fatal("zero ALU energy accepted")
	}
}

func TestDivisionKernelSkipped(t *testing.T) {
	src := `
int data[64];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) {
        int j;
        for (j = 1; j <= 64; j++) { s += data[j - 1] / j; }
    }
    return s;
}`
	a := prepare(t, src, "f", interp.Int(50))
	res, err := Partition(context.Background(), a.prog, a.fn, a.rep, Config{
		Platform: platform.Paper(1500, 2),
		Costs:    DefaultCosts(),
		Budget:   1,
		Edges:    a.edges,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmappable) == 0 {
		t.Fatal("division kernel not skipped")
	}
}

func TestContextCancellationAndOnMove(t *testing.T) {
	a := prepare(t, hotSrc, "f", interp.Int(4))
	cfg := Config{
		Platform: platform.Paper(1500, 2),
		Costs:    DefaultCosts(),
		Edges:    a.edges,
	}

	// Pre-cancelled: the engine must not start.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Budget = 1
	if _, err := Partition(dead, a.prog, a.fn, a.rep, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// The OnMove stream matches the recorded moves, and cancelling from
	// the hook stops the trajectory.
	var hooked []Move
	cfg.Budget = 1 // unreachable: every candidate would move
	cfg.OnMove = func(m Move) { hooked = append(hooked, m) }
	res, err := Partition(context.Background(), a.prog, a.fn, a.rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked) != len(res.Moved) {
		t.Fatalf("%d hook calls for %d moves", len(hooked), len(res.Moved))
	}
	for i, m := range hooked {
		if m.Block != res.Moved[i] {
			t.Fatalf("hook %d reported block %d, moved %d", i, m.Block, res.Moved[i])
		}
	}
	if hooked[len(hooked)-1].EnergyAfter != res.FinalEnergy {
		t.Fatal("last hook energy != final energy")
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	calls := 0
	cfg.OnMove = func(Move) { calls++; cancelMid() }
	if _, err := Partition(ctx, a.prog, a.fn, a.rep, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("engine kept moving after cancellation: %d moves", calls)
	}
}
