// Package energy implements the paper's stated future work: "partitioning
// an application for satisfying energy consumption constraints". It models
// per-operation dynamic energy on both fabrics, reconfiguration energy and
// shared-memory transfer energy, and provides an energy-constrained variant
// of the partitioning engine that moves kernels (in the same eq. 1 order)
// until an energy budget is met.
package energy

import (
	"context"
	"errors"
	"fmt"

	"hybridpart/internal/analysis"
	"hybridpart/internal/coarsegrain"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/partition"
	"hybridpart/internal/platform"
)

// Costs characterizes energy per event, in arbitrary consistent units
// (think pJ). Word-level operators realized in ASIC consume a fraction of
// their FPGA equivalents — the energy argument for coarse-grain fabrics.
type Costs struct {
	// Per-operation dynamic energy on the fine-grain (FPGA) fabric.
	FineALU float64
	FineMul float64
	FineDiv float64
	FineMem float64

	// Per-operation dynamic energy on the coarse-grain data-path.
	CoarseALU float64
	CoarseMul float64
	CoarseMem float64

	// Reconfig is the energy of one full FPGA reconfiguration.
	Reconfig float64
	// CommPerWord and Sync price shared-memory transfers between fabrics.
	CommPerWord float64
	Sync        float64
}

// DefaultCosts returns a characterization with the commonly cited ~5×
// FPGA-vs-ASIC dynamic energy gap and an expensive full reconfiguration.
func DefaultCosts() Costs {
	return Costs{
		FineALU: 5, FineMul: 20, FineDiv: 60, FineMem: 8,
		CoarseALU: 1, CoarseMul: 4, CoarseMem: 2,
		Reconfig: 5000, CommPerWord: 3, Sync: 6,
	}
}

// Validate checks the characterization for physical sanity.
func (c Costs) Validate() error {
	for _, v := range []float64{
		c.FineALU, c.FineMul, c.FineDiv, c.FineMem,
		c.CoarseALU, c.CoarseMul, c.CoarseMem,
		c.Reconfig, c.CommPerWord, c.Sync,
	} {
		if v < 0 {
			return errors.New("energy: negative cost")
		}
	}
	if c.FineALU == 0 || c.CoarseALU == 0 {
		return errors.New("energy: zero ALU energy")
	}
	return nil
}

func (c Costs) fineOp(op ir.Op) float64 {
	switch ir.ClassOf(op) {
	case ir.ClassMul:
		return c.FineMul
	case ir.ClassDiv:
		return c.FineDiv
	case ir.ClassMem:
		return c.FineMem
	case ir.ClassCall:
		return 0
	default:
		return c.FineALU
	}
}

func (c Costs) coarseOp(op ir.Op) float64 {
	switch ir.ClassOf(op) {
	case ir.ClassMul:
		return c.CoarseMul
	case ir.ClassMem:
		return c.CoarseMem
	default:
		return c.CoarseALU
	}
}

// Breakdown decomposes the application energy by source.
type Breakdown struct {
	Fine     float64 // dynamic energy of FPGA-resident blocks
	Coarse   float64 // dynamic energy of moved kernels
	Reconfig float64 // FPGA reconfiguration energy
	Comm     float64 // fabric-to-fabric transfers
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Fine + b.Coarse + b.Reconfig + b.Comm }

// Config parameterizes an energy-constrained partitioning run.
type Config struct {
	Platform platform.Platform
	Costs    Costs
	// Budget is the energy constraint (same units as Costs).
	Budget float64
	// Order selects the kernel ordering (eq. 1 by default).
	Order analysis.KernelOrder
	// Edges carries the profiled transition counts for the reconfiguration
	// model.
	Edges []finegrain.EdgeFreq
	// OnMove, when non-nil, is called synchronously after every accepted
	// kernel move with the move just recorded, in trajectory order.
	OnMove func(Move)
}

// Move records one accepted kernel move and the system energy after it.
type Move struct {
	Block ir.BlockID
	// EnergyAfter is the total application energy after this move.
	EnergyAfter float64
}

// Result reports an energy-constrained partitioning outcome.
type Result struct {
	InitialEnergy float64 // all-FPGA
	FinalEnergy   float64
	Initial       Breakdown
	Final         Breakdown
	Moved         []ir.BlockID
	Unmappable    []ir.BlockID
	Met           bool
	Budget        float64
}

// ReductionPct returns the % energy reduction over the all-FPGA mapping.
func (r *Result) ReductionPct() float64 {
	if r.InitialEnergy == 0 {
		return 0
	}
	return 100 * (r.InitialEnergy - r.FinalEnergy) / r.InitialEnergy
}

// Evaluate computes the energy breakdown of a given fine/coarse assignment
// (moved[b] = true means block b executes on the coarse-grain data-path).
func Evaluate(f *ir.Function, freq []uint64, moved map[ir.BlockID]bool,
	plat platform.Platform, costs Costs, edges []finegrain.EdgeFreq) (Breakdown, error) {
	var bd Breakdown
	pm, err := finegrain.PackFunction(f, plat.Fine, func(id ir.BlockID) bool { return !moved[id] })
	if err != nil {
		return bd, err
	}
	bd.Reconfig = float64(pm.Crossings(freq, edges)) * costs.Reconfig
	liveIO := partition.ComputeLiveIO(f)
	for _, b := range f.Blocks {
		var n uint64
		if int(b.ID) < len(freq) {
			n = freq[b.ID]
		}
		if n == 0 {
			continue
		}
		var perExec float64
		if moved[b.ID] {
			for i := range b.Instrs {
				perExec += costs.coarseOp(b.Instrs[i].Op)
			}
			bd.Coarse += perExec * float64(n)
			io := liveIO[b.ID]
			bd.Comm += float64(n) * (float64(io.In+io.Out)*costs.CommPerWord + costs.Sync)
		} else {
			for i := range b.Instrs {
				perExec += costs.fineOp(b.Instrs[i].Op)
			}
			bd.Fine += perExec * float64(n)
		}
	}
	return bd, nil
}

// Partition runs the energy-constrained engine: kernels move one by one (in
// analysis order) to the coarse-grain data-path until the energy budget is
// met. Kernels the data-path cannot execute are skipped. The context is
// checked between moves; cancelling it returns ctx.Err(). A nil ctx means
// context.Background().
func Partition(ctx context.Context, prog *ir.Program, f *ir.Function, rep *analysis.Report, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("energy: budget must be positive, got %g", cfg.Budget)
	}
	if rep == nil || len(rep.Blocks) != len(f.Blocks) {
		return nil, fmt.Errorf("energy: analysis report does not match function")
	}
	freq := make([]uint64, len(f.Blocks))
	for i := range rep.Blocks {
		freq[i] = rep.Blocks[i].Freq
	}

	moved := map[ir.BlockID]bool{}
	initial, err := Evaluate(f, freq, moved, cfg.Platform, cfg.Costs, cfg.Edges)
	if err != nil {
		return nil, err
	}
	res := &Result{
		InitialEnergy: initial.Total(),
		FinalEnergy:   initial.Total(),
		Initial:       initial,
		Final:         initial,
		Budget:        cfg.Budget,
	}
	if res.InitialEnergy <= cfg.Budget {
		res.Met = true
		return res, nil
	}

	arrLen := coarsegrain.ArrLenOf(prog, f)
	for _, k := range analysis.OrderKernels(rep, cfg.Order) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		blk := f.Block(k)
		if _, err := coarsegrain.MapDFG(ir.BuildDFG(f, blk), cfg.Platform.Coarse, arrLen); err != nil {
			if errors.Is(err, coarsegrain.ErrUnmappable) {
				res.Unmappable = append(res.Unmappable, k)
				continue
			}
			return nil, err
		}
		moved[k] = true
		res.Moved = append(res.Moved, k)
		bd, err := Evaluate(f, freq, moved, cfg.Platform, cfg.Costs, cfg.Edges)
		if err != nil {
			return nil, err
		}
		res.Final = bd
		res.FinalEnergy = bd.Total()
		if cfg.OnMove != nil {
			cfg.OnMove(Move{Block: k, EnergyAfter: res.FinalEnergy})
		}
		if res.FinalEnergy <= cfg.Budget {
			res.Met = true
			return res, nil
		}
	}
	return res, nil
}
