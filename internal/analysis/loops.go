package analysis

import (
	"sort"

	"hybridpart/internal/ir"
)

// Loop is a natural loop: the target of one or more back edges plus every
// block that can reach those back edges without passing the header.
type Loop struct {
	Header ir.BlockID
	// Blocks is the loop body including the header, sorted by ID.
	Blocks []ir.BlockID
	// Parent is the index (into LoopForest.Loops) of the innermost enclosing
	// loop, or -1 for top-level loops.
	Parent int
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b ir.BlockID) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i] >= b })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// LoopForest is the set of natural loops of one function with per-block
// nesting depths. Kernels — the paper's critical basic blocks — live at
// depth ≥ 1.
type LoopForest struct {
	Loops []Loop
	// Depth[b] is the loop nesting depth of block b (0 = not in any loop).
	Depth []int
}

// FindLoops detects the natural loops of f using its dominator tree.
func FindLoops(f *ir.Function, dom *Dominators) *LoopForest {
	f.RecomputeEdges()
	bodies := map[ir.BlockID]map[ir.BlockID]bool{} // header -> body set

	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for _, h := range b.Succs {
			if !dom.Dominates(h, b.ID) {
				continue // not a back edge
			}
			body := bodies[h]
			if body == nil {
				body = map[ir.BlockID]bool{h: true}
				bodies[h] = body
			}
			// Reverse flood fill from the latch, stopping at the header.
			stack := []ir.BlockID{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				stack = append(stack, f.Blocks[x].Preds...)
			}
		}
	}

	lf := &LoopForest{Depth: make([]int, len(f.Blocks))}
	headers := make([]ir.BlockID, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i] < headers[j] })
	for _, h := range headers {
		var blocks []ir.BlockID
		for b := range bodies[h] {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		lf.Loops = append(lf.Loops, Loop{Header: h, Blocks: blocks, Parent: -1})
		for _, b := range blocks {
			lf.Depth[b]++
		}
	}

	// Nesting: loop i's parent is the smallest enclosing loop j ≠ i whose
	// body contains i's header and is a superset.
	for i := range lf.Loops {
		best, bestSize := -1, 1<<30
		for j := range lf.Loops {
			if i == j {
				continue
			}
			if len(lf.Loops[j].Blocks) <= len(lf.Loops[i].Blocks) {
				continue
			}
			if !lf.Loops[j].Contains(lf.Loops[i].Header) {
				continue
			}
			if len(lf.Loops[j].Blocks) < bestSize {
				best, bestSize = j, len(lf.Loops[j].Blocks)
			}
		}
		lf.Loops[i].Parent = best
	}
	return lf
}

// InAnyLoop reports whether b belongs to at least one natural loop.
func (lf *LoopForest) InAnyLoop(b ir.BlockID) bool {
	return int(b) < len(lf.Depth) && lf.Depth[b] > 0
}
