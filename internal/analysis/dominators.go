// Package analysis implements step 3 of the partitioning methodology: the
// combination of static analysis (weighted operation counts inside each
// basic block) and dynamic analysis (basic-block execution frequencies from
// profiling) that identifies and orders the application's kernels —
// eq. (1) of the paper, total_weight = exec_freq × bb_weight.
package analysis

import "hybridpart/internal/ir"

// Dominators holds the immediate-dominator tree of a function's CFG,
// computed with the Cooper–Harvey–Kennedy iterative algorithm.
type Dominators struct {
	fn *ir.Function
	// idom[b] is the immediate dominator of block b (idom[entry] = entry);
	// NoBlock for unreachable blocks.
	idom []ir.BlockID
	// rpo numbers blocks in reverse postorder; -1 for unreachable.
	rpoIndex []int
}

// ComputeDominators builds the dominator tree of f. Edge lists are
// recomputed first so callers need not keep them current.
func ComputeDominators(f *ir.Function) *Dominators {
	f.RecomputeEdges()
	n := len(f.Blocks)
	d := &Dominators{
		fn:       f,
		idom:     make([]ir.BlockID, n),
		rpoIndex: make([]int, n),
	}
	for i := range d.idom {
		d.idom[i] = ir.NoBlock
		d.rpoIndex[i] = -1
	}

	// Postorder DFS from the entry.
	var post []ir.BlockID
	seen := make([]bool, n)
	var dfs func(id ir.BlockID)
	dfs = func(id ir.BlockID) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, s := range f.Blocks[id].Succs {
			dfs(s)
		}
		post = append(post, id)
	}
	dfs(f.Entry)
	// Reverse postorder and index.
	rpo := make([]ir.BlockID, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	for i, b := range rpo {
		d.rpoIndex[b] = i
	}

	intersect := func(a, b ir.BlockID) ir.BlockID {
		for a != b {
			for d.rpoIndex[a] > d.rpoIndex[b] {
				a = d.idom[a]
			}
			for d.rpoIndex[b] > d.rpoIndex[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	d.idom[f.Entry] = f.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom ir.BlockID = ir.NoBlock
			for _, p := range f.Blocks[b].Preds {
				if d.idom[p] == ir.NoBlock {
					continue // unprocessed or unreachable
				}
				if newIdom == ir.NoBlock {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != ir.NoBlock && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// IDom returns the immediate dominator of b (entry's idom is itself);
// NoBlock for unreachable blocks.
func (d *Dominators) IDom(b ir.BlockID) ir.BlockID { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b ir.BlockID) bool {
	if d.idom[b] == ir.NoBlock {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// Reachable reports whether b is reachable from the entry.
func (d *Dominators) Reachable(b ir.BlockID) bool { return d.idom[b] != ir.NoBlock }
