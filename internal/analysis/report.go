package analysis

import (
	"fmt"
	"sort"
	"strings"

	"hybridpart/internal/ir"
)

// Weights assigns the static complexity weight of each operation class —
// "the delay allocated to each basic operator". The paper uses ALU = 1 and
// MUL = 2 for the benchmark kernels and counts memory accesses as basic
// operations; the remaining entries cover constructs absent from the
// published DFGs.
type Weights struct {
	ALU int64
	Mul int64
	Div int64
	Mem int64
	// Call weighs un-inlined call instructions; the standard flow inlines
	// everything first, so this is normally unused.
	Call int64
}

// DefaultWeights returns the paper's weight assignment.
func DefaultWeights() Weights {
	return Weights{ALU: 1, Mul: 2, Div: 4, Mem: 1, Call: 0}
}

// Of returns the weight of a single operation.
func (w Weights) Of(op ir.Op) int64 {
	switch ir.ClassOf(op) {
	case ir.ClassMul:
		return w.Mul
	case ir.ClassDiv:
		return w.Div
	case ir.ClassMem:
		return w.Mem
	case ir.ClassCall:
		return w.Call
	default:
		return w.ALU
	}
}

// BlockWeight computes the static weight of one basic block (bb_weight in
// eq. 1): the weighted sum of its operations.
func BlockWeight(b *ir.Block, w Weights) int64 {
	var sum int64
	for i := range b.Instrs {
		sum += w.Of(b.Instrs[i].Op)
	}
	return sum
}

// BlockInfo aggregates the analysis results for one basic block.
type BlockInfo struct {
	ID   ir.BlockID
	Name string

	// Freq is the dynamic execution count of the block (exec_freq).
	Freq uint64
	// OpWeight is the static weighted operation count (bb_weight).
	OpWeight int64
	// TotalWeight = Freq × OpWeight (eq. 1).
	TotalWeight int64

	// Ops, MulOps, MemOps count the block's instructions by class.
	Ops    int
	MulOps int
	MemOps int

	// InLoop and Depth describe the block's loop context; kernels must sit
	// inside loops.
	InLoop bool
	Depth  int
}

// Report is the full analysis result for one function: the input the
// partitioning engine consumes.
type Report struct {
	Func   string
	Blocks []BlockInfo
	// Kernels lists the critical basic blocks — blocks inside loops with
	// nonzero total weight — in decreasing order of total weight.
	Kernels []ir.BlockID
}

// Block returns the info record for block id (nil if out of range).
func (r *Report) Block(id ir.BlockID) *BlockInfo {
	if int(id) >= len(r.Blocks) {
		return nil
	}
	return &r.Blocks[id]
}

// TopKernels returns up to n kernels in analysis order.
func (r *Report) TopKernels(n int) []ir.BlockID {
	if n > len(r.Kernels) {
		n = len(r.Kernels)
	}
	return r.Kernels[:n]
}

// Analyze runs the full analysis step on f: static weights per block, the
// dynamic frequencies in freq (indexed by BlockID; missing entries count as
// zero), loop detection, eq. 1 totals and kernel ordering.
func Analyze(f *ir.Function, freq []uint64, w Weights) *Report {
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)

	r := &Report{Func: f.Name}
	for _, b := range f.Blocks {
		info := BlockInfo{
			ID:       b.ID,
			Name:     b.Name,
			OpWeight: BlockWeight(b, w),
			InLoop:   loops.InAnyLoop(b.ID),
			Depth:    loops.Depth[b.ID],
			Ops:      len(b.Instrs),
		}
		for i := range b.Instrs {
			switch ir.ClassOf(b.Instrs[i].Op) {
			case ir.ClassMul:
				info.MulOps++
			case ir.ClassMem:
				info.MemOps++
			}
		}
		if int(b.ID) < len(freq) {
			info.Freq = freq[b.ID]
		}
		info.TotalWeight = int64(info.Freq) * info.OpWeight
		r.Blocks = append(r.Blocks, info)
	}
	r.Kernels = OrderKernels(r, OrderByTotalWeight)
	return r
}

// KernelOrder selects the ordering strategy for candidate kernels. The
// paper orders by eq. 1 total weight; the alternatives exist for the
// ablation benches.
type KernelOrder uint8

// Kernel ordering strategies.
const (
	// OrderByTotalWeight is the paper's ordering: exec_freq × bb_weight.
	OrderByTotalWeight KernelOrder = iota
	// OrderByFreq orders by raw execution frequency.
	OrderByFreq
	// OrderByOpWeight orders by static weight only.
	OrderByOpWeight
)

func (k KernelOrder) String() string {
	switch k {
	case OrderByTotalWeight:
		return "total-weight"
	case OrderByFreq:
		return "frequency"
	case OrderByOpWeight:
		return "op-weight"
	}
	return fmt.Sprintf("order(%d)", uint8(k))
}

// OrderKernels extracts and orders the candidate kernels of r: blocks inside
// loops whose ordering key is positive, sorted descending (ties by block ID
// for determinism).
func OrderKernels(r *Report, order KernelOrder) []ir.BlockID {
	key := func(b *BlockInfo) int64 {
		switch order {
		case OrderByFreq:
			return int64(b.Freq)
		case OrderByOpWeight:
			return b.OpWeight
		default:
			return b.TotalWeight
		}
	}
	var ids []ir.BlockID
	for i := range r.Blocks {
		b := &r.Blocks[i]
		if b.InLoop && key(b) > 0 && b.TotalWeight > 0 {
			ids = append(ids, b.ID)
		}
	}
	sort.SliceStable(ids, func(i, j int) bool {
		ki, kj := key(r.Block(ids[i])), key(r.Block(ids[j]))
		if ki != kj {
			return ki > kj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// FormatTable renders the top-n kernel rows in the layout of the paper's
// Table 1: block number, execution frequency, operation weight, total
// weight, in decreasing order of total weight.
func (r *Report) FormatTable(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-15s %-17s %-12s\n", "Basic", "Basic Block", "Operations", "Total")
	fmt.Fprintf(&sb, "%-10s %-15s %-17s %-12s\n", "Block no.", "exec. freq.", "weight", "weight")
	for _, id := range r.TopKernels(n) {
		b := r.Block(id)
		fmt.Fprintf(&sb, "%-10d %-15d %-17d %-12d\n", b.ID, b.Freq, b.OpWeight, b.TotalWeight)
	}
	return sb.String()
}
