package analysis

import (
	"strings"
	"testing"

	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
	"hybridpart/internal/lower"
)

// compileAndProfile lowers src, flattens entry, runs it with args and
// returns the flat function plus its block frequencies.
func compileAndProfile(t *testing.T, src, entry string, args ...interp.Arg) (*ir.Function, []uint64) {
	t.Helper()
	prog, err := lower.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	flat, err := lower.Flatten(prog, entry)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	fp := ir.NewProgram()
	fp.Globals = prog.Globals
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	m := interp.New(fp)
	prof := m.EnableProfile()
	if _, err := m.Run(entry, args...); err != nil {
		t.Fatalf("run: %v", err)
	}
	return flat, prof.Counts[entry]
}

const nestedLoopSrc = `
int work(int n) {
    int s = 0;
    int i;
    int j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            s += i * j + (i ^ j);
        }
    }
    if (s > 100) { s -= 100; }
    return s;
}`

func TestDominators(t *testing.T) {
	f, _ := compileAndProfile(t, nestedLoopSrc, "work", interp.Int(4))
	dom := ComputeDominators(f)
	// Entry dominates everything reachable.
	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		if !dom.Dominates(f.Entry, b.ID) {
			t.Errorf("entry does not dominate b%d", b.ID)
		}
		if !dom.Dominates(b.ID, b.ID) {
			t.Errorf("b%d does not dominate itself", b.ID)
		}
	}
	if dom.IDom(f.Entry) != f.Entry {
		t.Errorf("IDom(entry) = %d", dom.IDom(f.Entry))
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// Hand-built diamond: 0 -> 1,2 -> 3. IDom(3) must be 0.
	f := ir.NewFunction("d")
	c := f.NewReg("")
	b0 := f.Block(f.Entry)
	b1 := f.AddBlock("then")
	b2 := f.AddBlock("else")
	b3 := f.AddBlock("join")
	b0.Instrs = []ir.Instr{{Op: ir.OpConst, Dst: c, A: ir.Imm(1)}}
	b0.Term = ir.Terminator{Kind: ir.TermBranch, Cond: ir.Reg(c), Then: b1.ID, Else: b2.ID}
	b1.Term = ir.Terminator{Kind: ir.TermJump, Then: b3.ID}
	b2.Term = ir.Terminator{Kind: ir.TermJump, Then: b3.ID}
	b3.Term = ir.Terminator{Kind: ir.TermReturn}
	dom := ComputeDominators(f)
	if got := dom.IDom(b3.ID); got != b0.ID {
		t.Fatalf("IDom(join) = b%d, want b%d", got, b0.ID)
	}
	if dom.Dominates(b1.ID, b3.ID) || dom.Dominates(b2.ID, b3.ID) {
		t.Fatal("branch arm wrongly dominates join")
	}
}

func TestLoopDetectionNested(t *testing.T) {
	f, _ := compileAndProfile(t, nestedLoopSrc, "work", interp.Int(4))
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	if len(loops.Loops) != 2 {
		t.Fatalf("found %d loops, want 2:\n%s", len(loops.Loops), f)
	}
	// One loop must nest inside the other.
	var inner, outer *Loop
	for i := range loops.Loops {
		if loops.Loops[i].Parent >= 0 {
			inner = &loops.Loops[i]
		} else {
			outer = &loops.Loops[i]
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("nesting not detected: %+v", loops.Loops)
	}
	if len(outer.Blocks) <= len(inner.Blocks) {
		t.Fatalf("outer loop (%d blocks) not larger than inner (%d)", len(outer.Blocks), len(inner.Blocks))
	}
	// Depth 2 exists (innermost body).
	max := 0
	for _, d := range loops.Depth {
		if d > max {
			max = d
		}
	}
	if max != 2 {
		t.Fatalf("max loop depth = %d, want 2", max)
	}
}

func TestLoopDetectionWhileAndDo(t *testing.T) {
	src := `
int f(int n) {
    int c = 0;
    while (n > 0) { n--; c++; }
    do { c += 2; } while (c < 10);
    return c;
}`
	f, _ := compileAndProfile(t, src, "f", interp.Int(3))
	loops := FindLoops(f, ComputeDominators(f))
	if len(loops.Loops) != 2 {
		t.Fatalf("found %d loops, want 2:\n%s", len(loops.Loops), f)
	}
	for i := range loops.Loops {
		if loops.Loops[i].Parent != -1 {
			t.Errorf("loop %d wrongly nested", i)
		}
	}
}

func TestBlockWeightMatchesPaperWeights(t *testing.T) {
	// a*b + c: one mul (2), one add (1) = 3; plus loads if arrays involved.
	f := ir.NewFunction("w")
	r0, r1, r2, r3, r4 := f.NewReg(""), f.NewReg(""), f.NewReg(""), f.NewReg(""), f.NewReg("")
	b := f.Block(f.Entry)
	arr := f.AddArray(ir.ArrayDecl{Name: "m", Len: 4})
	b.Instrs = []ir.Instr{
		{Op: ir.OpMul, Dst: r2, A: ir.Reg(r0), B: ir.Reg(r1)},
		{Op: ir.OpAdd, Dst: r3, A: ir.Reg(r2), B: ir.Imm(1)},
		{Op: ir.OpLoad, Dst: r4, A: ir.Imm(0), Arr: arr},
	}
	w := DefaultWeights()
	if got := BlockWeight(b, w); got != 2+1+1 {
		t.Fatalf("BlockWeight = %d, want 4", got)
	}
}

func TestAnalyzeKernelOrdering(t *testing.T) {
	f, freq := compileAndProfile(t, nestedLoopSrc, "work", interp.Int(8))
	r := Analyze(f, freq, DefaultWeights())
	if len(r.Kernels) == 0 {
		t.Fatal("no kernels found")
	}
	// Kernels must be inside loops and sorted by descending total weight.
	prev := int64(1 << 62)
	for _, id := range r.Kernels {
		b := r.Block(id)
		if !b.InLoop {
			t.Errorf("kernel b%d not in a loop", id)
		}
		if b.TotalWeight > prev {
			t.Errorf("kernel order violated at b%d (%d > %d)", id, b.TotalWeight, prev)
		}
		prev = b.TotalWeight
	}
	// The innermost body (freq 64) must rank first.
	top := r.Block(r.Kernels[0])
	if top.Freq != 64 {
		t.Errorf("top kernel freq = %d, want 64 (8x8 inner body)", top.Freq)
	}
	// Eq. 1 holds for every block.
	for _, b := range r.Blocks {
		if b.TotalWeight != int64(b.Freq)*b.OpWeight {
			t.Errorf("b%d: total %d != freq %d * weight %d", b.ID, b.TotalWeight, b.Freq, b.OpWeight)
		}
	}
}

func TestOrderKernelsStrategies(t *testing.T) {
	r := &Report{
		Func: "x",
		Blocks: []BlockInfo{
			{ID: 0, Freq: 100, OpWeight: 1, TotalWeight: 100, InLoop: true},
			{ID: 1, Freq: 10, OpWeight: 50, TotalWeight: 500, InLoop: true},
			{ID: 2, Freq: 1000, OpWeight: 0, TotalWeight: 0, InLoop: true},
			{ID: 3, Freq: 9999, OpWeight: 9999, TotalWeight: 99990001, InLoop: false},
		},
	}
	byTotal := OrderKernels(r, OrderByTotalWeight)
	if len(byTotal) != 2 || byTotal[0] != 1 || byTotal[1] != 0 {
		t.Fatalf("byTotal = %v, want [1 0]", byTotal)
	}
	byFreq := OrderKernels(r, OrderByFreq)
	if len(byFreq) != 2 || byFreq[0] != 0 || byFreq[1] != 1 {
		t.Fatalf("byFreq = %v, want [0 1]", byFreq)
	}
	byOp := OrderKernels(r, OrderByOpWeight)
	if len(byOp) != 2 || byOp[0] != 1 {
		t.Fatalf("byOp = %v, want [1 0]", byOp)
	}
}

func TestFormatTable(t *testing.T) {
	f, freq := compileAndProfile(t, nestedLoopSrc, "work", interp.Int(4))
	r := Analyze(f, freq, DefaultWeights())
	out := r.FormatTable(8)
	if !strings.Contains(out, "Total") || len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestAnalyzeZeroFreqBlocksAreNotKernels(t *testing.T) {
	// A loop that never executes must not produce kernels.
	src := `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) { s += i; }
    return s;
}`
	f, freq := compileAndProfile(t, src, "f", interp.Int(0))
	r := Analyze(f, freq, DefaultWeights())
	for _, id := range r.Kernels {
		if r.Block(id).Freq == 0 {
			t.Errorf("zero-frequency block b%d reported as kernel", id)
		}
	}
}

func TestIrreducibleSafety(t *testing.T) {
	// Hand-built irreducible CFG (two entries into a cycle): the analysis
	// must terminate and not report bogus dominance.
	f := ir.NewFunction("irr")
	c := f.NewReg("")
	b0 := f.Block(f.Entry)
	b1 := f.AddBlock("a")
	b2 := f.AddBlock("b")
	b0.Instrs = []ir.Instr{{Op: ir.OpConst, Dst: c, A: ir.Imm(1)}}
	b0.Term = ir.Terminator{Kind: ir.TermBranch, Cond: ir.Reg(c), Then: b1.ID, Else: b2.ID}
	b1.Term = ir.Terminator{Kind: ir.TermJump, Then: b2.ID}
	b2.Term = ir.Terminator{Kind: ir.TermBranch, Cond: ir.Reg(c), Then: b1.ID, Else: b1.ID}
	dom := ComputeDominators(f)
	if dom.Dominates(b1.ID, b2.ID) && dom.Dominates(b2.ID, b1.ID) {
		t.Fatal("mutual dominance in irreducible CFG")
	}
	// Loop detection must also terminate.
	_ = FindLoops(f, dom)
}
