// Package sim is a deterministic discrete-event co-simulator of the hybrid
// platform of Figure 1: it replays the profiled CDFG trace of an application
// against a computed partitioning, modeling the sequencer dispatching each
// kernel invocation to its assigned fabric — fine-grain blocks with temporal
// partition swaps (optionally prefetched during data-path windows),
// coarse-grain kernels from their list schedules, shared-memory transfer
// slots with a configurable port count, and the two-stage frame pipeline —
// and reports the simulated makespan, per-fabric utilization and a
// per-kernel timeline. Where the analytical model of internal/partition sums
// closed-form terms (eq. 2), the simulator executes the trace event by
// event, which is what lets it check the model's assumptions (mutually
// exclusive fabrics, full reconfiguration per crossing, uncontended
// transfers) instead of restating them.
package sim

import (
	"fmt"
	"sort"

	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
)

// rem is one outgoing edge of the trace multigraph with its remaining
// traversal count.
type rem struct {
	to ir.BlockID
	n  uint64
}

// BuildTrace reconstructs a canonical basic-block execution trace from the
// dynamic-analysis profile: per-block execution counts plus taken-edge
// counts. The profiled edges form an Eulerian trail (one per profiled run)
// over the control-flow multigraph, and a Hierholzer walk with
// smallest-successor-first edge selection rebuilds a trail deterministically.
// Any such trail visits every block exactly its profiled count and contains
// exactly the profiled multiset of consecutive transitions — the two
// properties the simulator's accounting depends on — so the reconstruction
// is equivalent to the recorded execution order for every order-insensitive
// quantity and canonical (input-independent) for the rest.
//
// Profiles accumulated over several runs are replayed back to back: the
// walk returns to the entry block once per run. The number of runs folded
// into the trace is returned alongside it.
func BuildTrace(f *ir.Function, freq []uint64, edges []finegrain.EdgeFreq) (trace []ir.BlockID, runs int, err error) {
	n := len(f.Blocks)
	var total uint64
	for id, c := range freq {
		if id >= n && c > 0 {
			return nil, 0, fmt.Errorf("sim: profile counts block %d of a %d-block function", id, n)
		}
		total += c
	}
	if total == 0 {
		return nil, 0, nil
	}
	if len(freq) < n {
		grown := make([]uint64, n)
		copy(grown, freq)
		freq = grown
	}

	succ := make([][]rem, n)
	in := make([]uint64, n)
	out := make([]uint64, n)
	var edgeTotal uint64
	for _, e := range edges {
		if e.N == 0 {
			continue
		}
		if int(e.From) >= n || int(e.To) >= n {
			return nil, 0, fmt.Errorf("sim: profiled edge %d->%d outside the function", e.From, e.To)
		}
		succ[e.From] = append(succ[e.From], rem{to: e.To, n: e.N})
		out[e.From] += e.N
		in[e.To] += e.N
		edgeTotal += e.N
	}

	// Each profiled run starts at the entry block and ends at some return
	// block, so runs = entry visits not explained by incoming edges. Virtual
	// back-edges from the surplus end blocks to the entry stitch the runs
	// into one Eulerian trail; the end block with the highest ID keeps its
	// surplus so the stitched trail terminates there deterministically.
	entry := f.Entry
	if freq[entry] < in[entry] {
		return nil, 0, fmt.Errorf("sim: block %d enters more often than it executes", entry)
	}
	runs = int(freq[entry] - in[entry])
	if runs == 0 {
		return nil, 0, fmt.Errorf("sim: profile has no run starting at the entry block")
	}
	last := -1
	for id := n - 1; id >= 0; id-- {
		if freq[id] > out[id] {
			last = id
			break
		}
	}
	for id := 0; id < n; id++ {
		if out[id] > freq[id] {
			return nil, 0, fmt.Errorf("sim: block %d exits more often than it executes", id)
		}
		ends := freq[id] - out[id]
		if id == last {
			ends-- // the trail's final stop keeps its surplus
		}
		if ends > 0 {
			succ[id] = append(succ[id], rem{to: entry, n: ends})
			edgeTotal += ends
		}
	}
	for id := range succ {
		sort.Slice(succ[id], func(i, j int) bool { return succ[id][i].to < succ[id][j].to })
	}

	// Iterative Hierholzer: follow the smallest-numbered unexhausted
	// successor; when stuck, pop to the (reversed) trail. Cycles splice in
	// automatically as the stack unwinds through their junction vertices.
	next := make([]int, n)
	stack := make([]ir.BlockID, 0, 64)
	stack = append(stack, entry)
	trace = make([]ir.BlockID, 0, total)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		sv := succ[v]
		for next[v] < len(sv) && sv[next[v]].n == 0 {
			next[v]++
		}
		if next[v] < len(sv) {
			sv[next[v]].n--
			stack = append(stack, sv[next[v]].to)
		} else {
			trace = append(trace, v)
			stack = stack[:len(stack)-1]
		}
	}
	for i, j := 0, len(trace)-1; i < j; i, j = i+1, j-1 {
		trace[i], trace[j] = trace[j], trace[i]
	}

	// A consistent profile is fully consumed: the trail covers every edge
	// and visits every block exactly its profiled count.
	if uint64(len(trace)) != total || uint64(len(trace)) != edgeTotal+1 {
		return nil, 0, fmt.Errorf("sim: profile is not replayable: %d of %d block executions reconstructed", len(trace), total)
	}
	seen := make([]uint64, n)
	for _, b := range trace {
		seen[b]++
	}
	for id := range seen {
		if seen[id] != freq[id] {
			return nil, 0, fmt.Errorf("sim: profile is not replayable: block %d reconstructed %d times, profiled %d", id, seen[id], freq[id])
		}
	}
	return trace, runs, nil
}
