package sim

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hybridpart/internal/finegrain"
	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
	"hybridpart/internal/lower"
	"hybridpart/internal/platform"
)

// threeStageSrc alternates three distinct basic blocks inside a loop: an
// ALU-heavy stage, a multiply stage (the data-path candidate) and a second
// ALU stage. With a small A_FPGA the stages pack into different temporal
// partitions, which is the regime where configuration scheduling matters.
const threeStageSrc = `
void main_fn() {
  int i; int x; int y; int z;
  i = 0; x = 1; y = 2; z = 3;
  while (i < 16) {
    if (x < 100000) {
      x = x + i + y + x + i + y + x + i + y + x + i + y + x + i;
    }
    if (y < 100000) {
      y = y * x + x * i + y * y + x * y;
    }
    if (z < 100000) {
      z = z + x + i + z + y + i + z + x + i + z + y + i + z + x;
    }
    i = i + 1;
  }
}
`

// divSrc holds a division, which the CGC data-path cannot execute.
const divSrc = `
void main_fn() {
  int i; int x;
  i = 1; x = 100;
  while (i < 8) {
    x = x / i + x;
    i = i + 1;
  }
}
`

// prep lowers src, flattens entry and profiles one run (args-free).
func prep(t *testing.T, src, entry string, runsCount int) (*ir.Program, *ir.Function, []uint64, []finegrain.EdgeFreq) {
	t.Helper()
	prog, err := lower.LowerSource(src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	flat, err := lower.Flatten(prog, entry)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	fp := ir.NewProgram()
	fp.Globals = prog.Globals
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	m := interp.New(fp)
	prof := m.EnableProfile()
	for i := 0; i < runsCount; i++ {
		if _, err := m.Run(entry); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	var edges []finegrain.EdgeFreq
	for k, n := range prof.Edges[entry] {
		edges = append(edges, finegrain.EdgeFreq{From: k.From(), To: k.To(), N: n})
	}
	freq := make([]uint64, len(flat.Blocks))
	copy(freq, prof.Counts[entry])
	return fp, flat, freq, edges
}

// smallPlat is the paper platform with A_FPGA shrunk so the three-stage
// program spans several temporal partitions.
func smallPlat(afpga int) platform.Platform {
	p := platform.Default()
	p.Fine.Area = afpga
	return p
}

func TestBuildTraceReplaysProfile(t *testing.T) {
	_, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	trace, runs, err := BuildTrace(flat, freq, edges)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
	// Visit counts match the profile exactly.
	seen := make([]uint64, len(flat.Blocks))
	for _, b := range trace {
		seen[b]++
	}
	if !reflect.DeepEqual(seen, freq) {
		t.Fatalf("trace visit counts %v != profiled %v", seen, freq)
	}
	// The multiset of consecutive transitions is exactly the profiled edges.
	got := map[[2]ir.BlockID]uint64{}
	for i := 0; i+1 < len(trace); i++ {
		got[[2]ir.BlockID{trace[i], trace[i+1]}]++
	}
	want := map[[2]ir.BlockID]uint64{}
	for _, e := range edges {
		want[[2]ir.BlockID{e.From, e.To}] += e.N
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace transitions diverge from profiled edges:\ngot  %v\nwant %v", got, want)
	}
	if trace[0] != flat.Entry {
		t.Fatalf("trace starts at block %d, want entry %d", trace[0], flat.Entry)
	}
}

func TestBuildTraceDeterministic(t *testing.T) {
	_, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	a, _, err := BuildTrace(flat, freq, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle the edge order: the reconstruction must not depend on it.
	shuffled := make([]finegrain.EdgeFreq, len(edges))
	copy(shuffled, edges)
	sort.Slice(shuffled, func(i, j int) bool {
		if shuffled[i].To != shuffled[j].To {
			return shuffled[i].To > shuffled[j].To
		}
		return shuffled[i].From > shuffled[j].From
	})
	b, _, err := BuildTrace(flat, freq, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace reconstruction depends on edge input order")
	}
}

func TestBuildTraceMultiRun(t *testing.T) {
	_, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 3)
	trace, runs, err := BuildTrace(flat, freq, edges)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
	seen := make([]uint64, len(flat.Blocks))
	for _, b := range trace {
		seen[b]++
	}
	if !reflect.DeepEqual(seen, freq) {
		t.Fatalf("multi-run trace visit counts %v != profiled %v", seen, freq)
	}
}

func TestBuildTraceInconsistentProfile(t *testing.T) {
	_, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	bad := make([]uint64, len(freq))
	copy(bad, freq)
	bad[len(bad)-1] += 5 // executions no edge explains
	if _, _, err := BuildTrace(flat, bad, edges); err == nil {
		t.Fatal("inconsistent profile reconstructed without error")
	}
}

// TestBaselineMatchesPackedModel pins the all-FPGA simulation to the
// analytical fine-grain model: with every block on the FPGA, one frame and
// no contention, the simulated makespan is exactly PackedMapping.TotalCycles.
func TestBaselineMatchesPackedModel(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	for _, afpga := range []int{256, 320, 448, 1500} {
		plat := smallPlat(afpga)
		pm, err := finegrain.PackFunction(flat, plat.Fine, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := pm.TotalCycles(freq, edges, plat.Fine.ReconfigCycles)
		rep, err := Simulate(context.Background(), Input{Prog: fp, F: flat, Plat: plat, Freq: freq, Edges: edges}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalCycles != want {
			t.Errorf("A=%d: simulated %d cycles, model %d", afpga, rep.TotalCycles, want)
		}
		if rep.Reconfigs != rep.ModelCrossings {
			t.Errorf("A=%d: %d reconfigs vs %d model crossings", afpga, rep.Reconfigs, rep.ModelCrossings)
		}
		if rep.CoarseBusy != 0 || rep.MemBusy != 0 {
			t.Errorf("A=%d: all-FPGA run used the data-path (%d) or transfers (%d)", afpga, rep.CoarseBusy, rep.MemBusy)
		}
	}
}

// TestPrefetchHidesReconfiguration exercises the configuration-prefetch
// path: with the multiply stage on the data-path and a partition boundary
// across the window, the naive sequencer stalls on loads the model never
// charges, and prefetch hides part of them — never running slower.
func TestPrefetchHidesReconfiguration(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges, Moved: []ir.BlockID{5}}
	off, err := Simulate(context.Background(), in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Simulate(context.Background(), in, Config{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Reconfigs <= off.ModelCrossings {
		t.Fatalf("fixture lost its cross-window loads: %d reconfigs vs %d model crossings",
			off.Reconfigs, off.ModelCrossings)
	}
	if on.TotalCycles >= off.TotalCycles {
		t.Fatalf("prefetch did not help: %d >= %d", on.TotalCycles, off.TotalCycles)
	}
	if on.HiddenReconfigCycles <= 0 {
		t.Fatalf("prefetch hid nothing (total %d vs %d)", on.TotalCycles, off.TotalCycles)
	}
}

// TestPrefetchNeverSlower sweeps areas and moved sets: prefetch must never
// extend the makespan.
func TestPrefetchNeverSlower(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	for afpga := 96; afpga <= 512; afpga += 32 {
		for moved := 0; moved < len(flat.Blocks); moved++ {
			in := Input{Prog: fp, F: flat, Plat: smallPlat(afpga), Freq: freq, Edges: edges,
				Moved: []ir.BlockID{ir.BlockID(moved)}}
			off, err := Simulate(context.Background(), in, Config{})
			if err != nil {
				continue // unmappable moved block etc.
			}
			for _, frames := range []int{1, 5} {
				off, err = Simulate(context.Background(), in, Config{Frames: frames})
				if err != nil {
					t.Fatal(err)
				}
				on, err := Simulate(context.Background(), in, Config{Frames: frames, Prefetch: true})
				if err != nil {
					t.Fatal(err)
				}
				if on.TotalCycles > off.TotalCycles {
					t.Errorf("A=%d moved=%d frames=%d: prefetch slower: %d > %d",
						afpga, moved, frames, on.TotalCycles, off.TotalCycles)
				}
			}
		}
	}
}

func TestFramesPipeline(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges, Moved: []ir.BlockID{5}}
	single, err := Simulate(context.Background(), in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var frameEnds []int64
	rep, err := Simulate(context.Background(), in, Config{
		Frames:  4,
		OnFrame: func(frame int, cycles int64) { frameEnds = append(frameEnds, cycles) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles < single.TotalCycles || rep.TotalCycles > 4*single.TotalCycles {
		t.Fatalf("4-frame makespan %d outside [%d, %d]", rep.TotalCycles, single.TotalCycles, 4*single.TotalCycles)
	}
	if len(frameEnds) != 4 {
		t.Fatalf("OnFrame fired %d times, want 4", len(frameEnds))
	}
	for i := 1; i < len(frameEnds); i++ {
		if frameEnds[i] < frameEnds[i-1] {
			t.Fatalf("frame completions regress: %v", frameEnds)
		}
	}
	if frameEnds[3] != rep.TotalCycles {
		t.Fatalf("last frame ends at %d, makespan %d", frameEnds[3], rep.TotalCycles)
	}
}

func TestPortsSpeedTransfers(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges, Moved: []ir.BlockID{5}}
	one, err := Simulate(context.Background(), in, Config{Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Simulate(context.Background(), in, Config{Ports: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.MemBusy >= one.MemBusy {
		t.Fatalf("4 ports did not shorten transfers: %d >= %d", four.MemBusy, one.MemBusy)
	}
	if four.TotalCycles > one.TotalCycles {
		t.Fatalf("4 ports slower overall: %d > %d", four.TotalCycles, one.TotalCycles)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges, Moved: []ir.BlockID{5}}
	cfg := Config{Frames: 3, Ports: 2, Prefetch: true}
	a, err := Simulate(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated simulation diverged")
	}
}

func TestSimulateCancellation(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Simulate(ctx, Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges},
		Config{Frames: 2})
	if err != context.Canceled {
		t.Fatalf("cancelled simulation returned %v", err)
	}
}

func TestSimulateErrors(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges}
	if _, err := Simulate(context.Background(), in, Config{Frames: -1}); err == nil {
		t.Error("negative frames accepted")
	}
	if _, err := Simulate(context.Background(), in, Config{Ports: -1}); err == nil {
		t.Error("negative ports accepted")
	}
	bad := in
	bad.Moved = []ir.BlockID{ir.BlockID(len(flat.Blocks))}
	if _, err := Simulate(context.Background(), bad, Config{}); err == nil {
		t.Error("out-of-range moved block accepted")
	}

	// A kernel the data-path cannot execute must be rejected, like the
	// partitioning engine rejects it.
	dp, dflat, dfreq, dedges := prep(t, divSrc, "main_fn", 1)
	for id := range dflat.Blocks {
		din := Input{Prog: dp, F: dflat, Plat: platform.Default(), Freq: dfreq, Edges: dedges,
			Moved: []ir.BlockID{ir.BlockID(id)}}
		if _, err := Simulate(context.Background(), din, Config{}); err != nil {
			return // found the division block: rejected as expected
		}
	}
	t.Error("no block of the division program was rejected")
}

// TestKernelTimeline sanity-checks the per-kernel rows: every executed
// block appears once, fabrics are labeled correctly, and invocation counts
// scale with the frame count.
func TestKernelTimeline(t *testing.T) {
	fp, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: fp, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges, Moved: []ir.BlockID{5}}
	rep, err := Simulate(context.Background(), in, Config{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	var executed int
	for _, n := range freq {
		if n > 0 {
			executed++
		}
	}
	if len(rep.Kernels) != executed {
		t.Fatalf("%d timeline rows, want %d", len(rep.Kernels), executed)
	}
	for _, k := range rep.Kernels {
		if k.Invocations != 2*freq[k.Block] {
			t.Errorf("block %d: %d invocations, want %d", k.Block, k.Invocations, 2*freq[k.Block])
		}
		wantFabric := "fine"
		if k.Block == 5 {
			wantFabric = "coarse"
		}
		if k.Fabric != wantFabric {
			t.Errorf("block %d on %q, want %q", k.Block, k.Fabric, wantFabric)
		}
		if k.FirstStart < 0 || k.LastEnd > rep.TotalCycles || k.FirstStart > k.LastEnd {
			t.Errorf("block %d timeline [%d, %d] outside [0, %d]", k.Block, k.FirstStart, k.LastEnd, rep.TotalCycles)
		}
	}
}

// TestReplayerMatchesSimulate: the Replayer's per-mapping entry point is
// the one-shot Simulate, mapping for mapping — and one Replayer serves many
// mappings (the move-loop objective's access pattern) without rebuilding
// the trace or the schedules.
func TestReplayerMatchesSimulate(t *testing.T) {
	prog, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: prog, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges}
	r, err := NewReplayer(in)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Frames: 4, Ports: 2, Prefetch: true}
	// Every mappable singleton plus the empty mapping, all through the one
	// Replayer.
	movedSets := [][]ir.BlockID{nil}
	for id := range flat.Blocks {
		if _, err := r.CoarseLatency(ir.BlockID(id)); err == nil {
			movedSets = append(movedSets, []ir.BlockID{ir.BlockID(id)})
		}
	}
	if len(movedSets) < 3 {
		t.Fatalf("fixture yields only %d mappable sets", len(movedSets))
	}
	for _, moved := range movedSets {
		in.Moved = moved
		oneShot, err := Simulate(context.Background(), in, cfg)
		if err != nil {
			t.Fatalf("moved=%v: %v", moved, err)
		}
		reused, err := r.Simulate(context.Background(), cfg, moved)
		if err != nil {
			t.Fatalf("moved=%v: %v", moved, err)
		}
		if !reflect.DeepEqual(oneShot, reused) {
			t.Fatalf("moved=%v: replayer diverges from one-shot Simulate:\n%+v\nvs\n%+v", moved, reused, oneShot)
		}
	}
	// WalkTrace covers the whole trace in order: visit counts must match
	// the profile.
	seen := make([]uint64, len(flat.Blocks))
	r.WalkTrace(func(b ir.BlockID) { seen[b]++ })
	for id, n := range seen {
		if n != freq[id] {
			t.Fatalf("WalkTrace visits block %d %d times, profiled %d", id, n, freq[id])
		}
	}
}

// TestMakespanMatchesSimulate pins the report-free scoring entry point to
// the full Simulate: for every mappable moved set, every frame count and
// both prefetch settings, Makespan must return exactly Report.TotalCycles —
// it is the same replay with the bookkeeping elided, not an approximation.
// A single Arena is reused across all calls to exercise the grow/reset path.
func TestMakespanMatchesSimulate(t *testing.T) {
	prog, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: prog, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges}
	r, err := NewReplayer(in)
	if err != nil {
		t.Fatal(err)
	}
	movedSets := [][]ir.BlockID{nil}
	for id := range flat.Blocks {
		if _, err := r.CoarseLatency(ir.BlockID(id)); err == nil {
			movedSets = append(movedSets, []ir.BlockID{ir.BlockID(id)})
		}
	}
	var arena Arena
	for _, frames := range []int{1, 2, 8} {
		for _, prefetch := range []bool{false, true} {
			cfg := Config{Frames: frames, Ports: 2, Prefetch: prefetch}
			for _, moved := range movedSets {
				rep, err := r.Simulate(context.Background(), cfg, moved)
				if err != nil {
					t.Fatalf("moved=%v: %v", moved, err)
				}
				got, err := r.Makespan(context.Background(), cfg, moved, &arena)
				if err != nil {
					t.Fatalf("moved=%v: %v", moved, err)
				}
				if got != rep.TotalCycles {
					t.Fatalf("frames=%d prefetch=%v moved=%v: Makespan %d != Simulate %d",
						frames, prefetch, moved, got, rep.TotalCycles)
				}
				// nil arena allocates a fresh one and must agree too.
				fresh, err := r.Makespan(context.Background(), cfg, moved, nil)
				if err != nil {
					t.Fatal(err)
				}
				if fresh != got {
					t.Fatalf("moved=%v: fresh-arena makespan %d != reused-arena %d", moved, fresh, got)
				}
			}
		}
	}
}

// TestLowerBoundAdmissible is the branch-and-bound soundness property: for
// every moved set (empty, singletons, and all mappable pairs) under every
// region/frame/port/prefetch combination, neither LowerBound nor the
// tighter FineWalkBound ever exceeds the replayed makespan. One
// overestimate would let the scorer prune a true argmin. The regions axis
// also pins the monolithic identity: Regions=1 replays byte-identically to
// the legacy single-context model (Regions unset).
func TestLowerBoundAdmissible(t *testing.T) {
	for _, src := range []struct {
		name, src, entry string
		area             int
	}{
		{"three-stage", threeStageSrc, "main_fn", 320},
		{"div", divSrc, "main_fn", 260},
	} {
		t.Run(src.name, func(t *testing.T) {
			prog, flat, freq, edges := prep(t, src.src, src.entry, 1)
			legacy, err := NewReplayer(Input{Prog: prog, F: flat, Plat: smallPlat(src.area), Freq: freq, Edges: edges})
			if err != nil {
				t.Fatal(err)
			}
			for _, regions := range []int{1, 2, 4} {
				// Scale total area with the region count so the per-region
				// area — what packing sees — stays fixed across the sweep
				// and R only changes the residency dynamics.
				plat := smallPlat(src.area * regions)
				plat.Fine.Regions = regions
				in := Input{Prog: prog, F: flat, Plat: plat, Freq: freq, Edges: edges}
				r, err := NewReplayer(in)
				if err != nil {
					t.Fatal(err)
				}
				var mappable []ir.BlockID
				for id := range flat.Blocks {
					if _, err := r.CoarseLatency(ir.BlockID(id)); err == nil {
						mappable = append(mappable, ir.BlockID(id))
					}
				}
				movedSets := [][]ir.BlockID{nil}
				for i, a := range mappable {
					movedSets = append(movedSets, []ir.BlockID{a})
					for _, b := range mappable[i+1:] {
						movedSets = append(movedSets, []ir.BlockID{a, b})
					}
				}
				var arena Arena
				for _, frames := range []int{1, 4} {
					for _, ports := range []int{1, 2} {
						for _, prefetch := range []bool{false, true} {
							cfg := Config{Frames: frames, Ports: ports, Prefetch: prefetch}
							for _, moved := range movedSets {
								bound, err := r.LowerBound(cfg, moved)
								if err != nil {
									t.Fatalf("moved=%v: %v", moved, err)
								}
								full, err := r.Makespan(context.Background(), cfg, moved, &arena)
								if err != nil {
									t.Fatalf("moved=%v: %v", moved, err)
								}
								if bound > full {
									t.Fatalf("regions=%d frames=%d ports=%d prefetch=%v moved=%v: bound %d exceeds makespan %d",
										regions, frames, ports, prefetch, moved, bound, full)
								}
								walk, err := r.FineWalkBound(cfg, moved, &arena)
								if err != nil {
									t.Fatalf("moved=%v: %v", moved, err)
								}
								if walk > full {
									t.Fatalf("regions=%d frames=%d ports=%d prefetch=%v moved=%v: fine-walk bound %d exceeds makespan %d",
										regions, frames, ports, prefetch, moved, walk, full)
								}
								if regions == 1 {
									want, err := legacy.Makespan(context.Background(), cfg, moved, nil)
									if err != nil {
										t.Fatal(err)
									}
									if full != want {
										t.Fatalf("frames=%d ports=%d prefetch=%v moved=%v: Regions=1 makespan %d != legacy %d",
											frames, ports, prefetch, moved, full, want)
									}
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestReplayerConcurrentUse is the race-detector pin for the documented
// concurrency contract: one Replayer, 16 goroutines, each hammering the
// full read API — Simulate, Makespan (with its own Arena), LowerBound,
// CoarseLatency, TransferTicks and WalkTrace — while asserting every
// result equals the serially computed golden value. Run under -race in CI.
func TestReplayerConcurrentUse(t *testing.T) {
	prog, flat, freq, edges := prep(t, threeStageSrc, "main_fn", 1)
	in := Input{Prog: prog, F: flat, Plat: smallPlat(320), Freq: freq, Edges: edges}
	r, err := NewReplayer(in)
	if err != nil {
		t.Fatal(err)
	}
	var moved []ir.BlockID
	for id := range flat.Blocks {
		if _, err := r.CoarseLatency(ir.BlockID(id)); err == nil {
			moved = append(moved, ir.BlockID(id))
			if len(moved) == 2 {
				break
			}
		}
	}
	cfg := Config{Frames: 4, Ports: 2, Prefetch: true}
	goldenRep, err := r.Simulate(context.Background(), cfg, moved)
	if err != nil {
		t.Fatal(err)
	}
	goldenBound, err := r.LowerBound(cfg, moved)
	if err != nil {
		t.Fatal(err)
	}
	goldenLat, err := r.CoarseLatency(moved[0])
	if err != nil {
		t.Fatal(err)
	}
	goldenTx := r.TransferTicks(moved[0], cfg.Ports)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var arena Arena // per-goroutine, per the contract
			for i := 0; i < 20; i++ {
				rep, err := r.Simulate(context.Background(), cfg, moved)
				if err != nil {
					errs <- err
					return
				}
				if rep.TotalCycles != goldenRep.TotalCycles {
					errs <- fmt.Errorf("concurrent Simulate: %d != %d", rep.TotalCycles, goldenRep.TotalCycles)
					return
				}
				mk, err := r.Makespan(context.Background(), cfg, moved, &arena)
				if err != nil {
					errs <- err
					return
				}
				if mk != goldenRep.TotalCycles {
					errs <- fmt.Errorf("concurrent Makespan: %d != %d", mk, goldenRep.TotalCycles)
					return
				}
				b, err := r.LowerBound(cfg, moved)
				if err != nil {
					errs <- err
					return
				}
				if b != goldenBound {
					errs <- fmt.Errorf("concurrent LowerBound: %d != %d", b, goldenBound)
					return
				}
				lat, err := r.CoarseLatency(moved[0])
				if err != nil {
					errs <- err
					return
				}
				if lat != goldenLat {
					errs <- fmt.Errorf("concurrent CoarseLatency: %d != %d", lat, goldenLat)
					return
				}
				if tx := r.TransferTicks(moved[0], cfg.Ports); tx != goldenTx {
					errs <- fmt.Errorf("concurrent TransferTicks: %d != %d", tx, goldenTx)
					return
				}
				n := 0
				r.WalkTrace(func(ir.BlockID) { n++ })
				if n != r.TraceLen() {
					errs <- fmt.Errorf("concurrent WalkTrace visited %d, want %d", n, r.TraceLen())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
