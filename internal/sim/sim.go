package sim

import (
	"context"
	"fmt"
	"sync"

	"hybridpart/internal/coarsegrain"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/partition"
	"hybridpart/internal/platform"
)

// Config holds the simulation knobs.
type Config struct {
	// Frames is the number of times the profiled trace is replayed (one
	// replay per application frame); 0 means 1. With more than one frame the
	// fabrics pipeline: frame i+1's fine-grain work proceeds while frame i's
	// kernels still occupy the data-path.
	Frames int
	// Ports is the width of the fabric-to-fabric transfer channel in
	// shared-memory ports; 0 means 1, the analytical model's serialization
	// assumption. A P-port transfer moves ceil(words/P) words per
	// CyclesPerWord slot; overlapping transfers from pipelined frames queue
	// on the channel instead of summing like the model's t_comm.
	Ports int
	// Prefetch overlaps the next temporal partition's bitstream load with
	// data-path execution: while a kernel runs on the CGCs, the sequencer
	// already loads the configuration of the next fine-grain block. Without
	// it the load starts only when the fine-grain block is dispatched.
	Prefetch bool
	// OnFrame, when non-nil, is called after each simulated frame of the
	// partitioned run with the 1-based frame number and the frame's
	// completion time in FPGA cycles. It runs on the simulator's goroutine.
	OnFrame func(frame int, cycles int64)
}

// Input is the simulated system: the flattened CDFG, its platform
// characterization, the dynamic-analysis profile, and the set of kernels
// the partitioning engine moved to the coarse-grain data-path (empty
// simulates the all-FPGA mapping).
type Input struct {
	Prog  *ir.Program
	F     *ir.Function
	Plat  platform.Platform
	Freq  []uint64
	Edges []finegrain.EdgeFreq
	Moved []ir.BlockID
}

// KernelStat is one row of the per-kernel timeline: aggregate fabric
// occupancy of one basic block across every invocation, in FPGA cycles.
type KernelStat struct {
	Block       ir.BlockID
	Name        string
	Fabric      string // "fine" or "coarse"
	Invocations uint64
	// BusyCycles is the block's fabric occupancy: level cycles on the FPGA,
	// data-path latency on the CGCs (transfers are accounted to the memory
	// channel, reconfigurations to the fine fabric).
	BusyCycles int64
	FirstStart int64
	LastEnd    int64
}

// Report is the outcome of one simulation.
type Report struct {
	// TotalCycles is the simulated makespan in FPGA cycles.
	TotalCycles int64
	Frames      int
	Ports       int
	Prefetch    bool
	// Runs is the number of profiled runs folded into the replayed trace.
	Runs int

	// Fine-grain fabric occupancy, FPGA cycles: executing blocks, loading
	// configurations, and idle (makespan minus the other two).
	FineBusy     int64
	FineReconfig int64
	FineIdle     int64
	// Coarse-grain data-path occupancy.
	CoarseBusy int64
	CoarseIdle int64
	// MemBusy is the transfer channel's occupancy.
	MemBusy int64

	// Reconfigs counts performed configuration loads across every frame;
	// ModelCrossings is the count the analytical model charges for the same
	// mapping and frame count (eq. 4's crossing term, once per frame) —
	// they differ when a partition switch hides behind a data-path window
	// (never charged by the model) or survives a frame boundary (always
	// recharged by it).
	Reconfigs      int64
	ModelCrossings int64
	// HiddenReconfigCycles is the portion of the reconfiguration time that
	// prefetching overlapped with data-path execution.
	HiddenReconfigCycles int64

	Kernels []KernelStat
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Replayer is the reusable half of the simulator: the canonical trace, the
// live-in/out footprints and the per-kernel data-path schedules, all of
// which depend only on the application and its profile — not on the mapping.
// Building one Replayer and calling Simulate per candidate moved-set is what
// makes simulated makespan affordable as a move-loop objective: each
// candidate pays only the packing and the replay, never a trace
// reconstruction or a list-scheduling pass.
//
// Concurrency contract: a Replayer is safe for concurrent use. Every table is
// immutable after NewReplayer returns, and the lazy schedule memo behind
// CoarseLatency is mutex-guarded, so any number of goroutines may call
// Simulate, Makespan, LowerBound, CoarseLatency, TransferTicks and WalkTrace
// on one shared Replayer. The only per-goroutine state is the Arena: an Arena
// must not be shared between concurrent calls — give each worker its own.
type Replayer struct {
	in     Input
	trace  []ir.BlockID
	runs   int
	liveIO []partition.LiveIO
	arrLen coarsegrain.ArrLenFunc

	// minFineT[b] is a packing-independent lower bound on block b's
	// per-execution fine-grain cost in ticks: the sum over DFG levels of the
	// level's max node latency (min 1). Any packing only splits levels across
	// partition boundaries, and a split level contributes at least its
	// unsplit max, so PerBlockCycles >= minFineT/ratio for every mapping.
	minFineT []int64
	// fineBase is the all-FPGA per-frame floor: Σ_b Freq[b]·minFineT[b].
	fineBase int64
	// blockArea[b] is block b's fine-grain area demand (Σ of its ops' area).
	// Packing never shares operators between blocks, so any packing of a
	// block set spends at least the sum of their areas; partition-boundary
	// waste only adds partitions on top.
	blockArea []int64
	// areaBase is Σ_b Freq[b]>0 · blockArea[b], the all-FPGA area demand of
	// the trace-active blocks.
	areaBase int64

	// schedule memo: per-block data-path latency in T_CGC cycles, or the
	// mapping error. Filled lazily — most blocks are never candidates.
	schedMu   sync.Mutex
	schedDone []bool
	schedLat  []int64
	schedErr  []error
}

// NewReplayer validates the platform, reconstructs the canonical trace and
// computes the mapping-independent tables. in.Moved is ignored — the mapping
// is chosen per Simulate call.
func NewReplayer(in Input) (*Replayer, error) {
	if err := in.Plat.Validate(); err != nil {
		return nil, err
	}
	trace, runs, err := BuildTrace(in.F, in.Freq, in.Edges)
	if err != nil {
		return nil, err
	}
	n := len(in.F.Blocks)
	r := &Replayer{
		in:        in,
		trace:     trace,
		runs:      runs,
		liveIO:    partition.ComputeLiveIO(in.F),
		arrLen:    coarsegrain.ArrLenOf(in.Prog, in.F),
		minFineT:  make([]int64, n),
		blockArea: make([]int64, n),
		schedDone: make([]bool, n),
		schedLat:  make([]int64, n),
		schedErr:  make([]error, n),
	}
	ratio := int64(in.Plat.Coarse.ClockRatio)
	for _, b := range in.F.Blocks {
		d := ir.BuildDFG(in.F, b)
		var cycles, area int64
		for level := 1; level <= d.MaxLevel; level++ {
			maxLat := 0
			for _, u := range d.NodesAtLevel(level) {
				cls := ir.ClassOf(d.Op(u))
				if lat := in.Plat.Fine.Costs.Latency(cls); lat > maxLat {
					maxLat = lat
				}
				area += int64(in.Plat.Fine.Costs.Area(cls))
			}
			cycles += int64(maxLat)
		}
		if cycles < 1 {
			cycles = 1 // control-only sequencing, like PackFunction
		}
		r.minFineT[b.ID] = cycles * ratio
		r.blockArea[b.ID] = area
		if int(b.ID) < len(in.Freq) && in.Freq[b.ID] > 0 {
			r.fineBase += int64(in.Freq[b.ID]) * r.minFineT[b.ID]
			r.areaBase += area
		}
	}
	return r, nil
}

// Runs returns the number of profiled runs folded into the replayed trace.
func (r *Replayer) Runs() int { return r.runs }

// TraceLen returns the number of kernel invocations replayed per frame.
func (r *Replayer) TraceLen() int { return len(r.trace) }

// CoarseLatency returns block id's data-path latency in T_CGC cycles (the
// same list schedule the partitioning engine uses), memoized across calls.
// Safe for concurrent use.
func (r *Replayer) CoarseLatency(id ir.BlockID) (int64, error) {
	r.schedMu.Lock()
	defer r.schedMu.Unlock()
	if !r.schedDone[id] {
		r.schedDone[id] = true
		sched, err := coarsegrain.MapDFG(ir.BuildDFG(r.in.F, r.in.F.Block(id)), r.in.Plat.Coarse, r.arrLen)
		if err != nil {
			r.schedErr[id] = fmt.Errorf("sim: moved kernel b%d has no data-path schedule: %w", id, err)
		} else {
			r.schedLat[id] = sched.Latency
		}
	}
	return r.schedLat[id], r.schedErr[id]
}

// WalkTrace calls fn for every kernel invocation of the canonical trace, in
// replay order. Closed-form scorers use it to run reduced state machines
// (e.g. the sequencer's loaded-partition walk) without the event engine.
func (r *Replayer) WalkTrace(fn func(ir.BlockID)) {
	for _, b := range r.trace {
		fn(b)
	}
}

// TransferTicks returns block id's per-invocation transfer-channel occupancy
// in ticks when its live-in/out words stripe over the given port count.
func (r *Replayer) TransferTicks(id ir.BlockID, ports int) int64 {
	ratio := int64(r.in.Plat.Coarse.ClockRatio)
	words := int64(r.liveIO[id].In + r.liveIO[id].Out)
	perSlot := ceilDiv(words, int64(ports))
	return (perSlot*int64(r.in.Plat.Comm.CyclesPerWord) + int64(r.in.Plat.Comm.SyncCycles)) * ratio
}

// normalize folds cfg's documented-equivalent zero knobs onto their defaults
// and rejects negative values.
func (cfg *Config) normalize() error {
	if cfg.Frames < 0 || cfg.Ports < 0 {
		return fmt.Errorf("sim: frames and ports must be non-negative, got %d/%d", cfg.Frames, cfg.Ports)
	}
	if cfg.Frames == 0 {
		cfg.Frames = 1
	}
	if cfg.Ports == 0 {
		cfg.Ports = 1
	}
	return nil
}

// Simulate replays the profiled trace of in against the given mapping under
// cfg. It is deterministic: equal inputs produce equal reports. The context
// is checked between frames and periodically inside each frame's replay.
func Simulate(ctx context.Context, in Input, cfg Config) (*Report, error) {
	r, err := NewReplayer(in)
	if err != nil {
		return nil, err
	}
	return r.Simulate(ctx, cfg, in.Moved)
}

// Arena is the reusable scratch of one replay: the moved mask, the per-block
// cost tables, the per-region sequencer state and the prefetch oracle.
// Makespan grows it on first use and reuses the buffers afterwards, so a
// worker scoring thousands of candidate mappings allocates only on its first
// call. An Arena belongs to exactly one goroutine at a time; the zero value
// is ready to use.
type Arena struct {
	moved    []bool
	latT     []int64 // kernel latency, in ticks (T_CGC cycles)
	txT      []int64 // transfer-channel occupancy per invocation, ticks
	execT    []int64 // fine-grain level cycles per execution, ticks
	nextPart []int32 // prefetch oracle, one entry per trace position

	// Per-region sequencer scratch, one entry per reconfigurable region:
	// the resident partition (replay and walk), the fast-forward snapshot,
	// and FineWalkBound's symbolic first-need record.
	loadedR       []int
	prevLoadedR   []int
	firstNeed     []int
	firstLead     []bool
	firstStraddle []bool
}

// grow sizes the per-block tables for n blocks (the prefetch oracle is grown
// separately, only when a replay needs it).
func (a *Arena) grow(n int) {
	if cap(a.moved) < n {
		a.moved = make([]bool, n)
		a.latT = make([]int64, n)
		a.txT = make([]int64, n)
		a.execT = make([]int64, n)
	}
	a.moved = a.moved[:n]
	a.latT = a.latT[:n]
	a.txT = a.txT[:n]
	a.execT = a.execT[:n]
	for i := range a.moved {
		a.moved[i] = false
	}
}

// growRegions sizes the per-region sequencer scratch for R regions and
// resets it: nothing resident, no region's first need recorded yet.
func (a *Arena) growRegions(regions int) {
	if cap(a.loadedR) < regions {
		a.loadedR = make([]int, regions)
		a.prevLoadedR = make([]int, regions)
		a.firstNeed = make([]int, regions)
		a.firstLead = make([]bool, regions)
		a.firstStraddle = make([]bool, regions)
	}
	a.loadedR = a.loadedR[:regions]
	a.prevLoadedR = a.prevLoadedR[:regions]
	a.firstNeed = a.firstNeed[:regions]
	a.firstLead = a.firstLead[:regions]
	a.firstStraddle = a.firstStraddle[:regions]
	for i := 0; i < regions; i++ {
		a.loadedR[i] = -1
		a.prevLoadedR[i] = -2
		a.firstNeed[i] = -1
		a.firstLead[i] = false
		a.firstStraddle[i] = false
	}
}

// Simulate replays the trace against the mapping that moves the given blocks
// to the coarse-grain data-path (nil simulates the all-FPGA mapping).
func (r *Replayer) Simulate(ctx context.Context, cfg Config, movedBlocks []ir.BlockID) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rep := &Report{
		Frames:   cfg.Frames,
		Ports:    cfg.Ports,
		Prefetch: cfg.Prefetch,
		Runs:     r.runs,
	}
	if _, err := r.replay(ctx, cfg, movedBlocks, new(Arena), rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// Makespan replays the trace against the given mapping and returns only the
// makespan in FPGA cycles — the same value Simulate reports as TotalCycles —
// without building the per-kernel timeline or the occupancy report. With a
// reused Arena the steady state allocates ~nothing, which is what candidate
// scoring wants: the move loop asks for thousands of makespans and exactly
// one report. A nil arena allocates a fresh one.
func (r *Replayer) Makespan(ctx context.Context, cfg Config, movedBlocks []ir.BlockID, a *Arena) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	if a == nil {
		a = new(Arena)
	}
	ticks, err := r.replay(ctx, cfg, movedBlocks, a, nil)
	if err != nil {
		return 0, err
	}
	return ceilDiv(ticks, int64(r.in.Plat.Coarse.ClockRatio)), nil
}

// LowerBound returns a cheap admissible lower bound, in FPGA cycles, on the
// makespan Simulate/Makespan report for the mapping that moves the given
// blocks under cfg. Each of the three resources — fine fabric, data-path,
// transfer channel — serves its whole per-frame workload every frame and
// never resets between frames, so its total busy floor bounds the makespan
// from below; the bound is the largest of the three. The fine-grain floor
// combines two packing-independent minima: execution (minFineT — any packing
// only splits DFG levels, and a split level still pays its unsplit max) and
// configuration loads. The remaining trace-active blocks need at least
// k = ceil(area/regionArea) temporal partitions; the first frame loads each
// of them at least once, at most R of them survive any frame boundary (one
// per reconfigurable region), so every later frame reloads at least k−R,
// and every load occupies the fine timeline — the single configuration
// port — for a full region reconfiguration, with or without prefetch, which
// only overlaps the load with data-path windows, never shortens the
// fabric's own busy time. With one region this is the monolithic-context
// floor of frames·(k−1)+1 loads. Branch-and-bound candidate
// scoring uses the bound to skip replays that provably cannot beat an
// incumbent. movedBlocks must not repeat a block (move trajectories never
// do). Safe for concurrent use.
func (r *Replayer) LowerBound(cfg Config, movedBlocks []ir.BlockID) (int64, error) {
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	n := len(r.in.F.Blocks)
	frames := int64(cfg.Frames)
	fine := r.fineBase
	areaRem := r.areaBase
	var coarse, mem int64
	for _, b := range movedBlocks {
		if int(b) < 0 || int(b) >= n {
			return 0, fmt.Errorf("sim: moved block %d outside the function", b)
		}
		var freq int64
		if int(b) < len(r.in.Freq) {
			freq = int64(r.in.Freq[b])
		}
		if freq == 0 {
			continue
		}
		lat, err := r.CoarseLatency(b)
		if err != nil {
			return 0, err
		}
		fine -= freq * r.minFineT[b]
		areaRem -= r.blockArea[b]
		coarse += freq * lat
		mem += freq * r.TransferTicks(b, cfg.Ports)
	}
	fineTotal := fine * frames
	if areaRem > 0 {
		fg := r.in.Plat.Fine
		k := ceilDiv(areaRem, int64(fg.RegionArea()))
		loads := k
		if extra := k - int64(fg.NumRegions()); extra > 0 {
			loads += (frames - 1) * extra
		}
		fineTotal += loads * int64(fg.RegionReconfigCycles()) * int64(r.in.Plat.Coarse.ClockRatio)
	}
	floor := fineTotal
	if c := coarse * frames; c > floor {
		floor = c
	}
	if m := mem * frames; m > floor {
		floor = m
	}
	if floor < 0 {
		floor = 0
	}
	return ceilDiv(floor, int64(r.in.Plat.Coarse.ClockRatio)), nil
}

// frameWalk is one pass of FineWalkBound's loaded-partition state machine
// over the trace: the chain costs of one frame, split by resource and by
// position relative to the other fabric's first/last event.
type frameWalk struct {
	fineExec int64 // fine execution + straddling loads (never hideable)
	fineLoad int64 // entry configuration loads (hideable only under prefetch)
	coarse   int64 // Σ data-path latencies over moved windows
	mem      int64 // Σ transfer occupancies over moved windows
	// leadMoved: moved-window chain cost before the frame's first fine
	// event. leadFine: fine chain cost before the frame's first moved
	// window. firstMovedTx: the first moved window's transfer occupancy.
	leadMoved, leadFine, firstMovedTx int64
	sawFine, sawMoved                 bool
	// Each region's first need is start-dependent, so the shared walk
	// leaves those loads out of the totals and records them per region in
	// the arena (firstNeed/firstLead/firstStraddle) for per-variant
	// resolution; the arena's loadedR vector after the walk is the frame's
	// end state.
}

// FineWalkBound returns a tighter admissible lower bound, in FPGA cycles,
// than LowerBound, from the candidate's actual packing: it packs the
// FPGA-resident blocks exactly as the replay does and walks the trace's
// loaded-partition state machine — per-execution cycles, straddling
// crossings, every configuration load and every moved window — for the
// first frame and the steady-state frame, without event bookkeeping, so it
// costs O(trace) instead of O(frames·trace) heavyweight events. It combines
// four floors, each justified by the replay's in-order service discipline:
//
//   - frame 1 is fully serial and later frames never delay it, so its whole
//     chain (under prefetch, minus the loads, which can hide in data-path
//     windows) bounds the makespan;
//   - the fine fabric's timeline is sequential and the replay charges every
//     execution, crossing and load to it (prefetch only overlaps loads with
//     data-path windows, never shortens the fabric's own busy time), so its
//     first event's earliest start (the frame-1 moved-window chain ahead of
//     it), its total occupancy across frames, and the last frame's trailing
//     moved-window chain add up below the makespan;
//   - symmetrically for the data-path: frame 1's leading fine chain, the
//     data-path's total occupancy, and the last frame's trailing fine chain
//     (lead/trail loads are always on-demand — there is no data-path window
//     for prefetch to hide them in — so they count even under prefetch);
//   - the transfer channel's total occupancy.
//
// The bound is exact whenever one fabric dominates, which is what lets
// branch-and-bound scoring kill most full replays once an incumbent near
// the optimum is known. The arena is per-goroutine scratch, as in Makespan;
// nil allocates a fresh one. Safe for concurrent use with per-goroutine
// arenas.
func (r *Replayer) FineWalkBound(cfg Config, movedBlocks []ir.BlockID, a *Arena) (int64, error) {
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	if a == nil {
		a = new(Arena)
	}
	n := len(r.in.F.Blocks)
	a.grow(n)
	moved := a.moved
	for _, b := range movedBlocks {
		if int(b) < 0 || int(b) >= n {
			return 0, fmt.Errorf("sim: moved block %d outside the function", b)
		}
		moved[b] = true
	}
	pm, err := finegrain.PackFunction(r.in.F, r.in.Plat.Fine, func(id ir.BlockID) bool { return !moved[id] })
	if err != nil {
		return 0, err
	}
	ratio := int64(r.in.Plat.Coarse.ClockRatio)
	reconT := int64(r.in.Plat.Fine.RegionReconfigCycles()) * ratio
	regions := pm.Regions
	// Per-block tables, filled exactly like the replay's (the arena may hold
	// a previous mapping's values, so moved and kept entries both write).
	latT, txT, execT := a.latT, a.txT, a.execT
	for id := 0; id < n; id++ {
		b := ir.BlockID(id)
		if moved[id] {
			lat, err := r.CoarseLatency(b)
			if err != nil {
				return 0, err
			}
			latT[id] = lat
			txT[id] = r.TransferTicks(b, cfg.Ports)
			execT[id] = 0
			continue
		}
		latT[id] = 0
		txT[id] = 0
		execT[id] = pm.PerBlockCycles[id] * ratio
	}
	// A frame's walk depends on the initially resident partitions only
	// through each region's first need: after a region is touched once, its
	// state evolves identically for any starting residency. So one walk
	// (with every region's first load left symbolic) serves both the first
	// frame and the steady-state frames 2..F — which all start and end in
	// the same residency vector, so a single variant covers them and the
	// last frame IS one.
	a.growRegions(regions)
	loadedR, firstNeed, firstLead, firstStraddle := a.loadedR, a.firstNeed, a.firstLead, a.firstStraddle
	var w frameWalk
	for _, b := range r.trace {
		id := int(b)
		if moved[id] {
			w.coarse += latT[id]
			w.mem += txT[id]
			if !w.sawFine {
				w.leadMoved += txT[id] + latT[id]
			}
			if !w.sawMoved {
				w.firstMovedTx = txT[id]
				w.sawMoved = true
			}
			continue
		}
		exec := execT[id]
		var load int64
		p := pm.FirstPart[id]
		if reg := p % regions; firstNeed[reg] < 0 {
			firstNeed[reg] = p
			firstLead[reg] = !w.sawMoved
			loadedR[reg] = p
		} else if loadedR[reg] != p {
			load = reconT
			loadedR[reg] = p
		}
		// Straddling loads ride the execution window — there is no
		// data-path window for prefetch to hide them in.
		for q := p + 1; q <= pm.LastPart[id]; q++ {
			if reg := q % regions; firstNeed[reg] < 0 {
				firstNeed[reg] = q
				firstLead[reg] = !w.sawMoved
				firstStraddle[reg] = true
				loadedR[reg] = q
			} else if loadedR[reg] != q {
				exec += reconT
				loadedR[reg] = q
			}
		}
		w.fineExec += exec
		w.fineLoad += load
		if !w.sawMoved {
			w.leadFine += exec + load
		}
		w.sawFine = true
	}
	// resolve charges each region's symbolic first load against a start
	// residency: the empty fabric (initial=true; with no partitions at all
	// the replay treats partition 0 as trivially resident) or the walk's own
	// end state (the steady-state frames, which start and end in loadedR).
	resolve := func(initial bool) frameWalk {
		v := w
		for reg := 0; reg < regions; reg++ {
			p := firstNeed[reg]
			if p < 0 {
				continue
			}
			if initial {
				start := -1
				if pm.NumPartitions == 0 && reg == 0 {
					start = 0
				}
				if p == start {
					continue
				}
			} else if p == loadedR[reg] {
				continue
			}
			if firstStraddle[reg] {
				v.fineExec += reconT
			} else {
				v.fineLoad += reconT
			}
			if firstLead[reg] {
				v.leadFine += reconT
			}
		}
		return v
	}
	first := resolve(true)
	last := first
	frames := int64(cfg.Frames)
	if cfg.Frames > 1 {
		last = resolve(false)
	}

	// Frame-1 chain: frame 1 is fully serial and later frames never delay
	// it. Prefetch can hide only the configuration loads (inside the
	// frame's own data-path windows), so they are the only term dropped.
	chain1 := first.fineExec + first.coarse + first.mem
	chainS := last.fineExec + last.coarse + last.mem
	if !cfg.Prefetch {
		chain1 += first.fineLoad
		chainS += last.fineLoad
	}
	floor := chain1
	if cfg.Frames > 1 {
		fine1 := first.fineExec + first.fineLoad
		fineS := last.fineExec + last.fineLoad
		if first.sawFine {
			// Fine-anchored: the last frame's first fine event starts no
			// earlier than the fine timeline's F−1 preceding frames of
			// charges (execution, crossings and loads all occupy it, with
			// or without prefetch); from that event the last frame chains
			// serially, minus its leading moved windows.
			if f := fine1 + (frames-2)*fineS + chainS - last.leadMoved; f > floor {
				floor = f
			}
			// Pure fine occupancy — can beat the anchored chain under
			// prefetch, where chainS drops the loads.
			if f := fine1 + (frames-1)*fineS; f > floor {
				floor = f
			}
		}
		if first.sawMoved {
			// Coarse-anchored: the data-path serves frames in order, so the
			// last frame's first kernel starts no earlier than F−1 frames
			// of data-path occupancy; its own transfer precedes that start,
			// so it is excluded from the remaining chain.
			if f := (frames-1)*last.coarse + chainS - last.leadFine - last.firstMovedTx; f > floor {
				floor = f
			}
			// Transfer-channel-anchored: same argument at the first
			// transfer of the last frame.
			if f := (frames-1)*last.mem + chainS - last.leadFine; f > floor {
				floor = f
			}
		}
	}
	return ceilDiv(floor, ratio), nil
}

// replay is the event-driven core shared by Simulate and Makespan: it runs
// the trace against the mapping and returns the makespan in ticks. cfg must
// already be normalized and a must be non-nil. When rep is non-nil the full
// occupancy report and per-kernel timeline are filled in; when it is nil the
// loop tracks only the makespan and skips every per-kernel allocation.
func (r *Replayer) replay(ctx context.Context, cfg Config, movedBlocks []ir.BlockID, a *Arena, rep *Report) (int64, error) {
	in := r.in
	f := in.F
	n := len(f.Blocks)
	a.grow(n)
	moved := a.moved
	for _, b := range movedBlocks {
		if int(b) < 0 || int(b) >= n {
			return 0, fmt.Errorf("sim: moved block %d outside the function", b)
		}
		moved[b] = true
	}

	// The fine-grain side: pack the FPGA-resident blocks exactly as the
	// partitioning engine's t_FPGA evaluation does.
	pm, err := finegrain.PackFunction(f, in.Plat.Fine, func(id ir.BlockID) bool { return !moved[id] })
	if err != nil {
		return 0, err
	}

	// The coarse-grain side: per-kernel data-path latency (T_CGC cycles)
	// from the same list schedule the engine used, and per-invocation
	// transfer words from the live-in/out footprints. Both branches write
	// all three tables — the arena may hold a previous mapping's values.
	ratio := int64(in.Plat.Coarse.ClockRatio)
	reconT := int64(in.Plat.Fine.RegionReconfigCycles()) * ratio
	regions := pm.Regions
	latT, txT, execT := a.latT, a.txT, a.execT
	for id := 0; id < n; id++ {
		b := ir.BlockID(id)
		if moved[id] {
			lat, err := r.CoarseLatency(b)
			if err != nil {
				return 0, err
			}
			latT[id] = lat
			txT[id] = r.TransferTicks(b, cfg.Ports)
			execT[id] = 0
			continue
		}
		latT[id] = 0
		txT[id] = 0
		execT[id] = pm.PerBlockCycles[id] * ratio
	}

	trace := r.trace

	// Prefetch oracle: the temporal partition the sequencer will need next
	// on the fine fabric after each trace position (-1 when no fine-grain
	// block follows). One backward pass, shared by every frame.
	var nextPart []int32
	if cfg.Prefetch {
		if cap(a.nextPart) < len(trace) {
			a.nextPart = make([]int32, len(trace))
		}
		nextPart = a.nextPart[:len(trace)]
		need := int32(-1)
		for i := len(trace) - 1; i >= 0; i-- {
			nextPart[i] = need
			if !moved[trace[i]] {
				need = int32(pm.FirstPart[trace[i]])
			}
		}
	}

	// Event-driven replay over three resources. All times are in ticks
	// (T_CGC cycles = FPGA cycles x ClockRatio), so coarse-grain latencies
	// stay integral and the final makespan converts with one ceiling
	// division — which is what makes contention-free single-frame runs agree
	// with the analytical model cycle for cycle.
	var (
		fineFree, coarseFree, memFree int64
		fineBusyT, fineReconT         int64
		coarseBusyT, memBusyT         int64
		makespan                      int64
		reconfigs, hiddenReconT       int64
		prefetchPart                  = -1
		prefetchReady                 int64
	)
	// Per-region sequencer state: loadedR[reg] is the partition resident in
	// region reg (partition p lives in region p % regions). With one region
	// this is the paper's single loaded-partition scalar.
	a.growRegions(regions)
	loadedR := a.loadedR
	if pm.NumPartitions == 0 {
		loadedR[0] = 0 // nothing to configure
	}
	var invocations []uint64
	var busyT, firstT, lastT []int64
	note := func(ir.BlockID, int64, int64, int64) {}
	if rep != nil {
		invocations = make([]uint64, n)
		busyT = make([]int64, n)
		firstT = make([]int64, n)
		lastT = make([]int64, n)
		for i := range firstT {
			firstT[i] = -1
		}
		note = func(id ir.BlockID, start, end, busy int64) {
			invocations[id]++
			busyT[id] += busy
			if firstT[id] < 0 || start < firstT[id] {
				firstT[id] = start
			}
			if end > lastT[id] {
				lastT[id] = end
			}
		}
	}

	// Steady-state fast-forward (makespan-only replays): every frame runs
	// the identical trace, and within a frame events chain through prevEnd
	// (reset to zero) plus the three resource free-times. If between two
	// consecutive frame starts all three free-times advanced by the same
	// delta and the sequencer state (loaded partition, pending prefetch)
	// matches, the upcoming frame is the previous frame translated by that
	// delta — and by induction so is every frame after it. The remaining
	// frames then contribute exactly prevFrameMax + k*delta, so the replay
	// can stop walking. Detailed reports and OnFrame callbacks need the
	// per-frame events, so they opt out.
	fastForward := rep == nil && cfg.OnFrame == nil
	var (
		pFine, pCoarse, pMem, pReady int64
		pPrefetch                    = -2
		frameMax                     int64
	)
	prevLoadedR := a.prevLoadedR // all -2 after growRegions: never matches frame 0's state
	sameResidency := func() bool {
		for i, v := range loadedR {
			if prevLoadedR[i] != v {
				return false
			}
		}
		return true
	}
	for frame := 0; frame < cfg.Frames; frame++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if fastForward {
			// frameMax still holds the max event end of the frame that just
			// finished — the one the remaining frames would replicate.
			if frame > 0 {
				// The common shift is the largest per-resource advance; a
				// resource whose free time is still zero was never busy and
				// is consulted only through max(x, 0) = x, so it does not
				// constrain the translation (and lands on the shifted
				// pattern itself once its zero-length events move).
				d := max64(fineFree-pFine, max64(coarseFree-pCoarse, memFree-pMem))
				okR := func(free, prev int64) bool {
					return free-prev == d || (prev == 0 && free == 0)
				}
				if okR(fineFree, pFine) && okR(coarseFree, pCoarse) && okR(memFree, pMem) &&
					sameResidency() && prefetchPart == pPrefetch &&
					(prefetchPart < 0 || prefetchReady-pReady == d) {
					if m := frameMax + int64(cfg.Frames-frame)*d; m > makespan {
						makespan = m
					}
					break
				}
			}
			pFine, pCoarse, pMem, pReady = fineFree, coarseFree, memFree, prefetchReady
			copy(prevLoadedR, loadedR)
			pPrefetch = prefetchPart
			frameMax = 0
		}
		var prevEnd int64 // program-order completion within this frame
		for idx, b := range trace {
			if idx&0xffff == 0xffff {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			id := int(b)
			if moved[id] {
				// Transfer live-ins/outs through the shared memory, then
				// execute on the data-path. Both resources serve pipelined
				// frames in order.
				mStart := max64(prevEnd, memFree)
				mEnd := mStart + txT[id]
				memFree = mEnd
				memBusyT += txT[id]
				cStart := max64(mEnd, coarseFree)
				cEnd := cStart + latT[id]
				coarseFree = cEnd
				coarseBusyT += latT[id]
				prevEnd = cEnd
				if cEnd > makespan {
					makespan = cEnd
				}
				if cEnd > frameMax {
					frameMax = cEnd
				}
				note(b, mStart, cEnd, latT[id])

				// The fine fabric idles under this window: with prefetch the
				// sequencer uses it to load the next block's configuration.
				if cfg.Prefetch && prefetchPart < 0 {
					if need := int(nextPart[idx]); need >= 0 && loadedR[need%regions] != need {
						loadStart := max64(fineFree, mStart)
						prefetchReady = loadStart + reconT
						fineFree = prefetchReady
						fineReconT += reconT
						reconfigs++
						prefetchPart = need
					}
				}
				continue
			}

			start := max64(prevEnd, fineFree)
			need := pm.FirstPart[id]
			if reg := need % regions; loadedR[reg] != need {
				if prefetchPart == need {
					// Configuration already (being) loaded during a previous
					// data-path window; any remaining load time still stalls.
					stall := max64(0, prefetchReady-prevEnd)
					hiddenReconT += max64(0, reconT-stall)
					start = max64(start, prefetchReady)
				} else {
					// On-demand load: the region reconfigures, then executes.
					reconfigs++
					fineReconT += reconT
					start += reconT
				}
				loadedR[reg] = need
			}
			prefetchPart = -1
			// Straddling the block across partitions reloads a region only
			// when the next partition's region holds something else — with
			// one region that is every boundary, the paper's model; with
			// more, consecutive partitions land in different regions and
			// only wrap-around revisits reload.
			var strT int64
			for q := need + 1; q <= pm.LastPart[id]; q++ {
				if reg := q % regions; loadedR[reg] != q {
					strT += reconT
					reconfigs++
					loadedR[reg] = q
				}
			}
			end := start + execT[id] + strT
			fineBusyT += execT[id]
			fineReconT += strT
			fineFree = end
			prevEnd = end
			if end > makespan {
				makespan = end
			}
			if end > frameMax {
				frameMax = end
			}
			note(b, start, end, execT[id])
		}
		if cfg.OnFrame != nil {
			cfg.OnFrame(frame+1, ceilDiv(makespan, ratio))
		}
	}

	if rep == nil {
		return makespan, nil
	}

	// The model charges its crossing count once per frame (its per-frame
	// t_FPGA just scales), so the comparable total is crossings × frames —
	// Reconfigs likewise accumulates over frames.
	rep.ModelCrossings = pm.Crossings(in.Freq, in.Edges) * int64(cfg.Frames)
	rep.Reconfigs = reconfigs
	rep.TotalCycles = ceilDiv(makespan, ratio)
	rep.FineBusy = ceilDiv(fineBusyT, ratio)
	rep.FineReconfig = ceilDiv(fineReconT, ratio)
	rep.FineIdle = max64(0, rep.TotalCycles-rep.FineBusy-rep.FineReconfig)
	rep.CoarseBusy = ceilDiv(coarseBusyT, ratio)
	rep.CoarseIdle = max64(0, rep.TotalCycles-rep.CoarseBusy)
	rep.MemBusy = ceilDiv(memBusyT, ratio)
	rep.HiddenReconfigCycles = ceilDiv(hiddenReconT, ratio)

	for id := 0; id < n; id++ {
		if invocations[id] == 0 {
			continue
		}
		fabric := "fine"
		if moved[id] {
			fabric = "coarse"
		}
		rep.Kernels = append(rep.Kernels, KernelStat{
			Block:       ir.BlockID(id),
			Name:        f.Blocks[id].Name,
			Fabric:      fabric,
			Invocations: invocations[id],
			BusyCycles:  ceilDiv(busyT[id], ratio),
			FirstStart:  firstT[id] / ratio,
			LastEnd:     ceilDiv(lastT[id], ratio),
		})
	}
	return makespan, nil
}
