package sim

import (
	"context"
	"fmt"

	"hybridpart/internal/coarsegrain"
	"hybridpart/internal/finegrain"
	"hybridpart/internal/ir"
	"hybridpart/internal/partition"
	"hybridpart/internal/platform"
)

// Config holds the simulation knobs.
type Config struct {
	// Frames is the number of times the profiled trace is replayed (one
	// replay per application frame); 0 means 1. With more than one frame the
	// fabrics pipeline: frame i+1's fine-grain work proceeds while frame i's
	// kernels still occupy the data-path.
	Frames int
	// Ports is the width of the fabric-to-fabric transfer channel in
	// shared-memory ports; 0 means 1, the analytical model's serialization
	// assumption. A P-port transfer moves ceil(words/P) words per
	// CyclesPerWord slot; overlapping transfers from pipelined frames queue
	// on the channel instead of summing like the model's t_comm.
	Ports int
	// Prefetch overlaps the next temporal partition's bitstream load with
	// data-path execution: while a kernel runs on the CGCs, the sequencer
	// already loads the configuration of the next fine-grain block. Without
	// it the load starts only when the fine-grain block is dispatched.
	Prefetch bool
	// OnFrame, when non-nil, is called after each simulated frame of the
	// partitioned run with the 1-based frame number and the frame's
	// completion time in FPGA cycles. It runs on the simulator's goroutine.
	OnFrame func(frame int, cycles int64)
}

// Input is the simulated system: the flattened CDFG, its platform
// characterization, the dynamic-analysis profile, and the set of kernels
// the partitioning engine moved to the coarse-grain data-path (empty
// simulates the all-FPGA mapping).
type Input struct {
	Prog  *ir.Program
	F     *ir.Function
	Plat  platform.Platform
	Freq  []uint64
	Edges []finegrain.EdgeFreq
	Moved []ir.BlockID
}

// KernelStat is one row of the per-kernel timeline: aggregate fabric
// occupancy of one basic block across every invocation, in FPGA cycles.
type KernelStat struct {
	Block       ir.BlockID
	Name        string
	Fabric      string // "fine" or "coarse"
	Invocations uint64
	// BusyCycles is the block's fabric occupancy: level cycles on the FPGA,
	// data-path latency on the CGCs (transfers are accounted to the memory
	// channel, reconfigurations to the fine fabric).
	BusyCycles int64
	FirstStart int64
	LastEnd    int64
}

// Report is the outcome of one simulation.
type Report struct {
	// TotalCycles is the simulated makespan in FPGA cycles.
	TotalCycles int64
	Frames      int
	Ports       int
	Prefetch    bool
	// Runs is the number of profiled runs folded into the replayed trace.
	Runs int

	// Fine-grain fabric occupancy, FPGA cycles: executing blocks, loading
	// configurations, and idle (makespan minus the other two).
	FineBusy     int64
	FineReconfig int64
	FineIdle     int64
	// Coarse-grain data-path occupancy.
	CoarseBusy int64
	CoarseIdle int64
	// MemBusy is the transfer channel's occupancy.
	MemBusy int64

	// Reconfigs counts performed configuration loads across every frame;
	// ModelCrossings is the count the analytical model charges for the same
	// mapping and frame count (eq. 4's crossing term, once per frame) —
	// they differ when a partition switch hides behind a data-path window
	// (never charged by the model) or survives a frame boundary (always
	// recharged by it).
	Reconfigs      int64
	ModelCrossings int64
	// HiddenReconfigCycles is the portion of the reconfiguration time that
	// prefetching overlapped with data-path execution.
	HiddenReconfigCycles int64

	Kernels []KernelStat
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Replayer is the reusable half of the simulator: the canonical trace, the
// live-in/out footprints and the per-kernel data-path schedules, all of
// which depend only on the application and its profile — not on the mapping.
// Building one Replayer and calling Simulate per candidate moved-set is what
// makes simulated makespan affordable as a move-loop objective: each
// candidate pays only the packing and the replay, never a trace
// reconstruction or a list-scheduling pass. A Replayer is not safe for
// concurrent use (the schedule memo is unlocked); clone one per goroutine.
type Replayer struct {
	in     Input
	trace  []ir.BlockID
	runs   int
	liveIO []partition.LiveIO
	arrLen coarsegrain.ArrLenFunc

	// schedule memo: per-block data-path latency in T_CGC cycles, or the
	// mapping error. Filled lazily — most blocks are never candidates.
	schedDone []bool
	schedLat  []int64
	schedErr  []error
}

// NewReplayer validates the platform, reconstructs the canonical trace and
// computes the mapping-independent tables. in.Moved is ignored — the mapping
// is chosen per Simulate call.
func NewReplayer(in Input) (*Replayer, error) {
	if err := in.Plat.Validate(); err != nil {
		return nil, err
	}
	trace, runs, err := BuildTrace(in.F, in.Freq, in.Edges)
	if err != nil {
		return nil, err
	}
	n := len(in.F.Blocks)
	return &Replayer{
		in:        in,
		trace:     trace,
		runs:      runs,
		liveIO:    partition.ComputeLiveIO(in.F),
		arrLen:    coarsegrain.ArrLenOf(in.Prog, in.F),
		schedDone: make([]bool, n),
		schedLat:  make([]int64, n),
		schedErr:  make([]error, n),
	}, nil
}

// Runs returns the number of profiled runs folded into the replayed trace.
func (r *Replayer) Runs() int { return r.runs }

// TraceLen returns the number of kernel invocations replayed per frame.
func (r *Replayer) TraceLen() int { return len(r.trace) }

// CoarseLatency returns block id's data-path latency in T_CGC cycles (the
// same list schedule the partitioning engine uses), memoized across calls.
func (r *Replayer) CoarseLatency(id ir.BlockID) (int64, error) {
	if !r.schedDone[id] {
		r.schedDone[id] = true
		sched, err := coarsegrain.MapDFG(ir.BuildDFG(r.in.F, r.in.F.Block(id)), r.in.Plat.Coarse, r.arrLen)
		if err != nil {
			r.schedErr[id] = fmt.Errorf("sim: moved kernel b%d has no data-path schedule: %w", id, err)
		} else {
			r.schedLat[id] = sched.Latency
		}
	}
	return r.schedLat[id], r.schedErr[id]
}

// WalkTrace calls fn for every kernel invocation of the canonical trace, in
// replay order. Closed-form scorers use it to run reduced state machines
// (e.g. the sequencer's loaded-partition walk) without the event engine.
func (r *Replayer) WalkTrace(fn func(ir.BlockID)) {
	for _, b := range r.trace {
		fn(b)
	}
}

// TransferTicks returns block id's per-invocation transfer-channel occupancy
// in ticks when its live-in/out words stripe over the given port count.
func (r *Replayer) TransferTicks(id ir.BlockID, ports int) int64 {
	ratio := int64(r.in.Plat.Coarse.ClockRatio)
	words := int64(r.liveIO[id].In + r.liveIO[id].Out)
	perSlot := ceilDiv(words, int64(ports))
	return (perSlot*int64(r.in.Plat.Comm.CyclesPerWord) + int64(r.in.Plat.Comm.SyncCycles)) * ratio
}

// normalize folds cfg's documented-equivalent zero knobs onto their defaults
// and rejects negative values.
func (cfg *Config) normalize() error {
	if cfg.Frames < 0 || cfg.Ports < 0 {
		return fmt.Errorf("sim: frames and ports must be non-negative, got %d/%d", cfg.Frames, cfg.Ports)
	}
	if cfg.Frames == 0 {
		cfg.Frames = 1
	}
	if cfg.Ports == 0 {
		cfg.Ports = 1
	}
	return nil
}

// Simulate replays the profiled trace of in against the given mapping under
// cfg. It is deterministic: equal inputs produce equal reports. The context
// is checked between frames and periodically inside each frame's replay.
func Simulate(ctx context.Context, in Input, cfg Config) (*Report, error) {
	r, err := NewReplayer(in)
	if err != nil {
		return nil, err
	}
	return r.Simulate(ctx, cfg, in.Moved)
}

// Simulate replays the trace against the mapping that moves the given blocks
// to the coarse-grain data-path (nil simulates the all-FPGA mapping).
func (r *Replayer) Simulate(ctx context.Context, cfg Config, movedBlocks []ir.BlockID) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	in := r.in
	f := in.F
	n := len(f.Blocks)
	moved := make([]bool, n)
	for _, b := range movedBlocks {
		if int(b) < 0 || int(b) >= n {
			return nil, fmt.Errorf("sim: moved block %d outside the function", b)
		}
		moved[b] = true
	}

	// The fine-grain side: pack the FPGA-resident blocks exactly as the
	// partitioning engine's t_FPGA evaluation does.
	pm, err := finegrain.PackFunction(f, in.Plat.Fine, func(id ir.BlockID) bool { return !moved[id] })
	if err != nil {
		return nil, err
	}

	// The coarse-grain side: per-kernel data-path latency (T_CGC cycles)
	// from the same list schedule the engine used, and per-invocation
	// transfer words from the live-in/out footprints.
	ratio := int64(in.Plat.Coarse.ClockRatio)
	reconT := int64(in.Plat.Fine.ReconfigCycles) * ratio
	latT := make([]int64, n)  // kernel latency, in ticks (T_CGC cycles)
	txT := make([]int64, n)   // transfer-channel occupancy per invocation, ticks
	execT := make([]int64, n) // fine-grain level cycles per execution, ticks
	intT := make([]int64, n)  // in-block partition crossings per execution, ticks
	for id := 0; id < n; id++ {
		b := ir.BlockID(id)
		if moved[id] {
			lat, err := r.CoarseLatency(b)
			if err != nil {
				return nil, err
			}
			latT[id] = lat
			txT[id] = r.TransferTicks(b, cfg.Ports)
			continue
		}
		execT[id] = pm.PerBlockCycles[id] * ratio
		intT[id] = int64(pm.InternalCrossings[id]) * reconT
	}

	trace, runs := r.trace, r.runs

	rep := &Report{
		Frames:   cfg.Frames,
		Ports:    cfg.Ports,
		Prefetch: cfg.Prefetch,
		Runs:     runs,
		// The model charges its crossing count once per frame (its
		// per-frame t_FPGA just scales), so the comparable total is
		// crossings × frames — Reconfigs likewise accumulates over frames.
		ModelCrossings: pm.Crossings(in.Freq, in.Edges) * int64(cfg.Frames),
	}

	// Prefetch oracle: the temporal partition the sequencer will need next
	// on the fine fabric after each trace position (-1 when no fine-grain
	// block follows). One backward pass, shared by every frame.
	var nextPart []int32
	if cfg.Prefetch {
		nextPart = make([]int32, len(trace))
		need := int32(-1)
		for i := len(trace) - 1; i >= 0; i-- {
			nextPart[i] = need
			if !moved[trace[i]] {
				need = int32(pm.FirstPart[trace[i]])
			}
		}
	}

	// Event-driven replay over three resources. All times are in ticks
	// (T_CGC cycles = FPGA cycles x ClockRatio), so coarse-grain latencies
	// stay integral and the final makespan converts with one ceiling
	// division — which is what makes contention-free single-frame runs agree
	// with the analytical model cycle for cycle.
	var (
		fineFree, coarseFree, memFree int64
		fineBusyT, fineReconT         int64
		coarseBusyT, memBusyT         int64
		makespan                      int64
		loadedPart                    = -1
		prefetchPart                  = -1
		prefetchReady                 int64
	)
	if pm.NumPartitions == 0 {
		loadedPart = 0 // nothing to configure
	}
	invocations := make([]uint64, n)
	busyT := make([]int64, n)
	firstT := make([]int64, n)
	lastT := make([]int64, n)
	for i := range firstT {
		firstT[i] = -1
	}
	note := func(id ir.BlockID, start, end, busy int64) {
		invocations[id]++
		busyT[id] += busy
		if firstT[id] < 0 || start < firstT[id] {
			firstT[id] = start
		}
		if end > lastT[id] {
			lastT[id] = end
		}
		if end > makespan {
			makespan = end
		}
	}

	for frame := 0; frame < cfg.Frames; frame++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var prevEnd int64 // program-order completion within this frame
		for idx, b := range trace {
			if idx&0xffff == 0xffff {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			id := int(b)
			if moved[id] {
				// Transfer live-ins/outs through the shared memory, then
				// execute on the data-path. Both resources serve pipelined
				// frames in order.
				mStart := max64(prevEnd, memFree)
				mEnd := mStart + txT[id]
				memFree = mEnd
				memBusyT += txT[id]
				cStart := max64(mEnd, coarseFree)
				cEnd := cStart + latT[id]
				coarseFree = cEnd
				coarseBusyT += latT[id]
				prevEnd = cEnd
				note(b, mStart, cEnd, latT[id])

				// The fine fabric idles under this window: with prefetch the
				// sequencer uses it to load the next block's configuration.
				if cfg.Prefetch && prefetchPart < 0 {
					if need := int(nextPart[idx]); need >= 0 && need != loadedPart {
						loadStart := max64(fineFree, mStart)
						prefetchReady = loadStart + reconT
						fineFree = prefetchReady
						fineReconT += reconT
						rep.Reconfigs++
						prefetchPart = need
					}
				}
				continue
			}

			start := max64(prevEnd, fineFree)
			if need := pm.FirstPart[id]; need != loadedPart {
				if prefetchPart == need {
					// Configuration already (being) loaded during a previous
					// data-path window; any remaining load time still stalls.
					stall := max64(0, prefetchReady-prevEnd)
					rep.HiddenReconfigCycles += max64(0, reconT-stall)
					start = max64(start, prefetchReady)
				} else {
					// On-demand load: the fabric reconfigures, then executes.
					rep.Reconfigs++
					fineReconT += reconT
					start += reconT
				}
				loadedPart = need
			}
			prefetchPart = -1
			end := start + execT[id] + intT[id]
			fineBusyT += execT[id]
			fineReconT += intT[id]
			rep.Reconfigs += int64(pm.InternalCrossings[id])
			loadedPart = pm.LastPart[id]
			fineFree = end
			prevEnd = end
			note(b, start, end, execT[id])
		}
		if cfg.OnFrame != nil {
			cfg.OnFrame(frame+1, ceilDiv(makespan, ratio))
		}
	}

	rep.TotalCycles = ceilDiv(makespan, ratio)
	rep.FineBusy = ceilDiv(fineBusyT, ratio)
	rep.FineReconfig = ceilDiv(fineReconT, ratio)
	rep.FineIdle = max64(0, rep.TotalCycles-rep.FineBusy-rep.FineReconfig)
	rep.CoarseBusy = ceilDiv(coarseBusyT, ratio)
	rep.CoarseIdle = max64(0, rep.TotalCycles-rep.CoarseBusy)
	rep.MemBusy = ceilDiv(memBusyT, ratio)
	rep.HiddenReconfigCycles = ceilDiv(rep.HiddenReconfigCycles, ratio)

	for id := 0; id < n; id++ {
		if invocations[id] == 0 {
			continue
		}
		fabric := "fine"
		if moved[id] {
			fabric = "coarse"
		}
		rep.Kernels = append(rep.Kernels, KernelStat{
			Block:       ir.BlockID(id),
			Name:        f.Blocks[id].Name,
			Fabric:      fabric,
			Invocations: invocations[id],
			BusyCycles:  ceilDiv(busyT[id], ratio),
			FirstStart:  firstT[id] / ratio,
			LastEnd:     ceilDiv(lastT[id], ratio),
		})
	}
	return rep, nil
}
