// Package minic implements the frontend for the C subset in which the
// benchmark applications are written: lexer, recursive-descent parser, AST
// and semantic checks. It stands in for the paper's SUIF2/MachineSUIF +
// Lex toolchain as the producer of the CDFG input (see DESIGN.md).
//
// Supported subset: 32-bit signed int scalars, one- and two-dimensional int
// arrays, const int compile-time constants, functions returning int or void,
// the full C integer operator set (including ?:, && and || with
// short-circuit semantics), if/else, for, while, do-while, break, continue.
// Pointers, floats, structs and preprocessing are intentionally absent; the
// DSP kernels the methodology targets are fixed-point integer code.
package minic

import "fmt"

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT

	// Keywords.
	KwInt
	KwVoid
	KwConst
	KwIf
	KwElse
	KwFor
	KwWhile
	KwDo
	KwReturn
	KwBreak
	KwContinue

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Semi
	Comma
	Question
	Colon

	// Operators.
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr

	// Assignment operators.
	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	ShlAssign
	ShrAssign
	AmpAssign
	PipeAssign
	CaretAssign

	Inc
	Dec
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal",
	KwInt: "int", KwVoid: "void", KwConst: "const", KwIf: "if", KwElse: "else",
	KwFor: "for", KwWhile: "while", KwDo: "do", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Semi: ";", Comma: ",", Question: "?", Colon: ":",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", ShlAssign: "<<=", ShrAssign: ">>=",
	AmpAssign: "&=", PipeAssign: "|=", CaretAssign: "^=",
	Inc: "++", Dec: "--",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "void": KwVoid, "const": KwConst, "if": KwIf, "else": KwElse,
	"for": KwFor, "while": KwWhile, "do": KwDo, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // identifiers and literals
	Val  int32  // INTLIT value
	Line int    // 1-based
	Col  int    // 1-based
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Text)
	case INTLIT:
		return fmt.Sprintf("%d", t.Val)
	default:
		return t.Kind.String()
	}
}

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
