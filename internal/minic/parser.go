package minic

// Parser is a recursive-descent parser producing the AST.
type Parser struct {
	toks []Token
	pos  int
	// consts collects const int values seen so far so array dimensions can
	// be folded during parsing.
	consts map[string]int32
}

// Parse lexes and parses src into a File.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, consts: map[string]int32{}}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, t.Col, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		isConst := p.accept(KwConst)
		t := p.cur()
		switch t.Kind {
		case KwInt:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if p.at(LParen) {
				if isConst {
					return nil, errf(t.Line, t.Col, "const function declarations are not supported")
				}
				fd, err := p.parseFuncRest(name.Text, false, t.Line)
				if err != nil {
					return nil, err
				}
				f.Decls = append(f.Decls, fd)
			} else {
				decls, err := p.parseVarRest(name, isConst, true)
				if err != nil {
					return nil, err
				}
				for _, d := range decls {
					f.Decls = append(f.Decls, d)
				}
			}
		case KwVoid:
			if isConst {
				return nil, errf(t.Line, t.Col, "const void is not a type")
			}
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if !p.at(LParen) {
				return nil, errf(t.Line, t.Col, "void is only valid as a function return type")
			}
			fd, err := p.parseFuncRest(name.Text, true, t.Line)
			if err != nil {
				return nil, err
			}
			f.Decls = append(f.Decls, fd)
		default:
			return nil, errf(t.Line, t.Col, "expected declaration, found %s", t)
		}
	}
	return f, nil
}

// parseFuncRest parses "(params) { body }" after `int|void name`.
func (p *Parser) parseFuncRest(name string, void bool, line int) (*FuncDecl, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name, Void: void, Line: line}
	if !p.accept(RParen) {
		for {
			prm, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, prm)
			if p.accept(RParen) {
				break
			}
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) parseParam() (ParamDecl, error) {
	t := p.cur()
	if _, err := p.expect(KwInt); err != nil {
		return ParamDecl{}, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return ParamDecl{}, err
	}
	prm := ParamDecl{Name: name.Text, Line: t.Line}
	if p.accept(LBrack) {
		prm.IsArray = true
		// `int a[]` or `int a[N]` (outer dim ignored, by-reference).
		if !p.at(RBrack) {
			if _, err := p.parseConstExpr(); err != nil {
				return ParamDecl{}, err
			}
		}
		if _, err := p.expect(RBrack); err != nil {
			return ParamDecl{}, err
		}
		if p.accept(LBrack) {
			dim, err := p.parseConstExpr()
			if err != nil {
				return ParamDecl{}, err
			}
			if dim <= 0 {
				return ParamDecl{}, errf(t.Line, t.Col, "inner array dimension must be positive")
			}
			prm.InnerDim = dim
			if _, err := p.expect(RBrack); err != nil {
				return ParamDecl{}, err
			}
		}
	}
	return prm, nil
}

// parseVarRest parses declarators after `[const] int name`, through `;`.
func (p *Parser) parseVarRest(first Token, isConst, global bool) ([]*VarDecl, error) {
	var out []*VarDecl
	name := first
	for {
		d := &VarDecl{Name: name.Text, IsConst: isConst, IsGlobal: global, Line: name.Line}
		for len(d.Dims) < 2 && p.accept(LBrack) {
			dim, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			if dim <= 0 {
				return nil, errf(name.Line, name.Col, "array dimension must be positive")
			}
			d.Dims = append(d.Dims, dim)
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
		}
		if p.at(LBrack) {
			return nil, errf(name.Line, name.Col, "arrays of more than two dimensions are not supported")
		}
		if p.accept(Assign) {
			if p.accept(LBrace) {
				if len(d.Dims) == 0 {
					return nil, errf(name.Line, name.Col, "brace initializer on scalar %s", d.Name)
				}
				for !p.accept(RBrace) {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					d.ArrInit = append(d.ArrInit, e)
					if !p.at(RBrace) {
						if _, err := p.expect(Comma); err != nil {
							return nil, err
						}
					}
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if len(d.Dims) > 0 {
					return nil, errf(name.Line, name.Col, "scalar initializer on array %s", d.Name)
				}
				d.Init = e
			}
		}
		if isConst {
			if d.Init == nil || len(d.Dims) > 0 {
				return nil, errf(name.Line, name.Col, "const %s requires a scalar initializer", d.Name)
			}
			v, ok := p.foldConst(d.Init)
			if !ok {
				return nil, errf(name.Line, name.Col, "const %s initializer is not a constant expression", d.Name)
			}
			p.consts[d.Name] = v
			d.Init = &IntLit{Val: v, Line: d.Line}
		}
		out = append(out, d)
		if p.accept(Semi) {
			return out, nil
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		n, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		name = n
	}
}

// parseConstExpr parses an expression and requires it to fold to a constant.
func (p *Parser) parseConstExpr() (int32, error) {
	t := p.cur()
	e, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	v, ok := p.foldConst(e)
	if !ok {
		return 0, errf(t.Line, t.Col, "expression is not compile-time constant")
	}
	return v, nil
}

// foldConst evaluates e if it only involves literals and known const ints.
func (p *Parser) foldConst(e Expr) (int32, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *Ident:
		v, ok := p.consts[e.Name]
		return v, ok
	case *UnaryExpr:
		x, ok := p.foldConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case Minus:
			return -x, true
		case Tilde:
			return ^x, true
		case Bang:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
	case *BinaryExpr:
		x, ok := p.foldConst(e.X)
		if !ok {
			return 0, false
		}
		y, ok := p.foldConst(e.Y)
		if !ok {
			return 0, false
		}
		return foldBinary(e.Op, x, y)
	case *CondExpr:
		c, ok := p.foldConst(e.Cond)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return p.foldConst(e.Then)
		}
		return p.foldConst(e.Else)
	}
	return 0, false
}

func foldBinary(op Kind, x, y int32) (int32, bool) {
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case Plus:
		return x + y, true
	case Minus:
		return x - y, true
	case Star:
		return x * y, true
	case Slash:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case Percent:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case Amp:
		return x & y, true
	case Pipe:
		return x | y, true
	case Caret:
		return x ^ y, true
	case Shl:
		return x << (uint32(y) & 31), true
	case Shr:
		return x >> (uint32(y) & 31), true
	case Lt:
		return b2i(x < y), true
	case Le:
		return b2i(x <= y), true
	case Gt:
		return b2i(x > y), true
	case Ge:
		return b2i(x >= y), true
	case EqEq:
		return b2i(x == y), true
	case NotEq:
		return b2i(x != y), true
	case AndAnd:
		return b2i(x != 0 && y != 0), true
	case OrOr:
		return b2i(x != 0 || y != 0), true
	}
	return 0, false
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Line: lb.Line}
	for !p.accept(RBrace) {
		if p.at(EOF) {
			return nil, errf(lb.Line, lb.Col, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case KwConst, KwInt:
		isConst := p.accept(KwConst)
		if _, err := p.expect(KwInt); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		decls, err := p.parseVarRest(name, isConst, false)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decls: decls, Line: t.Line}, nil
	case LBrace:
		return p.parseBlock()
	case Semi:
		p.next()
		return &EmptyStmt{Line: t.Line}, nil
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(KwElse) {
			if els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.Line}, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
	case KwDo:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Line: t.Line}, nil
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		if p.accept(Semi) {
			return &ReturnStmt{Line: t.Line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Line: t.Line}, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{Line: t.Line}
	if !p.accept(Semi) {
		if p.at(KwInt) {
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			decls, err := p.parseVarRest(name, false, false)
			if err != nil {
				return nil, err
			}
			fs.Init = &DeclStmt{Decls: decls, Line: t.Line}
		} else {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			fs.Init = s
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	if !p.at(RParen) {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = s
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// parseSimpleStmt parses an assignment, inc/dec or call statement (no
// trailing semicolon).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, ShlAssign, ShrAssign, AmpAssign, PipeAssign, CaretAssign:
		if !isLvalue(lhs) {
			return nil, errf(t.Line, t.Col, "left side of assignment is not assignable")
		}
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Op: k, LHS: lhs, RHS: rhs, Line: t.Line}, nil
	case Inc, Dec:
		if !isLvalue(lhs) {
			return nil, errf(t.Line, t.Col, "operand of %s is not assignable", k)
		}
		p.next()
		return &IncDecStmt{Op: k, LHS: lhs, Line: t.Line}, nil
	}
	if _, ok := lhs.(*CallExpr); ok {
		return &ExprStmt{X: lhs, Line: t.Line}, nil
	}
	return nil, errf(t.Line, t.Col, "expression statement has no effect")
}

func isLvalue(e Expr) bool {
	switch e.(type) {
	case *Ident, *IndexExpr:
		return true
	}
	return false
}

// Expression parsing: precedence climbing mirroring C.

var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	EqEq:   6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at(Question) {
		return cond, nil
	}
	q := p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Line: q.Line}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.Kind, X: lhs, Y: rhs, Line: t.Line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Tilde, Bang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Line: t.Line}, nil
	case Plus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntLit{Val: t.Val, Line: t.Line}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		switch p.cur().Kind {
		case LParen:
			p.next()
			call := &CallExpr{Name: t.Text, Line: t.Line}
			if !p.accept(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(RParen) {
						break
					}
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		case LBrack:
			p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			ix := &IndexExpr{Name: t.Text, I: i, Line: t.Line}
			if p.accept(LBrack) {
				j, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(RBrack); err != nil {
					return nil, err
				}
				ix.J = j
			}
			return ix, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	}
	return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
}
