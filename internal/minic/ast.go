package minic

// File is a parsed translation unit.
type File struct {
	Decls []Decl
}

// Decl is a top-level declaration: a function or a (possibly const) variable.
type Decl interface{ declNode() }

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Void   bool
	Params []ParamDecl
	Body   *BlockStmt
	Line   int
}

// ParamDecl declares one formal parameter. Arrays are passed by reference;
// two-dimensional array parameters carry their inner dimension so indexing
// can be lowered (`int m[][8]`).
type ParamDecl struct {
	Name     string
	IsArray  bool
	InnerDim int32 // 0 for scalar and 1-D array params
	Line     int
}

// VarDecl declares a scalar or array variable. Dims is empty for scalars,
// has one entry for 1-D arrays, two for 2-D. A const scalar must have a
// compile-time constant initializer and participates in constant expressions
// (array dimensions in particular).
type VarDecl struct {
	Name     string
	Dims     []int32
	Init     Expr   // scalar initializer (may be nil)
	ArrInit  []Expr // array initializer list (may be nil)
	IsConst  bool
	IsGlobal bool
	Line     int
}

func (*FuncDecl) declNode() {}
func (*VarDecl) declNode()  {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a `{ ... }` statement list (declarations allowed anywhere).
type BlockStmt struct {
	List []Stmt
	Line int
}

// DeclStmt wraps local variable declarations in statement position.
type DeclStmt struct {
	Decls []*VarDecl
	Line  int
}

// AssignStmt performs `LHS op= RHS`; Op is Assign for plain assignment.
type AssignStmt struct {
	Op   Kind // Assign, PlusAssign, ...
	LHS  Expr // Ident or IndexExpr
	RHS  Expr
	Line int
}

// IncDecStmt is `LHS++` or `LHS--`.
type IncDecStmt struct {
	Op   Kind // Inc or Dec
	LHS  Expr
	Line int
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// ForStmt is a C for loop; Init/Post may be nil, Cond may be nil (infinite).
type ForStmt struct {
	Init Stmt // AssignStmt, IncDecStmt or DeclStmt
	Cond Expr
	Post Stmt
	Body Stmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Line int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X    Expr // nil for void return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Line int }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()    {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() int
}

// IntLit is an integer literal.
type IntLit struct {
	Val  int32
	Line int
}

// Ident references a scalar variable, const, or array (in call args).
type Ident struct {
	Name string
	Line int
}

// IndexExpr is a[i] or a[i][j].
type IndexExpr struct {
	Name string
	I    Expr
	J    Expr // nil for 1-D access
	Line int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// UnaryExpr applies Minus, Tilde or Bang.
type UnaryExpr struct {
	Op   Kind
	X    Expr
	Line int
}

// BinaryExpr applies a binary operator; AndAnd/OrOr short-circuit.
type BinaryExpr struct {
	Op   Kind
	X, Y Expr
	Line int
}

// CondExpr is the ternary `Cond ? Then : Else`.
type CondExpr struct {
	Cond, Then, Else Expr
	Line             int
}

func (*IntLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}

func (e *IntLit) Pos() int     { return e.Line }
func (e *Ident) Pos() int      { return e.Line }
func (e *IndexExpr) Pos() int  { return e.Line }
func (e *CallExpr) Pos() int   { return e.Line }
func (e *UnaryExpr) Pos() int  { return e.Line }
func (e *BinaryExpr) Pos() int { return e.Line }
func (e *CondExpr) Pos() int   { return e.Line }
