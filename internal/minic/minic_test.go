package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	src := "int x = 42; // comment\n/* block\ncomment */ x <<= 0x1F;"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwInt, IDENT, Assign, INTLIT, Semi, IDENT, ShlAssign, INTLIT, Semi, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("literal = %d, want 42", toks[3].Val)
	}
	if toks[7].Val != 0x1F {
		t.Errorf("hex literal = %d, want 31", toks[7].Val)
	}
}

func TestLexAllOperators(t *testing.T) {
	src := "+ - * / % & | ^ ~ ! << >> < <= > >= == != && || = += -= *= /= %= <<= >>= &= |= ^= ++ -- ? : ( ) { } [ ] ; ,"
	want := []Kind{Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde,
		Bang, Shl, Shr, Lt, Le, Gt, Ge, EqEq, NotEq, AndAnd, OrOr, Assign,
		PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
		ShlAssign, ShrAssign, AmpAssign, PipeAssign, CaretAssign, Inc, Dec,
		Question, Colon, LParen, RParen, LBrace, RBrace, LBrack, RBrack, Semi, Comma, EOF}
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "0x"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("int\nx\n=\n1;")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3, 4, 4} {
		if toks[i].Line != want {
			t.Errorf("token %d line = %d, want %d", i, toks[i].Line, want)
		}
	}
}

const validProgram = `
const int N = 8;
int coeff[N] = {1, 2, 3, 4, 5, 6, 7, 8};
int scratch[N][N];

int weight(int v) {
    if (v < 0) { return -v; }
    return v;
}

void fill(int m[][8], int seed) {
    int i;
    int j;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j += 1) {
            m[i][j] = seed + i * N + j;
        }
    }
}

int main_entry(int x) {
    int acc = 0;
    int k = 0;
    fill(scratch, x);
    while (k < N) {
        acc += coeff[k] * weight(scratch[k][k] - 4);
        k++;
    }
    do { acc -= 1; } while (acc > 1000);
    return (acc > 0) ? acc : -acc;
}
`

func TestParseAndCheckValidProgram(t *testing.T) {
	f, err := Parse(validProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	var funcs, vars int
	for _, d := range f.Decls {
		switch d.(type) {
		case *FuncDecl:
			funcs++
		case *VarDecl:
			vars++
		}
	}
	if funcs != 3 || vars != 3 {
		t.Fatalf("got %d funcs, %d vars; want 3 and 3", funcs, vars)
	}
}

func TestConstFolding(t *testing.T) {
	src := `
const int A = 4;
const int B = A * 2 + 1;
const int C = (B > 8) ? B << 1 : 0;
int buf[C];
void f() { buf[0] = 1; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "buf" {
			if v.Dims[0] != 18 {
				t.Fatalf("buf dim = %d, want 18", v.Dims[0])
			}
			return
		}
	}
	t.Fatal("buf not found")
}

func TestParsePrecedence(t *testing.T) {
	// 2+3*4 must parse as 2+(3*4); fold to check shape.
	p := &Parser{consts: map[string]int32{}}
	f, err := Parse("const int X = 2 + 3 * 4; int a[X]; void f() { a[0]=0; }")
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "a" {
			if v.Dims[0] != 14 {
				t.Fatalf("X = %d, want 14", v.Dims[0])
			}
		}
	}
	// Shift binds tighter than comparison: 1 << 2 < 8 is (1<<2) < 8 = 1.
	f2, err := Parse("const int Y = (1 << 2 < 8) ? 3 : 5; int b[Y]; void g() { b[0]=0; }")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f2.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "b" {
			if v.Dims[0] != 3 {
				t.Fatalf("Y = %d, want 3", v.Dims[0])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( {",                     // bad params
		"int f() { return 1 }",         // missing semicolon
		"int f() { 1 + 2; }",           // effect-free statement
		"void f() { int a[0]; }",       // zero-size array
		"void f() { int a[2][2][2]; }", // 3-D array
		"int f() { if (1) }",           // missing statement
		"float f() {}",                 // unknown type
		"int f() { int x = ; }",        // missing initializer
		"void f() { x = 1",             // unterminated
		"const int C; void f() {}",     // const without init
		"int x[3] = 5; void f() {}",    // scalar init on array
		"int y = {1}; void f() {}",     // brace init on scalar
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined var", "int f() { return zz; }"},
		{"undefined func", "int f() { return g(); }"},
		{"void as value", "void g() {} int f() { return g(); }"},
		{"arity", "int g(int a) { return a; } int f() { return g(); }"},
		{"array as scalar", "int a[4]; int f() { return a; }"},
		{"scalar indexed", "int f(int x) { return x[0]; }"},
		{"1D array with 2 indices", "int a[4]; int f() { return a[0][0]; }"},
		{"2D array with 1 index", "int a[4][4]; int f() { return a[0]; }"},
		{"assign to const", "const int C = 1; void f() { C = 2; }"},
		{"assign to array", "int a[4]; void f() { a = 1; }"},
		{"break outside loop", "void f() { break; }"},
		{"continue outside loop", "void f() { continue; }"},
		{"return value from void", "void f() { return 1; }"},
		{"missing return value", "int f() { return; }"},
		{"redeclaration", "int f() { int x; int x; return 0; }"},
		{"dup param", "int f(int a, int a) { return 0; }"},
		{"mutable global scalar", "int g; void f() { g = 1; }"},
		{"array arg dim mismatch", "void g(int m[][4]) {} int a[4]; void f() { g(a); }"},
		{"array arg inner dim", "void g(int m[][4]) {} int a[4][8]; void f() { g(a); }"},
		{"scalar passed to array param", "void g(int m[]) {} void f() { g(3); }"},
		{"too many initializers", "int a[2] = {1,2,3}; void f() {}"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if err := Check(f); err == nil {
			t.Errorf("%s: Check accepted %q", c.name, c.src)
		}
	}
}

func TestCheckAcceptsArrayArgs(t *testing.T) {
	src := `
void g(int m[], int q[][4]) { m[0] = q[0][0]; }
int a[8];
int b[2][4];
void f() { g(a, b); }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
}

// Property: the lexer never panics and always terminates with EOF or error.
func TestLexQuick(t *testing.T) {
	check := func(s string) bool {
		toks, err := Lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("int f() {\n  return zz +;\n}")
	if err == nil {
		t.Fatal("want parse error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q lacks line info", err)
	}
}
