package minic

import "fmt"

// symKind classifies a resolved name.
type symKind uint8

const (
	symConst symKind = iota
	symScalar
	symArray
	symFunc
)

type symbol struct {
	kind     symKind
	dims     int   // 0 scalar, 1 or 2 for arrays
	innerDim int32 // 2-D arrays: inner dimension
	fn       *FuncDecl
	isConst  bool
}

type scope struct {
	parent *scope
	names  map[string]*symbol
}

func (s *scope) lookup(name string) *symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *scope) declare(name string, sym *symbol) bool {
	if _, dup := s.names[name]; dup {
		return false
	}
	s.names[name] = sym
	return true
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]*symbol{}}
}

// Check performs semantic analysis on the file: name resolution, scalar vs
// array usage, call arity and argument shapes, const-ness, loop-context of
// break/continue, and initializer sanity. It returns the first error found.
func Check(f *File) error {
	c := &checker{globals: newScope(nil), constVals: map[string]int32{}}
	// Two passes so functions may call functions declared later.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *FuncDecl:
			if !c.globals.declare(d.Name, &symbol{kind: symFunc, fn: d}) {
				return errf(d.Line, 1, "redeclaration of %q", d.Name)
			}
		case *VarDecl:
			sym, err := varSymbol(d)
			if err != nil {
				return err
			}
			if !c.globals.declare(d.Name, sym) {
				return errf(d.Line, 1, "redeclaration of %q", d.Name)
			}
			if d.IsConst {
				if lit, ok := d.Init.(*IntLit); ok {
					c.constVals[d.Name] = lit.Val
				}
			}
			if !d.IsConst && len(d.Dims) == 0 {
				return errf(d.Line, 1, "global scalar %q must be const (mutable globals must be arrays in the shared data memory)", d.Name)
			}
			if err := c.checkVarInit(d, c.globals); err != nil {
				return err
			}
		}
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			if err := c.checkFunc(fd); err != nil {
				return err
			}
		}
	}
	return nil
}

func varSymbol(d *VarDecl) (*symbol, error) {
	sym := &symbol{dims: len(d.Dims), isConst: d.IsConst}
	switch len(d.Dims) {
	case 0:
		if d.IsConst {
			sym.kind = symConst
		} else {
			sym.kind = symScalar
		}
	case 1:
		sym.kind = symArray
	case 2:
		sym.kind = symArray
		sym.innerDim = d.Dims[1]
	default:
		return nil, errf(d.Line, 1, "too many dimensions on %q", d.Name)
	}
	return sym, nil
}

type checker struct {
	globals   *scope
	constVals map[string]int32
	fn        *FuncDecl
	loopDepth int
}

func (c *checker) checkVarInit(d *VarDecl, sc *scope) error {
	if len(d.Dims) > 0 {
		total := int(d.Dims[0])
		if len(d.Dims) == 2 {
			total *= int(d.Dims[1])
		}
		if len(d.ArrInit) > total {
			return errf(d.Line, 1, "%d initializers for array %q of %d elements", len(d.ArrInit), d.Name, total)
		}
		for _, e := range d.ArrInit {
			if err := c.checkExpr(e, sc, false); err != nil {
				return err
			}
		}
		if d.IsGlobal {
			// Global array initializers must be constant (no code runs at
			// global scope).
			p := &Parser{consts: c.constVals}
			for _, e := range d.ArrInit {
				if _, ok := p.foldConst(e); !ok {
					return errf(e.Pos(), 1, "global array %q initializer must be constant", d.Name)
				}
			}
		}
		return nil
	}
	if d.Init != nil {
		return c.checkExpr(d.Init, sc, false)
	}
	return nil
}

func (c *checker) checkFunc(fd *FuncDecl) error {
	c.fn = fd
	sc := newScope(c.globals)
	for i := range fd.Params {
		p := &fd.Params[i]
		sym := &symbol{kind: symScalar}
		if p.IsArray {
			sym.kind = symArray
			sym.dims = 1
			if p.InnerDim > 0 {
				sym.dims = 2
				sym.innerDim = p.InnerDim
			}
		}
		if !sc.declare(p.Name, sym) {
			return errf(p.Line, 1, "duplicate parameter %q", p.Name)
		}
	}
	return c.checkStmt(fd.Body, sc)
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch s := s.(type) {
	case *BlockStmt:
		inner := newScope(sc)
		for _, st := range s.List {
			if err := c.checkStmt(st, inner); err != nil {
				return err
			}
		}
	case *DeclStmt:
		for _, d := range s.Decls {
			sym, err := varSymbol(d)
			if err != nil {
				return err
			}
			if err := c.checkVarInit(d, sc); err != nil {
				return err
			}
			if !sc.declare(d.Name, sym) {
				return errf(d.Line, 1, "redeclaration of %q", d.Name)
			}
		}
	case *AssignStmt:
		if err := c.checkLvalue(s.LHS, sc); err != nil {
			return err
		}
		return c.checkExpr(s.RHS, sc, false)
	case *IncDecStmt:
		return c.checkLvalue(s.LHS, sc)
	case *ExprStmt:
		call, ok := s.X.(*CallExpr)
		if !ok {
			return errf(s.Line, 1, "expression statement must be a call")
		}
		return c.checkCall(call, sc, true)
	case *IfStmt:
		if err := c.checkExpr(s.Cond, sc, false); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then, sc); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else, sc)
		}
	case *ForStmt:
		inner := newScope(sc)
		if s.Init != nil {
			if err := c.checkStmt(s.Init, inner); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond, inner, false); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post, inner); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkStmt(s.Body, inner)
		c.loopDepth--
		return err
	case *WhileStmt:
		if err := c.checkExpr(s.Cond, sc, false); err != nil {
			return err
		}
		c.loopDepth++
		err := c.checkStmt(s.Body, sc)
		c.loopDepth--
		return err
	case *DoWhileStmt:
		c.loopDepth++
		err := c.checkStmt(s.Body, sc)
		c.loopDepth--
		if err != nil {
			return err
		}
		return c.checkExpr(s.Cond, sc, false)
	case *ReturnStmt:
		if c.fn.Void && s.X != nil {
			return errf(s.Line, 1, "void function %q returns a value", c.fn.Name)
		}
		if !c.fn.Void && s.X == nil {
			return errf(s.Line, 1, "function %q must return a value", c.fn.Name)
		}
		if s.X != nil {
			return c.checkExpr(s.X, sc, false)
		}
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(s.Line, 1, "break outside loop")
		}
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.Line, 1, "continue outside loop")
		}
	case *EmptyStmt:
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
	return nil
}

func (c *checker) checkLvalue(e Expr, sc *scope) error {
	switch e := e.(type) {
	case *Ident:
		sym := sc.lookup(e.Name)
		if sym == nil {
			return errf(e.Line, 1, "undefined: %q", e.Name)
		}
		switch sym.kind {
		case symConst:
			return errf(e.Line, 1, "cannot assign to const %q", e.Name)
		case symArray:
			return errf(e.Line, 1, "cannot assign to array %q without an index", e.Name)
		case symFunc:
			return errf(e.Line, 1, "cannot assign to function %q", e.Name)
		}
		return nil
	case *IndexExpr:
		return c.checkIndex(e, sc)
	}
	return errf(e.Pos(), 1, "not an lvalue")
}

func (c *checker) checkIndex(e *IndexExpr, sc *scope) error {
	sym := sc.lookup(e.Name)
	if sym == nil {
		return errf(e.Line, 1, "undefined: %q", e.Name)
	}
	if sym.kind != symArray {
		return errf(e.Line, 1, "%q is not an array", e.Name)
	}
	wantDims := 1
	if sym.dims == 2 {
		wantDims = 2
	}
	gotDims := 1
	if e.J != nil {
		gotDims = 2
	}
	if gotDims != wantDims {
		return errf(e.Line, 1, "array %q requires %d indices, got %d", e.Name, wantDims, gotDims)
	}
	if err := c.checkExpr(e.I, sc, false); err != nil {
		return err
	}
	if e.J != nil {
		return c.checkExpr(e.J, sc, false)
	}
	return nil
}

func (c *checker) checkCall(e *CallExpr, sc *scope, stmtContext bool) error {
	sym := c.globals.lookup(e.Name)
	if sym == nil || sym.kind != symFunc {
		return errf(e.Line, 1, "call to undefined function %q", e.Name)
	}
	fd := sym.fn
	if !stmtContext && fd.Void {
		return errf(e.Line, 1, "void function %q used as a value", e.Name)
	}
	if len(e.Args) != len(fd.Params) {
		return errf(e.Line, 1, "%q takes %d arguments, got %d", e.Name, len(fd.Params), len(e.Args))
	}
	for i, a := range e.Args {
		p := fd.Params[i]
		if p.IsArray {
			id, ok := a.(*Ident)
			if !ok {
				return errf(a.Pos(), 1, "argument %d of %q must be an array name", i+1, e.Name)
			}
			asym := sc.lookup(id.Name)
			if asym == nil {
				return errf(a.Pos(), 1, "undefined: %q", id.Name)
			}
			if asym.kind != symArray {
				return errf(a.Pos(), 1, "argument %d of %q: %q is not an array", i+1, e.Name, id.Name)
			}
			wantDims := 1
			if p.InnerDim > 0 {
				wantDims = 2
			}
			if asym.dims != wantDims {
				return errf(a.Pos(), 1, "argument %d of %q: array dimensionality mismatch", i+1, e.Name)
			}
			if wantDims == 2 && asym.innerDim != p.InnerDim {
				return errf(a.Pos(), 1, "argument %d of %q: inner dimension %d, want %d", i+1, e.Name, asym.innerDim, p.InnerDim)
			}
			continue
		}
		if err := c.checkExpr(a, sc, false); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkExpr(e Expr, sc *scope, allowArray bool) error {
	switch e := e.(type) {
	case *IntLit:
		return nil
	case *Ident:
		sym := sc.lookup(e.Name)
		if sym == nil {
			return errf(e.Line, 1, "undefined: %q", e.Name)
		}
		if sym.kind == symFunc {
			return errf(e.Line, 1, "function %q used as a value", e.Name)
		}
		if sym.kind == symArray && !allowArray {
			return errf(e.Line, 1, "array %q used as a scalar value", e.Name)
		}
		return nil
	case *IndexExpr:
		return c.checkIndex(e, sc)
	case *CallExpr:
		return c.checkCall(e, sc, false)
	case *UnaryExpr:
		return c.checkExpr(e.X, sc, false)
	case *BinaryExpr:
		if err := c.checkExpr(e.X, sc, false); err != nil {
			return err
		}
		return c.checkExpr(e.Y, sc, false)
	case *CondExpr:
		if err := c.checkExpr(e.Cond, sc, false); err != nil {
			return err
		}
		if err := c.checkExpr(e.Then, sc, false); err != nil {
			return err
		}
		return c.checkExpr(e.Else, sc, false)
	}
	return fmt.Errorf("minic: unknown expression %T", e)
}
