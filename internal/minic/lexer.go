package minic

import "strconv"

// Lexer tokenizes mini-C source text. It is resumable: Next returns EOF
// forever once the input is exhausted.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Line: line, Col: col}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := l.pos
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			base = 16
			l.advance()
			l.advance()
			for l.pos < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
			if l.pos == start+2 {
				return Token{}, errf(line, col, "malformed hex literal")
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.pos]
		digits := text
		if base == 16 {
			digits = text[2:]
		}
		// Literals up to 2^32-1 are accepted and wrapped to int32, giving
		// C-style behaviour for 0xFFFFFFFF-style masks and -2147483648.
		v, err := strconv.ParseUint(digits, base, 32)
		if err != nil {
			return Token{}, errf(line, col, "integer literal %q out of 32-bit range", text)
		}
		return Token{Kind: INTLIT, Text: text, Val: int32(uint32(v)), Line: line, Col: col}, nil
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Line: line, Col: col}, nil
	}
	three := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		l.advance()
		return Token{Kind: k, Line: line, Col: col}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Line: line, Col: col}, nil
	}

	c2, c3 := l.peek2(), byte(0)
	if l.pos+2 < len(l.src) {
		c3 = l.src[l.pos+2]
	}
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBrack)
	case ']':
		return one(RBrack)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '?':
		return one(Question)
	case ':':
		return one(Colon)
	case '~':
		return one(Tilde)
	case '+':
		if c2 == '+' {
			return two(Inc)
		}
		if c2 == '=' {
			return two(PlusAssign)
		}
		return one(Plus)
	case '-':
		if c2 == '-' {
			return two(Dec)
		}
		if c2 == '=' {
			return two(MinusAssign)
		}
		return one(Minus)
	case '*':
		if c2 == '=' {
			return two(StarAssign)
		}
		return one(Star)
	case '/':
		if c2 == '=' {
			return two(SlashAssign)
		}
		return one(Slash)
	case '%':
		if c2 == '=' {
			return two(PercentAssign)
		}
		return one(Percent)
	case '&':
		if c2 == '&' {
			return two(AndAnd)
		}
		if c2 == '=' {
			return two(AmpAssign)
		}
		return one(Amp)
	case '|':
		if c2 == '|' {
			return two(OrOr)
		}
		if c2 == '=' {
			return two(PipeAssign)
		}
		return one(Pipe)
	case '^':
		if c2 == '=' {
			return two(CaretAssign)
		}
		return one(Caret)
	case '!':
		if c2 == '=' {
			return two(NotEq)
		}
		return one(Bang)
	case '<':
		if c2 == '<' && c3 == '=' {
			return three(ShlAssign)
		}
		if c2 == '<' {
			return two(Shl)
		}
		if c2 == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if c2 == '>' && c3 == '=' {
			return three(ShrAssign)
		}
		if c2 == '>' {
			return two(Shr)
		}
		if c2 == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '=':
		if c2 == '=' {
			return two(EqEq)
		}
		return one(Assign)
	}
	return Token{}, errf(line, col, "unexpected character %q", string(c))
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
