package lower

import "hybridpart/internal/ir"

// Cleanup normalizes a freshly lowered or inlined function:
//
//  1. empty jump-only blocks are skipped (edges retargeted past them),
//  2. unreachable blocks are dropped,
//  3. straight-line block pairs are merged (A jumps to B, B has one pred),
//  4. blocks are renumbered in reverse-postorder so block IDs are stable,
//     dense and follow control flow.
//
// The resulting block list is what the analysis step numbers and reports as
// the application's basic blocks.
func Cleanup(f *ir.Function) {
	skipTrivialJumps(f)
	mergeChains(f)
	renumberRPO(f)
	f.RecomputeEdges()
}

// skipTrivialJumps retargets edges that point at an empty block whose only
// content is an unconditional jump.
func skipTrivialJumps(f *ir.Function) {
	// resolve follows chains of empty jump blocks with cycle protection.
	var resolve func(id ir.BlockID, seen map[ir.BlockID]bool) ir.BlockID
	resolve = func(id ir.BlockID, seen map[ir.BlockID]bool) ir.BlockID {
		b := f.Block(id)
		if b == nil || seen[id] {
			return id
		}
		if len(b.Instrs) == 0 && b.Term.Kind == ir.TermJump && b.ID != f.Entry {
			seen[id] = true
			return resolve(b.Term.Then, seen)
		}
		return id
	}
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case ir.TermJump:
			b.Term.Then = resolve(b.Term.Then, map[ir.BlockID]bool{})
		case ir.TermBranch:
			b.Term.Then = resolve(b.Term.Then, map[ir.BlockID]bool{})
			b.Term.Else = resolve(b.Term.Else, map[ir.BlockID]bool{})
		}
	}
	// The entry itself may be a trivial jump; hoist its target's body by
	// merging later (mergeChains handles it once preds are recomputed).
	f.RecomputeEdges()
}

// mergeChains merges A→B when A ends in an unconditional jump to B and B has
// no other predecessors (and B is not the entry).
func mergeChains(f *ir.Function) {
	f.RecomputeEdges()
	merged := true
	for merged {
		merged = false
		for _, a := range f.Blocks {
			if a.Term.Kind != ir.TermJump {
				continue
			}
			b := f.Block(a.Term.Then)
			if b == nil || b.ID == a.ID || b.ID == f.Entry {
				continue
			}
			if len(b.Preds) != 1 || b.Preds[0] != a.ID {
				continue
			}
			a.Instrs = append(a.Instrs, b.Instrs...)
			a.Term = b.Term
			// b becomes an unreachable stub with no out-edges so it neither
			// pollutes predecessor counts nor survives renumbering.
			b.Instrs = nil
			b.Term = ir.Terminator{Kind: ir.TermNone}
			f.RecomputeEdges()
			merged = true
		}
	}
}

// renumberRPO drops unreachable blocks and renumbers the survivors in
// reverse postorder.
func renumberRPO(f *ir.Function) {
	var order []ir.BlockID
	state := map[ir.BlockID]int{} // 0 unseen, 1 visiting, 2 done
	var dfs func(id ir.BlockID)
	dfs = func(id ir.BlockID) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		b := f.Block(id)
		for _, s := range b.Succtargets() {
			dfs(s)
		}
		state[id] = 2
		order = append(order, id)
	}
	dfs(f.Entry)

	remap := make(map[ir.BlockID]ir.BlockID, len(order))
	newBlocks := make([]*ir.Block, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		old := order[i]
		nid := ir.BlockID(len(newBlocks))
		remap[old] = nid
		blk := f.Block(old)
		blk.ID = nid
		newBlocks = append(newBlocks, blk)
	}
	for _, b := range newBlocks {
		switch b.Term.Kind {
		case ir.TermJump:
			b.Term.Then = remap[b.Term.Then]
		case ir.TermBranch:
			b.Term.Then = remap[b.Term.Then]
			b.Term.Else = remap[b.Term.Else]
		}
	}
	f.Blocks = newBlocks
	f.Entry = remap[f.Entry]
}
