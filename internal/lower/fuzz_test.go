package lower

import (
	"strings"
	"testing"
)

// FuzzLowerSource drives the whole mini-C frontend — lexer, parser,
// semantic checks and IR lowering — with arbitrary source text. The
// invariant under fuzzing: LowerSource never panics, and whenever it
// accepts an input, the produced program passes IR validation (CFG edge
// consistency, operand sanity) and flattens cleanly from any function
// without parameters.
func FuzzLowerSource(f *testing.F) {
	seeds := []string{
		// Well-formed programs spanning the supported constructs.
		`int f() { return 1; }`,
		`const int N = 8;
int A[N];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) { A[i] = i * 3; s += A[i]; }
    return s;
}`,
		`int g(int x) { return x > 0 ? x : -x; }
int f() { return g(-4) + g(4); }`,
		`int M[4][4];
void init() {
    int i; int j;
    for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { M[i][j] = i ^ j; } }
}
int f() { init(); return M[3][2]; }`,
		`int f(int a, int b) {
    int r = 0;
    while (a > 0) { r += b; a--; }
    if (r > 100 && b < 50 || a == 0) { r = r % 7; }
    return r;
}`,
		// Malformed inputs: the frontend must reject, not crash.
		``,
		`not C at all`,
		`int f( { return; }`,
		`int f() { return zz; }`,
		`int f() { int x = 1 / ; }`,
		`int A[-1]; int f() { return A[0]; }`,
		`int f() { f(); return f(1); }`,
		"int f() { return 2147483647 + 1; }",
		strings.Repeat("(", 100),
		"int f() {" + strings.Repeat("{", 64) + strings.Repeat("}", 64) + "return 0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := LowerSource(src)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", err, src)
		}
		for _, fn := range prog.Funcs {
			if len(fn.Params) > 0 {
				continue
			}
			if _, err := Flatten(prog, fn.Name); err != nil {
				// Flattening legitimately rejects some valid programs
				// (e.g. recursion); it must do so via error, not panic.
				continue
			}
		}
	})
}
