package lower

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
)

// run lowers src and executes entry with the given args.
func run(t *testing.T, src, entry string, args ...interp.Arg) int32 {
	t.Helper()
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatalf("LowerSource: %v", err)
	}
	m := interp.New(prog)
	v, err := m.Run(entry, args...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	src := `int f(int a, int b) { return (a + b) * (a - b) + a % (b | 1); }`
	got := run(t, src, "f", interp.Int(17), interp.Int(5))
	want := (17+5)*(17-5) + 17%(5|1)
	if got != int32(want) {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestControlFlowLoops(t *testing.T) {
	src := `
int sum_to(int n) {
    int s = 0;
    int i;
    for (i = 1; i <= n; i++) { s += i; }
    return s;
}
int count_down(int n) {
    int c = 0;
    while (n > 0) { n--; c++; }
    return c;
}
int do_once(int n) {
    int c = 0;
    do { c++; } while (c < n);
    return c;
}`
	if got := run(t, src, "sum_to", interp.Int(10)); got != 55 {
		t.Errorf("sum_to(10) = %d, want 55", got)
	}
	if got := run(t, src, "count_down", interp.Int(7)); got != 7 {
		t.Errorf("count_down(7) = %d, want 7", got)
	}
	// do-while executes at least once even when the condition is false.
	if got := run(t, src, "do_once", interp.Int(0)); got != 1 {
		t.Errorf("do_once(0) = %d, want 1", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// A division by zero on the right of && must not execute when the left
	// is false.
	src := `
int f(int a, int b) {
    if (a != 0 && 100 / a > b) { return 1; }
    return 0;
}
int g(int a) { return a == 0 || 100 / a > 10; }`
	if got := run(t, src, "f", interp.Int(0), interp.Int(1)); got != 0 {
		t.Errorf("f(0,1) = %d, want 0 (short-circuit failed)", got)
	}
	if got := run(t, src, "f", interp.Int(4), interp.Int(10)); got != 1 {
		t.Errorf("f(4,10) = %d, want 1", got)
	}
	if got := run(t, src, "g", interp.Int(0)); got != 1 {
		t.Errorf("g(0) = %d, want 1", got)
	}
	if got := run(t, src, "g", interp.Int(50)); got != 0 {
		t.Errorf("g(50) = %d, want 0", got)
	}
}

func TestTernaryAndLogicalValue(t *testing.T) {
	src := `
int max3(int a, int b, int c) {
    int m = (a > b) ? a : b;
    return (m > c) ? m : c;
}
int both(int a, int b) { return a > 0 && b > 0; }`
	if got := run(t, src, "max3", interp.Int(3), interp.Int(9), interp.Int(5)); got != 9 {
		t.Errorf("max3 = %d, want 9", got)
	}
	if got := run(t, src, "both", interp.Int(1), interp.Int(0)); got != 0 {
		t.Errorf("both(1,0) = %d, want 0", got)
	}
	if got := run(t, src, "both", interp.Int(1), interp.Int(2)); got != 1 {
		t.Errorf("both(1,2) = %d, want 1", got)
	}
}

func TestArrays1D2D(t *testing.T) {
	src := `
const int N = 4;
int g[N] = {10, 20, 30, 40};
int f() {
    int m[N][N];
    int i;
    int j;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j++) { m[i][j] = i * 10 + j; }
    }
    int s = 0;
    for (i = 0; i < N; i++) { s += m[i][i] + g[i]; }
    return s;
}`
	// diag = 0+11+22+33 = 66; g sum = 100.
	if got := run(t, src, "f"); got != 166 {
		t.Fatalf("f() = %d, want 166", got)
	}
}

func TestCompoundAssignOnArrays(t *testing.T) {
	src := `
int a[3] = {1, 2, 3};
int f() {
    a[1] += 10;
    a[2] <<= 2;
    a[0] *= a[1];
    return a[0] + a[1] + a[2];
}`
	if got := run(t, src, "f"); got != 12+12+12 {
		t.Fatalf("f() = %d, want 36", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (i == 5) { continue; }
        if (i == 8) { break; }
        s += i;
    }
    return s;
}`
	// 0+1+2+3+4+6+7 = 23.
	if got := run(t, src, "f", interp.Int(100)); got != 23 {
		t.Fatalf("f = %d, want 23", got)
	}
}

func TestCallsAndArrayParams(t *testing.T) {
	src := `
void scale(int v[], int n, int k) {
    int i;
    for (i = 0; i < n; i++) { v[i] *= k; }
}
int sum(int v[], int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) { s += v[i]; }
    return s;
}
int buf[4] = {1, 2, 3, 4};
int f() {
    scale(buf, 4, 3);
    return sum(buf, 4);
}`
	if got := run(t, src, "f"); got != 30 {
		t.Fatalf("f = %d, want 30", got)
	}
}

func TestHostArrayArgumentAliasing(t *testing.T) {
	src := `void fill(int v[], int n) { int i; for (i = 0; i < n; i++) { v[i] = i * i; } }`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	buf := make([]int32, 5)
	if _, err := m.Run("fill", interp.Array(buf), interp.Int(5)); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != int32(i*i) {
			t.Fatalf("buf[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src string
		args      []interp.Arg
	}{
		{"div by zero", "int f(int a) { return 1 / a; }", []interp.Arg{interp.Int(0)}},
		{"rem by zero", "int f(int a) { return 1 % a; }", []interp.Arg{interp.Int(0)}},
		{"load OOB", "int g[2]; int f(int i) { return g[i]; }", []interp.Arg{interp.Int(5)}},
		{"store OOB", "int g[2]; int f(int i) { g[i] = 1; return 0; }", []interp.Arg{interp.Int(-1)}},
	}
	for _, c := range cases {
		prog, err := LowerSource(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		m := interp.New(prog)
		if _, err := m.Run("f", c.args...); err == nil {
			t.Errorf("%s: expected trap", c.name)
		}
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := LowerSource("int f() { while (1) {} return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	m.MaxSteps = 1000
	if _, err := m.Run("f"); err == nil {
		t.Fatal("expected step-limit trap")
	}
}

func TestProfileCounts(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) { s += i; }
    return s;
}`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	prof := m.EnableProfile()
	if _, err := m.Run("f", interp.Int(10)); err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	// The loop body block must have executed exactly 10 times and the
	// condition block 11 times.
	var sawBody, sawCond bool
	for _, b := range f.Blocks {
		c := prof.BlockCount("f", b.ID)
		switch c {
		case 10:
			sawBody = true
		case 11:
			sawCond = true
		}
	}
	if !sawBody || !sawCond {
		t.Fatalf("profile lacks expected counts: %v", prof.Counts["f"])
	}
}

func TestFlattenInlinesEverything(t *testing.T) {
	src := `
int square(int x) { return x * x; }
int cube(int x) { return square(x) * x; }
int poly(int v[], int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) { s += cube(v[i]); }
    return s;
}
int data[3] = {1, 2, 3};
int f() { return poly(data, 3); }`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range flat.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				t.Fatalf("call survived flattening: %s", b.Instrs[i].String())
			}
		}
	}
	// The flattened function must compute the same value.
	fp := ir.NewProgram()
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	fp.Globals = prog.Globals
	if err := fp.Validate(); err != nil {
		t.Fatalf("flattened program invalid: %v", err)
	}
	want, err := interp.New(prog).Run("f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.New(fp).Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != want { // 1 + 8 + 27 = 36
		t.Fatalf("flattened result %d != original %d", got, want)
	}
	if want != 36 {
		t.Fatalf("poly = %d, want 36", want)
	}
}

func TestFlattenLocalArraysNotShared(t *testing.T) {
	// Each inlined call gets its own copy of callee locals; the scratch
	// buffer of one call must not leak into another.
	src := `
int acc(int seed) {
    int scratch[4];
    int i;
    for (i = 0; i < 4; i++) { scratch[i] = seed + i; }
    return scratch[0] + scratch[3];
}
int f() { return acc(10) * 100 + acc(1); }`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	fp := ir.NewProgram()
	fp.Globals = prog.Globals
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	got, err := interp.New(fp).Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if want := int32((10+13)*100 + (1 + 4)); got != want {
		t.Fatalf("f = %d, want %d", got, want)
	}
}

func TestFlattenRejectsRecursion(t *testing.T) {
	src := `
int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }
int g() { return f(5); }`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Flatten(prog, "g"); err == nil {
		t.Fatal("Flatten accepted recursion")
	}
}

func TestCleanupProducesCompactCFG(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (i & 1) { s += i; } else { s -= i; }
    }
    return s;
}`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	// Expected shape: entry, for.cond, for.body, then, else, inc-join, exit
	// — allow a little slack but reject blatant bloat.
	if len(f.Blocks) > 8 {
		t.Fatalf("CFG has %d blocks, expected a compact graph:\n%s", len(f.Blocks), f)
	}
	// Every reachable block nonempty or has a branch/return terminator.
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 && b.Term.Kind == ir.TermJump && b.ID != f.Entry {
			t.Errorf("trivial jump block b%d survived cleanup", b.ID)
		}
	}
	// Entry must be block 0 in RPO numbering.
	if f.Entry != 0 {
		t.Errorf("entry = b%d, want b0", f.Entry)
	}
}

func TestRegNamesSurviveLowering(t *testing.T) {
	prog, err := LowerSource("int f(int alpha) { int beta = alpha + 1; return beta; }")
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	var names []string
	for _, n := range f.RegNames {
		names = append(names, n)
	}
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has("alpha") || !has("beta") {
		t.Fatalf("variable names lost: %v", names)
	}
}

// TestRandomExpressionEquivalence cross-checks mini-C evaluation of randomly
// generated expressions against direct Go int32 arithmetic.
func TestRandomExpressionEquivalence(t *testing.T) {
	type node struct {
		src  string
		eval func(a, b, c int32) int32
	}
	leafs := []node{
		{"a", func(a, b, c int32) int32 { return a }},
		{"b", func(a, b, c int32) int32 { return b }},
		{"c", func(a, b, c int32) int32 { return c }},
		{"3", func(a, b, c int32) int32 { return 3 }},
		{"17", func(a, b, c int32) int32 { return 17 }},
	}
	type binop struct {
		sym string
		fn  func(x, y int32) int32
	}
	ops := []binop{
		{"+", func(x, y int32) int32 { return x + y }},
		{"-", func(x, y int32) int32 { return x - y }},
		{"*", func(x, y int32) int32 { return x * y }},
		{"&", func(x, y int32) int32 { return x & y }},
		{"|", func(x, y int32) int32 { return x | y }},
		{"^", func(x, y int32) int32 { return x ^ y }},
	}
	var gen func(rng *rand.Rand, depth int) node
	gen = func(rng *rand.Rand, depth int) node {
		if depth == 0 || rng.Intn(3) == 0 {
			return leafs[rng.Intn(len(leafs))]
		}
		op := ops[rng.Intn(len(ops))]
		l := gen(rng, depth-1)
		r := gen(rng, depth-1)
		return node{
			src:  "(" + l.src + " " + op.sym + " " + r.src + ")",
			eval: func(a, b, c int32) int32 { return op.fn(l.eval(a, b, c), r.eval(a, b, c)) },
		}
	}
	check := func(seed int64, a, b, c int32) bool {
		rng := rand.New(rand.NewSource(seed))
		n := gen(rng, 4)
		src := fmt.Sprintf("int f(int a, int b, int c) { return %s; }", n.src)
		prog, err := LowerSource(src)
		if err != nil {
			t.Logf("lower failed for %s: %v", src, err)
			return false
		}
		got, err := interp.New(prog).Run("f", interp.Int(a), interp.Int(b), interp.Int(c))
		if err != nil {
			t.Logf("run failed for %s: %v", src, err)
			return false
		}
		return got == n.eval(a, b, c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomShiftSemantics checks C-style masked shifts against Go.
func TestRandomShiftSemantics(t *testing.T) {
	prog, err := LowerSource(`
int shl(int x, int s) { return x << s; }
int shr(int x, int s) { return x >> s; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	check := func(x int32, s uint8) bool {
		sh := int32(s % 32)
		gotL, err := m.Run("shl", interp.Int(x), interp.Int(sh))
		if err != nil {
			return false
		}
		gotR, err := m.Run("shr", interp.Int(x), interp.Int(sh))
		if err != nil {
			return false
		}
		return gotL == x<<uint(sh) && gotR == x>>uint(sh)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
