// Package lower translates the mini-C AST into the ir form consumed by the
// methodology: it flattens expressions to three-address code, lowers
// short-circuit and ternary operators to control flow, lowers 2-D array
// addressing to explicit index arithmetic, and provides CFG cleanup plus a
// whole-program inliner so the partitioner sees one flat CDFG per entry
// point (the role SUIF2/MachineSUIF passes play in the paper's framework).
package lower

import (
	"fmt"

	"hybridpart/internal/ir"
	"hybridpart/internal/minic"
)

// Lower type-checks f and translates every function into IR. Global arrays
// become program globals; const ints were already folded by the parser.
func Lower(f *minic.File) (*ir.Program, error) {
	if err := minic.Check(f); err != nil {
		return nil, err
	}
	prog := ir.NewProgram()
	l := &lowerer{prog: prog, globals: map[string]binding{}, fileDecls: f.Decls}

	// Pass 1: globals (arrays and consts) and function signatures.
	var funcs []*minic.FuncDecl
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *minic.VarDecl:
			if err := l.lowerGlobal(d); err != nil {
				return nil, err
			}
		case *minic.FuncDecl:
			funcs = append(funcs, d)
		}
	}
	// Pass 2: bodies.
	for _, fd := range funcs {
		fn, err := l.lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		if err := prog.AddFunc(fn); err != nil {
			return nil, err
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("lower: internal error: %w", err)
	}
	return prog, nil
}

// LowerSource parses, checks and lowers source text in one step.
func LowerSource(src string) (*ir.Program, error) {
	file, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(file)
}

type bindKind uint8

const (
	bindConst bindKind = iota
	bindScalar
	bindArray
)

type binding struct {
	kind     bindKind
	constVal int32
	reg      ir.RegID
	arr      ir.ArrID
	innerDim int32 // 2-D arrays
}

type lowerer struct {
	prog      *ir.Program
	globals   map[string]binding
	fileDecls []minic.Decl
}

func (l *lowerer) lowerGlobal(d *minic.VarDecl) error {
	if d.IsConst {
		lit, ok := d.Init.(*minic.IntLit)
		if !ok {
			return fmt.Errorf("lower: const %q not folded", d.Name)
		}
		l.globals[d.Name] = binding{kind: bindConst, constVal: lit.Val}
		return nil
	}
	total := d.Dims[0]
	inner := int32(0)
	if len(d.Dims) == 2 {
		total *= d.Dims[1]
		inner = d.Dims[1]
	}
	init := make([]int32, 0, len(d.ArrInit))
	for _, e := range d.ArrInit {
		v, ok := foldExpr(e, l.globals)
		if !ok {
			return fmt.Errorf("lower: global %q initializer not constant", d.Name)
		}
		init = append(init, v)
	}
	id := l.prog.AddGlobal(ir.ArrayDecl{Name: d.Name, Len: total, Init: init})
	l.globals[d.Name] = binding{kind: bindArray, arr: id, innerDim: inner}
	return nil
}

// foldExpr folds constant expressions over const-int bindings.
func foldExpr(e minic.Expr, env map[string]binding) (int32, bool) {
	switch e := e.(type) {
	case *minic.IntLit:
		return e.Val, true
	case *minic.Ident:
		b, ok := env[e.Name]
		if ok && b.kind == bindConst {
			return b.constVal, true
		}
		return 0, false
	case *minic.UnaryExpr:
		x, ok := foldExpr(e.X, env)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case minic.Minus:
			return -x, true
		case minic.Tilde:
			return ^x, true
		case minic.Bang:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *minic.BinaryExpr:
		x, ok := foldExpr(e.X, env)
		if !ok {
			return 0, false
		}
		y, ok := foldExpr(e.Y, env)
		if !ok {
			return 0, false
		}
		return evalBinary(e.Op, x, y)
	case *minic.CondExpr:
		c, ok := foldExpr(e.Cond, env)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return foldExpr(e.Then, env)
		}
		return foldExpr(e.Else, env)
	}
	return 0, false
}

// funcLowerer holds per-function lowering state.
type funcLowerer struct {
	l      *lowerer
	fd     *minic.FuncDecl
	fn     *ir.Function
	scopes []map[string]binding
	cur    *ir.Block
	// loop context stacks for break/continue.
	breakTo    []ir.BlockID
	continueTo []ir.BlockID
}

func (l *lowerer) lowerFunc(fd *minic.FuncDecl) (*ir.Function, error) {
	fl := &funcLowerer{l: l, fd: fd, fn: ir.NewFunction(fd.Name)}
	fl.fn.HasRet = !fd.Void
	fl.cur = fl.fn.Block(fl.fn.Entry)
	fl.pushScope()

	for _, p := range fd.Params {
		if p.IsArray {
			arr := fl.fn.AddArray(ir.ArrayDecl{Name: p.Name, IsParam: true})
			fl.fn.Params = append(fl.fn.Params, ir.Param{Name: p.Name, IsArray: true, Arr: arr, Reg: ir.NoReg})
			fl.bind(p.Name, binding{kind: bindArray, arr: arr, innerDim: p.InnerDim})
		} else {
			reg := fl.fn.NewReg(p.Name)
			fl.fn.Params = append(fl.fn.Params, ir.Param{Name: p.Name, Reg: reg, Arr: ir.NoArr})
			fl.bind(p.Name, binding{kind: bindScalar, reg: reg})
		}
	}

	if err := fl.stmt(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return: C permits falling off the end; int functions yield 0.
	if fl.cur != nil && fl.cur.Term.Kind == ir.TermNone {
		if fd.Void {
			fl.cur.Term = ir.Terminator{Kind: ir.TermReturn}
		} else {
			fl.cur.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.Imm(0), HasVal: true}
		}
	}
	Cleanup(fl.fn)
	return fl.fn, nil
}

func (fl *funcLowerer) pushScope() {
	fl.scopes = append(fl.scopes, map[string]binding{})
}

func (fl *funcLowerer) popScope() {
	fl.scopes = fl.scopes[:len(fl.scopes)-1]
}

func (fl *funcLowerer) bind(name string, b binding) {
	fl.scopes[len(fl.scopes)-1][name] = b
}

func (fl *funcLowerer) lookup(name string) (binding, bool) {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if b, ok := fl.scopes[i][name]; ok {
			return b, true
		}
	}
	b, ok := fl.l.globals[name]
	return b, ok
}

func (fl *funcLowerer) emit(in ir.Instr) {
	if fl.cur == nil {
		// Unreachable code after return/break; drop it (cleanup would
		// remove the block anyway).
		return
	}
	fl.cur.Instrs = append(fl.cur.Instrs, in)
}

func (fl *funcLowerer) newBlock(name string) *ir.Block { return fl.fn.AddBlock(name) }

// setTerm terminates the current block and moves to next (nil = dead code).
func (fl *funcLowerer) setTerm(t ir.Terminator, next *ir.Block) {
	if fl.cur != nil {
		fl.cur.Term = t
	}
	fl.cur = next
}

func (fl *funcLowerer) jumpTo(b *ir.Block) {
	if fl.cur != nil && fl.cur.Term.Kind == ir.TermNone {
		fl.cur.Term = ir.Terminator{Kind: ir.TermJump, Then: b.ID}
	}
	fl.cur = b
}

func (fl *funcLowerer) stmt(s minic.Stmt) error {
	switch s := s.(type) {
	case *minic.BlockStmt:
		fl.pushScope()
		for _, st := range s.List {
			if err := fl.stmt(st); err != nil {
				return err
			}
		}
		fl.popScope()
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if err := fl.localDecl(d); err != nil {
				return err
			}
		}
	case *minic.AssignStmt:
		return fl.assign(s)
	case *minic.IncDecStmt:
		op := minic.PlusAssign
		if s.Op == minic.Dec {
			op = minic.MinusAssign
		}
		return fl.assign(&minic.AssignStmt{Op: op, LHS: s.LHS,
			RHS: &minic.IntLit{Val: 1, Line: s.Line}, Line: s.Line})
	case *minic.ExprStmt:
		call := s.X.(*minic.CallExpr)
		_, err := fl.lowerCall(call, false)
		return err
	case *minic.IfStmt:
		return fl.ifStmt(s)
	case *minic.ForStmt:
		return fl.forStmt(s)
	case *minic.WhileStmt:
		return fl.whileStmt(s)
	case *minic.DoWhileStmt:
		return fl.doWhileStmt(s)
	case *minic.ReturnStmt:
		if s.X == nil {
			fl.setTerm(ir.Terminator{Kind: ir.TermReturn, Pos: s.Line}, nil)
			return nil
		}
		v, err := fl.expr(s.X)
		if err != nil {
			return err
		}
		fl.setTerm(ir.Terminator{Kind: ir.TermReturn, Val: v, HasVal: true, Pos: s.Line}, nil)
	case *minic.BreakStmt:
		if len(fl.breakTo) == 0 {
			return fmt.Errorf("lower: %d: break outside loop", s.Line)
		}
		fl.setTerm(ir.Terminator{Kind: ir.TermJump, Then: fl.breakTo[len(fl.breakTo)-1], Pos: s.Line}, nil)
	case *minic.ContinueStmt:
		if len(fl.continueTo) == 0 {
			return fmt.Errorf("lower: %d: continue outside loop", s.Line)
		}
		fl.setTerm(ir.Terminator{Kind: ir.TermJump, Then: fl.continueTo[len(fl.continueTo)-1], Pos: s.Line}, nil)
	case *minic.EmptyStmt:
	default:
		return fmt.Errorf("lower: unknown statement %T", s)
	}
	return nil
}

func (fl *funcLowerer) localDecl(d *minic.VarDecl) error {
	if d.IsConst {
		lit, ok := d.Init.(*minic.IntLit)
		if !ok {
			return fmt.Errorf("lower: %d: const %q not folded", d.Line, d.Name)
		}
		fl.bind(d.Name, binding{kind: bindConst, constVal: lit.Val})
		return nil
	}
	if len(d.Dims) > 0 {
		total := d.Dims[0]
		inner := int32(0)
		if len(d.Dims) == 2 {
			total *= d.Dims[1]
			inner = d.Dims[1]
		}
		var init []int32
		allConst := true
		for _, e := range d.ArrInit {
			v, ok := foldExpr(e, fl.l.globals)
			if !ok {
				allConst = false
				break
			}
			init = append(init, v)
		}
		arr := fl.fn.AddArray(ir.ArrayDecl{Name: d.Name, Len: total})
		fl.bind(d.Name, binding{kind: bindArray, arr: arr, innerDim: inner})
		if len(d.ArrInit) > 0 {
			if allConst {
				fl.fn.Arrays[arr].Init = init
			} else {
				// Element-wise stores for dynamic initializers.
				for i, e := range d.ArrInit {
					v, err := fl.expr(e)
					if err != nil {
						return err
					}
					fl.emit(ir.Instr{Op: ir.OpStore, Arr: arr, A: ir.Imm(int32(i)), B: v, Pos: d.Line})
				}
			}
		}
		return nil
	}
	reg := fl.fn.NewReg(d.Name)
	fl.bind(d.Name, binding{kind: bindScalar, reg: reg})
	if d.Init != nil {
		v, err := fl.expr(d.Init)
		if err != nil {
			return err
		}
		fl.emitCopy(reg, v, d.Line)
	}
	return nil
}

func (fl *funcLowerer) emitCopy(dst ir.RegID, v ir.Operand, pos int) {
	if v.IsReg() && v.Reg == dst {
		return
	}
	if v.IsImm() {
		fl.emit(ir.Instr{Op: ir.OpConst, Dst: dst, A: v, Pos: pos})
		return
	}
	fl.emit(ir.Instr{Op: ir.OpCopy, Dst: dst, A: v, Pos: pos})
}

var assignOpMap = map[minic.Kind]ir.Op{
	minic.PlusAssign:    ir.OpAdd,
	minic.MinusAssign:   ir.OpSub,
	minic.StarAssign:    ir.OpMul,
	minic.SlashAssign:   ir.OpDiv,
	minic.PercentAssign: ir.OpRem,
	minic.ShlAssign:     ir.OpShl,
	minic.ShrAssign:     ir.OpShr,
	minic.AmpAssign:     ir.OpAnd,
	minic.PipeAssign:    ir.OpOr,
	minic.CaretAssign:   ir.OpXor,
}

func (fl *funcLowerer) assign(s *minic.AssignStmt) error {
	switch lhs := s.LHS.(type) {
	case *minic.Ident:
		b, ok := fl.lookup(lhs.Name)
		if !ok || b.kind != bindScalar {
			return fmt.Errorf("lower: %d: bad assignment target %q", s.Line, lhs.Name)
		}
		if s.Op == minic.Assign {
			v, err := fl.expr(s.RHS)
			if err != nil {
				return err
			}
			fl.emitCopy(b.reg, v, s.Line)
			return nil
		}
		op := assignOpMap[s.Op]
		v, err := fl.expr(s.RHS)
		if err != nil {
			return err
		}
		fl.emit(ir.Instr{Op: op, Dst: b.reg, A: ir.Reg(b.reg), B: v, Pos: s.Line})
		return nil
	case *minic.IndexExpr:
		b, idx, err := fl.arrayIndex(lhs)
		if err != nil {
			return err
		}
		if s.Op == minic.Assign {
			v, err := fl.expr(s.RHS)
			if err != nil {
				return err
			}
			fl.emit(ir.Instr{Op: ir.OpStore, Arr: b.arr, A: idx, B: v, Pos: s.Line})
			return nil
		}
		// Compound assignment: load, modify, store. The index operand is
		// reused, so it is materialized once.
		op := assignOpMap[s.Op]
		oldv := fl.fn.NewReg("")
		fl.emit(ir.Instr{Op: ir.OpLoad, Dst: oldv, Arr: b.arr, A: idx, Pos: s.Line})
		v, err := fl.expr(s.RHS)
		if err != nil {
			return err
		}
		tmp := fl.fn.NewReg("")
		fl.emit(ir.Instr{Op: op, Dst: tmp, A: ir.Reg(oldv), B: v, Pos: s.Line})
		fl.emit(ir.Instr{Op: ir.OpStore, Arr: b.arr, A: idx, B: ir.Reg(tmp), Pos: s.Line})
		return nil
	}
	return fmt.Errorf("lower: %d: invalid assignment target", s.Line)
}

// arrayIndex resolves an IndexExpr to its array binding and flat index
// operand, emitting 2-D address arithmetic as needed.
func (fl *funcLowerer) arrayIndex(e *minic.IndexExpr) (binding, ir.Operand, error) {
	b, ok := fl.lookup(e.Name)
	if !ok || b.kind != bindArray {
		return binding{}, ir.Operand{}, fmt.Errorf("lower: %d: %q is not an array", e.Line, e.Name)
	}
	i, err := fl.expr(e.I)
	if err != nil {
		return binding{}, ir.Operand{}, err
	}
	if e.J == nil {
		return b, i, nil
	}
	j, err := fl.expr(e.J)
	if err != nil {
		return binding{}, ir.Operand{}, err
	}
	// idx = i*innerDim + j, folded when both parts are constant.
	if i.IsImm() && j.IsImm() {
		return b, ir.Imm(i.Imm*b.innerDim + j.Imm), nil
	}
	var rowOp ir.Operand
	if i.IsImm() {
		rowOp = ir.Imm(i.Imm * b.innerDim)
	} else {
		row := fl.fn.NewReg("")
		fl.emit(ir.Instr{Op: ir.OpMul, Dst: row, A: i, B: ir.Imm(b.innerDim), Pos: e.Line})
		rowOp = ir.Reg(row)
	}
	idx := fl.fn.NewReg("")
	fl.emit(ir.Instr{Op: ir.OpAdd, Dst: idx, A: rowOp, B: j, Pos: e.Line})
	return b, ir.Reg(idx), nil
}

func (fl *funcLowerer) ifStmt(s *minic.IfStmt) error {
	thenB := fl.newBlock("if.then")
	var elseB *ir.Block
	joinB := fl.newBlock("if.end")
	if s.Else != nil {
		elseB = fl.newBlock("if.else")
		if err := fl.condBranch(s.Cond, thenB.ID, elseB.ID); err != nil {
			return err
		}
	} else {
		if err := fl.condBranch(s.Cond, thenB.ID, joinB.ID); err != nil {
			return err
		}
	}
	fl.cur = thenB
	if err := fl.stmt(s.Then); err != nil {
		return err
	}
	fl.jumpTo(joinB)
	if s.Else != nil {
		fl.cur = elseB
		if err := fl.stmt(s.Else); err != nil {
			return err
		}
		fl.jumpTo(joinB)
	}
	fl.cur = joinB
	return nil
}

func (fl *funcLowerer) forStmt(s *minic.ForStmt) error {
	fl.pushScope()
	defer fl.popScope()
	if s.Init != nil {
		if err := fl.stmt(s.Init); err != nil {
			return err
		}
	}
	condB := fl.newBlock("for.cond")
	bodyB := fl.newBlock("for.body")
	postB := fl.newBlock("for.inc")
	exitB := fl.newBlock("for.end")
	fl.jumpTo(condB)
	if s.Cond != nil {
		if err := fl.condBranch(s.Cond, bodyB.ID, exitB.ID); err != nil {
			return err
		}
	} else {
		fl.setTerm(ir.Terminator{Kind: ir.TermJump, Then: bodyB.ID}, nil)
	}
	fl.cur = bodyB
	fl.breakTo = append(fl.breakTo, exitB.ID)
	fl.continueTo = append(fl.continueTo, postB.ID)
	err := fl.stmt(s.Body)
	fl.breakTo = fl.breakTo[:len(fl.breakTo)-1]
	fl.continueTo = fl.continueTo[:len(fl.continueTo)-1]
	if err != nil {
		return err
	}
	fl.jumpTo(postB)
	if s.Post != nil {
		if err := fl.stmt(s.Post); err != nil {
			return err
		}
	}
	fl.setTerm(ir.Terminator{Kind: ir.TermJump, Then: condB.ID}, exitB)
	return nil
}

func (fl *funcLowerer) whileStmt(s *minic.WhileStmt) error {
	condB := fl.newBlock("while.cond")
	bodyB := fl.newBlock("while.body")
	exitB := fl.newBlock("while.end")
	fl.jumpTo(condB)
	if err := fl.condBranch(s.Cond, bodyB.ID, exitB.ID); err != nil {
		return err
	}
	fl.cur = bodyB
	fl.breakTo = append(fl.breakTo, exitB.ID)
	fl.continueTo = append(fl.continueTo, condB.ID)
	err := fl.stmt(s.Body)
	fl.breakTo = fl.breakTo[:len(fl.breakTo)-1]
	fl.continueTo = fl.continueTo[:len(fl.continueTo)-1]
	if err != nil {
		return err
	}
	fl.setTerm(ir.Terminator{Kind: ir.TermJump, Then: condB.ID}, exitB)
	return nil
}

func (fl *funcLowerer) doWhileStmt(s *minic.DoWhileStmt) error {
	bodyB := fl.newBlock("do.body")
	condB := fl.newBlock("do.cond")
	exitB := fl.newBlock("do.end")
	fl.jumpTo(bodyB)
	fl.breakTo = append(fl.breakTo, exitB.ID)
	fl.continueTo = append(fl.continueTo, condB.ID)
	err := fl.stmt(s.Body)
	fl.breakTo = fl.breakTo[:len(fl.breakTo)-1]
	fl.continueTo = fl.continueTo[:len(fl.continueTo)-1]
	if err != nil {
		return err
	}
	fl.jumpTo(condB)
	if err := fl.condBranch(s.Cond, bodyB.ID, exitB.ID); err != nil {
		return err
	}
	fl.cur = exitB
	return nil
}

// condBranch lowers e as a branch condition with short-circuit evaluation,
// terminating the current block.
func (fl *funcLowerer) condBranch(e minic.Expr, thenID, elseID ir.BlockID) error {
	switch e := e.(type) {
	case *minic.BinaryExpr:
		switch e.Op {
		case minic.AndAnd:
			mid := fl.newBlock("land.rhs")
			if err := fl.condBranch(e.X, mid.ID, elseID); err != nil {
				return err
			}
			fl.cur = mid
			return fl.condBranch(e.Y, thenID, elseID)
		case minic.OrOr:
			mid := fl.newBlock("lor.rhs")
			if err := fl.condBranch(e.X, thenID, mid.ID); err != nil {
				return err
			}
			fl.cur = mid
			return fl.condBranch(e.Y, thenID, elseID)
		}
	case *minic.UnaryExpr:
		if e.Op == minic.Bang {
			return fl.condBranch(e.X, elseID, thenID)
		}
	}
	v, err := fl.expr(e)
	if err != nil {
		return err
	}
	if v.IsImm() {
		// Constant condition folds to an unconditional jump.
		target := thenID
		if v.Imm == 0 {
			target = elseID
		}
		fl.setTerm(ir.Terminator{Kind: ir.TermJump, Then: target}, nil)
		return nil
	}
	fl.setTerm(ir.Terminator{Kind: ir.TermBranch, Cond: v, Then: thenID, Else: elseID}, nil)
	return nil
}

var binOpMap = map[minic.Kind]ir.Op{
	minic.Plus: ir.OpAdd, minic.Minus: ir.OpSub, minic.Star: ir.OpMul,
	minic.Slash: ir.OpDiv, minic.Percent: ir.OpRem,
	minic.Amp: ir.OpAnd, minic.Pipe: ir.OpOr, minic.Caret: ir.OpXor,
	minic.Shl: ir.OpShl, minic.Shr: ir.OpShr,
	minic.Lt: ir.OpLt, minic.Le: ir.OpLe, minic.Gt: ir.OpGt, minic.Ge: ir.OpGe,
	minic.EqEq: ir.OpEq, minic.NotEq: ir.OpNe,
}

// expr lowers e and returns the operand holding its value.
func (fl *funcLowerer) expr(e minic.Expr) (ir.Operand, error) {
	switch e := e.(type) {
	case *minic.IntLit:
		return ir.Imm(e.Val), nil
	case *minic.Ident:
		b, ok := fl.lookup(e.Name)
		if !ok {
			return ir.Operand{}, fmt.Errorf("lower: %d: undefined %q", e.Line, e.Name)
		}
		switch b.kind {
		case bindConst:
			return ir.Imm(b.constVal), nil
		case bindScalar:
			return ir.Reg(b.reg), nil
		default:
			return ir.Operand{}, fmt.Errorf("lower: %d: array %q used as scalar", e.Line, e.Name)
		}
	case *minic.IndexExpr:
		b, idx, err := fl.arrayIndex(e)
		if err != nil {
			return ir.Operand{}, err
		}
		dst := fl.fn.NewReg("")
		fl.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Arr: b.arr, A: idx, Pos: e.Line})
		return ir.Reg(dst), nil
	case *minic.CallExpr:
		return fl.lowerCall(e, true)
	case *minic.UnaryExpr:
		x, err := fl.expr(e.X)
		if err != nil {
			return ir.Operand{}, err
		}
		if x.IsImm() {
			switch e.Op {
			case minic.Minus:
				return ir.Imm(-x.Imm), nil
			case minic.Tilde:
				return ir.Imm(^x.Imm), nil
			case minic.Bang:
				if x.Imm == 0 {
					return ir.Imm(1), nil
				}
				return ir.Imm(0), nil
			}
		}
		var op ir.Op
		switch e.Op {
		case minic.Minus:
			op = ir.OpNeg
		case minic.Tilde:
			op = ir.OpNot
		case minic.Bang:
			op = ir.OpLNot
		default:
			return ir.Operand{}, fmt.Errorf("lower: %d: bad unary op %s", e.Line, e.Op)
		}
		dst := fl.fn.NewReg("")
		fl.emit(ir.Instr{Op: op, Dst: dst, A: x, Pos: e.Line})
		return ir.Reg(dst), nil
	case *minic.BinaryExpr:
		if e.Op == minic.AndAnd || e.Op == minic.OrOr {
			return fl.materializeCond(e)
		}
		x, err := fl.expr(e.X)
		if err != nil {
			return ir.Operand{}, err
		}
		y, err := fl.expr(e.Y)
		if err != nil {
			return ir.Operand{}, err
		}
		if x.IsImm() && y.IsImm() {
			if v, ok := evalBinary(e.Op, x.Imm, y.Imm); ok {
				return ir.Imm(v), nil
			}
		}
		op, ok := binOpMap[e.Op]
		if !ok {
			return ir.Operand{}, fmt.Errorf("lower: %d: bad binary op %s", e.Line, e.Op)
		}
		dst := fl.fn.NewReg("")
		fl.emit(ir.Instr{Op: op, Dst: dst, A: x, B: y, Pos: e.Line})
		return ir.Reg(dst), nil
	case *minic.CondExpr:
		// result = cond ? then : else via control flow.
		dst := fl.fn.NewReg("")
		thenB := fl.newBlock("cond.then")
		elseB := fl.newBlock("cond.else")
		joinB := fl.newBlock("cond.end")
		if err := fl.condBranch(e.Cond, thenB.ID, elseB.ID); err != nil {
			return ir.Operand{}, err
		}
		fl.cur = thenB
		tv, err := fl.expr(e.Then)
		if err != nil {
			return ir.Operand{}, err
		}
		fl.emitCopy(dst, tv, e.Line)
		fl.jumpTo(joinB)
		fl.cur = elseB
		ev, err := fl.expr(e.Else)
		if err != nil {
			return ir.Operand{}, err
		}
		fl.emitCopy(dst, ev, e.Line)
		fl.jumpTo(joinB)
		fl.cur = joinB
		return ir.Reg(dst), nil
	}
	return ir.Operand{}, fmt.Errorf("lower: unknown expression %T", e)
}

// materializeCond lowers a short-circuit operator in value position to a
// 0/1 register via control flow.
func (fl *funcLowerer) materializeCond(e minic.Expr) (ir.Operand, error) {
	dst := fl.fn.NewReg("")
	trueB := fl.newBlock("bool.true")
	falseB := fl.newBlock("bool.false")
	joinB := fl.newBlock("bool.end")
	if err := fl.condBranch(e, trueB.ID, falseB.ID); err != nil {
		return ir.Operand{}, err
	}
	trueB.Instrs = append(trueB.Instrs, ir.Instr{Op: ir.OpConst, Dst: dst, A: ir.Imm(1), Pos: e.Pos()})
	trueB.Term = ir.Terminator{Kind: ir.TermJump, Then: joinB.ID}
	falseB.Instrs = append(falseB.Instrs, ir.Instr{Op: ir.OpConst, Dst: dst, A: ir.Imm(0), Pos: e.Pos()})
	falseB.Term = ir.Terminator{Kind: ir.TermJump, Then: joinB.ID}
	fl.cur = joinB
	return ir.Reg(dst), nil
}

// lowerCall lowers a call; wantValue selects value or statement context.
func (fl *funcLowerer) lowerCall(e *minic.CallExpr, wantValue bool) (ir.Operand, error) {
	// Callee bodies may not have been lowered yet (declaration order is
	// arbitrary), so parameter shapes come from the AST declaration list.
	var calleeDecl *minic.FuncDecl
	for _, d := range fl.l.fileDecls {
		if fd, ok := d.(*minic.FuncDecl); ok && fd.Name == e.Name {
			calleeDecl = fd
			break
		}
	}
	if calleeDecl == nil {
		return ir.Operand{}, fmt.Errorf("lower: %d: call to undefined %q", e.Line, e.Name)
	}
	in := ir.Instr{Op: ir.OpCall, Callee: e.Name, Pos: e.Line}
	for i, a := range e.Args {
		p := calleeDecl.Params[i]
		if p.IsArray {
			id := a.(*minic.Ident)
			b, ok := fl.lookup(id.Name)
			if !ok || b.kind != bindArray {
				return ir.Operand{}, fmt.Errorf("lower: %d: bad array argument %q", e.Line, id.Name)
			}
			in.ArrArgs = append(in.ArrArgs, b.arr)
			continue
		}
		v, err := fl.expr(a)
		if err != nil {
			return ir.Operand{}, err
		}
		in.Args = append(in.Args, v)
	}
	if wantValue {
		in.CallHasDst = true
		in.Dst = fl.fn.NewReg("")
		fl.emit(in)
		return ir.Reg(in.Dst), nil
	}
	fl.emit(in)
	return ir.Operand{}, nil
}

func evalBinary(op minic.Kind, x, y int32) (int32, bool) {
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case minic.Plus:
		return x + y, true
	case minic.Minus:
		return x - y, true
	case minic.Star:
		return x * y, true
	case minic.Slash:
		if y == 0 || (x == -1<<31 && y == -1) {
			return 0, false
		}
		return x / y, true
	case minic.Percent:
		if y == 0 || (x == -1<<31 && y == -1) {
			return 0, false
		}
		return x % y, true
	case minic.Amp:
		return x & y, true
	case minic.Pipe:
		return x | y, true
	case minic.Caret:
		return x ^ y, true
	case minic.Shl:
		return x << (uint32(y) & 31), true
	case minic.Shr:
		return x >> (uint32(y) & 31), true
	case minic.Lt:
		return b2i(x < y), true
	case minic.Le:
		return b2i(x <= y), true
	case minic.Gt:
		return b2i(x > y), true
	case minic.Ge:
		return b2i(x >= y), true
	case minic.EqEq:
		return b2i(x == y), true
	case minic.NotEq:
		return b2i(x != y), true
	}
	return 0, false
}
