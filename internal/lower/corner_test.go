package lower

import (
	"testing"

	"hybridpart/internal/interp"
	"hybridpart/internal/ir"
)

// Additional lowering corner cases complementing lower_test.go.

func TestNestedShortCircuitInForCondition(t *testing.T) {
	src := `
int f(int a, int b) {
    int i;
    int n = 0;
    for (i = 0; i < 20 && (a > 0 || b > i); i++) { n++; }
    return n;
}`
	ref := func(a, b int32) int32 {
		n := int32(0)
		for i := int32(0); i < 20 && (a > 0 || b > i); i++ {
			n++
		}
		return n
	}
	for _, c := range [][2]int32{{1, 0}, {0, 5}, {0, 0}, {0, 25}} {
		got := run(t, src, "f", interp.Int(c[0]), interp.Int(c[1]))
		if want := ref(c[0], c[1]); got != want {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestContinueInDoWhile(t *testing.T) {
	src := `
int f(int n) {
    int i = 0;
    int s = 0;
    do {
        i++;
        if (i & 1) { continue; }
        s += i;
    } while (i < n);
    return s;
}`
	// Sum of even numbers 2..10 = 30.
	if got := run(t, src, "f", interp.Int(10)); got != 30 {
		t.Fatalf("f(10) = %d, want 30", got)
	}
}

func TestBreakFromNestedLoopOnlyInner(t *testing.T) {
	src := `
int f() {
    int i;
    int j;
    int c = 0;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 100; j++) {
            if (j == 3) { break; }
            c++;
        }
    }
    return c;
}`
	if got := run(t, src, "f"); got != 4*3 {
		t.Fatalf("f() = %d, want 12", got)
	}
}

func TestCompoundAssignOn2DArray(t *testing.T) {
	src := `
int m[3][3];
int f(int k) {
    int i;
    for (i = 0; i < 3; i++) { m[i][i] = i + 1; }
    m[1][1] *= k;
    m[2][2] >>= 1;
    m[0][0] ^= 5;
    return m[0][0] * 100 + m[1][1] * 10 + m[2][2];
}`
	// m00 = 1^5 = 4, m11 = 2*7 = 14, m22 = 3>>1 = 1.
	if got := run(t, src, "f", interp.Int(7)); got != 4*100+14*10+1 {
		t.Fatalf("f(7) = %d, want 541", got)
	}
}

func TestTernaryNestedAndSideEffectFree(t *testing.T) {
	src := `
int clamp(int v, int lo, int hi) {
    return (v < lo) ? lo : ((v > hi) ? hi : v);
}`
	cases := [][4]int32{{5, 0, 10, 5}, {-3, 0, 10, 0}, {42, 0, 10, 10}}
	for _, c := range cases {
		if got := run(t, src, "clamp", interp.Int(c[0]), interp.Int(c[1]), interp.Int(c[2])); got != c[3] {
			t.Errorf("clamp(%d,%d,%d) = %d, want %d", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestArrayInitializerDynamicValues(t *testing.T) {
	src := `
int f(int x) {
    int v[4] = {x, x * 2, x * 3, 1 + 2};
    return v[0] + v[1] + v[2] + v[3];
}`
	if got := run(t, src, "f", interp.Int(5)); got != 5+10+15+3 {
		t.Fatalf("f(5) = %d, want 33", got)
	}
}

func TestGlobalArrayInitConstExprs(t *testing.T) {
	src := `
const int K = 3;
int g[4] = {K, K * K, K << 2, ~K};
int f() { return g[0] + g[1] + g[2] + g[3]; }`
	if got := run(t, src, "f"); got != 3+9+12+^int32(3) {
		t.Fatalf("f() = %d", got)
	}
}

func TestShadowingInNestedBlocks(t *testing.T) {
	src := `
int f() {
    int x = 1;
    {
        int x = 10;
        x++;
        if (x != 11) { return -1; }
    }
    return x;
}`
	if got := run(t, src, "f"); got != 1 {
		t.Fatalf("f() = %d, want 1 (outer x untouched)", got)
	}
}

func TestForWithDeclInit(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    return s;
}`
	if got := run(t, src, "f", interp.Int(5)); got != 10 {
		t.Fatalf("f(5) = %d, want 10", got)
	}
}

func TestNegativeModuloAndShiftSemantics(t *testing.T) {
	// C99 truncated division/modulo and arithmetic right shift.
	src := `
int m(int a, int b) { return a % b; }
int d(int a, int b) { return a / b; }
int s(int a) { return a >> 1; }`
	cases := []struct {
		fn   string
		a, b int32
		want int32
	}{
		{"m", -7, 3, -1}, {"m", 7, -3, 1}, {"d", -7, 3, -2}, {"d", 7, -3, -2},
		{"s", -5, 0, -3},
	}
	for _, c := range cases {
		var got int32
		if c.fn == "s" {
			got = run(t, src, c.fn, interp.Int(c.a))
		} else {
			got = run(t, src, c.fn, interp.Int(c.a), interp.Int(c.b))
		}
		if got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.fn, c.a, c.b, got, c.want)
		}
	}
}

func TestDeepInliningChain(t *testing.T) {
	src := `
int l4(int x) { return x + 1; }
int l3(int x) { return l4(x) * 2; }
int l2(int x) { return l3(x) + l4(x); }
int l1(int x) { return l2(x) - l3(x); }
int f(int x) { return l1(x) + l2(x) * l3(x) - l4(x); }`
	prog, err := LowerSource(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	// Verify value equivalence after full inlining.
	ref := func(x int32) int32 {
		l4 := func(x int32) int32 { return x + 1 }
		l3 := func(x int32) int32 { return l4(x) * 2 }
		l2 := func(x int32) int32 { return l3(x) + l4(x) }
		l1 := func(x int32) int32 { return l2(x) - l3(x) }
		return l1(x) + l2(x)*l3(x) - l4(x)
	}
	fp := newFlatProg(t, prog, flat)
	for _, x := range []int32{0, 1, -3, 1000} {
		got, err := interp.New(fp).Run("f", interp.Int(x))
		if err != nil {
			t.Fatal(err)
		}
		if got != ref(x) {
			t.Fatalf("f(%d) = %d, want %d", x, got, ref(x))
		}
	}
}

func TestWhileFalseBodyUnreachable(t *testing.T) {
	src := `
int f() {
    int s = 7;
    while (0) { s = 99; }
    return s;
}`
	if got := run(t, src, "f"); got != 7 {
		t.Fatalf("f() = %d, want 7", got)
	}
}

// newFlatProg wraps a flattened function plus the original globals.
func newFlatProg(t *testing.T, orig *ir.Program, flat *ir.Function) *ir.Program {
	t.Helper()
	fp := ir.NewProgram()
	fp.Globals = orig.Globals
	if err := fp.AddFunc(flat); err != nil {
		t.Fatal(err)
	}
	return fp
}
