package lower

import (
	"fmt"

	"hybridpart/internal/ir"
)

// Flatten returns a copy of the entry function with every call (transitively)
// inlined, leaving a single flat CDFG for the analysis and mapping stages —
// the same whole-program view the paper's SUIF-based flow hands to its
// partitioner. The source program is not modified. Recursion is rejected.
func Flatten(p *ir.Program, entry string) (*ir.Function, error) {
	root := p.Func(entry)
	if root == nil {
		return nil, fmt.Errorf("lower: entry function %q not found", entry)
	}
	if err := checkNoRecursion(p, entry); err != nil {
		return nil, err
	}
	fn := cloneFunction(root)
	// Inline until no calls remain. Termination: the static call graph is a
	// DAG (no recursion), so the nesting depth of spliced bodies is bounded.
	for rounds := 0; ; rounds++ {
		if rounds > 10000 {
			return nil, fmt.Errorf("lower: inlining did not converge")
		}
		site, ok := findCall(fn)
		if !ok {
			break
		}
		callee := p.Func(fn.Blocks[site.block].Instrs[site.index].Callee)
		if callee == nil {
			return nil, fmt.Errorf("lower: call to undefined %q", fn.Blocks[site.block].Instrs[site.index].Callee)
		}
		inlineCall(fn, site, callee)
	}
	Cleanup(fn)
	return fn, nil
}

type callSite struct {
	block ir.BlockID
	index int
}

func findCall(f *ir.Function) (callSite, bool) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				return callSite{block: b.ID, index: i}, true
			}
		}
	}
	return callSite{}, false
}

func checkNoRecursion(p *ir.Program, entry string) error {
	state := map[string]int{} // 0 unseen, 1 on stack, 2 done
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("lower: recursion involving %q is not supported (cycle: %v)", name, append(path, name))
		case 2:
			return nil
		}
		state[name] = 1
		f := p.Func(name)
		if f == nil {
			return fmt.Errorf("lower: call to undefined %q", name)
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall {
					if err := visit(b.Instrs[i].Callee, append(path, name)); err != nil {
						return err
					}
				}
			}
		}
		state[name] = 2
		return nil
	}
	return visit(entry, nil)
}

func cloneFunction(f *ir.Function) *ir.Function {
	nf := &ir.Function{
		Name:     f.Name,
		HasRet:   f.HasRet,
		NumRegs:  f.NumRegs,
		RegNames: make(map[ir.RegID]string, len(f.RegNames)),
		Entry:    f.Entry,
	}
	nf.Params = append(nf.Params, f.Params...)
	nf.Arrays = append(nf.Arrays, f.Arrays...)
	for k, v := range f.RegNames {
		nf.RegNames[k] = v
	}
	for _, b := range f.Blocks {
		nb := &ir.Block{ID: b.ID, Name: b.Name, Term: b.Term}
		nb.Instrs = make([]ir.Instr, len(b.Instrs))
		copy(nb.Instrs, b.Instrs)
		for i := range nb.Instrs {
			if len(nb.Instrs[i].Args) > 0 {
				nb.Instrs[i].Args = append([]ir.Operand(nil), nb.Instrs[i].Args...)
			}
			if len(nb.Instrs[i].ArrArgs) > 0 {
				nb.Instrs[i].ArrArgs = append([]ir.ArrID(nil), nb.Instrs[i].ArrArgs...)
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// inlineCall splices callee's body into caller at the given call site.
func inlineCall(caller *ir.Function, site callSite, callee *ir.Function) {
	callBlock := caller.Block(site.block)
	call := callBlock.Instrs[site.index]

	// Split the call block: everything after the call moves to contBlock.
	contBlock := caller.AddBlock(callBlock.Name + ".cont")
	contBlock.Instrs = append(contBlock.Instrs, callBlock.Instrs[site.index+1:]...)
	contBlock.Term = callBlock.Term
	callBlock.Instrs = callBlock.Instrs[:site.index]
	// Terminator is attached after argument copies below.

	// Fresh registers for the callee.
	regMap := make([]ir.RegID, callee.NumRegs)
	for r := 0; r < callee.NumRegs; r++ {
		name := ""
		if n, ok := callee.RegNames[ir.RegID(r)]; ok {
			name = callee.Name + "." + n
		}
		regMap[r] = caller.NewReg(name)
	}
	// Array mapping: by-reference params bind to the call-site arrays;
	// locals are copied into fresh caller slots.
	arrMap := make([]ir.ArrID, len(callee.Arrays))
	scalarArgs, arrArgs := call.Args, call.ArrArgs
	ai, si := 0, 0
	paramArr := map[ir.ArrID]ir.ArrID{} // callee param slot -> caller array
	var paramCopies []ir.Instr
	for _, p := range callee.Params {
		if p.IsArray {
			paramArr[p.Arr] = arrArgs[ai]
			ai++
			continue
		}
		// Scalar parameters are copied at the call site.
		src := scalarArgs[si]
		si++
		dst := regMap[p.Reg]
		in := ir.Instr{Op: ir.OpCopy, Dst: dst, A: src, Pos: call.Pos}
		if src.IsImm() {
			in = ir.Instr{Op: ir.OpConst, Dst: dst, A: src, Pos: call.Pos}
		}
		paramCopies = append(paramCopies, in)
	}
	for id := range callee.Arrays {
		if target, ok := paramArr[ir.ArrID(id)]; ok {
			arrMap[id] = target
			continue
		}
		decl := callee.Arrays[id]
		decl.Name = callee.Name + "." + decl.Name
		arrMap[id] = caller.AddArray(decl)
	}

	// Clone callee blocks.
	blockMap := make([]ir.BlockID, len(callee.Blocks))
	for i, b := range callee.Blocks {
		blockMap[i] = caller.AddBlock(callee.Name + "." + b.Name).ID
	}
	mapOperand := func(o ir.Operand) ir.Operand {
		if o.Kind == ir.OperandReg {
			return ir.Reg(regMap[o.Reg])
		}
		return o
	}
	mapArr := func(a ir.ArrID) ir.ArrID {
		if ir.IsGlobalArr(a) || a == ir.NoArr {
			return a
		}
		return arrMap[a]
	}
	for i, b := range callee.Blocks {
		nb := caller.Block(blockMap[i])
		for _, in := range b.Instrs {
			ni := in
			ni.A = mapOperand(in.A)
			ni.B = mapOperand(in.B)
			if in.HasDst() {
				ni.Dst = regMap[in.Dst]
			}
			// Arr is only meaningful on memory ops; elsewhere its zero value
			// would be misread as local array 0.
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				ni.Arr = mapArr(in.Arr)
			}
			if len(in.Args) > 0 {
				ni.Args = make([]ir.Operand, len(in.Args))
				for k, a := range in.Args {
					ni.Args[k] = mapOperand(a)
				}
			}
			if len(in.ArrArgs) > 0 {
				ni.ArrArgs = make([]ir.ArrID, len(in.ArrArgs))
				for k, a := range in.ArrArgs {
					ni.ArrArgs[k] = mapArr(a)
				}
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
		switch b.Term.Kind {
		case ir.TermJump:
			nb.Term = ir.Terminator{Kind: ir.TermJump, Then: blockMap[b.Term.Then], Pos: b.Term.Pos}
		case ir.TermBranch:
			nb.Term = ir.Terminator{
				Kind: ir.TermBranch,
				Cond: mapOperand(b.Term.Cond),
				Then: blockMap[b.Term.Then],
				Else: blockMap[b.Term.Else],
				Pos:  b.Term.Pos,
			}
		case ir.TermReturn:
			// Returns feed the call result (if any) and continue after the
			// call site.
			if call.CallHasDst && b.Term.HasVal {
				v := mapOperand(b.Term.Val)
				in := ir.Instr{Op: ir.OpCopy, Dst: call.Dst, A: v, Pos: b.Term.Pos}
				if v.IsImm() {
					in.Op = ir.OpConst
				}
				nb.Instrs = append(nb.Instrs, in)
			}
			nb.Term = ir.Terminator{Kind: ir.TermJump, Then: contBlock.ID, Pos: b.Term.Pos}
		}
	}

	// Wire the call block: param copies then jump into the callee entry.
	callBlock.Instrs = append(callBlock.Instrs, paramCopies...)
	callBlock.Term = ir.Terminator{Kind: ir.TermJump, Then: blockMap[callee.Entry], Pos: call.Pos}
}
