// Package store holds the storage backends under the service result cache.
// The cache layer (internal/cache) owns request coalescing and the
// hit/miss accounting; a Backend owns only the mapping from fingerprint
// keys to encoded response bytes, its recency order and its capacity
// bound. Two implementations ship: Memory, the bounded in-process LRU the
// service has always used, and Disk, a content-addressed on-disk store
// that survives restarts so a replica comes back warm.
package store

// Stats is a point-in-time snapshot of a store's counters. The Hits,
// Misses and Coalesced fields belong to the coalescing layer above the
// backend (internal/cache fills them in); a Backend reports only the
// fields it owns — entry counts, capacity, evictions and, for byte-bounded
// stores, the byte totals.
type Stats struct {
	// Hits counts lookups served from a stored entry; Misses counts
	// lookups that triggered a computation. Filled by the cache layer.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups that joined an in-flight computation
	// instead of starting their own. Filled by the cache layer.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped to enforce the capacity bound.
	Evictions uint64 `json:"evictions"`
	// Size is the current number of stored entries; Capacity the bound in
	// entries (0 when the store is bounded by bytes instead).
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// SizeBytes/CapacityBytes are the byte totals of byte-bounded stores
	// (the disk store); entry-bounded stores leave them zero.
	SizeBytes     int64 `json:"size_bytes,omitempty"`
	CapacityBytes int64 `json:"capacity_bytes,omitempty"`
	// Corrupt counts stored entries that failed verification on read and
	// were dropped (treated as misses, never as errors).
	Corrupt uint64 `json:"corrupt,omitempty"`
}

// Backend is a pluggable store of encoded response bytes keyed by request
// fingerprints. Implementations are safe for concurrent use. Get returns
// the stored bytes and marks the entry most recently used; callers must
// not mutate the returned slice. Put stores (or refreshes) an entry,
// evicting least-recently-used entries as needed to keep the store within
// its bound; it is best-effort and never fails the caller. Close releases
// resources and flushes any persistent state (a no-op for Memory).
type Backend interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
	Len() int
	Stats() Stats
	Close() error
}
