package store

import (
	"container/list"
	"sync"
)

// Memory is the bounded in-process LRU backend — the store the service has
// used since the cache was introduced, extracted behind the Backend
// interface. The zero value is not usable; construct with NewMemory.
type Memory struct {
	mu        sync.Mutex
	capacity  int
	lru       *list.List               // front = most recently used
	byKey     map[string]*list.Element // key -> element holding *memEntry
	evictions uint64
}

type memEntry struct {
	key string
	val []byte
}

// NewMemory returns a Memory backend bounded to capacity entries
// (minimum 1).
func NewMemory(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Get returns the stored bytes for key, marking it most recently used.
func (m *Memory) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		m.lru.MoveToFront(el)
		return el.Value.(*memEntry).val, true
	}
	return nil, false
}

// Put inserts (or refreshes) key and enforces the capacity bound.
func (m *Memory) Put(key string, val []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		el.Value.(*memEntry).val = val
		m.lru.MoveToFront(el)
		return
	}
	m.byKey[key] = m.lru.PushFront(&memEntry{key: key, val: val})
	for m.lru.Len() > m.capacity {
		oldest := m.lru.Back()
		m.lru.Remove(oldest)
		delete(m.byKey, oldest.Value.(*memEntry).key)
		m.evictions++
	}
}

// Len returns the current number of stored entries.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Stats reports the backend-owned counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Evictions: m.evictions,
		Size:      m.lru.Len(),
		Capacity:  m.capacity,
	}
}

// Close is a no-op: Memory holds no persistent state.
func (m *Memory) Close() error { return nil }
