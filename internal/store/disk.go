package store

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a content-addressed, size-bounded, restart-surviving backend:
// each entry is one file under the store directory, named by the SHA-256
// of its key, holding a small self-describing header (key, payload length,
// payload checksum) followed by the payload bytes. Writes are crash-safe
// by construction — entries and the index are written to a temp file and
// renamed into place, so a crash mid-write leaves at worst a stale temp
// file that the next Open sweeps away, never a half-visible entry.
//
// The LRU order persists in an on-disk index (index.json, also written by
// rename) so eviction order survives restarts; entries present on disk
// but missing from the index (an older crash, a hand-copied file) are
// adopted as coldest rather than dropped. A corrupt or truncated entry —
// bad magic, key mismatch, short payload, checksum failure — is deleted
// and reported as a miss, never as an error: the cache above recomputes
// and the store heals.
//
// A Disk instance assumes it owns its directory; two processes sharing
// one directory are not supported (replicas in a fleet each get their
// own -cache-dir).
type Disk struct {
	mu        sync.Mutex
	dir       string
	maxBytes  int64
	order     *list.List               // front = most recently used, holds *diskEntry
	byKey     map[string]*list.Element // key -> element
	bytes     int64                    // sum of entry file sizes
	evictions uint64
	corrupt   uint64
	dirty     bool // in-memory recency order not yet flushed to index.json
}

type diskEntry struct {
	key  string
	size int64 // on-disk file size, header included
}

const (
	diskMagic     = "hybridpart-store-v1"
	diskEntryExt  = ".v1"
	diskIndexName = "index.json"
	diskTmpPrefix = ".tmp-"
)

// diskIndex is the JSON shape of index.json: keys in most-recently-used
// order. Sizes are re-stat'd at Open, so the index carries order only.
type diskIndex struct {
	Version int      `json:"version"`
	Keys    []string `json:"keys"`
}

// OpenDisk opens (or adopts) the store rooted at dir, bounded to maxBytes
// of entry files (minimum 1). dir must already exist and be writable —
// the caller owns directory-creation policy.
func OpenDisk(dir string, maxBytes int64) (*Disk, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("store: %s is not a directory", dir)
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	d := &Disk{
		dir:      dir,
		maxBytes: maxBytes,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
	}
	if err := d.load(); err != nil {
		return nil, err
	}
	return d, nil
}

// entryPath is the file holding key's entry. The name is the SHA-256 of
// the key so arbitrary key strings map to safe, fixed-length file names.
func (d *Disk) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+diskEntryExt)
}

// load rebuilds the in-memory index from the directory: the on-disk index
// supplies recency order, the entry files themselves are the truth about
// what exists. Unreadable index, unknown files and stale temp files are
// all tolerated.
func (d *Disk) load() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Map present entry files to their sizes; sweep temp droppings.
	onDisk := map[string]int64{} // file name -> size
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, diskTmpPrefix) {
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if !strings.HasSuffix(name, diskEntryExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		onDisk[name] = info.Size()
	}
	// The index orders keys MRU-first; adopt every key whose file survives.
	var idx diskIndex
	if raw, err := os.ReadFile(filepath.Join(d.dir, diskIndexName)); err == nil {
		if json.Unmarshal(raw, &idx) != nil || idx.Version != 1 {
			idx.Keys = nil // corrupt index: fall back to adoption below
		}
	}
	seen := map[string]bool{}
	for _, key := range idx.Keys {
		name := filepath.Base(d.entryPath(key))
		size, ok := onDisk[name]
		if !ok || seen[name] {
			continue
		}
		seen[name] = true
		d.byKey[key] = d.order.PushBack(&diskEntry{key: key, size: size})
		d.bytes += size
	}
	// Entry files the index does not know (crash before an index flush,
	// files copied in by hand): recover their keys from the header and
	// adopt them as coldest, deterministically ordered by name.
	var orphans []string
	for name := range onDisk {
		if !seen[name] {
			orphans = append(orphans, name)
		}
	}
	sort.Strings(orphans)
	for _, name := range orphans {
		path := filepath.Join(d.dir, name)
		key, _, err := readEntryHeader(path)
		if err != nil {
			os.Remove(path)
			d.corrupt++
			continue
		}
		if _, dup := d.byKey[key]; dup {
			os.Remove(path)
			continue
		}
		d.byKey[key] = d.order.PushBack(&diskEntry{key: key, size: onDisk[name]})
		d.bytes += onDisk[name]
	}
	d.evictLocked()
	d.writeIndexLocked()
	return nil
}

// Get returns the stored payload for key, verifying it against the header
// checksum. Any damage — missing file, bad magic, key mismatch, short or
// over-long payload, checksum failure — drops the entry and reports a
// miss.
func (d *Disk) Get(key string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.byKey[key]
	if !ok {
		return nil, false
	}
	path := d.entryPath(key)
	val, err := readEntry(path, key)
	if err != nil {
		d.dropLocked(el)
		os.Remove(path)
		d.corrupt++
		return nil, false
	}
	d.order.MoveToFront(el)
	d.dirty = true // recency changed; flushed on the next Put or Close
	return val, true
}

// Put stores (or refreshes) key, evicting least-recently-used entries to
// stay within the byte bound, and flushes the index. Best-effort: a write
// failure (disk full, permissions) leaves the store without the entry and
// the caller none the wiser — the cache above simply recomputes next time.
func (d *Disk) Put(key string, val []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	path := d.entryPath(key)
	size, err := writeEntry(d.dir, path, key, val)
	if err != nil {
		if el, ok := d.byKey[key]; ok { // stale entry may now be damaged
			d.dropLocked(el)
			os.Remove(path)
		}
		return
	}
	if el, ok := d.byKey[key]; ok {
		ent := el.Value.(*diskEntry)
		d.bytes += size - ent.size
		ent.size = size
		d.order.MoveToFront(el)
	} else {
		d.byKey[key] = d.order.PushFront(&diskEntry{key: key, size: size})
		d.bytes += size
	}
	d.evictLocked()
	d.writeIndexLocked()
}

// evictLocked drops least-recently-used entries until the store fits the
// byte bound. The most recent entry always survives, even when it alone
// exceeds the bound — evicting what was just stored would make the store
// thrash on every Put.
func (d *Disk) evictLocked() {
	for d.bytes > d.maxBytes && d.order.Len() > 1 {
		oldest := d.order.Back()
		ent := oldest.Value.(*diskEntry)
		d.dropLocked(oldest)
		os.Remove(d.entryPath(ent.key))
		d.evictions++
	}
}

// dropLocked removes an entry from the in-memory index (not from disk).
func (d *Disk) dropLocked(el *list.Element) {
	ent := el.Value.(*diskEntry)
	d.order.Remove(el)
	delete(d.byKey, ent.key)
	d.bytes -= ent.size
	d.dirty = true
}

// writeIndexLocked persists the recency order crash-safely (temp+rename).
func (d *Disk) writeIndexLocked() {
	idx := diskIndex{Version: 1, Keys: make([]string, 0, d.order.Len())}
	for el := d.order.Front(); el != nil; el = el.Next() {
		idx.Keys = append(idx.Keys, el.Value.(*diskEntry).key)
	}
	raw, err := json.Marshal(idx)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, diskTmpPrefix+"index-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), filepath.Join(d.dir, diskIndexName)) == nil {
		d.dirty = false
	} else {
		os.Remove(tmp.Name())
	}
}

// Len returns the current number of stored entries.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.order.Len()
}

// Stats reports the backend-owned counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Evictions:     d.evictions,
		Size:          d.order.Len(),
		SizeBytes:     d.bytes,
		CapacityBytes: d.maxBytes,
		Corrupt:       d.corrupt,
	}
}

// Close flushes the recency order to the on-disk index.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dirty {
		d.writeIndexLocked()
	}
	return nil
}

// writeEntry writes one entry file crash-safely and returns its size.
func writeEntry(dir, path, key string, val []byte) (int64, error) {
	sum := sha256.Sum256(val)
	var buf bytes.Buffer
	// The key is hex-encoded so arbitrary key strings (newlines included)
	// cannot break the line-oriented header.
	fmt.Fprintf(&buf, "%s\nkey %s\nlen %d\nsum %s\n\n",
		diskMagic, hex.EncodeToString([]byte(key)), len(val), hex.EncodeToString(sum[:]))
	buf.Write(val)
	tmp, err := os.CreateTemp(dir, diskTmpPrefix+"entry-*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(buf.Len()), nil
}

// readEntryHeader parses just the header of an entry file, returning the
// key it claims and the payload length.
func readEntryHeader(path string) (key string, length int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	key, length, _, _, err = parseHeader(bufio.NewReader(f))
	return key, length, err
}

// readEntry reads and verifies one entry file: the magic, the key it was
// stored under, the payload length and the payload checksum must all
// match, or the entry is damaged.
func readEntry(path, wantKey string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	key, length, sum, _, err := parseHeader(r)
	if err != nil {
		return nil, err
	}
	if key != wantKey {
		return nil, fmt.Errorf("store: entry %s holds key %q, want %q", path, key, wantKey)
	}
	val := make([]byte, length)
	if _, err := io.ReadFull(r, val); err != nil {
		return nil, fmt.Errorf("store: entry %s truncated: %w", path, err)
	}
	// Trailing garbage after the declared payload is damage too.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("store: entry %s has trailing bytes", path)
	}
	got := sha256.Sum256(val)
	if hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("store: entry %s payload checksum mismatch", path)
	}
	return val, nil
}

// parseHeader reads the five header lines: magic, "key <k>", "len <n>",
// "sum <hex>", blank separator.
func parseHeader(r *bufio.Reader) (key string, length int, sum, magic string, err error) {
	line := func() (string, error) {
		s, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimSuffix(s, "\n"), nil
	}
	if magic, err = line(); err != nil || magic != diskMagic {
		return "", 0, "", magic, fmt.Errorf("store: bad magic %q", magic)
	}
	kl, err := line()
	if err != nil || !strings.HasPrefix(kl, "key ") {
		return "", 0, "", magic, fmt.Errorf("store: bad key line")
	}
	rawKey, err := hex.DecodeString(strings.TrimPrefix(kl, "key "))
	if err != nil {
		return "", 0, "", magic, fmt.Errorf("store: bad key encoding: %w", err)
	}
	key = string(rawKey)
	ll, err := line()
	if err != nil {
		return "", 0, "", magic, fmt.Errorf("store: bad len line")
	}
	if _, err := fmt.Sscanf(ll, "len %d", &length); err != nil || length < 0 {
		return "", 0, "", magic, fmt.Errorf("store: bad len line %q", ll)
	}
	sl, err := line()
	if err != nil || !strings.HasPrefix(sl, "sum ") {
		return "", 0, "", magic, fmt.Errorf("store: bad sum line")
	}
	sum = strings.TrimPrefix(sl, "sum ")
	if blank, err := line(); err != nil || blank != "" {
		return "", 0, "", magic, fmt.Errorf("store: missing header separator")
	}
	return key, length, sum, magic, nil
}
