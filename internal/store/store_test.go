package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestMemoryLRU pins the extracted in-memory backend's contract: recency
// on Get, eviction order, eviction/size/capacity counters.
func TestMemoryLRU(t *testing.T) {
	m := NewMemory(2)
	m.Put("a", []byte("va"))
	m.Put("b", []byte("vb"))
	if v, ok := m.Get("a"); !ok || string(v) != "va" {
		t.Fatalf("a: (%q, %v)", v, ok)
	}
	m.Put("c", []byte("vc")) // "b" is LRU now
	if _, ok := m.Get("b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if s := m.Stats(); s.Evictions != 1 || s.Size != 2 || s.Capacity != 2 {
		t.Fatalf("stats: %+v", s)
	}
	// Refreshing an existing key replaces the value without growing.
	m.Put("a", []byte("va2"))
	if v, _ := m.Get("a"); string(v) != "va2" {
		t.Fatalf("refresh lost: %q", v)
	}
	if m.Len() != 2 {
		t.Fatalf("len: %d", m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryMinimumCapacity(t *testing.T) {
	m := NewMemory(0)
	m.Put("a", []byte("x"))
	if s := m.Stats(); s.Capacity != 1 || s.Size != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestBackendsConcurrent hammers both backends from many goroutines under
// -race: overlapping Put/Get/Stats on a shared key set.
func TestBackendsConcurrent(t *testing.T) {
	backends := map[string]Backend{
		"memory": NewMemory(16),
	}
	d, err := OpenDisk(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	backends["disk"] = d
	for name, be := range backends {
		be := be
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						k := fmt.Sprintf("key-%d", (g+i)%12)
						want := []byte(fmt.Sprintf("val-%d", (g+i)%12))
						be.Put(k, want)
						if v, ok := be.Get(k); ok && !bytes.Equal(v, want) {
							t.Errorf("%s: got %q want %q", k, v, want)
							return
						}
						be.Stats()
					}
				}(g)
			}
			wg.Wait()
			if err := be.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
