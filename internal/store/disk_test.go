package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diskEntryFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), diskEntryExt) {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	return names
}

// TestDiskRestartWarm is the restart-warm acceptance test: populate,
// close, reopen the same directory, and the first Get must return the
// byte-identical payload.
func TestDiskRestartWarm(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"final_cycles":12345,"objective":"sim"}` + "\n")
	d.Put("fingerprint-a", want)
	d.Put("fingerprint-b", []byte("other"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", d2.Len())
	}
	got, ok := d2.Get("fingerprint-a")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("warm hit: (%q, %v), want %q", got, ok, want)
	}
	if s := d2.Stats(); s.SizeBytes <= 0 || s.CapacityBytes != 1<<20 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDiskEvictionOrder: the byte bound evicts in least-recently-used
// order, and the order survives a restart via the on-disk index.
func TestDiskEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 256)
	d.Put("a", val)
	d.Put("b", val)
	d.Put("c", val)
	// Touch "a": LRU order is now b < c < a.
	if _, ok := d.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a bound that fits only two entries: "b" (coldest per the
	// persisted order) must be the one evicted at load.
	perEntry := d.Stats().SizeBytes / 3
	d2, err := OpenDisk(dir, perEntry*2+perEntry/2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.Get("b"); ok {
		t.Fatal("LRU entry b survived the shrunken bound")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := d2.Get(k); !ok {
			t.Fatalf("recently-used entry %s evicted", k)
		}
	}
	if s := d2.Stats(); s.Evictions != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// Online eviction: inserting a fourth entry over the bound drops the
	// current LRU ("c" was refreshed above... order is c < a < new).
	d2.Get("a")
	d2.Put("d", val)
	if _, ok := d2.Get("c"); ok {
		t.Fatal("online eviction dropped the wrong entry")
	}
	if _, ok := d2.Get("d"); !ok {
		t.Fatal("just-inserted entry evicted")
	}
}

// TestDiskKeepsNewestOversized: an entry larger than the whole bound
// still stores (evicting everything else) rather than thrashing.
func TestDiskKeepsNewestOversized(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("small", []byte("s"))
	big := bytes.Repeat([]byte("y"), 1024)
	d.Put("big", big)
	if v, ok := d.Get("big"); !ok || !bytes.Equal(v, big) {
		t.Fatal("oversized newest entry not kept")
	}
	if _, ok := d.Get("small"); ok {
		t.Fatal("older entry survived the byte bound")
	}
}

// TestDiskCorruptEntriesAreMisses: every damage mode — truncation, payload
// bit-flip, header garbage, wrong length — must read as a miss (and heal
// by deletion), never as an error or as wrong bytes.
func TestDiskCorruptEntriesAreMisses(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)-3] },
		"bitflip":    func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0x40; return c },
		"bad_magic":  func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = '!'; return c },
		"trailing":   func(b []byte) []byte { return append(append([]byte(nil), b...), "extra"...) },
		"empty_file": func([]byte) []byte { return nil },
	}
	for name, mutate := range damage {
		mutate := mutate
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(dir, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			d.Put("k", []byte("precious payload"))
			files := diskEntryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("entry files: %v", files)
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if v, ok := d.Get("k"); ok {
				t.Fatalf("corrupt entry served as a hit: %q", v)
			}
			if s := d.Stats(); s.Corrupt != 1 || s.Size != 0 {
				t.Fatalf("stats after corruption: %+v", s)
			}
			if files := diskEntryFiles(t, dir); len(files) != 0 {
				t.Fatalf("corrupt entry file not healed away: %v", files)
			}
			// The key is writable again.
			d.Put("k", []byte("fresh"))
			if v, ok := d.Get("k"); !ok || string(v) != "fresh" {
				t.Fatalf("store did not heal: (%q, %v)", v, ok)
			}
			d.Close()
		})
	}
}

// TestDiskCorruptIndexRecovers: a mangled index.json must not lose the
// entries — they are re-adopted from their self-describing files.
func TestDiskCorruptIndexRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("a", []byte("va"))
	d.Put("b", []byte("vb"))
	d.Close()
	if err := os.WriteFile(filepath.Join(dir, diskIndexName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for k, want := range map[string]string{"a": "va", "b": "vb"} {
		if v, ok := d2.Get(k); !ok || string(v) != want {
			t.Fatalf("%s after index loss: (%q, %v)", k, v, ok)
		}
	}
}

// TestDiskSweepsTempFiles: stale temp files from a crash mid-write are
// removed at Open and never surface as entries.
func TestDiskSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, diskTmpPrefix+"entry-123"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 0 {
		t.Fatalf("temp file adopted as entry: %d", d.Len())
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), diskTmpPrefix) {
			t.Fatalf("temp file survived open: %s", e.Name())
		}
	}
}

// TestDiskOpenErrors: a missing path or a plain file must fail Open — the
// caller (hservd flag validation) owns directory-creation policy.
func TestDiskOpenErrors(t *testing.T) {
	if _, err := OpenDisk(filepath.Join(t.TempDir(), "nope"), 1<<20); err == nil {
		t.Fatal("OpenDisk accepted a nonexistent directory")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(f, 1<<20); err == nil {
		t.Fatal("OpenDisk accepted a plain file")
	}
}

// TestDiskManyEntries exercises index round-tripping at a size where
// ordering bugs would show: 50 entries, touch a prefix, reopen, verify.
func TestDiskManyEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
	}
	d.Close()
	d2, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 50 {
		t.Fatalf("reopened %d entries, want 50", d2.Len())
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v, ok := d2.Get(k); !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("%s: (%q, %v)", k, v, ok)
		}
	}
}
