package server

import (
	"net/http"

	"hybridpart/internal/obs"
)

// TelemetryJSON is the body of GET /debug/telemetry: the collector's
// retained runtime-health samples, oldest first.
type TelemetryJSON struct {
	IntervalMs int64                 `json:"interval_ms"`
	Capacity   int                   `json:"capacity"`
	Samples    []obs.TelemetrySample `json:"samples"`
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if s.telemetry == nil {
		s.writeError(w, notFound("telemetry is not enabled (hservd -telemetry-interval)"))
		return
	}
	samples := s.telemetry.Samples()
	if samples == nil {
		samples = []obs.TelemetrySample{}
	}
	s.writeJSON(w, TelemetryJSON{
		IntervalMs: s.telemetry.Interval().Milliseconds(),
		Capacity:   s.telemetry.Capacity(),
		Samples:    samples,
	})
}
