package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridpart/internal/cluster"
	"hybridpart/internal/obs"
)

// Tracing tests: the traceparent round-trip across a two-replica forward,
// the loop-guard path, engine-depth spans, and the exactly-once span
// accounting that /metrics exposes.

// findSpan returns the first span with the given name, or nil.
func findSpan(tr *obs.Trace, name string) *obs.SpanData {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// attrValue returns the named attribute's value, or nil.
func attrValue(sd *obs.SpanData, key string) any {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// waitTrace polls for a finished trace: the HTTP response races the root
// span's End by microseconds, so reads retry briefly.
func waitTrace(t *testing.T, tracer *obs.Tracer, id obs.TraceID) *obs.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tr := tracer.Get(id); tr != nil {
			return tr
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("trace %s never finalized", id)
	return nil
}

// TestFleetTraceRoundTrip is the tracing acceptance scenario: a request
// forwarded between two replicas produces ONE distributed trace — same
// trace ID on both, the owner's root span parented to the forwarder's
// cluster.forward span — downloadable from either replica as a merged
// two-process Chrome trace, with every span counted exactly once on the
// replica that recorded it.
func TestFleetTraceRoundTrip(t *testing.T) {
	n := 2
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	tracers := make([]*obs.Tracer, n)
	servers := make([]*Server, n)
	for i := range servers {
		tracers[i] = obs.New(obs.Config{Service: urls[i], RingSize: 8})
		servers[i] = New(Config{Self: urls[i], Peers: urls, Tracer: tracers[i]})
		swaps[i].h.Store(servers[i])
	}
	ring := cluster.NewRing(urls, 0)
	body, _ := modelBodyOwnedBy(t, ring, urls[1])

	resp, respBody := httpPost(t, urls[0], "/v1/partition", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d: %s", resp.StatusCode, respBody)
	}
	if resp.Header.Get(clusterHeader) == "" {
		t.Fatal("request was not forwarded; test setup broken")
	}
	id, ok := obs.ParseTraceID(resp.Header.Get("X-Trace-Id"))
	if !ok {
		t.Fatalf("X-Trace-Id %q is not a trace id", resp.Header.Get("X-Trace-Id"))
	}

	// Both replicas finalized a trace under the SAME id: one distributed
	// trace, two local views.
	fwd := waitTrace(t, tracers[0], id)
	own := waitTrace(t, tracers[1], id)

	// Forwarder view: root is the HTTP edge, cluster.forward hangs off it.
	fwdRoot := findSpan(fwd, "POST /v1/partition")
	if fwdRoot == nil || !fwdRoot.ParentID.IsZero() {
		t.Fatalf("forwarder root span missing or not a root: %+v", fwdRoot)
	}
	hop := findSpan(fwd, "cluster.forward")
	if hop == nil {
		t.Fatal("forwarder trace has no cluster.forward span")
	}
	if hop.ParentID != fwdRoot.SpanID {
		t.Fatalf("cluster.forward parent %s, want root %s", hop.ParentID, fwdRoot.SpanID)
	}
	if got := attrValue(hop, "owner"); got != cluster.NormalizeNode(urls[1]) {
		t.Fatalf("cluster.forward owner attr %v, want %s", got, urls[1])
	}
	if got := attrValue(hop, "reached"); got != true {
		t.Fatalf("cluster.forward reached attr %v, want true", got)
	}

	// Owner view: its root joined the forwarder's trace — remote parent is
	// the cluster.forward span, and the hop is recorded in forwarded_from.
	ownRoot := findSpan(own, "POST /v1/partition")
	if ownRoot == nil {
		t.Fatal("owner trace has no root span")
	}
	if ownRoot.ParentID != hop.SpanID {
		t.Fatalf("owner root parent %s, want forwarder's cluster.forward span %s",
			ownRoot.ParentID, hop.SpanID)
	}
	if got := attrValue(ownRoot, "forwarded_from"); got != cluster.NormalizeNode(urls[0]) {
		t.Fatalf("owner root forwarded_from attr %v, want %s", got, urls[0])
	}

	// The owner did the work: cache probe and move loop are under its view.
	for _, name := range []string{"cache.lookup", "store.get", "partition.moveloop"} {
		if findSpan(own, name) == nil {
			t.Fatalf("owner trace missing %q span; have %d spans", name, len(own.Spans))
		}
		if findSpan(fwd, name) != nil {
			t.Fatalf("forwarder trace has a %q span but only proxied", name)
		}
	}

	// Exactly-once accounting, fleet-wide: every span counted on the replica
	// that recorded it, and the distributed read below must not change that.
	spans0, spans1 := tracers[0].Stats().Spans, tracers[1].Stats().Spans
	if total := spans0 + spans1; total != int64(len(fwd.Spans)+len(own.Spans)) {
		t.Fatalf("spans_total %d+%d, want %d local + %d owner",
			spans0, spans1, len(fwd.Spans), len(own.Spans))
	}

	// Either replica serves the merged Perfetto document: two processes on
	// one timeline, with the hop and the work both present.
	hresp, err := http.Get(urls[0] + "/debug/traces/" + id.String())
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id}: status %d", hresp.StatusCode)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pids[ev.Pid] = true
		names[ev.Name] = true
		if ev.Args["trace_id"] != id.String() {
			t.Fatalf("event %q trace_id %v, want %s", ev.Name, ev.Args["trace_id"], id)
		}
	}
	if len(pids) != 2 {
		t.Fatalf("merged trace has %d processes, want 2 (forwarder + owner)", len(pids))
	}
	for _, name := range []string{"POST /v1/partition", "cluster.forward", "cache.lookup", "partition.moveloop"} {
		if !names[name] {
			t.Fatalf("merged trace missing %q; have %v", name, names)
		}
	}

	// The merge was read-only on the counters.
	if got := tracers[0].Stats().Spans; got != spans0 {
		t.Fatalf("merged read changed replica 0 spans_total: %d -> %d", spans0, got)
	}
	if got := tracers[1].Stats().Spans; got != spans1 {
		t.Fatalf("merged read changed replica 1 spans_total: %d -> %d", spans1, got)
	}
}

// TestTraceLoopGuard: a request that arrives already forwarded (loop-guard
// path) still joins the caller's trace via traceparent and is traced
// through local computation.
func TestTraceLoopGuard(t *testing.T) {
	self := "http://127.0.0.1:1"
	other := "http://127.0.0.1:2"
	tracer := obs.New(obs.Config{Service: "guard"})
	s := newTestServer(t, Config{Self: self, Peers: []string{self, other}, Tracer: tracer})
	body, _ := modelBodyOwnedBy(t, cluster.NewRing([]string{self, other}, 0), other)

	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	rec := postCtx(t, s, "/v1/partition", body, t.Context(), map[string]string{
		forwardHeader: other,
		"traceparent": parent,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("X-Trace-Id %q did not adopt the remote trace id", got)
	}
	id, _ := obs.ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	tr := waitTrace(t, tracer, id)
	root := findSpan(tr, "POST /v1/partition")
	if root == nil {
		t.Fatal("no root span")
	}
	if root.ParentID.String() != "b7ad6b7169203331" {
		t.Fatalf("root parent %s, want remote span b7ad6b7169203331", root.ParentID)
	}
	if got := attrValue(root, "forwarded_from"); got != other {
		t.Fatalf("forwarded_from attr %v, want %s", got, other)
	}
	// Pinned local: computed here, so the move loop is in THIS trace and no
	// cluster.forward hop exists.
	if findSpan(tr, "partition.moveloop") == nil {
		t.Fatal("loop-guarded request's computation was not traced")
	}
	if findSpan(tr, "cluster.forward") != nil {
		t.Fatal("loop-guarded request re-forwarded")
	}
}

// TestTraceSimSpans: a simulated-objective request carries the engine-depth
// spans the acceptance scenario names — sim.ScoreBatch with pruned/scored
// attributes, under sim.argmin, under the move loop.
func TestTraceSimSpans(t *testing.T) {
	tracer := obs.New(obs.Config{Service: "sim"})
	s := newTestServer(t, Config{Tracer: tracer})
	rec := post(t, s, "/v1/partition", `{"benchmark":"ofdm","seed":1,"constraint":60000,"objective":"sim"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	id, ok := obs.ParseTraceID(rec.Header().Get("X-Trace-Id"))
	if !ok {
		t.Fatalf("X-Trace-Id %q", rec.Header().Get("X-Trace-Id"))
	}
	tr := waitTrace(t, tracer, id)

	sb := findSpan(tr, "sim.ScoreBatch")
	if sb == nil {
		t.Fatalf("no sim.ScoreBatch span in %d spans", len(tr.Spans))
	}
	for _, key := range []string{"scored", "pruned", "workers", "regime"} {
		if attrValue(sb, key) == nil {
			t.Fatalf("sim.ScoreBatch missing %q attr: %+v", key, sb.Attrs)
		}
	}
	argmin := findSpan(tr, "sim.argmin")
	if argmin == nil {
		t.Fatal("no sim.argmin span")
	}
	if sb.ParentID != argmin.SpanID {
		t.Fatalf("sim.ScoreBatch parent %s, want sim.argmin %s", sb.ParentID, argmin.SpanID)
	}
	loop := findSpan(tr, "partition.moveloop")
	if loop == nil || argmin.ParentID != loop.SpanID {
		t.Fatal("sim.argmin not parented under partition.moveloop")
	}
	if findSpan(tr, "profile") == nil || findSpan(tr, "cache.lookup") == nil {
		t.Fatal("edge-to-engine spans missing (profile / cache.lookup)")
	}
}

// TestTraceStatsAndMetrics: the ring surfaces in /debug/stats and /metrics
// once a tracer is configured, and /debug/traces lists finished traces.
func TestTraceStatsAndMetrics(t *testing.T) {
	tracer := obs.New(obs.Config{Service: "statsy", RingSize: 4})
	s := newTestServer(t, Config{Tracer: tracer})
	rec := post(t, s, "/v1/partition", firBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	id, _ := obs.ParseTraceID(rec.Header().Get("X-Trace-Id"))
	waitTrace(t, tracer, id)

	var st StatsJSON
	if err := json.Unmarshal(get(t, s, "/debug/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Traces == nil {
		t.Fatal("/debug/stats has no traces section with a tracer configured")
	}
	if st.Traces.RingDepth < 1 || st.Traces.RingCapacity != 4 || st.Traces.Spans < 2 {
		t.Fatalf("trace stats %+v", st.Traces)
	}

	var list TraceListJSON
	if err := json.Unmarshal(get(t, s, "/debug/traces").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Service != "statsy" || len(list.Traces) < 1 {
		t.Fatalf("trace list %+v", list)
	}
	if list.Traces[0].TraceID != id.String() || list.Traces[0].Spans < 2 {
		t.Fatalf("trace list head %+v, want trace %s", list.Traces[0], id)
	}

	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{"hservd_trace_ring_depth", "hservd_trace_spans_total"} {
		if !strings.Contains(metrics, "# TYPE "+want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	// Untracted surfaces never pollute the ring: /debug and /metrics reads
	// above added no traces.
	if got := tracer.Stats().Depth; got != 1 {
		t.Fatalf("ring depth %d after debug reads, want 1", got)
	}
}

// TestTraceDisabled: without a tracer the debug endpoints 404, responses
// carry no X-Trace-Id, and request handling is untouched.
func TestTraceDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s, "/v1/partition", firBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id %q with tracing disabled", got)
	}
	if rec := get(t, s, "/debug/traces"); rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/traces status %d, want 404", rec.Code)
	}
	if rec := get(t, s, "/debug/traces/0af7651916cd43dd8448eb211c80319c"); rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/traces/{id} status %d, want 404", rec.Code)
	}
}

// TestTraceGetBadID: a malformed id is a 400, not a panic or a 404.
func TestTraceGetBadID(t *testing.T) {
	s := newTestServer(t, Config{Tracer: obs.New(obs.Config{})})
	if rec := get(t, s, "/debug/traces/not-hex"); rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}
