package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridpart"
)

// firSrc is a small FIR filter in the mini-C subset: cheap to compile and
// profile, so handler tests stay fast.
const firSrc = `
const int N = 128;
int TAPS[16] = {1, 2, 3, 4, 5, 6, 7, 8, 8, 7, 6, 5, 4, 3, 2, 1};
int INPUT[N];
int OUTPUT[N];
void prep() {
    int i;
    for (i = 0; i < N; i++) { INPUT[i] = (i * 13 + 5) & 127; }
}
int main_fn() {
    int n;
    int k;
    prep();
    for (n = 16; n < N; n++) {
        int acc = 0;
        for (k = 0; k < 16; k++) { acc += TAPS[k] * INPUT[n - k]; }
        OUTPUT[n] = acc >> 6;
    }
    return OUTPUT[N - 1];
}
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return New(cfg)
}

// post serves one POST with the given JSON body directly through the
// handler (no network), returning the recorder.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	return postCtx(t, s, path, body, context.Background(), nil)
}

func postCtx(t *testing.T, s *Server, path, body string, ctx context.Context, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// intList renders "1,2,...,n" for building large-axis request bodies.
func intList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprint(i + 1)
	}
	return strings.Join(parts, ",")
}

const firReq = `{"source": ` + "%q" + `, "entry": "main_fn", "constraint": 9000}`

func firBody() string { return fmt.Sprintf(firReq, firSrc) }

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// Golden body: the liveness probe contract.
	if got := rec.Body.String(); got != "{\"status\":\"ok\"}\n" {
		t.Fatalf("healthz body %q", got)
	}
}

func TestPresets(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := get(t, s, "/v1/presets")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var presets []PresetJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &presets); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range presets {
		names[p.Name] = true
		if p.Summary == "" {
			t.Fatalf("preset %q has no summary", p.Name)
		}
	}
	for _, want := range []string{"default", "paper-small", "paper-large", "dsp-rich", "lut-only"} {
		if !names[want] {
			t.Fatalf("preset %q missing from %v", want, names)
		}
	}
}

// TestPartitionParity is the tentpole acceptance test: a /v1/partition
// response must be byte-identical to the library path for the same inputs.
func TestPartitionParity(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s, "/v1/partition", firBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}

	// The library path: same workload, same knobs, canonical encoding.
	w, err := hybridpart.NewWorkload(firSrc, "main_fn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	opts := hybridpart.DefaultOptions()
	opts.Constraint = 9000
	// The service's default objective for plain requests is the simulated
	// one (see applyDefaultObjective); mirror it on the library side.
	opts.Objective = hybridpart.ObjectiveSimulated
	eng, err := hybridpart.NewEngine(hybridpart.WithOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Partition(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Body.String(); got != string(want) {
		t.Fatalf("service response diverges from library path:\n got: %s\nwant: %s", got, want)
	}

	// Decoded sanity: the run consulted the simulator and reported under
	// the service's default objective.
	var rj ResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if rj.InitialCycles == 0 || rj.Objective != "sim" || rj.SimulatedCycles == 0 {
		t.Fatalf("implausible result: %+v", rj)
	}
}

func TestPartitionCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(t, s, "/v1/partition", firBody())
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := post(t, s, "/v1/partition", firBody())
	if second.Code != http.StatusOK || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request: status %d, X-Cache %q", second.Code, second.Header().Get("X-Cache"))
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cache hit served different bytes than the miss")
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("cache stats: %+v", st)
	}

	// A different knob set is a different content address.
	other := strings.Replace(firBody(), "9000", "8500", 1)
	third := post(t, s, "/v1/partition", other)
	if third.Code != http.StatusOK || third.Header().Get("X-Cache") != "miss" {
		t.Fatalf("changed options still hit: status %d, X-Cache %q", third.Code, third.Header().Get("X-Cache"))
	}
}

func TestPartitionBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed-json", "/v1/partition", "{nope", http.StatusBadRequest},
		{"empty", "/v1/partition", "{}", http.StatusBadRequest},
		{"both-workloads", "/v1/partition", `{"benchmark":"ofdm","source":"int f(){return 0;}"}`, http.StatusBadRequest},
		{"unknown-field", "/v1/partition", `{"benchmark":"ofdm","bogus":1}`, http.StatusBadRequest},
		{"args-with-benchmark", "/v1/partition", `{"benchmark":"ofdm","args":[1]}`, http.StatusBadRequest},
		{"preset-and-options", "/v1/partition", `{"benchmark":"ofdm","preset":"dsp-rich","options":{}}`, http.StatusBadRequest},
		{"negative-constraint", "/v1/partition", `{"benchmark":"ofdm","constraint":-5}`, http.StatusBadRequest},
		{"budget-on-partition", "/v1/partition", `{"benchmark":"ofdm","energy_budget":5}`, http.StatusBadRequest},
		{"no-budget-on-energy", "/v1/partition-energy", `{"benchmark":"ofdm"}`, http.StatusBadRequest},
		{"unknown-benchmark", "/v1/partition", `{"benchmark":"mp3"}`, http.StatusNotFound},
		{"unknown-preset", "/v1/partition", `{"benchmark":"ofdm","preset":"asic"}`, http.StatusNotFound},
		{"sweep-malformed", "/v1/sweep", "[1,2", http.StatusBadRequest},
		{"sweep-no-benchmarks", "/v1/sweep", `{}`, http.StatusBadRequest},
		{"sweep-unknown-benchmark", "/v1/sweep", `{"benchmarks":["mp3"]}`, http.StatusNotFound},
		{"sweep-unknown-preset", "/v1/sweep", `{"benchmarks":["ofdm"],"presets":["asic"]}`, http.StatusNotFound},
		{"sweep-grid-too-large", "/v1/sweep",
			fmt.Sprintf(`{"benchmarks":["ofdm"],"areas":[%s],"cgcs":[%s],"constraints":[%s]}`,
				intList(100), intList(100), intList(100)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, tc.path, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.want, rec.Body)
			}
			var e ErrorJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not ErrorJSON: %s", rec.Body)
			}
		})
	}
	// Source that does not compile is the client's workload problem: 422.
	rec := post(t, s, "/v1/partition", `{"source":"not C at all"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("uncompilable source: status %d, want 422", rec.Code)
	}
}

// TestPartitionCancellation covers the 499 path: a request whose context is
// already dead reaches the engine, which aborts with context.Canceled; the
// failed run must not poison the cache.
func TestPartitionCancellation(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := postCtx(t, s, "/v1/partition", firBody(), ctx, nil)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499 (body %s)", rec.Code, rec.Body)
	}
	if st := s.CacheStats(); st.Size != 0 {
		t.Fatalf("cancelled run was cached: %+v", st)
	}
	// The same request on a live context recomputes and succeeds.
	rec = post(t, s, "/v1/partition", firBody())
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("retry after cancellation: status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
}

func TestPartitionTimeout(t *testing.T) {
	s := newTestServer(t, Config{Timeout: time.Nanosecond})
	rec := post(t, s, "/v1/partition", firBody())
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body)
	}
}

// TestSingleflight is the coalescing acceptance test: 50 concurrent
// identical requests must trigger exactly one engine run, and every client
// sees the same bytes. Run under -race this doubles as the
// concurrent-clients test.
func TestSingleflight(t *testing.T) {
	s := newTestServer(t, Config{})
	const n = 50
	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := post(t, s, "/v1/partition", firBody())
			bodies[i], codes[i] = rec.Body.String(), rec.Code
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("%d engine runs for 50 identical requests, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Fatalf("hits(%d)+coalesced(%d) != %d", st.Hits, st.Coalesced, n-1)
	}
}

func TestPartitionEnergy(t *testing.T) {
	s := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"source": %q, "entry": "main_fn", "energy_budget": 1e12}`, firSrc)
	rec := post(t, s, "/v1/partition-energy", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var rj EnergyResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if rj.InitialEnergy <= 0 || rj.Budget != 1e12 {
		t.Fatalf("implausible energy result: %+v", rj)
	}
	// Identical energy request: served from cache.
	if rec := post(t, s, "/v1/partition-energy", body); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("energy result not cached: X-Cache %q", rec.Header().Get("X-Cache"))
	}
}

func TestSweepJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	rec := post(t, s, "/v1/sweep", `{"benchmarks":["ofdm"],"constraints":[60000,65000],"seed":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var rs hybridpart.SweepResult
	if err := json.Unmarshal(rec.Body.Bytes(), &rs); err != nil {
		t.Fatal(err)
	}
	if len(rs.Outcomes) != 2 || rs.Partial {
		t.Fatalf("sweep result: %d outcomes, partial=%v", len(rs.Outcomes), rs.Partial)
	}
	for _, o := range rs.Outcomes {
		if o.Failed() {
			t.Fatalf("cell %d failed: %s", o.Index, o.Err)
		}
	}
}

// TestSweepWorkersClamp: a client cannot request a pool larger than the
// operator's -workers bound; the effective spec is echoed in the result.
func TestSweepWorkersClamp(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{Workers: 2})
	rec := post(t, s, "/v1/sweep", `{"benchmarks":["ofdm"],"constraints":[60000],"seed":1,"workers":64}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var rs hybridpart.SweepResult
	if err := json.Unmarshal(rec.Body.Bytes(), &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Spec.Workers != 2 {
		t.Fatalf("client worker request not clamped: pool=%d, want 2", rs.Spec.Workers)
	}
}

func TestSweepSSE(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	// A realistic list-form Accept header must still select streaming.
	rec := postCtx(t, s, "/v1/sweep", `{"benchmarks":["ofdm"],"constraints":[60000,65000],"seed":1}`,
		context.Background(), map[string]string{"Accept": "text/event-stream, */*"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	if got := strings.Count(body, "event: cell\n"); got != 2 {
		t.Fatalf("want 2 cell frames, got %d:\n%s", got, body)
	}
	if !strings.Contains(body, "event: result\n") {
		t.Fatalf("missing terminal result frame:\n%s", body)
	}
	// The terminal frame carries the same ResultSet the JSON path returns.
	idx := strings.Index(body, "event: result\ndata: ")
	payload := body[idx+len("event: result\ndata: "):]
	payload = payload[:strings.Index(payload, "\n")]
	var rs hybridpart.SweepResult
	if err := json.Unmarshal([]byte(payload), &rs); err != nil {
		t.Fatal(err)
	}
	if len(rs.Outcomes) != 2 {
		t.Fatalf("terminal frame has %d outcomes", len(rs.Outcomes))
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	post(t, s, "/v1/partition", firBody())
	post(t, s, "/v1/partition", firBody())
	post(t, s, "/v1/partition", "{nope")
	rec := get(t, s, "/debug/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var st StatsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	ep, ok := st.Endpoints["/v1/partition"]
	if !ok {
		t.Fatalf("no /v1/partition row: %+v", st.Endpoints)
	}
	if ep.Requests != 3 || ep.Errors != 1 || ep.CacheHits != 1 || ep.CacheMisses != 1 {
		t.Fatalf("partition endpoint stats: %+v", ep)
	}
	if ep.AvgLatencyMicros < 0 || ep.MaxLatencyMicros < ep.AvgLatencyMicros {
		t.Fatalf("latency accounting broken: %+v", ep)
	}
	if st.Cache.Capacity != 256 {
		t.Fatalf("cache stats: %+v", st.Cache)
	}
}

// TestCacheHitSpeedup demonstrates the acceptance criterion: a repeated
// identical request is served from cache at least 10x faster than the
// compile+profile+partition miss path.
func TestCacheHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	s := newTestServer(t, Config{})
	body := `{"benchmark":"ofdm","seed":7,"constraint":60000}`

	missStart := time.Now()
	if rec := post(t, s, "/v1/partition", body); rec.Code != http.StatusOK {
		t.Fatalf("miss: status %d: %s", rec.Code, rec.Body)
	}
	miss := time.Since(missStart)

	const hits = 20
	hitStart := time.Now()
	for i := 0; i < hits; i++ {
		if rec := post(t, s, "/v1/partition", body); rec.Header().Get("X-Cache") != "hit" {
			t.Fatalf("request %d was not a cache hit", i)
		}
	}
	hit := time.Since(hitStart) / hits

	if hit*10 > miss {
		t.Fatalf("hit path not >=10x faster: miss=%v hit=%v", miss, hit)
	}
	t.Logf("miss=%v hit=%v (%.0fx)", miss, hit, float64(miss)/float64(hit))
}

// TestSimulateParity pins POST /v1/simulate to the library: the response
// bytes are exactly MarshalSimReport of Engine.Simulate's report for the
// same workload and knobs — miss and hit alike.
func TestSimulateParity(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"benchmark":"ofdm","seed":1,"constraint":60000,"frames":4,"ports":2,"prefetch":true}`
	miss := post(t, s, "/v1/simulate", body)
	if miss.Code != http.StatusOK {
		t.Fatalf("miss: status %d: %s", miss.Code, miss.Body)
	}
	if got := miss.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache %q, want miss", got)
	}
	hit := post(t, s, "/v1/simulate", body)
	if hit.Code != http.StatusOK || hit.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d, X-Cache %q", hit.Code, hit.Header().Get("X-Cache"))
	}
	if hit.Body.String() != miss.Body.String() {
		t.Fatal("cache hit bytes differ from the miss")
	}

	app, prof, err := hybridpart.ProfileBenchmarkCached("ofdm", 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := hybridpart.NewEngine(hybridpart.WithConstraint(60000))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.SimulateProfiled(context.Background(), app, prof,
		hybridpart.SimFrames(4), hybridpart.SimPorts(2), hybridpart.SimPrefetch(true))
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalSimReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Body.String() != string(want) {
		t.Fatalf("service bytes != library bytes:\n%s\n%s", miss.Body, want)
	}

	var wire SimReportJSON
	if err := json.Unmarshal(miss.Body.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Frames != 4 || wire.Ports != 2 || !wire.Prefetch {
		t.Fatalf("knobs not echoed: %+v", wire)
	}
	if wire.TotalCycles <= 0 || wire.BaselineCycles <= wire.TotalCycles {
		t.Fatalf("implausible cycles: %+v", wire)
	}
}

// TestSimulateExactDefaultKnobs checks the wire-level validation verdict on
// the model's own operating point (single frame, one port, no prefetch).
func TestSimulateExactDefaultKnobs(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s, "/v1/simulate", `{"benchmark":"ofdm","seed":1,"constraint":60000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var wire SimReportJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if !wire.Validation.Exact {
		t.Fatalf("default-knob simulation not exact: %+v", wire.Validation)
	}
	if wire.Validation.SimFinalCycles != wire.Validation.ModelFinalCycles {
		t.Fatalf("final cycles diverge: %+v", wire.Validation)
	}
}

// TestSimulateKeySeparation: a simulate result must never be served for a
// partition request on the same workload, and knob changes miss the cache.
func TestSimulateKeySeparation(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := post(t, s, "/v1/simulate", `{"benchmark":"ofdm","constraint":60000}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", rec.Code, rec.Body)
	}
	rec := post(t, s, "/v1/partition", `{"benchmark":"ofdm","constraint":60000}`)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("partition after simulate: status %d, X-Cache %q (keys collided?)",
			rec.Code, rec.Header().Get("X-Cache"))
	}
	rec = post(t, s, "/v1/simulate", `{"benchmark":"ofdm","constraint":60000,"frames":2}`)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("knob change served from cache: status %d, X-Cache %q",
			rec.Code, rec.Header().Get("X-Cache"))
	}
	// Zero knobs are documented as equivalent to 1/1: the explicit form
	// must hit the entry the implicit form stored.
	rec = post(t, s, "/v1/simulate", `{"benchmark":"ofdm","constraint":60000,"frames":1,"ports":1}`)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("equivalent knobs missed the cache: status %d, X-Cache %q",
			rec.Code, rec.Header().Get("X-Cache"))
	}
}

func TestSimulateBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed-json", "{nope", http.StatusBadRequest},
		{"empty", "{}", http.StatusBadRequest},
		{"both-workloads", `{"benchmark":"ofdm","source":"int f(){return 0;}"}`, http.StatusBadRequest},
		{"unknown-field", `{"benchmark":"ofdm","bogus":1}`, http.StatusBadRequest},
		{"negative-frames", `{"benchmark":"ofdm","frames":-1}`, http.StatusBadRequest},
		{"frames-over-limit", `{"benchmark":"ofdm","frames":2000000000}`, http.StatusBadRequest},
		{"negative-ports", `{"benchmark":"ofdm","ports":-1}`, http.StatusBadRequest},
		{"budget-on-simulate", `{"benchmark":"ofdm","energy_budget":5}`, http.StatusBadRequest},
		{"unknown-benchmark", `{"benchmark":"mp3"}`, http.StatusNotFound},
		{"unknown-preset", `{"benchmark":"ofdm","preset":"asic"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s, "/v1/simulate", tc.body)
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.want, rec.Body)
			}
			var e ErrorJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not ErrorJSON: %s", rec.Body)
			}
		})
	}
	// Source that does not compile is the client's workload problem: 422.
	if rec := post(t, s, "/v1/simulate", `{"source":"not C at all"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("uncompilable source: status %d, want 422", rec.Code)
	}
}

// TestSimulateCancellation covers the 499 path and cache hygiene for the
// simulate endpoint.
func TestSimulateCancellation(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := fmt.Sprintf(firReq, firSrc)
	rec := postCtx(t, s, "/v1/simulate", body, ctx, nil)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499 (body %s)", rec.Code, rec.Body)
	}
	if st := s.CacheStats(); st.Size != 0 {
		t.Fatalf("cancelled run was cached: %+v", st)
	}
	rec = post(t, s, "/v1/simulate", body)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("retry after cancellation: status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestSimulateTimeout covers the 504 path for the simulate endpoint.
func TestSimulateTimeout(t *testing.T) {
	s := newTestServer(t, Config{Timeout: time.Nanosecond})
	rec := post(t, s, "/v1/simulate", fmt.Sprintf(firReq, firSrc))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body)
	}
}

// TestStatsProfileMemo checks that /debug/stats surfaces the benchmark
// profile memo's population and bound.
func TestStatsProfileMemo(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := post(t, s, "/v1/simulate", `{"benchmark":"ofdm","constraint":60000}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", rec.Code, rec.Body)
	}
	rec := get(t, s, "/debug/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st StatsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.BenchProfiles.Size < 1 {
		t.Fatalf("bench profile memo empty after a benchmark simulate: %+v", st.BenchProfiles)
	}
	if st.BenchProfiles.Bound <= 0 {
		t.Fatalf("bench profile memo bound missing: %+v", st.BenchProfiles)
	}
	row, ok := st.Endpoints["/v1/simulate"]
	if !ok || row.Requests < 1 {
		t.Fatalf("no /v1/simulate metrics row: %+v", st.Endpoints)
	}
}

// BenchmarkPartitionCacheHit measures the steady-state hit path (serving
// stored response bytes).
func BenchmarkPartitionCacheHit(b *testing.B) {
	s := New(Config{})
	body := `{"benchmark":"ofdm","seed":7,"constraint":60000}`
	warm := httptest.NewRequest(http.MethodPost, "/v1/partition", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup failed: %d %s", rec.Code, rec.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/partition", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

// BenchmarkPartitionCacheMiss measures the full compile+profile+partition
// path by making every request a distinct content address.
func BenchmarkPartitionCacheMiss(b *testing.B) {
	s := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"source": %q, "entry": "main_fn", "constraint": %d}`, firSrc, 30000+i)
		req := httptest.NewRequest(http.MethodPost, "/v1/partition", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

// TestSweepSimAxesGolden is the /v1/sweep regression golden for the
// co-simulation axes: a fixed small grid returns byte-identical bodies
// across repeated runs and across worker counts, with every cell carrying
// its simulated makespan and speedup.
func TestSweepSimAxesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	body := func(workers int) string {
		return fmt.Sprintf(`{"benchmarks":["ofdm"],"frames":[1,4],"objectives":["model","sim"],"seed":1,"workers":%d}`, workers)
	}
	var golden []byte
	for i, workers := range []int{1, 4, 1} {
		rec := post(t, s, "/v1/sweep", body(workers))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var rs hybridpart.SweepResult
		if err := json.Unmarshal(rec.Body.Bytes(), &rs); err != nil {
			t.Fatal(err)
		}
		// The echoed spec repeats the requested worker count; the data must
		// not depend on it.
		rs.Spec.Workers = 0
		norm, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			golden = norm
			if len(rs.Outcomes) != 4 {
				t.Fatalf("grid has %d cells, want 4", len(rs.Outcomes))
			}
			for _, o := range rs.Outcomes {
				if !o.Simulated || o.SimCycles == 0 || o.SimSpeedup == 0 {
					t.Fatalf("cell %d lacks simulation results: %+v", o.Index, o)
				}
			}
			// The simulated objective must beat the model objective at 4
			// frames (cells 2 and 3 of the fixed expansion order).
			if rs.Outcomes[3].SimCycles >= rs.Outcomes[2].SimCycles {
				t.Fatalf("sim objective (%d) not below model objective (%d) at 4 frames",
					rs.Outcomes[3].SimCycles, rs.Outcomes[2].SimCycles)
			}
			continue
		}
		if string(norm) != string(golden) {
			t.Fatalf("workers=%d: sweep body diverged:\n%s\nvs\n%s", workers, norm, golden)
		}
	}
}

// TestSweepSimCostCap: the grid cap accounts cells x frames (weighted for
// sim-objective cells), not cells — a small grid with a big frames axis is
// unprocessable (422) and the message names the computed cost.
func TestSweepSimCostCap(t *testing.T) {
	s := newTestServer(t, Config{})
	// 200 cells x 1024 frames = 204800 replays > the 100000 cap.
	rec := post(t, s, "/v1/sweep",
		`{"benchmarks":["ofdm"],"areas":[`+intList(200)+`],"frames":[1024],"seed":1}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	var e ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "204800") || !strings.Contains(e.Error, "limit") {
		t.Fatalf("422 message does not carry the computed cost: %q", e.Error)
	}
	// Sim-objective cells are weighted by the trajectory factor: 4 cells x
	// 1024 frames x 32 = 131072 replays, over the cap even though the same
	// grid under the model objective (4096 replays) is fine.
	rec = post(t, s, "/v1/sweep",
		`{"benchmarks":["ofdm"],"areas":[1500,2000,3000,5000],"frames":[1024],"objectives":["sim"],"seed":1}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("sim-objective weighting: status %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	// A single frames axis value beyond the per-cell limit is malformed.
	rec = post(t, s, "/v1/sweep", `{"benchmarks":["ofdm"],"frames":[200000],"seed":1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("per-cell frames cap: status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	// The plain cell cap stays a 400 and is checked first.
	rec = post(t, s, "/v1/sweep",
		`{"benchmarks":["ofdm"],"areas":[`+intList(400)+`],"cgcs":[`+intList(300)+`],"seed":1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("cell-cap status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	// An unknown objective axis entry is a malformed request (spec
	// validation, shared with the library path).
	rec = post(t, s, "/v1/sweep", `{"benchmarks":["ofdm"],"objectives":["fastest"],"seed":1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad objective status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

// TestSweepSimSSE: a streamed sim-axis sweep carries per-cell "sim" frames
// tagged with their cell index, each run arriving right before its cell.
func TestSweepSimSSE(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	rec := postCtx(t, s, "/v1/sweep", `{"benchmarks":["ofdm"],"frames":[2],"seed":1,"workers":2}`,
		context.Background(), map[string]string{"Accept": "text/event-stream"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if got := strings.Count(body, "event: sim\n"); got != 2 {
		t.Fatalf("want 2 sim frames (2 frames x 1 cell), got %d:\n%s", got, body)
	}
	if !strings.Contains(body, `"cell":0`) {
		t.Fatalf("sim frames not tagged with their cell:\n%s", body)
	}
	if simIdx, cellIdx := strings.Index(body, "event: sim\n"), strings.Index(body, "event: cell\n"); simIdx > cellIdx {
		t.Fatalf("sim frames must precede their cell frame:\n%s", body)
	}
}

// TestSimKnobCacheCollision is the satellite collision test: with the sim
// knobs unified into the fingerprinted Options, requests that differ only
// in one knob must occupy distinct cache entries on every endpoint.
func TestSimKnobCacheCollision(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	// The first body pins the objective explicitly: a plain /v1/partition
	// request flips to the service default ("sim") and would legitimately
	// share the fourth body's entry — TestPartitionDefaultObjective covers
	// that sharing; this test wants five distinct knob sets.
	bodies := []string{
		`{"benchmark":"ofdm","constraint":60000,"frames":4,"objective":"model"}`,
		`{"benchmark":"ofdm","constraint":60000,"frames":4,"prefetch":true,"objective":"model"}`,
		`{"benchmark":"ofdm","constraint":60000,"frames":4,"ports":2,"objective":"model"}`,
		`{"benchmark":"ofdm","constraint":60000,"frames":4,"objective":"sim"}`,
		`{"benchmark":"ofdm","constraint":60000,"frames":4,"rerank":3}`,
	}
	for _, path := range []string{"/v1/simulate", "/v1/partition"} {
		seen := map[string]string{}
		for _, body := range bodies {
			rec := post(t, s, path, body)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", path, body, rec.Code, rec.Body)
			}
			if got := rec.Header().Get("X-Cache"); got != "miss" {
				t.Fatalf("%s %s: X-Cache %q — collided with a differently-knobbed entry", path, body, got)
			}
			// The simulate wire echoes every knob, so distinct knob sets must
			// also produce distinct bodies there. (Partition results may
			// legitimately coincide — e.g. prefetch that hides zero cycles.)
			if path == "/v1/simulate" {
				if prev, dup := seen[rec.Body.String()]; dup {
					t.Fatalf("%s: %s and %s returned identical bodies", path, body, prev)
				}
				seen[rec.Body.String()] = body
			}
			// The repeat must hit its own entry.
			if rec := post(t, s, path, body); rec.Header().Get("X-Cache") != "hit" {
				t.Fatalf("%s %s: repeat missed its own entry", path, body)
			}
		}
	}
}

// TestPartitionObjectiveWire: /v1/partition surfaces the objective and the
// simulated makespan through the wire type, and the simulated objective's
// choice beats the model's on simulated makespan at 8 frames.
func TestPartitionObjectiveWire(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	decode := func(body string) ResultJSON {
		rec := post(t, s, "/v1/partition", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var res ResultJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	// The service default: a request with no objective field runs the
	// simulated objective and carries the simulated_* fields.
	plain := decode(`{"benchmark":"ofdm","constraint":60000}`)
	if plain.Objective != "sim" || plain.SimulatedCycles == 0 {
		t.Fatalf("plain partition: objective %q, simulated_cycles %d", plain.Objective, plain.SimulatedCycles)
	}
	// An explicit "model" opts out of the default and, without sim knobs,
	// never consults the simulator.
	modelPlain := decode(`{"benchmark":"ofdm","constraint":60000,"objective":"model"}`)
	if modelPlain.Objective != "model" || modelPlain.SimulatedCycles != 0 {
		t.Fatalf("explicit model partition: objective %q, simulated_cycles %d", modelPlain.Objective, modelPlain.SimulatedCycles)
	}
	model := decode(`{"benchmark":"ofdm","constraint":60000,"frames":8,"objective":"model"}`)
	if model.Objective != "model" || model.SimulatedCycles == 0 || model.SimulatedSpeedup == 0 {
		t.Fatalf("frames=8 model partition lacks simulated fields: %+v", model)
	}
	sim := decode(`{"benchmark":"ofdm","constraint":60000,"frames":8,"objective":"sim"}`)
	if sim.Objective != "sim" {
		t.Fatalf("objective not echoed: %+v", sim)
	}
	if sim.SimulatedCycles >= model.SimulatedCycles {
		t.Fatalf("simulated objective (%d) not below model objective (%d)", sim.SimulatedCycles, model.SimulatedCycles)
	}
	// Sim knobs on the energy endpoint are a shape error.
	if rec := post(t, s, "/v1/partition-energy",
		`{"benchmark":"ofdm","energy_budget":5,"frames":2}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("energy with sim knobs: status %d, want 400", rec.Code)
	}
}

// TestSimulateOptionsOverrideFrames: a full Options override carrying
// SimFrames must be honored by /v1/simulate — the zero-knob normalization
// runs on the resolved Options, so it must never clobber an explicit
// override with the default of 1.
func TestSimulateOptionsOverrideFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})
	opts := hybridpart.DefaultOptions()
	opts.SimFrames = 8
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/v1/simulate",
		fmt.Sprintf(`{"benchmark":"ofdm","seed":1,"options":%s}`, optsJSON))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var wire SimReportJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Frames != 8 {
		t.Fatalf("Options.SimFrames=8 simulated %d frame(s)", wire.Frames)
	}
	// The resolved-knob frames cap catches overrides too.
	opts.SimFrames = 1_000_000
	optsJSON, _ = json.Marshal(opts)
	rec = post(t, s, "/v1/simulate",
		fmt.Sprintf(`{"benchmark":"ofdm","seed":1,"options":%s}`, optsJSON))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized Options.SimFrames: status %d, want 400", rec.Code)
	}
}

// TestPartitionDefaultObjective pins the service's default-objective flip:
// a /v1/partition request with no objective field runs the simulated
// objective and — because the flip happens before fingerprinting — shares
// one cache entry, byte for byte, with the explicit {"objective":"sim"}
// spelling. Explicit objectives, rerank requests and full options overrides
// are never flipped, and the trajectory-factor cost guard rejects
// sim-scored frame counts the model objective would accept.
func TestPartitionDefaultObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark compilation in -short mode")
	}
	s := newTestServer(t, Config{})

	miss := post(t, s, "/v1/partition", `{"benchmark":"ofdm","seed":1,"constraint":60000}`)
	if miss.Code != http.StatusOK || miss.Header().Get("X-Cache") != "miss" {
		t.Fatalf("plain request: status %d, X-Cache %q: %s", miss.Code, miss.Header().Get("X-Cache"), miss.Body)
	}
	var rj ResultJSON
	if err := json.Unmarshal(miss.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if rj.Objective != "sim" || rj.SimulatedCycles == 0 {
		t.Fatalf("plain request did not run the default objective: %+v", rj)
	}

	// The explicit spelling hits the default's entry with identical bytes.
	hit := post(t, s, "/v1/partition", `{"benchmark":"ofdm","seed":1,"constraint":60000,"objective":"sim"}`)
	if hit.Header().Get("X-Cache") != "hit" {
		t.Fatalf("explicit \"sim\" missed the default's cache entry (X-Cache %q)", hit.Header().Get("X-Cache"))
	}
	if hit.Body.String() != miss.Body.String() {
		t.Fatalf("default and explicit \"sim\" bytes diverge:\n%s\nvs\n%s", miss.Body, hit.Body)
	}

	// Rerank requests keep the model move loop: flipping them would make
	// the request invalid (rerank and the simulated objective are mutually
	// exclusive), so the flip must leave them alone.
	rr := post(t, s, "/v1/partition", `{"benchmark":"ofdm","seed":1,"constraint":60000,"frames":4,"rerank":2}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("rerank without objective: status %d: %s", rr.Code, rr.Body)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	if rj.Objective != "model" {
		t.Fatalf("rerank request was flipped to %q", rj.Objective)
	}

	// Cost accounting: a sim-scored run is charged the trajectory factor
	// per frame, so a frame count the model objective replays happily is
	// over budget once the default flip makes the run sim-scored.
	deny := post(t, s, "/v1/partition", `{"benchmark":"ofdm","seed":1,"constraint":60000,"frames":256}`)
	if deny.Code != http.StatusUnprocessableEntity {
		t.Fatalf("sim-scored frames=256: status %d, want 422: %s", deny.Code, deny.Body)
	}
	allow := post(t, s, "/v1/partition", `{"benchmark":"ofdm","seed":1,"constraint":60000,"frames":256,"objective":"model"}`)
	if allow.Code != http.StatusOK {
		t.Fatalf("model frames=256: status %d: %s", allow.Code, allow.Body)
	}

	// The scoring work feeds the /debug/stats aggregate.
	stats := get(t, s, "/debug/stats")
	var st StatsJSON
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SimScoring.Scored == 0 || st.SimScoring.Replays == 0 {
		t.Fatalf("sim scoring stats empty after sim-scored runs: %+v", st.SimScoring)
	}
}
