package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"hybridpart"
)

// Wire types of the partitioning service. These are the one JSON shape of a
// partitioning result: the service's /v1/partition responses and the hpart
// -json CLI output both encode through them, so machine consumers see a
// single schema regardless of transport.

// ResultJSON is the wire form of hybridpart.Result.
type ResultJSON struct {
	InitialCycles     int64   `json:"initial_cycles"`
	InitialPartitions int     `json:"initial_partitions"`
	FinalCycles       int64   `json:"final_cycles"`
	CyclesInCGC       int64   `json:"cycles_in_cgc"`
	TFPGA             int64   `json:"t_fpga"`
	TCoarse           int64   `json:"t_coarse"`
	TComm             int64   `json:"t_comm"`
	Constraint        int64   `json:"constraint"`
	Met               bool    `json:"met"`
	ReductionPct      float64 `json:"reduction_pct"`
	Moved             []int   `json:"moved,omitempty"`
	Unmappable        []int   `json:"unmappable,omitempty"`
	Skipped           []int   `json:"skipped,omitempty"`
}

// NewResultJSON converts a library Result to its wire form.
func NewResultJSON(r *hybridpart.Result) ResultJSON {
	return ResultJSON{
		InitialCycles:     r.InitialCycles,
		InitialPartitions: r.InitialPartitions,
		FinalCycles:       r.FinalCycles,
		CyclesInCGC:       r.CyclesInCGC,
		TFPGA:             r.TFPGA,
		TCoarse:           r.TCoarse,
		TComm:             r.TComm,
		Constraint:        r.Constraint,
		Met:               r.Met,
		ReductionPct:      r.ReductionPct(),
		Moved:             r.Moved,
		Unmappable:        r.Unmappable,
		Skipped:           r.Skipped,
	}
}

// MarshalResult is the canonical encoding of a partitioning result: compact
// JSON of the wire form plus a trailing newline. The service caches and
// serves exactly these bytes, which is what makes a cache hit byte-identical
// to the library path.
func MarshalResult(r *hybridpart.Result) ([]byte, error) {
	b, err := json.Marshal(NewResultJSON(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// EnergyBreakdownJSON is the wire form of hybridpart.EnergyBreakdown.
type EnergyBreakdownJSON struct {
	Fine     float64 `json:"fine"`
	Coarse   float64 `json:"coarse"`
	Reconfig float64 `json:"reconfig"`
	Comm     float64 `json:"comm"`
}

// EnergyResultJSON is the wire form of hybridpart.EnergyResult.
type EnergyResultJSON struct {
	InitialEnergy float64             `json:"initial_energy"`
	FinalEnergy   float64             `json:"final_energy"`
	Initial       EnergyBreakdownJSON `json:"initial"`
	Final         EnergyBreakdownJSON `json:"final"`
	Budget        float64             `json:"budget"`
	Met           bool                `json:"met"`
	ReductionPct  float64             `json:"reduction_pct"`
	Moved         []int               `json:"moved,omitempty"`
	Unmappable    []int               `json:"unmappable,omitempty"`
}

// NewEnergyResultJSON converts a library EnergyResult to its wire form.
func NewEnergyResultJSON(r *hybridpart.EnergyResult) EnergyResultJSON {
	conv := func(b hybridpart.EnergyBreakdown) EnergyBreakdownJSON {
		return EnergyBreakdownJSON{Fine: b.Fine, Coarse: b.Coarse, Reconfig: b.Reconfig, Comm: b.Comm}
	}
	return EnergyResultJSON{
		InitialEnergy: r.InitialEnergy,
		FinalEnergy:   r.FinalEnergy,
		Initial:       conv(r.Initial),
		Final:         conv(r.Final),
		Budget:        r.Budget,
		Met:           r.Met,
		ReductionPct:  r.ReductionPct(),
		Moved:         r.Moved,
		Unmappable:    r.Unmappable,
	}
}

// MarshalEnergyResult is MarshalResult for the energy-constrained engine.
func MarshalEnergyResult(r *hybridpart.EnergyResult) ([]byte, error) {
	b, err := json.Marshal(NewEnergyResultJSON(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// PartitionRequest is the body of POST /v1/partition and
// /v1/partition-energy. The workload is either a built-in benchmark
// (Benchmark + Seed) or inline mini-C source (Source + Entry, optionally
// Args and Inputs for the profiling run); exactly one of the two must be
// given. The platform comes from Preset or from a full Options override
// (mutually exclusive), with Constraint as a common shortcut layered on
// top. EnergyBudget is required by /v1/partition-energy and rejected by
// /v1/partition.
type PartitionRequest struct {
	// Benchmark selects a built-in application ("ofdm", "jpeg"); Seed its
	// deterministic input vectors.
	Benchmark string `json:"benchmark,omitempty"`
	Seed      uint32 `json:"seed,omitempty"`

	// Source is inline mini-C text; Entry the function to flatten and
	// profile (default "main_fn"). Args are scalar arguments for the
	// profiling run; Inputs preloads named global arrays before it.
	Source string             `json:"source,omitempty"`
	Entry  string             `json:"entry,omitempty"`
	Args   []int32            `json:"args,omitempty"`
	Inputs map[string][]int32 `json:"inputs,omitempty"`

	// Preset names a registered platform variant; Options replaces the
	// whole knob set instead. Constraint, when positive, overrides the
	// timing constraint of whichever base was chosen.
	Preset     string              `json:"preset,omitempty"`
	Options    *hybridpart.Options `json:"options,omitempty"`
	Constraint int64               `json:"constraint,omitempty"`

	// EnergyBudget is the energy bound for /v1/partition-energy.
	EnergyBudget float64 `json:"energy_budget,omitempty"`
}

// validate checks the request shape (transport-independent: resolveOptions
// covers the platform half).
func (r *PartitionRequest) validate(energy bool) *httpError {
	switch {
	case r.Benchmark == "" && r.Source == "":
		return badRequest("need \"benchmark\" or \"source\"")
	case r.Benchmark != "" && r.Source != "":
		return badRequest("\"benchmark\" and \"source\" are mutually exclusive")
	case r.Benchmark != "" && !hybridpart.IsBenchmark(r.Benchmark):
		return notFound(fmt.Sprintf("unknown benchmark %q (have %v)", r.Benchmark, hybridpart.Benchmarks()))
	case r.Benchmark != "" && (len(r.Args) > 0 || len(r.Inputs) > 0):
		return badRequest("\"args\"/\"inputs\" apply only to \"source\" workloads")
	case r.Constraint < 0:
		return badRequest(fmt.Sprintf("\"constraint\" must be positive, got %d", r.Constraint))
	case energy && r.EnergyBudget <= 0:
		return badRequest("\"energy_budget\" must be positive for /v1/partition-energy")
	case !energy && r.EnergyBudget != 0:
		return badRequest("\"energy_budget\" applies only to /v1/partition-energy")
	}
	return nil
}

// resolveOptions materializes the request's knob set: a full Options
// override is used verbatim, otherwise the preset (or the paper default)
// supplies the base; a positive Constraint then overrides either.
func (r *PartitionRequest) resolveOptions() (hybridpart.Options, *httpError) {
	if r.Options != nil && r.Preset != "" {
		return hybridpart.Options{}, badRequest("\"preset\" and \"options\" are mutually exclusive")
	}
	opts := hybridpart.DefaultOptions()
	if r.Options != nil {
		opts = *r.Options
	} else if r.Preset != "" {
		var err error
		if opts, err = hybridpart.OptionsFor(r.Preset); err != nil {
			return hybridpart.Options{}, notFound(err.Error())
		}
	}
	if r.Constraint > 0 {
		opts.Constraint = r.Constraint
	}
	return opts, nil
}

// entryOrDefault returns the entry function for source workloads.
func (r *PartitionRequest) entryOrDefault() string {
	if r.Entry != "" {
		return r.Entry
	}
	return "main_fn"
}

// fingerprint is the content address of the request: a SHA-256 over the
// workload identity (benchmark+seed, or source hash + entry + profiling
// inputs in sorted-name order), the resolved Options fingerprint, the
// request kind and — for energy requests — the budget. Equal requests hash
// equal by construction; the hash never includes the source text itself, so
// a cache hit is decided without compiling anything.
func (r *PartitionRequest) fingerprint(kind string, opts hybridpart.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "kind=%s\n", kind)
	if r.Benchmark != "" {
		fmt.Fprintf(h, "bench=%s\nseed=%d\n", r.Benchmark, r.Seed)
	} else {
		fmt.Fprintf(h, "src=%s\nentry=%s\nargs=%v\n",
			hybridpart.SourceHash(r.Source), r.entryOrDefault(), r.Args)
		names := make([]string, 0, len(r.Inputs))
		for n := range r.Inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "input:%s=%v\n", n, r.Inputs[n])
		}
	}
	fmt.Fprintf(h, "opts=%s\n", opts.Fingerprint())
	if kind == "energy" {
		fmt.Fprintf(h, "budget=%v\n", r.EnergyBudget)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SimulateRequest is the body of POST /v1/simulate: a PartitionRequest
// workload+platform (energy_budget excluded) plus the co-simulation knobs.
// Zero frames/ports select the analytical model's operating point (one
// frame, one port).
type SimulateRequest struct {
	PartitionRequest
	// Frames replays the profiled trace this many times (pipelined).
	Frames int `json:"frames,omitempty"`
	// Ports widens the fabric-to-fabric transfer channel.
	Ports int `json:"ports,omitempty"`
	// Prefetch overlaps configuration loads with data-path execution.
	Prefetch bool `json:"prefetch,omitempty"`
}

// maxSimFrames bounds one request's trace replays. Each frame re-walks the
// whole profiled trace (millions of events for JPEG), so frames is a
// client-controlled work multiplier and must be capped like /v1/sweep's
// grid size.
const maxSimFrames = 1024

// validate checks the simulate request's shape on top of the base
// partition-shape rules.
func (r *SimulateRequest) validate() *httpError {
	if e := r.PartitionRequest.validate(false); e != nil {
		return e
	}
	if r.Frames < 0 {
		return badRequest(fmt.Sprintf("\"frames\" must be non-negative, got %d", r.Frames))
	}
	if r.Frames > maxSimFrames {
		return badRequest(fmt.Sprintf("\"frames\" is %d, limit is %d", r.Frames, maxSimFrames))
	}
	if r.Ports < 0 {
		return badRequest(fmt.Sprintf("\"ports\" must be non-negative, got %d", r.Ports))
	}
	return nil
}

// normalize folds the documented-equivalent zero knobs onto their defaults
// (0 frames/ports = 1, the model's operating point) so equivalent requests
// fingerprint — and therefore cache and coalesce — identically.
func (r *SimulateRequest) normalize() {
	if r.Frames == 0 {
		r.Frames = 1
	}
	if r.Ports == 0 {
		r.Ports = 1
	}
}

// fingerprint extends the base request fingerprint with the simulation
// knobs, under its own kind so simulate results never collide with
// partition results for the same workload.
func (r *SimulateRequest) fingerprint(opts hybridpart.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "base=%s\nframes=%d\nports=%d\nprefetch=%v\n",
		r.PartitionRequest.fingerprint("simulate", opts), r.Frames, r.Ports, r.Prefetch)
	return hex.EncodeToString(h.Sum(nil))
}

// FabricUtilJSON is the wire form of hybridpart.FabricUtil.
type FabricUtilJSON struct {
	BusyCycles     int64   `json:"busy_cycles"`
	ReconfigCycles int64   `json:"reconfig_cycles"`
	IdleCycles     int64   `json:"idle_cycles"`
	Utilization    float64 `json:"utilization"`
}

// SimKernelJSON is the wire form of hybridpart.SimKernel.
type SimKernelJSON struct {
	Block       int    `json:"block"`
	Name        string `json:"name"`
	Fabric      string `json:"fabric"`
	Invocations uint64 `json:"invocations"`
	BusyCycles  int64  `json:"busy_cycles"`
	FirstStart  int64  `json:"first_start"`
	LastEnd     int64  `json:"last_end"`
}

// SimValidationJSON is the wire form of hybridpart.SimValidation.
type SimValidationJSON struct {
	ModelInitialCycles int64    `json:"model_initial_cycles"`
	ModelFinalCycles   int64    `json:"model_final_cycles"`
	SimInitialCycles   int64    `json:"sim_initial_cycles"`
	SimFinalCycles     int64    `json:"sim_final_cycles"`
	ModelSpeedup       float64  `json:"model_speedup"`
	SimSpeedup         float64  `json:"sim_speedup"`
	SpeedupErrorPct    float64  `json:"speedup_error_pct"`
	Exact              bool     `json:"exact"`
	Notes              []string `json:"notes,omitempty"`
}

// SimReportJSON is the wire form of hybridpart.SimReport — the body of
// POST /v1/simulate and of hsim -json.
type SimReportJSON struct {
	Frames               int               `json:"frames"`
	Ports                int               `json:"ports"`
	Prefetch             bool              `json:"prefetch"`
	Runs                 int               `json:"runs"`
	TotalCycles          int64             `json:"total_cycles"`
	BaselineCycles       int64             `json:"baseline_cycles"`
	Speedup              float64           `json:"speedup"`
	Fine                 FabricUtilJSON    `json:"fine"`
	Coarse               FabricUtilJSON    `json:"coarse"`
	Mem                  FabricUtilJSON    `json:"mem"`
	Reconfigs            int64             `json:"reconfigs"`
	ModelCrossings       int64             `json:"model_crossings"`
	HiddenReconfigCycles int64             `json:"hidden_reconfig_cycles"`
	Kernels              []SimKernelJSON   `json:"kernels,omitempty"`
	Validation           SimValidationJSON `json:"validation"`
}

// NewSimReportJSON converts a library SimReport to its wire form.
func NewSimReportJSON(r *hybridpart.SimReport) SimReportJSON {
	conv := func(u hybridpart.FabricUtil) FabricUtilJSON {
		return FabricUtilJSON{
			BusyCycles:     u.BusyCycles,
			ReconfigCycles: u.ReconfigCycles,
			IdleCycles:     u.IdleCycles,
			Utilization:    u.Utilization,
		}
	}
	out := SimReportJSON{
		Frames:               r.Frames,
		Ports:                r.Ports,
		Prefetch:             r.Prefetch,
		Runs:                 r.Runs,
		TotalCycles:          r.TotalCycles,
		BaselineCycles:       r.BaselineCycles,
		Speedup:              r.Speedup(),
		Fine:                 conv(r.Fine),
		Coarse:               conv(r.Coarse),
		Mem:                  conv(r.Mem),
		Reconfigs:            r.Reconfigs,
		ModelCrossings:       r.ModelCrossings,
		HiddenReconfigCycles: r.HiddenReconfigCycles,
		Validation: SimValidationJSON{
			ModelInitialCycles: r.Validation.ModelInitialCycles,
			ModelFinalCycles:   r.Validation.ModelFinalCycles,
			SimInitialCycles:   r.Validation.SimInitialCycles,
			SimFinalCycles:     r.Validation.SimFinalCycles,
			ModelSpeedup:       r.Validation.ModelSpeedup,
			SimSpeedup:         r.Validation.SimSpeedup,
			SpeedupErrorPct:    r.Validation.SpeedupErrorPct,
			Exact:              r.Validation.Exact,
			Notes:              r.Validation.Notes,
		},
	}
	for _, k := range r.Kernels {
		out.Kernels = append(out.Kernels, SimKernelJSON{
			Block:       k.Block,
			Name:        k.Name,
			Fabric:      k.Fabric,
			Invocations: k.Invocations,
			BusyCycles:  k.BusyCycles,
			FirstStart:  k.FirstStart,
			LastEnd:     k.LastEnd,
		})
	}
	return out
}

// MarshalSimReport is MarshalResult for the co-simulator: the canonical
// cached-and-served encoding of a simulation report.
func MarshalSimReport(r *hybridpart.SimReport) ([]byte, error) {
	b, err := json.Marshal(NewSimReportJSON(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// PresetJSON is one row of GET /v1/presets.
type PresetJSON struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
}

// ErrorJSON is the body of every non-2xx JSON response.
type ErrorJSON struct {
	Error string `json:"error"`
}
