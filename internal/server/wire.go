package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"hybridpart"
)

// Wire types of the partitioning service. These are the one JSON shape of a
// partitioning result: the service's /v1/partition responses and the hpart
// -json CLI output both encode through them, so machine consumers see a
// single schema regardless of transport.

// ResultJSON is the wire form of hybridpart.Result. The simulated_* fields
// are present whenever the run consulted the co-simulator (a sim knob, the
// simulated objective or re-ranking); met always refers to the analytical
// t_total against the constraint.
type ResultJSON struct {
	InitialCycles     int64   `json:"initial_cycles"`
	InitialPartitions int     `json:"initial_partitions"`
	FinalCycles       int64   `json:"final_cycles"`
	CyclesInCGC       int64   `json:"cycles_in_cgc"`
	TFPGA             int64   `json:"t_fpga"`
	TCoarse           int64   `json:"t_coarse"`
	TComm             int64   `json:"t_comm"`
	Constraint        int64   `json:"constraint"`
	Met               bool    `json:"met"`
	ReductionPct      float64 `json:"reduction_pct"`
	Objective         string  `json:"objective"`
	Moved             []int   `json:"moved,omitempty"`
	Unmappable        []int   `json:"unmappable,omitempty"`
	Skipped           []int   `json:"skipped,omitempty"`

	SimulatedCycles         int64   `json:"simulated_cycles,omitempty"`
	SimulatedBaselineCycles int64   `json:"simulated_baseline_cycles,omitempty"`
	SimulatedSpeedup        float64 `json:"simulated_speedup,omitempty"`
}

// NewResultJSON converts a library Result to its wire form.
func NewResultJSON(r *hybridpart.Result) ResultJSON {
	return ResultJSON{
		InitialCycles:     r.InitialCycles,
		InitialPartitions: r.InitialPartitions,
		FinalCycles:       r.FinalCycles,
		CyclesInCGC:       r.CyclesInCGC,
		TFPGA:             r.TFPGA,
		TCoarse:           r.TCoarse,
		TComm:             r.TComm,
		Constraint:        r.Constraint,
		Met:               r.Met,
		ReductionPct:      r.ReductionPct(),
		Objective:         r.Objective.String(),
		Moved:             r.Moved,
		Unmappable:        r.Unmappable,
		Skipped:           r.Skipped,

		SimulatedCycles:         r.SimulatedCycles,
		SimulatedBaselineCycles: r.SimulatedBaselineCycles,
		SimulatedSpeedup:        r.SimulatedSpeedup,
	}
}

// MarshalResult is the canonical encoding of a partitioning result: compact
// JSON of the wire form plus a trailing newline. The service caches and
// serves exactly these bytes, which is what makes a cache hit byte-identical
// to the library path.
func MarshalResult(r *hybridpart.Result) ([]byte, error) {
	b, err := json.Marshal(NewResultJSON(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// EnergyBreakdownJSON is the wire form of hybridpart.EnergyBreakdown.
type EnergyBreakdownJSON struct {
	Fine     float64 `json:"fine"`
	Coarse   float64 `json:"coarse"`
	Reconfig float64 `json:"reconfig"`
	Comm     float64 `json:"comm"`
}

// EnergyResultJSON is the wire form of hybridpart.EnergyResult.
type EnergyResultJSON struct {
	InitialEnergy float64             `json:"initial_energy"`
	FinalEnergy   float64             `json:"final_energy"`
	Initial       EnergyBreakdownJSON `json:"initial"`
	Final         EnergyBreakdownJSON `json:"final"`
	Budget        float64             `json:"budget"`
	Met           bool                `json:"met"`
	ReductionPct  float64             `json:"reduction_pct"`
	Moved         []int               `json:"moved,omitempty"`
	Unmappable    []int               `json:"unmappable,omitempty"`
}

// NewEnergyResultJSON converts a library EnergyResult to its wire form.
func NewEnergyResultJSON(r *hybridpart.EnergyResult) EnergyResultJSON {
	conv := func(b hybridpart.EnergyBreakdown) EnergyBreakdownJSON {
		return EnergyBreakdownJSON{Fine: b.Fine, Coarse: b.Coarse, Reconfig: b.Reconfig, Comm: b.Comm}
	}
	return EnergyResultJSON{
		InitialEnergy: r.InitialEnergy,
		FinalEnergy:   r.FinalEnergy,
		Initial:       conv(r.Initial),
		Final:         conv(r.Final),
		Budget:        r.Budget,
		Met:           r.Met,
		ReductionPct:  r.ReductionPct(),
		Moved:         r.Moved,
		Unmappable:    r.Unmappable,
	}
}

// MarshalEnergyResult is MarshalResult for the energy-constrained engine.
func MarshalEnergyResult(r *hybridpart.EnergyResult) ([]byte, error) {
	b, err := json.Marshal(NewEnergyResultJSON(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// PartitionRequest is the body of POST /v1/partition and
// /v1/partition-energy. The workload is either a built-in benchmark
// (Benchmark + Seed) or inline mini-C source (Source + Entry, optionally
// Args and Inputs for the profiling run); exactly one of the two must be
// given. The platform comes from Preset or from a full Options override
// (mutually exclusive), with Constraint as a common shortcut layered on
// top. EnergyBudget is required by /v1/partition-energy and rejected by
// /v1/partition.
type PartitionRequest struct {
	// Benchmark selects a built-in application ("ofdm", "jpeg"); Seed its
	// deterministic input vectors.
	Benchmark string `json:"benchmark,omitempty"`
	Seed      uint32 `json:"seed,omitempty"`

	// Source is inline mini-C text; Entry the function to flatten and
	// profile (default "main_fn"). Args are scalar arguments for the
	// profiling run; Inputs preloads named global arrays before it.
	Source string             `json:"source,omitempty"`
	Entry  string             `json:"entry,omitempty"`
	Args   []int32            `json:"args,omitempty"`
	Inputs map[string][]int32 `json:"inputs,omitempty"`

	// Preset names a registered platform variant; Options replaces the
	// whole knob set instead. Constraint, when positive, overrides the
	// timing constraint of whichever base was chosen.
	Preset     string              `json:"preset,omitempty"`
	Options    *hybridpart.Options `json:"options,omitempty"`
	Constraint int64               `json:"constraint,omitempty"`

	// Objective selects the move-loop objective ("model" or "sim") and
	// Rerank re-scores the top-k trajectory prefixes by simulation (-1 =
	// all). Frames, Ports and Prefetch set the co-simulation operating
	// point; on /v1/partition any of them makes the response carry the
	// simulated_* fields. All five fold into the resolved Options — the one
	// fingerprinted location — so requests differing in any sim knob can
	// never share a cache entry.
	Objective string `json:"objective,omitempty"`
	Rerank    int    `json:"rerank,omitempty"`
	Frames    int    `json:"frames,omitempty"`
	Ports     int    `json:"ports,omitempty"`
	Prefetch  bool   `json:"prefetch,omitempty"`

	// Regions splits the fine-grain fabric into independently reconfigurable
	// regions (partial dynamic reconfiguration; 0 = the base's value, 1 =
	// monolithic). Like the sim knobs it folds into the resolved Options.
	Regions int `json:"regions,omitempty"`

	// EnergyBudget is the energy bound for /v1/partition-energy.
	EnergyBudget float64 `json:"energy_budget,omitempty"`
}

// validate checks the request shape (transport-independent: resolveOptions
// covers the platform half).
func (r *PartitionRequest) validate(energy bool) *httpError {
	switch {
	case r.Benchmark == "" && r.Source == "":
		return badRequest("need \"benchmark\" or \"source\"")
	case r.Benchmark != "" && r.Source != "":
		return badRequest("\"benchmark\" and \"source\" are mutually exclusive")
	case r.Benchmark != "" && !hybridpart.IsBenchmark(r.Benchmark):
		return notFound(fmt.Sprintf("unknown benchmark %q (have %v)", r.Benchmark, hybridpart.Benchmarks()))
	case r.Benchmark != "" && (len(r.Args) > 0 || len(r.Inputs) > 0):
		return badRequest("\"args\"/\"inputs\" apply only to \"source\" workloads")
	case r.Constraint < 0:
		return badRequest(fmt.Sprintf("\"constraint\" must be positive, got %d", r.Constraint))
	case energy && r.EnergyBudget <= 0:
		return badRequest("\"energy_budget\" must be positive for /v1/partition-energy")
	case !energy && r.EnergyBudget != 0:
		return badRequest("\"energy_budget\" applies only to /v1/partition-energy")
	case energy && (r.Objective != "" || r.Rerank != 0 || r.Frames != 0 || r.Ports != 0 || r.Prefetch):
		return badRequest("the co-simulation knobs apply only to timing-constrained partitioning")
	case energy && r.Regions != 0:
		return badRequest("\"regions\" applies only to timing-constrained partitioning")
	case r.Regions < 0:
		return badRequest(fmt.Sprintf("\"regions\" must be non-negative, got %d", r.Regions))
	case r.Rerank < -1:
		return badRequest(fmt.Sprintf("\"rerank\" must be -1 (all), 0 (off) or positive, got %d", r.Rerank))
	case r.Frames < 0:
		return badRequest(fmt.Sprintf("\"frames\" must be non-negative, got %d", r.Frames))
	case r.Frames > maxSimFrames:
		return badRequest(fmt.Sprintf("\"frames\" is %d, limit is %d", r.Frames, maxSimFrames))
	case r.Ports < 0:
		return badRequest(fmt.Sprintf("\"ports\" must be non-negative, got %d", r.Ports))
	}
	if _, err := hybridpart.ParseObjective(r.Objective); err != nil {
		return badRequest(err.Error())
	}
	return nil
}

// resolveOptions materializes the request's knob set: a full Options
// override is used verbatim, otherwise the preset (or the paper default)
// supplies the base; a positive Constraint and the co-simulation shortcuts
// then override either. The sim knobs land in Options — the location
// Fingerprint covers — which is what keeps every knob combination a
// distinct cache key.
func (r *PartitionRequest) resolveOptions() (hybridpart.Options, *httpError) {
	if r.Options != nil && r.Preset != "" {
		return hybridpart.Options{}, badRequest("\"preset\" and \"options\" are mutually exclusive")
	}
	opts := hybridpart.DefaultOptions()
	if r.Options != nil {
		opts = *r.Options
	} else if r.Preset != "" {
		var err error
		if opts, err = hybridpart.OptionsFor(r.Preset); err != nil {
			return hybridpart.Options{}, notFound(err.Error())
		}
	}
	if r.Constraint > 0 {
		opts.Constraint = r.Constraint
	}
	if r.Objective != "" {
		obj, err := hybridpart.ParseObjective(r.Objective)
		if err != nil {
			return hybridpart.Options{}, badRequest(err.Error())
		}
		opts.Objective = obj
	}
	if r.Rerank != 0 {
		opts.RerankK = r.Rerank
	}
	if r.Frames > 0 {
		opts.SimFrames = r.Frames
	}
	if r.Ports > 0 {
		opts.SimPorts = r.Ports
	}
	if r.Prefetch {
		opts.SimPrefetch = true
	}
	if r.Regions > 0 {
		opts.Regions = r.Regions
	}
	// The frames cap must hold for the resolved knobs, not just the
	// top-level shortcut — a full Options override is the other way to set
	// a client-controlled work multiplier.
	if opts.SimFrames > maxSimFrames {
		return hybridpart.Options{}, badRequest(fmt.Sprintf("\"frames\" is %d, limit is %d", opts.SimFrames, maxSimFrames))
	}
	return opts, nil
}

// applyDefaultObjective flips a plain /v1/partition request onto the
// service's default move-loop objective, ObjectiveSimulated: the feedback-
// directed selection beats the closed-form model on every benchmark in the
// suite, and with pooled, branch-and-bound scoring it is cheap enough to be
// what a request gets when it does not ask. The flip applies only when the
// request leaves the whole objective dimension untouched — no "objective"
// field, no full "options" override, no "rerank" (re-ranking is mutually
// exclusive with the simulated objective) — so every explicit choice,
// including "objective": "model", is honored verbatim. It runs before
// fingerprinting, which is what makes a plain request and an explicit
// {"objective": "sim"} share one cache entry, byte for byte.
func (r *PartitionRequest) applyDefaultObjective() {
	if r.Objective == "" && r.Options == nil && r.Rerank == 0 {
		r.Objective = "sim"
	}
}

// maxScoringCost bounds one partition/simulate request's candidate-scoring
// cost in whole-trace replays, the same accounting /v1/sweep applies per
// cell: a run costs its frame count, times the trajectory factor when the
// move loop scores candidates by simulation (simulated objective or
// re-ranking) — each of those replays the trace once per trajectory prefix.
const maxScoringCost = 4 * maxSimFrames

// checkScoringCost applies the trajectory-factor cost accounting to a
// resolved knob set. It runs after resolveOptions so a full Options
// override is charged like the equivalent shortcuts.
func checkScoringCost(opts hybridpart.Options) *httpError {
	frames := opts.SimFrames
	if frames < 1 {
		frames = 1
	}
	cost := frames
	if opts.Objective == hybridpart.ObjectiveSimulated || opts.RerankK != 0 {
		cost *= hybridpart.SimObjectiveReplayFactor
	}
	if cost > maxScoringCost {
		return &httpError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(
			"request costs %d trace replays (frames, sim-scored runs weighted ×%d), limit is %d — lower \"frames\" or use \"objective\": \"model\"",
			cost, hybridpart.SimObjectiveReplayFactor, maxScoringCost)}
	}
	return nil
}

// entryOrDefault returns the entry function for source workloads.
func (r *PartitionRequest) entryOrDefault() string {
	if r.Entry != "" {
		return r.Entry
	}
	return "main_fn"
}

// fingerprint is the content address of the request: a SHA-256 over the
// workload identity (benchmark+seed, or source hash + entry + profiling
// inputs in sorted-name order), the resolved Options fingerprint, the
// request kind and — for energy requests — the budget. Equal requests hash
// equal by construction; the hash never includes the source text itself, so
// a cache hit is decided without compiling anything.
func (r *PartitionRequest) fingerprint(kind string, opts hybridpart.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "kind=%s\n", kind)
	if r.Benchmark != "" {
		fmt.Fprintf(h, "bench=%s\nseed=%d\n", r.Benchmark, r.Seed)
	} else {
		fmt.Fprintf(h, "src=%s\nentry=%s\nargs=%v\n",
			hybridpart.SourceHash(r.Source), r.entryOrDefault(), r.Args)
		names := make([]string, 0, len(r.Inputs))
		for n := range r.Inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "input:%s=%v\n", n, r.Inputs[n])
		}
	}
	fmt.Fprintf(h, "opts=%s\n", opts.Fingerprint())
	if kind == "energy" {
		fmt.Fprintf(h, "budget=%v\n", r.EnergyBudget)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SimulateRequest is the body of POST /v1/simulate: a PartitionRequest
// workload+platform (energy_budget excluded), whose frames/ports/prefetch/
// objective/rerank knobs select the simulated operating point. Zero
// frames/ports select the analytical model's operating point (one frame,
// one port).
type SimulateRequest struct {
	PartitionRequest
}

// maxSimFrames bounds one request's trace replays. Each frame re-walks the
// whole profiled trace (millions of events for JPEG), so frames is a
// client-controlled work multiplier and must be capped like /v1/sweep's
// grid size.
const maxSimFrames = 1024

// validate checks the simulate request's shape (the base partition-shape
// rules already cover the sim knobs).
func (r *SimulateRequest) validate() *httpError {
	return r.PartitionRequest.validate(false)
}

// normalizeSimOptions folds the documented-equivalent zero sim knobs of a
// resolved knob set onto their defaults (0 frames/ports = 1, the model's
// operating point) so equivalent requests fingerprint, cache and coalesce
// identically. It runs on the resolved Options — after a top-level
// "frames"/"ports" shortcut or a full Options override has been applied —
// so an explicit override like {"options":{"SimFrames":8}} is never
// clobbered by the default. /v1/partition must not share this: there a zero
// frame count means "no simulation at all", which is a different response
// shape than frames=1.
func normalizeSimOptions(opts *hybridpart.Options) {
	if opts.SimFrames == 0 {
		opts.SimFrames = 1
	}
	if opts.SimPorts == 0 {
		opts.SimPorts = 1
	}
}

// fingerprint is the simulate request's cache key: the base fingerprint
// under its own kind, so simulate results never collide with partition
// results for the same workload. The sim knobs need no separate hashing —
// resolveOptions folded them into opts, whose Fingerprint the base covers.
func (r *SimulateRequest) fingerprint(opts hybridpart.Options) string {
	return r.PartitionRequest.fingerprint("simulate", opts)
}

// FabricUtilJSON is the wire form of hybridpart.FabricUtil.
type FabricUtilJSON struct {
	BusyCycles     int64   `json:"busy_cycles"`
	ReconfigCycles int64   `json:"reconfig_cycles"`
	IdleCycles     int64   `json:"idle_cycles"`
	Utilization    float64 `json:"utilization"`
}

// SimKernelJSON is the wire form of hybridpart.SimKernel.
type SimKernelJSON struct {
	Block       int    `json:"block"`
	Name        string `json:"name"`
	Fabric      string `json:"fabric"`
	Invocations uint64 `json:"invocations"`
	BusyCycles  int64  `json:"busy_cycles"`
	FirstStart  int64  `json:"first_start"`
	LastEnd     int64  `json:"last_end"`
}

// SimValidationJSON is the wire form of hybridpart.SimValidation.
type SimValidationJSON struct {
	ModelInitialCycles int64    `json:"model_initial_cycles"`
	ModelFinalCycles   int64    `json:"model_final_cycles"`
	SimInitialCycles   int64    `json:"sim_initial_cycles"`
	SimFinalCycles     int64    `json:"sim_final_cycles"`
	ModelSpeedup       float64  `json:"model_speedup"`
	SimSpeedup         float64  `json:"sim_speedup"`
	SpeedupErrorPct    float64  `json:"speedup_error_pct"`
	Exact              bool     `json:"exact"`
	Notes              []string `json:"notes,omitempty"`
}

// SimReportJSON is the wire form of hybridpart.SimReport — the body of
// POST /v1/simulate and of hsim -json.
type SimReportJSON struct {
	Frames               int               `json:"frames"`
	Ports                int               `json:"ports"`
	Prefetch             bool              `json:"prefetch"`
	Regions              int               `json:"regions,omitempty"`
	Objective            string            `json:"objective"`
	Runs                 int               `json:"runs"`
	TotalCycles          int64             `json:"total_cycles"`
	BaselineCycles       int64             `json:"baseline_cycles"`
	Speedup              float64           `json:"speedup"`
	Fine                 FabricUtilJSON    `json:"fine"`
	Coarse               FabricUtilJSON    `json:"coarse"`
	Mem                  FabricUtilJSON    `json:"mem"`
	Reconfigs            int64             `json:"reconfigs"`
	ModelCrossings       int64             `json:"model_crossings"`
	HiddenReconfigCycles int64             `json:"hidden_reconfig_cycles"`
	Kernels              []SimKernelJSON   `json:"kernels,omitempty"`
	Validation           SimValidationJSON `json:"validation"`
}

// NewSimReportJSON converts a library SimReport to its wire form.
func NewSimReportJSON(r *hybridpart.SimReport) SimReportJSON {
	conv := func(u hybridpart.FabricUtil) FabricUtilJSON {
		return FabricUtilJSON{
			BusyCycles:     u.BusyCycles,
			ReconfigCycles: u.ReconfigCycles,
			IdleCycles:     u.IdleCycles,
			Utilization:    u.Utilization,
		}
	}
	out := SimReportJSON{
		Frames:               r.Frames,
		Ports:                r.Ports,
		Prefetch:             r.Prefetch,
		Objective:            r.Objective.String(),
		Runs:                 r.Runs,
		TotalCycles:          r.TotalCycles,
		BaselineCycles:       r.BaselineCycles,
		Speedup:              r.Speedup(),
		Fine:                 conv(r.Fine),
		Coarse:               conv(r.Coarse),
		Mem:                  conv(r.Mem),
		Reconfigs:            r.Reconfigs,
		ModelCrossings:       r.ModelCrossings,
		HiddenReconfigCycles: r.HiddenReconfigCycles,
		Validation: SimValidationJSON{
			ModelInitialCycles: r.Validation.ModelInitialCycles,
			ModelFinalCycles:   r.Validation.ModelFinalCycles,
			SimInitialCycles:   r.Validation.SimInitialCycles,
			SimFinalCycles:     r.Validation.SimFinalCycles,
			ModelSpeedup:       r.Validation.ModelSpeedup,
			SimSpeedup:         r.Validation.SimSpeedup,
			SpeedupErrorPct:    r.Validation.SpeedupErrorPct,
			Exact:              r.Validation.Exact,
			Notes:              r.Validation.Notes,
		},
	}
	if r.Regions > 1 {
		// The monolithic context stays off the wire so R=1 reports remain
		// byte-identical to the single-context schema.
		out.Regions = r.Regions
	}
	for _, k := range r.Kernels {
		out.Kernels = append(out.Kernels, SimKernelJSON{
			Block:       k.Block,
			Name:        k.Name,
			Fabric:      k.Fabric,
			Invocations: k.Invocations,
			BusyCycles:  k.BusyCycles,
			FirstStart:  k.FirstStart,
			LastEnd:     k.LastEnd,
		})
	}
	return out
}

// MarshalSimReport is MarshalResult for the co-simulator: the canonical
// cached-and-served encoding of a simulation report.
func MarshalSimReport(r *hybridpart.SimReport) ([]byte, error) {
	b, err := json.Marshal(NewSimReportJSON(r))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// PresetJSON is one row of GET /v1/presets.
type PresetJSON struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
}

// ErrorJSON is the body of every non-2xx JSON response.
type ErrorJSON struct {
	Error string `json:"error"`
}
