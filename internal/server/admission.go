package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridpart"
	"hybridpart/internal/obs"
)

// Cost-based admission control. A simulated-objective /v1/partition run
// costs orders of magnitude more than a closed-form one — every candidate
// scoring pass replays the profiled trace — so a replica can be configured
// with a budget of "simulated-cost units" per second (Config.MaxSimCost,
// hservd -max-sim-cost): sim-scored work draws from a token bucket and a
// burst over the budget degrades to 429 + Retry-After instead of piling
// up runs until they time out. Closed-form (model-objective, no-sim-knob)
// requests cost zero and are always admitted, and only cache misses pay —
// a hit or a coalesced join costs the replica nothing.

// simCost prices a request in the sweep grid's cost units (whole-trace
// replays): a run costs its frame count, multiplied by the trajectory
// factor when the move loop scores candidates by simulation — the same
// accounting checkScoringCost and SweepSpec.SimulationCost apply.
// Closed-form runs (model objective, no frames, not a simulate call)
// cost 0.
func simCost(kind string, opts hybridpart.Options) int {
	frames := opts.SimFrames
	if frames < 1 {
		frames = 1
	}
	if opts.Objective == hybridpart.ObjectiveSimulated || opts.RerankK != 0 {
		return frames * hybridpart.SimObjectiveReplayFactor
	}
	if kind == "simulate" || opts.SimFrames > 0 {
		return frames
	}
	return 0
}

// tokenBucket is the admission budget: capacity == refill rate == the
// configured units/second, so the budget doubles as the burst bound. A
// request costing more than the whole capacity can never be admitted and
// is always shed — that is the operator saying "never run anything this
// expensive here".
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // units replenished per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
	shed   atomic.Int64
}

func newTokenBucket(unitsPerSec float64) *tokenBucket {
	b := &tokenBucket{rate: unitsPerSec, burst: unitsPerSec, now: time.Now}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// take admits a request costing cost units, or rejects it with the wait
// after which a retry can succeed (at least a second, so the value is
// directly usable as a Retry-After header).
func (b *tokenBucket) take(cost float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if cost <= b.tokens {
		b.tokens -= cost
		return true, 0
	}
	deficit := cost - b.tokens
	if cost > b.burst {
		// Unadmittable at any fill level; report the time a full refill
		// would take, the closest meaningful backoff hint.
		deficit = cost
	}
	wait := time.Duration(deficit / b.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	b.shed.Add(1)
	return false, wait
}

// level reports the current token count (refilled to now), for /metrics.
func (b *tokenBucket) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	tokens := b.tokens + b.now().Sub(b.last).Seconds()*b.rate
	if tokens > b.burst {
		tokens = b.burst
	}
	return tokens
}

// admissionError is the typed rejection a shed compute returns through the
// cache layer; runError maps it to 429 with a Retry-After header.
type admissionError struct {
	cost       int
	retryAfter time.Duration
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("admission: request costs %d simulated-cost units, over this replica's budget — retry in %s, lower \"frames\", or use \"objective\": \"model\"",
		e.cost, e.retryAfter.Round(time.Second))
}

// admitCost charges the bucket for one engine run. Free (cost 0) work and
// unbudgeted replicas are always admitted. ctx is for tracing only: the
// decision itself never blocks.
func (s *Server) admitCost(ctx context.Context, cost int) error {
	if s.admit == nil || cost <= 0 {
		return nil
	}
	_, span := obs.Start(ctx, "admission", obs.Int("cost", cost))
	ok, retry := s.admit.take(float64(cost))
	span.Set(obs.Bool("admitted", ok))
	if !ok {
		span.Set(obs.Int64("retry_after_ms", retry.Milliseconds()))
		span.End()
		return &admissionError{cost: cost, retryAfter: retry}
	}
	span.End()
	return nil
}
