package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"hybridpart/internal/cluster"
	"hybridpart/internal/obs"
)

// Flight-recorder tests: span-derived stage histograms (worker-count
// invariance, exemplar resolution), tail-sampled retention under HTTP
// load, trace-list filters, the telemetry endpoint and the fleet health
// document.

// getAccept is get with an Accept header, for OpenMetrics scrapes.
func getAccept(t *testing.T, s *Server, path, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("Accept", accept)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// stageCounts reduces a server's stage aggregate to stage -> observation
// count for one endpoint.
func stageCounts(s *Server, endpoint string) map[string]int64 {
	out := map[string]int64{}
	for _, snap := range s.stages.Snapshot() {
		if snap.Endpoint == endpoint {
			out[snap.Stage] = snap.Count
		}
	}
	return out
}

// TestStageMetricsWorkerInvariance: the per-stage observation totals for
// one request are a property of the workload, not of the worker count —
// scoring the same sim-objective request with 1, 2 and 4 workers folds
// identical span counts into the aggregate (PR 6 made parallel scoring
// bit-identical; this pins the observability view of that invariant).
func TestStageMetricsWorkerInvariance(t *testing.T) {
	const body = `{"benchmark":"ofdm","seed":1,"constraint":60000,"objective":"sim"}`
	counts := make([]map[string]int64, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		tracer := obs.New(obs.Config{Service: fmt.Sprintf("w%d", workers)})
		s := newTestServer(t, Config{Workers: workers, Tracer: tracer})
		if rec := post(t, s, "/v1/partition", body); rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, rec.Code, rec.Body.String())
		}
		counts = append(counts, stageCounts(s, "/v1/partition"))
	}
	for _, stage := range []string{"profile", "cache.lookup", "store.get", "partition.moveloop", "sim.argmin", "sim.ScoreBatch"} {
		if counts[0][stage] == 0 {
			t.Errorf("stage %q never observed: %v", stage, counts[0])
		}
	}
	for i := 1; i < len(counts); i++ {
		if len(counts[i]) != len(counts[0]) {
			t.Fatalf("worker count changed the stage set: %v vs %v", counts[0], counts[i])
		}
		for stage, want := range counts[0] {
			if got := counts[i][stage]; got != want {
				t.Errorf("stage %q: %d observations at workers=1, %d at variant %d", stage, want, got, i)
			}
		}
	}
}

var exemplarRe = regexp.MustCompile(`# \{trace_id="([0-9a-f]{32})"\} `)

// TestStageExemplarsResolve is the tentpole's acceptance loop: an
// OpenMetrics scrape of /metrics carries exemplar trace IDs on the stage
// histograms, and every one of them resolves against /debug/traces/{id}.
// The default 0.0.4 scrape stays exemplar-free.
func TestStageExemplarsResolve(t *testing.T) {
	tracer := obs.New(obs.Config{Service: "exemplar"})
	s := newTestServer(t, Config{Tracer: tracer})
	if rec := post(t, s, "/v1/partition", firBody()); rec.Code != http.StatusOK {
		t.Fatalf("partition: %d", rec.Code)
	}

	plain := get(t, s, "/metrics")
	if strings.Contains(plain.Body.String(), "# {trace_id=") || strings.Contains(plain.Body.String(), "# EOF") {
		t.Fatal("default 0.0.4 scrape leaked OpenMetrics syntax")
	}
	if !strings.Contains(plain.Body.String(), "# TYPE hservd_stage_duration_seconds histogram") {
		t.Fatal("stage histograms missing from the default scrape")
	}

	om := getAccept(t, s, "/metrics", "application/openmetrics-text")
	if ct := om.Header().Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics Content-Type %q", ct)
	}
	text := om.Body.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("OpenMetrics scrape lacks the # EOF terminator")
	}
	ids := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "hservd_stage_duration_seconds_bucket") {
			continue
		}
		if m := exemplarRe.FindStringSubmatch(line); m != nil {
			ids[m[1]] = true
		}
	}
	if len(ids) == 0 {
		t.Fatal("no exemplars on the stage histograms after a traced request")
	}
	for id := range ids {
		if rec := get(t, s, "/debug/traces/"+id); rec.Code != http.StatusOK {
			t.Errorf("exemplar trace %s does not resolve: %d", id, rec.Code)
		}
	}
}

// TestTailSamplingUnderHTTPLoad: with tail sampling armed and the sampled
// ring under flood pressure, the forced-error and the forced-slow trace
// stay retrievable while unremarkable hits are sampled out.
func TestTailSamplingUnderHTTPLoad(t *testing.T) {
	tracer := obs.New(obs.Config{Service: "tail", RingSize: 2, KeepSlow: 1, SampleRate: 0.001})
	s := newTestServer(t, Config{Tracer: tracer})

	// The cache miss is the slow trace for /v1/partition: it compiles,
	// profiles and runs the move loop, orders of magnitude over a hit.
	slow := post(t, s, "/v1/partition", firBody())
	if slow.Code != http.StatusOK {
		t.Fatalf("miss: %d", slow.Code)
	}
	slowID := slow.Header().Get("X-Trace-Id")

	errRec := post(t, s, "/v1/partition", "{")
	if errRec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", errRec.Code)
	}
	errID := errRec.Header().Get("X-Trace-Id")

	for i := 0; i < 40; i++ { // cache hits flooding the sampled ring
		if rec := post(t, s, "/v1/partition", firBody()); rec.Code != http.StatusOK {
			t.Fatalf("hit %d: %d", i, rec.Code)
		}
	}

	for _, id := range []string{slowID, errID} {
		if rec := get(t, s, "/debug/traces/"+id); rec.Code != http.StatusOK {
			t.Fatalf("protected trace %s evicted under ring pressure: %d", id, rec.Code)
		}
	}

	var st StatsJSON
	if err := json.Unmarshal(get(t, s, "/debug/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Traces.KeptError < 1 || st.Traces.KeptSlow < 1 {
		t.Fatalf("policy counters did not move: %+v", st.Traces)
	}
	if st.Traces.SampledOut < 1 {
		t.Fatalf("no flood trace was sampled out: %+v", st.Traces)
	}

	fams := parsePromText(t, get(t, s, "/metrics").Body.String())
	ret := fams["hservd_trace_retention_total"]
	if ret == nil || ret.typ != "counter" {
		t.Fatal("hservd_trace_retention_total missing or mistyped")
	}
	if got := ret.value(t, map[string]string{"policy": "kept_error"}); got < 1 {
		t.Errorf("kept_error on /metrics: %v", got)
	}
	if got := ret.value(t, map[string]string{"policy": "sampled_out"}); got < 1 {
		t.Errorf("sampled_out on /metrics: %v", got)
	}

	// The error trace advertises itself in the list.
	var list TraceListJSON
	if err := json.Unmarshal(get(t, s, "/debug/traces").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range list.Traces {
		if row.TraceID == errID && row.Error {
			found = true
		}
	}
	if !found {
		t.Fatal("error trace not flagged in /debug/traces")
	}
}

// TestTraceListFilters: ?endpoint= and ?min_ms= narrow the list, and a
// malformed min_ms is a 400.
func TestTraceListFilters(t *testing.T) {
	tracer := obs.New(obs.Config{Service: "filters"})
	s := newTestServer(t, Config{Tracer: tracer})
	if rec := post(t, s, "/v1/partition", firBody()); rec.Code != http.StatusOK {
		t.Fatalf("partition: %d", rec.Code)
	}
	if rec := get(t, s, "/v1/presets"); rec.Code != http.StatusOK {
		t.Fatalf("presets: %d", rec.Code)
	}

	decode := func(rec *httptest.ResponseRecorder) TraceListJSON {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("list: %d: %s", rec.Code, rec.Body.String())
		}
		var list TraceListJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
			t.Fatal(err)
		}
		return list
	}

	all := decode(get(t, s, "/debug/traces"))
	if len(all.Traces) != 2 {
		t.Fatalf("unfiltered list has %d rows, want 2", len(all.Traces))
	}

	part := decode(get(t, s, "/debug/traces?endpoint=/v1/partition"))
	if len(part.Traces) != 1 || part.Traces[0].Endpoint != "/v1/partition" {
		t.Fatalf("endpoint filter: %+v", part.Traces)
	}

	if got := decode(get(t, s, "/debug/traces?min_ms=0")); len(got.Traces) != 2 {
		t.Fatalf("min_ms=0 dropped rows: %d", len(got.Traces))
	}
	if got := decode(get(t, s, "/debug/traces?min_ms=3600000")); len(got.Traces) != 0 {
		t.Fatalf("min_ms=1h kept rows: %+v", got.Traces)
	}
	// Both filters together: the partition miss takes well over a
	// microsecond; the presets read is irrelevant to the endpoint filter.
	both := decode(get(t, s, "/debug/traces?endpoint=/v1/partition&min_ms=0.001"))
	if len(both.Traces) != 1 {
		t.Fatalf("combined filters: %+v", both.Traces)
	}

	if rec := get(t, s, "/debug/traces?min_ms=soon"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed min_ms: %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/debug/traces?min_ms=-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative min_ms: %d, want 400", rec.Code)
	}
}

// TestTelemetryEndpoint: with a collection interval configured the server
// serves its runtime time series as JSON and as gauges on /metrics;
// without one the endpoint 404s.
func TestTelemetryEndpoint(t *testing.T) {
	s := newTestServer(t, Config{TelemetryInterval: 5 * time.Millisecond})
	t.Cleanup(s.Close)

	rec := get(t, s, "/debug/telemetry")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/telemetry: %d", rec.Code)
	}
	var tel TelemetryJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tel); err != nil {
		t.Fatal(err)
	}
	if tel.IntervalMs != 5 || tel.Capacity <= 0 {
		t.Fatalf("telemetry config: %+v", tel)
	}
	if len(tel.Samples) < 1 {
		t.Fatal("no samples despite the immediate first sample on Start")
	}
	last := tel.Samples[len(tel.Samples)-1]
	if last.HeapBytes == 0 || last.Goroutines == 0 || last.UnixMs == 0 {
		t.Fatalf("runtime metrics not populated: %+v", last)
	}
	if last.Counters == nil {
		t.Fatal("service-counter deltas missing from the sample")
	}
	for _, key := range []string{"requests", "errors", "cache_hits", "cache_misses"} {
		if _, ok := last.Counters[key]; !ok {
			t.Errorf("counter %q missing: %v", key, last.Counters)
		}
	}

	fams := parsePromText(t, get(t, s, "/metrics").Body.String())
	for name, typ := range map[string]string{
		"hservd_runtime_heap_bytes":           "gauge",
		"hservd_runtime_goroutines":           "gauge",
		"hservd_runtime_gc_cycles_total":      "counter",
		"hservd_telemetry_samples":            "gauge",
		"hservd_runtime_gc_pause_p99_seconds": "gauge",
	} {
		f := fams[name]
		if f == nil {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if f.typ != typ {
			t.Errorf("%s type %q, want %q", name, f.typ, typ)
		}
	}
	if got := fams["hservd_runtime_heap_bytes"].value(t, nil); got <= 0 {
		t.Errorf("heap bytes gauge: %v", got)
	}

	s.Close() // idempotent with the cleanup's Close

	disabled := newTestServer(t, Config{})
	if rec := get(t, disabled, "/debug/telemetry"); rec.Code != http.StatusNotFound {
		t.Fatalf("telemetry disabled: %d, want 404", rec.Code)
	}
}

// TestFleetHealth: /debug/fleet on a two-replica fleet merges both
// replicas' stats and telemetry into one document, with the serving
// replica marked self.
func TestFleetHealth(t *testing.T) {
	n := 2
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = New(Config{
			Self:              urls[i],
			Peers:             urls,
			Tracer:            obs.New(obs.Config{Service: urls[i]}),
			TelemetryInterval: 5 * time.Millisecond,
		})
		t.Cleanup(servers[i].Close)
		swaps[i].h.Store(servers[i])
	}

	resp, err := http.Get(urls[0] + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/fleet: %d", resp.StatusCode)
	}
	var fleet FleetJSON
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Self != cluster.NormalizeNode(urls[0]) {
		t.Fatalf("self %q, want %q", fleet.Self, urls[0])
	}
	if len(fleet.Replicas) != 2 || fleet.Healthy != 2 || fleet.Unhealthy != 0 {
		t.Fatalf("fleet shape: %+v", fleet)
	}
	for i, row := range fleet.Replicas {
		if row.Stats == nil {
			t.Fatalf("replica %s has no stats", row.Replica)
		}
		if row.Telemetry == nil || row.Telemetry.HeapBytes == 0 {
			t.Fatalf("replica %s has no telemetry sample", row.Replica)
		}
		if (i == 0) != row.Self {
			t.Fatalf("self flag misplaced: %+v", fleet.Replicas)
		}
	}
	if fleet.Replicas[1].Replica != cluster.NormalizeNode(urls[1]) {
		t.Fatalf("peer row %q, want %q", fleet.Replicas[1].Replica, urls[1])
	}
}

// TestFleetHealthDeadPeer: an unreachable peer is reported unhealthy with
// its error inline; the document still renders.
func TestFleetHealthDeadPeer(t *testing.T) {
	self := "http://127.0.0.1:1"
	dead := "http://127.0.0.1:9"
	s := newTestServer(t, Config{Self: self, Peers: []string{self, dead}})

	var fleet FleetJSON
	if err := json.Unmarshal(get(t, s, "/debug/fleet").Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Healthy != 1 || fleet.Unhealthy != 1 {
		t.Fatalf("fleet counts: %+v", fleet)
	}
	if !fleet.Replicas[0].Self || !fleet.Replicas[0].Healthy {
		t.Fatalf("self row: %+v", fleet.Replicas[0])
	}
	if fleet.Replicas[1].Healthy || fleet.Replicas[1].Error == "" {
		t.Fatalf("dead peer row: %+v", fleet.Replicas[1])
	}
	if fleet.Replicas[1].Stats != nil {
		t.Fatalf("dead peer has stats: %+v", fleet.Replicas[1])
	}
}

// TestFleetHealthSolo: outside fleet mode the document holds exactly this
// process.
func TestFleetHealthSolo(t *testing.T) {
	s := newTestServer(t, Config{})
	var fleet FleetJSON
	if err := json.Unmarshal(get(t, s, "/debug/fleet").Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Replicas) != 1 || fleet.Healthy != 1 || !fleet.Replicas[0].Self {
		t.Fatalf("solo fleet: %+v", fleet)
	}
	if fleet.Replicas[0].Stats == nil {
		t.Fatal("solo replica has no stats")
	}
	if fleet.Replicas[0].Telemetry != nil {
		t.Fatal("telemetry reported without a collector")
	}
}
