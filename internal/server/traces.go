package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"hybridpart/internal/obs"
)

// Trace inspection endpoints. GET /debug/traces lists the tracer's ring of
// finished traces (newest first); GET /debug/traces/{id} downloads one
// trace as Chrome trace-event JSON, loadable as-is in Perfetto or
// chrome://tracing. In fleet mode the download additionally asks every
// peer for its spans under the same trace ID (?local=1 returns the raw
// local view and guards against recursion), so a forwarded request yields
// one document with the forwarding replica and the owner as separate
// processes on a shared timeline. Peer reads merge data only — they touch
// no span counters, so a forwarded request's spans are counted exactly
// once fleet-wide, each on the replica that recorded them.

// peerTraceTimeout bounds each peer's share of a trace assembly; a slow or
// dead peer costs at most this, and the local view still renders.
const peerTraceTimeout = 2 * time.Second

// TraceSummaryJSON is one row of GET /debug/traces.
type TraceSummaryJSON struct {
	TraceID    string `json:"trace_id"`
	Root       string `json:"root"`
	Endpoint   string `json:"endpoint"`
	Start      string `json:"start"` // RFC 3339, with sub-second precision
	DurationUs int64  `json:"duration_micros"`
	Spans      int    `json:"spans"`
	Error      bool   `json:"error,omitempty"`
}

// TraceListJSON is the body of GET /debug/traces.
type TraceListJSON struct {
	Service string             `json:"service"`
	Ring    obs.Stats          `json:"ring"`
	Traces  []TraceSummaryJSON `json:"traces"`
}

// TraceStatsJSON is the tracing section of GET /debug/stats, present only
// when a tracer is configured.
type TraceStatsJSON struct {
	RingDepth     int   `json:"ring_depth"`
	RingCapacity  int   `json:"ring_capacity"`
	DroppedTraces int64 `json:"dropped_traces"`
	DroppedSpans  int64 `json:"dropped_spans"`
	Spans         int64 `json:"spans"`
	// Tail-sampling policy counters (hservd -trace-keep-slow); all zero
	// under plain overwrite-oldest retention.
	KeptError  int64 `json:"kept_error"`
	KeptSlow   int64 `json:"kept_slow"`
	SampledOut int64 `json:"sampled_out"`
}

// handleTraceList lists retained traces, newest first. ?endpoint= keeps
// only traces whose root belongs to that endpoint, ?min_ms= only traces at
// least that many milliseconds long — so an operator chasing "slow
// /v1/partition requests" never downloads the whole ring.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.writeError(w, notFound("tracing is not enabled (hservd -trace-ring)"))
		return
	}
	q := r.URL.Query()
	endpoint := q.Get("endpoint")
	var minDur time.Duration
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			s.writeError(w, badRequest("min_ms must be a non-negative number of milliseconds"))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	out := TraceListJSON{
		Service: s.tracer.Service(),
		Ring:    s.tracer.Stats(),
		Traces:  []TraceSummaryJSON{},
	}
	for _, tr := range s.tracer.Traces() {
		if endpoint != "" && tr.Endpoint() != endpoint {
			continue
		}
		if tr.Duration < minDur {
			continue
		}
		out.Traces = append(out.Traces, TraceSummaryJSON{
			TraceID:    tr.ID.String(),
			Root:       tr.Root,
			Endpoint:   tr.Endpoint(),
			Start:      tr.Start.UTC().Format(time.RFC3339Nano),
			DurationUs: tr.Duration.Microseconds(),
			Spans:      len(tr.Spans),
			Error:      tr.Error,
		})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.writeError(w, notFound("tracing is not enabled (hservd -trace-ring)"))
		return
	}
	id, ok := obs.ParseTraceID(r.PathValue("id"))
	if !ok {
		s.writeError(w, badRequest("trace id must be 32 lowercase hex digits"))
		return
	}
	local := s.tracer.Get(id)
	if r.URL.Query().Get("local") != "" {
		// A peer assembling the distributed view wants this replica's raw
		// spans; never recurse back out to the fleet from here.
		if local == nil {
			s.writeError(w, notFound("trace not found on this replica"))
			return
		}
		s.writeJSON(w, local.JSON())
		return
	}
	var traces []*obs.Trace
	if local != nil {
		traces = append(traces, local)
	}
	traces = append(traces, s.peerTraces(r.Context(), id)...)
	if len(traces) == 0 {
		s.writeError(w, notFound("trace not found (evicted from the ring, or never recorded)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(obs.ChromeTrace(traces))
}

// peerTraces collects the other replicas' views of trace id. Failures are
// soft: an unreachable peer or a peer without the trace contributes
// nothing.
func (s *Server) peerTraces(ctx context.Context, id obs.TraceID) []*obs.Trace {
	cs := s.cluster
	if cs == nil {
		return nil
	}
	var out []*obs.Trace
	for _, peer := range cs.ring.Nodes() {
		if peer == cs.self {
			continue
		}
		if tr := s.fetchPeerTrace(ctx, peer, id); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

func (s *Server) fetchPeerTrace(ctx context.Context, peer string, id obs.TraceID) *obs.Trace {
	ctx, cancel := context.WithTimeout(ctx, peerTraceTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/debug/traces/"+id.String()+"?local=1", nil)
	if err != nil {
		return nil
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var tj obs.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		return nil
	}
	tr, err := obs.FromJSON(tj)
	if err != nil {
		return nil
	}
	return tr
}
