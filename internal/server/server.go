// Package server exposes the hybridpart v2 Engine over HTTP/JSON — the
// partitioning-as-a-service subsystem. The methodology is a pure function
// from (source, profile inputs, platform config) to a partition, so the
// service fronts the Engine with a bounded content-addressed result cache
// (internal/cache) keyed by a canonical request fingerprint: repeated
// requests are served from stored response bytes without recompiling, and
// identical in-flight requests are coalesced into a single
// compile+profile+partition run.
//
// Endpoints:
//
//	POST /v1/partition         timing-constrained partitioning -> ResultJSON
//	POST /v1/partition-energy  energy-constrained partitioning -> EnergyResultJSON
//	POST /v1/sweep             design-space sweep -> ResultSet JSON, or SSE
//	                           cell-by-cell progress when the client sends
//	                           Accept: text/event-stream
//	POST /v1/simulate          discrete-event co-simulation of the computed
//	                           partitioning -> SimReportJSON
//	GET  /healthz              liveness probe
//	GET  /v1/presets           registered platform variants
//	GET  /debug/stats          per-endpoint counters + cache statistics
//	GET  /metrics              Prometheus text exposition of the same
//	GET  /debug/traces         finished request traces (Config.Tracer),
//	                           filterable by ?endpoint= and ?min_ms=
//	GET  /debug/traces/{id}    one trace as Chrome trace-event JSON,
//	                           fleet-merged in fleet mode
//	GET  /debug/telemetry      runtime-telemetry time series
//	                           (Config.TelemetryInterval)
//	GET  /debug/fleet          merged health document for every replica
//
// The result store behind the cache is pluggable (internal/store): the
// bounded in-memory LRU by default, or a disk-backed store so a restarted
// replica serves its first repeat request as a hit. With Config.Self and
// Config.Peers set the server runs in fleet mode (internal/cluster):
// fingerprint-keyed requests are routed over a consistent-hash ring and
// forwarded to the owning replica, with a loop-guard header and local
// fallback when the owner is unreachable. Config.MaxSimCost arms
// cost-based admission control: sim-scored cache misses draw from a
// token bucket and bursts over the budget are shed with 429 + Retry-After.
// Config.Tracer arms request tracing (internal/obs): every /v1/* request
// runs under a root span — joined across fleet forwards via the W3C
// traceparent header — and finished traces are served by /debug/traces.
//
// Error contract: malformed bodies are 400, unknown presets/benchmarks 404,
// workloads that fail to compile/profile/partition 422, admission-shed
// requests 429 (with Retry-After), client-cancelled runs 499 (nginx
// convention), deadline-exceeded runs 504. Every non-2xx body is
// ErrorJSON.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hybridpart"
	"hybridpart/internal/cache"
	"hybridpart/internal/obs"
	"hybridpart/internal/platform"
	"hybridpart/internal/store"
)

// StatusClientClosedRequest is the 499 status (nginx convention) returned
// when a run is abandoned because the client's context was cancelled.
const StatusClientClosedRequest = 499

// maxSweepPoints bounds the expanded grid of one /v1/sweep request.
const maxSweepPoints = 100000

// maxSweepCost bounds one /v1/sweep request's simulation cost in whole-trace
// replays (Spec.SimulationCost: cells × frames). Counting cells alone would
// let a modest grid with a frames axis multiply the work arbitrarily — each
// frame replays the entire profiled trace.
const maxSweepCost = maxSweepPoints

// Config parameterizes a Server.
type Config struct {
	// CacheCapacity bounds the result cache in entries (default 256).
	// Ignored when Store is set.
	CacheCapacity int
	// Workers bounds each sweep's worker pool: client-requested pools are
	// clamped to it, and it is the default when a request names none
	// (0 = no bound, GOMAXPROCS default).
	Workers int
	// Timeout bounds each partition/sweep run (0 = unbounded).
	Timeout time.Duration
	// Store overrides the default in-memory LRU result store — e.g. a
	// store.Disk so the replica restarts warm. The caller keeps ownership:
	// closing it (to flush the on-disk index) is the caller's job.
	Store store.Backend
	// Self and Peers enable fingerprint-sharded peer routing: Peers is the
	// full replica set (base URLs, Self included) hashed onto a consistent
	// ring, and requests whose cache key another replica owns are
	// forwarded there. Self must be a ring member; validation is the
	// operator frontend's job (hservd exits 2 on a malformed fleet).
	Self  string
	Peers []string
	// ForwardTimeout bounds each peer-forward hop in fleet mode (0 = a
	// built-in few-second default, defaultForwardTimeout). It must stay well
	// under Timeout: a black-holed owner then trips the local-fallback path
	// quickly instead of holding the request until the global 504.
	ForwardTimeout time.Duration
	// MaxSimCost arms cost-based admission control: the budget of
	// simulated-cost units (trace replays, the sweep grid's accounting)
	// this replica spends per second on sim-scored cache misses. 0
	// disables admission control.
	MaxSimCost int
	// Tracer, when non-nil, records a span tree per /v1 request into its
	// bounded ring: the HTTP edge, peer forwards, cache/store probes,
	// admission decisions, and the engine layers below (move loop,
	// ScoreBatch, replays). Traces are served by GET /debug/traces and
	// /debug/traces/{id} (Chrome trace-event JSON, Perfetto-loadable).
	// nil disables tracing at near-zero cost.
	Tracer *obs.Tracer
	// Logger receives the server's structured log lines (slow requests,
	// forward fallbacks), each carrying the request's trace ID and
	// endpoint. nil means slog.Default().
	Logger *slog.Logger
	// SlowThreshold, when positive, logs one structured summary line for
	// every request that takes longer than it.
	SlowThreshold time.Duration
	// TelemetryInterval, when positive, runs a runtime-telemetry collector
	// (internal/obs) sampling heap/GC/goroutine/sched health plus
	// service-counter deltas every interval into a bounded ring, served by
	// GET /debug/telemetry and as gauges on /metrics. 0 disables it. A
	// server with telemetry enabled owns a goroutine; release it with Close.
	TelemetryInterval time.Duration
}

// Server is the HTTP front end. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	cfg     Config
	results *cache.Cache
	mux     *http.ServeMux
	metrics map[string]*endpointMetrics
	cluster *clusterState // nil outside fleet mode
	admit   *tokenBucket  // nil without an admission budget
	tracer  *obs.Tracer   // nil disables tracing
	logger  *slog.Logger  // never nil after New

	// stages folds every finished trace's stage spans into per-endpoint
	// latency histograms for /metrics (nil without a tracer); telemetry is
	// the runtime-health collector behind /debug/telemetry (nil unless
	// Config.TelemetryInterval is set).
	stages    *obs.StageAgg
	telemetry *obs.Collector

	// simScoring aggregates the engine's SimScoreStats over every
	// /v1/partition run that consulted the co-simulator. Only cache misses
	// contribute — a hit serves stored bytes and scores nothing.
	simScoring simScoringMetrics
}

// simScoringMetrics is the candidate-scoring counter set behind
// /debug/stats: how the simulation-scored runs paid for their candidate
// evaluations (distinct mappings scored, full replays, branch-and-bound
// prunes, worker-pool evaluations, memo hits).
type simScoringMetrics struct {
	scored   atomic.Int64
	replays  atomic.Int64
	pruned   atomic.Int64
	parallel atomic.Int64
	memoHits atomic.Int64
}

// recordSimStats folds one run's scoring breakdown into the /debug/stats
// aggregate. Model-objective runs without sim knobs contribute all zeros.
func (s *Server) recordSimStats(st hybridpart.SimScoreStats) {
	s.simScoring.scored.Add(int64(st.Scored))
	s.simScoring.replays.Add(int64(st.Replays))
	s.simScoring.pruned.Add(int64(st.Pruned))
	s.simScoring.parallel.Add(int64(st.Parallel))
	s.simScoring.memoHits.Add(int64(st.MemoHits))
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 256
	}
	be := cfg.Store
	if be == nil {
		be = store.NewMemory(cfg.CacheCapacity)
	}
	s := &Server{
		cfg:     cfg,
		results: cache.NewBacked(be),
		mux:     http.NewServeMux(),
		metrics: map[string]*endpointMetrics{},
		tracer:  cfg.Tracer,
		logger:  cfg.Logger,
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	if len(cfg.Peers) > 0 {
		s.cluster = newClusterState(cfg.Self, cfg.Peers)
	}
	if cfg.MaxSimCost > 0 {
		s.admit = newTokenBucket(float64(cfg.MaxSimCost))
	}
	if s.tracer != nil {
		s.stages = obs.NewStageAgg(nil, nil)
		s.tracer.SetOnFinalize(s.stages.Observe)
	}
	if cfg.TelemetryInterval > 0 {
		s.telemetry = obs.NewCollector(obs.CollectorConfig{
			Interval: cfg.TelemetryInterval,
			Counters: s.telemetryCounters,
		})
		s.telemetry.Start()
	}
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /v1/presets", "/v1/presets", s.handlePresets)
	s.route("GET /debug/stats", "/debug/stats", s.handleStats)
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	s.route("GET /debug/traces", "/debug/traces", s.handleTraceList)
	s.route("GET /debug/traces/{id}", "/debug/traces/{id}", s.handleTraceGet)
	s.route("GET /debug/telemetry", "/debug/telemetry", s.handleTelemetry)
	s.route("GET /debug/fleet", "/debug/fleet", s.handleFleet)
	s.route("POST /v1/partition", "/v1/partition", s.handlePartition)
	s.route("POST /v1/partition-energy", "/v1/partition-energy", s.handlePartitionEnergy)
	s.route("POST /v1/sweep", "/v1/sweep", s.handleSweep)
	s.route("POST /v1/simulate", "/v1/simulate", s.handleSimulate)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close releases background resources (the telemetry collector's
// goroutine). Idempotent; the server keeps serving afterwards, minus
// telemetry updates.
func (s *Server) Close() { s.telemetry.Stop() }

// telemetryCounters is the service-counter snapshot the telemetry
// collector diffs between samples: request/error totals over all
// endpoints, cache traffic, and the shed/forward counters when armed.
func (s *Server) telemetryCounters() map[string]int64 {
	var requests, errorsTotal int64
	for _, m := range s.metrics {
		requests += m.requests.Load()
		errorsTotal += m.errors.Load()
	}
	cs := s.results.Stats()
	out := map[string]int64{
		"requests":     requests,
		"errors":       errorsTotal,
		"cache_hits":   int64(cs.Hits),
		"cache_misses": int64(cs.Misses),
	}
	if b := s.admit; b != nil {
		out["admission_shed"] = b.shed.Load()
	}
	if cl := s.cluster; cl != nil {
		out["cluster_forwards"] = cl.forwards.Load()
	}
	return out
}

// CacheStats snapshots the result-cache counters (exposed for tests and
// operational tooling; /debug/stats serves the same numbers).
func (s *Server) CacheStats() cache.Stats { return s.results.Stats() }

// endpointMetrics is the per-endpoint counter set behind /debug/stats and
// /metrics. latencyBucket holds per-bucket (non-cumulative) observation
// counts for the /metrics histogram, one slot per latencyBuckets bound
// plus the +Inf overflow slot; /metrics renders them cumulatively.
type endpointMetrics struct {
	requests      atomic.Int64
	errors        atomic.Int64
	inFlight      atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	latencySum    atomic.Int64 // microseconds
	latencyMax    atomic.Int64 // microseconds
	latencyBucket [16]atomic.Int64
}

// EndpointStatsJSON is one endpoint's row of GET /debug/stats.
type EndpointStatsJSON struct {
	Requests         int64 `json:"requests"`
	Errors           int64 `json:"errors"`
	InFlight         int64 `json:"in_flight"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	AvgLatencyMicros int64 `json:"avg_latency_micros"`
	MaxLatencyMicros int64 `json:"max_latency_micros"`
}

// ProfileMemoJSON reports the process-wide benchmark profile memo behind
// ProfileBenchmarkCached (bound 0 = unbounded; hservd -profile-memo).
type ProfileMemoJSON struct {
	Size  int `json:"size"`
	Bound int `json:"bound"`
}

// SimScoringStatsJSON is the candidate-scoring section of GET /debug/stats:
// SimScoreStats summed over every /v1/partition engine run (cache hits
// score nothing and contribute nothing).
type SimScoringStatsJSON struct {
	Scored   int64 `json:"scored"`
	Replays  int64 `json:"replays"`
	Pruned   int64 `json:"pruned"`
	Parallel int64 `json:"parallel"`
	MemoHits int64 `json:"memo_hits"`
}

// ClusterStatsJSON is the fleet section of GET /debug/stats, present only
// in peer mode.
type ClusterStatsJSON struct {
	Self           string `json:"self"`
	Peers          int    `json:"peers"`
	Forwards       int64  `json:"forwards"`
	Fallbacks      int64  `json:"fallbacks"`
	Received       int64  `json:"received"`
	RelayTruncated int64  `json:"relay_truncated"`
}

// AdmissionStatsJSON is the admission-control section of GET /debug/stats,
// present only when a cost budget is configured.
type AdmissionStatsJSON struct {
	Budget int     `json:"budget"`
	Tokens float64 `json:"tokens"`
	Shed   int64   `json:"shed"`
}

// StatsJSON is the body of GET /debug/stats.
type StatsJSON struct {
	Cache         cache.Stats                  `json:"cache"`
	BenchProfiles ProfileMemoJSON              `json:"bench_profiles"`
	SimScoring    SimScoringStatsJSON          `json:"sim_scoring"`
	Cluster       *ClusterStatsJSON            `json:"cluster,omitempty"`
	Admission     *AdmissionStatsJSON          `json:"admission,omitempty"`
	Traces        *TraceStatsJSON              `json:"traces,omitempty"`
	Endpoints     map[string]EndpointStatsJSON `json:"endpoints"`
}

// route registers pattern on the mux wrapped in the counting middleware;
// name keys the endpoint's metrics row. /v1 endpoints additionally get a
// root span per request: a W3C traceparent header on the way in joins the
// caller's trace (the cross-replica forward case), and the trace ID is
// echoed as an X-Trace-Id response header so clients can fetch their trace
// from /debug/traces/{id}.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	m := &endpointMetrics{}
	s.metrics[name] = m
	traced := strings.HasPrefix(name, "/v1/")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(1)
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var span *obs.Span
		if traced && s.tracer != nil {
			remote, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
			ctx, root := s.tracer.StartRoot(r.Context(), r.Method+" "+name, remote,
				obs.String("endpoint", name))
			span = root
			if from := r.Header.Get(forwardHeader); from != "" {
				// The loop-guard path: this request was forwarded to us by
				// a peer, so the root records who.
				span.Set(obs.String("forwarded_from", from))
			}
			sw.Header().Set("X-Trace-Id", span.TraceID())
			r = r.WithContext(ctx)
		}
		h(sw, r)
		dur := time.Since(start)
		if span != nil {
			span.Set(obs.Int("status", sw.code))
			if sw.code >= 400 {
				// Error traces are always retained under tail sampling.
				span.MarkError()
			}
			span.End()
		}
		us := dur.Microseconds()
		m.latencySum.Add(us)
		m.latencyBucket[bucketIndex(float64(us)/1e6)].Add(1)
		for {
			prev := m.latencyMax.Load()
			if us <= prev || m.latencyMax.CompareAndSwap(prev, us) {
				break
			}
		}
		if sw.code >= 400 {
			m.errors.Add(1)
		}
		if s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold {
			s.logger.Warn("slow request",
				"endpoint", name,
				"trace", span.TraceID(),
				"method", r.Method,
				"status", sw.code,
				"duration_ms", dur.Milliseconds(),
				"threshold_ms", s.cfg.SlowThreshold.Milliseconds())
		}
	})
}

// statusWriter captures the response status for the metrics middleware
// while passing Flush through so SSE streaming keeps working.
type statusWriter struct {
	http.ResponseWriter
	code        int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.code = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpError pairs a status code with a client-facing message.
// retryAfter, when positive, becomes a Retry-After header (admission
// sheds).
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(msg string) *httpError { return &httpError{status: http.StatusBadRequest, msg: msg} }
func notFound(msg string) *httpError   { return &httpError{status: http.StatusNotFound, msg: msg} }

// runError maps an engine failure to its transport status: cancellation is
// the client's doing (499), deadline expiry the server's bound (504), an
// admission shed is overload (429 + Retry-After), everything else is a
// workload the engine cannot process (422).
func runError(err error) *httpError {
	var shed *admissionError
	switch {
	case errors.As(err, &shed):
		return &httpError{status: http.StatusTooManyRequests, msg: shed.Error(), retryAfter: shed.retryAfter}
	case errors.Is(err, context.Canceled):
		return &httpError{status: StatusClientClosedRequest, msg: "request cancelled: " + err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &httpError{status: http.StatusGatewayTimeout, msg: "request timed out: " + err.Error()}
	default:
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
}

func (s *Server) writeError(w http.ResponseWriter, e *httpError) {
	w.Header().Set("Content-Type", "application/json")
	if e.retryAfter > 0 {
		secs := int64(e.retryAfter / time.Second)
		if e.retryAfter%time.Second != 0 {
			secs++
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(ErrorJSON{Error: e.msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runCtx applies the configured per-request timeout to the client context.
func (s *Server) runCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.Timeout)
	}
	return context.WithCancel(r.Context())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	names := platform.Names()
	out := make([]PresetJSON, 0, len(names)+1)
	out = append(out, PresetJSON{Name: "default", Summary: "the paper's baseline platform"})
	for _, n := range names {
		cfg, ok := platform.Lookup(n)
		if !ok {
			continue
		}
		out = append(out, PresetJSON{Name: cfg.Name, Summary: cfg.Summary})
	}
	s.writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.statsJSON())
}

// statsJSON assembles the /debug/stats document; /debug/fleet reuses it
// for the self entry of the merged health view.
func (s *Server) statsJSON() StatsJSON {
	out := StatsJSON{Cache: s.results.Stats(), Endpoints: map[string]EndpointStatsJSON{}}
	out.BenchProfiles.Size, out.BenchProfiles.Bound = hybridpart.ProfileMemoStats()
	out.SimScoring = SimScoringStatsJSON{
		Scored:   s.simScoring.scored.Load(),
		Replays:  s.simScoring.replays.Load(),
		Pruned:   s.simScoring.pruned.Load(),
		Parallel: s.simScoring.parallel.Load(),
		MemoHits: s.simScoring.memoHits.Load(),
	}
	if cl := s.cluster; cl != nil {
		out.Cluster = &ClusterStatsJSON{
			Self:           cl.self,
			Peers:          len(cl.ring.Nodes()),
			Forwards:       cl.forwards.Load(),
			Fallbacks:      cl.fallbacks.Load(),
			Received:       cl.received.Load(),
			RelayTruncated: cl.relayTruncated.Load(),
		}
	}
	if b := s.admit; b != nil {
		out.Admission = &AdmissionStatsJSON{
			Budget: s.cfg.MaxSimCost,
			Tokens: b.level(),
			Shed:   b.shed.Load(),
		}
	}
	if t := s.tracer; t != nil {
		ts := t.Stats()
		out.Traces = &TraceStatsJSON{
			RingDepth:     ts.Depth,
			RingCapacity:  ts.Capacity,
			DroppedTraces: ts.DroppedTraces,
			DroppedSpans:  ts.DroppedSpans,
			Spans:         ts.Spans,
			KeptError:     ts.KeptError,
			KeptSlow:      ts.KeptSlow,
			SampledOut:    ts.SampledOut,
		}
	}
	for name, m := range s.metrics {
		row := EndpointStatsJSON{
			Requests:         m.requests.Load(),
			Errors:           m.errors.Load(),
			InFlight:         m.inFlight.Load(),
			CacheHits:        m.cacheHits.Load(),
			CacheMisses:      m.cacheMisses.Load(),
			MaxLatencyMicros: m.latencyMax.Load(),
		}
		if row.Requests > 0 {
			row.AvgLatencyMicros = m.latencySum.Load() / row.Requests
		}
		out.Endpoints[name] = row
	}
	return out
}

// decodePartitionRequest parses and shape-checks a partition body.
func decodePartitionRequest(r *http.Request, energy bool) (*PartitionRequest, *httpError) {
	var req PartitionRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("malformed request body: " + err.Error())
	}
	if e := req.validate(energy); e != nil {
		return nil, e
	}
	return &req, nil
}

// buildSourceWorkload compiles the request's inline source, feeds it its
// inputs (in sorted name order, for determinism) and profiles it with one
// run. Benchmark requests never come here: they go through the
// process-wide ProfileBenchmarkCached, so a cache miss on a new knob set
// reuses the benchmark's one compile+profile.
func buildSourceWorkload(ctx context.Context, req *PartitionRequest) (*hybridpart.Workload, error) {
	_, cs := obs.Start(ctx, "compile", obs.Int("source_bytes", len(req.Source)))
	w, err := hybridpart.NewWorkload(req.Source, req.entryOrDefault())
	cs.End()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(req.Inputs))
	for n := range req.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := w.SetInput(n, req.Inputs[n]); err != nil {
			return nil, err
		}
	}
	_, ps := obs.Start(ctx, "profile")
	_, err = w.Run(req.Args...)
	ps.End()
	if err != nil {
		return nil, fmt.Errorf("profiling run failed: %w", err)
	}
	return w, nil
}

// profileBenchmark wraps the process-wide benchmark profile memo in a
// "profile" span (a memo hit shows up as a near-zero-width span).
func profileBenchmark(ctx context.Context, bench string, seed uint32) (*hybridpart.App, *hybridpart.RunProfile, error) {
	_, ps := obs.Start(ctx, "profile", obs.String("benchmark", bench))
	app, prof, err := hybridpart.ProfileBenchmarkCached(bench, seed)
	ps.End()
	return app, prof, err
}

// serveCached is the cache-fronted tail shared by every fingerprint-keyed
// endpoint: serve the stored bytes for key, or compute-and-store them under
// singleflight, with hit/miss counters, X-Cache headers and the
// cancellation/timeout error contract applied uniformly.
//
// In fleet mode the key is routed first: a key another replica owns is
// forwarded there (fwdReq re-marshals as the forwarded body) and the
// owner's response relayed verbatim, so the fleet keeps one copy of each
// result and coalesces identical requests globally. An unreachable owner
// degrades to local computation. cost is the request's admission price in
// simulated-cost units, charged only when the engine actually runs here.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, key string,
	fwdReq any, cost int, compute func(ctx context.Context) ([]byte, error)) {
	if owner := s.routeOwner(r, key); owner != "" {
		if s.tryForward(w, r, endpoint, owner, fwdReq) {
			return
		}
		s.cluster.fallbacks.Add(1) // owner unreachable: serve locally
		s.logger.Warn("forward fallback: owner unreachable, serving locally",
			"endpoint", endpoint,
			"trace", obs.SpanFrom(r.Context()).TraceID(),
			"owner", owner)
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	body, hit, err := s.results.GetOrCompute(ctx, key, func() ([]byte, error) {
		if err := s.admitCost(ctx, cost); err != nil {
			return nil, err
		}
		return compute(ctx)
	})
	// hit means "served without running the engine here" — a stored entry
	// or a joined in-flight call — on the error path too.
	m := s.metrics[endpoint]
	if hit {
		m.cacheHits.Add(1)
	} else {
		m.cacheMisses.Add(1)
	}
	if err != nil {
		s.writeError(w, runError(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

// servePartition is the shared run path of /v1/partition and
// /v1/partition-energy: decode, resolve the knob set, fingerprint the
// request and hand the run to serveCached.
func (s *Server) servePartition(w http.ResponseWriter, r *http.Request, energy bool,
	run func(ctx context.Context, req *PartitionRequest, opts hybridpart.Options) ([]byte, error)) {
	endpoint := "/v1/partition"
	kind := "partition"
	if energy {
		endpoint, kind = "/v1/partition-energy", "energy"
	}
	req, httpErr := decodePartitionRequest(r, energy)
	if httpErr == nil {
		if !energy {
			// The service default: requests that leave the objective
			// dimension untouched run the simulated objective. Applied
			// before fingerprinting, so the default and an explicit
			// "objective": "sim" share one cache entry.
			req.applyDefaultObjective()
		}
		var opts hybridpart.Options
		if opts, httpErr = req.resolveOptions(); httpErr == nil {
			if !energy {
				httpErr = checkScoringCost(opts)
			}
			if httpErr == nil {
				s.serveCached(w, r, endpoint, req.fingerprint(kind, opts), req, simCost(kind, opts),
					func(ctx context.Context) ([]byte, error) {
						return run(ctx, req, opts)
					})
				return
			}
		}
	}
	s.writeError(w, httpErr)
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	s.servePartition(w, r, false, func(ctx context.Context, req *PartitionRequest, opts hybridpart.Options) ([]byte, error) {
		eng, err := hybridpart.NewEngine(
			hybridpart.WithOptions(opts),
			hybridpart.WithWorkers(s.cfg.Workers),
		)
		if err != nil {
			return nil, err
		}
		var res *hybridpart.Result
		if req.Benchmark != "" {
			app, prof, err := profileBenchmark(ctx, req.Benchmark, req.Seed)
			if err != nil {
				return nil, err
			}
			res, err = eng.PartitionProfiled(ctx, app, prof)
			if err != nil {
				return nil, err
			}
		} else {
			wl, err := buildSourceWorkload(ctx, req)
			if err != nil {
				return nil, err
			}
			if res, err = eng.Partition(ctx, wl); err != nil {
				return nil, err
			}
		}
		s.recordSimStats(res.SimStats)
		return MarshalResult(res)
	})
}

func (s *Server) handlePartitionEnergy(w http.ResponseWriter, r *http.Request) {
	s.servePartition(w, r, true, func(ctx context.Context, req *PartitionRequest, opts hybridpart.Options) ([]byte, error) {
		eng, err := hybridpart.NewEngine(
			hybridpart.WithOptions(opts),
			hybridpart.WithEnergyBudget(req.EnergyBudget),
		)
		if err != nil {
			return nil, err
		}
		var res *hybridpart.EnergyResult
		if req.Benchmark != "" {
			app, prof, err := profileBenchmark(ctx, req.Benchmark, req.Seed)
			if err != nil {
				return nil, err
			}
			res, err = eng.PartitionEnergyProfiled(ctx, app, prof)
			if err != nil {
				return nil, err
			}
		} else {
			wl, err := buildSourceWorkload(ctx, req)
			if err != nil {
				return nil, err
			}
			if res, err = eng.PartitionEnergy(ctx, wl); err != nil {
				return nil, err
			}
		}
		return MarshalEnergyResult(res)
	})
}

// handleSimulate runs the discrete-event co-simulator: the request's
// workload is partitioned with the resolved knob set (the analytical
// model), then its profiled trace replays against both the all-FPGA
// baseline and the partitioned mapping under the requested frames/ports/
// prefetch. Responses are fingerprint-cached and coalesced exactly like
// /v1/partition, and a cache hit is byte-identical to Engine.Simulate's
// wire encoding of the same run.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest("malformed request body: "+err.Error()))
		return
	}
	if httpErr := req.validate(); httpErr != nil {
		s.writeError(w, httpErr)
		return
	}
	opts, httpErr := req.resolveOptions()
	if httpErr != nil {
		s.writeError(w, httpErr)
		return
	}
	normalizeSimOptions(&opts)
	// The sim knobs were folded into opts by resolveOptions (the one
	// fingerprinted location), so the engine's configuration already is the
	// requested operating point — no per-call SimOptions needed.
	if httpErr := checkScoringCost(opts); httpErr != nil {
		s.writeError(w, httpErr)
		return
	}
	s.serveCached(w, r, "/v1/simulate", req.fingerprint(opts), &req, simCost("simulate", opts),
		func(ctx context.Context) ([]byte, error) {
			eng, err := hybridpart.NewEngine(
				hybridpart.WithOptions(opts),
				hybridpart.WithWorkers(s.cfg.Workers),
			)
			if err != nil {
				return nil, err
			}
			var rep *hybridpart.SimReport
			if req.Benchmark != "" {
				app, prof, err := profileBenchmark(ctx, req.Benchmark, req.Seed)
				if err != nil {
					return nil, err
				}
				rep, err = eng.SimulateProfiled(ctx, app, prof)
				if err != nil {
					return nil, err
				}
			} else {
				wl, err := buildSourceWorkload(ctx, &req.PartitionRequest)
				if err != nil {
					return nil, err
				}
				if rep, err = eng.Simulate(ctx, wl); err != nil {
					return nil, err
				}
			}
			return MarshalSimReport(rep)
		})
}

// handleSweep evaluates a design-space sweep. The plain path runs the grid
// and returns the full ResultSet as JSON; when the client sends
// Accept: text/event-stream the response is an SSE stream of "cell" frames
// (hybridpart.CellEvent, in expansion order) terminated by one "result"
// frame carrying the ResultSet — or an "error" frame, since the SSE status
// line is already committed when a mid-grid failure surfaces. Sweeps are
// not cached: grids are arbitrarily large and already amortize
// compile+profile through the process-wide benchmark profile cache.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec hybridpart.SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, badRequest("malformed request body: "+err.Error()))
		return
	}
	if err := spec.Validate(); err != nil {
		s.writeError(w, badRequest(err.Error()))
		return
	}
	// The grid is allocated up front by the exploration engine, so its size
	// must be bounded before expansion — a kilobyte of axes can otherwise
	// demand gigabytes of outcome storage.
	if n := spec.NumPoints(); n > maxSweepPoints {
		s.writeError(w, badRequest(fmt.Sprintf("sweep grid has %d cells, limit is %d", n, maxSweepPoints)))
		return
	}
	// Per-cell frame counts are capped like /v1/simulate's — each frame
	// replays the whole profiled trace.
	for _, f := range spec.Frames {
		if f > maxSimFrames {
			s.writeError(w, badRequest(fmt.Sprintf("frames axis value %d exceeds the per-cell limit %d", f, maxSimFrames)))
			return
		}
	}
	// Sim-aware accounting: cells × frames (× a trajectory factor for
	// sim-objective cells), not cells — the sim axes are work multipliers,
	// so a grid that fits the cell cap can still be unprocessable.
	if c := spec.SimulationCost(); c > maxSweepCost {
		s.writeError(w, &httpError{status: http.StatusUnprocessableEntity,
			msg: fmt.Sprintf("sweep costs %d trace replays (cells x frames, sim-objective cells weighted), limit is %d", c, maxSweepCost)})
		return
	}
	for _, b := range spec.Benchmarks {
		if !hybridpart.IsBenchmark(b) {
			s.writeError(w, notFound(fmt.Sprintf("unknown benchmark %q (have %v)", b, hybridpart.Benchmarks())))
			return
		}
	}
	for _, p := range spec.Presets {
		if _, err := hybridpart.OptionsFor(p); err != nil {
			s.writeError(w, notFound(err.Error()))
			return
		}
	}
	// The operator's -workers flag is an upper bound on every sweep's pool:
	// a client may ask for fewer workers, never more (and silence means
	// "the server's bound").
	if s.cfg.Workers > 0 && (spec.Workers <= 0 || spec.Workers > s.cfg.Workers) {
		spec.Workers = s.cfg.Workers
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()

	// Accept headers routinely carry lists and parameters
	// ("text/event-stream, */*", ";charset=..."), so match the media type
	// anywhere in the header rather than exactly.
	stream := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	var engineOpts []hybridpart.Option
	// The metrics middleware always wraps the writer in a statusWriter,
	// whose Flush no-ops when the underlying writer cannot flush (frames
	// then arrive buffered, which is still a valid SSE body).
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	if stream {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		engineOpts = append(engineOpts, hybridpart.WithObserver(func(ev hybridpart.Event) {
			// Observer delivery is serialized by the engine, so writes to
			// the response cannot interleave. Cells stream as "cell" frames;
			// simulated cells additionally stream their per-frame progress
			// as "sim" frames (tagged with the cell index), each run
			// arriving in expansion order right before its cell.
			switch ev.(type) {
			case hybridpart.CellEvent, hybridpart.SimEvent:
			default:
				return
			}
			if err := hybridpart.WriteSSE(w, ev); err != nil {
				cancel() // client went away: abandon the sweep
				return
			}
			flush()
		}))
	}
	eng, err := hybridpart.NewEngine(engineOpts...)
	if err != nil {
		s.writeError(w, runError(err))
		return
	}
	rs, err := eng.Sweep(ctx, spec)
	if stream {
		if err != nil {
			data, _ := json.Marshal(ErrorJSON{Error: err.Error()})
			fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
		} else {
			data, _ := json.Marshal(rs)
			fmt.Fprintf(w, "event: result\ndata: %s\n\n", data)
		}
		flush()
		return
	}
	if err != nil {
		s.writeError(w, runError(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rs.WriteJSON(w)
}
