package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// GET /metrics — Prometheus text exposition, rendered without any
// dependency: the same counters /debug/stats reports, shaped for a
// scraper. Cache hit/miss/coalesce/eviction counters, entry and byte
// gauges, per-endpoint request/error/in-flight series and latency
// histograms, per-endpoint × per-stage histograms derived from finished
// traces, cluster forward/fallback counters, admission shed/token series,
// and runtime-telemetry gauges.
//
// The default scrape is format 0.0.4. A client sending
// Accept: application/openmetrics-text gets the OpenMetrics flavor
// instead: the same families plus bucket exemplars on the stage
// histograms — each populated bucket carries the trace ID of a request
// that landed in it, resolvable at /debug/traces/{id} — and a trailing
// # EOF marker.

// latencyBuckets are the histogram upper bounds in seconds. The spread
// covers both regimes the service sees: microsecond cache hits and
// multi-second sim-objective misses. +Inf is implicit (the overflow slot
// in endpointMetrics).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// bucketIndex maps one observation to its latencyBucket slot: the first
// bound >= secs, or the trailing +Inf slot. The endpointMetrics array is
// sized len(latencyBuckets)+1 for exactly this.
func bucketIndex(secs float64) int {
	return sort.SearchFloat64s(latencyBuckets, secs)
}

// openMetricsType is the Accept media type that switches the scrape to
// the OpenMetrics flavor (exemplars, trailing # EOF).
const openMetricsType = "application/openmetrics-text"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), openMetricsType) {
		w.Header().Set("Content-Type", openMetricsType+"; version=1.0.0; charset=utf-8")
		s.writeMetrics(w, true)
		io.WriteString(w, "# EOF\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w, false)
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promMetric emits one full metric family: HELP, TYPE, then each
// (labels, value) sample. Labels render in the order given. A sample's
// exemplar (OpenMetrics scrapes only) is appended after the value.
func promMetric(w io.Writer, name, typ, help string, samples []promSample) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		if s.labels == "" {
			fmt.Fprintf(w, "%s %s%s\n", name+s.suffix, s.value, s.exemplar)
		} else {
			fmt.Fprintf(w, "%s{%s} %s%s\n", name+s.suffix, s.labels, s.value, s.exemplar)
		}
	}
}

type promSample struct {
	suffix   string // "", "_bucket", "_sum", "_count"
	labels   string // rendered label pairs, no braces
	value    string
	exemplar string // rendered " # {trace_id=...} v ts", or ""
}

func one(value string) []promSample { return []promSample{{value: value}} }

// writeMetrics renders every family. openMetrics additionally attaches
// exemplars to the stage-histogram buckets (0.0.4 scrapers reject them).
func (s *Server) writeMetrics(w io.Writer, openMetrics bool) {
	cs := s.results.Stats()
	promMetric(w, "hservd_cache_hits_total", "counter",
		"Result-cache lookups served from a stored entry.", one(fmt.Sprint(cs.Hits)))
	promMetric(w, "hservd_cache_misses_total", "counter",
		"Result-cache lookups that ran the engine.", one(fmt.Sprint(cs.Misses)))
	promMetric(w, "hservd_cache_coalesced_total", "counter",
		"Lookups that joined an in-flight computation (singleflight savings).", one(fmt.Sprint(cs.Coalesced)))
	promMetric(w, "hservd_cache_evictions_total", "counter",
		"Entries dropped to enforce the store's capacity bound.", one(fmt.Sprint(cs.Evictions)))
	promMetric(w, "hservd_cache_entries", "gauge",
		"Entries currently stored.", one(fmt.Sprint(cs.Size)))
	if cs.Capacity > 0 {
		promMetric(w, "hservd_cache_capacity_entries", "gauge",
			"Entry-count bound of the store (entry-bounded stores only).", one(fmt.Sprint(cs.Capacity)))
	}
	if cs.CapacityBytes > 0 {
		promMetric(w, "hservd_store_size_bytes", "gauge",
			"Bytes currently stored (byte-bounded stores only).", one(fmt.Sprint(cs.SizeBytes)))
		promMetric(w, "hservd_store_capacity_bytes", "gauge",
			"Byte bound of the store (byte-bounded stores only).", one(fmt.Sprint(cs.CapacityBytes)))
		promMetric(w, "hservd_store_corrupt_total", "counter",
			"Stored entries dropped after failing verification on read.", one(fmt.Sprint(cs.Corrupt)))
	}

	// Per-endpoint series, endpoints in sorted order so scrapes are
	// deterministic and diffable.
	names := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	row := func(get func(m *endpointMetrics) string) []promSample {
		out := make([]promSample, 0, len(names))
		for _, name := range names {
			out = append(out, promSample{labels: `endpoint="` + name + `"`, value: get(s.metrics[name])})
		}
		return out
	}
	promMetric(w, "hservd_requests_total", "counter", "Requests received, by endpoint.",
		row(func(m *endpointMetrics) string { return fmt.Sprint(m.requests.Load()) }))
	promMetric(w, "hservd_errors_total", "counter", "Non-2xx/3xx responses, by endpoint.",
		row(func(m *endpointMetrics) string { return fmt.Sprint(m.errors.Load()) }))
	promMetric(w, "hservd_in_flight", "gauge", "Requests currently being served, by endpoint.",
		row(func(m *endpointMetrics) string { return fmt.Sprint(m.inFlight.Load()) }))
	promMetric(w, "hservd_endpoint_cache_hits_total", "counter",
		"Requests served from the result cache, by endpoint.",
		row(func(m *endpointMetrics) string { return fmt.Sprint(m.cacheHits.Load()) }))
	promMetric(w, "hservd_endpoint_cache_misses_total", "counter",
		"Requests that ran the engine, by endpoint.",
		row(func(m *endpointMetrics) string { return fmt.Sprint(m.cacheMisses.Load()) }))

	var hist []promSample
	for _, name := range names {
		m := s.metrics[name]
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += m.latencyBucket[i].Load()
			hist = append(hist, promSample{
				suffix: "_bucket",
				labels: fmt.Sprintf(`endpoint=%q,le=%q`, name, promFloat(le)),
				value:  fmt.Sprint(cum),
			})
		}
		cum += m.latencyBucket[len(latencyBuckets)].Load()
		hist = append(hist,
			promSample{suffix: "_bucket", labels: fmt.Sprintf(`endpoint=%q,le="+Inf"`, name), value: fmt.Sprint(cum)},
			promSample{suffix: "_sum", labels: fmt.Sprintf(`endpoint=%q`, name),
				value: promFloat(float64(m.latencySum.Load()) / 1e6)},
			promSample{suffix: "_count", labels: fmt.Sprintf(`endpoint=%q`, name), value: fmt.Sprint(cum)},
		)
	}
	promMetric(w, "hservd_request_duration_seconds", "histogram",
		"Request latency, by endpoint.", hist)

	s.writeStageMetrics(w, openMetrics)

	if cl := s.cluster; cl != nil {
		promMetric(w, "hservd_cluster_peers", "gauge",
			"Replicas in the consistent-hash ring.", one(fmt.Sprint(len(cl.ring.Nodes()))))
		promMetric(w, "hservd_cluster_forwards_total", "counter",
			"Requests forwarded to their owning replica.", one(fmt.Sprint(cl.forwards.Load())))
		promMetric(w, "hservd_cluster_forward_fallbacks_total", "counter",
			"Forwards that failed over to local computation (owner unreachable).", one(fmt.Sprint(cl.fallbacks.Load())))
		promMetric(w, "hservd_cluster_forwarded_received_total", "counter",
			"Forwarded requests served here as the owner.", one(fmt.Sprint(cl.received.Load())))
		promMetric(w, "hservd_cluster_relay_truncated_total", "counter",
			"Relayed responses cut short by a mid-response peer disconnect.", one(fmt.Sprint(cl.relayTruncated.Load())))
	}
	if b := s.admit; b != nil {
		promMetric(w, "hservd_admission_shed_total", "counter",
			"Requests shed with 429 by cost-based admission control.", one(fmt.Sprint(b.shed.Load())))
		promMetric(w, "hservd_admission_tokens", "gauge",
			"Simulated-cost units currently available.", one(promFloat(b.level())))
		promMetric(w, "hservd_admission_budget_units", "gauge",
			"Configured simulated-cost units per second (bucket capacity).", one(promFloat(b.burst)))
	}

	if t := s.tracer; t != nil {
		ts := t.Stats()
		promMetric(w, "hservd_trace_ring_depth", "gauge",
			"Finished traces currently held in the in-memory ring.", one(fmt.Sprint(ts.Depth)))
		promMetric(w, "hservd_trace_ring_capacity", "gauge",
			"Bound of the finished-trace ring.", one(fmt.Sprint(ts.Capacity)))
		promMetric(w, "hservd_trace_dropped_total", "counter",
			"Finished traces evicted from the ring to admit newer ones.", one(fmt.Sprint(ts.DroppedTraces)))
		promMetric(w, "hservd_trace_spans_dropped_total", "counter",
			"Spans discarded by the per-trace span bound.", one(fmt.Sprint(ts.DroppedSpans)))
		promMetric(w, "hservd_trace_spans_total", "counter",
			"Spans recorded locally (peer-merged reads never count).", one(fmt.Sprint(ts.Spans)))
		promMetric(w, "hservd_trace_retention_total", "counter",
			"Tail-sampling retention decisions by policy (kept_error, kept_slow, sampled_out).",
			[]promSample{
				{labels: `policy="kept_error"`, value: fmt.Sprint(ts.KeptError)},
				{labels: `policy="kept_slow"`, value: fmt.Sprint(ts.KeptSlow)},
				{labels: `policy="sampled_out"`, value: fmt.Sprint(ts.SampledOut)},
			})
	}

	if c := s.telemetry; c != nil {
		if sample, ok := c.Latest(); ok {
			promMetric(w, "hservd_runtime_heap_bytes", "gauge",
				"Live heap bytes at the latest telemetry sample.", one(fmt.Sprint(sample.HeapBytes)))
			promMetric(w, "hservd_runtime_heap_objects", "gauge",
				"Live heap objects at the latest telemetry sample.", one(fmt.Sprint(sample.HeapObjects)))
			promMetric(w, "hservd_runtime_goroutines", "gauge",
				"Goroutines at the latest telemetry sample.", one(fmt.Sprint(sample.Goroutines)))
			promMetric(w, "hservd_runtime_gc_cycles_total", "counter",
				"Completed GC cycles since process start.", one(fmt.Sprint(sample.GCCycles)))
			promMetric(w, "hservd_runtime_gc_pause_p99_seconds", "gauge",
				"p99 GC stop-the-world pause over the latest telemetry interval.", one(promFloat(sample.GCPauseP99)))
			promMetric(w, "hservd_runtime_sched_latency_p99_seconds", "gauge",
				"p99 goroutine scheduling latency over the latest telemetry interval.", one(promFloat(sample.SchedLatencyP99)))
		}
		promMetric(w, "hservd_telemetry_samples", "gauge",
			"Telemetry samples currently retained.", one(fmt.Sprint(len(c.Samples()))))
	}

	sim := []struct {
		name string
		v    int64
	}{
		{"scored", s.simScoring.scored.Load()},
		{"replays", s.simScoring.replays.Load()},
		{"pruned", s.simScoring.pruned.Load()},
		{"parallel", s.simScoring.parallel.Load()},
		{"memo_hits", s.simScoring.memoHits.Load()},
	}
	samples := make([]promSample, 0, len(sim))
	for _, v := range sim {
		samples = append(samples, promSample{labels: `kind="` + v.name + `"`, value: fmt.Sprint(v.v)})
	}
	promMetric(w, "hservd_sim_scoring_total", "counter",
		"Simulated-objective candidate-scoring counters, summed over engine runs.", samples)
}

// writeStageMetrics renders the span-derived per-endpoint × per-stage
// latency histograms. On OpenMetrics scrapes each populated bucket carries
// an exemplar linking it to a retained trace.
func (s *Server) writeStageMetrics(w io.Writer, openMetrics bool) {
	if s.stages == nil {
		return
	}
	bounds := s.stages.Buckets()
	var hist []promSample
	for _, snap := range s.stages.Snapshot() {
		labels := func(extra string) string {
			return fmt.Sprintf(`endpoint=%q,stage=%q%s`, snap.Endpoint, snap.Stage, extra)
		}
		cum := int64(0)
		for i := range snap.Counts {
			cum += snap.Counts[i]
			le := "+Inf"
			if i < len(bounds) {
				le = promFloat(bounds[i])
			}
			sp := promSample{
				suffix: "_bucket",
				labels: labels(fmt.Sprintf(`,le=%q`, le)),
				value:  fmt.Sprint(cum),
			}
			if openMetrics && snap.Counts[i] > 0 && snap.Exemplars[i].TraceID != "" {
				ex := snap.Exemplars[i]
				sp.exemplar = fmt.Sprintf(` # {trace_id=%q} %s %.3f`, ex.TraceID, promFloat(ex.Value), ex.Unix)
			}
			hist = append(hist, sp)
		}
		hist = append(hist,
			promSample{suffix: "_sum", labels: labels(""), value: promFloat(snap.Sum)},
			promSample{suffix: "_count", labels: labels(""), value: fmt.Sprint(snap.Count)},
		)
	}
	promMetric(w, "hservd_stage_duration_seconds", "histogram",
		"Stage-span latency derived from finished traces, by endpoint and stage.", hist)
}
