package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"hybridpart"
)

// fakeClock drives a tokenBucket deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeBucket(rate float64) (*tokenBucket, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := &tokenBucket{rate: rate, burst: rate, now: clk.now}
	b.tokens = b.burst
	b.last = clk.t
	return b, clk
}

func TestTokenBucketRefill(t *testing.T) {
	b, clk := newFakeBucket(10)
	if ok, _ := b.take(10); !ok {
		t.Fatal("full bucket rejected its own capacity")
	}
	if ok, retry := b.take(1); ok {
		t.Fatal("empty bucket admitted")
	} else if retry != time.Second {
		// Deficit is 0.1s of refill but Retry-After is clamped to 1s.
		t.Fatalf("retry = %v, want 1s floor", retry)
	}
	clk.advance(time.Second)
	if ok, _ := b.take(10); !ok {
		t.Fatal("bucket did not refill after a full period")
	}
	if got := b.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestTokenBucketRetryAfterScalesWithDeficit(t *testing.T) {
	b, _ := newFakeBucket(2)
	if ok, _ := b.take(2); !ok {
		t.Fatal("capacity take rejected")
	}
	// Need 2 tokens at 2/sec from empty: 1s. Clamp does not apply.
	if ok, retry := b.take(2); ok || retry != time.Second {
		t.Fatalf("ok=%v retry=%v, want rejected after 1s", ok, retry)
	}
}

func TestTokenBucketOverBurstAlwaysShed(t *testing.T) {
	b, clk := newFakeBucket(4)
	clk.advance(time.Hour) // fully refilled, still must shed
	ok, retry := b.take(5)
	if ok {
		t.Fatal("cost over capacity admitted")
	}
	// The hint is a full refill of the cost: 5 units at 4/sec = 1.25s.
	if retry != 1250*time.Millisecond {
		t.Fatalf("retry = %v, want 1.25s", retry)
	}
	if got := b.level(); got != 4 {
		t.Fatalf("shed request drained tokens: level %v", got)
	}
}

func TestTokenBucketLevel(t *testing.T) {
	b, clk := newFakeBucket(10)
	b.take(6)
	if got := b.level(); got != 4 {
		t.Fatalf("level = %v, want 4", got)
	}
	clk.advance(250 * time.Millisecond)
	if got := b.level(); got != 6.5 {
		t.Fatalf("level = %v, want 6.5", got)
	}
	clk.advance(time.Hour)
	if got := b.level(); got != 10 {
		t.Fatalf("level = %v, want capacity 10", got)
	}
}

// TestSimCost prices the request classes: closed-form runs are free,
// sim-scored runs pay the trajectory factor, plain co-simulations pay
// their frame count.
func TestSimCost(t *testing.T) {
	opts := hybridpart.DefaultOptions()
	opts.Objective = hybridpart.ObjectiveModel
	if got := simCost("partition", opts); got != 0 {
		t.Fatalf("closed-form cost %d, want 0", got)
	}
	if got := simCost("simulate", opts); got != 1 {
		t.Fatalf("simulate default cost %d, want 1", got)
	}
	opts.SimFrames = 8
	if got := simCost("partition", opts); got != 8 {
		t.Fatalf("sim-knob cost %d, want 8", got)
	}
	sim := hybridpart.DefaultOptions()
	sim.Objective = hybridpart.ObjectiveSimulated
	if got, want := simCost("partition", sim), hybridpart.SimObjectiveReplayFactor; got != want {
		t.Fatalf("sim-objective cost %d, want %d", got, want)
	}
	sim.SimFrames = 4
	if got, want := simCost("partition", sim), 4*hybridpart.SimObjectiveReplayFactor; got != want {
		t.Fatalf("sim-objective frames cost %d, want %d", got, want)
	}
	rerank := hybridpart.DefaultOptions()
	rerank.Objective = hybridpart.ObjectiveModel
	rerank.RerankK = 3
	if got, want := simCost("partition", rerank), hybridpart.SimObjectiveReplayFactor; got != want {
		t.Fatalf("rerank cost %d, want %d", got, want)
	}
}

// TestAdmissionShedsSimBurst is the acceptance scenario: with a budget
// below the cost of one sim-scored run, default-objective requests are
// shed with 429 + Retry-After while closed-form requests keep succeeding.
func TestAdmissionShedsSimBurst(t *testing.T) {
	s := newTestServer(t, Config{MaxSimCost: 8})

	// A default /v1/partition request scores by simulation: cost 32 > the
	// whole budget, so it is shed no matter how long the bucket refills.
	rec := post(t, s, "/v1/partition", firBody())
	if rec.Code != 429 {
		t.Fatalf("sim request: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want whole seconds >= 1", ra)
	}
	var errBody ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
		t.Fatalf("429 body is not ErrorJSON: %v", err)
	}
	if !strings.Contains(errBody.Error, "objective") {
		t.Fatalf("shed message does not point at the cheap alternative: %q", errBody.Error)
	}

	// Closed-form work costs 0 and always lands.
	model := fmt.Sprintf(`{"source": %q, "entry": "main_fn", "constraint": 9000, "objective": "model"}`, firSrc)
	if rec := post(t, s, "/v1/partition", model); rec.Code != 200 {
		t.Fatalf("model request: status %d: %s", rec.Code, rec.Body.String())
	}

	// Shed responses are not cached: the retry is shed again, not served
	// a stored error.
	rec = post(t, s, "/v1/partition", firBody())
	if rec.Code != 429 {
		t.Fatalf("repeat sim request: status %d, want 429", rec.Code)
	}
	if got := s.admit.shed.Load(); got != 2 {
		t.Fatalf("shed = %d, want 2", got)
	}
	if st := s.CacheStats(); st.Size != 1 {
		t.Fatalf("store holds %d entries, want only the model result", st.Size)
	}
}

// TestAdmissionWithinBudget: a budget covering the sim cost admits the run,
// and the repeat is a free cache hit even with an empty bucket.
func TestAdmissionWithinBudget(t *testing.T) {
	s := newTestServer(t, Config{MaxSimCost: 64})
	rec := post(t, s, "/v1/partition", firBody())
	if rec.Code != 200 {
		t.Fatalf("budgeted sim request: status %d: %s", rec.Code, rec.Body.String())
	}
	// 64 - 32 = 32 left; a second distinct sim request drains it.
	other := fmt.Sprintf(`{"source": %q, "entry": "main_fn", "constraint": 9001}`, firSrc)
	if rec := post(t, s, "/v1/partition", other); rec.Code != 200 {
		t.Fatalf("second sim request: status %d", rec.Code)
	}
	// Bucket is (near) empty, but hits cost nothing.
	rec = post(t, s, "/v1/partition", firBody())
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("hit on empty bucket: status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestSimulateAdmission: /v1/simulate pays its frame count, so a frames
// burst over the budget is shed while a cheap operating point is admitted.
func TestSimulateAdmission(t *testing.T) {
	s := newTestServer(t, Config{MaxSimCost: 8})
	cheap := fmt.Sprintf(`{"source": %q, "entry": "main_fn", "constraint": 9000, "frames": 2}`, firSrc)
	if rec := post(t, s, "/v1/simulate", cheap); rec.Code != 200 {
		t.Fatalf("cheap simulate: status %d: %s", rec.Code, rec.Body.String())
	}
	costly := fmt.Sprintf(`{"source": %q, "entry": "main_fn", "constraint": 9000, "frames": 64}`, firSrc)
	if rec := post(t, s, "/v1/simulate", costly); rec.Code != 429 {
		t.Fatalf("costly simulate: status %d, want 429", rec.Code)
	}
}
