package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hybridpart/internal/cluster"
	"hybridpart/internal/store"
)

// swapHandler lets an httptest.Server start before the *Server it fronts
// exists: replica URLs must be known to build each replica's Config, so the
// handlers are bound after both listeners are up.
type swapHandler struct{ h atomic.Pointer[Server] }

func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s := sw.h.Load(); s != nil {
		s.ServeHTTP(w, r)
		return
	}
	http.Error(w, "replica not ready", http.StatusServiceUnavailable)
}

// newFleet starts n replicas (httptest listeners + fleet-mode Servers that
// all share the same peer list) and returns their base URLs and Servers.
func newFleet(t *testing.T, n int) ([]string, []*Server) {
	t.Helper()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = New(Config{Self: urls[i], Peers: urls})
		swaps[i].h.Store(servers[i])
	}
	return urls, servers
}

// modelBodyOwnedBy walks constraint values until it finds a request whose
// fingerprint the given ring member owns, returning the JSON body and key.
// Model-objective so the fleet tests never pay for a simulation run.
func modelBodyOwnedBy(t *testing.T, ring *cluster.Ring, node string) (string, string) {
	t.Helper()
	for c := int64(9000); c < 9200; c++ {
		req := &PartitionRequest{Source: firSrc, Objective: "model", Constraint: c}
		opts, herr := req.resolveOptions()
		if herr != nil {
			t.Fatalf("resolveOptions: %v", herr)
		}
		key := req.fingerprint("partition", opts)
		if ring.Owner(key) == cluster.NormalizeNode(node) {
			body := fmt.Sprintf(`{"source": %q, "objective": "model", "constraint": %d}`, firSrc, c)
			return body, key
		}
	}
	t.Fatalf("no constraint in [9000,9200) hashes onto %s", node)
	return "", ""
}

// httpPost posts a JSON body to a live replica over real HTTP (forwarding
// needs a reachable owner, so recorders are not enough here).
func httpPost(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s%s: %v", url, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// TestClusterCrossReplicaHit is the acceptance scenario: a request posted to
// the non-owning replica is forwarded to the owner and a repeat — to either
// replica — is a byte-identical cache hit computed exactly once.
func TestClusterCrossReplicaHit(t *testing.T) {
	urls, servers := newFleet(t, 2)
	ring := cluster.NewRing(urls, 0)
	body, key := modelBodyOwnedBy(t, ring, urls[1])
	owner, ownerSrv := urls[1], servers[1]
	nonOwner, nonOwnerSrv := urls[0], servers[0]
	if ring.Owner(key) != cluster.NormalizeNode(owner) {
		t.Fatal("test setup: key not owned by replica 1")
	}

	// Miss through the non-owner: forwarded, computed on the owner.
	resp, first := httpPost(t, nonOwner, "/v1/partition", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded miss: status %d: %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("forwarded miss: X-Cache %q", got)
	}
	if got := resp.Header.Get(clusterHeader); got != cluster.NormalizeNode(owner) {
		t.Fatalf("forwarded miss: %s = %q, want %q", clusterHeader, got, owner)
	}

	// Repeat through the non-owner: forwarded again, served from the
	// owner's cache, byte-identical.
	resp, second := httpPost(t, nonOwner, "/v1/partition", body)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("forwarded repeat: X-Cache %q", got)
	}
	if resp.Header.Get(clusterHeader) == "" {
		t.Fatal("forwarded repeat: missing forward marker")
	}
	if string(second) != string(first) {
		t.Fatalf("cross-replica responses differ:\n%s\n%s", first, second)
	}

	// Direct to the owner: a plain local hit, no forward marker.
	resp, third := httpPost(t, owner, "/v1/partition", body)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("owner hit: X-Cache %q", got)
	}
	if got := resp.Header.Get(clusterHeader); got != "" {
		t.Fatalf("owner served locally but marked forwarded: %q", got)
	}
	if string(third) != string(first) {
		t.Fatalf("owner response differs from forwarded response:\n%s\n%s", first, third)
	}

	// Counter accounting: two forwards from the non-owner, two received by
	// the owner, one engine run total.
	if got := nonOwnerSrv.cluster.forwards.Load(); got != 2 {
		t.Fatalf("non-owner forwards = %d, want 2", got)
	}
	if got := nonOwnerSrv.cluster.fallbacks.Load(); got != 0 {
		t.Fatalf("non-owner fallbacks = %d, want 0", got)
	}
	if got := ownerSrv.cluster.received.Load(); got != 2 {
		t.Fatalf("owner received = %d, want 2", got)
	}
	if st := ownerSrv.CacheStats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("owner cache stats %+v, want 1 miss / 2 hits", st)
	}
	if st := nonOwnerSrv.CacheStats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("non-owner touched its cache: %+v", st)
	}
}

// TestClusterForwardLoopGuard: a request that already carries the forward
// header is pinned to the local replica even when the ring says another
// replica owns it — ring disagreement can never bounce a request around.
func TestClusterForwardLoopGuard(t *testing.T) {
	self := "http://127.0.0.1:1"
	other := "http://127.0.0.1:2"
	s := newTestServer(t, Config{Self: self, Peers: []string{self, other}})
	body, _ := modelBodyOwnedBy(t, cluster.NewRing([]string{self, other}, 0), other)

	rec := postCtx(t, s, "/v1/partition", body, t.Context(), map[string]string{forwardHeader: other})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(clusterHeader); got != "" {
		t.Fatalf("guarded request re-forwarded to %q", got)
	}
	if got := s.cluster.forwards.Load(); got != 0 {
		t.Fatalf("forwards = %d, want 0", got)
	}
	if got := s.cluster.received.Load(); got != 1 {
		t.Fatalf("received = %d, want 1", got)
	}
	if st := s.CacheStats(); st.Misses != 1 {
		t.Fatalf("guarded request did not compute locally: %+v", st)
	}
}

// TestClusterFallbackWhenOwnerUnreachable: an owner that cannot be reached
// degrades the request to local computation instead of an error.
func TestClusterFallbackWhenOwnerUnreachable(t *testing.T) {
	self := "http://127.0.0.1:1"
	// TEST-NET-1 with an immediate-refusal port would hang on some stacks;
	// a closed loopback port refuses synchronously everywhere.
	dead := deadReplicaURL(t)
	s := newTestServer(t, Config{Self: self, Peers: []string{self, dead}})
	body, _ := modelBodyOwnedBy(t, cluster.NewRing([]string{self, dead}, 0), dead)

	rec := post(t, s, "/v1/partition", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache %q", got)
	}
	if got := rec.Header().Get(clusterHeader); got != "" {
		t.Fatalf("fallback response marked forwarded: %q", got)
	}
	if got := s.cluster.fallbacks.Load(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	// The repeat also falls back, and hits the local cache.
	rec = post(t, s, "/v1/partition", body)
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("fallback repeat: X-Cache %q", got)
	}
	if got := s.cluster.fallbacks.Load(); got != 2 {
		t.Fatalf("fallbacks = %d, want 2", got)
	}
}

// TestClusterFallbackWhenOwnerHangs: an owner that accepts the connection
// but never responds (black-holed) trips the per-forward deadline and
// degrades to local computation — well before the global run timeout would
// turn the request into a 504.
func TestClusterFallbackWhenOwnerHangs(t *testing.T) {
	self := "http://127.0.0.1:1"
	stop := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stop // accept, then never answer
	}))
	t.Cleanup(hung.Close)
	// Cleanups run last-in-first-out: unblock the handler before Close
	// waits on it. (The context-done channel is no release valve here —
	// the handler never reads the body, so the server may not notice the
	// forwarder hanging up.)
	t.Cleanup(func() { close(stop) })
	s := newTestServer(t, Config{
		Self:           self,
		Peers:          []string{self, hung.URL},
		ForwardTimeout: 100 * time.Millisecond,
		Timeout:        30 * time.Second,
	})
	body, _ := modelBodyOwnedBy(t, cluster.NewRing([]string{self, hung.URL}, 0), hung.URL)

	start := time.Now()
	rec := post(t, s, "/v1/partition", body)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache %q", got)
	}
	if got := rec.Header().Get(clusterHeader); got != "" {
		t.Fatalf("hung-owner response marked forwarded: %q", got)
	}
	if got := s.cluster.forwards.Load(); got != 0 {
		t.Fatalf("forwards = %d, want 0 (hop never completed)", got)
	}
	if got := s.cluster.fallbacks.Load(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	// The per-forward deadline (100ms), not the 30s run timeout, must be
	// what tripped. Generous bound: CI schedulers stall, 504s do not.
	if elapsed > 10*time.Second {
		t.Fatalf("fallback took %v; per-forward deadline did not trip", elapsed)
	}
}

// TestClusterRelayTruncated: an owner that dies mid-response cannot be
// failed over — the status line is already on the wire — but the truncated
// relay must be counted instead of disappearing silently. The peer declares
// a Content-Length it never delivers, so the relaying io.Copy sees an
// unexpected EOF.
func TestClusterRelayTruncated(t *testing.T) {
	self := "http://127.0.0.1:1"
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "4096")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"truncated`)
		// Returning short of the declared length makes the server drop the
		// connection, which the relaying client reads as unexpected EOF.
	}))
	t.Cleanup(peer.Close)
	s := newTestServer(t, Config{Self: self, Peers: []string{self, peer.URL}})
	body, _ := modelBodyOwnedBy(t, cluster.NewRing([]string{self, peer.URL}, 0), peer.URL)

	rec := post(t, s, "/v1/partition", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(clusterHeader); got == "" {
		t.Fatal("truncated relay lost its forward marker")
	}
	if got := s.cluster.forwards.Load(); got != 1 {
		t.Fatalf("forwards = %d, want 1", got)
	}
	if got := s.cluster.fallbacks.Load(); got != 0 {
		t.Fatalf("fallbacks = %d, want 0 (no failing over a started response)", got)
	}
	if got := s.cluster.relayTruncated.Load(); got != 1 {
		t.Fatalf("relayTruncated = %d, want 1", got)
	}
}

// deadReplicaURL reserves a loopback port that nothing listens on, so a
// forward to it fails fast with a connection refusal.
func deadReplicaURL(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	return url
}

// TestServerDiskRestartWarm: a server constructed over a repopulated disk
// store serves its very first repeat request as a byte-identical hit — the
// restart-warm acceptance scenario at the HTTP layer.
func TestServerDiskRestartWarm(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{"source": %q, "objective": "model", "constraint": 9000}`, firSrc)

	be, err := store.OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestServer(t, Config{Store: be})
	rec := post(t, s1, "/v1/partition", body)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first run: status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
	first := rec.Body.String()
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	be2, err := store.OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	s2 := newTestServer(t, Config{Store: be2})
	rec = post(t, s2, "/v1/partition", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("restart: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("restarted replica's first request: X-Cache %q, want hit", got)
	}
	if rec.Body.String() != first {
		t.Fatalf("restart-warm response differs:\n%s\n%s", first, rec.Body.String())
	}
	if st := s2.CacheStats(); st.Misses != 0 {
		t.Fatalf("restarted replica recomputed: %+v", st)
	}
}
