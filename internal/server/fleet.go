package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"hybridpart/internal/obs"
)

// GET /debug/fleet — one merged health document for the whole replica set,
// so a single curl answers "is any replica sick". The handler fans out to
// every peer's /debug/stats and /debug/telemetry concurrently (local-only
// reads: peers never recurse back into their own fleets) and reports
// unreachable replicas inline rather than failing the whole document.
// Outside fleet mode the document holds just this process.

// fleetPeerTimeout bounds each peer's share of the fan-out; a dead peer
// costs at most this and is reported as unhealthy.
const fleetPeerTimeout = 2 * time.Second

// FleetReplicaJSON is one replica's row of GET /debug/fleet.
type FleetReplicaJSON struct {
	Replica   string               `json:"replica"`
	Self      bool                 `json:"self,omitempty"`
	Healthy   bool                 `json:"healthy"`
	Error     string               `json:"error,omitempty"`
	Stats     *StatsJSON           `json:"stats,omitempty"`
	Telemetry *obs.TelemetrySample `json:"telemetry,omitempty"` // latest sample, when the replica collects telemetry
}

// FleetJSON is the body of GET /debug/fleet.
type FleetJSON struct {
	Self      string             `json:"self"`
	Healthy   int                `json:"healthy"`
	Unhealthy int                `json:"unhealthy"`
	Replicas  []FleetReplicaJSON `json:"replicas"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	out := FleetJSON{Self: s.selfName()}

	rows := []FleetReplicaJSON{s.localReplica()}
	if cs := s.cluster; cs != nil {
		peers := make([]string, 0, len(cs.ring.Nodes()))
		for _, peer := range cs.ring.Nodes() {
			if peer != cs.self {
				peers = append(peers, peer)
			}
		}
		sort.Strings(peers)
		peerRows := make([]FleetReplicaJSON, len(peers))
		var wg sync.WaitGroup
		for i, peer := range peers {
			wg.Add(1)
			go func(i int, peer string) {
				defer wg.Done()
				peerRows[i] = s.fetchPeerHealth(r.Context(), peer)
			}(i, peer)
		}
		wg.Wait()
		rows = append(rows, peerRows...)
	}

	for _, row := range rows {
		if row.Healthy {
			out.Healthy++
		} else {
			out.Unhealthy++
		}
	}
	out.Replicas = rows
	s.writeJSON(w, out)
}

// selfName is this replica's identity in the fleet document: its ring URL
// in fleet mode, the tracer's service name otherwise, with a static
// fallback so the document is always well-formed.
func (s *Server) selfName() string {
	if cs := s.cluster; cs != nil {
		return cs.self
	}
	if svc := s.tracer.Service(); svc != "" {
		return svc
	}
	return "hservd"
}

// localReplica assembles this process's own row without HTTP round trips.
func (s *Server) localReplica() FleetReplicaJSON {
	row := FleetReplicaJSON{
		Replica: s.selfName(),
		Self:    true,
		Healthy: true,
	}
	stats := s.statsJSON()
	row.Stats = &stats
	if sample, ok := s.telemetry.Latest(); ok {
		row.Telemetry = &sample
	}
	return row
}

// fetchPeerHealth collects one peer's stats and latest telemetry sample.
// The stats read decides health; missing telemetry (disabled on the peer,
// or an older build) degrades that field only.
func (s *Server) fetchPeerHealth(ctx context.Context, peer string) FleetReplicaJSON {
	row := FleetReplicaJSON{Replica: peer}
	var stats StatsJSON
	if err := s.fetchPeerJSON(ctx, peer+"/debug/stats", &stats); err != nil {
		row.Error = err.Error()
		return row
	}
	row.Healthy = true
	row.Stats = &stats
	var tel TelemetryJSON
	if err := s.fetchPeerJSON(ctx, peer+"/debug/telemetry", &tel); err == nil && len(tel.Samples) > 0 {
		last := tel.Samples[len(tel.Samples)-1]
		row.Telemetry = &last
	}
	return row
}

func (s *Server) fetchPeerJSON(ctx context.Context, url string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, fleetPeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &httpError{status: resp.StatusCode, msg: url + " returned " + resp.Status}
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
