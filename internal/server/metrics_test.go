package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family from a /metrics scrape.
type promFamily struct {
	typ     string
	help    string
	samples []parsedSample
}

type parsedSample struct {
	name   string // including _bucket/_sum/_count suffix
	labels map[string]string
	value  float64
}

// parsePromText is a strict-enough parser for the text exposition format
// 0.0.4: it fails the test on malformed lines, samples without a preceding
// TYPE, or unescaped label values — the things a real scraper would reject.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			families[name] = &promFamily{help: help}
			current = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if name != current {
				t.Fatalf("line %d: TYPE %s does not follow its HELP (current family %s)", ln+1, name, current)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid type %q", ln+1, typ)
			}
			families[name].typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		name, labels, value := parsePromSample(t, ln+1, line)
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		f := families[family]
		if f == nil {
			f = families[name] // plain sample of a family without suffix
		}
		if f == nil || f.typ == "" {
			t.Fatalf("line %d: sample %q without HELP/TYPE", ln+1, name)
		}
		f.samples = append(f.samples, parsedSample{name: name, labels: labels, value: value})
	}
	return families
}

func parsePromSample(t *testing.T, ln int, line string) (string, map[string]string, float64) {
	t.Helper()
	labels := map[string]string{}
	rest := line
	if open := strings.IndexByte(line, '{'); open >= 0 {
		closeIdx := strings.LastIndexByte(line, '}')
		if closeIdx < open {
			t.Fatalf("line %d: unbalanced braces: %q", ln, line)
		}
		for _, pair := range strings.Split(line[open+1:closeIdx], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = line[:open] + line[closeIdx+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		t.Fatalf("line %d: want 'name value', got %q", ln, line)
	}
	val, err := strconv.ParseFloat(fields[1], 64)
	if err != nil && fields[1] != "+Inf" {
		t.Fatalf("line %d: bad value %q: %v", ln, fields[1], err)
	}
	return fields[0], labels, val
}

func (f *promFamily) value(t *testing.T, want map[string]string) float64 {
	t.Helper()
	for _, s := range f.samples {
		if len(s.labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
			}
		}
		if match {
			return s.value
		}
	}
	t.Fatalf("no sample with labels %v", want)
	return 0
}

// TestMetricsExposition drives traffic through a budgeted fleet-mode server
// and checks the scrape: well-formed families, counters agreeing with the
// /debug/stats numbers, and coherent histograms.
func TestMetricsExposition(t *testing.T) {
	self := "http://127.0.0.1:1"
	s := newTestServer(t, Config{
		Self:       self,
		Peers:      []string{self},
		MaxSimCost: 100000,
	})
	body := fmt.Sprintf(`{"source": %q, "objective": "model", "constraint": 9000}`, firSrc)
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		if rec := post(t, s, "/v1/partition", body); rec.Code != 200 {
			t.Fatalf("partition: %d", rec.Code)
		}
	}
	if rec := post(t, s, "/v1/partition", "{"); rec.Code != 400 {
		t.Fatalf("malformed body: %d", rec.Code)
	}
	if rec := get(t, s, "/healthz"); rec.Code != 200 {
		t.Fatalf("healthz: %d", rec.Code)
	}

	rec := get(t, s, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	fams := parsePromText(t, rec.Body.String())

	for name, wantType := range map[string]string{
		"hservd_cache_hits_total":                 "counter",
		"hservd_cache_misses_total":               "counter",
		"hservd_cache_coalesced_total":            "counter",
		"hservd_cache_evictions_total":            "counter",
		"hservd_cache_entries":                    "gauge",
		"hservd_requests_total":                   "counter",
		"hservd_errors_total":                     "counter",
		"hservd_in_flight":                        "gauge",
		"hservd_request_duration_seconds":         "histogram",
		"hservd_cluster_peers":                    "gauge",
		"hservd_cluster_forwards_total":           "counter",
		"hservd_admission_shed_total":             "counter",
		"hservd_admission_tokens":                 "gauge",
		"hservd_admission_budget_units":           "gauge",
		"hservd_sim_scoring_total":                "counter",
		"hservd_endpoint_cache_hits_total":        "counter",
		"hservd_endpoint_cache_misses_total":      "counter",
		"hservd_cluster_forwarded_received_total": "counter",
	} {
		f := fams[name]
		if f == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.typ != wantType {
			t.Errorf("%s: type %q, want %q", name, f.typ, wantType)
		}
		if f.help == "" {
			t.Errorf("%s: empty HELP", name)
		}
	}

	// Counters must agree with the cache layer's own accounting.
	cs := s.CacheStats()
	if got := fams["hservd_cache_hits_total"].value(t, nil); got != float64(cs.Hits) {
		t.Errorf("cache hits: scrape %v, stats %d", got, cs.Hits)
	}
	if got := fams["hservd_cache_misses_total"].value(t, nil); got != float64(cs.Misses) {
		t.Errorf("cache misses: scrape %v, stats %d", got, cs.Misses)
	}
	part := map[string]string{"endpoint": "/v1/partition"}
	if got := fams["hservd_requests_total"].value(t, part); got != 4 {
		t.Errorf("partition requests: %v, want 4", got)
	}
	if got := fams["hservd_errors_total"].value(t, part); got != 1 {
		t.Errorf("partition errors: %v, want 1", got)
	}
	if got := fams["hservd_endpoint_cache_hits_total"].value(t, part); got != 2 {
		t.Errorf("partition cache hits: %v, want 2", got)
	}
	if got := fams["hservd_admission_budget_units"].value(t, nil); got != 100000 {
		t.Errorf("budget units: %v", got)
	}
	if got := fams["hservd_cluster_peers"].value(t, nil); got != 1 {
		t.Errorf("peers: %v", got)
	}

	// Histogram coherence per endpoint: buckets sorted and cumulative,
	// +Inf present and equal to _count.
	hist := fams["hservd_request_duration_seconds"]
	type agg struct {
		bounds []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	byEndpoint := map[string]*agg{}
	ep := func(labels map[string]string) *agg {
		a := byEndpoint[labels["endpoint"]]
		if a == nil {
			a = &agg{}
			byEndpoint[labels["endpoint"]] = a
		}
		return a
	}
	for _, smp := range hist.samples {
		switch {
		case strings.HasSuffix(smp.name, "_bucket"):
			a := ep(smp.labels)
			le := smp.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("bad le %q", le)
				}
			}
			a.bounds = append(a.bounds, bound)
			a.counts = append(a.counts, smp.value)
		case strings.HasSuffix(smp.name, "_count"):
			a := ep(smp.labels)
			a.count, a.hasCnt = smp.value, true
		}
	}
	for endpoint, a := range byEndpoint {
		if !a.hasCnt {
			t.Errorf("%s: no _count", endpoint)
			continue
		}
		if len(a.bounds) == 0 || !math.IsInf(a.bounds[len(a.bounds)-1], 1) {
			t.Errorf("%s: no +Inf bucket", endpoint)
			continue
		}
		for i := 1; i < len(a.bounds); i++ {
			if a.bounds[i] <= a.bounds[i-1] {
				t.Errorf("%s: bucket bounds not increasing at %d", endpoint, i)
			}
			if a.counts[i] < a.counts[i-1] {
				t.Errorf("%s: bucket counts not cumulative at le=%v", endpoint, a.bounds[i])
			}
		}
		if inf := a.counts[len(a.counts)-1]; inf != a.count {
			t.Errorf("%s: +Inf bucket %v != _count %v", endpoint, inf, a.count)
		}
	}
	if a := byEndpoint["/v1/partition"]; a == nil || a.count != 4 {
		t.Errorf("partition histogram count: %+v", byEndpoint["/v1/partition"])
	}
}

// TestMetricsEvictions: filling a tiny store past capacity surfaces in the
// eviction counter and the entries gauge on the scrape.
func TestMetricsEvictions(t *testing.T) {
	s := newTestServer(t, Config{CacheCapacity: 1})
	for _, c := range []int{9000, 9001, 9002} {
		body := fmt.Sprintf(`{"source": %q, "objective": "model", "constraint": %d}`, firSrc, c)
		if rec := post(t, s, "/v1/partition", body); rec.Code != 200 {
			t.Fatalf("partition %d: %d", c, rec.Code)
		}
	}
	fams := parsePromText(t, get(t, s, "/metrics").Body.String())
	if got := fams["hservd_cache_evictions_total"].value(t, nil); got != 2 {
		t.Errorf("evictions: %v, want 2", got)
	}
	if got := fams["hservd_cache_entries"].value(t, nil); got != 1 {
		t.Errorf("entries: %v, want 1", got)
	}
	if got := fams["hservd_cache_capacity_entries"].value(t, nil); got != 1 {
		t.Errorf("capacity: %v, want 1", got)
	}
}
