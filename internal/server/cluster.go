package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"hybridpart/internal/cluster"
	"hybridpart/internal/obs"
)

// Fingerprint-sharded peer routing. With Config.Self/Peers set, every
// fingerprint-keyed endpoint consults a consistent-hash ring over the
// replica set: a request whose cache key this replica does not own is
// forwarded to the owning replica over the same HTTP wire types, so N
// replicas keep one copy of each result and coalesce concurrent identical
// requests globally instead of per-process. Forwarded requests carry a
// loop-guard header — the receiving owner always serves locally — and an
// unreachable owner degrades to local computation rather than an error.

// forwardHeader marks a request as already forwarded once (value: the
// forwarding replica's self URL). Its presence pins handling to the local
// replica, so ring disagreement during a membership change can never
// bounce a request in a loop.
const forwardHeader = "X-Hybridpart-Forwarded-From"

// clusterHeader is set on responses that were served by forwarding to the
// owning replica (value: the owner's base URL).
const clusterHeader = "X-Cluster-Forwarded"

// defaultForwardTimeout bounds one forward hop when Config.ForwardTimeout is
// unset. It matches fleetPeerTimeout: a black-holed owner (accepts, never
// responds) must trip the local-fallback path within a few seconds, not hold
// the request until the global run timeout's 504.
const defaultForwardTimeout = 2 * time.Second

// clusterState is a Server's view of the fleet.
type clusterState struct {
	self   string
	ring   *cluster.Ring
	client *http.Client

	forwards       atomic.Int64 // requests this replica forwarded to an owner
	fallbacks      atomic.Int64 // forwards that failed over to local compute
	received       atomic.Int64 // forwarded requests served here as the owner
	relayTruncated atomic.Int64 // relays cut short by a mid-response peer disconnect
}

func newClusterState(self string, peers []string) *clusterState {
	return &clusterState{
		self: cluster.NormalizeNode(self),
		ring: cluster.NewRing(peers, 0),
		// Connection reuse matters here — every non-owned request crosses
		// the fleet — and timeouts ride on the per-request context, which
		// already carries the server's run timeout.
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
	}
}

// routeOwner returns the owning replica's base URL for key when the key
// must be served elsewhere: "" means "serve locally" (no cluster, we are
// the owner, or the request already forwarded once).
func (s *Server) routeOwner(r *http.Request, key string) string {
	cs := s.cluster
	if cs == nil {
		return ""
	}
	if r.Header.Get(forwardHeader) != "" {
		cs.received.Add(1)
		return ""
	}
	if owner := cs.ring.Owner(key); owner != cs.self {
		return owner
	}
	return ""
}

// forwardTimeout returns the per-forward deadline: Config.ForwardTimeout, or
// defaultForwardTimeout when unset.
func (s *Server) forwardTimeout() time.Duration {
	if s.cfg.ForwardTimeout > 0 {
		return s.cfg.ForwardTimeout
	}
	return defaultForwardTimeout
}

// tryForward relays the request to the owning replica and streams its
// response back verbatim (status, body, cache headers). It reports false
// when the owner could not be reached — connection failure, transport
// error, or no response within the per-forward deadline — in which case the
// caller serves locally; any HTTP response from the owner, including its
// error contract, is authoritative and relayed.
func (s *Server) tryForward(w http.ResponseWriter, r *http.Request, endpoint, owner string, req any) bool {
	cs := s.cluster
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	// The forward hop gets its own, much shorter deadline than the run
	// timeout: a black-holed owner must fail over to local computation in
	// seconds, not hold the request until the global 504.
	ctx, fwdCancel := context.WithTimeout(ctx, s.forwardTimeout())
	defer fwdCancel()
	// The forward hop gets its own span, and its identity rides the W3C
	// traceparent header so the owner's root span joins this trace — the
	// fleet's replicas then assemble one distributed trace for the request.
	ctx, span := obs.Start(ctx, "cluster.forward", obs.String("owner", owner), obs.String("endpoint", endpoint))
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+endpoint, bytes.NewReader(body))
	if err != nil {
		span.End()
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardHeader, cs.self)
	if tp := span.Traceparent(); tp != "" {
		preq.Header.Set("traceparent", tp)
	}
	resp, err := cs.client.Do(preq)
	if err != nil {
		span.Set(obs.Bool("reached", false), obs.String("error", err.Error()))
		span.End()
		return false
	}
	defer resp.Body.Close()
	cs.forwards.Add(1)
	span.Set(obs.Bool("reached", true), obs.Int("status", resp.StatusCode))
	defer span.End()
	for _, h := range []string{"Content-Type", "X-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(clusterHeader, owner)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line is already on the wire, so there is no falling
		// back — the client got a truncated body. Make the failure loud:
		// it is otherwise invisible on the relaying replica.
		cs.relayTruncated.Add(1)
		span.Set(obs.Bool("relay_truncated", true))
		s.logger.Warn("forward relay truncated: peer disconnected mid-response",
			"endpoint", endpoint,
			"trace", obs.SpanFrom(r.Context()).TraceID(),
			"owner", owner,
			"error", err.Error())
	}
	return true
}
