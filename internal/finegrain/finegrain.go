// Package finegrain implements the paper's mapping methodology for the
// fine-grain (embedded FPGA) part of the architecture: the temporal
// partitioning algorithm of Figure 3. DFG nodes are classified by their
// ASAP levels and assigned level by level to temporal partitions; when the
// usable area A_FPGA is exhausted, a new partition (a separate
// configuration bit-stream) is opened. Each partition pays the full
// reconfiguration time of the device.
package finegrain

import (
	"fmt"
	"sort"

	"hybridpart/internal/ir"
	"hybridpart/internal/platform"
)

// Partition is one temporal partition: a set of DFG nodes that are resident
// on the fabric simultaneously.
type Partition struct {
	// Nodes lists DFG node indices in assignment order.
	Nodes []int
	// Area is the summed operator area of the partition.
	Area int
	// Cycles is the partition's execution time in FPGA cycles (excluding
	// reconfiguration): the sum over its level groups of the group's
	// slowest operator.
	Cycles int64
	// levels records the distinct ASAP levels present (for reports).
	Levels []int
}

// Mapping is the fine-grain mapping of one basic block's DFG.
type Mapping struct {
	DFG        *ir.DFG
	Partitions []Partition
	// CyclesPerExec is the FPGA-cycle cost of one execution of the block:
	// Σ partition cycles + ReconfigCycles per partition, with a floor of
	// one cycle per execution for control-only blocks.
	CyclesPerExec int64
}

// NumPartitions returns the number of temporal partitions (configuration
// bit-streams) the block needs.
func (m *Mapping) NumPartitions() int { return len(m.Partitions) }

// MapDFG runs the Figure 3 algorithm on d under the fine-grain
// characterization fg. It fails only when a single operator exceeds A_FPGA
// (the algorithm cannot make progress then — the pseudocode would loop).
func MapDFG(d *ir.DFG, fg platform.FineGrain) (*Mapping, error) {
	m := &Mapping{DFG: d}
	if d.NumNodes() == 0 {
		// Control-only block: one cycle for the branch logic, no
		// reconfiguration (nothing is mapped).
		m.CyclesPerExec = 1
		return m, nil
	}

	cur := Partition{}
	areaCovered := 0
	flush := func() {
		if len(cur.Nodes) > 0 {
			m.Partitions = append(m.Partitions, cur)
			cur = Partition{}
		}
	}

	// Figure 3: traverse nodes level by level; same-level nodes share a
	// partition while area remains; otherwise open the next partition.
	for level := 1; level <= d.MaxLevel; level++ {
		for _, u := range d.NodesAtLevel(level) {
			sz := fg.Costs.Area(ir.ClassOf(d.Op(u)))
			if sz > fg.Area {
				return nil, fmt.Errorf(
					"finegrain: node %d (%s, %d units) exceeds A_FPGA (%d units)",
					u, d.Op(u), sz, fg.Area)
			}
			if areaCovered+sz <= fg.Area {
				cur.Nodes = append(cur.Nodes, u)
				cur.Area += sz
				areaCovered += sz
			} else {
				flush()
				cur.Nodes = append(cur.Nodes, u)
				cur.Area = sz
				areaCovered = sz
			}
		}
	}
	flush()

	// Cycle model: within a partition, same-level nodes execute in the same
	// step; a step costs the latency of its slowest operator. Every
	// partition pays the reconfiguration time.
	var total int64
	for pi := range m.Partitions {
		p := &m.Partitions[pi]
		levelCost := map[int]int{}
		for _, u := range p.Nodes {
			lat := fg.Costs.Latency(ir.ClassOf(d.Op(u)))
			lvl := d.ASAP[u]
			if lat > levelCost[lvl] {
				levelCost[lvl] = lat
			}
		}
		var cycles int64
		for lvl, c := range levelCost {
			cycles += int64(c)
			p.Levels = append(p.Levels, lvl)
		}
		sort.Ints(p.Levels)
		p.Cycles = cycles
		total += cycles + int64(fg.ReconfigCycles)
	}
	if total < 1 {
		total = 1
	}
	m.CyclesPerExec = total
	return m, nil
}

// BlockCycles maps block b of f and returns its per-execution FPGA cycles
// (t_to_FPGA(BB) in eq. 4).
func BlockCycles(f *ir.Function, b *ir.Block, fg platform.FineGrain) (int64, error) {
	mapping, err := MapDFG(ir.BuildDFG(f, b), fg)
	if err != nil {
		return 0, fmt.Errorf("finegrain: block b%d: %w", b.ID, err)
	}
	return mapping.CyclesPerExec, nil
}

// FunctionTiming is the fine-grain timing of a whole function (the CDFG is
// mapped by iterating its DFGs, as in section 3.2).
type FunctionTiming struct {
	// PerBlock[i] is the per-execution cycle cost of block i.
	PerBlock []int64
	// PartitionsPerBlock[i] is the number of temporal partitions block i
	// requires under the given A_FPGA.
	PartitionsPerBlock []int
}

// MapFunction maps every basic block of f onto the fine-grain fabric.
func MapFunction(f *ir.Function, fg platform.FineGrain) (*FunctionTiming, error) {
	ft := &FunctionTiming{
		PerBlock:           make([]int64, len(f.Blocks)),
		PartitionsPerBlock: make([]int, len(f.Blocks)),
	}
	for _, b := range f.Blocks {
		m, err := MapDFG(ir.BuildDFG(f, b), fg)
		if err != nil {
			return nil, fmt.Errorf("finegrain: block b%d: %w", b.ID, err)
		}
		ft.PerBlock[b.ID] = m.CyclesPerExec
		ft.PartitionsPerBlock[b.ID] = m.NumPartitions()
	}
	return ft, nil
}

// TotalCycles evaluates eq. 4: t_FPGA = Σ t_to_FPGA(BB_i) × Iter(BB_i) over
// the given blocks (all blocks when filter is nil).
func (ft *FunctionTiming) TotalCycles(freq []uint64, filter func(ir.BlockID) bool) int64 {
	var total int64
	for i, c := range ft.PerBlock {
		if filter != nil && !filter(ir.BlockID(i)) {
			continue
		}
		var n uint64
		if i < len(freq) {
			n = freq[i]
		}
		total += c * int64(n)
	}
	return total
}
