package finegrain

import (
	"fmt"

	"hybridpart/internal/ir"
	"hybridpart/internal/platform"
)

// PackedMapping is the fine-grain mapping of a whole CDFG with the Figure 3
// greedy applied across basic blocks: area accumulates block after block so
// that several blocks share one temporal partition (one configuration
// bit-stream). Loops whose blocks share a partition execute without any
// reconfiguration; the device reconfigures only when control transfers
// between blocks of different partitions. This is the model the
// partitioning engine uses to evaluate t_FPGA: per-execution level cycles
// (eq. 4) plus ReconfigCycles per profiled partition crossing.
type PackedMapping struct {
	// Included reports whether a block was mapped (the engine excludes
	// blocks moved to the coarse-grain data-path).
	Included []bool
	// PerBlockCycles is the per-execution cycle cost of each included
	// block, without any reconfiguration.
	PerBlockCycles []int64
	// FirstPart and LastPart give the partition holding a block's first and
	// last DFG nodes (equal unless the block straddles a boundary); for
	// blocks without nodes both report the partition in effect at that
	// point in the packing order.
	FirstPart []int
	LastPart  []int
	// InternalCrossings counts the partition boundaries inside a block
	// (LastPart−FirstPart): every execution of a straddling block pays that
	// many reconfigurations.
	InternalCrossings []int
	// NumPartitions is the number of configuration bit-streams generated.
	NumPartitions int
	// Regions is the number of independently reconfigurable regions the
	// partitions were packed for (always ≥ 1). Partition p resides in region
	// p % Regions; each partition fills one region's area, and partitions in
	// different regions coexist on the fabric.
	Regions int
}

// Region returns the reconfigurable region partition p resides in.
func (pm *PackedMapping) Region(p int) int { return p % pm.Regions }

// PackFunction maps every block of f accepted by include (nil = all) onto
// the fine-grain fabric with cross-block area packing.
func PackFunction(f *ir.Function, fg platform.FineGrain, include func(ir.BlockID) bool) (*PackedMapping, error) {
	n := len(f.Blocks)
	pm := &PackedMapping{
		Included:          make([]bool, n),
		PerBlockCycles:    make([]int64, n),
		FirstPart:         make([]int, n),
		LastPart:          make([]int, n),
		InternalCrossings: make([]int, n),
		Regions:           fg.NumRegions(),
	}
	part := 0 // current partition index (0-based)
	areaCovered := 0
	usedAny := false
	// Each temporal partition fills one reconfigurable region; with one
	// region this is the whole fabric and packing is the paper's Figure 3.
	limit := fg.RegionArea()

	for _, b := range f.Blocks {
		if include != nil && !include(b.ID) {
			pm.FirstPart[b.ID] = part
			pm.LastPart[b.ID] = part
			continue
		}
		pm.Included[b.ID] = true
		d := ir.BuildDFG(f, b)
		if d.NumNodes() == 0 {
			pm.PerBlockCycles[b.ID] = 1 // control-only sequencing
			pm.FirstPart[b.ID] = part
			pm.LastPart[b.ID] = part
			continue
		}
		usedAny = true
		first := -1
		// levelCost[partition][level] accumulation for this block.
		levelCost := map[[2]int]int{}
		for level := 1; level <= d.MaxLevel; level++ {
			for _, u := range d.NodesAtLevel(level) {
				sz := fg.Costs.Area(ir.ClassOf(d.Op(u)))
				if sz > limit {
					return nil, fmt.Errorf(
						"finegrain: block b%d node %d (%s, %d units) exceeds A_FPGA (%d units)",
						b.ID, u, d.Op(u), sz, limit)
				}
				if areaCovered+sz > limit {
					part++
					areaCovered = 0
				}
				areaCovered += sz
				if first < 0 {
					first = part
				}
				lat := fg.Costs.Latency(ir.ClassOf(d.Op(u)))
				key := [2]int{part, level}
				if lat > levelCost[key] {
					levelCost[key] = lat
				}
			}
		}
		var cycles int64
		for _, c := range levelCost {
			cycles += int64(c)
		}
		if cycles < 1 {
			cycles = 1
		}
		pm.PerBlockCycles[b.ID] = cycles
		pm.FirstPart[b.ID] = first
		pm.LastPart[b.ID] = part
		pm.InternalCrossings[b.ID] = part - first
	}
	if usedAny {
		pm.NumPartitions = part + 1
	}
	return pm, nil
}

// EdgeFreq is a profiled control-flow transition count.
type EdgeFreq struct {
	From ir.BlockID
	To   ir.BlockID
	N    uint64
}

// Crossings counts the dynamic partition crossings (region loads):
// block-internal boundaries, profiled edges whose endpoints sit in
// different partitions, and the initial configuration.
//
// With Regions > 1 the rule generalizes: a transition loads only when the
// target partition's region currently holds a different partition. A block
// straddling k partitions touches k consecutive regions, so only the
// wrap-around revisits (k − Regions of them) reload within one execution,
// and a profiled edge reconfigures only when its endpoints' partitions
// share a region — cross-region transitions find the target still resident.
// That residency assumption makes the multi-region count an optimistic
// estimate (another path may have evicted the region in between); the
// simulator tracks the per-region sequencer state exactly and is the
// authoritative multi-region cost.
func (pm *PackedMapping) Crossings(freq []uint64, edges []EdgeFreq) int64 {
	var crossings int64
	for id, inc := range pm.Included {
		if !inc {
			continue
		}
		var n uint64
		if id < len(freq) {
			n = freq[id]
		}
		// Partitions visited inside the block beyond the region count wrap
		// around and reload; with one region that is every boundary.
		if reloads := int64(pm.InternalCrossings[id]+1) - int64(pm.Regions); reloads > 0 {
			crossings += reloads * int64(n)
		}
	}
	for _, e := range edges {
		if int(e.From) >= len(pm.Included) || int(e.To) >= len(pm.Included) {
			continue
		}
		// Only transitions between two FPGA-resident blocks reconfigure the
		// fabric; while the coarse-grain data-path runs, the FPGA keeps its
		// configuration.
		if !pm.Included[e.From] || !pm.Included[e.To] {
			continue
		}
		if lp, fp := pm.LastPart[e.From], pm.FirstPart[e.To]; lp != fp && pm.Region(lp) == pm.Region(fp) {
			crossings += int64(e.N)
		}
	}
	if pm.NumPartitions > 0 {
		// Initial configuration: one load per resident region.
		if pm.NumPartitions < pm.Regions {
			crossings += int64(pm.NumPartitions)
		} else {
			crossings += int64(pm.Regions)
		}
	}
	return crossings
}

// LevelCycles evaluates the eq. 4 sum without reconfiguration: per-block
// level cycles weighted by execution frequency.
func (pm *PackedMapping) LevelCycles(freq []uint64) int64 {
	var total int64
	for id, inc := range pm.Included {
		if !inc {
			continue
		}
		var n uint64
		if id < len(freq) {
			n = freq[id]
		}
		total += pm.PerBlockCycles[id] * int64(n)
	}
	return total
}

// TotalCycles evaluates the packed fine-grain execution time: eq. 4 level
// cycles plus the per-region reconfiguration cost per dynamic crossing.
// reconfigCycles is the full-fabric cost (FineGrain.ReconfigCycles); with
// multiple regions each load swaps one region's proportionally smaller
// bitstream.
func (pm *PackedMapping) TotalCycles(freq []uint64, edges []EdgeFreq, reconfigCycles int) int64 {
	regionReconfig := int64((reconfigCycles + pm.Regions - 1) / pm.Regions)
	return pm.LevelCycles(freq) + pm.Crossings(freq, edges)*regionReconfig
}
