package finegrain

import (
	"testing"

	"hybridpart/internal/ir"
)

// twoBlockFunc builds entry(8 ALU ops) -> second(8 ALU ops) -> return.
func twoBlockFunc() *ir.Function {
	f := ir.NewFunction("two")
	x := f.NewReg("x")
	b0 := f.Block(f.Entry)
	for i := 0; i < 8; i++ {
		b0.Instrs = append(b0.Instrs, ir.Instr{Op: ir.OpAdd, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(int32(i))})
	}
	b1 := f.AddBlock("second")
	for i := 0; i < 8; i++ {
		b1.Instrs = append(b1.Instrs, ir.Instr{Op: ir.OpXor, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(int32(i))})
	}
	b0.Term = ir.Terminator{Kind: ir.TermJump, Then: b1.ID}
	b1.Term = ir.Terminator{Kind: ir.TermReturn}
	return f
}

func TestPackFunctionSharesPartitions(t *testing.T) {
	f := twoBlockFunc()
	// 16 ALU ops × 8 units = 128: fits one partition at area 200.
	pm, err := PackFunction(f, fgWith(200, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NumPartitions != 1 {
		t.Fatalf("partitions = %d, want 1", pm.NumPartitions)
	}
	if pm.FirstPart[0] != pm.FirstPart[1] {
		t.Fatalf("blocks did not share the partition: %v", pm.FirstPart)
	}
	// No crossings: total = freq-weighted level cycles + 1 initial config.
	freq := []uint64{5, 5}
	edges := []EdgeFreq{{From: 0, To: 1, N: 5}}
	got := pm.TotalCycles(freq, edges, 10)
	if want := int64(5*1+5*1) + 10; got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
}

func TestPackFunctionCrossingCharged(t *testing.T) {
	f := twoBlockFunc()
	// Area 64 holds 8 ALU ops: each block gets its own partition.
	pm, err := PackFunction(f, fgWith(64, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NumPartitions != 2 {
		t.Fatalf("partitions = %d, want 2", pm.NumPartitions)
	}
	freq := []uint64{5, 5}
	edges := []EdgeFreq{{From: 0, To: 1, N: 5}}
	got := pm.TotalCycles(freq, edges, 10)
	// 10 level cycles + (5 crossings + 1 initial) × 10 reconfig.
	if want := int64(10) + 6*10; got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
}

func TestPackFunctionStraddlingBlock(t *testing.T) {
	// One block of 8 ALU ops with area for 4: the block straddles two
	// partitions and pays an internal crossing per execution.
	f := ir.NewFunction("straddle")
	x := f.NewReg("x")
	b0 := f.Block(f.Entry)
	for i := 0; i < 8; i++ {
		b0.Instrs = append(b0.Instrs, ir.Instr{Op: ir.OpAdd, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(int32(i))})
	}
	b0.Term = ir.Terminator{Kind: ir.TermReturn}
	pm, err := PackFunction(f, fgWith(32, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm.InternalCrossings[0] != 1 {
		t.Fatalf("internal crossings = %d, want 1", pm.InternalCrossings[0])
	}
	got := pm.TotalCycles([]uint64{7}, nil, 10)
	// Per exec: 2 level-group cycles (level 1 split across two partitions)
	// + 1 internal crossing; plus 1 initial config.
	if want := int64(7*2) + (7+1)*10; got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
}

func TestPackFunctionExcludesBlocks(t *testing.T) {
	f := twoBlockFunc()
	pm, err := PackFunction(f, fgWith(64, 10), func(id ir.BlockID) bool { return id == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if pm.Included[1] {
		t.Fatal("excluded block marked included")
	}
	if pm.NumPartitions != 1 {
		t.Fatalf("partitions = %d, want 1 (half the work excluded)", pm.NumPartitions)
	}
	// Edges touching excluded blocks never charge reconfiguration.
	got := pm.TotalCycles([]uint64{5, 5}, []EdgeFreq{{From: 0, To: 1, N: 5}}, 10)
	if want := int64(5) + 10; got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
}

func TestPackFunctionEmptyAndOversize(t *testing.T) {
	f := ir.NewFunction("empty")
	f.Block(f.Entry).Term = ir.Terminator{Kind: ir.TermReturn}
	pm, err := PackFunction(f, fgWith(64, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NumPartitions != 0 {
		t.Fatalf("empty function produced %d partitions", pm.NumPartitions)
	}
	if got := pm.TotalCycles([]uint64{3}, nil, 10); got != 3 {
		t.Fatalf("TotalCycles = %d, want 3 (control only)", got)
	}

	g := ir.NewFunction("big")
	x := g.NewReg("x")
	gb := g.Block(g.Entry)
	gb.Instrs = []ir.Instr{{Op: ir.OpMul, Dst: g.NewReg(""), A: ir.Reg(x), B: ir.Reg(x)}}
	gb.Term = ir.Terminator{Kind: ir.TermReturn}
	if _, err := PackFunction(g, fgWith(16, 0), nil); err == nil {
		t.Fatal("oversized operator accepted")
	}
}

func TestPackedMoreAreaNeverSlower(t *testing.T) {
	f := twoBlockFunc()
	freq := []uint64{100, 100}
	edges := []EdgeFreq{{From: 0, To: 1, N: 100}}
	prev := int64(1 << 62)
	for _, area := range []int{32, 64, 128, 256, 1024} {
		pm, err := PackFunction(f, fgWith(area, 25), nil)
		if err != nil {
			t.Fatalf("area %d: %v", area, err)
		}
		got := pm.TotalCycles(freq, edges, 25)
		if got > prev {
			t.Fatalf("area %d slower: %d > %d", area, got, prev)
		}
		prev = got
	}
}
