package finegrain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridpart/internal/ir"
	"hybridpart/internal/platform"
)

// chainDFG builds a DFG that is a single dependence chain of n adds.
func chainDFG(n int) *ir.DFG {
	f := ir.NewFunction("chain")
	b := f.Block(f.Entry)
	r := f.NewReg("")
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpConst, Dst: r, A: ir.Imm(1)})
	for i := 0; i < n-1; i++ {
		nr := f.NewReg("")
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpAdd, Dst: nr, A: ir.Reg(r), B: ir.Imm(1)})
		r = nr
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	return ir.BuildDFG(f, b)
}

// wideDFG builds a DFG of n independent adds (all at level 1).
func wideDFG(n int) *ir.DFG {
	f := ir.NewFunction("wide")
	b := f.Block(f.Entry)
	x := f.NewReg("x")
	for i := 0; i < n; i++ {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpAdd, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(int32(i))})
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	return ir.BuildDFG(f, b)
}

// testCosts pins the characterization these tests were calibrated against
// (independent of the package default, which targets the paper benchmarks).
func testCosts() platform.OpCosts {
	return platform.OpCosts{
		AreaALU: 8, AreaMul: 32, AreaDiv: 64, AreaMem: 8,
		LatALU: 1, LatMul: 2, LatDiv: 8, LatMem: 1,
	}
}

func fgWith(area, reconfig int) platform.FineGrain {
	return platform.FineGrain{Area: area, ReconfigCycles: reconfig, Costs: testCosts()}
}

func TestMapDFGSinglePartition(t *testing.T) {
	d := wideDFG(10) // 10 ALU ops * 8 units = 80 << 1500
	m, err := MapDFG(d, fgWith(1500, 32))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPartitions() != 1 {
		t.Fatalf("partitions = %d, want 1", m.NumPartitions())
	}
	// All at level 1 → one step of ALU latency (1) + one reconfig (32).
	if m.CyclesPerExec != 1+32 {
		t.Fatalf("CyclesPerExec = %d, want 33", m.CyclesPerExec)
	}
}

func TestMapDFGAreaForcesSplit(t *testing.T) {
	// 10 ALU ops of 8 units with A_FPGA = 32: 4 nodes per partition → 3
	// partitions (Figure 3 greedy).
	d := wideDFG(10)
	m, err := MapDFG(d, fgWith(32, 10))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPartitions() != 3 {
		t.Fatalf("partitions = %d, want 3", m.NumPartitions())
	}
	// Each partition holds one level group of cost 1 plus reconfiguration.
	if m.CyclesPerExec != 3*(1+10) {
		t.Fatalf("CyclesPerExec = %d, want 33", m.CyclesPerExec)
	}
}

func TestMapDFGChainLevels(t *testing.T) {
	// A chain of 12 dependent ALU ops in ample area: 12 levels → 12 cycles
	// + 1 reconfig.
	d := chainDFG(12)
	m, err := MapDFG(d, fgWith(1500, 32))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPartitions() != 1 {
		t.Fatalf("partitions = %d, want 1", m.NumPartitions())
	}
	if m.CyclesPerExec != 12+32 {
		t.Fatalf("CyclesPerExec = %d, want 44", m.CyclesPerExec)
	}
}

func TestMapDFGMulLatencyDominatesLevel(t *testing.T) {
	// One level containing a mul (latency 2) and adds: the level costs 2.
	f := ir.NewFunction("mix")
	b := f.Block(f.Entry)
	x := f.NewReg("x")
	b.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(1)},
		{Op: ir.OpMul, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(3)},
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	m, err := MapDFG(ir.BuildDFG(f, b), fgWith(1500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.CyclesPerExec != 2 {
		t.Fatalf("CyclesPerExec = %d, want 2 (mul-dominated level)", m.CyclesPerExec)
	}
}

func TestMapDFGEmptyBlock(t *testing.T) {
	f := ir.NewFunction("empty")
	b := f.Block(f.Entry)
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	m, err := MapDFG(ir.BuildDFG(f, b), fgWith(100, 32))
	if err != nil {
		t.Fatal(err)
	}
	if m.CyclesPerExec != 1 || m.NumPartitions() != 0 {
		t.Fatalf("empty block: cycles=%d partitions=%d, want 1 and 0", m.CyclesPerExec, m.NumPartitions())
	}
}

func TestMapDFGNodeTooBig(t *testing.T) {
	f := ir.NewFunction("big")
	b := f.Block(f.Entry)
	x := f.NewReg("x")
	b.Instrs = []ir.Instr{{Op: ir.OpMul, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Reg(x)}}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	// A_FPGA below the multiplier area must be rejected, not loop.
	if _, err := MapDFG(ir.BuildDFG(f, b), fgWith(16, 0)); err == nil {
		t.Fatal("expected error for operator larger than A_FPGA")
	}
}

func TestMoreAreaNeverSlower(t *testing.T) {
	// Figure-3 behaviour: growing A_FPGA can only reduce (or keep) the
	// cycle count — the paper's Tables 2–3 rely on this.
	d := wideDFG(40)
	prev := int64(1 << 62)
	for _, area := range []int{40, 80, 160, 320, 640, 1500, 5000} {
		m, err := MapDFG(d, fgWith(area, 32))
		if err != nil {
			t.Fatalf("area %d: %v", area, err)
		}
		if m.CyclesPerExec > prev {
			t.Fatalf("area %d: cycles %d > previous %d", area, m.CyclesPerExec, prev)
		}
		prev = m.CyclesPerExec
	}
}

// randomDFGBlock builds a random straight-line block (same generator style
// as the ir tests) for property checking.
func randomDFGBlock(rng *rand.Rand, n int) *ir.DFG {
	f := ir.NewFunction("rand")
	arr := f.AddArray(ir.ArrayDecl{Name: "m", Len: 64})
	b := f.Block(f.Entry)
	seed := f.NewReg("")
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpConst, Dst: seed, A: ir.Imm(1)})
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpLoad, ir.OpStore, ir.OpShl}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		pick := func() ir.Operand { return ir.Reg(ir.RegID(rng.Intn(f.NumRegs))) }
		switch op {
		case ir.OpLoad:
			b.Instrs = append(b.Instrs, ir.Instr{Op: op, Dst: f.NewReg(""), A: pick(), Arr: arr})
		case ir.OpStore:
			b.Instrs = append(b.Instrs, ir.Instr{Op: op, A: pick(), B: pick(), Arr: arr})
		default:
			b.Instrs = append(b.Instrs, ir.Instr{Op: op, Dst: f.NewReg(""), A: pick(), B: pick()})
		}
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	return ir.BuildDFG(f, b)
}

// TestTemporalPartitionInvariants checks the Figure 3 postconditions on
// random DFGs: every node in exactly one partition, assignment follows
// non-decreasing ASAP levels, every partition within the area budget.
func TestTemporalPartitionInvariants(t *testing.T) {
	fgBase := testCosts()
	check := func(seed int64, szRaw, areaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%64) + 1
		// Area between the largest op (32) and ~4x.
		area := int(areaRaw%96) + 33
		d := randomDFGBlock(rng, n)
		fg := platform.FineGrain{Area: area, ReconfigCycles: 7, Costs: fgBase}
		m, err := MapDFG(d, fg)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		lastLevel := 0
		for _, p := range m.Partitions {
			if p.Area > fg.Area {
				t.Logf("partition area %d > %d", p.Area, fg.Area)
				return false
			}
			sum := 0
			for _, u := range p.Nodes {
				if seen[u] {
					t.Logf("node %d assigned twice", u)
					return false
				}
				seen[u] = true
				if d.ASAP[u] < lastLevel {
					t.Logf("ASAP order violated at node %d", u)
					return false
				}
				lastLevel = d.ASAP[u]
				sum += fg.Costs.Area(ir.ClassOf(d.Op(u)))
			}
			if sum != p.Area {
				t.Logf("partition area mismatch: %d != %d", sum, p.Area)
				return false
			}
		}
		if len(seen) != d.NumNodes() {
			t.Logf("%d of %d nodes assigned", len(seen), d.NumNodes())
			return false
		}
		// Cycle accounting: Σ partition cycles + reconfig each.
		var want int64
		for _, p := range m.Partitions {
			want += p.Cycles + int64(fg.ReconfigCycles)
		}
		if want < 1 {
			want = 1
		}
		return m.CyclesPerExec == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMapFunctionAndEq4(t *testing.T) {
	f := ir.NewFunction("two")
	x := f.NewReg("x")
	b0 := f.Block(f.Entry)
	b0.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(1)},
	}
	b1 := f.AddBlock("second")
	b1.Instrs = []ir.Instr{
		{Op: ir.OpMul, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Reg(x)},
		{Op: ir.OpMul, Dst: f.NewReg(""), A: ir.Reg(x), B: ir.Imm(3)},
	}
	b0.Term = ir.Terminator{Kind: ir.TermJump, Then: b1.ID}
	b1.Term = ir.Terminator{Kind: ir.TermReturn}

	fg := fgWith(1500, 10)
	ft, err := MapFunction(f, fg)
	if err != nil {
		t.Fatal(err)
	}
	// b0: 1 level ALU → 1 + 10; b1: one level of muls → 2 + 10.
	if ft.PerBlock[0] != 11 || ft.PerBlock[1] != 12 {
		t.Fatalf("PerBlock = %v, want [11 12]", ft.PerBlock)
	}
	// eq. 4 with frequencies 5 and 7.
	got := ft.TotalCycles([]uint64{5, 7}, nil)
	if want := int64(5*11 + 7*12); got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
	// Filter restricted to block 1 only.
	got = ft.TotalCycles([]uint64{5, 7}, func(id ir.BlockID) bool { return id == 1 })
	if want := int64(7 * 12); got != want {
		t.Fatalf("filtered TotalCycles = %d, want %d", got, want)
	}
}
