package coarsegrain

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridpart/internal/ir"
	"hybridpart/internal/platform"
)

func cgWith(num, rows, cols, ports int) platform.CoarseGrain {
	return platform.CoarseGrain{NumCGCs: num, Rows: rows, Cols: cols, MemPorts: ports, ClockRatio: 3}
}

// buildBlock assembles a function around the given instructions.
func buildBlock(instrs []ir.Instr, numRegs int) (*ir.Function, *ir.Block) {
	f := ir.NewFunction("t")
	for i := 0; i < numRegs; i++ {
		f.NewReg("")
	}
	b := f.Block(f.Entry)
	b.Instrs = instrs
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	return f, b
}

func TestMulAddChainsInOneCycle(t *testing.T) {
	// r2 = r0*r1; r3 = r2+r0 — a classic multiply-accumulate. With a 2x2
	// CGC the steering network chains both into a single T_CGC cycle.
	f, b := buildBlock([]ir.Instr{
		{Op: ir.OpMul, Dst: 2, A: ir.Reg(0), B: ir.Reg(1)},
		{Op: ir.OpAdd, Dst: 3, A: ir.Reg(2), B: ir.Reg(0)},
	}, 4)
	s, err := MapDFG(ir.BuildDFG(f, b), cgWith(1, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Latency != 1 {
		t.Fatalf("Latency = %d, want 1 (chained multiply-add)", s.Latency)
	}
	if err := s.Validate(cgWith(1, 2, 2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestChainDepthBoundedByRows(t *testing.T) {
	// A chain of 6 dependent adds on a 2-row CGC needs ceil(6/2)=3 cycles.
	var instrs []ir.Instr
	for i := 0; i < 6; i++ {
		instrs = append(instrs, ir.Instr{Op: ir.OpAdd, Dst: ir.RegID(i + 1), A: ir.Reg(ir.RegID(i)), B: ir.Imm(1)})
	}
	f, b := buildBlock(instrs, 8)
	s, err := MapDFG(ir.BuildDFG(f, b), cgWith(1, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Latency != 3 {
		t.Fatalf("Latency = %d, want 3", s.Latency)
	}
}

func TestWidthBoundedByColsAndCGCs(t *testing.T) {
	// 8 independent adds: one 2x2 CGC retires up to 4 per cycle (2 rows can
	// both be used for independent ops) → 2 cycles; two CGCs → 1 cycle.
	var instrs []ir.Instr
	for i := 0; i < 8; i++ {
		instrs = append(instrs, ir.Instr{Op: ir.OpAdd, Dst: ir.RegID(i + 1), A: ir.Reg(0), B: ir.Imm(int32(i))})
	}
	f, b := buildBlock(instrs, 10)
	one, err := MapDFG(ir.BuildDFG(f, b), cgWith(1, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	two, err := MapDFG(ir.BuildDFG(f, b), cgWith(2, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if one.Latency != 2 || two.Latency != 1 {
		t.Fatalf("latencies = %d and %d, want 2 and 1", one.Latency, two.Latency)
	}
}

func TestMemPortsSerializeLoads(t *testing.T) {
	// Four independent loads with 2 ports → 2 cycles.
	f := ir.NewFunction("m")
	arr := f.AddArray(ir.ArrayDecl{Name: "x", Len: 16})
	b := f.Block(f.Entry)
	for i := 0; i < 4; i++ {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpLoad, Dst: f.NewReg(""), A: ir.Imm(int32(i)), Arr: arr})
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	s, err := MapDFG(ir.BuildDFG(f, b), cgWith(2, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Latency != 2 {
		t.Fatalf("Latency = %d, want 2 (port-bound)", s.Latency)
	}
	if err := s.Validate(cgWith(2, 2, 2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFeedsComputeNextCycle(t *testing.T) {
	// load r0; r1 = r0+1 — memory results are registered, so the add runs
	// in the following cycle (no chaining through the register bank).
	f := ir.NewFunction("m")
	arr := f.AddArray(ir.ArrayDecl{Name: "x", Len: 4})
	r0 := f.NewReg("")
	r1 := f.NewReg("")
	b := f.Block(f.Entry)
	b.Instrs = []ir.Instr{
		{Op: ir.OpLoad, Dst: r0, A: ir.Imm(0), Arr: arr},
		{Op: ir.OpAdd, Dst: r1, A: ir.Reg(r0), B: ir.Imm(1)},
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	s, err := MapDFG(ir.BuildDFG(f, b), cgWith(1, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Latency != 2 {
		t.Fatalf("Latency = %d, want 2", s.Latency)
	}
}

func TestUnmappableOps(t *testing.T) {
	f, b := buildBlock([]ir.Instr{
		{Op: ir.OpDiv, Dst: 2, A: ir.Reg(0), B: ir.Reg(1)},
	}, 3)
	_, err := MapDFG(ir.BuildDFG(f, b), cgWith(1, 2, 2, 2), nil)
	if !errors.Is(err, ErrUnmappable) {
		t.Fatalf("err = %v, want ErrUnmappable", err)
	}
}

func TestEmptyBlockLatency(t *testing.T) {
	f, b := buildBlock(nil, 1)
	s, err := MapDFG(ir.BuildDFG(f, b), cgWith(1, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Latency != 1 {
		t.Fatalf("Latency = %d, want 1", s.Latency)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	f, b := buildBlock([]ir.Instr{
		{Op: ir.OpMul, Dst: 2, A: ir.Reg(0), B: ir.Reg(1)},
		{Op: ir.OpAdd, Dst: 3, A: ir.Reg(2), B: ir.Reg(0)},
	}, 4)
	cg := cgWith(1, 2, 2, 2)
	s, err := MapDFG(ir.BuildDFG(f, b), cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Break the dependence: schedule the consumer before the producer.
	bad := *s
	bad.Compute = append([]Slot(nil), s.Compute...)
	for i := range bad.Compute {
		if bad.Compute[i].Node == 1 {
			bad.Compute[i].Cycle = 0
			bad.Compute[i].Row = 1
		}
		if bad.Compute[i].Node == 0 {
			bad.Compute[i].Cycle = 5
		}
	}
	if err := bad.Validate(cg); err == nil {
		t.Fatal("Validate accepted dependence violation")
	}
	// Duplicate slot.
	dup := *s
	dup.Compute = append(append([]Slot(nil), s.Compute...), s.Compute[0])
	if err := dup.Validate(cg); err == nil {
		t.Fatal("Validate accepted duplicate placement")
	}
}

// randomDFG mirrors the generator used in the finegrain tests.
func randomDFG(rng *rand.Rand, n int) *ir.DFG {
	f := ir.NewFunction("rand")
	arr := f.AddArray(ir.ArrayDecl{Name: "m", Len: 64})
	b := f.Block(f.Entry)
	seed := f.NewReg("")
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpConst, Dst: seed, A: ir.Imm(1)})
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpLoad, ir.OpStore, ir.OpShr, ir.OpLt}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		pick := func() ir.Operand { return ir.Reg(ir.RegID(rng.Intn(f.NumRegs))) }
		switch op {
		case ir.OpLoad:
			b.Instrs = append(b.Instrs, ir.Instr{Op: op, Dst: f.NewReg(""), A: pick(), Arr: arr})
		case ir.OpStore:
			b.Instrs = append(b.Instrs, ir.Instr{Op: op, A: pick(), B: pick(), Arr: arr})
		default:
			b.Instrs = append(b.Instrs, ir.Instr{Op: op, Dst: f.NewReg(""), A: pick(), B: pick()})
		}
	}
	b.Term = ir.Terminator{Kind: ir.TermReturn}
	return ir.BuildDFG(f, b)
}

// TestScheduleLegalityQuick verifies on random DFGs and data-path shapes
// that every schedule passes Validate and meets the trivial lower bounds.
func TestScheduleLegalityQuick(t *testing.T) {
	check := func(seed int64, szRaw, shapeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%80) + 1
		shapes := []platform.CoarseGrain{
			cgWith(1, 1, 1, 1), cgWith(1, 2, 2, 2), cgWith(2, 2, 2, 2),
			cgWith(3, 2, 2, 2), cgWith(1, 4, 1, 1), cgWith(2, 1, 4, 3),
		}
		cg := shapes[int(shapeRaw)%len(shapes)]
		d := randomDFG(rng, n)
		s, err := MapDFG(d, cg, nil)
		if err != nil {
			t.Logf("MapDFG: %v", err)
			return false
		}
		if err := s.Validate(cg); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		// Lower bounds: critical path / Rows (chaining) and node count /
		// total slot throughput.
		nodes := d.NumNodes()
		memOps := 0
		for i := 0; i < nodes; i++ {
			if ir.ClassOf(d.Op(i)) == ir.ClassMem {
				memOps++
			}
		}
		minByWidth := int64((nodes - memOps + cg.SlotsPerCycle() - 1) / cg.SlotsPerCycle())
		minByPorts := int64((memOps + cg.MemPorts - 1) / cg.MemPorts)
		if s.Latency < minByWidth || s.Latency < minByPorts {
			t.Logf("latency %d below lower bounds (%d, %d)", s.Latency, minByWidth, minByPorts)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreCGCsNeverSlower mirrors the Tables 2–3 expectation: adding CGCs
// cannot increase block latency.
func TestMoreCGCsNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		d := randomDFG(rng, 40)
		prev := int64(1 << 62)
		for _, num := range []int{1, 2, 3, 4} {
			s, err := MapDFG(d, cgWith(num, 2, 2, 2), nil)
			if err != nil {
				t.Fatal(err)
			}
			if s.Latency > prev {
				t.Fatalf("trial %d: %d CGCs slower (%d > %d)", trial, num, s.Latency, prev)
			}
			prev = s.Latency
		}
	}
}
