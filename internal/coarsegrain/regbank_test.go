package coarsegrain

import (
	"testing"

	"hybridpart/internal/ir"
	"hybridpart/internal/platform"
)

func cgWithBank(num, rows, cols, ports, bank int) platform.CoarseGrain {
	return platform.CoarseGrain{
		NumCGCs: num, Rows: rows, Cols: cols,
		MemPorts: ports, ClockRatio: 3, RegBankWords: bank,
	}
}

// bankFunc builds: load small[0]; load small[1]; mul; load big[0]; add.
func bankFunc() (*ir.Program, *ir.Function, *ir.Block) {
	p := ir.NewProgram()
	f := ir.NewFunction("k")
	small := f.AddArray(ir.ArrayDecl{Name: "s", Len: 64})
	bigArr := p.AddGlobal(ir.ArrayDecl{Name: "g", Len: 4096})
	a, b2, c, d, e := f.NewReg(""), f.NewReg(""), f.NewReg(""), f.NewReg(""), f.NewReg("")
	blk := f.Block(f.Entry)
	blk.Instrs = []ir.Instr{
		{Op: ir.OpLoad, Dst: a, A: ir.Imm(0), Arr: small},
		{Op: ir.OpLoad, Dst: b2, A: ir.Imm(1), Arr: small},
		{Op: ir.OpMul, Dst: c, A: ir.Reg(a), B: ir.Reg(b2)},
		{Op: ir.OpLoad, Dst: d, A: ir.Imm(0), Arr: bigArr},
		{Op: ir.OpAdd, Dst: e, A: ir.Reg(c), B: ir.Reg(d)},
	}
	blk.Term = ir.Terminator{Kind: ir.TermReturn}
	if err := p.AddFunc(f); err != nil {
		panic(err)
	}
	return p, f, blk
}

func TestRegisterBankLoadsAreFree(t *testing.T) {
	prog, f, blk := bankFunc()
	cg := cgWithBank(1, 2, 2, 1, 256)
	s, err := MapDFG(ir.BuildDFG(f, blk), cg, ArrLenOf(prog, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cg); err != nil {
		t.Fatal(err)
	}
	// The two small-array loads must be routed (no port), the big one must
	// take the port.
	if len(s.Routed) != 2 {
		t.Fatalf("routed = %d slots, want 2: %+v", len(s.Routed), s.Routed)
	}
	if len(s.Memory) != 1 {
		t.Fatalf("memory = %d slots, want 1", len(s.Memory))
	}
	// Bank-resident operands feed the multiplier in cycle 0; the big load
	// also issues at cycle 0; the add waits for it → latency 2.
	if s.Latency != 2 {
		t.Fatalf("Latency = %d, want 2", s.Latency)
	}
}

func TestRegisterBankThresholold(t *testing.T) {
	prog, f, blk := bankFunc()
	// Bank smaller than the 64-entry array: everything goes through the
	// single port → at least 3 memory cycles.
	cg := cgWithBank(1, 2, 2, 1, 32)
	s, err := MapDFG(ir.BuildDFG(f, blk), cg, ArrLenOf(prog, f))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Routed) != 0 {
		t.Fatalf("routed = %d slots, want 0", len(s.Routed))
	}
	if s.Latency < 4 {
		t.Fatalf("Latency = %d, want >= 4 (3 serialized loads + compute)", s.Latency)
	}
	if err := s.Validate(cg); err != nil {
		t.Fatal(err)
	}
}

func TestNilArrLenSendsAllToPorts(t *testing.T) {
	_, f, blk := bankFunc()
	cg := cgWithBank(1, 2, 2, 1, 1<<20)
	s, err := MapDFG(ir.BuildDFG(f, blk), cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Routed) != 0 {
		t.Fatal("nil ArrLenFunc must disable the register bank")
	}
}

func TestParamArraysNeverBankResident(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("k")
	arr := f.AddArray(ir.ArrayDecl{Name: "v", IsParam: true})
	f.Params = []ir.Param{{Name: "v", IsArray: true, Arr: arr, Reg: ir.NoReg}}
	r := f.NewReg("")
	blk := f.Block(f.Entry)
	blk.Instrs = []ir.Instr{{Op: ir.OpLoad, Dst: r, A: ir.Imm(0), Arr: arr}}
	blk.Term = ir.Terminator{Kind: ir.TermReturn}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	s, err := MapDFG(ir.BuildDFG(f, blk), cgWithBank(1, 2, 2, 1, 1<<20), ArrLenOf(p, f))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Routed) != 0 {
		t.Fatal("by-reference parameter array treated as bank-resident")
	}
}

func TestBlockCyclesHelper(t *testing.T) {
	prog, f, blk := bankFunc()
	lat, err := BlockCycles(prog, f, blk, cgWithBank(1, 2, 2, 1, 256))
	if err != nil {
		t.Fatal(err)
	}
	if lat != 2 {
		t.Fatalf("BlockCycles = %d, want 2", lat)
	}
}

func TestRoutedChainThroughBank(t *testing.T) {
	// store small[0]=x ; load small[0] ; add — the memory-order RAW edge
	// through the bank must be respected even though both accesses are
	// routed.
	p := ir.NewProgram()
	f := ir.NewFunction("k")
	small := f.AddArray(ir.ArrayDecl{Name: "s", Len: 8})
	x := f.NewReg("x")
	y := f.NewReg("")
	z := f.NewReg("")
	blk := f.Block(f.Entry)
	blk.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: y, A: ir.Reg(x), B: ir.Imm(1)},
		{Op: ir.OpStore, A: ir.Imm(0), B: ir.Reg(y), Arr: small},
		{Op: ir.OpLoad, Dst: z, A: ir.Imm(0), Arr: small},
		{Op: ir.OpMul, Dst: f.NewReg(""), A: ir.Reg(z), B: ir.Reg(z)},
	}
	blk.Term = ir.Terminator{Kind: ir.TermReturn}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	cg := cgWithBank(1, 2, 2, 2, 256)
	s, err := MapDFG(ir.BuildDFG(f, blk), cg, ArrLenOf(p, f))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(cg); err != nil {
		t.Fatal(err)
	}
	// add at cycle 0 (avail 1); store/load routed avail 1; mul needs z at
	// cycle >= 1 → latency 2.
	if s.Latency != 2 {
		t.Fatalf("Latency = %d, want 2", s.Latency)
	}
}
