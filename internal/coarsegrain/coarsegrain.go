// Package coarsegrain implements the mapping methodology for the CGC-based
// coarse-grain data-path (the authors' FPL'04 companion work the paper
// reuses in section 3.3): (a) list-based scheduling of DFG operations with
// critical-path priorities and (b) binding onto the CGCs. A CGC is an n×m
// array of nodes, each holding a multiplier and an ALU with one active per
// cycle; the steering interconnect lets data flow from row to row so a
// configured template — e.g. a multiply-accumulate chain — completes with
// unit execution delay, one T_CGC cycle.
//
// Memory model: the data-path owns a register bank. Arrays that fit in the
// bank (platform.CoarseGrain.RegBankWords) are bank-resident while the
// kernel runs, so their loads/stores are register-file accesses routed by
// the interconnect — they consume no issue slot and no extra cycle. Larger
// arrays stream through the shared-memory ports (MemPorts per cycle, one
// cycle each).
package coarsegrain

import (
	"errors"
	"fmt"
	"sort"

	"hybridpart/internal/ir"
	"hybridpart/internal/platform"
)

// ErrUnmappable reports a DFG the CGC data-path cannot execute (divisions or
// residual calls); the partitioning engine leaves such kernels on the FPGA.
var ErrUnmappable = errors.New("coarsegrain: DFG contains operations without a CGC realization")

// ArrLenFunc resolves the element count of an array reference; ok=false
// means unknown (treated as too large for the register bank). Use
// ArrLenOf to build one from a program and function.
type ArrLenFunc func(id ir.ArrID) (int32, bool)

// ArrLenOf returns an ArrLenFunc resolving against f's locals and prog's
// globals. By-reference parameter arrays report unknown size.
func ArrLenOf(prog *ir.Program, f *ir.Function) ArrLenFunc {
	return func(id ir.ArrID) (int32, bool) {
		decl, ok := prog.ArrayByRef(f, id)
		if !ok || decl.IsParam {
			return 0, false
		}
		return decl.Len, true
	}
}

// Slot places one compute operation: DFG node u executes on CGC cgc at
// (row, col) during the given cycle.
type Slot struct {
	Node  int
	Cycle int64
	CGC   int
	Row   int
	Col   int
}

// MemSlot places one shared-memory operation on a port.
type MemSlot struct {
	Node  int
	Cycle int64
	Port  int
}

// RoutedSlot records a register-bank access: it costs no resources; Avail
// is the cycle from which its value is usable.
type RoutedSlot struct {
	Node  int
	Avail int64
}

// Schedule is the scheduled-and-bound form of one DFG on the data-path.
type Schedule struct {
	DFG     *ir.DFG
	Compute []Slot
	Memory  []MemSlot
	Routed  []RoutedSlot
	// Latency is the block's execution time in T_CGC cycles (the overall
	// latency of the DFG after binding, as in [6]).
	Latency int64
}

// MapDFG schedules and binds d onto the coarse-grain data-path cg. arrLen
// resolves array sizes for the register-bank model; nil sends every memory
// operation through the shared-memory ports.
func MapDFG(d *ir.DFG, cg platform.CoarseGrain, arrLen ArrLenFunc) (*Schedule, error) {
	n := d.NumNodes()
	s := &Schedule{DFG: d}
	if n == 0 {
		s.Latency = 1 // control-only block: one cycle of sequencing
		return s, nil
	}

	isMem := make([]bool, n)
	isRouted := make([]bool, n)
	for i := 0; i < n; i++ {
		switch ir.ClassOf(d.Op(i)) {
		case ir.ClassDiv, ir.ClassCall:
			return nil, fmt.Errorf("%w: node %d is %s", ErrUnmappable, i, d.Op(i))
		case ir.ClassMem:
			isMem[i] = true
			if arrLen != nil {
				if ln, ok := arrLen(d.Block.Instrs[i].Arr); ok && int(ln) <= cg.RegBankWords {
					isRouted[i] = true
				}
			}
		}
	}

	// Priority: height — the longest path from the node to any sink.
	height := make([]int, n)
	for u := n - 1; u >= 0; u-- {
		h := 1
		for _, v := range d.Succs[u] {
			if height[v]+1 > h {
				h = height[v] + 1
			}
		}
		height[u] = h
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if height[order[i]] != height[order[j]] {
			return height[order[i]] > height[order[j]]
		}
		return order[i] < order[j]
	})

	scheduled := make([]bool, n)
	avail := make([]int64, n) // cycle from which the result is usable
	remaining := n

	// resolveRouted schedules register-bank accesses as soon as all their
	// predecessors are scheduled; they are wires with zero cost. A single
	// forward pass suffices because instruction order is topological.
	resolveRouted := func() {
		for u := 0; u < n; u++ {
			if scheduled[u] || !isRouted[u] {
				continue
			}
			ready := true
			var a int64
			for _, p := range d.Preds[u] {
				if !scheduled[p] {
					ready = false
					break
				}
				if avail[p] > a {
					a = avail[p]
				}
			}
			if !ready {
				continue
			}
			scheduled[u] = true
			avail[u] = a
			s.Routed = append(s.Routed, RoutedSlot{Node: u, Avail: a})
			remaining--
		}
	}

	var cycle int64
	for remaining > 0 {
		resolveRouted()
		if remaining == 0 {
			break
		}

		// Fill each CGC template: Rows levels of up to Cols operations, with
		// row r+1 allowed to consume row r results of the same template
		// within the same cycle (steering network, unit execution delay).
		for cgcIdx := 0; cgcIdx < cg.NumCGCs; cgcIdx++ {
			placed := map[int]int{} // node -> row within this template
			for row := 1; row <= cg.Rows; row++ {
				col := 0
				for _, u := range order {
					if col >= cg.Cols {
						break
					}
					if scheduled[u] || isMem[u] {
						continue
					}
					feasible := true
					for _, p := range d.Preds[u] {
						if scheduled[p] && avail[p] <= cycle {
							continue // registered or routed, available now
						}
						if pr, inTemplate := placed[p]; inTemplate && pr < row {
							continue // chained within this template
						}
						feasible = false
						break
					}
					if !feasible {
						continue
					}
					scheduled[u] = true
					avail[u] = cycle + 1
					placed[u] = row
					s.Compute = append(s.Compute, Slot{Node: u, Cycle: cycle, CGC: cgcIdx, Row: row, Col: col})
					col++
					remaining--
				}
			}
			// Newly finished compute may enable routed loads needed by other
			// templates next cycle; resolution happens at the next loop top.
		}

		// Shared-memory ports: operands must be available this cycle.
		port := 0
		for _, u := range order {
			if port >= cg.MemPorts {
				break
			}
			if scheduled[u] || !isMem[u] || isRouted[u] {
				continue
			}
			ready := true
			for _, p := range d.Preds[u] {
				if !scheduled[p] || avail[p] > cycle {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			scheduled[u] = true
			avail[u] = cycle + 1
			s.Memory = append(s.Memory, MemSlot{Node: u, Cycle: cycle, Port: port})
			port++
			remaining--
		}

		cycle++
		if cycle > int64(n)*4+64 {
			return nil, fmt.Errorf("coarsegrain: scheduler failed to converge on %d nodes", n)
		}
	}

	latest := int64(1)
	for u := 0; u < n; u++ {
		if avail[u] > latest {
			latest = avail[u]
		}
	}
	s.Latency = latest
	return s, nil
}

// Validate checks schedule legality: every node placed exactly once,
// dependences respected (chaining only within a CGC, row-increasing, same
// cycle; register-bank accesses are free wires), and resource caps never
// exceeded. Used by tests and as an internal sanity check.
func (s *Schedule) Validate(cg platform.CoarseGrain) error {
	d := s.DFG
	n := d.NumNodes()
	avail := make([]int64, n)
	cycleOf := make([]int64, n)
	rowOf := make([]int, n)
	cgcOf := make([]int, n)
	kind := make([]byte, n) // 0 unseen, 'c' compute, 'm' memory, 'r' routed
	for _, sl := range s.Compute {
		if sl.Node < 0 || sl.Node >= n {
			return fmt.Errorf("coarsegrain: slot names node %d of %d", sl.Node, n)
		}
		if kind[sl.Node] != 0 {
			return fmt.Errorf("coarsegrain: node %d scheduled twice", sl.Node)
		}
		kind[sl.Node] = 'c'
		cycleOf[sl.Node], rowOf[sl.Node], cgcOf[sl.Node] = sl.Cycle, sl.Row, sl.CGC
		avail[sl.Node] = sl.Cycle + 1
		if sl.Row < 1 || sl.Row > cg.Rows || sl.Col < 0 || sl.Col >= cg.Cols || sl.CGC < 0 || sl.CGC >= cg.NumCGCs {
			return fmt.Errorf("coarsegrain: slot out of bounds: %+v", sl)
		}
	}
	for _, sl := range s.Memory {
		if sl.Node < 0 || sl.Node >= n {
			return fmt.Errorf("coarsegrain: memory slot names node %d of %d", sl.Node, n)
		}
		if kind[sl.Node] != 0 {
			return fmt.Errorf("coarsegrain: node %d scheduled twice", sl.Node)
		}
		kind[sl.Node] = 'm'
		cycleOf[sl.Node] = sl.Cycle
		avail[sl.Node] = sl.Cycle + 1
		if sl.Port < 0 || sl.Port >= cg.MemPorts {
			return fmt.Errorf("coarsegrain: memory port out of range: %+v", sl)
		}
	}
	for _, sl := range s.Routed {
		if sl.Node < 0 || sl.Node >= n {
			return fmt.Errorf("coarsegrain: routed slot names node %d of %d", sl.Node, n)
		}
		if kind[sl.Node] != 0 {
			return fmt.Errorf("coarsegrain: node %d scheduled twice", sl.Node)
		}
		kind[sl.Node] = 'r'
		avail[sl.Node] = sl.Avail
	}
	for u := 0; u < n; u++ {
		if kind[u] == 0 {
			return fmt.Errorf("coarsegrain: node %d not scheduled", u)
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range d.Succs[u] {
			switch kind[v] {
			case 'r':
				if avail[v] < avail[u] {
					return fmt.Errorf("coarsegrain: routed node %d available before its input %d", v, u)
				}
			case 'm':
				if avail[u] > cycleOf[v] {
					return fmt.Errorf("coarsegrain: memory op %d issued before input %d is ready", v, u)
				}
			case 'c':
				if avail[u] <= cycleOf[v] {
					continue // registered/routed in time
				}
				// Same-cycle execution is only legal as an intra-CGC chain.
				if kind[u] == 'c' && cycleOf[u] == cycleOf[v] && cgcOf[u] == cgcOf[v] && rowOf[u] < rowOf[v] {
					continue
				}
				return fmt.Errorf("coarsegrain: dependence violated: %d -> %d", u, v)
			}
		}
	}
	// Resource caps per cycle.
	type key struct {
		cycle int64
		cgc   int
		row   int
	}
	rowUse := map[key]int{}
	for _, sl := range s.Compute {
		k := key{sl.Cycle, sl.CGC, sl.Row}
		rowUse[k]++
		if rowUse[k] > cg.Cols {
			return fmt.Errorf("coarsegrain: row overflow at %+v", k)
		}
	}
	portUse := map[int64]int{}
	for _, sl := range s.Memory {
		portUse[sl.Cycle]++
		if portUse[sl.Cycle] > cg.MemPorts {
			return fmt.Errorf("coarsegrain: memory port overflow at cycle %d", sl.Cycle)
		}
	}
	return nil
}

// BlockCycles schedules block b of f (within prog, for array resolution)
// and returns its per-execution latency in T_CGC cycles (t_to_coarse(BB)
// in eq. 3).
func BlockCycles(prog *ir.Program, f *ir.Function, b *ir.Block, cg platform.CoarseGrain) (int64, error) {
	s, err := MapDFG(ir.BuildDFG(f, b), cg, ArrLenOf(prog, f))
	if err != nil {
		return 0, err
	}
	return s.Latency, nil
}
