package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// SpanJSON is one span in the internal wire format replicas exchange when
// assembling a distributed trace (GET /debug/traces/{id}?local=1).
type SpanJSON struct {
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	StartUs  int64          `json:"start_unix_micros"`
	DurUs    int64          `json:"duration_micros"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceJSON is one service's finished trace in the internal wire format.
type TraceJSON struct {
	TraceID      string     `json:"trace_id"`
	Service      string     `json:"service"`
	Root         string     `json:"root"`
	StartUs      int64      `json:"start_unix_micros"`
	DurUs        int64      `json:"duration_micros"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Error        bool       `json:"error,omitempty"`
	Spans        []SpanJSON `json:"spans"`
}

// JSON converts a finished trace to the wire format.
func (tr *Trace) JSON() TraceJSON {
	out := TraceJSON{
		TraceID:      tr.ID.String(),
		Service:      tr.Service,
		Root:         tr.Root,
		StartUs:      tr.Start.UnixMicro(),
		DurUs:        tr.Duration.Microseconds(),
		DroppedSpans: tr.DroppedSpans,
		Error:        tr.Error,
		Spans:        make([]SpanJSON, 0, len(tr.Spans)),
	}
	for _, sp := range tr.Spans {
		sj := SpanJSON{
			SpanID:  sp.SpanID.String(),
			Name:    sp.Name,
			StartUs: sp.Start.UnixMicro(),
			DurUs:   sp.Duration.Microseconds(),
		}
		if !sp.ParentID.IsZero() {
			sj.ParentID = sp.ParentID.String()
		}
		if len(sp.Attrs) > 0 {
			sj.Attrs = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sj.Attrs[a.Key] = a.Value
			}
		}
		out.Spans = append(out.Spans, sj)
	}
	return out
}

// FromJSON rebuilds a Trace from the wire format (attribute values become
// whatever encoding/json produced — float64 for numbers — which is fine
// for re-export). It rejects a malformed trace or span ID.
func FromJSON(tj TraceJSON) (*Trace, error) {
	id, ok := ParseTraceID(tj.TraceID)
	if !ok {
		return nil, fmt.Errorf("obs: bad trace_id %q", tj.TraceID)
	}
	tr := &Trace{
		ID:           id,
		Service:      tj.Service,
		Root:         tj.Root,
		Start:        time.UnixMicro(tj.StartUs),
		Duration:     time.Duration(tj.DurUs) * time.Microsecond,
		DroppedSpans: tj.DroppedSpans,
		Error:        tj.Error,
		Spans:        make([]SpanData, 0, len(tj.Spans)),
	}
	for _, sj := range tj.Spans {
		sid, ok := ParseSpanID(sj.SpanID)
		if !ok {
			return nil, fmt.Errorf("obs: bad span_id %q", sj.SpanID)
		}
		sp := SpanData{
			SpanID:   sid,
			Name:     sj.Name,
			Start:    time.UnixMicro(sj.StartUs),
			Duration: time.Duration(sj.DurUs) * time.Microsecond,
		}
		if sj.ParentID != "" {
			pid, ok := ParseSpanID(sj.ParentID)
			if !ok {
				return nil, fmt.Errorf("obs: bad parent_id %q", sj.ParentID)
			}
			sp.ParentID = pid
		}
		if len(sj.Attrs) > 0 {
			keys := make([]string, 0, len(sj.Attrs))
			for k := range sj.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				sp.Attrs = append(sp.Attrs, Attr{Key: k, Value: sj.Attrs[k]})
			}
		}
		tr.Spans = append(tr.Spans, sp)
	}
	return tr, nil
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// with metadata" flavor) that Perfetto and chrome://tracing load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders one or more finished traces — typically the same
// trace ID as recorded by each replica it touched — as a Chrome
// trace-event JSON document. Each input trace becomes its own process
// (pid) named after its service; spans are packed into threads (tids) so
// that every thread's spans nest properly by time, which is how the viewer
// infers the flame structure.
func ChromeTrace(traces []*Trace) []byte {
	var events []chromeEvent

	// Normalize timestamps so the viewport starts near zero.
	var base int64
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			if us := sp.Start.UnixMicro(); base == 0 || us < base {
				base = us
			}
		}
	}

	for pi, tr := range traces {
		pid := pi + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": tr.Service},
		})
		lanes := assignLanes(tr.Spans)
		seen := map[int]bool{}
		for si, sp := range tr.Spans {
			tid := lanes[si] + 1
			if !seen[tid] {
				seen[tid] = true
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("lane %d", tid)},
				})
			}
			args := map[string]any{
				"trace_id": tr.ID.String(),
				"span_id":  sp.SpanID.String(),
			}
			if !sp.ParentID.IsZero() {
				args["parent_id"] = sp.ParentID.String()
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			ts := sp.Start.UnixMicro() - base
			if ts < 0 {
				ts = 0 // clock skew across replicas; clamp rather than confuse the viewer
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Ph: "X", Ts: ts, Dur: sp.Duration.Microseconds(),
				Pid: pid, Tid: tid, Args: args,
			})
		}
	}

	doc := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(doc); err != nil {
		// Only attr values reach the encoder, and constructors restrict
		// them to JSON-safe scalars.
		panic("obs: chrome export: " + err.Error())
	}
	return buf.Bytes()
}

// assignLanes packs spans into the fewest "threads" such that spans
// sharing a lane properly nest by time (the trace-event viewer stacks
// same-tid events by containment). Concurrent siblings — parallel sweep
// cells, scoring workers — spill into fresh lanes instead of rendering as
// a corrupt flame graph.
func assignLanes(spans []SpanData) []int {
	type iv struct{ start, end int64 }
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	at := func(i int) iv {
		s := spans[i].Start.UnixMicro()
		return iv{s, s + spans[i].Duration.Microseconds()}
	}
	// Parents before children: earlier start first; on ties, longer first.
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := at(order[a]), at(order[b])
		if ia.start != ib.start {
			return ia.start < ib.start
		}
		return ia.end > ib.end
	})
	lanes := make([]int, len(spans))
	var stacks [][]iv
	for _, si := range order {
		cur := at(si)
		placed := false
		for li := range stacks {
			st := stacks[li]
			for len(st) > 0 && st[len(st)-1].end <= cur.start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || (st[len(st)-1].start <= cur.start && cur.end <= st[len(st)-1].end) {
				stacks[li] = append(st, cur)
				lanes[si] = li
				placed = true
				break
			}
			stacks[li] = st
		}
		if !placed {
			stacks = append(stacks, []iv{cur})
			lanes[si] = len(stacks) - 1
		}
	}
	return lanes
}
