// Package obs is a dependency-free tracing subsystem: request-scoped span
// trees with monotonic timestamps and attributes, carried via
// context.Context so call signatures below the instrumented facade do not
// change. Finished traces land in a bounded in-memory ring; export.go
// renders them as Chrome trace-event JSON loadable in Perfetto.
//
// The design keeps the disabled path near-free: obs.Start on a context
// without a span is one context.Value lookup returning a nil *Span, and
// every *Span method is nil-safe, so instrumented code never branches on
// "is tracing on". W3C traceparent parsing/formatting lets a fleet of
// replicas stitch one request's spans into a single distributed trace.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across services (16 bytes,
// rendered as 32 lowercase hex digits per W3C trace-context).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }
func (id TraceID) IsZero() bool   { return id == TraceID{} }
func (id SpanID) String() string  { return hex.EncodeToString(id[:]) }
func (id SpanID) IsZero() bool    { return id == SpanID{} }

// ParseTraceID decodes 32 lowercase hex digits (uppercase is invalid per
// W3C trace-context); ok is false for anything else or for the all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHex(s) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// ParseSpanID decodes 16 lowercase hex digits; ok is false otherwise or
// for all-zero.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !isHex(s) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// SpanContext is the wire-visible identity of a span: what crosses a
// process boundary in a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Attr is one key/value annotation on a span. Values are restricted to
// string, bool, int64, and float64 by the constructors below so every
// attribute survives a JSON round trip between replicas.
type Attr struct {
	Key   string
	Value any
}

func String(k, v string) Attr      { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr   { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr     { return Attr{Key: k, Value: int64(v)} }
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// SpanData is one finished span as recorded into its trace.
type SpanData struct {
	SpanID   SpanID
	ParentID SpanID // zero for a root with no parent (local or remote)
	Name     string
	Start    time.Time     // wall clock at Start (carries monotonic reading)
	Duration time.Duration // monotonic Start→End
	Attrs    []Attr
}

// Trace is one finished trace: every span this service recorded under one
// trace ID, finalized when the root span ended.
type Trace struct {
	ID      TraceID
	Service string
	Root    string // root span name
	Start   time.Time
	// Duration is the root span's duration.
	Duration time.Duration
	// Spans holds every recorded span, root included, in end order.
	Spans []SpanData
	// DroppedSpans counts spans discarded because the per-trace bound was
	// hit; the trace is still coherent, just truncated.
	DroppedSpans int
}

// Span is one live timed operation. A nil *Span is valid and inert: every
// method returns immediately, which is the disabled-tracing fast path.
type Span struct {
	tracer *Tracer
	at     *activeTrace
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	root   bool

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Context returns the span's identity; zero for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID string, or "" for a nil span —
// convenient for log attributes.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// Set appends attributes. Safe on a nil span and after End (late attrs on
// an ended span are dropped).
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// End records the span into its trace with a monotonic duration. The first
// End wins; later calls are no-ops. Ending a root span finalizes the whole
// trace into the tracer's ring, so instrument synchronously: children end
// before their root (a child still live at root End is simply not
// recorded).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	data := SpanData{
		SpanID:   s.sc.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	}
	s.tracer.record(s.at, data)
	if s.root {
		s.tracer.finalize(s.sc.TraceID, s.at, data)
	}
}

// activeTrace accumulates spans for one in-flight trace.
type activeTrace struct {
	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

// Config sizes a Tracer.
type Config struct {
	// Service names this process in exported traces (e.g. the replica's
	// -self URL, or "hpart"). Defaults to "hybridpart".
	Service string
	// RingSize bounds finished traces kept for /debug/traces. Default 256.
	RingSize int
	// MaxSpans bounds spans recorded per trace (sweeps can emit one span
	// per move per cell). Default 4096.
	MaxSpans int
}

// Stats is a point-in-time summary of the tracer for /debug/stats and
// /metrics.
type Stats struct {
	Depth         int   `json:"depth"`          // finished traces currently in the ring
	Capacity      int   `json:"capacity"`       // ring bound
	DroppedTraces int64 `json:"dropped_traces"` // finished traces evicted to admit newer ones
	DroppedSpans  int64 `json:"dropped_spans"`  // spans discarded by the per-trace bound
	Spans         int64 `json:"spans"`          // spans recorded locally, ever (never counts peer-merged spans)
}

// Tracer records span trees into a bounded ring of finished traces. The
// zero value is not usable; construct with New. A nil *Tracer is valid:
// StartRoot on it returns a nil span, disabling tracing for the request.
type Tracer struct {
	service  string
	maxSpans int

	// spans/droppedSpans are atomics: they are bumped per span from
	// whatever goroutine ends it (sweep scoring pools included), while mu
	// guards only the finished-trace ring.
	spans        atomic.Int64
	droppedSpans atomic.Int64

	mu            sync.Mutex
	ring          []*Trace // ring[next] is the oldest once full
	next          int
	count         int
	droppedTraces int64
}

// New builds a Tracer; zero config fields take the documented defaults.
func New(cfg Config) *Tracer {
	if cfg.Service == "" {
		cfg.Service = "hybridpart"
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 4096
	}
	return &Tracer{
		service:  cfg.Service,
		maxSpans: cfg.MaxSpans,
		ring:     make([]*Trace, cfg.RingSize),
	}
}

// Service returns the tracer's service name ("" for nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// StartRoot opens a new trace (or joins remote's trace when remote carries
// a nonzero TraceID, recording remote.SpanID as the root's parent — the
// cross-replica forward case) and returns a context carrying the root
// span. On a nil tracer it returns ctx unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string, remote SpanContext, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sc := SpanContext{TraceID: remote.TraceID, SpanID: newSpanID()}
	if sc.TraceID.IsZero() {
		sc.TraceID = newTraceID()
	}
	s := &Span{
		tracer: t,
		at:     &activeTrace{},
		sc:     sc,
		parent: remote.SpanID,
		name:   name,
		start:  time.Now(),
		root:   true,
		attrs:  attrs,
	}
	return ContextWith(ctx, s), s
}

// Start opens a child of the span carried by ctx. When ctx carries no span
// (tracing disabled, or an uninstrumented entry point) it returns ctx
// unchanged and a nil span — one context.Value lookup, no allocation.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: parent.tracer,
		at:     parent.at,
		sc:     SpanContext{TraceID: parent.sc.TraceID, SpanID: newSpanID()},
		parent: parent.sc.SpanID,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return ContextWith(ctx, s), s
}

type ctxKey struct{}

// ContextWith returns ctx carrying s; ctx itself when s is nil.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// record appends one finished span to its trace, honoring the per-trace
// bound.
func (t *Tracer) record(at *activeTrace, data SpanData) {
	at.mu.Lock()
	if len(at.spans) >= t.maxSpans {
		at.dropped++
		at.mu.Unlock()
		t.droppedSpans.Add(1)
		return
	}
	at.spans = append(at.spans, data)
	at.mu.Unlock()
	t.spans.Add(1)
}

// finalize moves a completed trace into the ring, evicting the oldest when
// full.
func (t *Tracer) finalize(id TraceID, at *activeTrace, root SpanData) {
	at.mu.Lock()
	tr := &Trace{
		ID:           id,
		Service:      t.service,
		Root:         root.Name,
		Start:        root.Start,
		Duration:     root.Duration,
		Spans:        at.spans,
		DroppedSpans: at.dropped,
	}
	at.spans = nil
	at.mu.Unlock()

	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.droppedTraces++
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// Stats returns ring/counter state; zero for a nil tracer.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Depth:         t.count,
		Capacity:      len(t.ring),
		DroppedTraces: t.droppedTraces,
		DroppedSpans:  t.droppedSpans.Load(),
		Spans:         t.spans.Load(),
	}
}

// Traces returns the finished traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.count)
	for i := 1; i <= t.count; i++ {
		// next-1 is the newest slot; walk backwards.
		out = append(out, t.ring[((t.next-i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	return out
}

// Get returns the finished trace with the given ID, or nil.
func (t *Tracer) Get(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Newest first, so a re-used ID (never in practice) resolves to the
	// most recent trace.
	for i := 1; i <= t.count; i++ {
		tr := t.ring[((t.next-i)%len(t.ring)+len(t.ring))%len(t.ring)]
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			panic("obs: crypto/rand failed: " + err.Error())
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			panic("obs: crypto/rand failed: " + err.Error())
		}
	}
	return id
}
