// Package obs is a dependency-free tracing subsystem: request-scoped span
// trees with monotonic timestamps and attributes, carried via
// context.Context so call signatures below the instrumented facade do not
// change. Finished traces land in a bounded in-memory ring; export.go
// renders them as Chrome trace-event JSON loadable in Perfetto.
//
// The design keeps the disabled path near-free: obs.Start on a context
// without a span is one context.Value lookup returning a nil *Span, and
// every *Span method is nil-safe, so instrumented code never branches on
// "is tracing on". W3C traceparent parsing/formatting lets a fleet of
// replicas stitch one request's spans into a single distributed trace.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	mrand "math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across services (16 bytes,
// rendered as 32 lowercase hex digits per W3C trace-context).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }
func (id TraceID) IsZero() bool   { return id == TraceID{} }
func (id SpanID) String() string  { return hex.EncodeToString(id[:]) }
func (id SpanID) IsZero() bool    { return id == SpanID{} }

// ParseTraceID decodes 32 lowercase hex digits (uppercase is invalid per
// W3C trace-context); ok is false for anything else or for the all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHex(s) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// ParseSpanID decodes 16 lowercase hex digits; ok is false otherwise or
// for all-zero.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !isHex(s) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// SpanContext is the wire-visible identity of a span: what crosses a
// process boundary in a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Attr is one key/value annotation on a span. Values are restricted to
// string, bool, int64, and float64 by the constructors below so every
// attribute survives a JSON round trip between replicas.
type Attr struct {
	Key   string
	Value any
}

func String(k, v string) Attr      { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr   { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr     { return Attr{Key: k, Value: int64(v)} }
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// SpanData is one finished span as recorded into its trace.
type SpanData struct {
	SpanID   SpanID
	ParentID SpanID // zero for a root with no parent (local or remote)
	Name     string
	Start    time.Time     // wall clock at Start (carries monotonic reading)
	Duration time.Duration // monotonic Start→End
	Attrs    []Attr
}

// Trace is one finished trace: every span this service recorded under one
// trace ID, finalized when the root span ended.
type Trace struct {
	ID      TraceID
	Service string
	Root    string // root span name
	Start   time.Time
	// Duration is the root span's duration.
	Duration time.Duration
	// Spans holds every recorded span, root included, in end order.
	Spans []SpanData
	// DroppedSpans counts spans discarded because the per-trace bound was
	// hit; the trace is still coherent, just truncated.
	DroppedSpans int
	// Error is set when any span in the trace called MarkError (the server
	// marks 4xx/5xx responses); tail-sampled retention always keeps error
	// traces.
	Error bool
}

// Endpoint returns the trace's grouping key for per-endpoint aggregation:
// the root span's "endpoint" attribute when present, else the root span
// name. The root span is recorded last, so the scan walks backwards.
func (tr *Trace) Endpoint() string {
	for i := len(tr.Spans) - 1; i >= 0; i-- {
		sp := &tr.Spans[i]
		if sp.Name != tr.Root {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "endpoint" {
				if s, ok := a.Value.(string); ok {
					return s
				}
			}
		}
		break
	}
	return tr.Root
}

// Span is one live timed operation. A nil *Span is valid and inert: every
// method returns immediately, which is the disabled-tracing fast path.
type Span struct {
	tracer *Tracer
	at     *activeTrace
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	root   bool

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Context returns the span's identity; zero for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID string, or "" for a nil span —
// convenient for log attributes.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// Set appends attributes. Safe on a nil span and after End (late attrs on
// an ended span are dropped).
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// MarkError flags the span's whole trace as an error (the server calls it
// for 4xx/5xx responses). Under tail-sampled retention error traces are
// always kept. Safe on a nil span and after End.
func (s *Span) MarkError() {
	if s == nil {
		return
	}
	s.at.mu.Lock()
	s.at.err = true
	s.at.mu.Unlock()
}

// End records the span into its trace with a monotonic duration. The first
// End wins; later calls are no-ops. Ending a root span finalizes the whole
// trace into the tracer's ring, so instrument synchronously: children end
// before their root (a child still live at root End is simply not
// recorded).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	data := SpanData{
		SpanID:   s.sc.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	}
	s.tracer.record(s.at, data)
	if s.root {
		s.tracer.finalize(s.sc.TraceID, s.at, data)
	}
}

// activeTrace accumulates spans for one in-flight trace.
type activeTrace struct {
	mu      sync.Mutex
	spans   []SpanData
	dropped int
	err     bool
}

// Config sizes a Tracer.
type Config struct {
	// Service names this process in exported traces (e.g. the replica's
	// -self URL, or "hpart"). Defaults to "hybridpart".
	Service string
	// RingSize bounds finished traces kept for /debug/traces. Default 256.
	RingSize int
	// MaxSpans bounds spans recorded per trace (sweeps can emit one span
	// per move per cell). Default 4096.
	MaxSpans int
	// KeepSlow switches retention from plain overwrite-oldest to tail
	// sampling: error traces are always kept (in a side pool of
	// max(1, RingSize/4) slots), the KeepSlow slowest traces per endpoint
	// are always kept, and the rest go to the sampled ring — admitted
	// unconditionally while it has room, then with probability SampleRate.
	// 0 (the default) keeps the legacy overwrite-oldest ring.
	KeepSlow int
	// SampleRate is the admission probability for unremarkable traces once
	// the sampled ring is full; only meaningful with KeepSlow > 0. Values
	// <= 0 default to 0.25; >= 1 always admits (overwrite-oldest).
	SampleRate float64
}

// Stats is a point-in-time summary of the tracer for /debug/stats and
// /metrics.
type Stats struct {
	Depth         int   `json:"depth"`          // finished traces currently retained (all pools)
	Capacity      int   `json:"capacity"`       // sampled-ring bound (error/slow pools are extra)
	DroppedTraces int64 `json:"dropped_traces"` // finished traces evicted to admit newer ones
	DroppedSpans  int64 `json:"dropped_spans"`  // spans discarded by the per-trace bound
	Spans         int64 `json:"spans"`          // spans recorded locally, ever (never counts peer-merged spans)
	// Tail-sampling policy counters; all zero when KeepSlow == 0.
	KeptError  int64 `json:"kept_error"`  // traces retained because they carried an error
	KeptSlow   int64 `json:"kept_slow"`   // traces retained as slowest-K for their endpoint
	SampledOut int64 `json:"sampled_out"` // unremarkable traces dropped by probabilistic sampling
}

// Tracer records span trees into a bounded ring of finished traces. The
// zero value is not usable; construct with New. A nil *Tracer is valid:
// StartRoot on it returns a nil span, disabling tracing for the request.
type Tracer struct {
	service    string
	maxSpans   int
	keepSlow   int
	sampleRate float64
	randFloat  func() float64 // admission coin; swappable in tests

	// onFinalize, when set, observes every finished trace (see
	// SetOnFinalize). Written once before serving, read per finalize.
	onFinalize func(tr *Trace, kept bool)

	// spans/droppedSpans are atomics: they are bumped per span from
	// whatever goroutine ends it (sweep scoring pools included), while mu
	// guards only the finished-trace ring.
	spans        atomic.Int64
	droppedSpans atomic.Int64

	mu            sync.Mutex
	ring          []*Trace // sampled pool; ring[next] is the oldest once full
	next          int
	count         int
	droppedTraces int64

	// Tail-sampling pools, nil/empty when keepSlow == 0.
	errRing           []*Trace // always-kept error traces, overwrite-oldest among themselves
	errNext, errCount int
	slow              map[string][]*Trace // per-endpoint slowest-K, sorted fastest-first
	keptError         int64
	keptSlow          int64
	sampledOut        int64
}

// New builds a Tracer; zero config fields take the documented defaults.
func New(cfg Config) *Tracer {
	if cfg.Service == "" {
		cfg.Service = "hybridpart"
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 4096
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 0.25
	}
	t := &Tracer{
		service:    cfg.Service,
		maxSpans:   cfg.MaxSpans,
		keepSlow:   cfg.KeepSlow,
		sampleRate: cfg.SampleRate,
		randFloat:  mrand.Float64,
		ring:       make([]*Trace, cfg.RingSize),
	}
	if cfg.KeepSlow > 0 {
		t.errRing = make([]*Trace, max(1, cfg.RingSize/4))
		t.slow = make(map[string][]*Trace)
	}
	return t
}

// SetOnFinalize registers fn to observe every finished trace right after
// it has been offered to the ring; kept reports whether retention kept it.
// fn runs outside the tracer's lock, on the goroutine that ended the root
// span. Set it once before the tracer sees traffic; nil disables. Nil-safe.
func (t *Tracer) SetOnFinalize(fn func(tr *Trace, kept bool)) {
	if t == nil {
		return
	}
	t.onFinalize = fn
}

// Service returns the tracer's service name ("" for nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// StartRoot opens a new trace (or joins remote's trace when remote carries
// a nonzero TraceID, recording remote.SpanID as the root's parent — the
// cross-replica forward case) and returns a context carrying the root
// span. On a nil tracer it returns ctx unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string, remote SpanContext, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sc := SpanContext{TraceID: remote.TraceID, SpanID: newSpanID()}
	if sc.TraceID.IsZero() {
		sc.TraceID = newTraceID()
	}
	s := &Span{
		tracer: t,
		at:     &activeTrace{},
		sc:     sc,
		parent: remote.SpanID,
		name:   name,
		start:  time.Now(),
		root:   true,
		attrs:  attrs,
	}
	return ContextWith(ctx, s), s
}

// Start opens a child of the span carried by ctx. When ctx carries no span
// (tracing disabled, or an uninstrumented entry point) it returns ctx
// unchanged and a nil span — one context.Value lookup, no allocation.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: parent.tracer,
		at:     parent.at,
		sc:     SpanContext{TraceID: parent.sc.TraceID, SpanID: newSpanID()},
		parent: parent.sc.SpanID,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return ContextWith(ctx, s), s
}

type ctxKey struct{}

// ContextWith returns ctx carrying s; ctx itself when s is nil.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// record appends one finished span to its trace, honoring the per-trace
// bound.
func (t *Tracer) record(at *activeTrace, data SpanData) {
	at.mu.Lock()
	if len(at.spans) >= t.maxSpans {
		at.dropped++
		at.mu.Unlock()
		t.droppedSpans.Add(1)
		return
	}
	at.spans = append(at.spans, data)
	at.mu.Unlock()
	t.spans.Add(1)
}

// finalize moves a completed trace into the ring. With KeepSlow == 0 the
// policy is plain overwrite-oldest; otherwise tail sampling: errors always
// kept, slowest-K per endpoint always kept, the rest admitted while there
// is room and probabilistically once there is not.
func (t *Tracer) finalize(id TraceID, at *activeTrace, root SpanData) {
	at.mu.Lock()
	tr := &Trace{
		ID:           id,
		Service:      t.service,
		Root:         root.Name,
		Start:        root.Start,
		Duration:     root.Duration,
		Spans:        at.spans,
		DroppedSpans: at.dropped,
		Error:        at.err,
	}
	at.spans = nil
	at.mu.Unlock()

	kept := true
	t.mu.Lock()
	switch {
	case t.keepSlow == 0:
		t.admitSampled(tr)
	case tr.Error:
		t.keptError++
		if t.errRing[t.errNext] != nil {
			t.droppedTraces++
		}
		t.errRing[t.errNext] = tr
		t.errNext = (t.errNext + 1) % len(t.errRing)
		if t.errCount < len(t.errRing) {
			t.errCount++
		}
	case t.admitSlow(tr):
		t.keptSlow++
	case t.count < len(t.ring) || t.sampleRate >= 1 || t.randFloat() < t.sampleRate:
		t.admitSampled(tr)
	default:
		t.sampledOut++
		kept = false
	}
	t.mu.Unlock()

	if fn := t.onFinalize; fn != nil {
		fn(tr, kept)
	}
}

// admitSampled stores tr in the sampled ring, evicting the oldest entry
// when full. Caller holds t.mu.
func (t *Tracer) admitSampled(tr *Trace) {
	if t.ring[t.next] != nil {
		t.droppedTraces++
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
}

// admitSlow keeps tr when it ranks among the keepSlow slowest traces for
// its endpoint, displacing the fastest of the current holders. Caller
// holds t.mu.
func (t *Tracer) admitSlow(tr *Trace) bool {
	ep := tr.Endpoint()
	list := t.slow[ep]
	if len(list) < t.keepSlow {
		list = append(list, tr)
		sort.SliceStable(list, func(i, j int) bool { return list[i].Duration < list[j].Duration })
		t.slow[ep] = list
		return true
	}
	if tr.Duration <= list[0].Duration {
		return false
	}
	// The displaced fastest holder is dropped rather than re-offered to the
	// sampled ring: it was only retained for being slow, and it no longer is.
	t.droppedTraces++
	list[0] = tr
	sort.SliceStable(list, func(i, j int) bool { return list[i].Duration < list[j].Duration })
	return true
}

// Stats returns ring/counter state; zero for a nil tracer.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := t.count + t.errCount
	for _, list := range t.slow {
		depth += len(list)
	}
	return Stats{
		Depth:         depth,
		Capacity:      len(t.ring),
		DroppedTraces: t.droppedTraces,
		DroppedSpans:  t.droppedSpans.Load(),
		Spans:         t.spans.Load(),
		KeptError:     t.keptError,
		KeptSlow:      t.keptSlow,
		SampledOut:    t.sampledOut,
	}
}

// Traces returns the finished traces, newest first (by start time when the
// tail-sampling pools are in play; by finalize order otherwise).
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.count+t.errCount)
	for i := 1; i <= t.count; i++ {
		// next-1 is the newest slot; walk backwards.
		out = append(out, t.ring[((t.next-i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	if t.keepSlow == 0 {
		return out
	}
	for i := 1; i <= t.errCount; i++ {
		out = append(out, t.errRing[((t.errNext-i)%len(t.errRing)+len(t.errRing))%len(t.errRing)])
	}
	for _, list := range t.slow {
		out = append(out, list...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Get returns the finished trace with the given ID, or nil. All retention
// pools are searched.
func (t *Tracer) Get(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Newest first, so a re-used ID (never in practice) resolves to the
	// most recent trace.
	for i := 1; i <= t.count; i++ {
		tr := t.ring[((t.next-i)%len(t.ring)+len(t.ring))%len(t.ring)]
		if tr.ID == id {
			return tr
		}
	}
	for i := 1; i <= t.errCount; i++ {
		tr := t.errRing[((t.errNext-i)%len(t.errRing)+len(t.errRing))%len(t.errRing)]
		if tr.ID == id {
			return tr
		}
	}
	for _, list := range t.slow {
		for _, tr := range list {
			if tr.ID == id {
				return tr
			}
		}
	}
	return nil
}

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			panic("obs: crypto/rand failed: " + err.Error())
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		if _, err := rand.Read(id[:]); err != nil {
			panic("obs: crypto/rand failed: " + err.Error())
		}
	}
	return id
}
