package obs

import (
	"context"
	"testing"
	"time"
)

// fakeTrace pushes one synthetic finished trace through finalize with a
// chosen endpoint, duration, and error flag — retention policy tests need
// exact durations, which real spans (monotonic clocks) can't provide.
func fakeTrace(t *Tracer, endpoint string, d time.Duration, isErr bool) TraceID {
	id := newTraceID()
	root := SpanData{
		SpanID:   newSpanID(),
		Name:     "request",
		Start:    time.Now(),
		Duration: d,
		Attrs:    []Attr{String("endpoint", endpoint)},
	}
	at := &activeTrace{spans: []SpanData{root}, err: isErr}
	t.finalize(id, at, root)
	return id
}

func TestTailSamplingKeepsErrorsAndSlow(t *testing.T) {
	tr := New(Config{RingSize: 2, KeepSlow: 1, SampleRate: 0.5})
	tr.randFloat = func() float64 { return 0.99 } // never admit once full

	slowID := fakeTrace(tr, "/v1/partition", 500*time.Millisecond, false)
	errID := fakeTrace(tr, "/v1/partition", time.Millisecond, true)
	var lastID TraceID
	for i := 0; i < 10; i++ {
		lastID = fakeTrace(tr, "/v1/partition", time.Millisecond, false)
	}

	if tr.Get(slowID) == nil {
		t.Fatalf("slowest trace evicted under pressure")
	}
	if tr.Get(errID) == nil {
		t.Fatalf("error trace evicted under pressure")
	}
	st := tr.Stats()
	if st.KeptError != 1 {
		t.Fatalf("kept_error = %d, want 1", st.KeptError)
	}
	if st.KeptSlow != 1 {
		t.Fatalf("kept_slow = %d, want 1", st.KeptSlow)
	}
	// Ring size 2: the fast floods fill it, then every further one is
	// sampled out (randFloat pinned above the rate).
	if st.SampledOut != 8 {
		t.Fatalf("sampled_out = %d, want 8", st.SampledOut)
	}
	if tr.Get(lastID) != nil {
		t.Fatalf("sampled-out trace still retrievable")
	}
	if st.Depth != 4 { // 2 sampled + 1 error + 1 slow
		t.Fatalf("depth = %d, want 4", st.Depth)
	}
	if st.Capacity != 2 {
		t.Fatalf("capacity = %d, want 2", st.Capacity)
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("Traces() returned %d, want 4", got)
	}
}

func TestTailSamplingSlowKDisplacement(t *testing.T) {
	tr := New(Config{RingSize: 1, KeepSlow: 2, SampleRate: 0.5})
	tr.randFloat = func() float64 { return 0.99 }

	aID := fakeTrace(tr, "/v1/energy", 10*time.Millisecond, false)
	bID := fakeTrace(tr, "/v1/energy", 20*time.Millisecond, false)
	cID := fakeTrace(tr, "/v1/energy", 30*time.Millisecond, false) // displaces a
	dID := fakeTrace(tr, "/v1/simulate", 1*time.Millisecond, false)

	if tr.Get(bID) == nil || tr.Get(cID) == nil {
		t.Fatalf("slowest-2 for /v1/energy not both retained")
	}
	if tr.Get(dID) == nil {
		t.Fatalf("first trace for a fresh endpoint not retained in its slow pool")
	}
	if got := tr.Stats().KeptSlow; got != 4 {
		t.Fatalf("kept_slow = %d, want 4", got)
	}
	if tr.Get(aID) != nil {
		t.Fatalf("displaced slow trace still retrievable")
	}
}

func TestLegacyRetentionUnchangedByDefault(t *testing.T) {
	tr := New(Config{RingSize: 2})
	fakeTrace(tr, "/v1/partition", time.Hour, true) // slow AND error
	id2 := fakeTrace(tr, "/v1/partition", time.Millisecond, false)
	id3 := fakeTrace(tr, "/v1/partition", time.Millisecond, false)
	st := tr.Stats()
	if st.KeptError != 0 || st.KeptSlow != 0 || st.SampledOut != 0 {
		t.Fatalf("policy counters moved in legacy mode: %+v", st)
	}
	if st.Depth != 2 || st.DroppedTraces != 1 {
		t.Fatalf("legacy overwrite-oldest broken: %+v", st)
	}
	if tr.Get(id2) == nil || tr.Get(id3) == nil {
		t.Fatalf("newest traces not retained in legacy mode")
	}
}

func TestTraceEndpointAndError(t *testing.T) {
	tr := New(Config{RingSize: 4})
	ctx, root := tr.StartRoot(context.Background(), "GET /thing", SpanContext{}, String("endpoint", "/v1/thing"))
	_, child := Start(ctx, "compile")
	child.End()
	root.MarkError()
	root.End()

	got := tr.Traces()[0]
	if !got.Error {
		t.Fatalf("MarkError not reflected on finished trace")
	}
	if ep := got.Endpoint(); ep != "/v1/thing" {
		t.Fatalf("Endpoint() = %q, want /v1/thing", ep)
	}

	// Without the attribute the root span name is the fallback.
	_, root2 := tr.StartRoot(context.Background(), "hsweep sweep", SpanContext{})
	root2.End()
	if ep := tr.Traces()[0].Endpoint(); ep != "hsweep sweep" {
		t.Fatalf("Endpoint() fallback = %q, want root name", ep)
	}
}

func TestOnFinalizeHook(t *testing.T) {
	tr := New(Config{RingSize: 1, KeepSlow: 1, SampleRate: 0.5})
	tr.randFloat = func() float64 { return 0.99 }
	type obsv struct {
		id   TraceID
		kept bool
	}
	var seen []obsv
	tr.SetOnFinalize(func(trc *Trace, kept bool) { seen = append(seen, obsv{trc.ID, kept}) })

	a := fakeTrace(tr, "/v1/partition", 10*time.Millisecond, false) // slow-kept
	b := fakeTrace(tr, "/v1/partition", time.Millisecond, false)    // fills ring
	c := fakeTrace(tr, "/v1/partition", time.Millisecond, false)    // sampled out

	want := []obsv{{a, true}, {b, true}, {c, false}}
	if len(seen) != len(want) {
		t.Fatalf("hook ran %d times, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook call %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

func TestStageAggObserve(t *testing.T) {
	agg := NewStageAgg(nil, nil)
	tr := New(Config{RingSize: 4})
	ctx, root := tr.StartRoot(context.Background(), "GET /v1/partition", SpanContext{}, String("endpoint", "/v1/partition"))
	_, lookup := Start(ctx, "cache.lookup")
	lookup.End()
	cctx, compile := Start(ctx, "compile")
	_, move := Start(cctx, "move") // not a stage; must not aggregate
	move.End()
	compile.End()
	root.End()
	trace := tr.Traces()[0]

	agg.Observe(trace, true)
	agg.Observe(trace, true)

	snaps := agg.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d stage histograms, want 2 (cache.lookup, compile): %+v", len(snaps), snaps)
	}
	for _, s := range snaps {
		if s.Endpoint != "/v1/partition" {
			t.Fatalf("endpoint = %q", s.Endpoint)
		}
		if s.Stage != "cache.lookup" && s.Stage != "compile" {
			t.Fatalf("unexpected stage %q", s.Stage)
		}
		if s.Count != 2 {
			t.Fatalf("stage %s count = %d, want 2", s.Stage, s.Count)
		}
		if len(s.Counts) != len(DefaultStageBuckets)+1 || len(s.Exemplars) != len(s.Counts) {
			t.Fatalf("bucket/exemplar slot mismatch")
		}
		var total int64
		sawEx := false
		for i, c := range s.Counts {
			total += c
			if c > 0 && s.Exemplars[i].TraceID == trace.ID.String() {
				sawEx = true
			}
		}
		if total != 2 {
			t.Fatalf("stage %s bucket counts sum to %d, want 2", s.Stage, total)
		}
		if !sawEx {
			t.Fatalf("stage %s has no exemplar in its populated bucket", s.Stage)
		}
	}
}

func TestStageAggUnkeptTraceLeavesNoExemplar(t *testing.T) {
	agg := NewStageAgg(nil, nil)
	tr := New(Config{RingSize: 4})
	ctx, root := tr.StartRoot(context.Background(), "r", SpanContext{}, String("endpoint", "/v1/x"))
	_, c := Start(ctx, "compile")
	c.End()
	root.End()
	agg.Observe(tr.Traces()[0], false)

	snaps := agg.Snapshot()
	if len(snaps) != 1 || snaps[0].Count != 1 {
		t.Fatalf("unkept trace not counted: %+v", snaps)
	}
	for _, ex := range snaps[0].Exemplars {
		if ex.TraceID != "" {
			t.Fatalf("unkept trace left exemplar %q", ex.TraceID)
		}
	}
}

func TestStageAggNilSafety(t *testing.T) {
	var agg *StageAgg
	agg.Observe(&Trace{}, true)
	if agg.Snapshot() != nil || agg.Buckets() != nil {
		t.Fatalf("nil StageAgg not inert")
	}
}

func TestCollectorSamples(t *testing.T) {
	calls := 0
	col := NewCollector(CollectorConfig{
		Interval: time.Hour,
		RingSize: 3,
		Counters: func() map[string]int64 {
			calls++
			return map[string]int64{"requests": int64(10 * calls)}
		},
	})
	if col.Capacity() != 3 {
		t.Fatalf("capacity = %d", col.Capacity())
	}
	for i := 0; i < 5; i++ {
		col.SampleNow()
	}
	samples := col.Samples()
	if len(samples) != 3 {
		t.Fatalf("ring kept %d samples, want 3", len(samples))
	}
	last := samples[len(samples)-1]
	if last.HeapBytes == 0 || last.Goroutines == 0 {
		t.Fatalf("runtime metrics not populated: %+v", last)
	}
	if last.Counters["requests"] != 10 {
		t.Fatalf("counter delta = %d, want 10", last.Counters["requests"])
	}
	latest, ok := col.Latest()
	if !ok || latest.UnixMs != last.UnixMs {
		t.Fatalf("Latest() disagrees with Samples()")
	}
	if samples[0].UnixMs > last.UnixMs {
		t.Fatalf("samples not oldest-first")
	}
}

func TestCollectorStartStop(t *testing.T) {
	col := NewCollector(CollectorConfig{Interval: time.Millisecond, RingSize: 8})
	col.Start()
	col.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(col.Samples()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	col.Stop()
	col.Stop() // idempotent
	n := len(col.Samples())
	if n < 2 {
		t.Fatalf("collector took %d samples, want >= 2", n)
	}
	time.Sleep(5 * time.Millisecond)
	if len(col.Samples()) != n {
		t.Fatalf("collector still sampling after Stop")
	}

	var nilCol *Collector
	nilCol.Start()
	nilCol.Stop()
	if nilCol.Samples() != nil || nilCol.Capacity() != 0 {
		t.Fatalf("nil collector not inert")
	}
	if _, ok := nilCol.Latest(); ok {
		t.Fatalf("nil collector has a latest sample")
	}
}
