package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	if root != nil {
		t.Fatalf("nil tracer StartRoot returned a span")
	}
	if SpanFrom(ctx) != nil {
		t.Fatalf("nil tracer StartRoot attached a span to ctx")
	}
	ctx2, child := Start(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatalf("Start on span-less ctx must return (ctx, nil)")
	}
	// All methods must be no-ops on nil.
	child.Set(String("k", "v"))
	child.End()
	if got := child.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if tp := child.Traceparent(); tp != "" {
		t.Fatalf("nil span Traceparent = %q", tp)
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v", st)
	}
	if tr.Get(TraceID{1}) != nil || tr.Traces() != nil {
		t.Fatalf("nil tracer Get/Traces must be empty")
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := New(Config{Service: "svc", RingSize: 2})
	ctx, root := tr.StartRoot(context.Background(), "req", SpanContext{}, String("endpoint", "/v1/x"))
	cctx, child := Start(ctx, "compute")
	_, grand := Start(cctx, "score", Int("candidates", 7))
	grand.End()
	child.Set(Bool("hit", false))
	child.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	got := traces[0]
	if got.Root != "req" || got.Service != "svc" || len(got.Spans) != 3 {
		t.Fatalf("trace = root %q service %q spans %d", got.Root, got.Service, len(got.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
	}
	if byName["compute"].ParentID != byName["req"].SpanID {
		t.Fatalf("compute's parent is not the root")
	}
	if byName["score"].ParentID != byName["compute"].SpanID {
		t.Fatalf("score's parent is not compute")
	}
	if tr.Get(got.ID) != got {
		t.Fatalf("Get(%s) did not find the trace", got.ID)
	}
	st := tr.Stats()
	if st.Depth != 1 || st.Capacity != 2 || st.Spans != 3 || st.DroppedTraces != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Two more traces overflow the 2-slot ring and evict the first.
	for i := 0; i < 2; i++ {
		_, r := tr.StartRoot(context.Background(), "later", SpanContext{})
		r.End()
	}
	st = tr.Stats()
	if st.Depth != 2 || st.DroppedTraces != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	if tr.Get(got.ID) != nil {
		t.Fatalf("evicted trace still retrievable")
	}
	if list := tr.Traces(); len(list) != 2 || list[0].Root != "later" {
		t.Fatalf("Traces() after overflow = %d entries", len(list))
	}
}

func TestMaxSpansBound(t *testing.T) {
	tr := New(Config{RingSize: 1, MaxSpans: 3})
	ctx, root := tr.StartRoot(context.Background(), "r", SpanContext{})
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, "c")
		s.End()
	}
	root.End()
	got := tr.Traces()[0]
	if len(got.Spans) != 3 || got.DroppedSpans != 3 {
		// 5 children + 1 root = 6 ends; 3 recorded, 3 dropped (root among
		// the dropped — the bound is strict).
		t.Fatalf("spans %d dropped %d", len(got.Spans), got.DroppedSpans)
	}
	if st := tr.Stats(); st.DroppedSpans != 3 || st.Spans != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoubleEndAndLateAttrs(t *testing.T) {
	tr := New(Config{RingSize: 4})
	_, root := tr.StartRoot(context.Background(), "r", SpanContext{})
	root.End()
	root.Set(String("late", "x"))
	root.End()
	if st := tr.Stats(); st.Depth != 1 || st.Spans != 1 {
		t.Fatalf("double End recorded twice: %+v", st)
	}
	if attrs := tr.Traces()[0].Spans[0].Attrs; len(attrs) != 0 {
		t.Fatalf("late attr recorded: %+v", attrs)
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	tr := New(Config{RingSize: 4, Service: "b"})
	remote := SpanContext{TraceID: TraceID{1, 2}, SpanID: SpanID{3, 4}}
	_, root := tr.StartRoot(context.Background(), "fwd", remote)
	sc := root.Context()
	if sc.TraceID != remote.TraceID {
		t.Fatalf("root did not adopt remote trace ID")
	}
	if sc.SpanID == remote.SpanID || sc.SpanID.IsZero() {
		t.Fatalf("root must mint its own span ID")
	}
	root.End()
	got := tr.Get(remote.TraceID)
	if got == nil || got.Spans[0].ParentID != remote.SpanID {
		t.Fatalf("root's parent is not the remote span")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: TraceID{0xab, 1: 0xcd, 15: 0x01}, SpanID: SpanID{0x12, 7: 0x34}}
	h := sc.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") || len(h) != 55 {
		t.Fatalf("traceparent %q", h)
	}
	back, ok := ParseTraceparent(h)
	if !ok || back != sc {
		t.Fatalf("round trip: %q -> %+v ok=%v", h, back, ok)
	}
	if tp := (SpanContext{}).Traceparent(); tp != "" {
		t.Fatalf("zero context traceparent = %q", tp)
	}

	bad := []string{
		"",
		"00",
		"00-xyz-0000000000000001-01",
		"00-" + strings.Repeat("0", 32) + "-1234567890abcdef-01",                // zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"ff-" + strings.Repeat("a", 32) + "-1234567890abcdef-01",                // invalid version
		"00-" + strings.Repeat("a", 31) + "-1234567890abcdef-01",                // short trace id
		"00-" + strings.Repeat("a", 32) + "-1234567890abcdef-zz",                // bad flags
		"00-" + strings.Repeat("A", 32) + "-1234567890abcdef-01",                // uppercase hex is invalid
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Future versions with extra fields are accepted.
	if _, ok := ParseTraceparent("01-" + strings.Repeat("a", 32) + "-1234567890abcdef-01-extra"); !ok {
		t.Fatalf("future version rejected")
	}
}

func TestWireJSONRoundTrip(t *testing.T) {
	tr := New(Config{Service: "svc", RingSize: 1})
	ctx, root := tr.StartRoot(context.Background(), "r", SpanContext{}, String("endpoint", "/v1/x"), Int("status", 200))
	_, c := Start(ctx, "child", Bool("hit", true), Int64("bytes", 42))
	c.End()
	root.End()
	orig := tr.Traces()[0]

	raw, err := json.Marshal(orig.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var tj TraceJSON
	if err := json.Unmarshal(raw, &tj); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(tj)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != orig.ID || back.Service != "svc" || back.Root != "r" || len(back.Spans) != 2 {
		t.Fatalf("round trip mangled trace: %+v", back)
	}
	for i, sp := range back.Spans {
		if sp.SpanID != orig.Spans[i].SpanID || sp.ParentID != orig.Spans[i].ParentID {
			t.Fatalf("span %d ids mangled", i)
		}
	}
	if _, err := FromJSON(TraceJSON{TraceID: "nope"}); err == nil {
		t.Fatalf("bad trace_id accepted")
	}
	if _, err := FromJSON(TraceJSON{TraceID: strings.Repeat("a", 32), Spans: []SpanJSON{{SpanID: "short"}}}); err == nil {
		t.Fatalf("bad span_id accepted")
	}
}

func TestChromeTrace(t *testing.T) {
	tr := New(Config{Service: "replica-a", RingSize: 1})
	ctx, root := tr.StartRoot(context.Background(), "POST /v1/partition", SpanContext{})
	_, c := Start(ctx, "cache.lookup", String("role", "leader"))
	time.Sleep(time.Millisecond)
	c.End()
	root.End()
	a := tr.Traces()[0]

	// A second service's view of the same trace.
	tr2 := New(Config{Service: "replica-b", RingSize: 1})
	_, root2 := tr2.StartRoot(context.Background(), "POST /v1/partition", SpanContext{TraceID: a.ID, SpanID: a.Spans[len(a.Spans)-1].SpanID})
	root2.End()
	b := tr2.Traces()[0]

	out := ChromeTrace([]*Trace{a, b})
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, out)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	pids := map[int]bool{}
	names := map[string]int{}
	var procNames []string
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNames = append(procNames, ev.Args["name"].(string))
			}
		case "X":
			pids[ev.Pid] = true
			names[ev.Name]++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
			if ev.Args["trace_id"] != a.ID.String() {
				t.Fatalf("event missing trace_id arg: %+v", ev)
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 pids, got %v", pids)
	}
	if len(procNames) != 2 || procNames[0] != "replica-a" || procNames[1] != "replica-b" {
		t.Fatalf("process names %v", procNames)
	}
	if names["POST /v1/partition"] != 2 || names["cache.lookup"] != 1 {
		t.Fatalf("span events %v", names)
	}
}

func TestAssignLanesNestsOverlaps(t *testing.T) {
	mk := func(startUs, durUs int64) SpanData {
		return SpanData{Start: time.UnixMicro(startUs), Duration: time.Duration(durUs) * time.Microsecond}
	}
	// root [0,100]; child A [10,40]; child B [20,60] overlaps A -> new
	// lane; child C [50,90] fits back after A ended... A's lane top is
	// root (A popped at 50), so C nests under root in lane 0.
	spans := []SpanData{mk(0, 100), mk(10, 30), mk(20, 40), mk(50, 40)}
	lanes := assignLanes(spans)
	if lanes[0] != 0 || lanes[1] != 0 {
		t.Fatalf("root/A lanes = %v", lanes)
	}
	if lanes[2] == 0 {
		t.Fatalf("overlapping B shares lane 0: %v", lanes)
	}
	if lanes[3] != 0 {
		t.Fatalf("C should nest in lane 0 after A: %v", lanes)
	}
}
