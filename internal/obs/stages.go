package obs

import (
	"sort"
	"sync"
)

// DefaultStages is the set of named stage spans the service folds into
// per-endpoint latency histograms. High-cardinality spans (per-move "move"
// spans, per-replay "sim.replay" spans) are deliberately excluded: they
// are visible inside individual traces, not as standing metrics.
var DefaultStages = []string{
	"compile",
	"profile",
	"cache.lookup",
	"store.get",
	"store.put",
	"admission",
	"partition.moveloop",
	"sim.argmin",
	"sim.ScoreBatch",
	"sim.report",
	"cluster.forward",
}

// DefaultStageBuckets are histogram upper bounds in seconds, spanning the
// microsecond stages (cache.lookup, store.get) through multi-second
// moveloop runs.
var DefaultStageBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Exemplar links one histogram bucket back to a trace that landed in it,
// per the OpenMetrics exemplar model.
type Exemplar struct {
	TraceID string  // 32 hex digits; "" means the bucket has no exemplar yet
	Value   float64 // observed stage latency, seconds
	Unix    float64 // span end time, seconds since the Unix epoch
}

// stageHist is one endpoint × stage latency histogram. counts has one slot
// per bucket bound plus the +Inf overflow; exemplars parallels it.
type stageHist struct {
	counts    []int64
	exemplars []Exemplar
	sum       float64
	count     int64
}

// StageSnapshot is a point-in-time copy of one endpoint × stage histogram
// for rendering.
type StageSnapshot struct {
	Endpoint  string
	Stage     string
	Counts    []int64 // per-bucket (not cumulative), +Inf last
	Exemplars []Exemplar
	Sum       float64 // seconds
	Count     int64
}

// StageAgg folds finished traces into per-endpoint × per-stage latency
// histograms: the span-to-metrics half of the flight recorder. A nil
// *StageAgg is valid and inert.
type StageAgg struct {
	buckets []float64
	stages  map[string]bool

	mu    sync.Mutex
	hists map[string]map[string]*stageHist // endpoint → stage → hist
}

// NewStageAgg builds an aggregator over the given bucket bounds (seconds,
// ascending) and stage-span names. Nil slices take DefaultStageBuckets and
// DefaultStages.
func NewStageAgg(buckets []float64, stages []string) *StageAgg {
	if buckets == nil {
		buckets = DefaultStageBuckets
	}
	if stages == nil {
		stages = DefaultStages
	}
	set := make(map[string]bool, len(stages))
	for _, s := range stages {
		set[s] = true
	}
	return &StageAgg{
		buckets: buckets,
		stages:  set,
		hists:   make(map[string]map[string]*stageHist),
	}
}

// Buckets returns the bucket upper bounds in seconds (+Inf slot excluded).
func (a *StageAgg) Buckets() []float64 {
	if a == nil {
		return nil
	}
	return a.buckets
}

// Observe folds every stage span of a finished trace into the trace's
// endpoint histograms. kept tells whether the retention policy kept the
// trace: only kept traces become exemplars, so every exemplar trace ID
// resolves against /debug/traces/{id} at the moment it is written.
func (a *StageAgg) Observe(tr *Trace, kept bool) {
	if a == nil || tr == nil {
		return
	}
	ep := tr.Endpoint()
	id := tr.ID.String()
	a.mu.Lock()
	byStage := a.hists[ep]
	if byStage == nil {
		byStage = make(map[string]*stageHist)
		a.hists[ep] = byStage
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if !a.stages[sp.Name] {
			continue
		}
		h := byStage[sp.Name]
		if h == nil {
			h = &stageHist{
				counts:    make([]int64, len(a.buckets)+1),
				exemplars: make([]Exemplar, len(a.buckets)+1),
			}
			byStage[sp.Name] = h
		}
		secs := sp.Duration.Seconds()
		idx := a.bucketIndex(secs)
		h.counts[idx]++
		h.sum += secs
		h.count++
		if kept {
			h.exemplars[idx] = Exemplar{
				TraceID: id,
				Value:   secs,
				Unix:    float64(sp.Start.Add(sp.Duration).UnixNano()) / 1e9,
			}
		}
	}
	a.mu.Unlock()
}

func (a *StageAgg) bucketIndex(secs float64) int {
	for i, b := range a.buckets {
		if secs <= b {
			return i
		}
	}
	return len(a.buckets)
}

// Snapshot copies every histogram, sorted by endpoint then stage so
// /metrics output is deterministic.
func (a *StageAgg) Snapshot() []StageSnapshot {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]StageSnapshot, 0, len(a.hists)*4)
	for ep, byStage := range a.hists {
		for stage, h := range byStage {
			s := StageSnapshot{
				Endpoint:  ep,
				Stage:     stage,
				Counts:    append([]int64(nil), h.counts...),
				Exemplars: append([]Exemplar(nil), h.exemplars...),
				Sum:       h.sum,
				Count:     h.count,
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Endpoint != out[j].Endpoint {
			return out[i].Endpoint < out[j].Endpoint
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}
