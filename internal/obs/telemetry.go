package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// TelemetrySample is one point-in-time reading of process health: a few
// runtime/metrics values plus optional service-counter deltas.
type TelemetrySample struct {
	UnixMs          int64   `json:"unix_ms"`
	HeapBytes       uint64  `json:"heap_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
	Goroutines      uint64  `json:"goroutines"`
	GCCycles        uint64  `json:"gc_cycles"` // cumulative since process start
	GCPauseP99      float64 `json:"gc_pause_p99_seconds"`
	SchedLatencyP99 float64 `json:"sched_latency_p99_seconds"`
	// Counters holds service-counter deltas between this sample and the
	// previous one; the first sample reports totals since process start.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// CollectorConfig sizes a Collector.
type CollectorConfig struct {
	// Interval between samples. Default 10s.
	Interval time.Duration
	// RingSize bounds retained samples. Default 360 (an hour at 10s).
	RingSize int
	// Counters, when set, is read at every sample; the sample records the
	// per-key delta since the previous reading. Must be safe to call from
	// the collector goroutine.
	Counters func() map[string]int64
}

// Collector samples runtime/metrics on a fixed interval into a bounded
// time-series ring: the "was GC thrashing at 14:02" half of the flight
// recorder. A nil *Collector is valid and inert.
type Collector struct {
	interval time.Duration
	counters func() map[string]int64

	mu           sync.Mutex
	ring         []TelemetrySample
	next, count  int
	samples      []metrics.Sample // reused across reads
	prevGC       []uint64         // previous /gc/pauses histogram counts
	prevSched    []uint64         // previous /sched/latencies histogram counts
	prevCounters map[string]int64

	stop chan struct{}
	done chan struct{}
}

// Indices into the metrics.Sample batch below.
const (
	tmHeapBytes = iota
	tmHeapObjects
	tmGoroutines
	tmGCCycles
	tmGCPauses
	tmSchedLatencies
	tmLen
)

var telemetryNames = [tmLen]string{
	tmHeapBytes:      "/memory/classes/heap/objects:bytes",
	tmHeapObjects:    "/gc/heap/objects:objects",
	tmGoroutines:     "/sched/goroutines:goroutines",
	tmGCCycles:       "/gc/cycles/total:gc-cycles",
	tmGCPauses:       "/gc/pauses:seconds",
	tmSchedLatencies: "/sched/latencies:seconds",
}

// NewCollector builds a Collector; zero config fields take the documented
// defaults. The collector is idle until Start.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 360
	}
	c := &Collector{
		interval: cfg.Interval,
		counters: cfg.Counters,
		ring:     make([]TelemetrySample, cfg.RingSize),
		samples:  make([]metrics.Sample, tmLen),
	}
	for i, name := range telemetryNames {
		c.samples[i].Name = name
	}
	return c
}

// Interval returns the sampling interval (0 for nil).
func (c *Collector) Interval() time.Duration {
	if c == nil {
		return 0
	}
	return c.interval
}

// Capacity returns the ring bound (0 for nil).
func (c *Collector) Capacity() int {
	if c == nil {
		return 0
	}
	return len(c.ring)
}

// Start takes an immediate first sample, then samples every interval until
// Stop. Calling Start twice is a no-op. Nil-safe.
func (c *Collector) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()

	c.SampleNow()
	go func() {
		defer close(done)
		tick := time.NewTicker(c.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.SampleNow()
			}
		}
	}()
}

// Stop halts sampling and waits for the collector goroutine to exit.
// Idempotent and nil-safe; the sample ring stays readable after Stop.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SampleNow takes one sample immediately and records it in the ring.
// Exported so tests and benchmarks can drive the collector without timers.
func (c *Collector) SampleNow() TelemetrySample {
	if c == nil {
		return TelemetrySample{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	s := TelemetrySample{UnixMs: time.Now().UnixMilli()}
	s.HeapBytes = uint64Metric(&c.samples[tmHeapBytes])
	s.HeapObjects = uint64Metric(&c.samples[tmHeapObjects])
	s.Goroutines = uint64Metric(&c.samples[tmGoroutines])
	s.GCCycles = uint64Metric(&c.samples[tmGCCycles])
	s.GCPauseP99, c.prevGC = histDeltaP99(&c.samples[tmGCPauses], c.prevGC)
	s.SchedLatencyP99, c.prevSched = histDeltaP99(&c.samples[tmSchedLatencies], c.prevSched)
	if c.counters != nil {
		now := c.counters()
		deltas := make(map[string]int64, len(now))
		for k, v := range now {
			deltas[k] = v - c.prevCounters[k]
		}
		c.prevCounters = now
		s.Counters = deltas
	}
	c.ring[c.next] = s
	c.next = (c.next + 1) % len(c.ring)
	if c.count < len(c.ring) {
		c.count++
	}
	return s
}

// Samples returns the retained samples, oldest first. Nil-safe.
func (c *Collector) Samples() []TelemetrySample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TelemetrySample, 0, c.count)
	for i := 0; i < c.count; i++ {
		out = append(out, c.ring[((c.next-c.count+i)%len(c.ring)+len(c.ring))%len(c.ring)])
	}
	return out
}

// Latest returns the most recent sample; ok is false when none has been
// taken yet. Nil-safe.
func (c *Collector) Latest() (TelemetrySample, bool) {
	if c == nil {
		return TelemetrySample{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return TelemetrySample{}, false
	}
	return c.ring[((c.next-1)%len(c.ring)+len(c.ring))%len(c.ring)], true
}

func uint64Metric(s *metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// histDeltaP99 returns the p99 of a cumulative runtime/metrics histogram
// over the window since prev (the previous reading's counts), plus the
// current counts for the next call. With no events in the window it
// returns 0.
func histDeltaP99(s *metrics.Sample, prev []uint64) (float64, []uint64) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0, prev
	}
	h := s.Value.Float64Histogram()
	cur := append([]uint64(nil), h.Counts...)
	delta := make([]uint64, len(cur))
	var total uint64
	for i := range cur {
		d := cur[i]
		if len(prev) == len(cur) && prev[i] <= cur[i] {
			d = cur[i] - prev[i]
		}
		delta[i] = d
		total += d
	}
	if total == 0 {
		return 0, cur
	}
	target := uint64(float64(total) * 0.99)
	var cum uint64
	for i, d := range delta {
		cum += d
		if cum > target || (cum == total && cum >= target) {
			// Buckets has len(Counts)+1 boundaries; report the bucket's
			// upper bound, falling back to the lower one at +Inf.
			hi := h.Buckets[i+1]
			if math.IsNaN(hi) || math.IsInf(hi, 1) {
				return h.Buckets[i], cur
			}
			return hi, cur
		}
	}
	return h.Buckets[len(h.Buckets)-1], cur
}
