package obs

import "strings"

// Traceparent renders the span context as a W3C trace-context traceparent
// header (version 00, sampled flag set), or "" for a zero context — so a
// forwarder can unconditionally `if tp != "" { set header }`.
func (sc SpanContext) Traceparent() string {
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return ""
	}
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(sc.TraceID.String())
	b.WriteString("-")
	b.WriteString(sc.SpanID.String())
	b.WriteString("-01")
	return b.String()
}

// Traceparent returns the header value identifying s for injection into an
// outbound request; "" for a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return s.sc.Traceparent()
}

// ParseTraceparent decodes a W3C traceparent header
// (version-traceid-spanid-flags). Per the spec, an unknown version is
// accepted as long as the version-00 prefix fields parse; version "ff" and
// zero IDs are invalid. Returns the zero SpanContext and false on any
// malformed input, which callers treat as "no remote parent".
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.SplitN(h, "-", 4)
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	version := parts[0]
	if len(version) != 2 || version == "ff" || !isHex(version) {
		return SpanContext{}, false
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return SpanContext{}, false
	}
	sid, ok := ParseSpanID(parts[2])
	if !ok {
		return SpanContext{}, false
	}
	if len(parts[3]) < 2 || !isHex(parts[3][:2]) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: sid}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
