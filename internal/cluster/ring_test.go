package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys returns n fingerprint-shaped keys (hex SHA-256 strings, exactly
// what the service hands the ring).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("request-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func nodeNames(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return nodes
}

// TestRingBalance: across 2–8 nodes, every node owns a reasonable share of
// a large keyspace — no node starves and no node hoards.
func TestRingBalance(t *testing.T) {
	keys := testKeys(20000)
	for n := 2; n <= 8; n++ {
		r := NewRing(nodeNames(n), 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d nodes: only %d received keys", n, len(counts))
		}
		fair := len(keys) / n
		for node, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("%d nodes: %s owns %d keys, fair share is %d", n, node, c, fair)
			}
		}
	}
}

// TestRingDeterminism: membership order must not matter — every replica
// builds the identical ring from its -peers list however it is written.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c/", " http://a", "http://b", "http://b/"}, 0)
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("permuted membership changed ownership of %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingMinimalRemappingOnAdd: growing the fleet by one node moves keys
// only onto the new node — a key's owner either stays put or becomes the
// newcomer — and the moved fraction is near 1/(n+1).
func TestRingMinimalRemappingOnAdd(t *testing.T) {
	keys := testKeys(20000)
	for n := 2; n <= 6; n++ {
		old := NewRing(nodeNames(n), 0)
		grown := NewRing(nodeNames(n+1), 0) // adds replica-n
		added := NormalizeNode(nodeNames(n + 1)[n])
		moved := 0
		for _, k := range keys {
			before, after := old.Owner(k), grown.Owner(k)
			if before == after {
				continue
			}
			if after != added {
				t.Fatalf("%d->%d nodes: key moved %s -> %s, not to the added node", n, n+1, before, after)
			}
			moved++
		}
		want := len(keys) / (n + 1)
		if moved < want/2 || moved > want*2 {
			t.Errorf("%d->%d nodes: %d keys moved, expected about %d", n, n+1, moved, want)
		}
	}
}

// TestRingMinimalRemappingOnRemove: removing a node reassigns only the
// keys it owned; everything else stays put.
func TestRingMinimalRemappingOnRemove(t *testing.T) {
	keys := testKeys(20000)
	nodes := nodeNames(5)
	full := NewRing(nodes, 0)
	removed := NormalizeNode(nodes[2])
	shrunk := NewRing(append(append([]string{}, nodes[:2]...), nodes[3:]...), 0)
	for _, k := range keys {
		before, after := full.Owner(k), shrunk.Owner(k)
		if before == removed {
			if after == removed {
				t.Fatalf("key %s still owned by the removed node", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring", k, before, after)
		}
	}
}

// TestRingEdgeCases: empty ring, single node, Contains normalization.
func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("k"); owner != "" {
		t.Fatalf("empty ring owns %q", owner)
	}
	one := NewRing([]string{"http://solo:1"}, 0)
	for _, k := range testKeys(50) {
		if one.Owner(k) != "http://solo:1" {
			t.Fatal("single-node ring split ownership")
		}
	}
	r := NewRing([]string{"http://a:8080/", "http://b:8080"}, 0)
	if !r.Contains("http://a:8080") || !r.Contains("http://a:8080/") {
		t.Fatal("Contains must normalize")
	}
	if r.Contains("http://c:8080") {
		t.Fatal("Contains invented a member")
	}
	if got := len(r.Nodes()); got != 2 {
		t.Fatalf("Nodes: %d", got)
	}
}
