// Package cluster implements the fingerprint-sharded peer routing behind
// hservd's fleet mode. The service's cache keys are canonical request
// fingerprints — content addresses — so a consistent-hash ring over the
// replica set assigns every key exactly one owning replica: requests for
// non-owned keys forward to the owner, and N replicas coalesce globally
// instead of each computing (and caching) its own copy.
//
// The ring is the classic virtual-node construction: each node is hashed
// onto the ring at VirtualNodes points, a key is owned by the first node
// point at or clockwise-after the key's hash, and membership changes move
// only the keys adjacent to the added or removed node's points — adding a
// node to an n-node ring remaps roughly 1/(n+1) of the keyspace, all of it
// onto the new node, and removing one remaps only the keys it owned.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-node point count used when NewRing is
// given a non-positive count: enough for <3% keyspace imbalance across the
// 2–8 replica fleets the service targets, small enough that ring
// construction stays microseconds.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a set of node names
// (replica base URLs, in the service). Construct with NewRing; membership
// changes build a new Ring, which keeps every lookup lock-free.
type Ring struct {
	vnodes int
	nodes  []string // deduplicated, sorted
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with vnodes virtual points per node
// (DefaultVirtualNodes when vnodes <= 0). Node names are normalized with
// NormalizeNode, deduplicated and sorted, so any permutation of the same
// membership yields an identical ring on every replica.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, n := range nodes {
		n = NormalizeNode(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // deterministic on collision
	})
	return r
}

// Owner returns the node owning key: the first ring point at or after the
// key's hash, wrapping at the top. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring's membership, normalized and sorted. The slice
// is shared: callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Contains reports whether node (after normalization) is a ring member.
func (r *Ring) Contains(node string) bool {
	node = NormalizeNode(node)
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// NormalizeNode canonicalizes a node name so that textual variants of the
// same replica URL ("http://a:8080" vs "http://a:8080/") land on the same
// ring points everywhere.
func NormalizeNode(node string) string {
	return strings.TrimRight(strings.TrimSpace(node), "/")
}

// hash64 maps a string onto the ring: the first 8 bytes of its SHA-256,
// big-endian. SHA-256 keeps point placement uniform (the balance property
// the vnode count is sized for) and identical across architectures.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
