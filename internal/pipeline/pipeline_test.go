package pipeline

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSequentialAndPipelined(t *testing.T) {
	m := Model{TFine: 100, TCoarse: 40, TComm: 10}
	if got := m.Sequential(4); got != 4*150 {
		t.Fatalf("Sequential(4) = %d, want 600", got)
	}
	// Fill (150) + 3 frames × slower stage (100).
	if got := m.Pipelined(4); got != 150+3*100 {
		t.Fatalf("Pipelined(4) = %d, want 450", got)
	}
	if m.Speedup(4) <= 1 {
		t.Fatalf("no speedup: %f", m.Speedup(4))
	}
}

func TestBalancedStagesApproachTwo(t *testing.T) {
	m := Model{TFine: 100, TCoarse: 90, TComm: 10}
	s := m.Speedup(1000)
	if s < 1.9 || s > 2.0 {
		t.Fatalf("balanced speedup = %f, want ~2", s)
	}
}

func TestSingleFrameNoGain(t *testing.T) {
	m := Model{TFine: 100, TCoarse: 50, TComm: 5}
	if m.Pipelined(1) != m.Sequential(1) {
		t.Fatalf("one frame: pipelined %d != sequential %d", m.Pipelined(1), m.Sequential(1))
	}
	if m.Speedup(1) != 1 {
		t.Fatalf("Speedup(1) = %f", m.Speedup(1))
	}
}

func TestZeroAndNegativeFrames(t *testing.T) {
	m := Model{TFine: 10, TCoarse: 10}
	if m.Sequential(0) != 0 || m.Pipelined(0) != 0 || m.Sequential(-3) != 0 {
		t.Fatal("zero/negative frame counts must cost nothing")
	}
}

func TestUtilization(t *testing.T) {
	m := Model{TFine: 100, TCoarse: 40, TComm: 10}
	fine, coarse := m.Utilization()
	if fine != 1.0 {
		t.Fatalf("fine utilization = %f, want 1.0 (bottleneck stage)", fine)
	}
	if coarse != 0.5 {
		t.Fatalf("coarse utilization = %f, want 0.5", coarse)
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{TFine: -1}).Validate(); err == nil {
		t.Fatal("negative stage accepted")
	}
	if err := (Model{TFine: 1, TCoarse: 2, TComm: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReportShape(t *testing.T) {
	out := Model{TFine: 10, TCoarse: 5, TComm: 1}.Report([]int{1, 10, 100})
	if !strings.Contains(out, "speedup") || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("report malformed:\n%s", out)
	}
}

// Property: 1 <= speedup <= 2 for any non-degenerate model; pipelined never
// exceeds sequential; both monotone in frames.
func TestPipelinePropertiesQuick(t *testing.T) {
	check := func(fineRaw, coarseRaw, commRaw uint16, framesRaw uint8) bool {
		m := Model{
			TFine:   int64(fineRaw) + 1,
			TCoarse: int64(coarseRaw),
			TComm:   int64(commRaw),
		}
		frames := int(framesRaw%64) + 1
		seq, pip := m.Sequential(frames), m.Pipelined(frames)
		if pip > seq {
			return false
		}
		s := m.Speedup(frames)
		if s < 1.0-1e-9 || s > 2.0+1e-9 {
			return false
		}
		if frames > 1 && m.Pipelined(frames) < m.Pipelined(frames-1) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
