// Package pipeline implements the paper's ongoing work: "multiple threads
// of execution for parallel operation of the fine and coarse-grain
// reconfigurable blocks". Within one frame the two fabrics execute mutually
// exclusively (the methodology's assumption), but DSP and multimedia
// applications process a stream of frames, and "through the pipelining
// among the stages of computations, the reconfigurable processing units of
// the hybrid architecture are always utilized" (section 3). This package
// models that two-stage frame pipeline: while the coarse-grain data-path
// accelerates frame i's kernels, the FPGA already works on frame i+1.
package pipeline

import "fmt"

// Model carries the per-frame timing split produced by the partitioning
// engine, in FPGA cycles.
type Model struct {
	// TFine is the per-frame time of the FPGA-resident blocks.
	TFine int64
	// TCoarse is the per-frame time of the moved kernels on the data-path.
	TCoarse int64
	// TComm is the per-frame fabric-to-fabric transfer time; it is charged
	// to the coarse stage (transfers happen at kernel entry/exit).
	TComm int64
}

// Validate rejects physically meaningless splits.
func (m Model) Validate() error {
	if m.TFine < 0 || m.TCoarse < 0 || m.TComm < 0 {
		return fmt.Errorf("pipeline: negative stage time: %+v", m)
	}
	return nil
}

// coarseStage is the data-path stage including transfers.
func (m Model) coarseStage() int64 { return m.TCoarse + m.TComm }

// Sequential returns the execution time of frames frames with mutually
// exclusive fabric operation (the baseline methodology).
func (m Model) Sequential(frames int) int64 {
	if frames <= 0 {
		return 0
	}
	return int64(frames) * (m.TFine + m.coarseStage())
}

// Pipelined returns the execution time with two-stage frame pipelining:
// the first frame fills the pipe; afterwards each frame costs the slower
// stage.
func (m Model) Pipelined(frames int) int64 {
	if frames <= 0 {
		return 0
	}
	stage := m.TFine
	if m.coarseStage() > stage {
		stage = m.coarseStage()
	}
	return (m.TFine + m.coarseStage()) + int64(frames-1)*stage
}

// Speedup returns Sequential/Pipelined for the given frame count (1.0 when
// either is zero). A two-stage pipeline is bounded by 2× and approaches
// the bound as stages balance and the frame count grows.
func (m Model) Speedup(frames int) float64 {
	p := m.Pipelined(frames)
	if p == 0 {
		return 1
	}
	return float64(m.Sequential(frames)) / float64(p)
}

// Utilization returns the busy fraction of each fabric in steady state
// (fine, coarse) under pipelining.
func (m Model) Utilization() (fine, coarse float64) {
	stage := m.TFine
	if m.coarseStage() > stage {
		stage = m.coarseStage()
	}
	if stage == 0 {
		return 0, 0
	}
	return float64(m.TFine) / float64(stage), float64(m.coarseStage()) / float64(stage)
}

// Report formats a frame-sweep comparison table.
func (m Model) Report(frameCounts []int) string {
	out := fmt.Sprintf("%-8s %-14s %-14s %-8s\n", "frames", "sequential", "pipelined", "speedup")
	for _, n := range frameCounts {
		out += fmt.Sprintf("%-8d %-14d %-14d %-8.3f\n", n, m.Sequential(n), m.Pipelined(n), m.Speedup(n))
	}
	return out
}
