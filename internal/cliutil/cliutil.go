// Package cliutil holds the small helpers the hybridpart CLIs share, so
// flag conventions (comma-separated -args, -src loading) stay identical
// across hpart, hprof and hsim instead of drifting as per-command copies.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridpart"
)

// ParseArgs parses a comma-separated -args list into scalar arguments for
// the entry function. The empty string is no arguments.
func ParseArgs(argList string) ([]int32, error) {
	if argList == "" {
		return nil, nil
	}
	var args []int32
	for _, part := range strings.Split(argList, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad -args value %q: %v", part, err)
		}
		args = append(args, int32(v))
	}
	return args, nil
}

// SourceWorkload loads a mini-C source file, compiles it and profiles one
// run of entry with the given comma-separated scalar arguments — the -src
// path every CLI offers next to -bench.
func SourceWorkload(path, entry, argList string) (*hybridpart.Workload, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	w, err := hybridpart.NewWorkload(string(text), entry)
	if err != nil {
		return nil, err
	}
	args, err := ParseArgs(argList)
	if err != nil {
		return nil, err
	}
	if _, err := w.Run(args...); err != nil {
		return nil, err
	}
	return w, nil
}
