// Package cliutil holds the small helpers the hybridpart CLIs share, so
// flag conventions (comma-separated -args, -src loading) stay identical
// across hpart, hprof and hsim instead of drifting as per-command copies.
package cliutil

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridpart"
	"hybridpart/internal/obs"
)

// ParseArgs parses a comma-separated -args list into scalar arguments for
// the entry function. The empty string is no arguments.
func ParseArgs(argList string) ([]int32, error) {
	if argList == "" {
		return nil, nil
	}
	var args []int32
	for _, part := range strings.Split(argList, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad -args value %q: %v", part, err)
		}
		args = append(args, int32(v))
	}
	return args, nil
}

// SourceWorkload loads a mini-C source file, compiles it and profiles one
// run of entry with the given comma-separated scalar arguments — the -src
// path every CLI offers next to -bench.
func SourceWorkload(path, entry, argList string) (*hybridpart.Workload, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	w, err := hybridpart.NewWorkload(string(text), entry)
	if err != nil {
		return nil, err
	}
	args, err := ParseArgs(argList)
	if err != nil {
		return nil, err
	}
	if _, err := w.Run(args...); err != nil {
		return nil, err
	}
	return w, nil
}

// RunTrace owns one CLI run's span trace: a single-trace ring, its root
// span, and the -trace-out path the Chrome trace-event file goes to.
type RunTrace struct {
	tracer *obs.Tracer
	root   *obs.Span
	path   string
}

// TraceRun arms span tracing for one CLI run — the shared -trace-out
// implementation behind hpart, hsim and hsweep, so all three record runs
// exactly like a service request (same span names, same export format).
// With an empty path tracing stays off and the returned *RunTrace is nil;
// Close is nil-safe, so callers need no conditionals.
func TraceRun(ctx context.Context, path, service, root string, attrs ...obs.Attr) (context.Context, *RunTrace) {
	if path == "" {
		return ctx, nil
	}
	tracer := obs.New(obs.Config{Service: service, RingSize: 1})
	ctx, span := tracer.StartRoot(ctx, root, obs.SpanContext{}, attrs...)
	return ctx, &RunTrace{tracer: tracer, root: span, path: path}
}

// Close ends the run's root span and writes the trace file. It must run
// after the traced call returns, error or not — a failed run's partial
// trace is exactly what the flag exists to capture.
func (rt *RunTrace) Close() error {
	if rt == nil {
		return nil
	}
	rt.root.End()
	return os.WriteFile(rt.path, obs.ChromeTrace(rt.tracer.Traces()), 0o644)
}
