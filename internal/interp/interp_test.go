package interp

import (
	"testing"

	"hybridpart/internal/ir"
)

// buildCountdown builds: f(n) { while (n > 0) { g[0] = g[0] + n; n-- } return g[0] }
func buildCountdown() *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal(ir.ArrayDecl{Name: "g", Len: 4, Init: []int32{100}})
	f := ir.NewFunction("f")
	n := f.NewReg("n")
	f.Params = []ir.Param{{Name: "n", Reg: n, Arr: ir.NoArr}}
	f.HasRet = true
	cond := f.NewReg("")
	tmp := f.NewReg("")

	entry := f.Block(f.Entry)
	loop := f.AddBlock("loop")
	exit := f.AddBlock("exit")

	entry.Term = ir.Terminator{Kind: ir.TermJump, Then: loop.ID}
	loop.Instrs = []ir.Instr{
		{Op: ir.OpGt, Dst: cond, A: ir.Reg(n), B: ir.Imm(0)},
	}
	body := f.AddBlock("body")
	loop.Term = ir.Terminator{Kind: ir.TermBranch, Cond: ir.Reg(cond), Then: body.ID, Else: exit.ID}
	body.Instrs = []ir.Instr{
		{Op: ir.OpLoad, Dst: tmp, A: ir.Imm(0), Arr: g},
		{Op: ir.OpAdd, Dst: tmp, A: ir.Reg(tmp), B: ir.Reg(n)},
		{Op: ir.OpStore, A: ir.Imm(0), B: ir.Reg(tmp), Arr: g},
		{Op: ir.OpSub, Dst: n, A: ir.Reg(n), B: ir.Imm(1)},
	}
	body.Term = ir.Terminator{Kind: ir.TermJump, Then: loop.ID}
	exit.Instrs = []ir.Instr{{Op: ir.OpLoad, Dst: tmp, A: ir.Imm(0), Arr: g}}
	exit.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.Reg(tmp), HasVal: true}
	if err := p.AddFunc(f); err != nil {
		panic(err)
	}
	return p
}

func TestGlobalsPersistAcrossRuns(t *testing.T) {
	p := buildCountdown()
	m := New(p)
	v, err := m.Run("f", Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if v != 100+10 {
		t.Fatalf("first run = %d, want 110", v)
	}
	// Globals persist: second run accumulates on top.
	v, err = m.Run("f", Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if v != 110+10 {
		t.Fatalf("second run = %d, want 120", v)
	}
	// ResetGlobals restores the declared initial value.
	m.ResetGlobals()
	v, err = m.Run("f", Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if v != 110 {
		t.Fatalf("after reset = %d, want 110", v)
	}
}

func TestEdgeProfile(t *testing.T) {
	p := buildCountdown()
	m := New(p)
	prof := m.EnableProfile()
	if _, err := m.Run("f", Int(5)); err != nil {
		t.Fatal(err)
	}
	f := p.Func("f")
	// The back edge body->loop is taken exactly 5 times.
	var loopID, bodyID ir.BlockID = -1, -1
	for _, b := range f.Blocks {
		switch b.Name {
		case "loop":
			loopID = b.ID
		case "body":
			bodyID = b.ID
		}
	}
	if got := prof.EdgeCount("f", bodyID, loopID); got != 5 {
		t.Fatalf("back edge count = %d, want 5", got)
	}
	// loop executed 6 times (5 taken + 1 exit).
	if got := prof.BlockCount("f", loopID); got != 6 {
		t.Fatalf("loop count = %d, want 6", got)
	}
	// Edge key round-trip.
	k := Edge(bodyID, loopID)
	if k.From() != bodyID || k.To() != loopID {
		t.Fatalf("edge key round-trip broken: %v", k)
	}
}

func TestArgumentMismatch(t *testing.T) {
	p := buildCountdown()
	m := New(p)
	if _, err := m.Run("f"); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, err := m.Run("f", Array([]int32{1})); err == nil {
		t.Fatal("array for scalar parameter accepted")
	}
	if _, err := m.Run("nope"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestCallDepthLimit(t *testing.T) {
	// Direct recursion via hand-built IR (the frontend rejects it, the
	// interpreter must trap rather than overflow).
	p := ir.NewProgram()
	f := ir.NewFunction("r")
	f.HasRet = true
	dst := f.NewReg("")
	b := f.Block(f.Entry)
	b.Instrs = []ir.Instr{{Op: ir.OpCall, Callee: "r", CallHasDst: true, Dst: dst}}
	b.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.Reg(dst), HasVal: true}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.MaxDepth = 50
	if _, err := m.Run("r"); err == nil {
		t.Fatal("unbounded recursion did not trap")
	}
}

func TestStepsAccounting(t *testing.T) {
	p := buildCountdown()
	m := New(p)
	if _, err := m.Run("f", Int(3)); err != nil {
		t.Fatal(err)
	}
	if m.Steps() == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestTrapCarriesContext(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction("t")
	f.HasRet = true
	g := f.AddArray(ir.ArrayDecl{Name: "a", Len: 2})
	dst := f.NewReg("")
	b := f.Block(f.Entry)
	b.Instrs = []ir.Instr{{Op: ir.OpLoad, Dst: dst, A: ir.Imm(99), Arr: g, Pos: 42}}
	b.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.Reg(dst), HasVal: true}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	_, err := New(p).Run("t")
	trap, ok := err.(*Trap)
	if !ok {
		t.Fatalf("error %T, want *Trap", err)
	}
	if trap.Func != "t" || trap.Pos != 42 {
		t.Fatalf("trap context wrong: %+v", trap)
	}
}
