// Package interp executes ir programs with exact 32-bit integer semantics
// and records per-basic-block execution counts. It plays the role of the
// paper's dynamic-analysis step: where the authors instrument the C source
// with Lex-inserted counters, compile and run it on representative input
// vectors, we interpret the lowered CDFG directly — producing the same
// artifact, the execution frequency of every basic block.
package interp

import (
	"fmt"

	"hybridpart/internal/ir"
)

// EdgeKey packs a control-flow edge (from → to) into one map key.
type EdgeKey uint64

// Edge builds the key for the transition from block u to block v.
func Edge(u, v ir.BlockID) EdgeKey {
	return EdgeKey(uint64(uint32(u))<<32 | uint64(uint32(v)))
}

// From returns the edge's source block.
func (e EdgeKey) From() ir.BlockID { return ir.BlockID(uint32(e >> 32)) }

// To returns the edge's destination block.
func (e EdgeKey) To() ir.BlockID { return ir.BlockID(uint32(e)) }

// Profile records dynamic-analysis results.
type Profile struct {
	// Counts maps function name to per-block execution counts, indexed by
	// BlockID.
	Counts map[string][]uint64
	// Edges maps function name to taken control-flow transition counts;
	// the fine-grain reconfiguration model charges partition crossings on
	// these edges.
	Edges map[string]map[EdgeKey]uint64
	// Instrs is the total number of IR instructions executed.
	Instrs uint64
}

// EdgeCount returns the taken count of edge u→v in function fn.
func (p *Profile) EdgeCount(fn string, u, v ir.BlockID) uint64 {
	return p.Edges[fn][Edge(u, v)]
}

// BlockCount returns the execution count of block id of function fn.
func (p *Profile) BlockCount(fn string, id ir.BlockID) uint64 {
	c := p.Counts[fn]
	if int(id) >= len(c) {
		return 0
	}
	return c[id]
}

// Trap is a runtime error with source context.
type Trap struct {
	Func string
	Pos  int // source line
	Msg  string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("interp: trap in %s (line %d): %s", t.Func, t.Pos, t.Msg)
}

// Arg is an argument to Machine.Run: a scalar or an array binding. Array
// arguments alias the caller's slice, so results written by the program are
// visible to the host after Run returns.
type Arg struct {
	Scalar  int32
	Arr     []int32
	IsArray bool
}

// Int returns a scalar argument.
func Int(v int32) Arg { return Arg{Scalar: v} }

// Array returns an array argument aliasing s.
func Array(s []int32) Arg { return Arg{Arr: s, IsArray: true} }

// Machine executes one program. Globals persist across Run calls.
type Machine struct {
	prog    *ir.Program
	globals [][]int32
	profile *Profile

	// MaxSteps bounds the number of executed instructions (0 = default of
	// 2^32). The bound makes runaway loops fail deterministically in tests.
	MaxSteps uint64
	steps    uint64

	// MaxDepth bounds the call stack (default 256).
	MaxDepth int
	depth    int
}

// New creates a machine for prog with global arrays allocated and
// initialized.
func New(prog *ir.Program) *Machine {
	m := &Machine{prog: prog, MaxSteps: 1 << 32, MaxDepth: 256}
	m.globals = make([][]int32, len(prog.Globals))
	for i, g := range prog.Globals {
		m.globals[i] = make([]int32, g.Len)
		copy(m.globals[i], g.Init)
	}
	return m
}

// ResetGlobals restores every global array to its declared initial value.
func (m *Machine) ResetGlobals() {
	for i, g := range m.prog.Globals {
		buf := m.globals[i]
		for j := range buf {
			buf[j] = 0
		}
		copy(buf, g.Init)
	}
}

// Global returns the live storage of the named global array (nil if absent).
func (m *Machine) Global(name string) []int32 {
	for i, g := range m.prog.Globals {
		if g.Name == name {
			return m.globals[i]
		}
	}
	return nil
}

// EnableProfile attaches (and returns) a fresh profile; subsequent Run calls
// accumulate into it.
func (m *Machine) EnableProfile() *Profile {
	m.profile = &Profile{
		Counts: map[string][]uint64{},
		Edges:  map[string]map[EdgeKey]uint64{},
	}
	return m.profile
}

// Profile returns the attached profile, or nil.
func (m *Machine) Profile() *Profile { return m.profile }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// Run executes the named function with the given arguments and returns its
// result (0 for void functions).
func (m *Machine) Run(fn string, args ...Arg) (int32, error) {
	f := m.prog.Func(fn)
	if f == nil {
		return 0, fmt.Errorf("interp: function %q not found", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s takes %d arguments, got %d", fn, len(f.Params), len(args))
	}
	frame, err := m.newFrame(f, args)
	if err != nil {
		return 0, err
	}
	return m.exec(f, frame)
}

type frame struct {
	regs   []int32
	arrays [][]int32
}

func (m *Machine) newFrame(f *ir.Function, args []Arg) (*frame, error) {
	fr := &frame{
		regs:   make([]int32, f.NumRegs),
		arrays: make([][]int32, len(f.Arrays)),
	}
	// Local arrays own storage; parameter slots stay nil until bound.
	for i, a := range f.Arrays {
		if !a.IsParam {
			fr.arrays[i] = make([]int32, a.Len)
			copy(fr.arrays[i], a.Init)
		}
	}
	for i, p := range f.Params {
		a := args[i]
		if p.IsArray != a.IsArray {
			return nil, fmt.Errorf("interp: %s: argument %d array/scalar mismatch", f.Name, i+1)
		}
		if p.IsArray {
			fr.arrays[p.Arr] = a.Arr
		} else {
			fr.regs[p.Reg] = a.Scalar
		}
	}
	return fr, nil
}

func (m *Machine) arrayStorage(fr *frame, id ir.ArrID) ([]int32, bool) {
	if ir.IsGlobalArr(id) {
		i := ir.GlobalIndex(id)
		if i < 0 || i >= len(m.globals) {
			return nil, false
		}
		return m.globals[i], true
	}
	if id >= 0 && int(id) < len(fr.arrays) {
		return fr.arrays[id], true
	}
	return nil, false
}

func (m *Machine) exec(f *ir.Function, fr *frame) (int32, error) {
	m.depth++
	defer func() { m.depth-- }()
	maxDepth := m.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 256
	}
	if m.depth > maxDepth {
		return 0, &Trap{Func: f.Name, Msg: "call depth limit exceeded"}
	}

	var counts []uint64
	var edges map[EdgeKey]uint64
	if m.profile != nil {
		counts = m.profile.Counts[f.Name]
		if len(counts) < len(f.Blocks) {
			grown := make([]uint64, len(f.Blocks))
			copy(grown, counts)
			counts = grown
			m.profile.Counts[f.Name] = counts
		}
		edges = m.profile.Edges[f.Name]
		if edges == nil {
			edges = map[EdgeKey]uint64{}
			m.profile.Edges[f.Name] = edges
		}
	}

	eval := func(o ir.Operand) int32 {
		if o.Kind == ir.OperandImm {
			return o.Imm
		}
		return fr.regs[o.Reg]
	}

	b := f.Block(f.Entry)
	for {
		// A block entry charges one step even when the block is empty, so
		// instruction-free infinite loops still hit the step limit.
		m.steps++
		if m.steps > m.MaxSteps {
			return 0, &Trap{Func: f.Name, Msg: "step limit exceeded"}
		}
		if counts != nil {
			counts[b.ID]++
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			m.steps++
			if m.steps > m.MaxSteps {
				return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "step limit exceeded"}
			}
			if m.profile != nil {
				m.profile.Instrs++
			}
			switch in.Op {
			case ir.OpConst:
				fr.regs[in.Dst] = in.A.Imm
			case ir.OpCopy:
				fr.regs[in.Dst] = eval(in.A)
			case ir.OpAdd:
				fr.regs[in.Dst] = eval(in.A) + eval(in.B)
			case ir.OpSub:
				fr.regs[in.Dst] = eval(in.A) - eval(in.B)
			case ir.OpNeg:
				fr.regs[in.Dst] = -eval(in.A)
			case ir.OpMul:
				fr.regs[in.Dst] = eval(in.A) * eval(in.B)
			case ir.OpDiv:
				x, y := eval(in.A), eval(in.B)
				if y == 0 {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "division by zero"}
				}
				if x == -1<<31 && y == -1 {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "division overflow"}
				}
				fr.regs[in.Dst] = x / y
			case ir.OpRem:
				x, y := eval(in.A), eval(in.B)
				if y == 0 {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "remainder by zero"}
				}
				if x == -1<<31 && y == -1 {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "remainder overflow"}
				}
				fr.regs[in.Dst] = x % y
			case ir.OpAnd:
				fr.regs[in.Dst] = eval(in.A) & eval(in.B)
			case ir.OpOr:
				fr.regs[in.Dst] = eval(in.A) | eval(in.B)
			case ir.OpXor:
				fr.regs[in.Dst] = eval(in.A) ^ eval(in.B)
			case ir.OpNot:
				fr.regs[in.Dst] = ^eval(in.A)
			case ir.OpShl:
				fr.regs[in.Dst] = eval(in.A) << (uint32(eval(in.B)) & 31)
			case ir.OpShr:
				fr.regs[in.Dst] = eval(in.A) >> (uint32(eval(in.B)) & 31)
			case ir.OpEq:
				fr.regs[in.Dst] = b2i(eval(in.A) == eval(in.B))
			case ir.OpNe:
				fr.regs[in.Dst] = b2i(eval(in.A) != eval(in.B))
			case ir.OpLt:
				fr.regs[in.Dst] = b2i(eval(in.A) < eval(in.B))
			case ir.OpLe:
				fr.regs[in.Dst] = b2i(eval(in.A) <= eval(in.B))
			case ir.OpGt:
				fr.regs[in.Dst] = b2i(eval(in.A) > eval(in.B))
			case ir.OpGe:
				fr.regs[in.Dst] = b2i(eval(in.A) >= eval(in.B))
			case ir.OpLNot:
				fr.regs[in.Dst] = b2i(eval(in.A) == 0)
			case ir.OpLoad:
				arr, ok := m.arrayStorage(fr, in.Arr)
				if !ok {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "unresolved array"}
				}
				idx := eval(in.A)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, &Trap{Func: f.Name, Pos: in.Pos,
						Msg: fmt.Sprintf("load index %d out of range [0,%d)", idx, len(arr))}
				}
				fr.regs[in.Dst] = arr[idx]
			case ir.OpStore:
				arr, ok := m.arrayStorage(fr, in.Arr)
				if !ok {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "unresolved array"}
				}
				idx := eval(in.A)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, &Trap{Func: f.Name, Pos: in.Pos,
						Msg: fmt.Sprintf("store index %d out of range [0,%d)", idx, len(arr))}
				}
				arr[idx] = eval(in.B)
			case ir.OpCall:
				callee := m.prog.Func(in.Callee)
				if callee == nil {
					return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "call to undefined " + in.Callee}
				}
				args := make([]Arg, 0, len(callee.Params))
				si, ai := 0, 0
				for _, p := range callee.Params {
					if p.IsArray {
						store, ok := m.arrayStorage(fr, in.ArrArgs[ai])
						if !ok {
							return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "unresolved array argument"}
						}
						args = append(args, Array(store))
						ai++
					} else {
						args = append(args, Int(eval(in.Args[si])))
						si++
					}
				}
				sub, err := m.newFrame(callee, args)
				if err != nil {
					return 0, err
				}
				ret, err := m.exec(callee, sub)
				if err != nil {
					return 0, err
				}
				if in.CallHasDst {
					fr.regs[in.Dst] = ret
				}
			default:
				return 0, &Trap{Func: f.Name, Pos: in.Pos, Msg: "invalid opcode"}
			}
		}
		switch b.Term.Kind {
		case ir.TermJump:
			if edges != nil {
				edges[Edge(b.ID, b.Term.Then)]++
			}
			b = f.Block(b.Term.Then)
		case ir.TermBranch:
			next := b.Term.Else
			if eval(b.Term.Cond) != 0 {
				next = b.Term.Then
			}
			if edges != nil {
				edges[Edge(b.ID, next)]++
			}
			b = f.Block(next)
		case ir.TermReturn:
			if b.Term.HasVal {
				return eval(b.Term.Val), nil
			}
			return 0, nil
		default:
			return 0, &Trap{Func: f.Name, Msg: "unterminated block"}
		}
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
