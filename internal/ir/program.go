package ir

import (
	"fmt"
	"sort"
	"strings"
)

// ArrayDecl describes an array object. Arrays live in the platform's shared
// data memory; two-dimensional source arrays are lowered to one dimension
// with explicit index arithmetic.
type ArrayDecl struct {
	Name   string
	Len    int32   // number of int32 elements (0 for by-reference params)
	Init   []int32 // optional initializer (len <= Len); rest is zero
	Global bool
	// IsParam marks a by-reference array parameter slot: it owns no storage;
	// the interpreter aliases it to the caller's array and the inliner
	// substitutes the call-site array.
	IsParam bool
}

// Param describes a formal parameter of a Function.
type Param struct {
	Name    string
	IsArray bool
	Reg     RegID // scalar params: the register bound on entry
	Arr     ArrID // array params: the array slot bound on entry
}

// Function is a single procedure in CFG form.
type Function struct {
	Name    string
	Params  []Param
	HasRet  bool // returns a value
	NumRegs int  // virtual registers are 0..NumRegs-1
	// RegNames maps registers that correspond to named source variables;
	// compiler temporaries are absent.
	RegNames map[RegID]string
	Arrays   []ArrayDecl // parameter and local arrays (Global=false)
	Blocks   []*Block
	Entry    BlockID
}

// NewFunction returns an empty function with an entry block allocated.
func NewFunction(name string) *Function {
	f := &Function{Name: name, RegNames: map[RegID]string{}}
	f.Entry = f.AddBlock("entry").ID
	return f
}

// AddBlock appends a fresh, unterminated block.
func (f *Function) AddBlock(name string) *Block {
	b := &Block{ID: BlockID(len(f.Blocks)), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh virtual register, optionally named.
func (f *Function) NewReg(name string) RegID {
	r := RegID(f.NumRegs)
	f.NumRegs++
	if name != "" {
		f.RegNames[r] = name
	}
	return r
}

// AddArray appends a local/parameter array declaration and returns its ID.
func (f *Function) AddArray(d ArrayDecl) ArrID {
	f.Arrays = append(f.Arrays, d)
	return ArrID(len(f.Arrays) - 1)
}

// Block returns the block with the given ID, or nil if out of range.
func (f *Function) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(f.Blocks) {
		return nil
	}
	return f.Blocks[id]
}

// RecomputeEdges rebuilds the Preds/Succs lists from the terminators.
func (f *Function) RecomputeEdges() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succtargets() {
			b.Succs = append(b.Succs, s)
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, b.ID)
		}
	}
}

// Reachable returns the set of blocks reachable from the entry.
func (f *Function) Reachable() map[BlockID]bool {
	seen := map[BlockID]bool{}
	stack := []BlockID{f.Entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Out-of-range targets are tolerated here so Validate can report
		// them instead of panicking.
		if id < 0 || int(id) >= len(f.Blocks) || seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, f.Blocks[id].Succtargets()...)
	}
	return seen
}

// RegName returns the diagnostic name of r ("rN" for temporaries).
func (f *Function) RegName(r RegID) string {
	if n, ok := f.RegNames[r]; ok {
		return n
	}
	return fmt.Sprintf("r%d", r)
}

func (f *Function) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		if p.IsArray {
			params[i] = p.Name + "[]"
		} else {
			params[i] = p.Name
		}
	}
	fmt.Fprintf(&sb, "func %s(%s):\n", f.Name, strings.Join(params, ", "))
	for _, a := range f.Arrays {
		fmt.Fprintf(&sb, "  array %s[%d]\n", a.Name, a.Len)
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d: ; %s\n", b.ID, b.Name)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	return sb.String()
}

// Program is a whole translation unit.
type Program struct {
	Funcs   []*Function
	Globals []ArrayDecl
	byName  map[string]*Function
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{byName: map[string]*Function{}}
}

// AddFunc appends f; duplicate names are an error.
func (p *Program) AddFunc(f *Function) error {
	if p.byName == nil {
		p.byName = map[string]*Function{}
	}
	if _, dup := p.byName[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	p.byName[f.Name] = f
	p.Funcs = append(p.Funcs, f)
	return nil
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function {
	if p.byName == nil {
		p.byName = map[string]*Function{}
		for _, f := range p.Funcs {
			p.byName[f.Name] = f
		}
	}
	return p.byName[name]
}

// AddGlobal appends a global array and returns its ID (global array IDs are
// negative-offset encoded: see GlobalArr/IsGlobalArr).
func (p *Program) AddGlobal(d ArrayDecl) ArrID {
	d.Global = true
	p.Globals = append(p.Globals, d)
	return GlobalArr(len(p.Globals) - 1)
}

// Global array references are encoded as negative ArrIDs so that one operand
// field addresses both spaces: local arrays are 0,1,2,... and global array i
// is -(i+2) (NoArr is -1).

// GlobalArr encodes global index i as an ArrID.
func GlobalArr(i int) ArrID { return ArrID(-(i + 2)) }

// IsGlobalArr reports whether id refers to a global array.
func IsGlobalArr(id ArrID) bool { return id <= -2 }

// GlobalIndex decodes a global ArrID to its index in Program.Globals.
func GlobalIndex(id ArrID) int { return int(-id) - 2 }

// ArrayByRef resolves an ArrID against f's locals and p's globals.
func (p *Program) ArrayByRef(f *Function, id ArrID) (*ArrayDecl, bool) {
	switch {
	case IsGlobalArr(id):
		i := GlobalIndex(id)
		if i < 0 || i >= len(p.Globals) {
			return nil, false
		}
		return &p.Globals[i], true
	case id >= 0 && int(id) < len(f.Arrays):
		return &f.Arrays[id], true
	}
	return nil, false
}

// FuncNames returns the sorted list of function names (for stable output).
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}

func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s[%d]\n", g.Name, g.Len)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
