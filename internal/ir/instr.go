package ir

import (
	"fmt"
	"strings"
)

// RegID names a virtual register inside a Function. Registers hold 32-bit
// signed integers, the only scalar type of the source language.
type RegID int32

// NoReg marks an absent register operand.
const NoReg RegID = -1

// ArrID names an array inside a Function (locals and lowered parameters) or
// Program (globals, held in the shared data memory of the platform).
type ArrID int32

// NoArr marks an absent array operand.
const NoArr ArrID = -1

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	OperandNone OperandKind = iota // absent
	OperandReg                     // virtual register
	OperandImm                     // 32-bit immediate
)

// Operand is a source operand of an instruction: a register or an immediate.
type Operand struct {
	Kind OperandKind
	Reg  RegID
	Imm  int32
}

// Reg returns a register operand.
func Reg(r RegID) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OperandImm, Imm: v} }

// IsReg reports whether o is a register operand.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

// IsImm reports whether o is an immediate operand.
func (o Operand) IsImm() bool { return o.Kind == OperandImm }

func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		return fmt.Sprintf("r%d", o.Reg)
	case OperandImm:
		return fmt.Sprintf("%d", o.Imm)
	default:
		return "_"
	}
}

// Instr is a single three-address instruction.
//
// Operand usage by Op:
//
//	Const          Dst = Imm(A)      (A holds the immediate)
//	unary ops      Dst = op A
//	binary ops     Dst = A op B
//	Load           Dst = Arr[A]
//	Store          Arr[A] = B
//	Call           Dst = Callee(Args...)   (Dst only if CallHasDst)
type Instr struct {
	Op  Op
	Dst RegID
	A   Operand
	B   Operand
	Arr ArrID

	// Call fields. Args carries the scalar arguments in the order of the
	// callee's scalar parameters; ArrArgs carries the array arguments (by
	// reference) in the order of the callee's array parameters.
	Callee     string
	Args       []Operand
	ArrArgs    []ArrID
	CallHasDst bool

	// Pos is the 1-based source line of the originating statement, kept for
	// diagnostics and reports.
	Pos int
}

// HasDst reports whether the instruction writes Dst.
func (in *Instr) HasDst() bool {
	if in.Op == OpCall {
		return in.CallHasDst
	}
	return in.Op.HasDst()
}

// Uses appends every register read by the instruction to buf and returns it.
func (in *Instr) Uses(buf []RegID) []RegID {
	add := func(o Operand) {
		if o.Kind == OperandReg {
			buf = append(buf, o.Reg)
		}
	}
	add(in.A)
	add(in.B)
	for _, a := range in.Args {
		add(a)
	}
	return buf
}

func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.A.Imm)
	case OpCopy, OpNeg, OpNot, OpLNot:
		return fmt.Sprintf("r%d = %s %s", in.Dst, in.Op, in.A)
	case OpLoad:
		return fmt.Sprintf("r%d = load a%d[%s]", in.Dst, in.Arr, in.A)
	case OpStore:
		return fmt.Sprintf("store a%d[%s] = %s", in.Arr, in.A, in.B)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		call := fmt.Sprintf("call %s(%s)", in.Callee, strings.Join(args, ", "))
		if in.CallHasDst {
			return fmt.Sprintf("r%d = %s", in.Dst, call)
		}
		return call
	case OpInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}
