package ir

import "fmt"

// Validate checks structural well-formedness of the whole program: register
// and array operands in range, terminators present on reachable blocks,
// branch targets valid, call targets resolvable with matching arity.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Function) error {
	if f.Entry < 0 || int(f.Entry) >= len(f.Blocks) {
		return fmt.Errorf("entry block b%d out of range", f.Entry)
	}
	checkOperand := func(o Operand) error {
		if o.Kind == OperandReg && (o.Reg < 0 || int(o.Reg) >= f.NumRegs) {
			return fmt.Errorf("register r%d out of range [0,%d)", o.Reg, f.NumRegs)
		}
		return nil
	}
	reach := f.Reachable()
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == OpInvalid || in.Op >= opMax {
				return fmt.Errorf("b%d/%d: invalid opcode", b.ID, i)
			}
			if in.HasDst() && (in.Dst < 0 || int(in.Dst) >= f.NumRegs) {
				return fmt.Errorf("b%d/%d: dst r%d out of range", b.ID, i, in.Dst)
			}
			if err := checkOperand(in.A); err != nil {
				return fmt.Errorf("b%d/%d: %w", b.ID, i, err)
			}
			if err := checkOperand(in.B); err != nil {
				return fmt.Errorf("b%d/%d: %w", b.ID, i, err)
			}
			for _, a := range in.Args {
				if err := checkOperand(a); err != nil {
					return fmt.Errorf("b%d/%d: %w", b.ID, i, err)
				}
			}
			switch in.Op {
			case OpLoad, OpStore:
				if _, ok := p.ArrayByRef(f, in.Arr); !ok {
					return fmt.Errorf("b%d/%d: array a%d unresolved", b.ID, i, in.Arr)
				}
			case OpCall:
				callee := p.Func(in.Callee)
				if callee == nil {
					return fmt.Errorf("b%d/%d: call to undefined %q", b.ID, i, in.Callee)
				}
				nScalar, nArr := 0, 0
				for _, pr := range callee.Params {
					if pr.IsArray {
						nArr++
					} else {
						nScalar++
					}
				}
				if len(in.Args) != nScalar || len(in.ArrArgs) != nArr {
					return fmt.Errorf("b%d/%d: call %s: %d scalar + %d array args, want %d + %d",
						b.ID, i, in.Callee, len(in.Args), len(in.ArrArgs), nScalar, nArr)
				}
				for _, a := range in.ArrArgs {
					if _, ok := p.ArrayByRef(f, a); !ok {
						return fmt.Errorf("b%d/%d: call %s: array arg a%d unresolved", b.ID, i, in.Callee, a)
					}
				}
				if in.CallHasDst && !callee.HasRet {
					return fmt.Errorf("b%d/%d: call %s: void callee used as value", b.ID, i, in.Callee)
				}
			}
		}
		if !reach[b.ID] {
			continue
		}
		switch b.Term.Kind {
		case TermJump:
			if f.Block(b.Term.Then) == nil {
				return fmt.Errorf("b%d: jump target b%d out of range", b.ID, b.Term.Then)
			}
		case TermBranch:
			if f.Block(b.Term.Then) == nil || f.Block(b.Term.Else) == nil {
				return fmt.Errorf("b%d: branch target out of range", b.ID)
			}
			if err := checkOperand(b.Term.Cond); err != nil {
				return fmt.Errorf("b%d: branch cond: %w", b.ID, err)
			}
		case TermReturn:
			if b.Term.HasVal {
				if !f.HasRet {
					return fmt.Errorf("b%d: value return in void function", b.ID)
				}
				if err := checkOperand(b.Term.Val); err != nil {
					return fmt.Errorf("b%d: return value: %w", b.ID, err)
				}
			} else if f.HasRet {
				return fmt.Errorf("b%d: missing return value", b.ID)
			}
		default:
			return fmt.Errorf("b%d: reachable block unterminated", b.ID)
		}
	}
	return nil
}
