package ir

import (
	"fmt"
	"io"
	"strings"
)

// WriteCFGDot emits the control-flow graph of f in Graphviz DOT syntax.
func WriteCFGDot(w io.Writer, f *Function) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=monospace];\n", "cfg_"+f.Name)
	for _, b := range f.Blocks {
		var lines []string
		lines = append(lines, fmt.Sprintf("b%d: %s", b.ID, b.Name))
		for i := range b.Instrs {
			lines = append(lines, b.Instrs[i].String())
		}
		lines = append(lines, b.Term.String())
		fmt.Fprintf(&sb, "  b%d [label=%q];\n", b.ID, strings.Join(lines, "\\l")+"\\l")
	}
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case TermJump:
			fmt.Fprintf(&sb, "  b%d -> b%d;\n", b.ID, b.Term.Then)
		case TermBranch:
			fmt.Fprintf(&sb, "  b%d -> b%d [label=\"T\"];\n", b.ID, b.Term.Then)
			fmt.Fprintf(&sb, "  b%d -> b%d [label=\"F\"];\n", b.ID, b.Term.Else)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteDFGDot emits the data-flow graph of a single basic block in DOT
// syntax, ranking nodes by ASAP level as the fine-grain mapper sees them.
func WriteDFGDot(w io.Writer, d *DFG) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=ellipse, fontname=monospace];\n",
		fmt.Sprintf("dfg_%s_b%d", d.Fn.Name, d.Block.ID))
	for lvl := 1; lvl <= d.MaxLevel; lvl++ {
		nodes := d.NodesAtLevel(lvl)
		if len(nodes) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  { rank=same;")
		for _, n := range nodes {
			fmt.Fprintf(&sb, " n%d;", n)
		}
		fmt.Fprintf(&sb, " }\n")
	}
	for i := range d.Block.Instrs {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", i,
			fmt.Sprintf("%d: %s (L%d)", i, d.Block.Instrs[i].Op, d.ASAP[i]))
	}
	for u, succs := range d.Succs {
		for _, v := range succs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", u, v)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
