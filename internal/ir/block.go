package ir

import "fmt"

// BlockID indexes a basic block within its Function.
type BlockID int32

// NoBlock marks an absent block reference.
const NoBlock BlockID = -1

// TermKind discriminates the terminator of a basic block.
type TermKind uint8

// Terminator kinds. Every reachable block ends in exactly one terminator;
// this is the branch "at the end of each basic block [that] controls which
// basic block executes next" in the paper's definition.
const (
	TermNone   TermKind = iota // unterminated (only during construction)
	TermJump                   // unconditional jump to Then
	TermBranch                 // if Cond != 0 goto Then else goto Else
	TermReturn                 // return [Val]
)

// Terminator ends a basic block.
type Terminator struct {
	Kind   TermKind
	Cond   Operand // Branch only
	Then   BlockID // Jump/Branch target
	Else   BlockID // Branch fall-through
	Val    Operand // Return value (if HasVal)
	HasVal bool
	Pos    int
}

func (t Terminator) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jump b%d", t.Then)
	case TermBranch:
		return fmt.Sprintf("branch %s ? b%d : b%d", t.Cond, t.Then, t.Else)
	case TermReturn:
		if t.HasVal {
			return fmt.Sprintf("return %s", t.Val)
		}
		return "return"
	default:
		return "unterminated"
	}
}

// Block is a basic block: a straight-line instruction sequence with a single
// entry (its head) and a single exit (its terminator).
type Block struct {
	ID     BlockID
	Name   string // diagnostic label, e.g. "for.body"
	Instrs []Instr
	Term   Terminator

	// Preds and Succs are derived edge lists, maintained by
	// Function.RecomputeEdges.
	Preds []BlockID
	Succs []BlockID
}

// Succtargets returns the control-flow successors encoded by the terminator.
func (b *Block) Succtargets() []BlockID {
	switch b.Term.Kind {
	case TermJump:
		return []BlockID{b.Term.Then}
	case TermBranch:
		if b.Term.Then == b.Term.Else {
			return []BlockID{b.Term.Then}
		}
		return []BlockID{b.Term.Then, b.Term.Else}
	default:
		return nil
	}
}
