// Package ir defines the intermediate representation consumed by every stage
// of the partitioning methodology: a three-address-code control-flow graph
// (the CDFG of the paper) whose basic blocks expose per-block data-flow
// graphs (DFGs) for the fine- and coarse-grain mappers.
package ir

import "fmt"

// Op identifies the operation performed by an Instr.
type Op uint8

// Operation set. The benchmark DFGs contain only ALU-class operations,
// multiplications and memory accesses (the paper notes the absence of
// divisions); Div/Rem exist for frontend completeness and trap handling.
const (
	OpInvalid Op = iota

	// Value-producing ALU operations.
	OpConst // dst = imm
	OpCopy  // dst = a
	OpAdd   // dst = a + b
	OpSub   // dst = a - b
	OpNeg   // dst = -a
	OpAnd   // dst = a & b
	OpOr    // dst = a | b
	OpXor   // dst = a ^ b
	OpNot   // dst = ^a (bitwise complement)
	OpShl   // dst = a << b
	OpShr   // dst = a >> b (arithmetic)
	OpEq    // dst = a == b ? 1 : 0
	OpNe    // dst = a != b ? 1 : 0
	OpLt    // dst = a < b ? 1 : 0
	OpLe    // dst = a <= b ? 1 : 0
	OpGt    // dst = a > b ? 1 : 0
	OpGe    // dst = a >= b ? 1 : 0
	OpLNot  // dst = a == 0 ? 1 : 0 (logical not)

	// Multiplier-class operations.
	OpMul // dst = a * b

	// Divider-class operations (frontend completeness; absent from the
	// benchmark kernels, mapped with their own latency/area entries).
	OpDiv // dst = a / b (traps on b == 0)
	OpRem // dst = a % b (traps on b == 0)

	// Memory operations against a named array in the shared data memory.
	OpLoad  // dst = arr[a]
	OpStore // arr[a] = b

	// Call invokes another function of the program. The lowering pipeline
	// inlines all calls before mapping, so mappers normally never see one;
	// the interpreter supports them directly.
	OpCall // dst = callee(args...)

	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpCopy:    "copy",
	OpAdd:     "add",
	OpSub:     "sub",
	OpNeg:     "neg",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpNot:     "not",
	OpShl:     "shl",
	OpShr:     "shr",
	OpEq:      "eq",
	OpNe:      "ne",
	OpLt:      "lt",
	OpLe:      "le",
	OpGt:      "gt",
	OpGe:      "ge",
	OpLNot:    "lnot",
	OpMul:     "mul",
	OpDiv:     "div",
	OpRem:     "rem",
	OpLoad:    "load",
	OpStore:   "store",
	OpCall:    "call",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class groups operations by the hardware resource that executes them.
type Class uint8

// Resource classes used by characterization tables and the mappers.
const (
	ClassALU  Class = iota // add/sub/logic/shift/compare/copy/const
	ClassMul               // multiplier
	ClassDiv               // divider (rare)
	ClassMem               // shared-data-memory access
	ClassCall              // function call (barrier for mapping)
)

var classNames = [...]string{"alu", "mul", "div", "mem", "call"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf reports the resource class executing op.
func ClassOf(op Op) Class {
	switch op {
	case OpMul:
		return ClassMul
	case OpDiv, OpRem:
		return ClassDiv
	case OpLoad, OpStore:
		return ClassMem
	case OpCall:
		return ClassCall
	default:
		return ClassALU
	}
}

// HasDst reports whether op always writes a destination register. Calls are
// excluded here because void calls write nothing; use Instr.HasDst, which
// also consults the call's result flag.
func (op Op) HasDst() bool {
	switch op {
	case OpStore, OpInvalid, OpCall:
		return false
	}
	return true
}

// IsCommutative reports whether the operands of op may be swapped.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// NumOperands reports how many register/immediate source operands op reads
// (excluding call arguments, which are carried separately).
func (op Op) NumOperands() int {
	switch op {
	case OpConst:
		return 0
	case OpCopy, OpNeg, OpNot, OpLNot, OpLoad:
		return 1
	case OpCall:
		return 0
	case OpInvalid:
		return 0
	default:
		return 2
	}
}
