package ir

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildLinearFunc returns a function computing t2 = (a+b)*(a-b) in one block.
func buildLinearFunc() (*Program, *Function) {
	p := NewProgram()
	f := NewFunction("f")
	a := f.NewReg("a")
	b := f.NewReg("b")
	f.Params = []Param{{Name: "a", Reg: a}, {Name: "b", Reg: b}}
	f.HasRet = true
	t0, t1, t2 := f.NewReg(""), f.NewReg(""), f.NewReg("")
	entry := f.Block(f.Entry)
	entry.Instrs = []Instr{
		{Op: OpAdd, Dst: t0, A: Reg(a), B: Reg(b)},
		{Op: OpSub, Dst: t1, A: Reg(a), B: Reg(b)},
		{Op: OpMul, Dst: t2, A: Reg(t0), B: Reg(t1)},
	}
	entry.Term = Terminator{Kind: TermReturn, Val: Reg(t2), HasVal: true}
	if err := p.AddFunc(f); err != nil {
		panic(err)
	}
	return p, f
}

func TestValidateLinear(t *testing.T) {
	p, _ := buildLinearFunc()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	p, f := buildLinearFunc()
	f.Blocks[0].Instrs[0].A = Reg(99)
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range register")
	}
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	p, f := buildLinearFunc()
	f.Blocks[0].Term = Terminator{Kind: TermJump, Then: 42}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range jump target")
	}
}

func TestValidateCatchesMissingTerminator(t *testing.T) {
	p, f := buildLinearFunc()
	f.Blocks[0].Term = Terminator{}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted unterminated reachable block")
	}
}

func TestValidateCatchesUndefinedCallee(t *testing.T) {
	p, f := buildLinearFunc()
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, Instr{Op: OpCall, Callee: "nope"})
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted undefined callee")
	}
}

func TestValidateCatchesVoidValueReturn(t *testing.T) {
	p, f := buildLinearFunc()
	f.HasRet = false
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted value return from void function")
	}
}

func TestValidateCatchesUnresolvedArray(t *testing.T) {
	p, f := buildLinearFunc()
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs,
		Instr{Op: OpLoad, Dst: 2, A: Imm(0), Arr: 7})
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted unresolved array reference")
	}
}

func TestDFGLevelsAndEdges(t *testing.T) {
	_, f := buildLinearFunc()
	d := BuildDFG(f, f.Blocks[0])
	if got, want := d.NumNodes(), 3; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	// add and sub are independent (level 1); mul depends on both (level 2).
	if d.ASAP[0] != 1 || d.ASAP[1] != 1 || d.ASAP[2] != 2 {
		t.Fatalf("ASAP = %v, want [1 1 2]", d.ASAP)
	}
	if d.MaxLevel != 2 {
		t.Fatalf("MaxLevel = %d, want 2", d.MaxLevel)
	}
	if d.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", d.NumEdges())
	}
	// a and b are external inputs.
	if len(d.ExternalIn) != 2 {
		t.Fatalf("ExternalIn = %v, want two registers", d.ExternalIn)
	}
	if err := d.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}

func TestDFGMemoryDependences(t *testing.T) {
	p := NewProgram()
	f := NewFunction("g")
	arr := f.AddArray(ArrayDecl{Name: "x", Len: 8})
	i0 := f.NewReg("")
	v := f.NewReg("")
	b := f.Block(f.Entry)
	b.Instrs = []Instr{
		{Op: OpConst, Dst: i0, A: Imm(0)},              // 0
		{Op: OpLoad, Dst: v, A: Reg(i0), Arr: arr},     // 1: load x[0]
		{Op: OpStore, A: Reg(i0), B: Reg(v), Arr: arr}, // 2: WAR on 1
		{Op: OpLoad, Dst: v, A: Reg(i0), Arr: arr},     // 3: RAW on 2
		{Op: OpStore, A: Reg(i0), B: Reg(v), Arr: arr}, // 4: WAW on 2, WAR on 3
	}
	b.Term = Terminator{Kind: TermReturn}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d := BuildDFG(f, b)
	has := func(u, v int) bool {
		for _, s := range d.Succs[u] {
			if s == v {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		if !has(e[0], e[1]) {
			t.Errorf("missing memory dependence %d->%d", e[0], e[1])
		}
	}
	// Levels must serialize the chain load;store;load;store.
	if !(d.ASAP[1] < d.ASAP[2] && d.ASAP[2] < d.ASAP[3] && d.ASAP[3] < d.ASAP[4]) {
		t.Errorf("memory chain not serialized by ASAP levels: %v", d.ASAP)
	}
}

func TestDFGCallBarrier(t *testing.T) {
	p := NewProgram()
	callee := NewFunction("h")
	callee.Block(callee.Entry).Term = Terminator{Kind: TermReturn}
	if err := p.AddFunc(callee); err != nil {
		t.Fatal(err)
	}
	f := NewFunction("g")
	arr := f.AddArray(ArrayDecl{Name: "x", Len: 8})
	i0 := f.NewReg("")
	v := f.NewReg("")
	b := f.Block(f.Entry)
	b.Instrs = []Instr{
		{Op: OpConst, Dst: i0, A: Imm(0)},
		{Op: OpStore, A: Reg(i0), B: Reg(i0), Arr: arr}, // 1
		{Op: OpCall, Callee: "h"},                       // 2: barrier
		{Op: OpLoad, Dst: v, A: Reg(i0), Arr: arr},      // 3
	}
	b.Term = Terminator{Kind: TermReturn}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	d := BuildDFG(f, b)
	if !(d.ASAP[1] < d.ASAP[2] && d.ASAP[2] < d.ASAP[3]) {
		t.Fatalf("call barrier not ordered: ASAP=%v", d.ASAP)
	}
}

func TestRecomputeEdges(t *testing.T) {
	_, f := buildLinearFunc()
	b2 := f.AddBlock("next")
	b2.Term = Terminator{Kind: TermReturn, Val: Imm(0), HasVal: true}
	f.Blocks[0].Term = Terminator{Kind: TermBranch, Cond: Imm(1), Then: b2.ID, Else: b2.ID}
	f.RecomputeEdges()
	if len(f.Blocks[0].Succs) != 1 || f.Blocks[0].Succs[0] != b2.ID {
		t.Fatalf("Succs = %v, want [%d] (branch with equal targets dedupes)", f.Blocks[0].Succs, b2.ID)
	}
	if len(b2.Preds) != 1 || b2.Preds[0] != f.Blocks[0].ID {
		t.Fatalf("Preds = %v", b2.Preds)
	}
}

func TestGlobalArrEncoding(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := GlobalArr(i)
		if !IsGlobalArr(id) {
			t.Fatalf("GlobalArr(%d) = %d not recognized as global", i, id)
		}
		if got := GlobalIndex(id); got != i {
			t.Fatalf("GlobalIndex(GlobalArr(%d)) = %d", i, got)
		}
	}
	if IsGlobalArr(0) || IsGlobalArr(NoArr) {
		t.Fatal("local/absent IDs misclassified as global")
	}
}

func TestDotOutput(t *testing.T) {
	_, f := buildLinearFunc()
	var buf bytes.Buffer
	if err := WriteCFGDot(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") || !strings.Contains(buf.String(), "b0") {
		t.Fatalf("CFG dot output malformed:\n%s", buf.String())
	}
	buf.Reset()
	d := BuildDFG(f, f.Blocks[0])
	if err := WriteDFGDot(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rank=same") {
		t.Fatalf("DFG dot output missing level ranks:\n%s", buf.String())
	}
}

// randomStraightLineBlock builds a block of n random value instructions whose
// operands refer only to previously defined registers, so the def-use DFG is
// a random DAG.
func randomStraightLineBlock(rng *rand.Rand, n int) (*Function, *Block) {
	f := NewFunction("rand")
	arr := f.AddArray(ArrayDecl{Name: "m", Len: 64})
	b := f.Block(f.Entry)
	seed := f.NewReg("")
	b.Instrs = append(b.Instrs, Instr{Op: OpConst, Dst: seed, A: Imm(1)})
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpXor, OpShl, OpLoad, OpStore}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		pick := func() Operand {
			return Reg(RegID(rng.Intn(f.NumRegs)))
		}
		switch op {
		case OpLoad:
			b.Instrs = append(b.Instrs, Instr{Op: op, Dst: f.NewReg(""), A: pick(), Arr: arr})
		case OpStore:
			b.Instrs = append(b.Instrs, Instr{Op: op, A: pick(), B: pick(), Arr: arr})
		default:
			b.Instrs = append(b.Instrs, Instr{Op: op, Dst: f.NewReg(""), A: pick(), B: pick()})
		}
	}
	b.Term = Terminator{Kind: TermReturn}
	return f, b
}

func TestDFGPropertiesQuick(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f, b := randomStraightLineBlock(rng, int(sz%60)+1)
		d := BuildDFG(f, b)
		if err := d.CheckAcyclic(); err != nil {
			return false
		}
		for u, succs := range d.Succs {
			for _, v := range succs {
				if d.ASAP[u] >= d.ASAP[v] {
					return false // levels must strictly increase along edges
				}
				if d.ALAP[u] >= d.ALAP[v] {
					return false
				}
			}
		}
		for i := range d.ASAP {
			if d.ASAP[i] < 1 || d.ASAP[i] > d.MaxLevel {
				return false
			}
			if d.ASAP[i] > d.ALAP[i] {
				return false // slack is never negative
			}
		}
		// Every node appears in exactly one level group.
		total := 0
		for lvl := 1; lvl <= d.MaxLevel; lvl++ {
			total += len(d.NodesAtLevel(lvl))
		}
		return total == d.NumNodes()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpStringAndClass(t *testing.T) {
	cases := []struct {
		op    Op
		class Class
	}{
		{OpAdd, ClassALU}, {OpShr, ClassALU}, {OpEq, ClassALU},
		{OpMul, ClassMul}, {OpDiv, ClassDiv}, {OpRem, ClassDiv},
		{OpLoad, ClassMem}, {OpStore, ClassMem}, {OpCall, ClassCall},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.class {
			t.Errorf("ClassOf(%s) = %s, want %s", c.op, got, c.class)
		}
		if c.op.String() == "" || strings.HasPrefix(c.op.String(), "op(") {
			t.Errorf("missing name for op %d", c.op)
		}
	}
}

func TestOperandAndInstrString(t *testing.T) {
	in := Instr{Op: OpAdd, Dst: 3, A: Reg(1), B: Imm(7)}
	if got := in.String(); got != "r3 = add r1, 7" {
		t.Errorf("Instr.String() = %q", got)
	}
	st := Instr{Op: OpStore, Arr: 0, A: Reg(2), B: Imm(9)}
	if got := st.String(); got != "store a0[r2] = 9" {
		t.Errorf("store String() = %q", got)
	}
	call := Instr{Op: OpCall, Callee: "f", Args: []Operand{Reg(1), Imm(2)}, CallHasDst: true, Dst: 5}
	if got := call.String(); got != "r5 = call f(r1, 2)" {
		t.Errorf("call String() = %q", got)
	}
}
