package ir

import "fmt"

// DFG is the data-flow graph of one basic block: one node per instruction,
// with edges for register def-use chains and conservative memory-order
// dependences (same-array store→load, load→store, store→store) plus call
// barriers. This is the structure both mappers consume.
type DFG struct {
	Fn    *Function
	Block *Block

	// Succs/Preds are adjacency lists over instruction indices.
	Succs [][]int
	Preds [][]int

	// ASAP holds the 1-based As-Soon-As-Possible level of every node: all
	// predecessors of a node sit at strictly smaller levels, so nodes sharing
	// a level are mutually independent and may execute in parallel (the
	// property the paper's fine-grain mapper exploits).
	ASAP []int
	// ALAP holds the As-Late-As-Possible level under the same unit-delay
	// model, used for slack-based scheduling priorities.
	ALAP []int
	// MaxLevel is the maximum ASAP level (the DFG's depth); zero for an
	// empty block.
	MaxLevel int

	// ExternalIn lists registers read by the block before any local
	// definition: the block's scalar live-in set.
	ExternalIn []RegID
	// Defined lists registers written by the block, in definition order.
	Defined []RegID
}

// BuildDFG constructs the data-flow graph of block b of function f.
func BuildDFG(f *Function, b *Block) *DFG {
	n := len(b.Instrs)
	d := &DFG{
		Fn:    f,
		Block: b,
		Succs: make([][]int, n),
		Preds: make([][]int, n),
	}

	lastDef := map[RegID]int{}     // reg -> node index of most recent def
	lastStore := map[ArrID]int{}   // array -> most recent store
	lastLoads := map[ArrID][]int{} // array -> loads since the last store
	lastCall := -1
	externalSeen := map[RegID]bool{}

	addEdge := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range d.Succs[from] {
			if s == to {
				return
			}
		}
		d.Succs[from] = append(d.Succs[from], to)
		d.Preds[to] = append(d.Preds[to], from)
	}

	var useBuf []RegID
	for i := range b.Instrs {
		in := &b.Instrs[i]

		// Register flow dependences.
		useBuf = in.Uses(useBuf[:0])
		for _, r := range useBuf {
			if def, ok := lastDef[r]; ok {
				addEdge(def, i)
			} else if !externalSeen[r] {
				externalSeen[r] = true
				d.ExternalIn = append(d.ExternalIn, r)
			}
		}

		// Memory-order dependences.
		switch in.Op {
		case OpLoad:
			if s, ok := lastStore[in.Arr]; ok {
				addEdge(s, i) // RAW
			}
			if lastCall >= 0 {
				addEdge(lastCall, i)
			}
			lastLoads[in.Arr] = append(lastLoads[in.Arr], i)
		case OpStore:
			if s, ok := lastStore[in.Arr]; ok {
				addEdge(s, i) // WAW
			}
			for _, l := range lastLoads[in.Arr] {
				addEdge(l, i) // WAR
			}
			if lastCall >= 0 {
				addEdge(lastCall, i)
			}
			lastStore[in.Arr] = i
			lastLoads[in.Arr] = nil
		case OpCall:
			// Calls may touch any array (globals or by-reference params):
			// order them against every outstanding memory op and prior call.
			for _, s := range lastStore {
				addEdge(s, i)
			}
			for _, ls := range lastLoads {
				for _, l := range ls {
					addEdge(l, i)
				}
			}
			if lastCall >= 0 {
				addEdge(lastCall, i)
			}
			lastCall = i
			// Later memory ops order against the call (handled below), so
			// the per-array history can be reset.
			lastStore = map[ArrID]int{}
			lastLoads = map[ArrID][]int{}
		}
		if lastCall >= 0 && (in.Op == OpLoad || in.Op == OpStore) {
			addEdge(lastCall, i)
		}

		if in.HasDst() {
			lastDef[in.Dst] = i
			d.Defined = append(d.Defined, in.Dst)
		}
	}

	d.computeLevels()
	return d
}

func (d *DFG) computeLevels() {
	n := len(d.Succs)
	d.ASAP = make([]int, n)
	d.ALAP = make([]int, n)
	if n == 0 {
		d.MaxLevel = 0
		return
	}
	order := d.TopoOrder()
	// ASAP: longest path from sources, unit node delay, 1-based.
	for _, u := range order {
		lvl := 1
		for _, p := range d.Preds[u] {
			if d.ASAP[p]+1 > lvl {
				lvl = d.ASAP[p] + 1
			}
		}
		d.ASAP[u] = lvl
		if lvl > d.MaxLevel {
			d.MaxLevel = lvl
		}
	}
	// ALAP: latest level such that all successors still fit.
	for i := range d.ALAP {
		d.ALAP[i] = d.MaxLevel
	}
	for k := n - 1; k >= 0; k-- {
		u := order[k]
		for _, s := range d.Succs[u] {
			if d.ALAP[s]-1 < d.ALAP[u] {
				d.ALAP[u] = d.ALAP[s] - 1
			}
		}
	}
}

// TopoOrder returns the instruction indices in a topological order of the
// DFG. Instruction order is already topological (edges only point forward),
// so this is the identity permutation; it exists to make the invariant
// explicit at call sites.
func (d *DFG) TopoOrder() []int {
	order := make([]int, len(d.Succs))
	for i := range order {
		order[i] = i
	}
	return order
}

// NodesAtLevel returns the indices of the nodes whose ASAP level equals lvl,
// in instruction order.
func (d *DFG) NodesAtLevel(lvl int) []int {
	var out []int
	for i, l := range d.ASAP {
		if l == lvl {
			out = append(out, i)
		}
	}
	return out
}

// Slack returns ALAP−ASAP for node i (zero for critical-path nodes).
func (d *DFG) Slack(i int) int { return d.ALAP[i] - d.ASAP[i] }

// CriticalPathLen returns the DFG depth in levels (MaxLevel).
func (d *DFG) CriticalPathLen() int { return d.MaxLevel }

// NumNodes returns the node count.
func (d *DFG) NumNodes() int { return len(d.Succs) }

// NumEdges returns the dependence edge count.
func (d *DFG) NumEdges() int {
	n := 0
	for _, s := range d.Succs {
		n += len(s)
	}
	return n
}

// Op returns the opcode of node i.
func (d *DFG) Op(i int) Op { return d.Block.Instrs[i].Op }

// CheckAcyclic verifies that every edge points forward in instruction order
// (the construction invariant); it returns an error naming the first
// violation, for use in tests and validation.
func (d *DFG) CheckAcyclic() error {
	for u, succs := range d.Succs {
		for _, v := range succs {
			if v <= u {
				return fmt.Errorf("ir: DFG edge %d->%d is not forward", u, v)
			}
		}
	}
	return nil
}
