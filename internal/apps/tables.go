// Package apps provides the two benchmark applications of the paper's
// evaluation — the front-end of an IEEE 802.11a OFDM transmitter (QAM
// mapping, 64-point IFFT, cyclic prefix) and a baseline JPEG encoder (level
// shift, 8×8 integer DCT, quantization, zig-zag, run-length/Huffman entropy
// coding) — as mini-C sources for the partitioning flow plus bit-exact Go
// reference implementations and deterministic input generators.
//
// The AMDREL project's original C sources are proprietary; these
// re-implementations follow the same algorithms, loop structure and input
// sizes (6 payload symbols; a 256×256-byte image), which is what the
// methodology consumes (see DESIGN.md, substitution table).
package apps

import (
	"fmt"
	"math"
	"strings"
)

// ---- Fixed-point parameters shared by the mini-C sources and the Go
// references. All arithmetic is int32 with arithmetic shifts; the two
// implementations must stay in lockstep, which the tests verify bit-exactly.

const (
	// FFTSize is the 802.11a IFFT length; CPLen the cyclic-prefix samples.
	FFTSize = 64
	CPLen   = 16
	// SymbolSamples is the per-symbol output length (CP + body).
	SymbolSamples = FFTSize + CPLen
	// OFDMSymbols is the payload symbol count used throughout the paper's
	// experiments ("a number of 6 payload symbols").
	OFDMSymbols = 6
	// DataCarriers and BitsPerCarrier (16-QAM) give 192 payload bits/symbol.
	DataCarriers   = 48
	BitsPerCarrier = 4
	BitsPerSymbol  = DataCarriers * BitsPerCarrier
	OFDMTotalBits  = OFDMSymbols * BitsPerSymbol

	// twiddleQ is the Q-format of the IFFT twiddle factors.
	twiddleQ = 14
	// dctQ is the Q-format of the DCT basis matrix.
	dctQ = 12

	// ImageDim is the JPEG test image dimension ("an image of size 256x256
	// bytes").
	ImageDim    = 256
	ImagePixels = ImageDim * ImageDim
	BlockDim    = 8
	BlocksPerIm = (ImageDim / BlockDim) * (ImageDim / BlockDim)
	// BitstreamWords sizes the packed entropy output buffer.
	BitstreamWords = 65536 / 2
)

// qamLUT maps 2 Gray-coded bits to a 16-QAM level in Q11 (±1·2048, ±3·2048).
var qamLUT = [4]int32{-3 * 2048, -1 * 2048, 3 * 2048, 1 * 2048}

// pilotAmp is the BPSK pilot amplitude.
const pilotAmp = 2 * 2048

// dataBins returns the FFT bin of each of the 48 data subcarriers in
// logical order (-26..26, skipping DC and the ±7/±21 pilots).
func dataBins() []int32 {
	var bins []int32
	for k := -26; k <= 26; k++ {
		switch k {
		case 0, 7, -7, 21, -21:
			continue
		}
		bin := k
		if bin < 0 {
			bin += FFTSize
		}
		bins = append(bins, int32(bin))
	}
	return bins
}

// pilotBins returns the FFT bins of the four pilots.
func pilotBins() []int32 {
	out := []int32{}
	for _, k := range []int{-21, -7, 7, 21} {
		bin := k
		if bin < 0 {
			bin += FFTSize
		}
		out = append(out, int32(bin))
	}
	return out
}

// bitrev64 returns the 6-bit bit-reversal permutation.
func bitrev64() []int32 {
	out := make([]int32, FFTSize)
	for i := 0; i < FFTSize; i++ {
		r := 0
		for b := 0; b < 6; b++ {
			r = (r << 1) | ((i >> b) & 1)
		}
		out[i] = int32(r)
	}
	return out
}

// twiddles returns the Q14 IFFT twiddle factors e^{+j2πk/64} for k=0..31.
func twiddles() (re, im []int32) {
	re = make([]int32, FFTSize/2)
	im = make([]int32, FFTSize/2)
	for k := 0; k < FFTSize/2; k++ {
		ang := 2 * math.Pi * float64(k) / FFTSize
		re[k] = int32(math.Round((1 << twiddleQ) * math.Cos(ang)))
		im[k] = int32(math.Round((1 << twiddleQ) * math.Sin(ang)))
	}
	return re, im
}

// dctMatrixQ12 returns the 8×8 orthonormal DCT-II basis in Q12, flattened
// row-major: C[i][j] = c(i)/2 · cos((2j+1)iπ/16), c(0)=1/√2, c(i>0)=1.
func dctMatrixQ12() []int32 {
	out := make([]int32, 64)
	for i := 0; i < 8; i++ {
		ci := 1.0
		if i == 0 {
			ci = 1 / math.Sqrt2
		}
		for j := 0; j < 8; j++ {
			v := ci / 2 * math.Cos(float64(2*j+1)*float64(i)*math.Pi/16)
			out[i*8+j] = int32(math.Round(v * (1 << dctQ)))
		}
	}
	return out
}

// quantTable is the standard JPEG luminance quantization matrix (quality
// 50), row-major.
var quantTable = []int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantRecip returns the Q16 reciprocals used for division-free
// quantization: q = (|coef|·recip + 2^15) >> 16 (the paper's DFGs contain
// no divisions; real encoders use the same trick).
func quantRecip() []int32 {
	out := make([]int32, 64)
	for i, q := range quantTable {
		out[i] = int32((1 << 16) / q)
	}
	return out
}

// zigzag is the standard JPEG zig-zag scan order (index i holds the
// row-major position visited i-th).
var zigzag = []int32{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// dcCodes returns the canonical DC-category Huffman table with the standard
// JPEG luminance length assignment (categories 0–11).
func dcCodes() (codeArr, lenArr []int32) {
	stdLens := []int{2, 3, 3, 3, 3, 3, 4, 5, 6, 7, 8, 9}
	lengths := map[int]int{}
	for cat, l := range stdLens {
		lengths[cat] = l
	}
	codes := assignCanonical(lengths)
	codeArr = make([]int32, 12)
	lenArr = make([]int32, 12)
	for cat := 0; cat < 12; cat++ {
		codeArr[cat] = int32(codes[cat].Bits)
		lenArr[cat] = int32(codes[cat].Len)
	}
	return codeArr, lenArr
}

// acCodes returns a canonical AC Huffman table indexed by the JPEG
// run/size symbol (run<<4 | size). The length distribution is derived from
// a synthetic frequency model mirroring typical AC statistics (EOB most
// frequent, short runs and small sizes next), built with the same canonical
// construction a standards-compliant encoder uses. See DESIGN.md for why a
// non-Annex-K table is an acceptable substitution.
func acCodes() (codeArr, lenArr []int32, err error) {
	freqs := map[int]uint64{}
	const eob = 0x00
	const zrl = 0xF0
	freqs[eob] = 1 << 30
	freqs[zrl] = 1 << 16
	for run := 0; run <= 15; run++ {
		for size := 1; size <= 10; size++ {
			sym := run<<4 | size
			f := uint64(1<<34) / uint64((run+1)*(run+1)) / uint64((size+1)*(size+1)*(size+1))
			if f == 0 {
				f = 1
			}
			freqs[sym] = f
		}
	}
	codes, err := BuildCanonical(freqs, 16)
	if err != nil {
		return nil, nil, err
	}
	codeArr = make([]int32, 256)
	lenArr = make([]int32, 256)
	for sym, c := range codes {
		codeArr[sym] = int32(c.Bits)
		lenArr[sym] = int32(c.Len)
	}
	return codeArr, lenArr, nil
}

// initList renders vals as a brace-delimited mini-C initializer.
func initList(vals []int32) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteByte('}')
	return sb.String()
}
