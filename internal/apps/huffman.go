package apps

import (
	"container/heap"
	"fmt"
	"sort"
)

// Code is one canonical Huffman code word.
type Code struct {
	Bits uint32 // left-aligned at the LSB: the low Len bits are the code
	Len  int
}

// huffNode is a node in the Huffman construction heap.
type huffNode struct {
	freq   uint64
	symbol int // -1 for internal nodes
	left   *huffNode
	right  *huffNode
	// tiebreak makes the construction deterministic across map iteration
	// orders: the smallest symbol in the subtree.
	tiebreak int
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].tiebreak < h[j].tiebreak
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BuildCanonical builds a length-limited canonical Huffman code over the
// given symbol frequencies (zero-frequency symbols receive no code). When
// the unconstrained Huffman tree exceeds maxLen, frequencies are repeatedly
// flattened (square-rooted) until the lengths fit — the same practical
// remedy JPEG's BITS-adjustment serves. The construction is deterministic.
func BuildCanonical(freqs map[int]uint64, maxLen int) (map[int]Code, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("apps: maxLen must be >= 1, got %d", maxLen)
	}
	working := make(map[int]uint64, len(freqs))
	for s, f := range freqs {
		if f > 0 {
			working[s] = f
		}
	}
	if len(working) == 0 {
		return map[int]Code{}, nil
	}
	if len(working) == 1 {
		for s := range working {
			return map[int]Code{s: {Bits: 0, Len: 1}}, nil
		}
	}
	if maxLen < ceilLog2(len(working)) {
		return nil, fmt.Errorf("apps: %d symbols cannot fit in %d-bit codes", len(working), maxLen)
	}

	for attempt := 0; ; attempt++ {
		lengths := huffmanLengths(working)
		over := 0
		for _, l := range lengths {
			if l > maxLen {
				over++
			}
		}
		if over == 0 {
			return assignCanonical(lengths), nil
		}
		if attempt > 64 {
			return nil, fmt.Errorf("apps: code lengths failed to converge under %d bits", maxLen)
		}
		// Flatten the distribution and retry.
		for s, f := range working {
			nf := isqrt(f)
			if nf == 0 {
				nf = 1
			}
			working[s] = nf
		}
	}
}

// huffmanLengths computes unconstrained Huffman code lengths.
func huffmanLengths(freqs map[int]uint64) map[int]int {
	h := &huffHeap{}
	for s, f := range freqs {
		heap.Push(h, &huffNode{freq: f, symbol: s, tiebreak: s})
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		tb := a.tiebreak
		if b.tiebreak < tb {
			tb = b.tiebreak
		}
		heap.Push(h, &huffNode{freq: a.freq + b.freq, symbol: -1, left: a, right: b, tiebreak: tb})
	}
	root := heap.Pop(h).(*huffNode)
	lengths := map[int]int{}
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.symbol >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// assignCanonical assigns canonical codes: symbols sorted by (length,
// symbol) receive consecutive code values.
func assignCanonical(lengths map[int]int) map[int]Code {
	type sl struct {
		sym, len int
	}
	items := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		items = append(items, sl{s, l})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].len != items[j].len {
			return items[i].len < items[j].len
		}
		return items[i].sym < items[j].sym
	})
	out := make(map[int]Code, len(items))
	code := uint32(0)
	prevLen := 0
	for _, it := range items {
		if prevLen != 0 {
			code++
		}
		code <<= uint(it.len - prevLen)
		prevLen = it.len
		out[it.sym] = Code{Bits: code, Len: it.len}
	}
	return out
}

// ValidatePrefixFree checks that no code is a prefix of another and that
// every length is within [1, maxLen]; used by tests.
func ValidatePrefixFree(codes map[int]Code, maxLen int) error {
	type entry struct {
		sym  int
		code Code
	}
	var all []entry
	for s, c := range codes {
		if c.Len < 1 || c.Len > maxLen {
			return fmt.Errorf("apps: symbol %d has length %d outside [1,%d]", s, c.Len, maxLen)
		}
		if c.Len < 32 && c.Bits>>uint(c.Len) != 0 {
			return fmt.Errorf("apps: symbol %d code wider than its length", s)
		}
		all = append(all, entry{s, c})
	}
	for i := range all {
		for j := range all {
			if i == j {
				continue
			}
			a, b := all[i].code, all[j].code
			if a.Len <= b.Len && b.Bits>>uint(b.Len-a.Len) == a.Bits {
				return fmt.Errorf("apps: code of %d is a prefix of %d", all[i].sym, all[j].sym)
			}
		}
	}
	return nil
}

func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

func isqrt(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	x := v
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + v/x) / 2
	}
	return x
}
