package apps

import "fmt"

// OFDMEntry is the entry function of the OFDM transmitter source.
const OFDMEntry = "ofdm_tx"

// OFDM global array names (host-visible I/O).
const (
	OFDMBitsArray = "BITS"
	OFDMOutIArray = "OUT_I"
	OFDMOutQArray = "OUT_Q"
)

// OFDMSource returns the mini-C implementation of the 802.11a OFDM
// transmitter front-end: 16-QAM subcarrier mapping with pilots, 64-point
// radix-2 DIT IFFT in Q-format fixed point with per-stage scaling, and
// cyclic-prefix insertion — the QAM + IFFT + cyclic prefix chain the paper
// evaluates. The host writes OFDMTotalBits 0/1 values into BITS and reads
// OFDMSymbols×SymbolSamples Q-format samples from OUT_I/OUT_Q.
func OFDMSource() string {
	twr, twi := twiddles()
	return fmt.Sprintf(`
// IEEE 802.11a OFDM transmitter front-end (fixed point, int32).
const int NSYM = %d;

int BITS[%d];
int OUT_I[%d];
int OUT_Q[%d];

int FR[64];
int FI[64];
int XR[64];
int XI[64];

int QLUT[4] = %s;
int DBIN[48] = %s;
int PBIN[4] = %s;
int BRV[64] = %s;
int TWR[32] = %s;
int TWI[32] = %s;

// qam_map fills the frequency-domain symbol: 48 data subcarriers from
// Gray-coded 16-QAM plus 4 BPSK pilots; DC and guard bins stay zero.
void qam_map(int sym) {
    int k;
    int c;
    for (k = 0; k < 64; k++) {
        FR[k] = 0;
        FI[k] = 0;
    }
    for (c = 0; c < 48; c++) {
        int base = sym * 192 + c * 4;
        int bi = BITS[base] + 2 * BITS[base + 1];
        int bq = BITS[base + 2] + 2 * BITS[base + 3];
        int bin = DBIN[c];
        FR[bin] = QLUT[bi];
        FI[bin] = QLUT[bq];
    }
    for (k = 0; k < 4; k++) {
        FR[PBIN[k]] = %d;
        FI[PBIN[k]] = 0;
    }
}

// ifft64 is the radix-2 decimation-in-time IFFT with Q14 twiddles and a
// >>1 scaling per stage (exact 1/64 normalization over six stages).
void ifft64() {
    int i;
    int s;
    for (i = 0; i < 64; i++) {
        int r = BRV[i];
        XR[i] = FR[r];
        XI[i] = FI[r];
    }
    for (s = 1; s <= 6; s++) {
        int m = 1 << s;
        int h = m >> 1;
        int step = 64 >> s;
        int k;
        for (k = 0; k < 64; k += m) {
            int j;
            for (j = 0; j < h; j++) {
                int w = j * step;
                int wr = TWR[w];
                int wi = TWI[w];
                int br = XR[k + j + h];
                int bi = XI[k + j + h];
                int tr = (wr * br - wi * bi) >> 14;
                int ti = (wr * bi + wi * br) >> 14;
                int ar = XR[k + j];
                int ai = XI[k + j];
                XR[k + j] = (ar + tr) >> 1;
                XI[k + j] = (ai + ti) >> 1;
                XR[k + j + h] = (ar - tr) >> 1;
                XI[k + j + h] = (ai - ti) >> 1;
            }
        }
    }
}

// add_cp emits the cyclic prefix (last 16 time samples) then the symbol.
void add_cp(int sym) {
    int i;
    int base = sym * 80;
    for (i = 0; i < 16; i++) {
        OUT_I[base + i] = XR[48 + i];
        OUT_Q[base + i] = XI[48 + i];
    }
    for (i = 0; i < 64; i++) {
        OUT_I[base + 16 + i] = XR[i];
        OUT_Q[base + 16 + i] = XI[i];
    }
}

void ofdm_tx() {
    int sym;
    for (sym = 0; sym < NSYM; sym++) {
        qam_map(sym);
        ifft64();
        add_cp(sym);
    }
}
`,
		OFDMSymbols,
		OFDMTotalBits, OFDMSymbols*SymbolSamples, OFDMSymbols*SymbolSamples,
		initList(qamLUT[:]), initList(dataBins()), initList(pilotBins()),
		initList(bitrev64()), initList(twr), initList(twi),
		pilotAmp)
}

// OFDMReference is the bit-exact Go implementation of OFDMSource: it
// consumes OFDMTotalBits 0/1 values and returns the I and Q sample streams
// (OFDMSymbols×SymbolSamples each).
func OFDMReference(bits []int32) (outI, outQ []int32, err error) {
	if len(bits) != OFDMTotalBits {
		return nil, nil, fmt.Errorf("apps: OFDM needs %d bits, got %d", OFDMTotalBits, len(bits))
	}
	dbin := dataBins()
	pbin := pilotBins()
	brv := bitrev64()
	twr, twi := twiddles()

	outI = make([]int32, OFDMSymbols*SymbolSamples)
	outQ = make([]int32, OFDMSymbols*SymbolSamples)
	var fr, fi, xr, xi [FFTSize]int32

	for sym := 0; sym < OFDMSymbols; sym++ {
		// qam_map
		for k := range fr {
			fr[k], fi[k] = 0, 0
		}
		for c := 0; c < DataCarriers; c++ {
			base := sym*BitsPerSymbol + c*BitsPerCarrier
			bi := bits[base] + 2*bits[base+1]
			bq := bits[base+2] + 2*bits[base+3]
			bin := dbin[c]
			fr[bin] = qamLUT[bi]
			fi[bin] = qamLUT[bq]
		}
		for k := 0; k < 4; k++ {
			fr[pbin[k]] = pilotAmp
			fi[pbin[k]] = 0
		}
		// ifft64
		for i := 0; i < FFTSize; i++ {
			r := brv[i]
			xr[i], xi[i] = fr[r], fi[r]
		}
		for s := 1; s <= 6; s++ {
			m := int32(1) << uint(s)
			h := m >> 1
			step := int32(FFTSize) >> uint(s)
			for k := int32(0); k < FFTSize; k += m {
				for j := int32(0); j < h; j++ {
					w := j * step
					wr, wi := twr[w], twi[w]
					br, bi := xr[k+j+h], xi[k+j+h]
					tr := (wr*br - wi*bi) >> twiddleQ
					ti := (wr*bi + wi*br) >> twiddleQ
					ar, ai := xr[k+j], xi[k+j]
					xr[k+j] = (ar + tr) >> 1
					xi[k+j] = (ai + ti) >> 1
					xr[k+j+h] = (ar - tr) >> 1
					xi[k+j+h] = (ai - ti) >> 1
				}
			}
		}
		// add_cp
		base := sym * SymbolSamples
		for i := 0; i < CPLen; i++ {
			outI[base+i] = xr[FFTSize-CPLen+i]
			outQ[base+i] = xi[FFTSize-CPLen+i]
		}
		for i := 0; i < FFTSize; i++ {
			outI[base+CPLen+i] = xr[i]
			outQ[base+CPLen+i] = xi[i]
		}
	}
	return outI, outQ, nil
}
