package apps

// Deterministic input-vector generators. The paper profiles each benchmark
// with "input vectors that represent the typical operation of the
// application"; these produce a reproducible random bit stream for the
// transmitter and a natural-image-like (smooth with texture and noise)
// gray-scale frame for the encoder.

// xorshift32 is a full-period 32-bit xorshift PRNG step.
func xorshift32(s uint32) uint32 {
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	return s
}

// GenBits returns n pseudo-random payload bits (0/1 values).
func GenBits(n int, seed uint32) []int32 {
	if seed == 0 {
		seed = 0x2545F491
	}
	out := make([]int32, n)
	s := seed
	for i := range out {
		s = xorshift32(s)
		out[i] = int32(s & 1)
	}
	return out
}

// GenImage returns an ImageDim×ImageDim gray image (row-major, 0..255):
// a diagonal illumination gradient with a low-frequency texture and a few
// bits of sensor-style noise, giving the encoder realistic run-length and
// coefficient statistics.
func GenImage(seed uint32) []int32 {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	out := make([]int32, ImagePixels)
	s := seed
	for y := 0; y < ImageDim; y++ {
		for x := 0; x < ImageDim; x++ {
			s = xorshift32(s)
			grad := int32((x*3 + y*2) >> 2)
			texture := int32((x * y) >> 9)
			noise := int32(s & 15)
			v := 32 + grad&127 + texture&63 + noise
			if v > 255 {
				v = 255
			}
			out[y*ImageDim+x] = v
		}
	}
	return out
}
