package apps

import "fmt"

// JPEGEntry is the entry function of the JPEG encoder source.
const JPEGEntry = "jpeg_encode"

// JPEG global array names (host-visible I/O).
const (
	JPEGImageArray  = "IMAGE"
	JPEGStreamArray = "BITSTREAM"
	JPEGStateArray  = "NBITS"
)

// JPEGSource returns the mini-C implementation of the baseline JPEG encoder
// the paper evaluates: per-8×8-block level shift, integer 2-D DCT (row and
// column passes against a Q12 basis matrix), division-free quantization via
// Q16 reciprocals, zig-zag scan, and DC-differential + AC run-length
// Huffman entropy coding with MSB-first bit packing. The host writes
// ImagePixels gray values (0..255) into IMAGE and reads the packed stream
// from BITSTREAM with the emitted bit count in NBITS[0].
func JPEGSource() (string, error) {
	acCode, acLen, err := acCodes()
	if err != nil {
		return "", err
	}
	dcCode, dcLen := dcCodes()
	src := fmt.Sprintf(`
// Baseline JPEG encoder (luminance only, fixed point, int32).
int IMAGE[%d];
int BITSTREAM[%d];
int NBITS[1];
int PREVDC[1];

int BLK[64];
int TMP[64];
int COEF[64];

int DCTM[64] = %s;
int QRECIP[64] = %s;
int ZZ[64] = %s;
int DCCODE[12] = %s;
int DCLEN[12] = %s;
int ACCODE[256] = %s;
int ACLEN[256] = %s;

// put_bits appends the low len bits of code to the stream, MSB first.
void put_bits(int code, int len) {
    int pos = NBITS[0];
    int w = pos >> 5;
    int off = pos & 31;
    int rem = 32 - off;
    if (len <= rem) {
        BITSTREAM[w] = BITSTREAM[w] | (code << (rem - len));
    } else {
        int hi = len - rem;
        BITSTREAM[w] = BITSTREAM[w] | (code >> hi);
        BITSTREAM[w + 1] = BITSTREAM[w + 1] | (code << (32 - hi));
    }
    NBITS[0] = pos + len;
}

// bitsize returns the JPEG size category of v (bits of |v|).
int bitsize(int v) {
    int a = v;
    int s = 0;
    if (a < 0) { a = -a; }
    while (a > 0) {
        a >>= 1;
        s++;
    }
    return s;
}

void encode_block(int bx, int by) {
    int i;
    int j;
    int k;
    // Load and level-shift the block.
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            BLK[i * 8 + j] = IMAGE[(by * 8 + i) * %d + bx * 8 + j] - 128;
        }
    }
    // Row pass: TMP = DCTM x BLK, inner product fully unrolled as the DSP
    // kernels the methodology targets are written (a wide multiply-add
    // tree in a single basic block).
    for (i = 0; i < 8; i++) {
        int r = i * 8;
        for (j = 0; j < 8; j++) {
            int acc = ((DCTM[r] * BLK[j] + DCTM[r + 1] * BLK[8 + j])
                     + (DCTM[r + 2] * BLK[16 + j] + DCTM[r + 3] * BLK[24 + j]))
                    + ((DCTM[r + 4] * BLK[32 + j] + DCTM[r + 5] * BLK[40 + j])
                     + (DCTM[r + 6] * BLK[48 + j] + DCTM[r + 7] * BLK[56 + j]));
            TMP[r + j] = acc >> 12;
        }
    }
    // Column pass: COEF = TMP x DCTM', same unrolled structure.
    for (i = 0; i < 8; i++) {
        int r = i * 8;
        for (j = 0; j < 8; j++) {
            int c = j * 8;
            int acc = ((TMP[r] * DCTM[c] + TMP[r + 1] * DCTM[c + 1])
                     + (TMP[r + 2] * DCTM[c + 2] + TMP[r + 3] * DCTM[c + 3]))
                    + ((TMP[r + 4] * DCTM[c + 4] + TMP[r + 5] * DCTM[c + 5])
                     + (TMP[r + 6] * DCTM[c + 6] + TMP[r + 7] * DCTM[c + 7]));
            COEF[r + j] = acc >> 12;
        }
    }
    // Quantize (reciprocal multiply, round-half-up) in zig-zag order.
    for (i = 0; i < 64; i++) {
        int v = COEF[ZZ[i]];
        int neg = 0;
        int q;
        if (v < 0) {
            neg = 1;
            v = -v;
        }
        q = (v * QRECIP[ZZ[i]] + 32768) >> 16;
        if (neg == 1) { q = -q; }
        BLK[i] = q;
    }
    // DC: differential, category + amplitude.
    int dc = BLK[0];
    int diff = dc - PREVDC[0];
    PREVDC[0] = dc;
    int sz = bitsize(diff);
    put_bits(DCCODE[sz], DCLEN[sz]);
    if (sz > 0) {
        int amp = diff;
        if (diff < 0) { amp = diff + (1 << sz) - 1; }
        amp &= (1 << sz) - 1;
        put_bits(amp, sz);
    }
    // AC: run-length of zeros, ZRL for runs > 15, EOB for the tail.
    int run = 0;
    for (i = 1; i < 64; i++) {
        int v = BLK[i];
        if (v == 0) {
            run++;
        } else {
            while (run > 15) {
                put_bits(ACCODE[240], ACLEN[240]);
                run -= 16;
            }
            int s2 = bitsize(v);
            int sym = run * 16 + s2;
            put_bits(ACCODE[sym], ACLEN[sym]);
            int amp = v;
            if (v < 0) { amp = v + (1 << s2) - 1; }
            amp &= (1 << s2) - 1;
            put_bits(amp, s2);
            run = 0;
        }
    }
    if (run > 0) {
        put_bits(ACCODE[0], ACLEN[0]);
    }
}

void jpeg_encode() {
    int bx;
    int by;
    int i;
    NBITS[0] = 0;
    PREVDC[0] = 0;
    for (i = 0; i < %d; i++) { BITSTREAM[i] = 0; }
    for (by = 0; by < %d; by++) {
        for (bx = 0; bx < %d; bx++) {
            encode_block(bx, by);
        }
    }
}
`,
		ImagePixels, BitstreamWords,
		initList(dctMatrixQ12()), initList(quantRecip()), initList(zigzag),
		initList(dcCode), initList(dcLen), initList(acCode), initList(acLen),
		ImageDim,
		BitstreamWords, ImageDim/BlockDim, ImageDim/BlockDim)
	return src, nil
}

// JPEGReference is the bit-exact Go implementation of JPEGSource. It
// consumes ImagePixels gray values and returns the packed bitstream words
// plus the number of emitted bits.
func JPEGReference(image []int32) (stream []int32, nbits int32, err error) {
	if len(image) != ImagePixels {
		return nil, 0, fmt.Errorf("apps: JPEG needs %d pixels, got %d", ImagePixels, len(image))
	}
	acCode, acLen, err := acCodes()
	if err != nil {
		return nil, 0, err
	}
	dcCode, dcLen := dcCodes()
	dctm := dctMatrixQ12()
	qrecip := quantRecip()

	stream = make([]int32, BitstreamWords)
	var pos int32
	putBits := func(code, length int32) {
		w := pos >> 5
		off := pos & 31
		rem := 32 - off
		if length <= rem {
			stream[w] |= code << uint32(rem-length)
		} else {
			hi := length - rem
			stream[w] |= code >> uint32(hi)
			stream[w+1] |= code << uint32(32-hi)
		}
		pos += length
	}
	bitsize := func(v int32) int32 {
		a := v
		if a < 0 {
			a = -a
		}
		s := int32(0)
		for a > 0 {
			a >>= 1
			s++
		}
		return s
	}

	var blk, tmp, coef [64]int32
	prevDC := int32(0)
	nb := ImageDim / BlockDim
	for by := 0; by < nb; by++ {
		for bx := 0; bx < nb; bx++ {
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					blk[i*8+j] = image[(by*8+i)*ImageDim+bx*8+j] - 128
				}
			}
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					acc := int32(0)
					for k := 0; k < 8; k++ {
						acc += dctm[i*8+k] * blk[k*8+j]
					}
					tmp[i*8+j] = acc >> dctQ
				}
			}
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					acc := int32(0)
					for k := 0; k < 8; k++ {
						acc += tmp[i*8+k] * dctm[j*8+k]
					}
					coef[i*8+j] = acc >> dctQ
				}
			}
			for i := 0; i < 64; i++ {
				v := coef[zigzag[i]]
				neg := false
				if v < 0 {
					neg = true
					v = -v
				}
				q := (v*qrecip[zigzag[i]] + 32768) >> 16
				if neg {
					q = -q
				}
				blk[i] = q
			}
			dc := blk[0]
			diff := dc - prevDC
			prevDC = dc
			sz := bitsize(diff)
			putBits(dcCode[sz], dcLen[sz])
			if sz > 0 {
				amp := diff
				if diff < 0 {
					amp = diff + (1 << uint32(sz)) - 1
				}
				amp &= (1 << uint32(sz)) - 1
				putBits(amp, sz)
			}
			run := int32(0)
			for i := 1; i < 64; i++ {
				v := blk[i]
				if v == 0 {
					run++
					continue
				}
				for run > 15 {
					putBits(acCode[240], acLen[240])
					run -= 16
				}
				s2 := bitsize(v)
				sym := run*16 + s2
				putBits(acCode[sym], acLen[sym])
				amp := v
				if v < 0 {
					amp = v + (1 << uint32(s2)) - 1
				}
				amp &= (1 << uint32(s2)) - 1
				putBits(amp, s2)
				run = 0
			}
			if run > 0 {
				putBits(acCode[0], acLen[0])
			}
		}
	}
	return stream, pos, nil
}
