package apps

import (
	"math"
	"testing"
	"testing/quick"

	"hybridpart/internal/interp"
	"hybridpart/internal/lower"
)

// TestDCTMatrixOrthogonality: the Q12 basis must satisfy C·Cᵀ ≈ (2^12)²/4 · I/…
// — in orthonormal terms, rows are mutually orthogonal and equal-norm
// within fixed-point rounding.
func TestDCTMatrixOrthogonality(t *testing.T) {
	d := dctMatrixQ12()
	var rows [8][8]float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			rows[i][j] = float64(d[i*8+j]) / (1 << dctQ)
		}
	}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			dot := 0.0
			for k := 0; k < 8; k++ {
				dot += rows[a][k] * rows[b][k]
			}
			want := 0.0
			if a == b {
				want = 1.0 // the scaled basis is orthonormal
			}
			if math.Abs(dot-want) > 0.01 {
				t.Fatalf("row %d·row %d = %f, want %f", a, b, dot, want)
			}
		}
	}
}

// TestDCTFlatBlockIsDCOnly: a constant block must quantize to a DC value
// and 63 zero AC coefficients (checked through the reference pipeline by
// counting the emitted bits: near the EOB-only minimum).
func TestDCTFlatBlockIsDCOnly(t *testing.T) {
	img := make([]int32, ImagePixels)
	for i := range img {
		img[i] = 211
	}
	_, bits, err := JPEGReference(img)
	if err != nil {
		t.Fatal(err)
	}
	// First block: DC category+amplitude+EOB; all others: DC diff 0 (2-bit
	// code) + EOB. Budget ~8 bits/block is generous.
	if int(bits) > BlocksPerIm*8 {
		t.Fatalf("flat image used %d bits (DC-only expected)", bits)
	}
}

// TestIFFTLinearity: IFFT(a+b) == IFFT(a)+IFFT(b) does not hold exactly in
// fixed point, but IFFT of a scaled impulse must be a constant ramp-free
// signal: bin 0 (DC) energy spreads evenly.
func TestIFFTDCProperty(t *testing.T) {
	// All-same QAM bits make every data carrier carry the same symbol; the
	// time signal repeats with the carrier structure, and the CP property
	// (tested elsewhere) plus nonzero output suffice here. Instead check
	// determinism across two runs.
	bits := GenBits(OFDMTotalBits, 42)
	i1, q1, err := OFDMReference(bits)
	if err != nil {
		t.Fatal(err)
	}
	i2, q2, err := OFDMReference(bits)
	if err != nil {
		t.Fatal(err)
	}
	for k := range i1 {
		if i1[k] != i2[k] || q1[k] != q2[k] {
			t.Fatal("OFDM reference not deterministic")
		}
	}
}

// TestOFDMEquivalenceMultiSeed cross-checks interpreter vs reference on
// random seeds (the bit-exactness property that anchors the whole
// dynamic-analysis substitution).
func TestOFDMEquivalenceMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence in -short mode")
	}
	prog, err := lower.LowerSource(OFDMSource())
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint32) bool {
		bits := GenBits(OFDMTotalBits, seed)
		m := interp.New(prog)
		copy(m.Global(OFDMBitsArray), bits)
		if _, err := m.Run(OFDMEntry); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		wantI, wantQ, err := OFDMReference(bits)
		if err != nil {
			return false
		}
		gotI, gotQ := m.Global(OFDMOutIArray), m.Global(OFDMOutQArray)
		for i := range wantI {
			if gotI[i] != wantI[i] || gotQ[i] != wantQ[i] {
				t.Logf("seed %d: mismatch at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQAMConstellation: every data carrier must land on one of the 16
// constellation points.
func TestQAMConstellation(t *testing.T) {
	valid := map[int32]bool{}
	for _, v := range qamLUT {
		valid[v] = true
	}
	bits := GenBits(OFDMTotalBits, 3)
	// Reconstruct the frequency-domain mapping as the source does.
	dbin := dataBins()
	for sym := 0; sym < OFDMSymbols; sym++ {
		for c := 0; c < DataCarriers; c++ {
			base := sym*BitsPerSymbol + c*BitsPerCarrier
			bi := bits[base] + 2*bits[base+1]
			bq := bits[base+2] + 2*bits[base+3]
			if !valid[qamLUT[bi]] || !valid[qamLUT[bq]] {
				t.Fatalf("sym %d carrier %d: invalid constellation point", sym, c)
			}
			_ = dbin
		}
	}
}

// TestJPEGBitstreamDecodableDC decodes the first block's DC code from the
// reference bitstream to confirm MSB-first packing and the canonical DC
// table agree end to end.
func TestJPEGBitstreamDecodableDC(t *testing.T) {
	img := make([]int32, ImagePixels)
	for i := range img {
		img[i] = 128 // level-shifts to 0: DC diff 0 -> category 0
	}
	stream, bits, err := JPEGReference(img)
	if err != nil {
		t.Fatal(err)
	}
	if bits == 0 {
		t.Fatal("no output")
	}
	dcCode, dcLen := dcCodes()
	// Category 0 code must appear at the stream head.
	word := uint32(stream[0])
	lead := word >> uint(32-dcLen[0])
	if int32(lead) != dcCode[0] {
		t.Fatalf("stream head %#x does not begin with DC cat-0 code %#x (len %d)",
			word, dcCode[0], dcLen[0])
	}
}

// TestReciprocalQuantizationAgainstDivision: |(v*recip+2^15)>>16 − v/q| ≤ 1
// for the value range the DCT produces.
func TestReciprocalQuantizationAgainstDivision(t *testing.T) {
	recip := quantRecip()
	check := func(raw int16, idxRaw uint8) bool {
		v := int32(raw)
		if v < 0 {
			v = -v
		}
		idx := int(idxRaw) % 64
		q := quantTable[idx]
		approx := (v*recip[idx] + 32768) >> 16
		exact := v / q
		diff := approx - exact
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
